// Command ndss-corpus creates and inspects tokenized corpus files.
//
// Generate a synthetic Zipf corpus:
//
//	ndss-corpus gen -out corpus.tok -texts 10000 -vocab 32000
//
// Tokenize plain-text files (one text per line) with a freshly trained
// BPE model:
//
//	ndss-corpus tokenize -in texts.txt -out corpus.tok -bpe model.bpe -vocab 4096
//
// Show corpus statistics:
//
//	ndss-corpus stats -in corpus.tok
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"ndss/internal/corpus"
	"ndss/internal/token"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = runGen(os.Args[2:])
	case "tokenize":
		err = runTokenize(os.Args[2:])
	case "stats":
		err = runStats(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ndss-corpus:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ndss-corpus {gen|tokenize|stats} [flags]")
	os.Exit(2)
}

func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("out", "corpus.tok", "output corpus file")
	texts := fs.Int("texts", 1000, "number of texts")
	minLen := fs.Int("minlen", 100, "minimum text length (tokens)")
	maxLen := fs.Int("maxlen", 1000, "maximum text length (tokens)")
	vocab := fs.Int("vocab", 32000, "vocabulary size")
	zipf := fs.Float64("zipf", 1.07, "Zipf exponent (> 1)")
	seed := fs.Int64("seed", 1, "random seed")
	dupRate := fs.Float64("duprate", 0.1, "near-duplicate injection rate")
	dupLen := fs.Int("duplen", 64, "injected snippet length")
	dupMut := fs.Float64("dupmut", 0.05, "per-token mutation probability in injected snippets")
	if err := fs.Parse(args); err != nil {
		return err
	}

	c, err := corpus.Synthesize(corpus.SynthConfig{
		NumTexts: *texts, MinLength: *minLen, MaxLength: *maxLen,
		VocabSize: *vocab, ZipfS: *zipf, Seed: *seed,
		DupRate: *dupRate, DupSnippetLen: *dupLen, DupMutateProb: *dupMut,
	})
	if err != nil {
		return err
	}
	if err := corpus.WriteFile(c, *out); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d texts, %d tokens\n", *out, c.NumTexts(), c.TotalTokens())
	return nil
}

func runTokenize(args []string) error {
	fs := flag.NewFlagSet("tokenize", flag.ExitOnError)
	in := fs.String("in", "", "input text file, one text per line")
	out := fs.String("out", "corpus.tok", "output corpus file")
	bpePath := fs.String("bpe", "", "BPE model file (trained if absent)")
	vocab := fs.Int("vocab", 4096, "BPE vocabulary size when training")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	var lines []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if len(sc.Text()) > 0 {
			lines = append(lines, sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	var bpe *token.BPE
	if *bpePath != "" {
		if mf, err := os.Open(*bpePath); err == nil {
			bpe, err = token.LoadBPE(mf)
			_ = mf.Close() // read-only; nothing to recover from a close failure
			if err != nil {
				return err
			}
			fmt.Printf("loaded BPE model %s (vocab %d)\n", *bpePath, bpe.VocabSize())
		}
	}
	if bpe == nil {
		bpe, err = token.TrainBPE(lines, *vocab)
		if err != nil {
			return err
		}
		fmt.Printf("trained BPE model (vocab %d)\n", bpe.VocabSize())
		if *bpePath != "" {
			mf, err := os.Create(*bpePath)
			if err != nil {
				return err
			}
			if err := bpe.Save(mf); err != nil {
				_ = mf.Close() // the Save error is the one to report
				return err
			}
			if err := mf.Close(); err != nil {
				return err
			}
		}
	}
	w, err := corpus.NewWriter(*out)
	if err != nil {
		return err
	}
	var total int64
	for _, line := range lines {
		ids := bpe.Encode(line)
		if err := w.Add(ids); err != nil {
			return err
		}
		total += int64(len(ids))
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d texts, %d tokens\n", *out, len(lines), total)
	return nil
}

func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("in", "", "corpus file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	c, err := corpus.ReadFile(*in)
	if err != nil {
		return err
	}
	s := c.Stats()
	fmt.Printf("texts:           %d\n", s.NumTexts)
	fmt.Printf("tokens:          %d\n", s.TotalTokens)
	fmt.Printf("distinct tokens: %d\n", s.DistinctTokens)
	fmt.Printf("text length:     min %d / mean %.1f / max %d\n", s.MinTextLen, s.MeanTextLen, s.MaxTextLen)
	return nil
}
