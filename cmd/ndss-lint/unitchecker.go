package main

// The vet-tool half of ndss-lint: the go command invokes the tool once
// per package with a JSON config describing the package's files, its
// import map, and the export data of every dependency (all produced by
// the build cache). This mirrors the x/tools unitchecker protocol,
// implemented here on the standard library alone.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"

	"ndss/internal/analysis"
)

// vetConfig is the subset of the go command's vet config this tool
// consumes.
type vetConfig struct {
	ID         string
	Dir        string
	ImportPath string
	GoFiles    []string

	ImportMap   map[string]string // import path in source -> canonical path
	PackageFile map[string]string // canonical path -> export data file

	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitcheckerMain(cfgPath string) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatalf("read config: %v", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("parse config %s: %v", cfgPath, err)
	}
	// This tool exports no facts, but the go command expects the vetx
	// output file to exist.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fatalf("write vetx: %v", err)
		}
	}
	if cfg.VetxOnly {
		return
	}

	fset := token.NewFileSet()
	pkg := &analysis.Package{
		ImportPath: importPathOf(cfg),
		Dir:        cfg.Dir,
		Fset:       fset,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		},
	}
	for _, name := range cfg.GoFiles {
		// The invariants are production-code invariants; test files of
		// the package under vet are skipped.
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return
			}
			fatalf("%v", err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	imp := analysis.ExportImporter(fset, func(path string) (string, bool) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		f, ok := cfg.PackageFile[path]
		return f, ok
	})
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Types, _ = conf.Check(pkg.ImportPath, fset, pkg.Files, pkg.Info)
	if len(pkg.TypeErrors) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintln(os.Stderr, terr)
		}
		os.Exit(1)
	}
	diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, analysis.All())
	if err != nil {
		fatalf("%v", err)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

// importPathOf strips the go command's test-variant suffix
// ("pkg [pkg.test]") so scope matching sees the plain import path.
func importPathOf(cfg vetConfig) string {
	p := cfg.ImportPath
	if i := strings.Index(p, " ["); i >= 0 {
		p = p[:i]
	}
	return p
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ndss-lint: "+format+"\n", args...)
	os.Exit(1)
}
