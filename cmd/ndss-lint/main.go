// ndss-lint runs the repo's custom invariant analyzers (internal/
// analysis) over Go packages. It is the machine-checked form of
// docs/INVARIANTS.md: crash-safe filesystem discipline, context
// cancellation flow, sync.Pool pairing, Prometheus metric hygiene,
// monotonic timing, CLI error discipline, and the serving tier's
// concurrency conventions (guarded-by locking, goroutine termination
// contracts, atomic hygiene).
//
// Standalone:
//
//	go run ./cmd/ndss-lint ./...
//	go run ./cmd/ndss-lint -analyzers fsiodiscipline,poolpair ./internal/index
//
// As a vet tool (per-package, driven and cached by the go command):
//
//	go build -o /tmp/ndss-lint ./cmd/ndss-lint
//	go vet -vettool=/tmp/ndss-lint ./...
//
// Exit status is non-zero when any diagnostic is reported. Suppress a
// diagnostic with a justified directive on or above the offending
// line:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ndss/internal/analysis"
)

func main() {
	// The go command probes vet tools with -V=full for cache keying and
	// -flags for the tool's analyzer flag set (we expose none).
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V") {
		fmt.Printf("ndss-lint version v1\n")
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	// A single *.cfg argument (possibly after flags) means the go
	// command is driving us as a unitchecker.
	if cfg := cfgArg(os.Args[1:]); cfg != "" {
		unitcheckerMain(cfg)
		return
	}

	var (
		sel  = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		list = flag.Bool("list", false, "list analyzers and exit")
		supp = flag.Bool("suppressions", false, "report every lint:ignore directive (file:line, analyzers, reason) and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ndss-lint [flags] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *sel != "" {
		var bad string
		analyzers, bad = analysis.ByName(strings.Split(*sel, ","))
		if analyzers == nil {
			fmt.Fprintf(os.Stderr, "ndss-lint: unknown analyzer %q (try -list)\n", bad)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	pkgs, err := analysis.LoadPackages("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ndss-lint: %v\n", err)
		os.Exit(2)
	}
	badTypes := false
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "ndss-lint: %s: %v\n", p.ImportPath, terr)
			badTypes = true
		}
	}
	if badTypes {
		os.Exit(2)
	}
	if *supp {
		reportSuppressions(pkgs)
		return
	}
	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ndss-lint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s\n", d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ndss-lint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}

// reportSuppressions prints the suppression-debt report: every
// lint:ignore directive with its location, analyzers, and reason, so
// the accumulated exceptions stay reviewable (CI logs the report on
// every run). Informational: always exits 0, even for an empty tree.
func reportSuppressions(pkgs []*analysis.Package) {
	supps := analysis.Suppressions(pkgs)
	for _, s := range supps {
		reason := s.Reason
		if reason == "" {
			reason = "(MISSING REASON — itself a lint violation)"
		}
		fmt.Printf("%s:%d: %s — %s\n", s.File, s.Line, strings.Join(s.Analyzers, ","), reason)
	}
	fmt.Fprintf(os.Stderr, "ndss-lint: %d suppression(s)\n", len(supps))
}

func cfgArg(args []string) string {
	for _, a := range args {
		if strings.HasSuffix(a, ".cfg") {
			return a
		}
	}
	return ""
}
