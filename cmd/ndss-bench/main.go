// Command ndss-bench regenerates the paper's tables and figures (see
// DESIGN.md's per-experiment index and EXPERIMENTS.md for recorded
// results).
//
// Run everything:
//
//	ndss-bench -run all
//
// Run one experiment:
//
//	ndss-bench -run fig3ab
//
// List experiments:
//
//	ndss-bench -list
//
// Emit a machine-readable benchmark report (the BENCH.json artifact CI
// uploads per commit: git SHA, timestamp, ns/op, B/op, and the
// per-stage latency split of the query path):
//
//	ndss-bench -json BENCH.json
//
// Validate an existing report against the schema:
//
//	ndss-bench -check BENCH.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ndss/internal/experiments"
)

func main() {
	run := flag.String("run", "", "experiment id or 'all'")
	list := flag.Bool("list", false, "list experiment ids")
	workDir := flag.String("workdir", "", "working directory for indexes (default: temp dir)")
	scale := flag.Int("scale", 1, "corpus scale multiplier")
	keep := flag.Bool("keep", false, "keep the working directory")
	jsonPath := flag.String("json", "", "run the query benchmark suite and write a BENCH.json report here")
	checkPath := flag.String("check", "", "validate an existing BENCH.json report and exit")
	flag.Parse()

	if *list {
		for _, ex := range experiments.All() {
			fmt.Printf("%-8s %s\n", ex.ID, ex.Desc)
		}
		return
	}
	if *checkPath != "" {
		data, err := os.ReadFile(*checkPath)
		if err == nil {
			err = experiments.ValidateBenchReport(data)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "ndss-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid bench report\n", *checkPath)
		return
	}
	if *run == "" && *jsonPath == "" {
		fmt.Fprintln(os.Stderr, "ndss-bench: -run <id|all>, -json <path>, -check <path> or -list required")
		os.Exit(2)
	}
	dir := *workDir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "ndss-bench-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, "ndss-bench:", err)
			os.Exit(1)
		}
		if !*keep {
			defer os.RemoveAll(dir)
		}
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "ndss-bench:", err)
		os.Exit(1)
	}

	env := experiments.NewEnv(dir, *scale, os.Stdout)
	defer env.Close()

	if *jsonPath != "" {
		start := time.Now()
		fmt.Println("=== bench: query-path benchmark suite ===")
		report, err := env.RunBenchSuite()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ndss-bench: bench suite failed:", err)
			os.Exit(1)
		}
		if err := experiments.WriteBenchReport(*jsonPath, report); err != nil {
			fmt.Fprintln(os.Stderr, "ndss-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("--- wrote %s (%d series, commit %s) in %v ---\n\n",
			*jsonPath, len(report.Results), report.GitSHA, time.Since(start).Round(time.Millisecond))
		if *run == "" {
			return
		}
	}

	var toRun []experiments.Experiment
	if *run == "all" {
		toRun = experiments.All()
	} else {
		ex, ok := experiments.Find(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "ndss-bench: unknown experiment %q (use -list)\n", *run)
			os.Exit(2)
		}
		toRun = []experiments.Experiment{ex}
	}
	for _, ex := range toRun {
		start := time.Now()
		fmt.Printf("=== %s: %s ===\n", ex.ID, ex.Desc)
		if err := ex.Run(env); err != nil {
			fmt.Fprintf(os.Stderr, "ndss-bench: %s failed: %v\n", ex.ID, err)
			os.Exit(1)
		}
		fmt.Printf("--- %s done in %v ---\n\n", ex.ID, time.Since(start).Round(time.Millisecond))
	}
}
