// Command ndss-memorize evaluates language-model memorization against a
// training corpus (paper §5): it trains an n-gram model on the corpus,
// samples texts without prompts, slides a fixed-width window over them,
// and reports the fraction of windows with near-duplicates in the
// corpus.
//
//	ndss-memorize -corpus corpus.tok -index idx -order 4 -x 32 -theta 0.8
//
// The index must have been built over the same corpus.
package main

import (
	"flag"
	"fmt"
	"os"

	"ndss/internal/core"
	"ndss/internal/corpus"
	"ndss/internal/lm"
	"ndss/internal/memorize"
	"ndss/internal/search"
)

func main() {
	corpusPath := flag.String("corpus", "", "training corpus file (required)")
	idxDir := flag.String("index", "idx", "index directory built over the corpus")
	order := flag.Int("order", 4, "n-gram model order (capacity knob)")
	maxContexts := flag.Int("contexts", 0, "max retained contexts, 0 = unlimited (capacity knob)")
	numTexts := flag.Int("texts", 20, "number of texts to generate")
	textLen := flag.Int("textlen", 512, "tokens per generated text")
	x := flag.Int("x", 32, "sliding-window width (query length)")
	topK := flag.Int("topk", 50, "top-k sampling parameter")
	theta := flag.Float64("theta", 0.8, "Jaccard similarity threshold")
	seed := flag.Int64("seed", 1, "sampling seed")
	examples := flag.Int("examples", 3, "example matches to print")
	flag.Parse()
	if *corpusPath == "" {
		fmt.Fprintln(os.Stderr, "ndss-memorize: -corpus is required")
		os.Exit(2)
	}
	if err := run(*corpusPath, *idxDir, *order, *maxContexts, *numTexts, *textLen, *x, *topK, *theta, *seed, *examples); err != nil {
		fmt.Fprintln(os.Stderr, "ndss-memorize:", err)
		os.Exit(1)
	}
}

func run(corpusPath, idxDir string, order, maxContexts, numTexts, textLen, x, topK int, theta float64, seed int64, examples int) error {
	c, err := corpus.ReadFile(corpusPath)
	if err != nil {
		return err
	}
	engine, err := core.Open(idxDir, c)
	if err != nil {
		return err
	}
	defer engine.Close()

	fmt.Printf("training order-%d model (max contexts %d) on %d texts...\n", order, maxContexts, c.NumTexts())
	model, err := lm.Train(c, lm.Config{Order: order, MaxContexts: maxContexts})
	if err != nil {
		return err
	}
	fmt.Printf("model holds %d contexts\n", model.NumContexts())

	queries, err := memorize.GenerateQueries(model, memorize.GenConfig{
		NumTexts:    numTexts,
		TextLength:  textLen,
		QueryLength: x,
		Sampler:     lm.TopK{K: topK},
		Seed:        seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("generated %d query sequences (x=%d, top-%d sampling, unprompted)\n", len(queries), x, topK)

	res, err := memorize.Evaluate(engine.Searcher(), queries, memorize.EvalConfig{
		Options:     search.Options{Theta: theta, PrefixFilter: true, Verify: true},
		MaxExamples: examples,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nmemorization at theta=%.2f: %d / %d queries (%.2f%%) have near-duplicates\n",
		theta, res.Memorized, res.Queries, res.Ratio*100)
	fmt.Printf("total near-duplicate spans: %d, evaluation time %v\n", res.TotalMatches, res.Elapsed)
	for i, ex := range res.Examples {
		fmt.Printf("\nexample %d:\n", i+1)
		fmt.Printf("  generated: %v...\n", head(ex.Query, 12))
		text := c.Text(ex.Match.TextID)
		fmt.Printf("  corpus:    %v... (text %d, span [%d, %d], est. J %.3f)\n",
			head(text[ex.Match.Start:ex.Match.End+1], 12),
			ex.Match.TextID, ex.Match.Start, ex.Match.End, ex.Match.EstJaccard)
	}
	return nil
}

func head(s []uint32, n int) []uint32 {
	if len(s) < n {
		return s
	}
	return s[:n]
}
