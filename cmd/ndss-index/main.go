// Command ndss-index builds a near-duplicate search index from a corpus
// file.
//
//	ndss-index -corpus corpus.tok -out idx -k 32 -t 50
//
// By default the corpus is loaded into memory (Algorithm 1's main path);
// -external switches to the out-of-core hash-aggregation builder for
// corpora larger than memory.
//
// Segment-set maintenance runs through subcommands:
//
//	ndss-index list idx      print the segments in an index's manifest
//	ndss-index compact idx   merge the segment set into one segment
//	ndss-index verify idx    validate checksums over every segment file
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ndss/internal/corpus"
	"ndss/internal/index"
)

func main() {
	if len(os.Args) > 1 && !strings.HasPrefix(os.Args[1], "-") {
		if err := runSubcommand(os.Args[1], os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "ndss-index:", err)
			os.Exit(1)
		}
		return
	}
	corpusPath := flag.String("corpus", "", "corpus file (required)")
	out := flag.String("out", "idx", "output index directory")
	k := flag.Int("k", 32, "number of min-hash functions")
	t := flag.Int("t", 50, "length threshold (minimum indexed sequence length)")
	seed := flag.Int64("seed", 1, "hash family seed")
	external := flag.Bool("external", false, "use the out-of-core builder")
	memBudget := flag.Int64("mem", 256<<20, "memory budget in bytes for the external builder")
	parallel := flag.Int("parallel", 0, "window-generation goroutines (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0, "build this many shard indexes concurrently and merge them")
	check := flag.Bool("check", false, "verify the integrity of an existing index at -out and exit")
	flag.Parse()
	if *check {
		if err := runCheck(*out); err != nil {
			fmt.Fprintln(os.Stderr, "ndss-index:", err)
			os.Exit(1)
		}
		return
	}
	if *corpusPath == "" {
		fmt.Fprintln(os.Stderr, "ndss-index: -corpus is required")
		os.Exit(2)
	}
	if err := run(*corpusPath, *out, index.BuildOptions{
		K: *k, T: *t, Seed: *seed, MemoryBudget: *memBudget, Parallelism: *parallel,
	}, *external, *shards); err != nil {
		fmt.Fprintln(os.Stderr, "ndss-index:", err)
		os.Exit(1)
	}
}

// runSubcommand dispatches the segment-maintenance verbs. Each takes
// the index directory as its sole argument.
func runSubcommand(verb string, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: ndss-index %s <index-dir>", verb)
	}
	dir := args[0]
	switch verb {
	case "list":
		return runList(dir)
	case "compact":
		return runCompact(dir)
	case "verify":
		return runCheck(dir)
	default:
		return fmt.Errorf("unknown subcommand %q (want list, compact or verify)", verb)
	}
}

// runList prints one line per segment in the index's manifest.
func runList(dir string) error {
	ix, err := index.Open(dir)
	if err != nil {
		return err
	}
	defer ix.Close()
	segs := ix.Segments()
	fmt.Printf("index %s: build %s, %d segment(s)\n", dir, ix.BuildID(), len(segs))
	for _, s := range segs {
		name := s.Name
		if name == "" {
			name = "(root)"
		}
		fmt.Printf("  %-12s base=%-8d texts=%-8d tokens=%-10d postings=%-10d bytes=%-10d tombstoned=%d\n",
			name, s.Base, s.NumTexts, s.TotalTokens, s.Postings, s.SizeOnDisk, s.Tombstoned)
	}
	return nil
}

// runCompact merges the segment set into a single segment, dropping
// tombstoned texts, and reports the before/after shape.
func runCompact(dir string) error {
	ix, err := index.Open(dir)
	if err != nil {
		return err
	}
	before := ix.SegmentCount()
	if err := ix.Close(); err != nil {
		return err
	}
	if err := index.Compact(dir); err != nil {
		return err
	}
	ix, err = index.Open(dir)
	if err != nil {
		return fmt.Errorf("reopen compacted index: %w", err)
	}
	defer ix.Close()
	fmt.Printf("compacted %s: %d segment(s) -> %d (build %s)\n",
		dir, before, ix.SegmentCount(), ix.BuildID())
	return nil
}

// runCheck opens the index and validates checksums over every inverted
// file.
func runCheck(dir string) error {
	ix, err := index.Open(dir)
	if err != nil {
		return err
	}
	defer ix.Close()
	if err := ix.VerifyIntegrity(); err != nil {
		return err
	}
	size, err := ix.SizeOnDisk()
	if err != nil {
		return err
	}
	m := ix.Meta()
	fmt.Printf("index %s OK: build %s, k=%d t=%d, %d texts, %d windows, %d bytes\n",
		dir, ix.BuildID(), m.K, m.T, m.NumTexts, ix.TotalPostings(), size)
	return nil
}

func run(corpusPath, out string, opts index.BuildOptions, external bool, shards int) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	var stats *index.BuildStats
	switch {
	case external:
		r, err := corpus.OpenReader(corpusPath)
		if err != nil {
			return err
		}
		defer r.Close()
		stats, err = index.BuildExternal(r, out, opts)
		if err != nil {
			return err
		}
	case shards > 1:
		c, err := corpus.ReadFile(corpusPath)
		if err != nil {
			return err
		}
		if err := index.BuildSharded(c, out, opts, shards); err != nil {
			return err
		}
	default:
		c, err := corpus.ReadFile(corpusPath)
		if err != nil {
			return err
		}
		stats, err = index.Build(c, out, opts)
		if err != nil {
			return err
		}
	}
	ix, err := index.Open(out)
	if err != nil {
		return fmt.Errorf("reopen committed index: %w", err)
	}
	buildID := ix.BuildID()
	if err := ix.Close(); err != nil {
		return fmt.Errorf("close reopened index: %w", err)
	}
	fmt.Printf("index written to %s (build %s)\n", out, buildID)
	if stats != nil {
		fmt.Printf("  compact windows: %d\n", stats.Windows)
		fmt.Printf("  bytes written:   %d\n", stats.BytesWritten)
		fmt.Printf("  generation time: %v\n", stats.GenTime)
		fmt.Printf("  io time:         %v\n", stats.IOTime)
	}
	return nil
}
