// Command ndss-query runs near-duplicate sequence searches against an
// index.
//
// Query with an explicit token sequence:
//
//	ndss-query -index idx -corpus corpus.tok -theta 0.8 -tokens 5,17,99,...
//
// Or take the query from a region of a corpus text (useful for
// self-similarity checks):
//
//	ndss-query -index idx -corpus corpus.tok -theta 0.8 -from-text 42 -at 100 -len 64
//
// Batch mode reads one query per line (comma- or space-separated token
// ids; blank lines and #-comments skipped) and runs them over a worker
// pool, printing each query's exact I/O/CPU split:
//
//	ndss-query -index idx -theta 0.8 -queries queries.txt -parallel 8
//
// In batch mode the exit status is non-zero if any query errored.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ndss/internal/core"
	"ndss/internal/corpus"
	"ndss/internal/search"
)

func main() {
	idxDir := flag.String("index", "idx", "index directory")
	corpusPath := flag.String("corpus", "", "corpus file (enables -verify and -from-text)")
	theta := flag.Float64("theta", 0.8, "Jaccard similarity threshold")
	tokens := flag.String("tokens", "", "comma-separated query token ids")
	fromText := flag.Int("from-text", -1, "take the query from this corpus text id")
	at := flag.Int("at", 0, "query start offset within -from-text")
	length := flag.Int("len", 64, "query length for -from-text")
	prefix := flag.Bool("prefix", true, "use prefix filtering")
	verify := flag.Bool("verify", false, "verify exact Jaccard of matches")
	queriesPath := flag.String("queries", "", "file with one query per line (batch mode)")
	parallel := flag.Int("parallel", 1, "batch-mode query workers")
	verbose := flag.Bool("v", false, "print the per-stage latency split (sketch/plan/gather/count/merge/verify)")
	flag.Parse()

	err := run(*idxDir, *corpusPath, *theta, *tokens, *fromText, *at, *length,
		*prefix, *verify, *queriesPath, *parallel, *verbose)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ndss-query:", err)
		os.Exit(1)
	}
}

func run(idxDir, corpusPath string, theta float64, tokens string, fromText, at, length int,
	prefix, verify bool, queriesPath string, parallel int, verbose bool) error {
	// Reject inconsistent flag combinations before touching the index so
	// misuse fails fast instead of after an expensive open.
	if verify && corpusPath == "" {
		return fmt.Errorf("-verify requires -corpus (exact Jaccard needs the text content)")
	}
	if queriesPath != "" && (tokens != "" || fromText >= 0) {
		return fmt.Errorf("-queries (batch mode) conflicts with -tokens/-from-text; provide one query source")
	}
	var src search.TextSource
	var reader *corpus.Reader
	if corpusPath != "" {
		r, err := corpus.OpenReader(corpusPath)
		if err != nil {
			return err
		}
		defer r.Close()
		src, reader = r, r
	}
	engine, err := core.Open(idxDir, src)
	if err != nil {
		return err
	}
	defer engine.Close()

	opts := search.Options{Theta: theta, PrefixFilter: prefix, Verify: verify}
	if queriesPath != "" {
		return runBatch(engine, queriesPath, opts, parallel, verbose)
	}

	var query []uint32
	switch {
	case tokens != "":
		query, err = parseTokens(tokens)
		if err != nil {
			return err
		}
	case fromText >= 0:
		if reader == nil {
			return fmt.Errorf("-from-text requires -corpus")
		}
		text, err := reader.ReadText(uint32(fromText))
		if err != nil {
			return err
		}
		if at < 0 || at+length > len(text) {
			return fmt.Errorf("region [%d, %d) out of range for text of %d tokens", at, at+length, len(text))
		}
		query = text[at : at+length]
	default:
		return fmt.Errorf("provide -tokens, -from-text or -queries")
	}

	matches, stats, err := engine.Search(query, opts)
	if err != nil {
		return err
	}
	fmt.Printf("query: %d tokens, theta %.2f, beta %d/%d collisions required\n",
		len(query), theta, stats.Beta, stats.K)
	fmt.Printf("latency: total %v (io %v, cpu %v), %d bytes read\n",
		stats.Total, stats.IOTime, stats.CPUTime, stats.IOBytes)
	if verbose {
		printStageSplit("stages", stats.StageTimes)
	}
	fmt.Printf("lists: %d short, %d long; %d candidate texts\n",
		stats.ShortLists, stats.LongLists, stats.Candidates)
	if len(matches) == 0 {
		fmt.Println("no near-duplicate sequences found")
		return nil
	}
	fmt.Printf("%d near-duplicate span(s):\n", len(matches))
	for _, m := range matches {
		line := fmt.Sprintf("  text %d [%d, %d] collisions %d (est. Jaccard %.3f)",
			m.TextID, m.Start, m.End, m.Collisions, m.EstJaccard)
		if verify {
			line += fmt.Sprintf(" exact span Jaccard %.3f", m.Jaccard)
		}
		fmt.Println(line)
	}
	return nil
}

// printStageSplit renders one line per pipeline stage, aligned, so the
// dominant stage of a slow query is visible at a glance.
func printStageSplit(label string, t search.StageTimes) {
	fmt.Printf("%s:\n", label)
	for i, d := range t.Durations() {
		fmt.Printf("  %-7s %v\n", search.StageNames[i], d)
	}
}

// runBatch runs the queries in path over a worker pool and prints each
// query's result with its exact per-query I/O/CPU split.
func runBatch(engine *core.Engine, path string, opts search.Options, parallel int, verbose bool) error {
	queries, lines, err := readQueriesFile(path)
	if err != nil {
		return err
	}
	if len(queries) == 0 {
		return fmt.Errorf("%s: no queries", path)
	}
	results := engine.SearchBatch(queries, opts, parallel)
	failed := 0
	var ioBytes int64
	for i, res := range results {
		if res.Err != nil {
			failed++
			fmt.Printf("query %d (line %d): ERROR: %v\n", i, lines[i], res.Err)
			continue
		}
		st := res.Stats
		ioBytes += st.IOBytes
		fmt.Printf("query %d (line %d): %d match(es), total %v (io %v, cpu %v), %d bytes read\n",
			i, lines[i], len(res.Matches), st.Total, st.IOTime, st.CPUTime, st.IOBytes)
	}
	fmt.Printf("batch: %d queries, %d failed, %d workers, %d bytes read\n",
		len(queries), failed, parallel, ioBytes)
	if verbose {
		if total, n := search.BatchStageTimes(results); n > 0 {
			printStageSplit(fmt.Sprintf("stages (sum over %d queries)", n), total)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d queries failed", failed, len(queries))
	}
	return nil
}

// readQueriesFile parses one query per line; commas and whitespace both
// separate token ids. Blank lines and lines starting with # are
// skipped. The returned line numbers (1-based) parallel the queries.
func readQueriesFile(path string) ([][]uint32, []int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	var queries [][]uint32
	var lines []int
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for n := 1; sc.Scan(); n++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		q, err := parseTokens(line)
		if err != nil {
			return nil, nil, fmt.Errorf("%s:%d: %w", path, n, err)
		}
		queries = append(queries, q)
		lines = append(lines, n)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return queries, lines, nil
}

func parseTokens(s string) ([]uint32, error) {
	var out []uint32
	for _, part := range strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		v, err := strconv.ParseUint(part, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad token %q: %w", part, err)
		}
		out = append(out, uint32(v))
	}
	return out, nil
}
