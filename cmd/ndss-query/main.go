// Command ndss-query runs near-duplicate sequence searches against an
// index.
//
// Query with an explicit token sequence:
//
//	ndss-query -index idx -corpus corpus.tok -theta 0.8 -tokens 5,17,99,...
//
// Or take the query from a region of a corpus text (useful for
// self-similarity checks):
//
//	ndss-query -index idx -corpus corpus.tok -theta 0.8 -from-text 42 -at 100 -len 64
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ndss/internal/core"
	"ndss/internal/corpus"
	"ndss/internal/search"
)

func main() {
	idxDir := flag.String("index", "idx", "index directory")
	corpusPath := flag.String("corpus", "", "corpus file (enables -verify and -from-text)")
	theta := flag.Float64("theta", 0.8, "Jaccard similarity threshold")
	tokens := flag.String("tokens", "", "comma-separated query token ids")
	fromText := flag.Int("from-text", -1, "take the query from this corpus text id")
	at := flag.Int("at", 0, "query start offset within -from-text")
	length := flag.Int("len", 64, "query length for -from-text")
	prefix := flag.Bool("prefix", true, "use prefix filtering")
	verify := flag.Bool("verify", false, "verify exact Jaccard of matches")
	flag.Parse()

	if err := run(*idxDir, *corpusPath, *theta, *tokens, *fromText, *at, *length, *prefix, *verify); err != nil {
		fmt.Fprintln(os.Stderr, "ndss-query:", err)
		os.Exit(1)
	}
}

func run(idxDir, corpusPath string, theta float64, tokens string, fromText, at, length int, prefix, verify bool) error {
	var src search.TextSource
	var reader *corpus.Reader
	if corpusPath != "" {
		r, err := corpus.OpenReader(corpusPath)
		if err != nil {
			return err
		}
		defer r.Close()
		src, reader = r, r
	}
	engine, err := core.Open(idxDir, src)
	if err != nil {
		return err
	}
	defer engine.Close()

	var query []uint32
	switch {
	case tokens != "":
		for _, part := range strings.Split(tokens, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 32)
			if err != nil {
				return fmt.Errorf("bad token %q: %w", part, err)
			}
			query = append(query, uint32(v))
		}
	case fromText >= 0:
		if reader == nil {
			return fmt.Errorf("-from-text requires -corpus")
		}
		text, err := reader.ReadText(uint32(fromText))
		if err != nil {
			return err
		}
		if at < 0 || at+length > len(text) {
			return fmt.Errorf("region [%d, %d) out of range for text of %d tokens", at, at+length, len(text))
		}
		query = text[at : at+length]
	default:
		return fmt.Errorf("provide -tokens or -from-text")
	}

	matches, stats, err := engine.Search(query, search.Options{
		Theta: theta, PrefixFilter: prefix, Verify: verify,
	})
	if err != nil {
		return err
	}
	fmt.Printf("query: %d tokens, theta %.2f, beta %d/%d collisions required\n",
		len(query), theta, stats.Beta, stats.K)
	fmt.Printf("latency: total %v (io %v, cpu %v), %d bytes read\n",
		stats.Total, stats.IOTime, stats.CPUTime, stats.IOBytes)
	fmt.Printf("lists: %d short, %d long; %d candidate texts\n",
		stats.ShortLists, stats.LongLists, stats.Candidates)
	if len(matches) == 0 {
		fmt.Println("no near-duplicate sequences found")
		return nil
	}
	fmt.Printf("%d near-duplicate span(s):\n", len(matches))
	for _, m := range matches {
		line := fmt.Sprintf("  text %d [%d, %d] collisions %d (est. Jaccard %.3f)",
			m.TextID, m.Start, m.End, m.Collisions, m.EstJaccard)
		if verify {
			line += fmt.Sprintf(" exact span Jaccard %.3f", m.Jaccard)
		}
		fmt.Println(line)
	}
	return nil
}
