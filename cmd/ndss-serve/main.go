// Command ndss-serve exposes an opened index as an HTTP JSON query
// service.
//
//	ndss-serve -index idx -corpus corpus.tok -addr :8080
//
// Endpoints:
//
//	POST /search       {"tokens":[...],"theta":0.8,...} -> matches + stats
//	POST /search/topk  {"tokens":[...],"n":10,"floor_theta":0.5,...}
//	GET  /explain?tokens=1,2,3&theta=0.8  -> the query plan, no I/O
//	GET  /healthz      200 while serving, 503 once shutdown begins;
//	                   reports the active index build id
//	GET  /metrics      JSON counters: requests, latency, cache, I/O
//	POST /admin/reload reopen the index directory and hot-swap to it
//
// Requests are bounded by an admission semaphore (-max-inflight; excess
// returns 429) and a per-request deadline (the request's timeout_ms
// field, default -timeout, capped at -max-timeout). SIGINT/SIGTERM
// starts a graceful shutdown: new work is refused while in-flight
// queries drain.
//
// After rebuilding the index in place (ndss-index commits atomically,
// so the running server never sees a partial build), POST /admin/reload
// or SIGHUP swaps the server onto the new build with zero failed
// requests: queries in flight finish on the old index while new ones
// already run against the new one.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ndss/internal/core"
	"ndss/internal/corpus"
	"ndss/internal/search"
	"ndss/internal/server"
)

func main() {
	idxDir := flag.String("index", "idx", "index directory")
	corpusPath := flag.String("corpus", "", "corpus file (enables \"verify\":true requests)")
	addr := flag.String("addr", ":8080", "listen address")
	maxInFlight := flag.Int("max-inflight", 64, "concurrent query limit before 429")
	timeout := flag.Duration("timeout", 10*time.Second, "default per-request query deadline")
	maxTimeout := flag.Duration("max-timeout", 60*time.Second, "cap on client-requested timeout_ms")
	cacheEntries := flag.Int("cache", 256, "result cache entries (0 disables)")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain allowance for in-flight requests")
	flag.Parse()

	if err := run(*idxDir, *corpusPath, *addr, *maxInFlight, *timeout, *maxTimeout, *cacheEntries, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "ndss-serve:", err)
		os.Exit(1)
	}
}

// servedBackend is an opened engine plus the corpus reader backing its
// verification source, closed together when a reload retires it.
type servedBackend struct {
	*core.Engine
	src *corpus.Reader // nil when serving without -corpus
}

func (b *servedBackend) Close() error {
	err := b.Engine.Close()
	if b.src != nil {
		if cerr := b.src.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// openBackend opens the index directory (and corpus, when configured)
// as one closable unit. It is also the server's Reloader: each reload
// opens fresh handles so the retiring backend can be closed safely.
func openBackend(idxDir, corpusPath string) (*servedBackend, error) {
	var (
		src search.TextSource
		r   *corpus.Reader
	)
	if corpusPath != "" {
		var err error
		r, err = corpus.OpenReader(corpusPath)
		if err != nil {
			return nil, err
		}
		src = r
	}
	engine, err := core.Open(idxDir, src)
	if err != nil {
		if r != nil {
			r.Close()
		}
		return nil, err
	}
	return &servedBackend{Engine: engine, src: r}, nil
}

func run(idxDir, corpusPath, addr string, maxInFlight int, timeout, maxTimeout time.Duration, cacheEntries int, drain time.Duration) error {
	backend, err := openBackend(idxDir, corpusPath)
	if err != nil {
		return err
	}
	defer backend.Close()

	cache := cacheEntries
	if cache == 0 {
		cache = -1 // Config treats <0 as "disabled", 0 as "default"
	}
	srv := server.New(backend, server.Config{
		MaxInFlight:    maxInFlight,
		DefaultTimeout: timeout,
		MaxTimeout:     maxTimeout,
		CacheEntries:   cache,
		Reloader: func() (server.Backend, error) {
			return openBackend(idxDir, corpusPath)
		},
	})
	hs := &http.Server{
		Addr:              addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		meta := backend.Meta()
		log.Printf("serving index %s build %s (k=%d t=%d texts=%d) on %s",
			idxDir, backend.BuildID(), meta.K, meta.T, meta.NumTexts, addr)
		if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	for {
		select {
		case err := <-errc:
			return err
		case s := <-sig:
			if s == syscall.SIGHUP {
				oldID, newID, err := srv.Reload()
				if err != nil {
					log.Printf("reload failed, still serving previous index: %v", err)
				} else {
					log.Printf("reloaded index %s: build %s -> %s", idxDir, oldID, newID)
				}
				continue
			}
			log.Printf("received %v, draining in-flight requests", s)
		}
		break
	}

	srv.BeginShutdown()
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	log.Printf("drained, exiting")
	return nil
}
