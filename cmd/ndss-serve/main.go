// Command ndss-serve exposes an opened index as an HTTP JSON query
// service.
//
//	ndss-serve -index idx -corpus corpus.tok -addr :8080
//
// Endpoints:
//
//	POST /search       {"tokens":[...],"theta":0.8,...} -> matches + stats
//	POST /search/topk  {"tokens":[...],"n":10,"floor_theta":0.5,...}
//	GET  /explain?tokens=1,2,3&theta=0.8  -> the query plan, no I/O
//	GET  /healthz      200 while serving, 503 once shutdown begins
//	GET  /metrics      JSON counters: requests, latency, cache, I/O
//
// Requests are bounded by an admission semaphore (-max-inflight; excess
// returns 429) and a per-request deadline (the request's timeout_ms
// field, default -timeout, capped at -max-timeout). SIGINT/SIGTERM
// starts a graceful shutdown: new work is refused while in-flight
// queries drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ndss/internal/core"
	"ndss/internal/corpus"
	"ndss/internal/search"
	"ndss/internal/server"
)

func main() {
	idxDir := flag.String("index", "idx", "index directory")
	corpusPath := flag.String("corpus", "", "corpus file (enables \"verify\":true requests)")
	addr := flag.String("addr", ":8080", "listen address")
	maxInFlight := flag.Int("max-inflight", 64, "concurrent query limit before 429")
	timeout := flag.Duration("timeout", 10*time.Second, "default per-request query deadline")
	maxTimeout := flag.Duration("max-timeout", 60*time.Second, "cap on client-requested timeout_ms")
	cacheEntries := flag.Int("cache", 256, "result cache entries (0 disables)")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain allowance for in-flight requests")
	flag.Parse()

	if err := run(*idxDir, *corpusPath, *addr, *maxInFlight, *timeout, *maxTimeout, *cacheEntries, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "ndss-serve:", err)
		os.Exit(1)
	}
}

func run(idxDir, corpusPath, addr string, maxInFlight int, timeout, maxTimeout time.Duration, cacheEntries int, drain time.Duration) error {
	var src search.TextSource
	if corpusPath != "" {
		r, err := corpus.OpenReader(corpusPath)
		if err != nil {
			return err
		}
		defer r.Close()
		src = r
	}
	engine, err := core.Open(idxDir, src)
	if err != nil {
		return err
	}
	defer engine.Close()

	cache := cacheEntries
	if cache == 0 {
		cache = -1 // Config treats <0 as "disabled", 0 as "default"
	}
	srv := server.New(engine, server.Config{
		MaxInFlight:    maxInFlight,
		DefaultTimeout: timeout,
		MaxTimeout:     maxTimeout,
		CacheEntries:   cache,
	})
	hs := &http.Server{
		Addr:              addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		meta := engine.Meta()
		log.Printf("serving index %s (k=%d t=%d texts=%d) on %s", idxDir, meta.K, meta.T, meta.NumTexts, addr)
		if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		log.Printf("received %v, draining in-flight requests", s)
	}

	srv.BeginShutdown()
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	log.Printf("drained, exiting")
	return nil
}
