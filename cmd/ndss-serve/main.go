// Command ndss-serve exposes an opened index as an HTTP JSON query
// service.
//
//	ndss-serve -index idx -corpus corpus.tok -addr :8080
//
// Endpoints:
//
//	POST /search       {"tokens":[...],"theta":0.8,...} -> matches + stats
//	POST /search/topk  {"tokens":[...],"n":10,"floor_theta":0.5,...}
//	GET  /explain?tokens=1,2,3&theta=0.8  -> the query plan, no I/O
//	GET  /healthz      200 while serving, 503 once shutdown begins;
//	                   reports the active index build id
//	GET  /metrics      Prometheus text exposition; JSON counters for
//	                   Accept: application/json
//	GET  /debug/slowlog the slow-query flight recorder: stage-annotated
//	                   traces of the slowest and most recent queries
//	GET  /debug/trace/{request_id} the assembled cross-process trace
//	                   tree of a retained query (tail-based: slow,
//	                   errored, partial, retried, and hedged queries
//	                   are always kept; -trace-sample adds head
//	                   sampling). Bare /debug/trace/ lists what is
//	                   retained.
//	POST /admin/reload reopen the index directory and hot-swap to it
//	POST /ingest       {"texts":[[...],...]} append texts as a new index
//	                   segment and hot-swap; searchable on return
//	                   (requires -ingest)
//	POST /admin/compact merge the index's segment set into one segment,
//	                   dropping deleted texts, then hot-swap
//	                   (requires -ingest)
//
// Requests are bounded by an admission semaphore (-max-inflight; excess
// returns 429) and a per-request deadline (the request's timeout_ms
// field, default -timeout, capped at -max-timeout). SIGINT/SIGTERM
// starts a graceful shutdown: new work is refused while in-flight
// queries drain.
//
// Observability: every request gets an X-Request-ID (client-supplied
// ones are honored) echoed on the response and stamped on the
// structured access log (-log text|json). The id and a W3C
// traceparent-style trace context are forwarded on every shard and
// replica call, so a sharded deployment's logs and traces join across
// processes; -trace-sample controls head-sampling of full span
// shipping, and -wide-events logs one INFO "query" line per executed
// query with the complete cross-process breakdown. Queries slower than
// -slow-query additionally log their per-stage breakdown. Profiling
// endpoints (net/http/pprof) are off by default; -debug-addr serves
// them on a separate listener so they are never exposed on the query
// port — query handlers label their goroutines with request_id,
// endpoint, and shard via runtime/pprof, so CPU profiles join back to
// specific requests.
//
// After rebuilding the index in place (ndss-index commits atomically,
// so the running server never sees a partial build), POST /admin/reload
// or SIGHUP swaps the server onto the new build with zero failed
// requests: queries in flight finish on the old index while new ones
// already run against the new one.
//
// With -ingest, POST /ingest appends texts to the index as an immutable
// segment and hot-swaps the same way — the live segments are never
// rewritten, so ingest is cheap and crash-safe. Once the segment set
// grows past -compact-after, a background compaction merges it back to
// one segment; POST /admin/compact triggers one on demand.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ndss/internal/core"
	"ndss/internal/corpus"
	"ndss/internal/index"
	"ndss/internal/search"
	"ndss/internal/server"
	"ndss/internal/shard"
)

type serveConfig struct {
	idxDir      string
	corpusPath  string
	addr        string
	maxInFlight int
	timeout     time.Duration
	maxTimeout  time.Duration
	cache       int
	drain       time.Duration

	slowQuery   time.Duration
	slowlog     int
	traceSample float64
	traceStore  int
	wideEvents  bool
	debugAddr   string
	logFormat   string

	ingest       bool
	compactAfter int

	shards        string
	shardTimeout  time.Duration
	shardInflight int

	shardRetries    int
	retryBudget     float64
	hedgeAfter      time.Duration
	breakerFailures int
	breakerCooldown time.Duration
	probeInterval   time.Duration
}

func main() {
	var c serveConfig
	flag.StringVar(&c.idxDir, "index", "idx", "index directory")
	flag.StringVar(&c.corpusPath, "corpus", "", "corpus file (enables \"verify\":true requests)")
	flag.StringVar(&c.addr, "addr", ":8080", "listen address")
	flag.IntVar(&c.maxInFlight, "max-inflight", 64, "concurrent query limit before 429")
	flag.DurationVar(&c.timeout, "timeout", 10*time.Second, "default per-request query deadline")
	flag.DurationVar(&c.maxTimeout, "max-timeout", 60*time.Second, "cap on client-requested timeout_ms")
	flag.IntVar(&c.cache, "cache", 256, "result cache entries (0 disables)")
	flag.DurationVar(&c.drain, "drain", 30*time.Second, "shutdown drain allowance for in-flight requests")
	flag.DurationVar(&c.slowQuery, "slow-query", 500*time.Millisecond, "log queries at least this slow with their stage breakdown (0 disables)")
	flag.IntVar(&c.slowlog, "slowlog", 32, "flight recorder entries per view at /debug/slowlog (0 disables)")
	flag.Float64Var(&c.traceSample, "trace-sample", 0, "fraction of queries head-sampled into full distributed tracing (0 never samples; slow/errored/partial/retried/hedged queries are tail-retained regardless)")
	flag.IntVar(&c.traceStore, "trace-store", 128, "trace store entries per ring at /debug/trace/{request_id} (0 disables)")
	flag.BoolVar(&c.wideEvents, "wide-events", false, "log one INFO \"query\" line per executed query with the full cross-process breakdown")
	flag.StringVar(&c.debugAddr, "debug-addr", "", "serve net/http/pprof on this separate address (empty = disabled)")
	flag.StringVar(&c.logFormat, "log", "text", "log format: text or json")
	flag.BoolVar(&c.ingest, "ingest", false, "enable POST /ingest and /admin/compact (live segment appends)")
	flag.IntVar(&c.compactAfter, "compact-after", 8, "with -ingest, auto-compact once the index exceeds this many segments (0 disables)")
	flag.StringVar(&c.shards, "shards", "", "comma-separated shard list (index directories and/or http(s):// ndss-serve URLs); serves a scatter–gather coordinator over them instead of -index. Separate interchangeable replicas of one shard with | (url1|url2)")
	flag.DurationVar(&c.shardTimeout, "shard-timeout", 0, "per-shard deadline budget for fan-out legs; shards that miss it are skipped and the result is flagged partial (0 = request deadline only)")
	flag.IntVar(&c.shardInflight, "shard-inflight", 0, "per-remote-shard concurrent request cap (0 = the shard package default)")
	flag.IntVar(&c.shardRetries, "shard-retries", 2, "max extra attempts per shard leg after transient failures, each on a different replica (0 disables)")
	flag.Float64Var(&c.retryBudget, "retry-budget", 0.1, "retry/hedge token earned per primary attempt: sustained extra attempts stay under this fraction of the request rate")
	flag.DurationVar(&c.hedgeAfter, "hedge-after", 5*time.Millisecond, "hedge a shard leg onto another replica once the first attempt exceeds max(replica streaming P95, this floor) (0 disables)")
	flag.IntVar(&c.breakerFailures, "breaker-failures", 5, "consecutive failures that open a replica's circuit breaker")
	flag.DurationVar(&c.breakerCooldown, "breaker-cooldown", time.Second, "how long an open breaker rejects a replica before allowing a half-open trial")
	flag.DurationVar(&c.probeInterval, "probe-interval", 2*time.Second, "background replica health-probe period; recovered replicas rejoin without traffic (0 disables)")
	flag.Parse()

	if err := run(c); err != nil {
		fmt.Fprintln(os.Stderr, "ndss-serve:", err)
		os.Exit(1)
	}
}

func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	}
	return nil, fmt.Errorf("unknown -log format %q (want text or json)", format)
}

// servedBackend is an opened engine plus the corpus reader backing its
// verification source, closed together when a reload retires it.
type servedBackend struct {
	*core.Engine
	src *corpus.Reader // nil when serving without -corpus
}

func (b *servedBackend) Close() error {
	err := b.Engine.Close()
	if b.src != nil {
		if cerr := b.src.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// openBackend opens the index directory (and corpus, when configured)
// as one closable unit. It is also the server's Reloader: each reload
// opens fresh handles so the retiring backend can be closed safely.
func openBackend(idxDir, corpusPath string) (*servedBackend, error) {
	var (
		src search.TextSource
		r   *corpus.Reader
	)
	if corpusPath != "" {
		var err error
		r, err = corpus.OpenReader(corpusPath)
		if err != nil {
			return nil, err
		}
		src = r
	}
	engine, err := core.Open(idxDir, src)
	if err != nil {
		if r != nil {
			_ = r.Close() // the Open error is the one to report
		}
		return nil, err
	}
	return &servedBackend{Engine: engine, src: r}, nil
}

// replicaConfig maps the resilience flags onto shard.ReplicaConfig.
// The flags use 0 for "off" where that is the intuitive reading; the
// config uses negative for "off" so its zero value can mean "default".
func replicaConfig(c serveConfig) shard.ReplicaConfig {
	cfg := shard.ReplicaConfig{
		MaxRetries:      c.shardRetries,
		RetryBudget:     c.retryBudget,
		HedgeDelayMin:   c.hedgeAfter,
		BreakerFailures: c.breakerFailures,
		BreakerCooldown: c.breakerCooldown,
		ProbeInterval:   c.probeInterval,
	}
	if c.shardRetries <= 0 {
		cfg.MaxRetries = -1
	}
	if c.hedgeAfter <= 0 {
		cfg.HedgeDelayMin = -1
	}
	return cfg
}

// openCoordinator builds the scatter–gather backend for -shards: each
// comma-separated entry is one doc-range shard — an http(s):// URL (a
// remote ndss-serve, its metadata discovered via /healthz) or a local
// index directory (opened in-process). Text-id bases follow shard
// order, so the listing order must match the order the shards were
// split in.
//
// An entry may list |-separated interchangeable replicas of the same
// build (url1|url2); those are served through a ReplicaSet with
// retries, hedging, circuit breakers, and background health probes. A
// replica that is unreachable at startup joins its group quarantined
// and enters rotation once a probe reaches it — only a group with no
// reachable replica at all fails startup, because the coordinator
// needs each shard's metadata for text-id bases.
func openCoordinator(c serveConfig, logger *slog.Logger) (server.Backend, error) {
	var clients []shard.ShardClient
	ok := false
	defer func() {
		if !ok {
			for _, cl := range clients {
				_ = cl.Close() // the construction error is the one to report
			}
		}
	}()
	httpOpts := shard.HTTPOptions{MaxInFlight: c.shardInflight}
	for _, entry := range strings.Split(c.shards, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		var names []string
		for _, name := range strings.Split(entry, "|") {
			if name = strings.TrimSpace(name); name != "" {
				names = append(names, name)
			}
		}
		var reps []shard.ShardClient
		closeReps := func() {
			for _, r := range reps {
				_ = r.Close()
			}
		}
		for _, name := range names {
			if strings.HasPrefix(name, "http://") || strings.HasPrefix(name, "https://") {
				hs, err := shard.NewHTTPShard(context.Background(), name, httpOpts)
				if err != nil {
					if len(names) > 1 {
						logger.Warn("replica unreachable at startup; starting quarantined until a health probe reaches it",
							"replica", name, "error", err)
						reps = append(reps, shard.NewHTTPShardDeferred(name, httpOpts))
						continue
					}
					closeReps()
					return nil, err
				}
				reps = append(reps, hs)
				continue
			}
			b, err := openBackend(name, "")
			if err != nil {
				closeReps()
				return nil, err
			}
			reps = append(reps, shard.NewLocal(name, b))
		}
		switch len(reps) {
		case 0:
			continue
		case 1:
			clients = append(clients, reps[0])
		default:
			rs, err := shard.NewReplicaSet(entry, reps, replicaConfig(c))
			if err != nil {
				closeReps()
				return nil, err
			}
			clients = append(clients, rs)
		}
	}
	coord, err := shard.NewCoordinator(clients, shard.Config{ShardBudget: c.shardTimeout})
	if err != nil {
		return nil, err
	}
	if c.probeInterval > 0 {
		coord.StartProbers(context.Background(), c.probeInterval)
	}
	ok = true
	return coord, nil
}

// debugServer serves pprof on its own listener, keeping profiling off
// the query port entirely.
func debugServer(addr string, logger *slog.Logger) *http.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	hs := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		logger.Info("pprof listening", "addr", addr)
		if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			logger.Error("pprof server failed", "error", err)
		}
	}()
	return hs
}

func run(c serveConfig) error {
	logger, err := newLogger(c.logFormat)
	if err != nil {
		return err
	}
	var backend server.Backend
	if c.shards != "" {
		if c.ingest {
			return fmt.Errorf("-ingest is incompatible with -shards: the coordinator's text-id bases are fixed at startup; ingest into individual shards and restart (or SIGHUP) the coordinator")
		}
		if c.corpusPath != "" {
			return fmt.Errorf("-corpus is incompatible with -shards: configure verification on each shard's own server")
		}
		backend, err = openCoordinator(c, logger)
	} else {
		backend, err = openBackend(c.idxDir, c.corpusPath)
	}
	if err != nil {
		return err
	}
	defer func() {
		if cl, ok := backend.(io.Closer); ok {
			_ = cl.Close() // exiting; nothing useful to do with a close error
		}
	}()

	cache := c.cache
	if cache == 0 {
		cache = -1 // Config treats <0 as "disabled", 0 as "default"
	}
	slowlog := c.slowlog
	if slowlog == 0 {
		slowlog = -1
	}
	traceStore := c.traceStore
	if traceStore == 0 {
		traceStore = -1
	}
	scfg := server.Config{
		MaxInFlight:        c.maxInFlight,
		DefaultTimeout:     c.timeout,
		MaxTimeout:         c.maxTimeout,
		CacheEntries:       cache,
		Logger:             logger,
		SlowQueryThreshold: c.slowQuery,
		SlowlogEntries:     slowlog,
		TraceSampleRate:    c.traceSample,
		TraceStoreEntries:  traceStore,
		WideEvents:         c.wideEvents,
		Reloader: func() (server.Backend, error) {
			if c.shards != "" {
				// Rebuild the whole topology: local shards reopen their
				// directories, remote shards reconnect and re-learn their
				// build ids. The server's refcounted handle swaps the new
				// coordinator in with zero failed requests.
				return openCoordinator(c, logger)
			}
			return openBackend(c.idxDir, c.corpusPath)
		},
	}
	if c.ingest {
		scfg.Ingester = func(texts [][]uint32) (string, error) {
			return index.Append(c.idxDir, corpus.New(texts))
		}
		scfg.Compactor = func() error { return index.Compact(c.idxDir) }
		scfg.CompactAfter = c.compactAfter
	}
	srv := server.New(backend, scfg)
	hs := &http.Server{
		Addr:              c.addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	var dbg *http.Server
	if c.debugAddr != "" {
		dbg = debugServer(c.debugAddr, logger)
	}

	errc := make(chan error, 1)
	go func() {
		meta := backend.Meta()
		source := c.idxDir
		if c.shards != "" {
			source = c.shards
		}
		logger.Info("serving",
			"index", source, "build_id", backend.BuildID(),
			"k", meta.K, "t", meta.T, "texts", meta.NumTexts, "addr", c.addr)
		if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	for {
		select {
		case err := <-errc:
			return err
		case s := <-sig:
			if s == syscall.SIGHUP {
				oldID, newID, err := srv.Reload()
				if err != nil {
					logger.Error("reload failed, still serving previous index", "error", err)
				} else {
					logger.Info("reloaded index", "index", c.idxDir, "old_build_id", oldID, "build_id", newID)
				}
				continue
			}
			logger.Info("draining in-flight requests", "signal", s.String())
		}
		break
	}

	srv.BeginShutdown()
	ctx, cancel := context.WithTimeout(context.Background(), c.drain)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if dbg != nil {
		_ = dbg.Shutdown(ctx) // best-effort; the process is exiting either way
	}
	logger.Info("drained, exiting")
	return nil
}
