// Command ndss-dedup scans a corpus for internal near-duplicate content
// (a windowed self-join over the index) — the corpus-deduplication
// workflow that motivates near-duplicate search for LLM training data.
//
//	ndss-dedup -corpus corpus.tok -index idx -theta 0.8 -window 64
//
// The index must have been built over the same corpus.
package main

import (
	"flag"
	"fmt"
	"os"

	"ndss/internal/core"
	"ndss/internal/corpus"
	"ndss/internal/dedup"
	"ndss/internal/search"
)

func main() {
	corpusPath := flag.String("corpus", "", "corpus file (required)")
	idxDir := flag.String("index", "idx", "index directory built over the corpus")
	theta := flag.Float64("theta", 0.8, "Jaccard similarity threshold")
	window := flag.Int("window", 64, "scan window width in tokens")
	stride := flag.Int("stride", 0, "window stride (default: window width)")
	parallel := flag.Int("parallel", 1, "query workers")
	maxPrint := flag.Int("print", 20, "max pairs to print")
	flag.Parse()
	if *corpusPath == "" {
		fmt.Fprintln(os.Stderr, "ndss-dedup: -corpus is required")
		os.Exit(2)
	}
	if err := run(*corpusPath, *idxDir, *theta, *window, *stride, *parallel, *maxPrint); err != nil {
		fmt.Fprintln(os.Stderr, "ndss-dedup:", err)
		os.Exit(1)
	}
}

func run(corpusPath, idxDir string, theta float64, window, stride, parallel, maxPrint int) error {
	c, err := corpus.ReadFile(corpusPath)
	if err != nil {
		return err
	}
	engine, err := core.Open(idxDir, c)
	if err != nil {
		return err
	}
	defer engine.Close()

	pairs, stats, err := dedup.ScanCorpus(engine.Searcher(), c, dedup.Options{
		Theta:       theta,
		Window:      window,
		Stride:      stride,
		Search:      search.Options{PrefixFilter: true},
		Parallelism: parallel,
	})
	if err != nil {
		return err
	}
	fmt.Printf("scanned %d texts (%d windows) in %v\n", stats.Texts, stats.Windows, stats.Elapsed)
	fmt.Printf("query work: io %v, cpu %v, %d bytes read (exact per-query sums)\n",
		stats.IOTime, stats.CPUTime, stats.IOBytes)
	fmt.Printf("near-duplicate pairs: %d (across %d text pairs, %d raw window hits)\n",
		stats.Pairs, stats.TextPairs, stats.RawHits)
	for i, p := range pairs {
		if i >= maxPrint {
			fmt.Printf("... and %d more\n", len(pairs)-maxPrint)
			break
		}
		fmt.Printf("  text %d [%d, %d]  ~  text %d [%d, %d]  (est. Jaccard %.2f)\n",
			p.TextA, p.StartA, p.EndA, p.TextB, p.StartB, p.EndB, p.BestEstJaccard)
	}
	return nil
}
