# Developer entry points. Each target runs exactly what the matching CI
# job runs, so "it passed locally" and "it passed CI" mean the same
# thing.

GO ?= go
FUZZTIME ?= 2m

# Goroutine-leak verification in the server/shard/index test suites
# (internal/leakcheck, installed via TestMain). On by default; set
# NDSS_LEAKCHECK=0 for one-off debugging of a failing test whose
# deliberately-abandoned goroutines would otherwise add leak noise.
NDSS_LEAKCHECK ?= 1
export NDSS_LEAKCHECK

.PHONY: all build test race leakcheck lint vet fmt fuzz-smoke bench bench-check shard-suite chaos-suite ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# CI "test" job: gofmt + vet + build + the consolidated race matrix —
# full module under -race, then an uncached rerun of the
# concurrency-heavy serving tier (server, shard, obs, index).
race:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(GO) test -race -count=1 ./internal/server/ ./internal/shard/ ./internal/obs/ ./internal/index/

# The leak-checked suites alone, with the verifier force-enabled
# regardless of the environment.
leakcheck:
	NDSS_LEAKCHECK=1 $(GO) test -race -count=1 ./internal/server/ ./internal/shard/ ./internal/index/

# CI "shard-suite" job: scatter–gather determinism and fault-injected
# partial results under the race detector, plus the serving-layer
# regression tests that gate the same PR.
shard-suite:
	$(GO) test -race -count=1 ./internal/shard/
	$(GO) test -race -count=1 -run 'Shard|Partial|BodyLimit|CacheKey|Swap' ./internal/server/

# CI "chaos-suite" job: the netfault scripted-failure harness and the
# replica-resilience tests under the race detector — replica kills,
# dead ranges, black holes, breaker/quarantine recovery, the
# coordinator-vs-merged-index determinism assertions, and the
# distributed-trace acceptance run (scripted retry + hedge must yield
# one connected trace tree at /debug/trace).
chaos-suite:
	$(GO) test -race -count=1 ./internal/shard/netfault/
	$(GO) test -race -count=1 -run 'Chaos|Replica|Breaker|TokenBucket|QuantileWindow|NextBackoff' ./internal/shard/
	$(GO) test -race -count=1 -run 'ReloadRace|ReplicaMetrics|ChaosTrace' ./internal/server/

# CI "lint" job: the invariant analyzers (docs/INVARIANTS.md), both
# standalone and driven by the go command, plus their fixture tests.
lint:
	$(GO) run ./cmd/ndss-lint ./...
	$(GO) build -o $(CURDIR)/bin/ndss-lint ./cmd/ndss-lint
	$(GO) vet -vettool=$(CURDIR)/bin/ndss-lint ./...
	$(GO) test -count=1 ./internal/analysis/...
	$(GO) run ./cmd/ndss-lint -suppressions ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# CI "fuzz-smoke" job: each fuzz target over its checked-in seed corpus
# plus FUZZTIME of fresh mutation.
fuzz-smoke:
	$(GO) test ./internal/window/ -run FuzzCompactWindows -fuzz FuzzCompactWindows -fuzztime $(FUZZTIME)
	$(GO) test ./internal/window/ -run FuzzGenerateLinear -fuzz FuzzGenerateLinear -fuzztime $(FUZZTIME)
	$(GO) test ./internal/index/ -run FuzzManifestParse -fuzz FuzzManifestParse -fuzztime $(FUZZTIME)

# CI "bench-smoke" job: the full figure/table suite into BENCH.json at
# the repo root (a stable path wherever make is invoked from), then the
# schema check.
bench:
	$(GO) run ./cmd/ndss-bench -json $(CURDIR)/BENCH.json
	$(GO) run ./cmd/ndss-bench -check $(CURDIR)/BENCH.json

bench-check:
	$(GO) run ./cmd/ndss-bench -check $(CURDIR)/BENCH.json

# Everything a merge gate runs.
ci: race lint shard-suite chaos-suite test
