package core

import (
	"math/rand"
	"path/filepath"
	"testing"

	"ndss/internal/corpus"
	"ndss/internal/index"
	"ndss/internal/search"
)

func testCorpus() *corpus.Corpus {
	return corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts: 40, MinLength: 40, MaxLength: 120, VocabSize: 150,
		ZipfS: 1.3, Seed: 17, DupRate: 0.3, DupSnippetLen: 24, DupMutateProb: 0,
	})
}

func TestEngineBuildOpenSearch(t *testing.T) {
	c := testCorpus()
	dir := filepath.Join(t.TempDir(), "nested", "idx") // MkdirAll path
	stats, err := BuildIndex(c, dir, index.BuildOptions{K: 16, Seed: 7, T: 10})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Windows == 0 {
		t.Fatal("no windows built")
	}
	e, err := Open(dir, c)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Index().Meta().K != 16 {
		t.Fatalf("meta K = %d", e.Index().Meta().K)
	}
	if e.Searcher() == nil {
		t.Fatal("nil searcher")
	}

	rng := rand.New(rand.NewSource(3))
	q, srcID, srcStart, ok := corpus.PlantQuery(c, 15, 0, 150, rng)
	if !ok {
		t.Fatal("plant failed")
	}
	matches, st, err := e.Search(q, search.Options{Theta: 0.9, PrefixFilter: true, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.K != 16 {
		t.Fatalf("stats K = %d", st.K)
	}
	found := false
	for _, m := range matches {
		if m.TextID == srcID && m.Start <= srcStart && srcStart <= m.End {
			found = true
		}
	}
	if !found {
		t.Fatalf("verbatim plant not found: %+v", matches)
	}
}

func TestEngineExternalBuild(t *testing.T) {
	c := testCorpus()
	dir := t.TempDir()
	corpusPath := filepath.Join(dir, "c.tok")
	if err := corpus.WriteFile(c, corpusPath); err != nil {
		t.Fatal(err)
	}
	idxDir := filepath.Join(dir, "idx")
	stats, err := BuildIndexExternal(corpusPath, idxDir, index.BuildOptions{
		K: 8, Seed: 9, T: 10, BatchTokens: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Windows == 0 {
		t.Fatal("no windows built")
	}
	e, err := Open(idxDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// Verify without a source must fail cleanly through the engine too.
	q := c.Text(0)[:15]
	if _, _, err := e.Search(q, search.Options{Theta: 0.9, Verify: true}); err == nil {
		t.Fatal("Verify without source should fail")
	}
	matches, _, err := e.Search(q, search.Options{Theta: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("self-query found nothing")
	}
}

func TestEngineOpenErrors(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "missing"), nil); err == nil {
		t.Fatal("missing dir should fail")
	}
	if _, err := BuildIndexExternal(filepath.Join(t.TempDir(), "missing.tok"), t.TempDir(), index.BuildOptions{K: 1, T: 5}); err == nil {
		t.Fatal("missing corpus should fail")
	}
}
