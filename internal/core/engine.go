// Package core ties the substrates together into the system the paper
// describes: offline index construction (Algorithm 1) over a corpus and
// online near-duplicate sequence search (Algorithm 3) against the
// resulting index directory. It is the implementation behind the public
// ndss package.
package core

import (
	"context"
	"fmt"
	"os"

	"ndss/internal/corpus"
	"ndss/internal/hash"
	"ndss/internal/index"
	"ndss/internal/search"
)

// Engine is an opened near-duplicate search database: an index plus an
// optional text source for verification.
type Engine struct {
	ix       *index.Index
	searcher *search.Searcher
	src      search.TextSource
}

// BuildIndex builds an index directory from an in-memory corpus,
// creating dir if needed.
func BuildIndex(c *corpus.Corpus, dir string, opts index.BuildOptions) (*index.BuildStats, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: create index dir: %w", err)
	}
	return index.Build(c, dir, opts)
}

// BuildIndexExternal builds an index directory from a corpus file using
// the out-of-core hash-aggregation builder.
func BuildIndexExternal(corpusPath, dir string, opts index.BuildOptions) (*index.BuildStats, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: create index dir: %w", err)
	}
	r, err := corpus.OpenReader(corpusPath)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return index.BuildExternal(r, dir, opts)
}

// Open opens an index directory. src supplies text content for
// verification and may be nil.
func Open(dir string, src search.TextSource) (*Engine, error) {
	ix, err := index.Open(dir)
	if err != nil {
		return nil, err
	}
	return &Engine{ix: ix, searcher: search.New(ix, src), src: src}, nil
}

// Search runs one near-duplicate sequence search.
func (e *Engine) Search(query []uint32, opts search.Options) ([]search.Match, *search.Stats, error) {
	return e.searcher.Search(query, opts)
}

// SearchContext is Search honoring a context: a timed-out or canceled
// query stops at the pipeline's next cancellation checkpoint (before
// any further list I/O) and returns ctx.Err().
func (e *Engine) SearchContext(ctx context.Context, query []uint32, opts search.Options) ([]search.Match, *search.Stats, error) {
	return e.searcher.SearchContext(ctx, query, opts)
}

// SearchBatch runs many queries concurrently over a worker pool. Each
// result carries exact per-query I/O and CPU stats regardless of
// parallelism (every query runs in its own execution context).
func (e *Engine) SearchBatch(queries [][]uint32, opts search.Options, parallelism int) []search.BatchResult {
	return e.searcher.SearchBatch(queries, opts, parallelism)
}

// SearchBatchContext is SearchBatch honoring a context; see
// search.SearchBatchContext for the cancellation contract.
func (e *Engine) SearchBatchContext(ctx context.Context, queries [][]uint32, opts search.Options, parallelism int) []search.BatchResult {
	return e.searcher.SearchBatchContext(ctx, queries, opts, parallelism)
}

// SearchTopKContext runs a ranked top-k retrieval honoring a context.
func (e *Engine) SearchTopKContext(ctx context.Context, query []uint32, opts search.TopKOptions) ([]search.Match, *search.Stats, error) {
	return e.searcher.SearchTopKContext(ctx, query, opts)
}

// Meta returns the opened index's metadata.
func (e *Engine) Meta() index.Meta { return e.ix.Meta() }

// BuildID identifies the index build this engine serves ("legacy" for
// pre-manifest indexes).
func (e *Engine) BuildID() string { return e.ix.BuildID() }

// SegmentCount reports how many immutable segments back this engine's
// index (1 until appends grow the set; compaction folds it back to 1).
func (e *Engine) SegmentCount() int { return e.ix.SegmentCount() }

// Family returns the hash family queries are sketched with.
func (e *Engine) Family() *hash.Family { return e.ix.Family() }

// IOStats returns the index-wide cumulative I/O counters.
func (e *Engine) IOStats() index.IOStats { return e.ix.IOStats() }

// Explain returns the deferral plan a query would execute with, without
// reading any posting lists. The context is accepted for interface
// symmetry with the serving layer (planning itself does no I/O).
func (e *Engine) Explain(ctx context.Context, query []uint32, opts search.Options) (*search.Plan, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.searcher.Explain(query, opts)
}

// Index exposes the underlying index for stats and experiments.
func (e *Engine) Index() *index.Index { return e.ix }

// Searcher exposes the underlying searcher.
func (e *Engine) Searcher() *search.Searcher { return e.searcher }

// Close releases the index files.
func (e *Engine) Close() error { return e.ix.Close() }
