// Package corpus provides the tokenized-corpus substrate: an in-memory
// corpus model, a binary on-disk format with random access, streaming
// batch readers for out-of-core index construction, and a synthetic
// corpus generator with Zipf-distributed token frequencies and
// controlled near-duplicate injection.
//
// A corpus is an ordered collection of texts; a text is a sequence of
// 32-bit token ids (the paper stores each token as a 4-byte integer).
// Text ids are dense indexes 0..NumTexts-1.
package corpus

import (
	"fmt"
	"math"
)

// Corpus is an in-memory tokenized corpus. The zero value is an empty
// corpus ready for use.
type Corpus struct {
	texts [][]uint32
}

// New creates a corpus from pre-tokenized texts. The slices are retained,
// not copied.
func New(texts [][]uint32) *Corpus {
	return &Corpus{texts: texts}
}

// Append adds a text and returns its id.
func (c *Corpus) Append(tokens []uint32) uint32 {
	c.texts = append(c.texts, tokens)
	return uint32(len(c.texts) - 1)
}

// NumTexts returns the number of texts.
func (c *Corpus) NumTexts() int { return len(c.texts) }

// Text returns the token sequence of text id. It panics on an invalid
// id; use NumTexts to bound ids.
func (c *Corpus) Text(id uint32) []uint32 {
	if int(id) >= len(c.texts) {
		panic(fmt.Sprintf("corpus: text id %d out of range [0, %d)", id, len(c.texts)))
	}
	return c.texts[id]
}

// Sequence returns tokens [i, j] (0-based, inclusive) of text id.
func (c *Corpus) Sequence(id uint32, i, j int32) []uint32 {
	text := c.Text(id)
	if i < 0 || j >= int32(len(text)) || i > j {
		panic(fmt.Sprintf("corpus: invalid sequence [%d, %d] in text %d of length %d",
			i, j, id, len(text)))
	}
	return text[i : j+1]
}

// ReadText returns the token sequence of text id, mirroring
// Reader.ReadText so in-memory corpora and corpus files satisfy the same
// text-source interfaces.
func (c *Corpus) ReadText(id uint32) ([]uint32, error) {
	if int(id) >= len(c.texts) {
		return nil, fmt.Errorf("corpus: text id %d out of range [0, %d)", id, len(c.texts))
	}
	return c.texts[id], nil
}

// TotalTokens returns the total number of tokens across all texts.
func (c *Corpus) TotalTokens() int64 {
	var n int64
	for _, t := range c.texts {
		n += int64(len(t))
	}
	return n
}

// Stats summarizes corpus shape.
type Stats struct {
	NumTexts       int
	TotalTokens    int64
	DistinctTokens int
	MinTextLen     int
	MaxTextLen     int
	MeanTextLen    float64
}

// Stats computes summary statistics in one pass.
func (c *Corpus) Stats() Stats {
	s := Stats{NumTexts: len(c.texts)}
	if len(c.texts) == 0 {
		return s
	}
	seen := make(map[uint32]struct{})
	s.MinTextLen = math.MaxInt
	for _, t := range c.texts {
		s.TotalTokens += int64(len(t))
		if len(t) < s.MinTextLen {
			s.MinTextLen = len(t)
		}
		if len(t) > s.MaxTextLen {
			s.MaxTextLen = len(t)
		}
		for _, tok := range t {
			seen[tok] = struct{}{}
		}
	}
	s.DistinctTokens = len(seen)
	s.MeanTextLen = float64(s.TotalTokens) / float64(s.NumTexts)
	return s
}

// TokenFrequencies returns the occurrence count of every token id seen in
// the corpus.
func (c *Corpus) TokenFrequencies() map[uint32]int64 {
	freq := make(map[uint32]int64)
	for _, t := range c.texts {
		for _, tok := range t {
			freq[tok]++
		}
	}
	return freq
}
