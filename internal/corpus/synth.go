package corpus

import (
	"fmt"
	"math/rand"
)

// SynthConfig controls synthetic corpus generation.
//
// Token frequencies follow a Zipf distribution, matching the natural-
// language skew the paper's prefix-filtering analysis relies on ("the
// frequency of the most frequent token is twice that of the second most
// frequent token, …"). A configurable fraction of texts embeds a mutated
// copy of a snippet from an earlier text, planting genuine near-duplicate
// sequences across texts.
type SynthConfig struct {
	NumTexts  int
	MinLength int // minimum text length in tokens
	MaxLength int // maximum text length in tokens (inclusive)
	VocabSize int // token ids are drawn from [0, VocabSize)
	ZipfS     float64
	Seed      int64

	// DupRate is the probability that a text embeds a near-duplicate of
	// a snippet from a previously generated text.
	DupRate float64
	// DupSnippetLen is the length of the planted snippets.
	DupSnippetLen int
	// DupMutateProb is the per-token probability that a planted snippet
	// token is replaced by a random token, turning exact duplicates into
	// near-duplicates.
	DupMutateProb float64
}

// DefaultSynthConfig returns a config producing a small web-like corpus.
func DefaultSynthConfig() SynthConfig {
	return SynthConfig{
		NumTexts:      1000,
		MinLength:     100,
		MaxLength:     1000,
		VocabSize:     32000,
		ZipfS:         1.07,
		Seed:          1,
		DupRate:       0.1,
		DupSnippetLen: 64,
		DupMutateProb: 0.05,
	}
}

func (cfg SynthConfig) validate() error {
	switch {
	case cfg.NumTexts <= 0:
		return fmt.Errorf("corpus: NumTexts must be positive, got %d", cfg.NumTexts)
	case cfg.MinLength <= 0 || cfg.MaxLength < cfg.MinLength:
		return fmt.Errorf("corpus: bad length range [%d, %d]", cfg.MinLength, cfg.MaxLength)
	case cfg.VocabSize <= 1:
		return fmt.Errorf("corpus: VocabSize must exceed 1, got %d", cfg.VocabSize)
	case cfg.ZipfS <= 1:
		return fmt.Errorf("corpus: ZipfS must exceed 1 for rand.Zipf, got %v", cfg.ZipfS)
	case cfg.DupRate < 0 || cfg.DupRate > 1:
		return fmt.Errorf("corpus: DupRate must be in [0, 1], got %v", cfg.DupRate)
	case cfg.DupRate > 0 && cfg.DupSnippetLen <= 0:
		return fmt.Errorf("corpus: DupSnippetLen must be positive when DupRate > 0")
	}
	return nil
}

// Synthesize generates a corpus per cfg. Generation is deterministic in
// cfg.Seed.
func Synthesize(cfg SynthConfig) (*Corpus, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.VocabSize-1))
	c := &Corpus{texts: make([][]uint32, 0, cfg.NumTexts)}

	// Pool of source snippets for near-duplicate planting.
	var pool [][]uint32
	const maxPool = 256

	for i := 0; i < cfg.NumTexts; i++ {
		n := cfg.MinLength + rng.Intn(cfg.MaxLength-cfg.MinLength+1)
		text := make([]uint32, n)
		for j := range text {
			text[j] = uint32(zipf.Uint64())
		}
		if cfg.DupRate > 0 && len(pool) > 0 && rng.Float64() < cfg.DupRate {
			snip := pool[rng.Intn(len(pool))]
			if len(snip) <= n {
				at := rng.Intn(n - len(snip) + 1)
				for j, tok := range snip {
					if rng.Float64() < cfg.DupMutateProb {
						tok = uint32(zipf.Uint64())
					}
					text[at+j] = tok
				}
			}
		}
		if cfg.DupRate > 0 && n >= cfg.DupSnippetLen {
			at := rng.Intn(n - cfg.DupSnippetLen + 1)
			snip := make([]uint32, cfg.DupSnippetLen)
			copy(snip, text[at:at+cfg.DupSnippetLen])
			if len(pool) < maxPool {
				pool = append(pool, snip)
			} else {
				pool[rng.Intn(maxPool)] = snip
			}
		}
		c.texts = append(c.texts, text)
	}
	return c, nil
}

// MustSynthesize is Synthesize but panics on config errors. For tests and
// benchmarks with constant configs.
func MustSynthesize(cfg SynthConfig) *Corpus {
	c, err := Synthesize(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// PlantQuery derives a query sequence that is a near-duplicate of a known
// region of the corpus: it copies length tokens starting at a random
// position of a random (long-enough) text and mutates each token with
// probability mutateProb. It returns the query and the source location.
// Returns ok=false if no text is long enough.
func PlantQuery(c *Corpus, length int, mutateProb float64, vocabSize int, rng *rand.Rand) (q []uint32, textID uint32, start int32, ok bool) {
	if c.NumTexts() == 0 || length <= 0 {
		return nil, 0, 0, false
	}
	// Try a bounded number of random texts before scanning.
	for attempt := 0; attempt < 32; attempt++ {
		id := uint32(rng.Intn(c.NumTexts()))
		text := c.Text(id)
		if len(text) < length {
			continue
		}
		at := rng.Intn(len(text) - length + 1)
		q = make([]uint32, length)
		copy(q, text[at:at+length])
		for i := range q {
			if rng.Float64() < mutateProb {
				q[i] = uint32(rng.Intn(vocabSize))
			}
		}
		return q, id, int32(at), true
	}
	return nil, 0, 0, false
}
