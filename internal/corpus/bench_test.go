package corpus

import (
	"path/filepath"
	"testing"
)

func benchCorpus(b *testing.B) *Corpus {
	b.Helper()
	return MustSynthesize(SynthConfig{
		NumTexts: 500, MinLength: 100, MaxLength: 500,
		VocabSize: 32000, ZipfS: 1.07, Seed: 1,
	})
}

func BenchmarkSynthesize(b *testing.B) {
	cfg := SynthConfig{
		NumTexts: 200, MinLength: 100, MaxLength: 500,
		VocabSize: 32000, ZipfS: 1.07, Seed: 1,
		DupRate: 0.1, DupSnippetLen: 64, DupMutateProb: 0.05,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MustSynthesize(cfg)
	}
}

func BenchmarkWriteFile(b *testing.B) {
	c := benchCorpus(b)
	dir := b.TempDir()
	b.SetBytes(c.TotalTokens() * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteFile(c, filepath.Join(dir, "c.tok")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadFile(b *testing.B) {
	c := benchCorpus(b)
	path := filepath.Join(b.TempDir(), "c.tok")
	if err := WriteFile(c, path); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(c.TotalTokens() * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadFile(path); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStream(b *testing.B) {
	c := benchCorpus(b)
	path := filepath.Join(b.TempDir(), "c.tok")
	if err := WriteFile(c, path); err != nil {
		b.Fatal(err)
	}
	r, err := OpenReader(path)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	b.SetBytes(c.TotalTokens() * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := r.Stream(1<<16, func(_ uint32, _ [][]uint32) error { return nil })
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomAccess(b *testing.B) {
	c := benchCorpus(b)
	path := filepath.Join(b.TempDir(), "c.tok")
	if err := WriteFile(c, path); err != nil {
		b.Fatal(err)
	}
	r, err := OpenReader(path)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.ReadText(uint32(i % r.NumTexts())); err != nil {
			b.Fatal(err)
		}
	}
}
