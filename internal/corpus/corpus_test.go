package corpus

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCorpusBasics(t *testing.T) {
	c := New(nil)
	if c.NumTexts() != 0 || c.TotalTokens() != 0 {
		t.Fatal("empty corpus should be empty")
	}
	id0 := c.Append([]uint32{1, 2, 3})
	id1 := c.Append([]uint32{4, 5})
	if id0 != 0 || id1 != 1 {
		t.Fatalf("ids = %d, %d; want 0, 1", id0, id1)
	}
	if c.NumTexts() != 2 || c.TotalTokens() != 5 {
		t.Fatalf("NumTexts=%d TotalTokens=%d", c.NumTexts(), c.TotalTokens())
	}
	if !reflect.DeepEqual(c.Text(1), []uint32{4, 5}) {
		t.Fatalf("Text(1) = %v", c.Text(1))
	}
	if !reflect.DeepEqual(c.Sequence(0, 1, 2), []uint32{2, 3}) {
		t.Fatalf("Sequence = %v", c.Sequence(0, 1, 2))
	}
}

func TestCorpusPanics(t *testing.T) {
	c := New([][]uint32{{1, 2, 3}})
	for _, fn := range []func(){
		func() { c.Text(5) },
		func() { c.Sequence(0, -1, 1) },
		func() { c.Sequence(0, 2, 1) },
		func() { c.Sequence(0, 0, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestStats(t *testing.T) {
	c := New([][]uint32{
		{1, 2, 2, 3},
		{3, 4},
		{5, 5, 5, 5, 5, 5},
	})
	s := c.Stats()
	if s.NumTexts != 3 || s.TotalTokens != 12 || s.DistinctTokens != 5 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MinTextLen != 2 || s.MaxTextLen != 6 || s.MeanTextLen != 4 {
		t.Fatalf("stats = %+v", s)
	}
	empty := New(nil).Stats()
	if empty.NumTexts != 0 || empty.TotalTokens != 0 {
		t.Fatalf("empty stats = %+v", empty)
	}
}

func TestTokenFrequencies(t *testing.T) {
	c := New([][]uint32{{1, 1, 2}, {2, 3}})
	freq := c.TokenFrequencies()
	want := map[uint32]int64{1: 2, 2: 2, 3: 1}
	if !reflect.DeepEqual(freq, want) {
		t.Fatalf("freq = %v, want %v", freq, want)
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.tok")
	c := New([][]uint32{
		{1, 2, 3},
		{},
		{4294967295, 0, 7},
		{9},
	})
	if err := WriteFile(c, path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTexts() != c.NumTexts() {
		t.Fatalf("NumTexts = %d, want %d", got.NumTexts(), c.NumTexts())
	}
	for id := 0; id < c.NumTexts(); id++ {
		a, b := c.Text(uint32(id)), got.Text(uint32(id))
		if len(a) == 0 && len(b) == 0 {
			continue
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("text %d: %v vs %v", id, a, b)
		}
	}
}

func TestRandomAccessReader(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.tok")
	rng := rand.New(rand.NewSource(5))
	texts := make([][]uint32, 50)
	for i := range texts {
		n := rng.Intn(200)
		texts[i] = make([]uint32, n)
		for j := range texts[i] {
			texts[i][j] = rng.Uint32()
		}
	}
	if err := WriteFile(New(texts), path); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumTexts() != 50 {
		t.Fatalf("NumTexts = %d", r.NumTexts())
	}
	// Random access in shuffled order.
	for _, id := range rng.Perm(50) {
		got, err := r.ReadText(uint32(id))
		if err != nil {
			t.Fatalf("ReadText(%d): %v", id, err)
		}
		if len(got) == 0 && len(texts[id]) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, texts[id]) {
			t.Fatalf("text %d mismatch", id)
		}
	}
	if _, err := r.ReadText(50); err == nil {
		t.Fatal("out-of-range ReadText should fail")
	}
}

func TestStreamBatches(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.tok")
	texts := make([][]uint32, 30)
	for i := range texts {
		texts[i] = []uint32{uint32(i), uint32(i * 2), uint32(i * 3)}
	}
	if err := WriteFile(New(texts), path); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var gotIDs []uint32
	var batches int
	err = r.Stream(10, func(firstID uint32, batch [][]uint32) error {
		batches++
		for i, text := range batch {
			id := firstID + uint32(i)
			gotIDs = append(gotIDs, id)
			if !reflect.DeepEqual(text, texts[id]) {
				t.Fatalf("text %d mismatch in stream", id)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(gotIDs) != 30 {
		t.Fatalf("streamed %d texts, want 30", len(gotIDs))
	}
	if batches < 2 {
		t.Fatalf("expected multiple batches, got %d", batches)
	}
	for i, id := range gotIDs {
		if id != uint32(i) {
			t.Fatalf("ids out of order at %d: %d", i, id)
		}
	}
}

func TestOpenReaderRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.tok")
	if err := os.WriteFile(path, []byte("this is not a corpus file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenReader(path); err == nil {
		t.Fatal("garbage file should not open")
	}
	// Truncated real file.
	good := filepath.Join(dir, "good.tok")
	if err := WriteFile(New([][]uint32{{1, 2, 3}}), good); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.tok")
	if err := os.WriteFile(trunc, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenReader(trunc); err == nil {
		t.Fatal("truncated file should not open")
	}
}

func TestWriterLifecycle(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(filepath.Join(dir, "w.tok"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add([]uint32{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent; Add after Close fails.
	if err := w.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := w.Add([]uint32{3}); err == nil {
		t.Fatal("Add after Close should fail")
	}
	// Writing into a missing directory fails up front.
	if _, err := NewWriter(filepath.Join(dir, "no", "such", "w.tok")); err == nil {
		t.Fatal("NewWriter into missing dir should fail")
	}
}

func TestReadTextMethodOnCorpus(t *testing.T) {
	c := New([][]uint32{{1, 2, 3}})
	got, err := c.ReadText(0)
	if err != nil || len(got) != 3 {
		t.Fatalf("ReadText: %v %v", got, err)
	}
	if _, err := c.ReadText(7); err == nil {
		t.Fatal("out-of-range ReadText should fail")
	}
}

func TestSynthesizeValidation(t *testing.T) {
	bad := []SynthConfig{
		{NumTexts: 0, MinLength: 1, MaxLength: 2, VocabSize: 10, ZipfS: 1.1},
		{NumTexts: 1, MinLength: 0, MaxLength: 2, VocabSize: 10, ZipfS: 1.1},
		{NumTexts: 1, MinLength: 5, MaxLength: 2, VocabSize: 10, ZipfS: 1.1},
		{NumTexts: 1, MinLength: 1, MaxLength: 2, VocabSize: 1, ZipfS: 1.1},
		{NumTexts: 1, MinLength: 1, MaxLength: 2, VocabSize: 10, ZipfS: 1.0},
		{NumTexts: 1, MinLength: 1, MaxLength: 2, VocabSize: 10, ZipfS: 1.1, DupRate: 1.5},
		{NumTexts: 1, MinLength: 1, MaxLength: 2, VocabSize: 10, ZipfS: 1.1, DupRate: 0.5, DupSnippetLen: 0},
	}
	for i, cfg := range bad {
		if _, err := Synthesize(cfg); err == nil {
			t.Errorf("config %d should be rejected: %+v", i, cfg)
		}
	}
}

func TestSynthesizeShape(t *testing.T) {
	cfg := SynthConfig{
		NumTexts:  200,
		MinLength: 50,
		MaxLength: 150,
		VocabSize: 1000,
		ZipfS:     1.2,
		Seed:      7,
	}
	c := MustSynthesize(cfg)
	if c.NumTexts() != 200 {
		t.Fatalf("NumTexts = %d", c.NumTexts())
	}
	s := c.Stats()
	if s.MinTextLen < 50 || s.MaxTextLen > 150 {
		t.Fatalf("length range violated: %+v", s)
	}
	for id := 0; id < c.NumTexts(); id++ {
		for _, tok := range c.Text(uint32(id)) {
			if tok >= 1000 {
				t.Fatalf("token %d out of vocab", tok)
			}
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	cfg := DefaultSynthConfig()
	cfg.NumTexts = 50
	a := MustSynthesize(cfg)
	b := MustSynthesize(cfg)
	for id := 0; id < a.NumTexts(); id++ {
		if !reflect.DeepEqual(a.Text(uint32(id)), b.Text(uint32(id))) {
			t.Fatalf("text %d differs between same-seed corpora", id)
		}
	}
	cfg.Seed++
	c := MustSynthesize(cfg)
	same := true
	for id := 0; id < a.NumTexts() && same; id++ {
		if !reflect.DeepEqual(a.Text(uint32(id)), c.Text(uint32(id))) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestSynthesizeZipfSkew(t *testing.T) {
	cfg := SynthConfig{
		NumTexts:  300,
		MinLength: 200,
		MaxLength: 400,
		VocabSize: 5000,
		ZipfS:     1.2,
		Seed:      11,
	}
	c := MustSynthesize(cfg)
	freq := c.TokenFrequencies()
	var maxFreq, total int64
	for _, f := range freq {
		if f > maxFreq {
			maxFreq = f
		}
		total += f
	}
	// Zipf skew: the top token should hold a markedly larger share than
	// the uniform 1/vocab baseline.
	if float64(maxFreq)/float64(total) < 10.0/float64(cfg.VocabSize) {
		t.Fatalf("token distribution looks uniform: max share %v", float64(maxFreq)/float64(total))
	}
}

func TestSynthesizeDupInjection(t *testing.T) {
	cfg := SynthConfig{
		NumTexts:      400,
		MinLength:     100,
		MaxLength:     200,
		VocabSize:     100000, // huge vocab => accidental repeats unlikely
		ZipfS:         3,      // strongly skewed but wide
		Seed:          13,
		DupRate:       0.5,
		DupSnippetLen: 32,
		DupMutateProb: 0,
	}
	c := MustSynthesize(cfg)
	// With DupRate 0.5 and no mutation, many 32-grams must appear in more
	// than one text. Count cross-text repeated 32-gram prefixes cheaply by
	// hashing 32-gram token sums at planted granularity: instead, check
	// directly that at least one 32-token window of some text appears
	// verbatim in another text.
	type key [4]uint32
	seen := make(map[key]uint32) // fingerprint -> first text id
	found := false
outer:
	for id := 0; id < c.NumTexts(); id++ {
		text := c.Text(uint32(id))
		for i := 0; i+32 <= len(text); i++ {
			var k key
			k[0], k[1], k[2], k[3] = text[i], text[i+8], text[i+16], text[i+31]
			if first, ok := seen[k]; ok && first != uint32(id) {
				found = true
				break outer
			}
			seen[k] = uint32(id)
		}
	}
	if !found {
		t.Fatal("duplicate injection produced no cross-text repeats")
	}
}

func TestPlantQuery(t *testing.T) {
	cfg := DefaultSynthConfig()
	cfg.NumTexts = 20
	cfg.MinLength = 100
	cfg.MaxLength = 200
	c := MustSynthesize(cfg)
	rng := rand.New(rand.NewSource(3))
	q, textID, start, ok := PlantQuery(c, 64, 0, cfg.VocabSize, rng)
	if !ok {
		t.Fatal("PlantQuery failed")
	}
	if len(q) != 64 {
		t.Fatalf("query length %d", len(q))
	}
	src := c.Sequence(textID, start, start+63)
	if !reflect.DeepEqual(q, src) {
		t.Fatal("unmutated planted query should equal source")
	}
	// Too-long query on short corpus.
	short := New([][]uint32{{1, 2, 3}})
	if _, _, _, ok := PlantQuery(short, 10, 0, 10, rng); ok {
		t.Fatal("PlantQuery should fail when no text is long enough")
	}
}

func TestFileRoundTripProperty(t *testing.T) {
	dir := t.TempDir()
	i := 0
	f := func(raw [][]uint32) bool {
		i++
		path := filepath.Join(dir, "p"+string(rune('a'+i%26))+".tok")
		c := New(raw)
		if err := WriteFile(c, path); err != nil {
			return false
		}
		got, err := ReadFile(path)
		if err != nil {
			return false
		}
		if got.NumTexts() != c.NumTexts() {
			return false
		}
		for id := 0; id < c.NumTexts(); id++ {
			a, b := c.Text(uint32(id)), got.Text(uint32(id))
			if len(a) != len(b) {
				return false
			}
			for j := range a {
				if a[j] != b[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
