package corpus

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// On-disk layout (all integers little-endian):
//
//	magic   [8]byte  "NDSSTOK1"
//	numTexts uint32
//	reserved uint32
//	texts:   numTexts records of [length uint32][tokens ...uint32]
//	footer:  numTexts offsets (uint64, absolute file offset of each record)
//	trailer: footerOffset uint64
//
// The footer enables O(1) random access to any text; sequential streaming
// just walks the records.

const tokMagic = "NDSSTOK1"

// ErrBadFormat reports a corrupt or foreign corpus file.
var ErrBadFormat = errors.New("corpus: bad file format")

// Writer writes a corpus file incrementally. Call Add for each text and
// Close to seal the footer.
type Writer struct {
	f       *os.File
	w       *bufio.Writer
	offsets []uint64
	pos     uint64
	closed  bool
}

// NewWriter creates (truncates) path and writes the header.
func NewWriter(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("corpus: create writer: %w", err)
	}
	w := &Writer{f: f, w: bufio.NewWriterSize(f, 1<<20)}
	if _, err := w.w.WriteString(tokMagic); err != nil {
		f.Close()
		return nil, err
	}
	// numTexts is unknown until Close; write a placeholder now and fix it
	// on Close via WriteAt.
	var hdr [8]byte
	if _, err := w.w.Write(hdr[:]); err != nil {
		f.Close()
		return nil, err
	}
	w.pos = uint64(len(tokMagic)) + 8
	return w, nil
}

// Add appends one text.
func (w *Writer) Add(tokens []uint32) error {
	if w.closed {
		return errors.New("corpus: writer is closed")
	}
	w.offsets = append(w.offsets, w.pos)
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(tokens)))
	if _, err := w.w.Write(lenBuf[:]); err != nil {
		return err
	}
	buf := make([]byte, 4*len(tokens))
	for i, tok := range tokens {
		binary.LittleEndian.PutUint32(buf[4*i:], tok)
	}
	if _, err := w.w.Write(buf); err != nil {
		return err
	}
	w.pos += uint64(4 + len(buf))
	return nil
}

// Close writes the footer and trailer and closes the file.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	footerOff := w.pos
	buf := make([]byte, 8*len(w.offsets)+8)
	for i, off := range w.offsets {
		binary.LittleEndian.PutUint64(buf[8*i:], off)
	}
	binary.LittleEndian.PutUint64(buf[8*len(w.offsets):], footerOff)
	if _, err := w.w.Write(buf); err != nil {
		w.f.Close()
		return err
	}
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	// Patch numTexts in the header.
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(w.offsets)))
	if _, err := w.f.WriteAt(cnt[:], int64(len(tokMagic))); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// WriteFile writes an in-memory corpus to path.
func WriteFile(c *Corpus, path string) error {
	w, err := NewWriter(path)
	if err != nil {
		return err
	}
	for id := 0; id < c.NumTexts(); id++ {
		if err := w.Add(c.Text(uint32(id))); err != nil {
			w.f.Close()
			return err
		}
	}
	return w.Close()
}

// Reader provides random and streaming access to a corpus file.
type Reader struct {
	f        *os.File
	numTexts uint32
	offsets  []uint64
	dataEnd  uint64 // offset where records end (footer start)
}

// OpenReader opens a corpus file and loads its footer.
func OpenReader(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("corpus: open reader: %w", err)
	}
	r := &Reader{f: f}
	if err := r.loadMeta(); err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

func (r *Reader) loadMeta() error {
	var hdr [16]byte
	if _, err := io.ReadFull(io.NewSectionReader(r.f, 0, 16), hdr[:]); err != nil {
		return fmt.Errorf("%w: short header: %v", ErrBadFormat, err)
	}
	if string(hdr[:8]) != tokMagic {
		return fmt.Errorf("%w: bad magic %q", ErrBadFormat, hdr[:8])
	}
	r.numTexts = binary.LittleEndian.Uint32(hdr[8:12])
	st, err := r.f.Stat()
	if err != nil {
		return err
	}
	if st.Size() < 24 {
		return fmt.Errorf("%w: file too small", ErrBadFormat)
	}
	var tail [8]byte
	if _, err := r.f.ReadAt(tail[:], st.Size()-8); err != nil {
		return err
	}
	footerOff := binary.LittleEndian.Uint64(tail[:])
	wantFooterLen := uint64(8*r.numTexts) + 8
	if footerOff+wantFooterLen != uint64(st.Size()) {
		return fmt.Errorf("%w: footer offset %d inconsistent with size %d", ErrBadFormat, footerOff, st.Size())
	}
	r.dataEnd = footerOff
	buf := make([]byte, 8*r.numTexts)
	if _, err := r.f.ReadAt(buf, int64(footerOff)); err != nil {
		return err
	}
	r.offsets = make([]uint64, r.numTexts)
	for i := range r.offsets {
		r.offsets[i] = binary.LittleEndian.Uint64(buf[8*i:])
	}
	return nil
}

// NumTexts returns the number of texts in the file.
func (r *Reader) NumTexts() int { return int(r.numTexts) }

// TotalTokens returns the total token count, derived from the record
// region size (each record is 4 length bytes plus 4 bytes per token).
func (r *Reader) TotalTokens() int64 {
	return (int64(r.dataEnd) - 16 - 4*int64(r.numTexts)) / 4
}

// ReadText reads text id into a fresh slice.
func (r *Reader) ReadText(id uint32) ([]uint32, error) {
	if id >= r.numTexts {
		return nil, fmt.Errorf("corpus: text id %d out of range [0, %d)", id, r.numTexts)
	}
	var lenBuf [4]byte
	off := int64(r.offsets[id])
	if _, err := r.f.ReadAt(lenBuf[:], off); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	buf := make([]byte, 4*n)
	if _, err := r.f.ReadAt(buf, off+4); err != nil {
		return nil, err
	}
	tokens := make([]uint32, n)
	for i := range tokens {
		tokens[i] = binary.LittleEndian.Uint32(buf[4*i:])
	}
	return tokens, nil
}

// Stream reads texts sequentially in batches of roughly batchTokens
// tokens (at least one text per batch) and invokes fn with the id of the
// first text in the batch and the batch's token slices. This is the
// access path the out-of-core index builder uses. fn must not retain the
// slices across calls.
func (r *Reader) Stream(batchTokens int, fn func(firstID uint32, texts [][]uint32) error) error {
	if batchTokens < 1 {
		batchTokens = 1
	}
	br := bufio.NewReaderSize(io.NewSectionReader(r.f, 16, int64(r.dataEnd)-16), 1<<20)
	var (
		batch   [][]uint32
		inBatch int
		firstID uint32
	)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		err := fn(firstID, batch)
		firstID += uint32(len(batch))
		batch = batch[:0]
		inBatch = 0
		return err
	}
	for id := uint32(0); id < r.numTexts; id++ {
		var lenBuf [4]byte
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return fmt.Errorf("corpus: stream text %d: %w", id, err)
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		buf := make([]byte, 4*n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return fmt.Errorf("corpus: stream text %d: %w", id, err)
		}
		tokens := make([]uint32, n)
		for i := range tokens {
			tokens[i] = binary.LittleEndian.Uint32(buf[4*i:])
		}
		batch = append(batch, tokens)
		inBatch += int(n)
		if inBatch >= batchTokens {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// Close closes the underlying file.
func (r *Reader) Close() error { return r.f.Close() }

// ReadFile loads an entire corpus file into memory.
func ReadFile(path string) (*Corpus, error) {
	r, err := OpenReader(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	c := &Corpus{texts: make([][]uint32, 0, r.NumTexts())}
	err = r.Stream(1<<20, func(_ uint32, texts [][]uint32) error {
		for _, t := range texts {
			cp := make([]uint32, len(t))
			copy(cp, t)
			c.texts = append(c.texts, cp)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}
