package index

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ndss/internal/fsio"
	"ndss/internal/hash"
)

// Index is an opened index directory: k inverted files plus metadata.
// It is safe for concurrent readers.
type Index struct {
	meta     Meta
	manifest *Manifest // nil for pre-manifest (legacy) indexes
	family   *hash.Family
	files    []*funcFile

	// I/O accounting for the latency-split experiments (Fig 3). Updated
	// atomically on every read.
	bytesRead atomic.Int64
	readNanos atomic.Int64
}

// funcFile is one opened inverted file with its directory resident in
// memory.
type funcFile struct {
	f         fsio.File
	path      string
	size      int64
	entries   []dirEntry // sorted by hash
	dirOff    uint64
	regionCRC uint32
	dirCRC    uint32
}

// ReadError reports a failed or short read of an inverted file with
// enough context (file, offset, length) to diagnose which part of which
// file is unreadable. It wraps the underlying error, so callers can
// still errors.Is/As through it.
type ReadError struct {
	Path string // inverted file the read targeted
	Off  int64  // absolute file offset of the read
	Len  int    // bytes requested
	Err  error  // underlying cause
}

func (e *ReadError) Error() string {
	return fmt.Sprintf("index: read %s @%d (%d bytes): %v", e.Path, e.Off, e.Len, e.Err)
}

func (e *ReadError) Unwrap() error { return e.Err }

// Open opens an index directory written by one of the builders.
//
// A directory with a build manifest is cross-checked against it: every
// inverted file must exist with exactly the size and checksums the
// manifest records, so a torn build or a file swapped in from a
// different build is rejected with a diagnostic instead of serving
// wrong results. A leftover commit backup from an interrupted build
// swap is recovered first. Pre-manifest directories (bare index.meta)
// still open, reporting build id "legacy".
func Open(dir string) (*Index, error) {
	return OpenFS(fsio.OS, dir)
}

// OpenFS is Open reading through an explicit filesystem; tests inject
// fault-carrying implementations.
func OpenFS(fsys fsio.FS, dir string) (*Index, error) {
	if err := recoverBackup(fsys, dir); err != nil {
		return nil, err
	}
	var (
		meta Meta
		man  *Manifest
	)
	m, err := readManifest(fsys, dir)
	switch {
	case err == nil:
		man = m
		meta = m.Meta
	case fsio.NotExist(err):
		// Pre-manifest index: fall back to the bare metadata file.
		meta, err = readMeta(fsys, dir)
		if err != nil {
			return nil, err
		}
	default:
		return nil, err
	}
	fam, err := hash.NewFamily(meta.K, meta.Seed)
	if err != nil {
		return nil, err
	}
	ix := &Index{meta: meta, manifest: man, family: fam}
	for i := 0; i < meta.K; i++ {
		ff, err := openFuncFile(fsys, filepath.Join(dir, funcFileName(i)), i)
		if err != nil {
			ix.Close()
			return nil, err
		}
		if man != nil {
			if err := man.checkFile(i, ff.size, ff.dirCRC, ff.regionCRC); err != nil {
				ff.f.Close()
				ix.Close()
				return nil, err
			}
		}
		ix.files = append(ix.files, ff)
	}
	return ix, nil
}

// checkFile cross-checks an opened inverted file against the manifest
// entry of the same function. The trailer checksums were already read
// by openFuncFile, so the check costs no extra I/O.
func (m *Manifest) checkFile(i int, size int64, dirCRC, regionCRC uint32) error {
	want := m.Files[i]
	if size != want.Size {
		return fmt.Errorf("index: %s: size %d does not match manifest of build %s (want %d): file from a torn or mixed build",
			want.Name, size, m.BuildID, want.Size)
	}
	if dirCRC != want.DirCRC || regionCRC != want.RegionCRC {
		return fmt.Errorf("index: %s: checksums (dir %08x, region %08x) do not match manifest of build %s (dir %08x, region %08x): file from a torn or mixed build",
			want.Name, dirCRC, regionCRC, m.BuildID, want.DirCRC, want.RegionCRC)
	}
	return nil
}

func openFuncFile(fsys fsio.FS, path string, wantIdx int) (*funcFile, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, fmt.Errorf("index: open inverted file: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < idxHeaderLen+trailerLen {
		f.Close()
		return nil, fmt.Errorf("index: inverted file %s too small", path)
	}
	var hdr [idxHeaderLen]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, &ReadError{Path: path, Off: 0, Len: len(hdr), Err: err}
	}
	if string(hdr[:8]) != idxMagic {
		f.Close()
		return nil, fmt.Errorf("index: %s: bad magic %q", path, hdr[:8])
	}
	if got := binary.LittleEndian.Uint32(hdr[8:]); got != uint32(wantIdx) {
		f.Close()
		return nil, fmt.Errorf("index: %s: function index %d, want %d", path, got, wantIdx)
	}
	var tb [trailerLen]byte
	if _, err := f.ReadAt(tb[:], st.Size()-trailerLen); err != nil {
		f.Close()
		return nil, &ReadError{Path: path, Off: st.Size() - trailerLen, Len: len(tb), Err: err}
	}
	dirOff := binary.LittleEndian.Uint64(tb[0:])
	numLists := binary.LittleEndian.Uint64(tb[8:])
	regionCRC := binary.LittleEndian.Uint32(tb[16:])
	dirCRC := binary.LittleEndian.Uint32(tb[20:])
	if dirOff+numLists*dirEntrySize+trailerLen != uint64(st.Size()) {
		f.Close()
		return nil, fmt.Errorf("index: %s: inconsistent trailer", path)
	}
	buf := make([]byte, numLists*dirEntrySize)
	if _, err := f.ReadAt(buf, int64(dirOff)); err != nil {
		f.Close()
		return nil, &ReadError{Path: path, Off: int64(dirOff), Len: len(buf), Err: err}
	}
	if got := crc32.ChecksumIEEE(buf); got != dirCRC {
		f.Close()
		return nil, fmt.Errorf("index: %s: directory checksum mismatch (%08x != %08x)", path, got, dirCRC)
	}
	entries := make([]dirEntry, numLists)
	for i := range entries {
		b := buf[i*dirEntrySize:]
		entries[i] = dirEntry{
			Hash:      binary.LittleEndian.Uint64(b[0:]),
			Off:       binary.LittleEndian.Uint64(b[8:]),
			Count:     binary.LittleEndian.Uint32(b[16:]),
			ZoneCount: binary.LittleEndian.Uint32(b[20:]),
			ZoneOff:   binary.LittleEndian.Uint64(b[24:]),
		}
	}
	return &funcFile{
		f:         f,
		path:      path,
		size:      st.Size(),
		entries:   entries,
		dirOff:    dirOff,
		regionCRC: regionCRC,
		dirCRC:    dirCRC,
	}, nil
}

// VerifyIntegrity re-reads every inverted file's postings/zones region
// and checks it against the checksum recorded at build time. It reads
// each file fully, so it is an explicit maintenance operation rather
// than part of Open.
func (ix *Index) VerifyIntegrity() error {
	for fn, ff := range ix.files {
		h := crc32.NewIEEE()
		region := io.NewSectionReader(ff.f, idxHeaderLen, int64(ff.dirOff)-idxHeaderLen)
		if _, err := io.Copy(h, region); err != nil {
			return fmt.Errorf("index: verify function %d: %w", fn, err)
		}
		if got := h.Sum32(); got != ff.regionCRC {
			return fmt.Errorf("index: function %d postings region corrupt (crc %08x != %08x)",
				fn, got, ff.regionCRC)
		}
	}
	return nil
}

// Close releases all file handles.
func (ix *Index) Close() error {
	var first error
	for _, ff := range ix.files {
		if ff == nil {
			continue
		}
		if err := ff.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	ix.files = nil
	return first
}

// Meta returns the index metadata.
func (ix *Index) Meta() Meta { return ix.meta }

// Manifest returns the build manifest the index was opened with, or nil
// for a pre-manifest (legacy) index.
func (ix *Index) Manifest() *Manifest { return ix.manifest }

// BuildID identifies the build that produced this index. Pre-manifest
// indexes report "legacy".
func (ix *Index) BuildID() string {
	if ix.manifest != nil {
		return ix.manifest.BuildID
	}
	return "legacy"
}

// Family returns the hash family the index was built with. Queries must
// sketch with this family.
func (ix *Index) Family() *hash.Family { return ix.family }

// K returns the number of hash functions / inverted files.
func (ix *Index) K() int { return ix.meta.K }

// lookup finds the directory entry for hash h in function fn.
func (ff *funcFile) lookup(h uint64) (dirEntry, bool) {
	i := sort.Search(len(ff.entries), func(i int) bool { return ff.entries[i].Hash >= h })
	if i < len(ff.entries) && ff.entries[i].Hash == h {
		return ff.entries[i], true
	}
	return dirEntry{}, false
}

// ListLength returns the posting count of the inverted list for hash h
// in function fn, without any I/O (the directory is memory-resident).
func (ix *Index) ListLength(fn int, h uint64) int {
	e, ok := ix.files[fn].lookup(h)
	if !ok {
		return 0
	}
	return int(e.Count)
}

// HasZoneMap reports whether the list for hash h of function fn carries
// a zone map, i.e. whether per-text probes (ReadListForText) are
// proportional to the zone step rather than the list length. Lists at
// or below the build-time LongListCutoff have no zone map; deferring
// them degrades probes to a full read plus filter per candidate.
func (ix *Index) HasZoneMap(fn int, h uint64) bool {
	e, ok := ix.files[fn].lookup(h)
	return ok && e.ZoneCount > 0
}

// NumLists returns the number of inverted lists of function fn.
func (ix *Index) NumLists(fn int) int { return len(ix.files[fn].entries) }

// Hashes returns every min-hash value that has an inverted list in
// function fn, in ascending order.
func (ix *Index) Hashes(fn int) []uint64 {
	out := make([]uint64, len(ix.files[fn].entries))
	for i, e := range ix.files[fn].entries {
		out[i] = e.Hash
	}
	return out
}

// ListLengths returns the posting counts of every list of function fn,
// unordered. Used to pick prefix-filtering cutoffs.
func (ix *Index) ListLengths(fn int) []int {
	out := make([]int, len(ix.files[fn].entries))
	for i, e := range ix.files[fn].entries {
		out[i] = int(e.Count)
	}
	return out
}

// readBufPool recycles the scratch byte buffers posting and zone reads
// decode from, so sustained query traffic does not churn the GC.
var readBufPool = sync.Pool{New: func() any { return new([]byte) }}

func getReadBuf(n int) *[]byte {
	bp := readBufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

// readAt wraps ReadAt with I/O accounting: the index-wide cumulative
// counters always, plus the caller's per-query sink when non-nil. The
// counters record the bytes ReadAt actually returned, so a failed or
// short read (truncated file, I/O error) is charged for what was read,
// not for what was asked. Failures come back as *ReadError carrying the
// file, offset and length.
func (ix *Index) readAt(ff *funcFile, buf []byte, off int64, sink *IOStats) error {
	start := time.Now()
	n, err := ff.f.ReadAt(buf, off)
	elapsed := time.Since(start)
	ix.readNanos.Add(int64(elapsed))
	ix.bytesRead.Add(int64(n))
	if sink != nil {
		sink.BytesRead += int64(n)
		sink.ReadTime += elapsed
	}
	if err == nil && n < len(buf) {
		err = io.ErrUnexpectedEOF
	}
	if err != nil {
		return &ReadError{Path: ff.path, Off: off, Len: len(buf), Err: err}
	}
	return nil
}

// ReadList reads the entire inverted list for hash h of function fn.
// A missing hash yields an empty list.
func (ix *Index) ReadList(fn int, h uint64) ([]Posting, error) {
	return ix.ReadListInto(nil, fn, h, nil)
}

// ReadListInto appends the postings of the list for hash h of function
// fn to dst and returns the extended slice, recording the read's bytes
// and latency into sink (when non-nil) in addition to the index-wide
// cumulative counters. dst may be nil; reusing it across reads avoids
// per-list allocations. The appended postings never alias index
// storage.
func (ix *Index) ReadListInto(dst []Posting, fn int, h uint64, sink *IOStats) ([]Posting, error) {
	ff := ix.files[fn]
	e, ok := ff.lookup(h)
	if !ok {
		return dst, nil
	}
	out, err := ix.readListEntry(dst, ff, e, sink)
	if err != nil {
		return dst, fmt.Errorf("index: read list %x: %w", h, err)
	}
	return out, nil
}

// ReadListForText returns only the postings of textID within the list
// for hash h of function fn. Long lists are probed through their zone
// map so the read is proportional to the zone step rather than the list
// length; short lists are read fully and filtered.
func (ix *Index) ReadListForText(fn int, h uint64, textID uint32) ([]Posting, error) {
	return ix.ReadListForTextInto(nil, fn, h, textID, nil)
}

// ReadListForTextInto is ReadListForText appending into dst and
// recording I/O into sink, with the same reuse contract as
// ReadListInto.
func (ix *Index) ReadListForTextInto(dst []Posting, fn int, h uint64, textID uint32, sink *IOStats) ([]Posting, error) {
	ff := ix.files[fn]
	e, ok := ff.lookup(h)
	if !ok {
		return dst, nil
	}
	if e.ZoneCount == 0 {
		bp := getReadBuf(int(e.Count) * postingSize)
		defer readBufPool.Put(bp)
		if err := ix.readAt(ff, *bp, int64(e.Off), sink); err != nil {
			return dst, fmt.Errorf("index: read list %x: %w", h, err)
		}
		return appendPostingsOfText(dst, *bp, int(e.Count), textID), nil
	}
	zbp := getReadBuf(int(e.ZoneCount) * zoneEntrySize)
	defer readBufPool.Put(zbp)
	if err := ix.readAt(ff, *zbp, int64(e.ZoneOff), sink); err != nil {
		return dst, fmt.Errorf("index: read zones %x: %w", h, err)
	}
	zbuf := *zbp
	firstID := func(i int) uint32 { return binary.LittleEndian.Uint32(zbuf[i*zoneEntrySize:]) }
	// First zone whose FirstTextID > textID bounds the probe on the
	// right; the probe starts one zone before the first zone with
	// FirstTextID >= textID (the text's postings may begin mid-zone).
	n := int(e.ZoneCount)
	hi := sort.Search(n, func(i int) bool { return firstID(i) > textID })
	if hi == 0 {
		// The list's very first posting already has a larger text id.
		return dst, nil
	}
	lo := sort.Search(n, func(i int) bool { return firstID(i) >= textID })
	if lo > 0 {
		lo--
	}
	startOrd := int(binary.LittleEndian.Uint32(zbuf[lo*zoneEntrySize+4:]))
	endOrd := int(e.Count)
	if hi < n {
		endOrd = int(binary.LittleEndian.Uint32(zbuf[hi*zoneEntrySize+4:]))
	}
	pbp := getReadBuf((endOrd - startOrd) * postingSize)
	defer readBufPool.Put(pbp)
	if err := ix.readAt(ff, *pbp, int64(e.Off)+int64(startOrd*postingSize), sink); err != nil {
		return dst, fmt.Errorf("index: probe list %x: %w", h, err)
	}
	return appendPostingsOfText(dst, *pbp, endOrd-startOrd, textID), nil
}

// appendPostingsOfText decodes count postings from buf, appending the
// ones belonging to textID to dst. Lists are sorted by text id, so the
// scan stops at the first larger id.
func appendPostingsOfText(dst []Posting, buf []byte, count int, textID uint32) []Posting {
	for i := 0; i < count; i++ {
		p := decodePosting(buf[i*postingSize:])
		if p.TextID == textID {
			dst = append(dst, p)
		} else if p.TextID > textID {
			break
		}
	}
	return dst
}

func (ix *Index) readListEntry(dst []Posting, ff *funcFile, e dirEntry, sink *IOStats) ([]Posting, error) {
	bp := getReadBuf(int(e.Count) * postingSize)
	defer readBufPool.Put(bp)
	buf := *bp
	if err := ix.readAt(ff, buf, int64(e.Off), sink); err != nil {
		return dst, err
	}
	for i := 0; i < int(e.Count); i++ {
		dst = append(dst, decodePosting(buf[i*postingSize:]))
	}
	return dst, nil
}

// IOStats reports cumulative read accounting since the index was opened
// or since the last ResetIOStats.
type IOStats struct {
	BytesRead int64
	ReadTime  time.Duration
}

// IOStats returns cumulative I/O counters.
func (ix *Index) IOStats() IOStats {
	return IOStats{
		BytesRead: ix.bytesRead.Load(),
		ReadTime:  time.Duration(ix.readNanos.Load()),
	}
}

// ResetIOStats zeroes the I/O counters.
func (ix *Index) ResetIOStats() {
	ix.bytesRead.Store(0)
	ix.readNanos.Store(0)
}

// TotalPostings returns the total number of postings (compact windows)
// across all k files — the "number of compact windows generated" metric
// of Fig 2(a–d).
func (ix *Index) TotalPostings() int64 {
	var n int64
	for _, ff := range ix.files {
		for _, e := range ff.entries {
			n += int64(e.Count)
		}
	}
	return n
}

// SizeOnDisk sums the sizes of the k inverted files.
func (ix *Index) SizeOnDisk() (int64, error) {
	var n int64
	for _, ff := range ix.files {
		st, err := ff.f.Stat()
		if err != nil {
			return 0, err
		}
		n += st.Size()
	}
	return n, nil
}
