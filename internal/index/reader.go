package index

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ndss/internal/fsio"
	"ndss/internal/hash"
)

// Index is an opened index directory: an ordered set of immutable
// segments, each holding k inverted files, plus metadata. Segment i's
// texts occupy the global id range [base_i, base_i+NumTexts_i), where
// base_i is the sum of the text counts before it, so reads concatenate
// per-segment lists in segment order and stay sorted by global text id.
// It is safe for concurrent readers.
type Index struct {
	meta     Meta      // aggregate over the segment set
	manifest *Manifest // nil for pre-manifest (legacy) indexes
	family   *hash.Family
	segs     []*segment

	// I/O accounting for the latency-split experiments (Fig 3). Updated
	// atomically on every read.
	bytesRead atomic.Int64
	readNanos atomic.Int64
}

// segment is one opened immutable segment: k inverted files, the global
// text-id base its local ids are offset by, and its tombstone bitmap
// (nil when nothing is deleted).
type segment struct {
	name  string // "" = files at the index directory root
	base  uint32 // first global text id of this segment
	meta  Meta
	files []*funcFile
	tomb  *tombSet
}

// funcFile is one opened inverted file with its directory resident in
// memory.
type funcFile struct {
	f         fsio.File
	path      string
	size      int64
	entries   []dirEntry // sorted by hash
	dirOff    uint64
	regionCRC uint32
	dirCRC    uint32
}

// ReadError reports a failed or short read of an inverted file with
// enough context (file, offset, length) to diagnose which part of which
// file is unreadable. It wraps the underlying error, so callers can
// still errors.Is/As through it.
type ReadError struct {
	Path string // inverted file the read targeted
	Off  int64  // absolute file offset of the read
	Len  int    // bytes requested
	Err  error  // underlying cause
}

func (e *ReadError) Error() string {
	return fmt.Sprintf("index: read %s @%d (%d bytes): %v", e.Path, e.Off, e.Len, e.Err)
}

func (e *ReadError) Unwrap() error { return e.Err }

// Open opens an index directory written by one of the builders.
//
// A directory with a build manifest is cross-checked against it: every
// segment's inverted files must exist with exactly the sizes and
// checksums the manifest records, so a torn commit or a file swapped in
// from a different build is rejected with a diagnostic instead of
// serving wrong results. Segments built with different hash parameters
// are rejected with a *MixedOptionsError. A leftover commit backup from
// an interrupted swap is recovered first. Pre-manifest directories
// (bare index.meta) still open read-only as a one-segment set,
// reporting build id "legacy".
func Open(dir string) (*Index, error) {
	return OpenFS(fsio.OS, dir)
}

// OpenFS is Open reading through an explicit filesystem; tests inject
// fault-carrying implementations.
func OpenFS(fsys fsio.FS, dir string) (*Index, error) {
	if err := recoverBackup(fsys, dir); err != nil {
		return nil, err
	}
	man, err := readManifest(fsys, dir)
	if err != nil && !fsio.NotExist(err) {
		return nil, err
	}
	var meta Meta
	var msegs []ManifestSegment
	if man != nil {
		meta = man.Meta
		msegs = man.Segments
	} else {
		// Pre-manifest index: a single unchecked root segment described
		// by the bare metadata file.
		meta, err = readMeta(fsys, dir)
		if err != nil {
			return nil, err
		}
		msegs = []ManifestSegment{{Name: "", Meta: meta}}
	}
	fam, err := hash.NewFamily(meta.K, meta.Seed)
	if err != nil {
		return nil, err
	}
	ix := &Index{meta: meta, manifest: man, family: fam}
	var base int64
	for _, mseg := range msegs {
		seg, err := openSegment(fsys, dir, mseg, uint32(base), man != nil)
		if err != nil {
			ix.Close()
			return nil, err
		}
		ix.segs = append(ix.segs, seg)
		base += int64(mseg.Meta.NumTexts)
	}
	return ix, nil
}

// openSegment opens one segment's k inverted files (cross-checking each
// against the manifest when present) and its tombstone bitmap.
func openSegment(fsys fsio.FS, dir string, mseg ManifestSegment, base uint32, checked bool) (*segment, error) {
	segDir := dir
	if mseg.Name != "" {
		segDir = filepath.Join(dir, mseg.Name)
	}
	seg := &segment{name: mseg.Name, base: base, meta: mseg.Meta}
	for i := 0; i < mseg.Meta.K; i++ {
		ff, err := openFuncFile(fsys, filepath.Join(segDir, funcFileName(i)), i)
		if err != nil {
			seg.close()
			return nil, err
		}
		seg.files = append(seg.files, ff)
		if checked {
			if err := mseg.checkFile(i, ff.size, ff.dirCRC, ff.regionCRC); err != nil {
				seg.close()
				return nil, err
			}
		}
	}
	if mseg.Tomb != nil {
		tomb, err := readTombstone(fsys, dir, mseg.Tomb, mseg.Meta.NumTexts)
		if err != nil {
			seg.close()
			return nil, err
		}
		seg.tomb = tomb
	}
	return seg, nil
}

func (s *segment) close() {
	for _, ff := range s.files {
		if ff != nil {
			ff.f.Close()
		}
	}
	s.files = nil
}

// checkFile cross-checks an opened inverted file against the manifest
// entry of the same function. The trailer checksums were already read
// by openFuncFile, so the check costs no extra I/O.
func (m *ManifestSegment) checkFile(i int, size int64, dirCRC, regionCRC uint32) error {
	want := m.Files[i]
	if size != want.Size {
		return fmt.Errorf("index: segment %s: %s: size %d does not match manifest (want %d): file from a torn or mixed build",
			segmentLabel(m.Name), want.Name, size, want.Size)
	}
	if dirCRC != want.DirCRC || regionCRC != want.RegionCRC {
		return fmt.Errorf("index: segment %s: %s: checksums (dir %08x, region %08x) do not match manifest (dir %08x, region %08x): file from a torn or mixed build",
			segmentLabel(m.Name), want.Name, dirCRC, regionCRC, want.DirCRC, want.RegionCRC)
	}
	return nil
}

func openFuncFile(fsys fsio.FS, path string, wantIdx int) (*funcFile, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, fmt.Errorf("index: open inverted file: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < idxHeaderLen+trailerLen {
		f.Close()
		return nil, fmt.Errorf("index: inverted file %s too small", path)
	}
	var hdr [idxHeaderLen]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, &ReadError{Path: path, Off: 0, Len: len(hdr), Err: err}
	}
	if string(hdr[:8]) != idxMagic {
		f.Close()
		return nil, fmt.Errorf("index: %s: bad magic %q", path, hdr[:8])
	}
	if got := binary.LittleEndian.Uint32(hdr[8:]); got != uint32(wantIdx) {
		f.Close()
		return nil, fmt.Errorf("index: %s: function index %d, want %d", path, got, wantIdx)
	}
	var tb [trailerLen]byte
	if _, err := f.ReadAt(tb[:], st.Size()-trailerLen); err != nil {
		f.Close()
		return nil, &ReadError{Path: path, Off: st.Size() - trailerLen, Len: len(tb), Err: err}
	}
	dirOff := binary.LittleEndian.Uint64(tb[0:])
	numLists := binary.LittleEndian.Uint64(tb[8:])
	regionCRC := binary.LittleEndian.Uint32(tb[16:])
	dirCRC := binary.LittleEndian.Uint32(tb[20:])
	if dirOff+numLists*dirEntrySize+trailerLen != uint64(st.Size()) {
		f.Close()
		return nil, fmt.Errorf("index: %s: inconsistent trailer", path)
	}
	buf := make([]byte, numLists*dirEntrySize)
	if _, err := f.ReadAt(buf, int64(dirOff)); err != nil {
		f.Close()
		return nil, &ReadError{Path: path, Off: int64(dirOff), Len: len(buf), Err: err}
	}
	if got := crc32.ChecksumIEEE(buf); got != dirCRC {
		f.Close()
		return nil, fmt.Errorf("index: %s: directory checksum mismatch (%08x != %08x)", path, got, dirCRC)
	}
	entries := make([]dirEntry, numLists)
	for i := range entries {
		b := buf[i*dirEntrySize:]
		entries[i] = dirEntry{
			Hash:      binary.LittleEndian.Uint64(b[0:]),
			Off:       binary.LittleEndian.Uint64(b[8:]),
			Count:     binary.LittleEndian.Uint32(b[16:]),
			ZoneCount: binary.LittleEndian.Uint32(b[20:]),
			ZoneOff:   binary.LittleEndian.Uint64(b[24:]),
		}
	}
	return &funcFile{
		f:         f,
		path:      path,
		size:      st.Size(),
		entries:   entries,
		dirOff:    dirOff,
		regionCRC: regionCRC,
		dirCRC:    dirCRC,
	}, nil
}

// VerifyIntegrity re-reads every segment's postings/zones regions and
// checks them against the checksums recorded at build time. It reads
// each file fully, so it is an explicit maintenance operation rather
// than part of Open.
func (ix *Index) VerifyIntegrity() error {
	for _, seg := range ix.segs {
		for fn, ff := range seg.files {
			h := crc32.NewIEEE()
			region := io.NewSectionReader(ff.f, idxHeaderLen, int64(ff.dirOff)-idxHeaderLen)
			if _, err := io.Copy(h, region); err != nil {
				return fmt.Errorf("index: verify segment %s function %d: %w", segmentLabel(seg.name), fn, err)
			}
			if got := h.Sum32(); got != ff.regionCRC {
				return fmt.Errorf("index: segment %s function %d postings region corrupt (crc %08x != %08x)",
					segmentLabel(seg.name), fn, got, ff.regionCRC)
			}
		}
	}
	return nil
}

// Close releases all file handles.
func (ix *Index) Close() error {
	var first error
	for _, seg := range ix.segs {
		for _, ff := range seg.files {
			if ff == nil {
				continue
			}
			if err := ff.f.Close(); err != nil && first == nil {
				first = err
			}
		}
		seg.files = nil
	}
	ix.segs = nil
	return first
}

// Meta returns the index metadata, aggregated over the segment set:
// NumTexts and TotalTokens are sums (NumTexts counts the id-space
// width, so it includes tombstoned texts).
func (ix *Index) Meta() Meta { return ix.meta }

// Manifest returns the manifest the index was opened with, or nil for a
// pre-manifest (legacy) index.
func (ix *Index) Manifest() *Manifest { return ix.manifest }

// BuildID identifies the committed segment set this index serves; every
// build, append, delete, or compaction commits a fresh id. Pre-manifest
// indexes report "legacy".
func (ix *Index) BuildID() string {
	if ix.manifest != nil {
		return ix.manifest.BuildID
	}
	return "legacy"
}

// Family returns the hash family the index was built with. Queries must
// sketch with this family.
func (ix *Index) Family() *hash.Family { return ix.family }

// K returns the number of hash functions / inverted files per segment.
func (ix *Index) K() int { return ix.meta.K }

// SegmentCount returns the number of segments in the opened set.
func (ix *Index) SegmentCount() int { return len(ix.segs) }

// SegmentInfo describes one opened segment for tooling and metrics.
type SegmentInfo struct {
	Name        string // "" = directory root
	Base        uint32 // first global text id
	NumTexts    int
	TotalTokens int64
	Postings    int64
	SizeOnDisk  int64
	Tombstoned  int // texts masked by the segment's tombstone bitmap
}

// Segments describes the opened segment set in id order.
func (ix *Index) Segments() []SegmentInfo {
	out := make([]SegmentInfo, len(ix.segs))
	for i, seg := range ix.segs {
		info := SegmentInfo{
			Name:        seg.name,
			Base:        seg.base,
			NumTexts:    seg.meta.NumTexts,
			TotalTokens: seg.meta.TotalTokens,
			Tombstoned:  seg.tomb.count(),
		}
		for _, ff := range seg.files {
			info.SizeOnDisk += ff.size
			for _, e := range ff.entries {
				info.Postings += int64(e.Count)
			}
		}
		out[i] = info
	}
	return out
}

// lookup finds the directory entry for hash h in function fn.
func (ff *funcFile) lookup(h uint64) (dirEntry, bool) {
	i := sort.Search(len(ff.entries), func(i int) bool { return ff.entries[i].Hash >= h })
	if i < len(ff.entries) && ff.entries[i].Hash == h {
		return ff.entries[i], true
	}
	return dirEntry{}, false
}

// ListLength returns the posting count of the inverted list for hash h
// in function fn across all segments, without any I/O (directories are
// memory-resident). Tombstoned postings are included: the count is the
// on-disk list length the planner budgets reads with.
func (ix *Index) ListLength(fn int, h uint64) int {
	n := 0
	for _, seg := range ix.segs {
		if e, ok := seg.files[fn].lookup(h); ok {
			n += int(e.Count)
		}
	}
	return n
}

// HasZoneMap reports whether per-text probes (ReadListForText) into the
// list for hash h of function fn are cheap: every segment holding the
// list must carry a zone map for its portion, keeping probes
// proportional to the zone step rather than the list length.
func (ix *Index) HasZoneMap(fn int, h uint64) bool {
	found := false
	for _, seg := range ix.segs {
		e, ok := seg.files[fn].lookup(h)
		if !ok {
			continue
		}
		if e.ZoneCount == 0 {
			return false
		}
		found = true
	}
	return found
}

// NumLists returns the number of distinct inverted lists of function fn
// across the segment set.
func (ix *Index) NumLists(fn int) int {
	if len(ix.segs) == 1 {
		return len(ix.segs[0].files[fn].entries)
	}
	return len(ix.Hashes(fn))
}

// Hashes returns every min-hash value that has an inverted list in
// function fn, in ascending order, deduplicated across segments.
func (ix *Index) Hashes(fn int) []uint64 {
	if len(ix.segs) == 1 {
		entries := ix.segs[0].files[fn].entries
		out := make([]uint64, len(entries))
		for i, e := range entries {
			out[i] = e.Hash
		}
		return out
	}
	var all []uint64
	for _, seg := range ix.segs {
		for _, e := range seg.files[fn].entries {
			all = append(all, e.Hash)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	out := all[:0]
	for i, h := range all {
		if i == 0 || h != all[i-1] {
			out = append(out, h)
		}
	}
	return out
}

// ListLengths returns the posting counts of every distinct list of
// function fn, unordered. Used to pick prefix-filtering cutoffs.
func (ix *Index) ListLengths(fn int) []int {
	if len(ix.segs) == 1 {
		entries := ix.segs[0].files[fn].entries
		out := make([]int, len(entries))
		for i, e := range entries {
			out[i] = int(e.Count)
		}
		return out
	}
	counts := make(map[uint64]int)
	for _, seg := range ix.segs {
		for _, e := range seg.files[fn].entries {
			counts[e.Hash] += int(e.Count)
		}
	}
	out := make([]int, 0, len(counts))
	for _, n := range counts {
		out = append(out, n)
	}
	return out
}

// readBufPool recycles the scratch byte buffers posting and zone reads
// decode from, so sustained query traffic does not churn the GC.
var readBufPool = sync.Pool{New: func() any { return new([]byte) }}

func getReadBuf(n int) *[]byte {
	bp := readBufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

// readAt wraps ReadAt with I/O accounting: the index-wide cumulative
// counters always, plus the caller's per-query sink when non-nil. seg
// is the ordinal of the segment being read; when the sink carries a
// PerSegment slice the read is attributed to it. The counters record
// the bytes ReadAt actually returned, so a failed or short read
// (truncated file, I/O error) is charged for what was read, not for
// what was asked. Failures come back as *ReadError carrying the file,
// offset and length.
func (ix *Index) readAt(ff *funcFile, seg int, buf []byte, off int64, sink *IOStats) error {
	start := time.Now()
	n, err := ff.f.ReadAt(buf, off)
	elapsed := time.Since(start)
	ix.readNanos.Add(int64(elapsed))
	ix.bytesRead.Add(int64(n))
	if sink != nil {
		sink.BytesRead += int64(n)
		sink.ReadTime += elapsed
		if seg < len(sink.PerSegment) {
			sink.PerSegment[seg].BytesRead += int64(n)
			sink.PerSegment[seg].ReadTime += elapsed
		}
	}
	if err == nil && n < len(buf) {
		err = io.ErrUnexpectedEOF
	}
	if err != nil {
		return &ReadError{Path: ff.path, Off: off, Len: len(buf), Err: err}
	}
	return nil
}

// ReadList reads the entire inverted list for hash h of function fn.
// A missing hash yields an empty list.
func (ix *Index) ReadList(fn int, h uint64) ([]Posting, error) {
	return ix.ReadListInto(nil, fn, h, nil)
}

// ReadListInto appends the postings of the list for hash h of function
// fn to dst and returns the extended slice, recording the read's bytes
// and latency into sink (when non-nil) in addition to the index-wide
// cumulative counters. Per-segment lists are concatenated in segment
// order with text ids remapped to the global id space (the result stays
// sorted by text id) and tombstoned postings dropped. dst may be nil;
// reusing it across reads avoids per-list allocations. The appended
// postings never alias index storage.
func (ix *Index) ReadListInto(dst []Posting, fn int, h uint64, sink *IOStats) ([]Posting, error) {
	for si, seg := range ix.segs {
		e, ok := seg.files[fn].lookup(h)
		if !ok {
			continue
		}
		out, err := ix.readListEntry(dst, si, seg, seg.files[fn], e, sink)
		if err != nil {
			return dst, fmt.Errorf("index: read list %x: %w", h, err)
		}
		dst = out
	}
	return dst, nil
}

// ReadListForText returns only the postings of (global) textID within
// the list for hash h of function fn. Only the segment owning the id is
// touched: long lists are probed through their zone map so the read is
// proportional to the zone step rather than the list length; short
// lists are read fully and filtered.
func (ix *Index) ReadListForText(fn int, h uint64, textID uint32) ([]Posting, error) {
	return ix.ReadListForTextInto(nil, fn, h, textID, nil)
}

// ReadListForTextInto is ReadListForText appending into dst and
// recording I/O into sink, with the same reuse contract as
// ReadListInto.
func (ix *Index) ReadListForTextInto(dst []Posting, fn int, h uint64, textID uint32, sink *IOStats) ([]Posting, error) {
	si, seg := ix.owningSegment(textID)
	if seg == nil {
		return dst, nil
	}
	local := textID - seg.base
	if seg.tomb.has(local) {
		return dst, nil
	}
	ff := seg.files[fn]
	e, ok := ff.lookup(h)
	if !ok {
		return dst, nil
	}
	if e.ZoneCount == 0 {
		bp := getReadBuf(int(e.Count) * postingSize)
		defer readBufPool.Put(bp)
		if err := ix.readAt(ff, si, *bp, int64(e.Off), sink); err != nil {
			return dst, fmt.Errorf("index: read list %x: %w", h, err)
		}
		return appendPostingsOfText(dst, *bp, int(e.Count), local, seg.base), nil
	}
	zbp := getReadBuf(int(e.ZoneCount) * zoneEntrySize)
	defer readBufPool.Put(zbp)
	if err := ix.readAt(ff, si, *zbp, int64(e.ZoneOff), sink); err != nil {
		return dst, fmt.Errorf("index: read zones %x: %w", h, err)
	}
	zbuf := *zbp
	firstID := func(i int) uint32 { return binary.LittleEndian.Uint32(zbuf[i*zoneEntrySize:]) }
	// First zone whose FirstTextID > local bounds the probe on the
	// right; the probe starts one zone before the first zone with
	// FirstTextID >= local (the text's postings may begin mid-zone).
	n := int(e.ZoneCount)
	hi := sort.Search(n, func(i int) bool { return firstID(i) > local })
	if hi == 0 {
		// The list's very first posting already has a larger text id.
		return dst, nil
	}
	lo := sort.Search(n, func(i int) bool { return firstID(i) >= local })
	if lo > 0 {
		lo--
	}
	startOrd := int(binary.LittleEndian.Uint32(zbuf[lo*zoneEntrySize+4:]))
	endOrd := int(e.Count)
	if hi < n {
		endOrd = int(binary.LittleEndian.Uint32(zbuf[hi*zoneEntrySize+4:]))
	}
	pbp := getReadBuf((endOrd - startOrd) * postingSize)
	defer readBufPool.Put(pbp)
	if err := ix.readAt(ff, si, *pbp, int64(e.Off)+int64(startOrd*postingSize), sink); err != nil {
		return dst, fmt.Errorf("index: probe list %x: %w", h, err)
	}
	return appendPostingsOfText(dst, *pbp, endOrd-startOrd, local, seg.base), nil
}

// owningSegment locates the segment whose id range covers the global
// textID. Segment sets are small, so a linear scan beats a search.
func (ix *Index) owningSegment(textID uint32) (int, *segment) {
	for si, seg := range ix.segs {
		if textID >= seg.base && uint64(textID) < uint64(seg.base)+uint64(seg.meta.NumTexts) {
			return si, seg
		}
	}
	return -1, nil
}

// appendPostingsOfText decodes count postings from buf, appending the
// ones belonging to the segment-local id to dst with their text ids
// remapped by base. Lists are sorted by text id, so the scan stops at
// the first larger id.
func appendPostingsOfText(dst []Posting, buf []byte, count int, local, base uint32) []Posting {
	for i := 0; i < count; i++ {
		p := decodePosting(buf[i*postingSize:])
		if p.TextID == local {
			p.TextID += base
			dst = append(dst, p)
		} else if p.TextID > local {
			break
		}
	}
	return dst
}

// readListEntry reads one segment's portion of a list, remapping text
// ids into the global space and dropping tombstoned postings.
func (ix *Index) readListEntry(dst []Posting, si int, seg *segment, ff *funcFile, e dirEntry, sink *IOStats) ([]Posting, error) {
	bp := getReadBuf(int(e.Count) * postingSize)
	defer readBufPool.Put(bp)
	buf := *bp
	if err := ix.readAt(ff, si, buf, int64(e.Off), sink); err != nil {
		return dst, err
	}
	if seg.base == 0 && seg.tomb == nil {
		// Single-root fast path: no remapping, no filtering.
		for i := 0; i < int(e.Count); i++ {
			dst = append(dst, decodePosting(buf[i*postingSize:]))
		}
		return dst, nil
	}
	for i := 0; i < int(e.Count); i++ {
		p := decodePosting(buf[i*postingSize:])
		if seg.tomb.has(p.TextID) {
			continue
		}
		p.TextID += seg.base
		dst = append(dst, p)
	}
	return dst, nil
}

// SegmentIO is one segment's share of a read's I/O accounting.
type SegmentIO struct {
	BytesRead int64
	ReadTime  time.Duration
}

// IOStats reports cumulative read accounting since the index was opened
// or since the last ResetIOStats. When PerSegment is non-nil (sized by
// the caller to the segment count), reads passing through the sink are
// additionally attributed to the segment they touched.
type IOStats struct {
	BytesRead  int64
	ReadTime   time.Duration
	PerSegment []SegmentIO
}

// Reset zeroes the counters, keeping the PerSegment slice's capacity so
// pooled sinks do not reallocate per query.
func (s *IOStats) Reset() {
	per := s.PerSegment[:0]
	*s = IOStats{}
	s.PerSegment = per
}

// IOStats returns cumulative I/O counters.
func (ix *Index) IOStats() IOStats {
	return IOStats{
		BytesRead: ix.bytesRead.Load(),
		ReadTime:  time.Duration(ix.readNanos.Load()),
	}
}

// ResetIOStats zeroes the I/O counters.
func (ix *Index) ResetIOStats() {
	ix.bytesRead.Store(0)
	ix.readNanos.Store(0)
}

// TotalPostings returns the total number of postings (compact windows)
// across all segments and functions — the "number of compact windows
// generated" metric of Fig 2(a–d). Tombstoned postings still on disk
// are included until compaction purges them.
func (ix *Index) TotalPostings() int64 {
	var n int64
	for _, seg := range ix.segs {
		for _, ff := range seg.files {
			for _, e := range ff.entries {
				n += int64(e.Count)
			}
		}
	}
	return n
}

// SizeOnDisk sums the sizes of every segment's inverted files.
func (ix *Index) SizeOnDisk() (int64, error) {
	var n int64
	for _, seg := range ix.segs {
		for _, ff := range seg.files {
			st, err := ff.f.Stat()
			if err != nil {
				return 0, err
			}
			n += st.Size()
		}
	}
	return n, nil
}
