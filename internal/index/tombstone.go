package index

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/bits"
	"path/filepath"

	"ndss/internal/fsio"
)

// Per-segment tombstone bitmaps. Segments are immutable, so a delete
// never touches an inverted file: it writes a fresh bitmap naming the
// segment's dead local text ids and commits a manifest pointing at it.
// Readers consult the bitmap at gather time — a tombstoned text never
// becomes a candidate — and compaction drops the dead postings for
// good, retiring the bitmap. Text ids are never reused: the aggregate
// NumTexts keeps counting the id-space width, deleted ids included.
//
// On-disk layout (little-endian):
//
//	magic "NDSSTMB1" | numTexts uint32 | bitmap ceil(numTexts/8) bytes
//
// The manifest records the file's CRC-32 and set-bit count, so a torn
// or stale bitmap is rejected at Open.

const tombMagic = "NDSSTMB1"

// tombSet is a loaded tombstone bitmap over a segment's local text ids.
// A nil *tombSet means "nothing deleted" and is valid to query.
type tombSet struct {
	n    int
	bits []byte
}

func newTombSet(numTexts int) *tombSet {
	return &tombSet{n: numTexts, bits: make([]byte, (numTexts+7)/8)}
}

// has reports whether local text id is tombstoned. Safe on nil.
func (t *tombSet) has(local uint32) bool {
	if t == nil || int64(local) >= int64(t.n) {
		return false
	}
	return t.bits[local>>3]&(1<<(local&7)) != 0
}

func (t *tombSet) set(local int) { t.bits[local>>3] |= 1 << (local & 7) }

// count returns the number of tombstoned ids.
func (t *tombSet) count() int {
	if t == nil {
		return 0
	}
	n := 0
	for _, b := range t.bits {
		n += bits.OnesCount8(b)
	}
	return n
}

// encodeTombstone renders the on-disk form and its CRC.
func encodeTombstone(t *tombSet) (data []byte, crc uint32) {
	data = make([]byte, len(tombMagic)+4+len(t.bits))
	copy(data, tombMagic)
	binary.LittleEndian.PutUint32(data[len(tombMagic):], uint32(t.n))
	copy(data[len(tombMagic)+4:], t.bits)
	return data, crc32.ChecksumIEEE(data)
}

// parseTombstone decodes and validates tombstone bytes against the
// segment it claims to cover and the manifest's checksum record.
func parseTombstone(data []byte, want *ManifestTombstone, numTexts int) (*tombSet, error) {
	if got := crc32.ChecksumIEEE(data); got != want.CRC {
		return nil, fmt.Errorf("index: tombstone %s checksum %08x does not match manifest (%08x): torn or mixed commit",
			want.Name, got, want.CRC)
	}
	if len(data) < len(tombMagic)+4 || string(data[:len(tombMagic)]) != tombMagic {
		return nil, fmt.Errorf("index: tombstone %s: bad header", want.Name)
	}
	n := int(binary.LittleEndian.Uint32(data[len(tombMagic):]))
	if n != numTexts {
		return nil, fmt.Errorf("index: tombstone %s covers %d texts, segment has %d", want.Name, n, numTexts)
	}
	bitmap := data[len(tombMagic)+4:]
	if len(bitmap) != (n+7)/8 {
		return nil, fmt.Errorf("index: tombstone %s: bitmap truncated", want.Name)
	}
	t := &tombSet{n: n, bits: bitmap}
	if got := t.count(); got != want.Deleted {
		return nil, fmt.Errorf("index: tombstone %s marks %d texts, manifest records %d", want.Name, got, want.Deleted)
	}
	return t, nil
}

// readTombstone loads a segment's tombstone bitmap from the index
// directory root (tombstone files live next to the manifest, not
// inside the immutable segment directories).
func readTombstone(fsys fsio.FS, dir string, want *ManifestTombstone, numTexts int) (*tombSet, error) {
	data, err := fsys.ReadFile(filepath.Join(dir, want.Name))
	if err != nil {
		return nil, fmt.Errorf("index: read tombstone %s: %w", want.Name, err)
	}
	return parseTombstone(data, want, numTexts)
}

// writeTombstone durably writes a segment's new bitmap under a fresh
// unique name and returns its manifest record. The file is unreferenced
// until the caller commits a manifest naming it, so a crash leaves only
// a sweepable orphan.
func writeTombstone(fsys fsio.FS, dir, segName string, t *tombSet) (*ManifestTombstone, error) {
	label := segName
	if label == "" {
		label = "root"
	}
	name := fmt.Sprintf("tomb-%s-%s", label, newBuildID())
	data, crc := encodeTombstone(t)
	if err := fsio.WriteFileSync(fsys, filepath.Join(dir, name), data); err != nil {
		return nil, fmt.Errorf("index: write tombstone %s: %w", name, err)
	}
	return &ManifestTombstone{Name: name, Deleted: t.count(), CRC: crc}, nil
}
