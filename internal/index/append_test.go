package index

import (
	"os"
	"testing"

	"ndss/internal/corpus"
)

// TestAppendEqualsRebuild: appending texts must produce an index
// identical to rebuilding over the concatenated corpus.
func TestAppendEqualsRebuild(t *testing.T) {
	base := testCorpus(t, 30, 30, 90, 300, 91)
	extra := testCorpus(t, 15, 30, 90, 300, 92)
	opts := BuildOptions{K: 3, Seed: 17, T: 10}

	dir := t.TempDir() + "/idx"
	if _, err := Build(base, ensureDir(t, dir), opts); err != nil {
		t.Fatal(err)
	}
	if _, err := Append(dir, extra); err != nil {
		t.Fatal(err)
	}
	appended, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer appended.Close()

	combined := corpus.New(nil)
	for id := 0; id < base.NumTexts(); id++ {
		combined.Append(base.Text(uint32(id)))
	}
	for id := 0; id < extra.NumTexts(); id++ {
		combined.Append(extra.Text(uint32(id)))
	}
	rebuilt, _ := buildIndex(t, combined, opts)
	assertIndexesEqual(t, rebuilt, appended)
	if appended.Meta().NumTexts != combined.NumTexts() {
		t.Fatalf("NumTexts = %d, want %d", appended.Meta().NumTexts, combined.NumTexts())
	}
	if appended.Meta().TotalTokens != combined.TotalTokens() {
		t.Fatalf("TotalTokens = %d, want %d", appended.Meta().TotalTokens, combined.TotalTokens())
	}
	if err := appended.VerifyIntegrity(); err != nil {
		t.Fatalf("appended index corrupt: %v", err)
	}
}

func TestAppendTwice(t *testing.T) {
	a := testCorpus(t, 10, 30, 60, 200, 93)
	b := testCorpus(t, 10, 30, 60, 200, 94)
	c := testCorpus(t, 10, 30, 60, 200, 95)
	opts := BuildOptions{K: 2, Seed: 19, T: 10}
	dir := t.TempDir() + "/idx"
	if _, err := Build(a, ensureDir(t, dir), opts); err != nil {
		t.Fatal(err)
	}
	if _, err := Append(dir, b); err != nil {
		t.Fatal(err)
	}
	if _, err := Append(dir, c); err != nil {
		t.Fatal(err)
	}
	ix, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if ix.Meta().NumTexts != 30 {
		t.Fatalf("NumTexts = %d, want 30", ix.Meta().NumTexts)
	}
}

func TestAppendMissingIndex(t *testing.T) {
	if _, err := Append(t.TempDir()+"/nope", corpus.New(nil)); err == nil {
		t.Fatal("append to missing index should fail")
	}
}

func ensureDir(t *testing.T, dir string) string {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	return dir
}
