package index

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"ndss/internal/corpus"
	"ndss/internal/fsio"
	"ndss/internal/hash"
	"ndss/internal/window"
)

func testCorpus(t *testing.T, numTexts, minLen, maxLen, vocab int, seed int64) *corpus.Corpus {
	t.Helper()
	c, err := corpus.Synthesize(corpus.SynthConfig{
		NumTexts:      numTexts,
		MinLength:     minLen,
		MaxLength:     maxLen,
		VocabSize:     vocab,
		ZipfS:         1.2,
		Seed:          seed,
		DupRate:       0.2,
		DupSnippetLen: 32,
		DupMutateProb: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func buildIndex(t *testing.T, c *corpus.Corpus, opts BuildOptions) (*Index, *BuildStats) {
	t.Helper()
	dir := t.TempDir()
	stats, err := Build(c, dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	return ix, stats
}

func TestBuildOptionsValidation(t *testing.T) {
	c := corpus.New([][]uint32{{1, 2, 3}})
	dir := t.TempDir()
	if _, err := Build(c, dir, BuildOptions{K: 0, T: 5}); err == nil {
		t.Error("K=0 should fail")
	}
	if _, err := Build(c, dir, BuildOptions{K: 1, T: 0}); err == nil {
		t.Error("T=0 should fail")
	}
	if _, err := Build(c, dir, BuildOptions{K: 1, T: 5, ZoneMapStep: -1}); err == nil {
		t.Error("negative ZoneMapStep should fail")
	}
}

// TestBuildMatchesDirectGeneration verifies every compact window of every
// text lands in exactly the right inverted list.
func TestBuildMatchesDirectGeneration(t *testing.T) {
	c := testCorpus(t, 40, 30, 120, 500, 3)
	opts := BuildOptions{K: 4, Seed: 99, T: 10}
	ix, stats := buildIndex(t, c, opts)

	fam := hash.MustNewFamily(4, 99)
	var wantWindows int64
	for fn := 0; fn < 4; fn++ {
		// Recompute all windows and group by hash.
		want := map[uint64][]Posting{}
		for id := 0; id < c.NumTexts(); id++ {
			tokens := c.Text(uint32(id))
			vals := window.Hashes(tokens, fam.Func(fn), nil)
			for _, w := range window.GenerateLinear(vals, opts.T, nil) {
				h := vals[w.C]
				want[h] = append(want[h], Posting{
					TextID: uint32(id), L: uint32(w.L), C: uint32(w.C), R: uint32(w.R),
				})
			}
		}
		for h, wantList := range want {
			wantWindows += int64(len(wantList))
			got, err := ix.ReadList(fn, h)
			if err != nil {
				t.Fatal(err)
			}
			sortPostings(wantList)
			sortPostings(got)
			if !reflect.DeepEqual(got, wantList) {
				t.Fatalf("fn %d hash %x: got %v, want %v", fn, h, got, wantList)
			}
		}
		if ix.NumLists(fn) != len(want) {
			t.Fatalf("fn %d: %d lists, want %d", fn, ix.NumLists(fn), len(want))
		}
	}
	if stats.Windows != wantWindows {
		t.Fatalf("stats.Windows = %d, want %d", stats.Windows, wantWindows)
	}
	if ix.TotalPostings() != wantWindows {
		t.Fatalf("TotalPostings = %d, want %d", ix.TotalPostings(), wantWindows)
	}
}

func sortPostings(ps []Posting) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].TextID != ps[j].TextID {
			return ps[i].TextID < ps[j].TextID
		}
		return ps[i].L < ps[j].L
	})
}

func TestPostingsSortedByTextID(t *testing.T) {
	c := testCorpus(t, 60, 30, 100, 200, 5)
	ix, _ := buildIndex(t, c, BuildOptions{K: 2, Seed: 7, T: 8})
	for fn := 0; fn < 2; fn++ {
		for _, h := range ix.Hashes(fn) {
			ps, err := ix.ReadList(fn, h)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i < len(ps); i++ {
				if ps[i].TextID < ps[i-1].TextID {
					t.Fatalf("fn %d hash %x: postings not sorted by text id", fn, h)
				}
			}
		}
	}
}

func TestReadListMissingHash(t *testing.T) {
	c := testCorpus(t, 10, 30, 60, 100, 1)
	ix, _ := buildIndex(t, c, BuildOptions{K: 1, Seed: 1, T: 10})
	ps, err := ix.ReadList(0, 0xdeadbeef12345)
	if err != nil || ps != nil {
		t.Fatalf("missing hash: ps=%v err=%v", ps, err)
	}
	if n := ix.ListLength(0, 0xdeadbeef12345); n != 0 {
		t.Fatalf("ListLength of missing hash = %d", n)
	}
}

// TestZoneMapProbe forces tiny zone parameters so every list has a zone
// map and verifies per-text probes equal filtered full reads.
func TestZoneMapProbe(t *testing.T) {
	c := testCorpus(t, 80, 40, 150, 50, 11) // tiny vocab -> long lists
	opts := BuildOptions{K: 2, Seed: 13, T: 5, ZoneMapStep: 4, LongListCutoff: 8}
	ix, _ := buildIndex(t, c, opts)
	rng := rand.New(rand.NewSource(2))
	for fn := 0; fn < 2; fn++ {
		hashes := ix.Hashes(fn)
		for _, h := range hashes {
			full, err := ix.ReadList(fn, h)
			if err != nil {
				t.Fatal(err)
			}
			// Probe a few existing and some absent text ids.
			ids := map[uint32]bool{}
			for i := 0; i < 5 && i < len(full); i++ {
				ids[full[rng.Intn(len(full))].TextID] = true
			}
			ids[0] = true
			ids[79] = true
			ids[1000] = true // absent entirely
			for id := range ids {
				got, err := ix.ReadListForText(fn, h, id)
				if err != nil {
					t.Fatal(err)
				}
				var want []Posting
				for _, p := range full {
					if p.TextID == id {
						want = append(want, p)
					}
				}
				sortPostings(got)
				sortPostings(want)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("fn %d hash %x text %d: got %v, want %v", fn, h, id, got, want)
				}
			}
		}
	}
}

func TestZoneMapReducesIO(t *testing.T) {
	c := testCorpus(t, 200, 60, 150, 20, 17) // very small vocab -> very long lists
	opts := BuildOptions{K: 1, Seed: 3, T: 5, ZoneMapStep: 16, LongListCutoff: 64}
	ix, _ := buildIndex(t, c, opts)
	// Find the longest list.
	var bestHash uint64
	bestLen := 0
	for _, h := range ix.Hashes(0) {
		if n := ix.ListLength(0, h); n > bestLen {
			bestLen, bestHash = n, h
		}
	}
	if bestLen <= opts.LongListCutoff {
		t.Skipf("no long list produced (max %d)", bestLen)
	}
	ix.ResetIOStats()
	if _, err := ix.ReadList(0, bestHash); err != nil {
		t.Fatal(err)
	}
	fullIO := ix.IOStats().BytesRead
	ix.ResetIOStats()
	if _, err := ix.ReadListForText(0, bestHash, 100); err != nil {
		t.Fatal(err)
	}
	probeIO := ix.IOStats().BytesRead
	if probeIO >= fullIO {
		t.Fatalf("zone probe read %d bytes, full read %d", probeIO, fullIO)
	}
}

func TestParallelBuildMatchesSerial(t *testing.T) {
	c := testCorpus(t, 50, 30, 100, 300, 23)
	serial, _ := buildIndex(t, c, BuildOptions{K: 2, Seed: 5, T: 10, Parallelism: 1})
	parallel, _ := buildIndex(t, c, BuildOptions{K: 2, Seed: 5, T: 10, Parallelism: 4})
	assertIndexesEqual(t, serial, parallel)
}

func assertIndexesEqual(t *testing.T, a, b *Index) {
	t.Helper()
	if a.K() != b.K() {
		t.Fatalf("K mismatch: %d vs %d", a.K(), b.K())
	}
	for fn := 0; fn < a.K(); fn++ {
		ha, hb := a.Hashes(fn), b.Hashes(fn)
		if !reflect.DeepEqual(ha, hb) {
			t.Fatalf("fn %d: hash sets differ (%d vs %d lists)", fn, len(ha), len(hb))
		}
		for _, h := range ha {
			pa, err := a.ReadList(fn, h)
			if err != nil {
				t.Fatal(err)
			}
			pb, err := b.ReadList(fn, h)
			if err != nil {
				t.Fatal(err)
			}
			sortPostings(pa)
			sortPostings(pb)
			if !reflect.DeepEqual(pa, pb) {
				t.Fatalf("fn %d hash %x: lists differ", fn, h)
			}
		}
	}
}

func TestExternalBuildMatchesInMemory(t *testing.T) {
	c := testCorpus(t, 60, 30, 120, 400, 29)
	mem, _ := buildIndex(t, c, BuildOptions{K: 3, Seed: 31, T: 10})

	// Write the corpus to disk and external-build from it.
	dir := t.TempDir()
	path := filepath.Join(dir, "c.tok")
	if err := corpus.WriteFile(c, path); err != nil {
		t.Fatal(err)
	}
	r, err := corpus.OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	extDir := t.TempDir()
	stats, err := BuildExternal(r, extDir, BuildOptions{
		K: 3, Seed: 31, T: 10,
		BatchTokens: 500, // many small batches
	})
	if err != nil {
		t.Fatal(err)
	}
	ext, err := Open(extDir)
	if err != nil {
		t.Fatal(err)
	}
	defer ext.Close()
	assertIndexesEqual(t, mem, ext)
	if stats.Windows != mem.TotalPostings() {
		t.Fatalf("external stats.Windows = %d, want %d", stats.Windows, mem.TotalPostings())
	}
	// No spill files must remain.
	matches, _ := filepath.Glob(filepath.Join(extDir, "spill-*"))
	if len(matches) != 0 {
		t.Fatalf("leftover spill files: %v", matches)
	}
}

// TestExternalBuildRecursivePartitioning forces a minuscule memory budget
// so partitions recursively split, and verifies output equality.
func TestExternalBuildRecursivePartitioning(t *testing.T) {
	c := testCorpus(t, 50, 30, 100, 300, 37)
	mem, _ := buildIndex(t, c, BuildOptions{K: 2, Seed: 41, T: 8})

	dir := t.TempDir()
	path := filepath.Join(dir, "c.tok")
	if err := corpus.WriteFile(c, path); err != nil {
		t.Fatal(err)
	}
	r, err := corpus.OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	extDir := t.TempDir()
	if _, err := BuildExternal(r, extDir, BuildOptions{
		K: 2, Seed: 41, T: 8,
		MemoryBudget: 2048, // forces recursion
		BatchTokens:  300,
	}); err != nil {
		t.Fatal(err)
	}
	ext, err := Open(extDir)
	if err != nil {
		t.Fatal(err)
	}
	defer ext.Close()
	assertIndexesEqual(t, mem, ext)
}

func TestMetaRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := Meta{K: 8, Seed: -3, T: 50, NumTexts: 10, TotalTokens: 999, ZoneMapStep: 64, LongListCutoff: 128}
	if err := writeMeta(fsio.OS, dir, m); err != nil {
		t.Fatal(err)
	}
	got, err := readMeta(fsio.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("meta round trip: %+v vs %+v", got, m)
	}
}

func TestOpenRejectsBadDirs(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("missing dir should fail")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, metaFileName), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("corrupt meta should fail")
	}
	if err := os.WriteFile(filepath.Join(dir, metaFileName), []byte(`{"k":1,"t":5}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("missing inverted files should fail")
	}
	// Garbage inverted file.
	if err := os.WriteFile(filepath.Join(dir, funcFileName(0)), make([]byte, 64), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("garbage inverted file should fail")
	}
}

func TestIndexMetaAndSize(t *testing.T) {
	c := testCorpus(t, 30, 30, 80, 200, 43)
	ix, stats := buildIndex(t, c, BuildOptions{K: 2, Seed: 47, T: 10})
	m := ix.Meta()
	if m.K != 2 || m.Seed != 47 || m.T != 10 || m.NumTexts != 30 {
		t.Fatalf("meta = %+v", m)
	}
	if m.TotalTokens != c.TotalTokens() {
		t.Fatalf("TotalTokens = %d, want %d", m.TotalTokens, c.TotalTokens())
	}
	size, err := ix.SizeOnDisk()
	if err != nil {
		t.Fatal(err)
	}
	if size <= 0 || size != stats.BytesWritten {
		t.Fatalf("SizeOnDisk = %d, stats.BytesWritten = %d", size, stats.BytesWritten)
	}
	if ix.Family().K() != 2 || ix.Family().Seed() != 47 {
		t.Fatal("family mismatch")
	}
}

// TestWindowCountScaling sanity-checks the Theorem 1 scaling through the
// builder: postings per function ~ 2*N/t.
func TestWindowCountScaling(t *testing.T) {
	c := testCorpus(t, 100, 200, 400, 5000, 51)
	n := float64(c.TotalTokens())
	for _, tt := range []int{25, 50, 100} {
		ix, _ := buildIndex(t, c, BuildOptions{K: 1, Seed: 1, T: tt})
		got := float64(ix.TotalPostings())
		want := 2 * n / float64(tt+1)
		// Duplicate tokens inflate the count somewhat (distinct-Jaccard
		// windows can repeat per occurrence); allow a generous band.
		if got < 0.5*want || got > 4*want {
			t.Errorf("t=%d: postings %v, expected around %v", tt, got, want)
		}
	}
}

func TestSkipsTooShortTexts(t *testing.T) {
	c := corpus.New([][]uint32{
		{1, 2, 3},                        // shorter than T: no windows
		{10, 11, 12, 13, 14, 15, 16, 17}, // indexed
	})
	ix, stats := buildIndex(t, c, BuildOptions{K: 1, Seed: 9, T: 5})
	if stats.Windows == 0 {
		t.Fatal("no windows at all")
	}
	for _, h := range ix.Hashes(0) {
		ps, _ := ix.ReadList(0, h)
		for _, p := range ps {
			if p.TextID == 0 {
				t.Fatalf("short text was indexed: %v", p)
			}
		}
	}
}
