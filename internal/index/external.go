package index

import (
	"bufio"
	"fmt"
	"io"
	"path/filepath"
	"time"

	"ndss/internal/corpus"
	"ndss/internal/fsio"
	"ndss/internal/hash"
	"ndss/internal/obs"
	"ndss/internal/window"
)

// BuildExternal constructs the index for a corpus file that may not fit
// in memory, using hash aggregation with recursive partitioning (§3.4's
// large-corpus path): texts are streamed in batches, each batch's
// compact-window records are partitioned by min-hash value and spilled
// to disk, and each partition is then loaded, sorted and appended to the
// inverted file. A partition that still exceeds the memory budget is
// recursively re-partitioned on higher hash bits.
//
// Like Build, the whole construction — spill files included — is
// staged in a temp directory next to dir and committed atomically;
// spill artifacts stranded by a crashed prior run are swept when the
// build starts.
func BuildExternal(r *corpus.Reader, dir string, opts BuildOptions) (*BuildStats, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	fam, err := hash.NewFamily(opts.K, opts.Seed)
	if err != nil {
		return nil, err
	}
	fsys := opts.fsys()
	staging, err := beginBuild(fsys, dir, true)
	if err != nil {
		return nil, err
	}
	committed := false
	defer func() {
		if !committed {
			discardStaging(fsys, staging)
		}
	}()

	stats := &BuildStats{WindowsPerFunc: make([]int64, opts.K)}

	// Estimate partition fan-out so one partition fits the budget:
	// expected records ~= 2 * totalTokens / T, 24 bytes each.
	expBytes := 2 * r.TotalTokens() / int64(opts.T) * recordSize
	fanout := int(expBytes/opts.MemoryBudget) + 1
	if fanout > 512 {
		fanout = 512
	}

	sums := make([]fileSum, opts.K)
	for fn := 0; fn < opts.K; fn++ {
		sum, err := buildExternalFunc(r, fsys, staging, fn, fam.Func(fn), fanout, opts, stats)
		if err != nil {
			return nil, err
		}
		sums[fn] = sum
	}
	meta := Meta{
		K:              opts.K,
		Seed:           opts.Seed,
		T:              opts.T,
		NumTexts:       r.NumTexts(),
		TotalTokens:    r.TotalTokens(),
		ZoneMapStep:    opts.ZoneMapStep,
		LongListCutoff: opts.LongListCutoff,
	}
	if err := finishBuild(fsys, staging, dir, meta, sums); err != nil {
		return nil, err
	}
	committed = true
	return stats, nil
}

// spillSet is a group of open partition spill files at one recursion
// level. Every spill lives inside the build's staging directory, so
// even a removal that never runs (crash) is swept with the staging
// orphan by the next build.
type spillSet struct {
	fs    fsio.FS
	dir   string
	level int
	files []fsio.File
	bufs  []*bufio.Writer
	sizes []int64
}

func newSpillSet(fsys fsio.FS, dir string, level, fanout int) (*spillSet, error) {
	s := &spillSet{
		fs:    fsys,
		dir:   dir,
		level: level,
		files: make([]fsio.File, fanout),
		bufs:  make([]*bufio.Writer, fanout),
		sizes: make([]int64, fanout),
	}
	for p := 0; p < fanout; p++ {
		f, err := fsys.CreateTemp(dir, fmt.Sprintf("spill-l%d-p%d-*", level, p))
		if err != nil {
			s.cleanup()
			return nil, fmt.Errorf("index: create spill: %w", err)
		}
		s.files[p] = f
		s.bufs[p] = bufio.NewWriterSize(f, 1<<18)
	}
	return s, nil
}

// partitionOf selects a partition for hash h at the given level. Level 0
// uses the low bits; deeper levels shift to fresh bits so a partition
// actually splits on recursion.
func partitionOf(h uint64, level, fanout int) int {
	return int((h >> (9 * uint(level))) % uint64(fanout))
}

func (s *spillSet) add(rec record, fanout int) error {
	p := partitionOf(rec.Hash, s.level, fanout)
	var buf [recordSize]byte
	encodeRecord(buf[:], rec)
	if _, err := s.bufs[p].Write(buf[:]); err != nil {
		return err
	}
	s.sizes[p] += recordSize
	return nil
}

func (s *spillSet) flush() error {
	for _, b := range s.bufs {
		if b == nil {
			continue
		}
		if err := b.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// cleanup closes and removes every spill file. It runs on success and
// on every error return path; removal failures leave orphans inside
// the staging directory only, which the next build sweeps.
func (s *spillSet) cleanup() {
	for i, f := range s.files {
		if f != nil {
			name := f.Name()
			f.Close()
			s.fs.Remove(name)
			s.files[i] = nil
		}
	}
}

func buildExternalFunc(r *corpus.Reader, fsys fsio.FS, dir string, fn int, f hash.Func, fanout int, opts BuildOptions, stats *BuildStats) (fileSum, error) {
	spill, err := newSpillSet(fsys, dir, 0, fanout)
	if err != nil {
		return fileSum{}, err
	}
	defer spill.cleanup()

	// Pass 1: stream texts, generate windows, spill records partitioned
	// by min-hash.
	var vals []uint64
	var ws []window.Window
	streamErr := r.Stream(opts.BatchTokens, func(firstID uint32, texts [][]uint32) error {
		genStart := obs.NowMono()
		for i, tokens := range texts {
			if len(tokens) < opts.T {
				continue
			}
			vals = window.Hashes(tokens, f, vals)
			ws = window.GenerateLinear(vals, opts.T, ws[:0])
			id := firstID + uint32(i)
			genDone := obs.NowMono()
			stats.GenTime += genDone.Sub(genStart)
			for _, w := range ws {
				rec := record{
					Hash: vals[w.C],
					Posting: Posting{
						TextID: id,
						L:      uint32(w.L),
						C:      uint32(w.C),
						R:      uint32(w.R),
					},
				}
				if err := spill.add(rec, fanout); err != nil {
					return err
				}
				stats.WindowsPerFunc[fn]++
				stats.Windows++
			}
			genStart = obs.NowMono()
			stats.IOTime += genStart.Sub(genDone) // spill writes are I/O
		}
		stats.GenTime += obs.SinceMono(genStart)
		return nil
	})
	if streamErr != nil {
		return fileSum{}, streamErr
	}
	ioStart := time.Now()
	if err := spill.flush(); err != nil {
		return fileSum{}, err
	}

	// Pass 2: aggregate each partition into the inverted file.
	w, err := newFileWriter(fsys, indexPath(dir, fn), fn, opts.ZoneMapStep, opts.LongListCutoff)
	if err != nil {
		return fileSum{}, err
	}
	for p, f := range spill.files {
		if err := aggregatePartition(f, spill.sizes[p], 1, fsys, dir, opts, w); err != nil {
			w.abort()
			return fileSum{}, err
		}
	}
	sum, err := w.finish()
	if err != nil {
		return fileSum{}, err
	}
	stats.IOTime += time.Since(ioStart)
	stats.BytesWritten += sum.size
	return sum, nil
}

// maxRecursionDepth bounds recursive re-partitioning. A partition made of
// a single over-budget hash value can never split; after this depth it is
// aggregated in memory regardless of the budget.
const maxRecursionDepth = 6

// aggregatePartition loads one spill file, sorts its records and appends
// complete inverted lists to w. Over-budget partitions are re-partitioned
// on higher hash bits first (recursive partitioning).
func aggregatePartition(f fsio.File, size int64, level int, fsys fsio.FS, dir string, opts BuildOptions, w *fileWriter) error {
	if size == 0 {
		return nil
	}
	if size > opts.MemoryBudget && level <= maxRecursionDepth {
		return repartition(f, size, level, fsys, dir, opts, w)
	}
	recs, err := readAllRecords(f, size)
	if err != nil {
		return err
	}
	sortRecords(recs)
	return addSortedRuns(w, recs)
}

// repartition splits an over-budget spill file into sub-partitions on a
// fresh range of hash bits and aggregates each. The sub-spills are
// cleaned up on success and on every error return path.
func repartition(f fsio.File, size int64, level int, fsys fsio.FS, dir string, opts BuildOptions, w *fileWriter) error {
	fanout := int(size/opts.MemoryBudget) + 1
	if fanout < 2 {
		fanout = 2
	}
	if fanout > 512 {
		fanout = 512
	}
	sub, err := newSpillSet(fsys, dir, level, fanout)
	if err != nil {
		return err
	}
	defer sub.cleanup()
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	br := bufio.NewReaderSize(f, 1<<18)
	var buf [recordSize]byte
	for read := int64(0); read < size; read += recordSize {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return fmt.Errorf("index: read spill: %w", err)
		}
		if err := sub.add(decodeRecord(buf[:]), fanout); err != nil {
			return err
		}
	}
	if err := sub.flush(); err != nil {
		return err
	}
	for p, sf := range sub.files {
		if err := aggregatePartition(sf, sub.sizes[p], level+1, fsys, dir, opts, w); err != nil {
			return err
		}
	}
	return nil
}

func readAllRecords(f fsio.File, size int64) ([]record, error) {
	if size%recordSize != 0 {
		return nil, fmt.Errorf("index: spill size %d not a record multiple", size)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	data := make([]byte, size)
	if _, err := io.ReadFull(bufio.NewReaderSize(f, 1<<20), data); err != nil {
		return nil, fmt.Errorf("index: load spill: %w", err)
	}
	recs := make([]record, size/recordSize)
	for i := range recs {
		recs[i] = decodeRecord(data[i*recordSize:])
	}
	return recs, nil
}

// CleanSpills removes leftover spill files from dir (normally none; a
// crashed pre-manifest build may have left them — the staged builders
// also sweep them automatically at build start).
func CleanSpills(dir string) error {
	matches, err := fsio.OS.Glob(filepath.Join(dir, "spill-*"))
	if err != nil {
		return err
	}
	for _, m := range matches {
		if err := fsio.OS.Remove(m); err != nil {
			return err
		}
	}
	return nil
}
