package index

import (
	"reflect"
	"testing"
)

// TestMemIndexMatchesDiskIndex: the in-memory index must expose exactly
// the same lists as the on-disk one built with the same parameters.
func TestMemIndexMatchesDiskIndex(t *testing.T) {
	c := testCorpus(t, 40, 30, 100, 300, 71)
	opts := BuildOptions{K: 3, Seed: 7, T: 10}
	disk, _ := buildIndex(t, c, opts)
	mem, err := BuildMem(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if mem.K() != disk.K() {
		t.Fatalf("K: %d vs %d", mem.K(), disk.K())
	}
	if mem.TotalPostings() != disk.TotalPostings() {
		t.Fatalf("postings: %d vs %d", mem.TotalPostings(), disk.TotalPostings())
	}
	for fn := 0; fn < disk.K(); fn++ {
		for _, h := range disk.Hashes(fn) {
			want, err := disk.ReadList(fn, h)
			if err != nil {
				t.Fatal(err)
			}
			got, err := mem.ReadList(fn, h)
			if err != nil {
				t.Fatal(err)
			}
			a := append([]Posting{}, want...)
			b := append([]Posting{}, got...)
			sortPostings(a)
			sortPostings(b)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("fn %d hash %x: lists differ", fn, h)
			}
			if mem.ListLength(fn, h) != len(want) {
				t.Fatalf("fn %d hash %x: length %d vs %d", fn, h, mem.ListLength(fn, h), len(want))
			}
		}
	}
}

func TestMemIndexReadListForText(t *testing.T) {
	c := testCorpus(t, 50, 40, 120, 60, 73) // small vocab: repeated hashes
	mem, err := BuildMem(c, BuildOptions{K: 2, Seed: 9, T: 8})
	if err != nil {
		t.Fatal(err)
	}
	for fn := 0; fn < 2; fn++ {
		for h, full := range mem.lists[fn] {
			for _, id := range []uint32{0, 10, 25, 49, 1000} {
				got, err := mem.ReadListForText(fn, h, id)
				if err != nil {
					t.Fatal(err)
				}
				var want []Posting
				for _, p := range full {
					if p.TextID == id {
						want = append(want, p)
					}
				}
				if len(got) != len(want) {
					t.Fatalf("fn %d hash %x text %d: %d vs %d postings", fn, h, id, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("fn %d hash %x text %d: posting mismatch", fn, h, id)
					}
				}
			}
		}
	}
}

func TestMemIndexMeta(t *testing.T) {
	c := testCorpus(t, 10, 30, 60, 100, 75)
	mem, err := BuildMem(c, BuildOptions{K: 4, Seed: 11, T: 10})
	if err != nil {
		t.Fatal(err)
	}
	m := mem.Meta()
	if m.K != 4 || m.Seed != 11 || m.T != 10 || m.NumTexts != 10 {
		t.Fatalf("meta = %+v", m)
	}
	if mem.Family().K() != 4 {
		t.Fatal("family mismatch")
	}
	if got := mem.IOStats(); got.BytesRead != 0 || got.ReadTime != 0 {
		t.Fatalf("IOStats = %+v", got)
	}
	if _, err := BuildMem(c, BuildOptions{K: 0, T: 5}); err == nil {
		t.Fatal("K=0 should fail")
	}
}
