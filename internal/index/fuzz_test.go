package index

import (
	"encoding/json"
	"testing"
)

// FuzzManifestParse checks that manifest parsing is total: arbitrary
// bytes — including torn prefixes of a valid manifest, the write state
// a crash mid-commit can leave behind — either parse to a validated
// manifest or return an error, and never panic. Any accepted input
// must satisfy the invariants the rest of the index lifecycle assumes.
func FuzzManifestParse(f *testing.F) {
	valid, err := json.MarshalIndent(newManifest(Meta{K: 2, T: 4, Seed: 7, NumTexts: 3}, []fileSum{
		{size: 128, dirCRC: 1, regionCRC: 2},
		{size: 256, dirCRC: 3, regionCRC: 4},
	}), "", "  ")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // torn write
	f.Add([]byte("{}"))
	f.Add([]byte(`{"format_version":1,"build_id":"x","meta":{"k":1,"t":2},"files":[{}]}`))
	f.Add([]byte(`{"format_version":1,"build_id":"x","meta":{"k":-1,"t":2}}`))
	f.Add([]byte(`null`))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := parseManifest(data)
		if err != nil {
			if m != nil {
				t.Fatalf("error %v with non-nil manifest", err)
			}
			return
		}
		if m.FormatVersion != manifestFormatVersion {
			t.Fatalf("accepted format version %d", m.FormatVersion)
		}
		if m.BuildID == "" {
			t.Fatal("accepted manifest without build id")
		}
		if m.Meta.K <= 0 || m.Meta.T <= 0 {
			t.Fatalf("accepted invalid meta k=%d t=%d", m.Meta.K, m.Meta.T)
		}
		if len(m.Files) != m.Meta.K {
			t.Fatalf("accepted %d files for k=%d", len(m.Files), m.Meta.K)
		}
		// Round-trip: a parsed manifest re-encodes and re-parses to the
		// same validated value.
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		m2, err := parseManifest(out)
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		if m2.BuildID != m.BuildID || m2.Meta != m.Meta || len(m2.Files) != len(m.Files) {
			t.Fatalf("round-trip changed manifest: %+v vs %+v", m, m2)
		}
	})
}
