package index

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzManifestParse checks that manifest parsing is total: arbitrary
// bytes — including torn prefixes of a valid manifest, the write state
// a crash mid-commit can leave behind — either parse to a validated
// manifest or return an error, and never panic. Any accepted input
// must satisfy the invariants the rest of the index lifecycle assumes.
func FuzzManifestParse(f *testing.F) {
	valid, err := json.MarshalIndent(newManifest(Meta{K: 2, T: 4, Seed: 7, NumTexts: 3}, []fileSum{
		{size: 128, dirCRC: 1, regionCRC: 2},
		{size: 256, dirCRC: 3, regionCRC: 4},
	}), "", "  ")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // torn write
	f.Add([]byte("{}"))
	// Version-1 (pre-segment) shapes: normalized or rejected, never panicking.
	f.Add([]byte(`{"format_version":1,"build_id":"x","meta":{"k":1,"t":2},"files":[{"name":"index.000","size":64}]}`))
	f.Add([]byte(`{"format_version":1,"build_id":"x","meta":{"k":1,"t":2},"files":[{}]}`))
	f.Add([]byte(`{"format_version":1,"build_id":"x","meta":{"k":-1,"t":2}}`))
	// Multi-segment and tombstoned shapes.
	f.Add([]byte(`{"format_version":2,"build_id":"x","meta":{"k":1,"t":2,"seed":3,"num_texts":5},` +
		`"segments":[{"name":"","meta":{"k":1,"t":2,"seed":3,"num_texts":2},"files":[{"name":"index.000"}]},` +
		`{"name":"seg-000001","meta":{"k":1,"t":2,"seed":3,"num_texts":3},"files":[{"name":"index.000"}],` +
		`"tombstone":{"name":"tomb-seg-000001-ab","deleted":1,"crc32":9}}]}`))
	f.Add([]byte(`{"format_version":2,"build_id":"x","meta":{"k":1,"t":2},"segments":[{"name":"../evil","meta":{"k":1,"t":2}}]}`))
	f.Add([]byte(`null`))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := parseManifest(data)
		if err != nil {
			if m != nil {
				t.Fatalf("error %v with non-nil manifest", err)
			}
			return
		}
		if m.FormatVersion != manifestFormatVersion {
			t.Fatalf("accepted format version %d", m.FormatVersion)
		}
		if m.BuildID == "" {
			t.Fatal("accepted manifest without build id")
		}
		if m.Meta.K <= 0 || m.Meta.T <= 0 {
			t.Fatalf("accepted invalid meta k=%d t=%d", m.Meta.K, m.Meta.T)
		}
		if len(m.Files) != 0 {
			t.Fatalf("accepted manifest kept a top-level file list (%d entries)", len(m.Files))
		}
		if len(m.Segments) == 0 {
			t.Fatal("accepted manifest without segments")
		}
		texts, tokens := 0, int64(0)
		for i, seg := range m.Segments {
			if seg.Name == "" && i != 0 {
				t.Fatalf("accepted root segment at position %d", i)
			}
			if len(seg.Files) != seg.Meta.K {
				t.Fatalf("accepted %d files for segment %q with k=%d", len(seg.Files), seg.Name, seg.Meta.K)
			}
			if seg.Meta.K != m.Meta.K || seg.Meta.Seed != m.Meta.Seed || seg.Meta.T != m.Meta.T {
				t.Fatalf("accepted mixed build options: segment %q %+v vs aggregate %+v", seg.Name, seg.Meta, m.Meta)
			}
			if tomb := seg.Tomb; tomb != nil && (tomb.Deleted <= 0 || tomb.Deleted > seg.Meta.NumTexts) {
				t.Fatalf("accepted tombstone marking %d of %d texts", tomb.Deleted, seg.Meta.NumTexts)
			}
			texts += seg.Meta.NumTexts
			tokens += seg.Meta.TotalTokens
		}
		if m.Meta.NumTexts != texts || m.Meta.TotalTokens != tokens {
			t.Fatalf("accepted aggregate (%d texts, %d tokens) inconsistent with segments (%d, %d)",
				m.Meta.NumTexts, m.Meta.TotalTokens, texts, tokens)
		}
		// Round-trip: a parsed manifest re-encodes and re-parses to the
		// same validated value.
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		m2, err := parseManifest(out)
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("round-trip changed manifest: %+v vs %+v", m, m2)
		}
	})
}
