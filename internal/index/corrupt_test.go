package index

import (
	"os"
	"path/filepath"
	"testing"
)

// Corruption-injection tests for the on-disk format's integrity
// checking.

// buildOnDisk builds a small index and returns its directory plus the
// path of function 0's inverted file.
func buildOnDisk(t *testing.T) (string, string) {
	t.Helper()
	c := testCorpus(t, 30, 40, 100, 200, 61)
	dir := t.TempDir()
	if _, err := Build(c, dir, BuildOptions{K: 2, Seed: 5, T: 10}); err != nil {
		t.Fatal(err)
	}
	return dir, filepath.Join(dir, funcFileName(0))
}

// flipByteAt flips one byte of a file in place.
func flipByteAt(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

func TestCleanIndexPassesIntegrity(t *testing.T) {
	dir, _ := buildOnDisk(t)
	ix, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if err := ix.VerifyIntegrity(); err != nil {
		t.Fatalf("clean index failed integrity: %v", err)
	}
}

func TestCorruptDirectoryRejectedAtOpen(t *testing.T) {
	dir, file := buildOnDisk(t)
	st, err := os.Stat(file)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the directory (just before the
	// trailer).
	flipByteAt(t, file, st.Size()-trailerLen-dirEntrySize/2)
	if _, err := Open(dir); err == nil {
		t.Fatal("corrupt directory should fail to open")
	}
}

func TestCorruptPostingsCaughtByVerify(t *testing.T) {
	dir, file := buildOnDisk(t)
	// Flip a byte early in the postings region: Open still succeeds
	// (only the directory is validated eagerly) but VerifyIntegrity
	// must catch it.
	flipByteAt(t, file, idxHeaderLen+8)
	ix, err := Open(dir)
	if err != nil {
		t.Fatalf("open after postings corruption should succeed (lazy check): %v", err)
	}
	defer ix.Close()
	if err := ix.VerifyIntegrity(); err == nil {
		t.Fatal("VerifyIntegrity missed postings corruption")
	}
}

func TestCorruptTrailerRejected(t *testing.T) {
	dir, file := buildOnDisk(t)
	st, err := os.Stat(file)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the directory offset in the trailer.
	flipByteAt(t, file, st.Size()-trailerLen+2)
	if _, err := Open(dir); err == nil {
		t.Fatal("corrupt trailer should fail to open")
	}
}

func TestTruncatedFileRejected(t *testing.T) {
	dir, file := buildOnDisk(t)
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(file, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("truncated file should fail to open")
	}
}
