package index

import (
	"encoding/json"
	"strings"

	"ndss/internal/fsio"
	"os"
	"path/filepath"
	"testing"
)

// Corruption-injection tests for the on-disk format's integrity
// checking.

// buildOnDisk builds a small index and returns its directory plus the
// path of function 0's inverted file.
func buildOnDisk(t *testing.T) (string, string) {
	t.Helper()
	c := testCorpus(t, 30, 40, 100, 200, 61)
	dir := t.TempDir()
	if _, err := Build(c, dir, BuildOptions{K: 2, Seed: 5, T: 10}); err != nil {
		t.Fatal(err)
	}
	return dir, filepath.Join(dir, funcFileName(0))
}

// flipByteAt flips one byte of a file in place.
func flipByteAt(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

func TestCleanIndexPassesIntegrity(t *testing.T) {
	dir, _ := buildOnDisk(t)
	ix, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if err := ix.VerifyIntegrity(); err != nil {
		t.Fatalf("clean index failed integrity: %v", err)
	}
}

func TestCorruptDirectoryRejectedAtOpen(t *testing.T) {
	dir, file := buildOnDisk(t)
	st, err := os.Stat(file)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the directory (just before the
	// trailer).
	flipByteAt(t, file, st.Size()-trailerLen-dirEntrySize/2)
	if _, err := Open(dir); err == nil {
		t.Fatal("corrupt directory should fail to open")
	}
}

func TestCorruptPostingsCaughtByVerify(t *testing.T) {
	dir, file := buildOnDisk(t)
	// Flip a byte early in the postings region: Open still succeeds
	// (only the directory is validated eagerly) but VerifyIntegrity
	// must catch it.
	flipByteAt(t, file, idxHeaderLen+8)
	ix, err := Open(dir)
	if err != nil {
		t.Fatalf("open after postings corruption should succeed (lazy check): %v", err)
	}
	defer ix.Close()
	if err := ix.VerifyIntegrity(); err == nil {
		t.Fatal("VerifyIntegrity missed postings corruption")
	}
}

func TestCorruptTrailerRejected(t *testing.T) {
	dir, file := buildOnDisk(t)
	st, err := os.Stat(file)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the directory offset in the trailer.
	flipByteAt(t, file, st.Size()-trailerLen+2)
	if _, err := Open(dir); err == nil {
		t.Fatal("corrupt trailer should fail to open")
	}
}

func TestTruncatedFileRejected(t *testing.T) {
	dir, file := buildOnDisk(t)
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(file, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("truncated file should fail to open")
	}
}

// Manifest-era corruption tests: Open must cross-check the directory
// against the build manifest and reject torn or mixed-build states.

func TestManifestRoundTripAfterBuild(t *testing.T) {
	dir, _ := buildOnDisk(t)
	ix, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if id := ix.BuildID(); id == "" || id == "legacy" {
		t.Fatalf("committed build has build id %q", id)
	}
	man := ix.Manifest()
	if man == nil {
		t.Fatal("no manifest on a freshly built index")
	}
	if len(man.Segments) != 1 || man.Segments[0].Name != "" {
		t.Fatalf("fresh build should commit a single root segment, got %+v", man.Segments)
	}
	if len(man.Segments[0].Files) != ix.K() {
		t.Fatalf("manifest lists %d files for k=%d", len(man.Segments[0].Files), ix.K())
	}
	if err := ix.VerifyIntegrity(); err != nil {
		t.Fatalf("clean index failed integrity: %v", err)
	}
}

func TestTruncatedManifestRejected(t *testing.T) {
	dir, _ := buildOnDisk(t)
	mpath := filepath.Join(dir, manifestFileName)
	data, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mpath, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("truncated manifest should fail to open")
	}
}

func TestManifestSizeMismatchRejected(t *testing.T) {
	dir, _ := buildOnDisk(t)
	mpath := filepath.Join(dir, manifestFileName)
	man, err := readManifest(fsio.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	man.Segments[0].Files[0].Size += 16
	data, err := json.Marshal(man)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mpath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir)
	if err == nil {
		t.Fatal("size mismatch against manifest should fail to open")
	}
	if !strings.Contains(err.Error(), "torn or mixed build") {
		t.Fatalf("diagnostic does not name the cause: %v", err)
	}
}

// TestMixedBuildRejected swaps one inverted file in from a different
// build of the same shape: sizes may even coincide, but the checksums
// cannot, and Open must refuse to serve the mixture.
func TestMixedBuildRejected(t *testing.T) {
	dirA, fileA := buildOnDisk(t)
	// A different corpus with the same parameters.
	c := testCorpus(t, 30, 40, 100, 200, 62)
	dirB := t.TempDir()
	if _, err := Build(c, dirB, BuildOptions{K: 2, Seed: 5, T: 10}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dirB, funcFileName(0)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fileA, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dirA)
	if err == nil {
		t.Fatal("file from a different build should fail to open")
	}
	if !strings.Contains(err.Error(), "torn or mixed build") {
		t.Fatalf("diagnostic does not name the cause: %v", err)
	}
}

// TestLegacyIndexWithoutManifestOpens covers the compatibility path:
// a directory with only the bare metadata file (as written before
// manifests existed) opens and reports build id "legacy".
func TestLegacyIndexWithoutManifestOpens(t *testing.T) {
	dir, _ := buildOnDisk(t)
	if err := os.Remove(filepath.Join(dir, manifestFileName)); err != nil {
		t.Fatal(err)
	}
	ix, err := Open(dir)
	if err != nil {
		t.Fatalf("legacy index should open: %v", err)
	}
	defer ix.Close()
	if ix.BuildID() != "legacy" {
		t.Fatalf("legacy build id = %q", ix.BuildID())
	}
	if ix.Manifest() != nil {
		t.Fatal("legacy index reports a manifest")
	}
	if err := ix.VerifyIntegrity(); err != nil {
		t.Fatalf("legacy index failed integrity: %v", err)
	}
}
