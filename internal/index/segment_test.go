package index

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"ndss/internal/corpus"
	"ndss/internal/fsio"
)

// Segment-lifecycle tests: append-as-new-segment, tombstoned deletes,
// compaction equivalence, and the mixed-build-options guard.

// buildSegmented builds a base index and appends extra segments,
// returning the directory. Every slice in parts after the first is
// appended as its own segment.
func buildSegmented(t *testing.T, opts BuildOptions, parts ...*corpus.Corpus) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "ix")
	if _, err := Build(parts[0], dir, opts); err != nil {
		t.Fatal(err)
	}
	for _, p := range parts[1:] {
		if _, err := Append(dir, p); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// allLists snapshots every inverted list of every function, in order —
// the full observable read surface of the index.
func allLists(t *testing.T, ix *Index) map[int]map[uint64][]Posting {
	t.Helper()
	out := make(map[int]map[uint64][]Posting)
	for fn := 0; fn < ix.K(); fn++ {
		out[fn] = make(map[uint64][]Posting)
		for _, h := range ix.Hashes(fn) {
			ps, err := ix.ReadList(fn, h)
			if err != nil {
				t.Fatal(err)
			}
			// A hash whose postings are all tombstoned reads as empty
			// before compaction and disappears entirely after it; both
			// states are the same observable (no candidates).
			if len(ps) == 0 {
				continue
			}
			out[fn][h] = ps
		}
	}
	return out
}

func assertSameLists(t *testing.T, want, got map[int]map[uint64][]Posting) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("function count differs: %d vs %d", len(want), len(got))
	}
	for fn, lists := range want {
		if len(lists) != len(got[fn]) {
			t.Fatalf("fn %d: list count differs: %d vs %d", fn, len(lists), len(got[fn]))
		}
		for h, ps := range lists {
			qs, ok := got[fn][h]
			if !ok {
				t.Fatalf("fn %d: hash %x missing", fn, h)
			}
			if len(ps) != len(qs) {
				t.Fatalf("fn %d hash %x: length %d vs %d", fn, h, len(ps), len(qs))
			}
			for i := range ps {
				if ps[i] != qs[i] {
					t.Fatalf("fn %d hash %x posting %d: %+v vs %+v", fn, h, i, ps[i], qs[i])
				}
			}
		}
	}
}

// TestAppendWritesOnlySegment is the point of the refactor: appending
// must not rewrite the existing segments — only a new segment directory
// and a renamed manifest appear.
func TestAppendWritesOnlySegment(t *testing.T) {
	base := testCorpus(t, 14, 30, 60, 100, 7)
	extra := testCorpus(t, 9, 30, 60, 100, 9)
	opts := BuildOptions{K: 3, Seed: 17, T: 10, Parallelism: 1}
	dir := filepath.Join(t.TempDir(), "ix")
	if _, err := Build(base, dir, opts); err != nil {
		t.Fatal(err)
	}
	before := make(map[string][]byte)
	for fn := 0; fn < opts.K; fn++ {
		data, err := os.ReadFile(filepath.Join(dir, funcFileName(fn)))
		if err != nil {
			t.Fatal(err)
		}
		before[funcFileName(fn)] = data
	}
	if _, err := Append(dir, extra); err != nil {
		t.Fatal(err)
	}
	for name, want := range before {
		got, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("append rewrote root segment file %s", name)
		}
	}
	ix, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if ix.SegmentCount() != 2 {
		t.Fatalf("segment count = %d, want 2", ix.SegmentCount())
	}
	segs := ix.Segments()
	if segs[0].Name != "" || segs[1].Name != segmentDirName(1) {
		t.Fatalf("unexpected segment names: %+v", segs)
	}
	if segs[1].Base != uint32(base.NumTexts()) {
		t.Fatalf("appended segment based at %d, want %d", segs[1].Base, base.NumTexts())
	}
	if st, err := os.Stat(filepath.Join(dir, segmentDirName(1), funcFileName(0))); err != nil || st.Size() == 0 {
		t.Fatalf("appended segment files missing: %v", err)
	}
}

// TestLegacyIndexOpensAsOneSegment covers the compatibility path end to
// end: a pre-manifest directory opens as a one-segment set, and the
// first mutation upgrades it to a manifested segment set whose results
// match a from-scratch rebuild.
func TestLegacyIndexOpensAsOneSegment(t *testing.T) {
	base := testCorpus(t, 14, 30, 60, 100, 7)
	extra := testCorpus(t, 9, 30, 60, 100, 9)
	opts := BuildOptions{K: 3, Seed: 17, T: 10, Parallelism: 1}
	dir := filepath.Join(t.TempDir(), "ix")
	if _, err := Build(base, dir, opts); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, manifestFileName)); err != nil {
		t.Fatal(err)
	}
	ix, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ix.SegmentCount() != 1 {
		t.Fatalf("legacy index has %d segments", ix.SegmentCount())
	}
	ix.Close()

	if _, err := Append(dir, extra); err != nil {
		t.Fatal(err)
	}
	ix, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if ix.BuildID() == "legacy" || ix.Manifest() == nil {
		t.Fatal("append did not upgrade the legacy index to a manifest")
	}
	if ix.SegmentCount() != 2 {
		t.Fatalf("segment count = %d, want 2", ix.SegmentCount())
	}

	both := corpus.New(nil)
	for id := 0; id < base.NumTexts(); id++ {
		both.Append(base.Text(uint32(id)))
	}
	for id := 0; id < extra.NumTexts(); id++ {
		both.Append(extra.Text(uint32(id)))
	}
	ref, _ := buildIndex(t, both, opts)
	assertIndexesEqual(t, ref, ix)
}

// TestMixedOptionsRejected tampers a committed manifest so one segment
// claims different hash parameters; Open must refuse with the typed
// error.
func TestMixedOptionsRejected(t *testing.T) {
	base := testCorpus(t, 14, 30, 60, 100, 7)
	extra := testCorpus(t, 9, 30, 60, 100, 9)
	opts := BuildOptions{K: 2, Seed: 17, T: 10, Parallelism: 1}
	dir := buildSegmented(t, opts, base, extra)

	man, err := readManifest(fsio.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	man.Segments[1].Meta.Seed++
	data, err := json.Marshal(man)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestFileName), data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir)
	if err == nil {
		t.Fatal("mixed build options should fail to open")
	}
	var mixed *MixedOptionsError
	if !errors.As(err, &mixed) {
		t.Fatalf("error is not a MixedOptionsError: %v", err)
	}
	if mixed.Segment != segmentDirName(1) {
		t.Fatalf("error names segment %q, want %q", mixed.Segment, segmentDirName(1))
	}
}

// TestDeleteTombstones checks gather-time masking: a deleted text
// vanishes from every list read while the segments and the id space
// stay untouched.
func TestDeleteTombstones(t *testing.T) {
	base := testCorpus(t, 14, 30, 60, 100, 7)
	extra := testCorpus(t, 9, 30, 60, 100, 9)
	opts := BuildOptions{K: 2, Seed: 17, T: 10, Parallelism: 1}
	dir := buildSegmented(t, opts, base, extra)

	// One id in the root segment, one in the appended segment.
	victims := []uint32{3, uint32(base.NumTexts()) + 2}
	if err := Delete(dir, victims); err != nil {
		t.Fatal(err)
	}
	ix, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if got := ix.Meta().NumTexts; got != base.NumTexts()+extra.NumTexts() {
		t.Fatalf("delete changed the id space: NumTexts %d", got)
	}
	segs := ix.Segments()
	if segs[0].Tombstoned != 1 || segs[1].Tombstoned != 1 {
		t.Fatalf("tombstone counts %d/%d, want 1/1", segs[0].Tombstoned, segs[1].Tombstoned)
	}
	dead := map[uint32]bool{victims[0]: true, victims[1]: true}
	for fn := 0; fn < ix.K(); fn++ {
		for _, h := range ix.Hashes(fn) {
			ps, err := ix.ReadList(fn, h)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range ps {
				if dead[p.TextID] {
					t.Fatalf("fn %d hash %x still lists deleted text %d", fn, h, p.TextID)
				}
			}
			for _, id := range victims {
				ps, err := ix.ReadListForText(fn, h, id)
				if err != nil {
					t.Fatal(err)
				}
				if len(ps) != 0 {
					t.Fatalf("probe for deleted text %d returned %d postings", id, len(ps))
				}
			}
		}
	}

	// Deleting the same ids again is a no-op commit, out-of-range is an
	// error.
	if err := Delete(dir, victims[:1]); err != nil {
		t.Fatal(err)
	}
	if err := Delete(dir, []uint32{uint32(ix.Meta().NumTexts)}); err == nil {
		t.Fatal("delete beyond the corpus should fail")
	}
}

// TestCompactEquivalence is the compaction oracle: merging the segment
// set into one must not change a single observable read — same hashes,
// same postings, same order — while dropping tombstoned postings and
// preserving the id space.
func TestCompactEquivalence(t *testing.T) {
	base := testCorpus(t, 14, 30, 60, 100, 7)
	extraA := testCorpus(t, 9, 30, 60, 100, 9)
	extraB := testCorpus(t, 7, 30, 60, 100, 11)
	opts := BuildOptions{K: 3, Seed: 17, T: 10, Parallelism: 1}
	dir := buildSegmented(t, opts, base, extraA, extraB)
	victims := []uint32{1, uint32(base.NumTexts()) + 4, uint32(base.NumTexts()+extraA.NumTexts()) + 2}
	if err := Delete(dir, victims); err != nil {
		t.Fatal(err)
	}

	before, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := allLists(t, before)
	wantMeta := before.Meta()
	before.Close()

	if err := Compact(dir); err != nil {
		t.Fatal(err)
	}
	after, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer after.Close()
	if after.SegmentCount() != 1 {
		t.Fatalf("compacted index has %d segments", after.SegmentCount())
	}
	if after.Segments()[0].Tombstoned != 0 {
		t.Fatal("compacted index still carries tombstones")
	}
	if after.Meta() != wantMeta {
		t.Fatalf("compaction changed meta: %+v vs %+v", wantMeta, after.Meta())
	}
	assertSameLists(t, want, allLists(t, after))
	if err := after.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	// Old segment directories and tombstone files are gone.
	for _, pattern := range []string{"seg-*", "tomb-*"} {
		if m, _ := filepath.Glob(filepath.Join(dir, pattern)); len(m) != 0 {
			t.Fatalf("compaction left %v behind", m)
		}
	}

	// Compacting an already-compact index is a no-op: same build id.
	id := after.BuildID()
	if err := Compact(dir); err != nil {
		t.Fatal(err)
	}
	again, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if again.BuildID() != id {
		t.Fatal("no-op compaction rewrote the index")
	}
}

// TestCompactUnderReadFaults injects read faults into the segment files
// while compaction is reading them: the compaction must fail cleanly
// with the read's context, leave the segment set untouched, and succeed
// once the fault clears.
func TestCompactUnderReadFaults(t *testing.T) {
	base := testCorpus(t, 14, 30, 60, 100, 7)
	extra := testCorpus(t, 9, 30, 60, 100, 9)
	opts := BuildOptions{K: 2, Seed: 17, T: 10, Parallelism: 1}
	dir := buildSegmented(t, opts, base, extra)
	if err := Delete(dir, []uint32{2}); err != nil {
		t.Fatal(err)
	}

	before, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := allLists(t, before)
	oldID := before.BuildID()
	before.Close()

	ffs := fsio.NewFaultFS(fsio.OS).SetCrash(false)
	ffs.FailReadAt(funcFileName(0), idxHeaderLen+4)
	err = compactFS(ffs, dir)
	if err == nil {
		t.Fatal("compaction read through an injected fault")
	}
	var re *ReadError
	if !errors.As(err, &re) {
		t.Fatalf("fault did not surface as a ReadError: %v", err)
	}
	mid, err := Open(dir)
	if err != nil {
		t.Fatalf("failed compaction damaged the index: %v", err)
	}
	if mid.BuildID() != oldID {
		t.Fatal("failed compaction committed anyway")
	}
	assertSameLists(t, want, allLists(t, mid))
	mid.Close()

	ffs.ClearReadFault()
	if err := compactFS(ffs, dir); err != nil {
		t.Fatal(err)
	}
	after, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer after.Close()
	if after.SegmentCount() != 1 {
		t.Fatalf("compacted index has %d segments", after.SegmentCount())
	}
	assertSameLists(t, want, allLists(t, after))
}
