package index

import (
	"ndss/internal/fsio"
	"path/filepath"
	"testing"
)

// Low-level fileWriter contract tests.

func newTestWriter(t *testing.T) *fileWriter {
	t.Helper()
	w, err := newFileWriter(fsio.OS, filepath.Join(t.TempDir(), "f.idx"), 0, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func recs(h uint64, ids ...uint32) []record {
	out := make([]record, len(ids))
	for i, id := range ids {
		out[i] = record{Hash: h, Posting: Posting{TextID: id, L: 0, C: 1, R: 2}}
	}
	return out
}

func TestWriterRejectsEmptyList(t *testing.T) {
	w := newTestWriter(t)
	defer w.abort()
	if err := w.addList(5, nil); err == nil {
		t.Fatal("empty list should be rejected")
	}
}

func TestWriterRejectsMixedHashes(t *testing.T) {
	w := newTestWriter(t)
	defer w.abort()
	mixed := append(recs(5, 1), recs(6, 2)...)
	if err := w.addList(5, mixed); err == nil {
		t.Fatal("mixed-hash list should be rejected")
	}
}

func TestWriterRejectsDuplicateHash(t *testing.T) {
	w := newTestWriter(t)
	if err := w.addList(5, recs(5, 1)); err != nil {
		t.Fatal(err)
	}
	if err := w.addList(5, recs(5, 2)); err != nil {
		t.Fatal(err) // the duplicate is detected at finish
	}
	if _, err := w.finish(); err == nil {
		t.Fatal("duplicate hash lists should fail at finish")
	}
}

func TestWriterDoubleFinish(t *testing.T) {
	w := newTestWriter(t)
	if err := w.addList(5, recs(5, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.finish(); err == nil {
		t.Fatal("second finish should fail")
	}
}

func TestWriterInvalidZoneStep(t *testing.T) {
	if _, err := newFileWriter(fsio.OS, filepath.Join(t.TempDir(), "f.idx"), 0, 0, 8); err == nil {
		t.Fatal("zone step 0 should be rejected")
	}
}

func TestWriterZoneMapThreshold(t *testing.T) {
	// Lists at exactly the cutoff get no zone map; one past it does.
	dir := t.TempDir()
	w, err := newFileWriter(fsio.OS, filepath.Join(dir, funcFileName(0)), 0, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.addList(5, recs(5, 1, 2, 3)); err != nil { // == cutoff
		t.Fatal(err)
	}
	if err := w.addList(6, recs(6, 1, 2, 3, 4)); err != nil { // > cutoff
		t.Fatal(err)
	}
	if _, err := w.finish(); err != nil {
		t.Fatal(err)
	}
	if err := writeMeta(fsio.OS, dir, Meta{K: 1, Seed: 0, T: 5}); err != nil {
		t.Fatal(err)
	}
	ff, err := openFuncFile(fsio.OS, filepath.Join(dir, funcFileName(0)), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ff.f.Close()
	for _, e := range ff.entries {
		switch e.Hash {
		case 5:
			if e.ZoneCount != 0 {
				t.Fatalf("cutoff-sized list got %d zones", e.ZoneCount)
			}
		case 6:
			if e.ZoneCount != 2 { // 4 postings / step 2
				t.Fatalf("long list got %d zones, want 2", e.ZoneCount)
			}
		}
	}
}

func TestWriterAbortRemovesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.idx")
	w, err := newFileWriter(fsio.OS, path, 0, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.addList(5, recs(5, 1)); err != nil {
		t.Fatal(err)
	}
	w.abort()
	if _, err := openFuncFile(fsio.OS, path, 0); err == nil {
		t.Fatal("aborted file should not exist or open")
	}
}
