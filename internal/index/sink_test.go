package index

import (
	"reflect"
	"testing"

	"ndss/internal/corpus"
)

// The Into read variants must (a) return the same postings as the
// plain variants, (b) append after existing dst contents, and (c)
// record exactly the same bytes/latency into the caller's sink as into
// the index-wide counters.

func buildSinkTestIndex(t *testing.T) (*Index, *corpus.Corpus) {
	t.Helper()
	c := corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts: 30, MinLength: 30, MaxLength: 80, VocabSize: 25,
		ZipfS: 1.3, Seed: 5, DupRate: 0.5, DupSnippetLen: 15, DupMutateProb: 0.05,
	})
	dir := t.TempDir()
	if _, err := Build(c, dir, BuildOptions{K: 4, Seed: 9, T: 5, ZoneMapStep: 4, LongListCutoff: 8}); err != nil {
		t.Fatal(err)
	}
	ix, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	return ix, c
}

func TestReadListIntoMatchesReadList(t *testing.T) {
	ix, _ := buildSinkTestIndex(t)
	for fn := 0; fn < ix.K(); fn++ {
		for _, h := range ix.Hashes(fn) {
			plain, err := ix.ReadList(fn, h)
			if err != nil {
				t.Fatal(err)
			}
			var sink IOStats
			before := ix.IOStats()
			got, err := ix.ReadListInto(nil, fn, h, &sink)
			if err != nil {
				t.Fatal(err)
			}
			after := ix.IOStats()
			if !reflect.DeepEqual(got, plain) {
				t.Fatalf("fn %d hash %x: Into returned different postings", fn, h)
			}
			if sink.BytesRead != after.BytesRead-before.BytesRead {
				t.Fatalf("fn %d hash %x: sink bytes %d != counter delta %d",
					fn, h, sink.BytesRead, after.BytesRead-before.BytesRead)
			}
			if sink.ReadTime != after.ReadTime-before.ReadTime {
				t.Fatalf("fn %d hash %x: sink time %v != counter delta %v",
					fn, h, sink.ReadTime, after.ReadTime-before.ReadTime)
			}
		}
	}
}

func TestReadListIntoAppends(t *testing.T) {
	ix, _ := buildSinkTestIndex(t)
	fn := 0
	hashes := ix.Hashes(fn)
	if len(hashes) < 2 {
		t.Skip("need two lists")
	}
	a, _ := ix.ReadList(fn, hashes[0])
	b, _ := ix.ReadList(fn, hashes[1])
	combined, err := ix.ReadListInto(nil, fn, hashes[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	combined, err = ix.ReadListInto(combined, fn, hashes[1], nil)
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]Posting(nil), a...), b...)
	if !reflect.DeepEqual(combined, want) {
		t.Fatalf("appended read diverged:\ngot  %v\nwant %v", combined, want)
	}
}

func TestReadListForTextIntoMatchesAndAccounts(t *testing.T) {
	ix, c := buildSinkTestIndex(t)
	for fn := 0; fn < ix.K(); fn++ {
		for _, h := range ix.Hashes(fn) {
			for id := 0; id < c.NumTexts(); id += 7 {
				plain, err := ix.ReadListForText(fn, h, uint32(id))
				if err != nil {
					t.Fatal(err)
				}
				var sink IOStats
				before := ix.IOStats()
				got, err := ix.ReadListForTextInto(nil, fn, h, uint32(id), &sink)
				if err != nil {
					t.Fatal(err)
				}
				after := ix.IOStats()
				if len(plain) != len(got) || (len(plain) > 0 && !reflect.DeepEqual(got, plain)) {
					t.Fatalf("fn %d hash %x text %d: probe differs\ngot  %v\nwant %v", fn, h, id, got, plain)
				}
				if sink.BytesRead != after.BytesRead-before.BytesRead {
					t.Fatalf("fn %d hash %x text %d: sink bytes %d != delta %d",
						fn, h, id, sink.BytesRead, after.BytesRead-before.BytesRead)
				}
			}
		}
	}
}

func TestMemIndexIntoVariantsCopy(t *testing.T) {
	c := corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts: 10, MinLength: 20, MaxLength: 40, VocabSize: 15,
		ZipfS: 1.3, Seed: 6, DupRate: 0.5, DupSnippetLen: 10, DupMutateProb: 0.05,
	})
	mem, err := BuildMem(c, BuildOptions{K: 2, Seed: 3, T: 5})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for fn := 0; fn < mem.K() && !found; fn++ {
		for h := range mem.lists[fn] {
			shared, _ := mem.ReadList(fn, h)
			if len(shared) == 0 {
				continue
			}
			got, err := mem.ReadListInto(nil, fn, h, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, shared) {
				t.Fatalf("MemIndex ReadListInto differs from ReadList")
			}
			if &got[0] == &shared[0] {
				t.Fatal("MemIndex ReadListInto aliases index storage")
			}
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no non-empty list in MemIndex")
	}
}
