package index

import (
	"fmt"
	"path/filepath"

	"ndss/internal/fsio"
)

// Crash-safe build commit protocol.
//
// Builders never write into a live index directory. A build is staged
// into a sibling temp directory ("<dir>.tmp-XXXX"), every data file is
// fsynced as it is finished, the meta and manifest are written durably,
// the staging directory itself is fsynced, and the build is then
// committed by rename:
//
//	rename(dir, dir+".old")   // when dir already exists
//	rename(staging, dir)
//	fsync(parent)
//	remove(dir+".old")
//
// A crash at any point leaves the directory in one of three states,
// all recoverable: the old index in place (build never committed), the
// old index parked at dir+".old" with dir absent (crash between the
// renames; recoverBackup restores it), or the new index in place with
// a leftover backup (crash before the final remove; recoverBackup
// deletes it). Orphaned staging directories and spill files from
// crashed builds are swept when the next build starts.

// backupSuffix names the parked previous index during a commit swap.
const backupSuffix = ".old"

// stagingPattern is the MkdirTemp pattern for build staging
// directories of dir; sweepOrphans globs the same shape.
func stagingPattern(dir string) (parent, pattern string) {
	dir = filepath.Clean(dir)
	return filepath.Dir(dir), filepath.Base(dir) + ".tmp-*"
}

// beginBuild prepares a staged build for target dir: it recovers any
// interrupted commit, optionally sweeps orphaned artifacts of crashed
// builds, and creates a fresh staging directory next to dir. The
// caller must either commitDir the staging directory or remove it.
//
// sweep must be false when a live temp workspace for dir already
// exists nearby (BuildSharded's shard workspace, Append's delta): the
// sweep matches the same naming pattern and would delete it.
func beginBuild(fsys fsio.FS, dir string, sweep bool) (staging string, err error) {
	parent, pattern := stagingPattern(dir)
	if err := fsys.MkdirAll(parent, 0o755); err != nil {
		return "", fmt.Errorf("index: create parent dir: %w", err)
	}
	if err := recoverBackup(fsys, dir); err != nil {
		return "", err
	}
	if sweep {
		if err := sweepOrphans(fsys, dir); err != nil {
			return "", err
		}
	}
	staging, err = fsys.MkdirTemp(parent, pattern)
	if err != nil {
		return "", fmt.Errorf("index: create staging dir: %w", err)
	}
	return staging, nil
}

// sweepOrphans removes build artifacts a crashed prior run may have
// left behind: staging directories next to dir, and spill files of the
// pre-staging external builder inside dir.
func sweepOrphans(fsys fsio.FS, dir string) error {
	parent, pattern := stagingPattern(dir)
	stale, err := fsys.Glob(filepath.Join(parent, pattern))
	if err != nil {
		return err
	}
	for _, s := range stale {
		if err := fsys.RemoveAll(s); err != nil {
			return fmt.Errorf("index: sweep stale staging %s: %w", s, err)
		}
	}
	spills, err := fsys.Glob(filepath.Join(dir, "spill-*"))
	if err != nil {
		return err
	}
	for _, s := range spills {
		if err := fsys.Remove(s); err != nil {
			return fmt.Errorf("index: sweep stale spill %s: %w", s, err)
		}
	}
	return nil
}

// sweepSegments removes segment-lifecycle artifacts inside dir that the
// manifest does not reference: segment directories left by a crash
// between segment commit and manifest commit (including their staging
// and backup leftovers), interrupted manifest/meta replacements, and
// retired tombstone bitmaps. Everything the manifest names is kept, so
// the sweep is safe at any point a mutation is not in flight.
func sweepSegments(fsys fsio.FS, dir string, m *Manifest) error {
	ref := make(map[string]bool, 2*len(m.Segments))
	for _, s := range m.Segments {
		if s.Name != "" {
			ref[s.Name] = true
		}
		if s.Tomb != nil {
			ref[s.Tomb.Name] = true
		}
	}
	for _, pattern := range []string{"seg-*", "tomb-*", manifestTmpPattern, metaFileName + ".tmp-*"} {
		stale, err := fsys.Glob(filepath.Join(dir, pattern))
		if err != nil {
			return err
		}
		for _, s := range stale {
			if ref[filepath.Base(s)] {
				continue
			}
			if err := fsys.RemoveAll(s); err != nil {
				return fmt.Errorf("index: sweep stale segment artifact %s: %w", s, err)
			}
		}
	}
	return nil
}

// recoverBackup resolves a leftover "<dir>.old" from an interrupted
// commit swap. If dir is absent the backup is the only surviving
// index and is restored; if dir exists the commit completed and the
// backup is deleted (best-effort — a stale backup must never shadow
// or block the committed index).
func recoverBackup(fsys fsio.FS, dir string) error {
	backup := dir + backupSuffix
	if _, err := fsys.Stat(backup); err != nil {
		if fsio.NotExist(err) {
			return nil
		}
		return err
	}
	if _, err := fsys.Stat(dir); err == nil {
		// Commit completed before the crash; drop the parked old index.
		fsys.RemoveAll(backup)
		return nil
	}
	if err := fsys.Rename(backup, dir); err != nil {
		return fmt.Errorf("index: restore interrupted-commit backup %s: %w", backup, err)
	}
	return fsys.SyncDir(filepath.Dir(dir))
}

// commitDir atomically publishes a fully written staging directory as
// dir. Data files must already be fsynced (fileWriter.finish and
// fsio.WriteFileSync guarantee this); commitDir fsyncs the staging
// directory, swaps it in by rename, and fsyncs the parent so the swap
// is durable. On failure the previous index is left (or put back) in
// place.
func commitDir(fsys fsio.FS, staging, dir string) error {
	if err := fsys.SyncDir(staging); err != nil {
		return fmt.Errorf("index: sync staging dir: %w", err)
	}
	parent := filepath.Dir(filepath.Clean(dir))
	backup := dir + backupSuffix
	if _, err := fsys.Stat(dir); err == nil {
		if err := fsys.Rename(dir, backup); err != nil {
			return fmt.Errorf("index: park previous index: %w", err)
		}
		if err := fsys.Rename(staging, dir); err != nil {
			// Put the previous index back; if even that fails the
			// backup remains and recoverBackup restores it next time.
			fsys.Rename(backup, dir)
			return fmt.Errorf("index: commit rename: %w", err)
		}
		if err := fsys.SyncDir(parent); err != nil {
			return fmt.Errorf("index: sync parent dir: %w", err)
		}
		// The new index is durable; the backup is now garbage. Removal
		// is best-effort — recoverBackup clears a leftover on the next
		// open or build.
		fsys.RemoveAll(backup)
		return nil
	} else if !fsio.NotExist(err) {
		return err
	}
	if err := fsys.Rename(staging, dir); err != nil {
		return fmt.Errorf("index: commit rename: %w", err)
	}
	if err := fsys.SyncDir(parent); err != nil {
		return fmt.Errorf("index: sync parent dir: %w", err)
	}
	return nil
}

// discardStaging removes a staging directory after a failed build,
// best-effort: on an injected crash the removal itself fails, and the
// orphan is swept by the next build instead.
func discardStaging(fsys fsio.FS, staging string) {
	if staging != "" {
		fsys.RemoveAll(staging)
	}
}
