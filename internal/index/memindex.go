package index

import (
	"sort"

	"ndss/internal/corpus"
	"ndss/internal/hash"
	"ndss/internal/window"
)

// MemIndex is a fully in-memory inverted index of compact windows with
// the same read surface as the on-disk Index. It suits small corpora,
// tests, and ephemeral workloads where index persistence is not wanted;
// queries skip all file I/O (IOStats always reads zero).
type MemIndex struct {
	meta   Meta
	family *hash.Family
	// lists[fn] maps min-hash -> postings sorted by text id.
	lists []map[uint64][]Posting
}

// BuildMem builds an in-memory index over a corpus. ZoneMapStep and
// LongListCutoff in opts are ignored (there is nothing to probe around).
func BuildMem(c *corpus.Corpus, opts BuildOptions) (*MemIndex, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	fam, err := hash.NewFamily(opts.K, opts.Seed)
	if err != nil {
		return nil, err
	}
	m := &MemIndex{
		meta: Meta{
			K:              opts.K,
			Seed:           opts.Seed,
			T:              opts.T,
			NumTexts:       c.NumTexts(),
			TotalTokens:    c.TotalTokens(),
			ZoneMapStep:    opts.ZoneMapStep,
			LongListCutoff: opts.LongListCutoff,
		},
		family: fam,
		lists:  make([]map[uint64][]Posting, opts.K),
	}
	var vals []uint64
	var ws []window.Window
	for fn := 0; fn < opts.K; fn++ {
		lists := make(map[uint64][]Posting)
		f := fam.Func(fn)
		for id := 0; id < c.NumTexts(); id++ {
			tokens := c.Text(uint32(id))
			if len(tokens) < opts.T {
				continue
			}
			vals = window.Hashes(tokens, f, vals)
			ws = window.GenerateLinear(vals, opts.T, ws[:0])
			for _, w := range ws {
				h := vals[w.C]
				lists[h] = append(lists[h], Posting{
					TextID: uint32(id), L: uint32(w.L), C: uint32(w.C), R: uint32(w.R),
				})
			}
		}
		// Texts are visited in id order, so lists are already sorted by
		// text id; L order within a text follows generation order, which
		// is fine for the reader contract (sorted by TextID).
		m.lists[fn] = lists
	}
	return m, nil
}

// K returns the number of hash functions.
func (m *MemIndex) K() int { return m.meta.K }

// Meta returns the index metadata.
func (m *MemIndex) Meta() Meta { return m.meta }

// Family returns the hash family queries must sketch with.
func (m *MemIndex) Family() *hash.Family { return m.family }

// ListLength returns the posting count for hash h of function fn.
func (m *MemIndex) ListLength(fn int, h uint64) int { return len(m.lists[fn][h]) }

// HasZoneMap always reports true: MemIndex per-text probes are binary
// searches over the id-sorted in-memory list, so deferral never pays
// the full-read-per-candidate penalty a zone-map-less on-disk list does.
func (m *MemIndex) HasZoneMap(fn int, h uint64) bool { return true }

// ListLengths returns all list lengths of function fn, unordered.
func (m *MemIndex) ListLengths(fn int) []int {
	out := make([]int, 0, len(m.lists[fn]))
	for _, ps := range m.lists[fn] {
		out = append(out, len(ps))
	}
	return out
}

// ReadList returns the postings for hash h of function fn. The slice is
// shared with the index and must not be mutated.
func (m *MemIndex) ReadList(fn int, h uint64) ([]Posting, error) {
	return m.lists[fn][h], nil
}

// ReadListInto appends the postings for hash h of function fn to dst.
// Unlike ReadList, the result never aliases index storage, so callers
// may reuse dst as a scratch buffer across reads. A MemIndex performs
// no I/O, so sink is left untouched.
func (m *MemIndex) ReadListInto(dst []Posting, fn int, h uint64, _ *IOStats) ([]Posting, error) {
	return append(dst, m.lists[fn][h]...), nil
}

// ReadListForText returns only textID's postings within the list for
// hash h of function fn, using binary search over the id-sorted list.
func (m *MemIndex) ReadListForText(fn int, h uint64, textID uint32) ([]Posting, error) {
	ps := m.lists[fn][h]
	lo := sort.Search(len(ps), func(i int) bool { return ps[i].TextID >= textID })
	hi := lo
	for hi < len(ps) && ps[hi].TextID == textID {
		hi++
	}
	if lo == hi {
		return nil, nil
	}
	return ps[lo:hi], nil
}

// ReadListForTextInto is ReadListForText appending into dst, with the
// same no-alias contract as ReadListInto. sink is left untouched (no
// I/O happens).
func (m *MemIndex) ReadListForTextInto(dst []Posting, fn int, h uint64, textID uint32, _ *IOStats) ([]Posting, error) {
	ps, err := m.ReadListForText(fn, h, textID)
	if err != nil {
		return dst, err
	}
	return append(dst, ps...), nil
}

// IOStats reports zeroes: a MemIndex performs no I/O.
func (m *MemIndex) IOStats() IOStats { return IOStats{} }

// TotalPostings returns the total number of indexed compact windows.
func (m *MemIndex) TotalPostings() int64 {
	var n int64
	for _, lists := range m.lists {
		for _, ps := range lists {
			n += int64(len(ps))
		}
	}
	return n
}
