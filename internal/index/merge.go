package index

import (
	"fmt"
	"path/filepath"
	"sync"

	"ndss/internal/corpus"
	"ndss/internal/fsio"
)

// MergeShards merges index directories built over consecutive corpus
// shards into one index at outDir. offsets[i] is added to every text id
// of shard i, and shards must cover ascending, disjoint id ranges (the
// natural outcome of splitting a corpus into consecutive chunks), so
// merged lists stay sorted by text id. All shards must share K, Seed
// and T. Zone maps are regenerated for the merged lists.
//
// Like the builders, the merge is staged and committed atomically: a
// failed merge leaves any previous index at outDir untouched.
//
// This realizes the paper's parallel-build strategy — per-worker
// private index state merged and flushed at the end — at directory
// granularity.
func MergeShards(shardDirs []string, offsets []uint32, outDir string) error {
	return mergeShardsFS(fsio.OS, shardDirs, offsets, outDir)
}

func mergeShardsFS(fsys fsio.FS, shardDirs []string, offsets []uint32, outDir string) error {
	if len(shardDirs) == 0 {
		return fmt.Errorf("index: no shards to merge")
	}
	if len(offsets) != len(shardDirs) {
		return fmt.Errorf("index: %d offsets for %d shards", len(offsets), len(shardDirs))
	}
	shards := make([]*Index, len(shardDirs))
	for i, dir := range shardDirs {
		ix, err := OpenFS(fsys, dir)
		if err != nil {
			return fmt.Errorf("index: open shard %d: %w", i, err)
		}
		defer ix.Close()
		shards[i] = ix
	}
	base := shards[0].Meta()
	merged := Meta{
		K: base.K, Seed: base.Seed, T: base.T,
		ZoneMapStep: base.ZoneMapStep, LongListCutoff: base.LongListCutoff,
	}
	for i, sh := range shards {
		m := sh.Meta()
		if m.K != base.K || m.Seed != base.Seed || m.T != base.T {
			return fmt.Errorf("index: shard %d parameters (k=%d seed=%d t=%d) differ from shard 0 (k=%d seed=%d t=%d)",
				i, m.K, m.Seed, m.T, base.K, base.Seed, base.T)
		}
		merged.NumTexts += m.NumTexts
		merged.TotalTokens += m.TotalTokens
	}
	staging, err := beginBuild(fsys, outDir, false)
	if err != nil {
		return err
	}
	committed := false
	defer func() {
		if !committed {
			discardStaging(fsys, staging)
		}
	}()

	sums := make([]fileSum, base.K)
	for fn := 0; fn < base.K; fn++ {
		sum, err := mergeFunc(fsys, shards, offsets, staging, fn, merged)
		if err != nil {
			return err
		}
		sums[fn] = sum
	}
	if err := finishBuild(fsys, staging, outDir, merged, sums); err != nil {
		return err
	}
	committed = true
	return nil
}

// mergeFunc k-way merges one hash function's lists across shards.
func mergeFunc(fsys fsio.FS, shards []*Index, offsets []uint32, outDir string, fn int, meta Meta) (fileSum, error) {
	w, err := newFileWriter(fsys, filepath.Join(outDir, funcFileName(fn)), fn, meta.ZoneMapStep, meta.LongListCutoff)
	if err != nil {
		return fileSum{}, err
	}
	hashes := make([][]uint64, len(shards))
	cursor := make([]int, len(shards))
	for i, sh := range shards {
		hashes[i] = sh.Hashes(fn)
	}
	var recs []record
	for {
		// Find the smallest pending hash across shards.
		var cur uint64
		found := false
		for i := range shards {
			if cursor[i] >= len(hashes[i]) {
				continue
			}
			if h := hashes[i][cursor[i]]; !found || h < cur {
				cur, found = h, true
			}
		}
		if !found {
			break
		}
		// Collect postings for this hash from every shard holding it, in
		// shard order (ascending text-id ranges keep the list sorted).
		recs = recs[:0]
		for i, sh := range shards {
			if cursor[i] >= len(hashes[i]) || hashes[i][cursor[i]] != cur {
				continue
			}
			cursor[i]++
			ps, err := sh.ReadList(fn, cur)
			if err != nil {
				w.abort()
				return fileSum{}, err
			}
			for _, p := range ps {
				p.TextID += offsets[i]
				recs = append(recs, record{Hash: cur, Posting: p})
			}
		}
		if err := w.addList(cur, recs); err != nil {
			w.abort()
			return fileSum{}, err
		}
	}
	return w.finish()
}

// Append extends an existing index at dir with new texts: it builds a
// delta index over the new texts (ids continue after the existing
// corpus) and merges base + delta into a fresh directory, which then
// atomically replaces dir. The result is identical to rebuilding over
// the concatenated corpus.
//
// The merged output is fully fsynced before the swap, the swap itself
// is the same backed-up rename dance as the builders' commit, and a
// leftover "<dir>.old" backup from an interrupted prior swap is
// recovered (restored or deleted) before the append starts.
func Append(dir string, newTexts *corpus.Corpus) error {
	return appendFS(fsio.OS, dir, newTexts)
}

func appendFS(fsys fsio.FS, dir string, newTexts *corpus.Corpus) error {
	if err := recoverBackup(fsys, dir); err != nil {
		return err
	}
	// Sweep here, before our own delta/merge workspaces exist; the
	// nested Build and merge below must not sweep (their pattern
	// matches our live workspaces).
	if err := sweepOrphans(fsys, dir); err != nil {
		return err
	}
	meta, err := loadMeta(fsys, dir)
	if err != nil {
		return err
	}
	parent, pattern := stagingPattern(dir)
	deltaDir, err := fsys.MkdirTemp(parent, pattern)
	if err != nil {
		return err
	}
	defer fsys.RemoveAll(deltaDir)
	opts := BuildOptions{
		K: meta.K, Seed: meta.Seed, T: meta.T,
		ZoneMapStep: meta.ZoneMapStep, LongListCutoff: meta.LongListCutoff,
		FS: fsys,
	}
	if _, err := Build(newTexts, deltaDir, opts); err != nil {
		return err
	}
	outDir, err := fsys.MkdirTemp(parent, pattern)
	if err != nil {
		return err
	}
	defer fsys.RemoveAll(outDir)
	// mergeShardsFS commits the merged index into outDir durably
	// (data files, manifest and directory all fsynced) before the
	// final swap below touches dir.
	if err := mergeShardsFS(fsys, []string{dir, deltaDir}, []uint32{0, uint32(meta.NumTexts)}, outDir); err != nil {
		return err
	}
	// Swap the merged index into place.
	backup := dir + backupSuffix
	if err := fsys.Rename(dir, backup); err != nil {
		return err
	}
	if err := fsys.Rename(outDir, dir); err != nil {
		fsys.Rename(backup, dir) // best-effort restore
		return err
	}
	if err := fsys.SyncDir(parent); err != nil {
		return err
	}
	fsys.RemoveAll(backup) // best-effort; recoverBackup clears leftovers
	return nil
}

// BuildSharded splits an in-memory corpus into numShards consecutive
// chunks, builds a shard index for each concurrently, and merges them
// into dir with the same atomic-commit protocol as Build. The result
// is identical to Build over the whole corpus.
func BuildSharded(c *corpus.Corpus, dir string, opts BuildOptions, numShards int) error {
	if numShards < 1 {
		numShards = 1
	}
	if numShards > c.NumTexts() && c.NumTexts() > 0 {
		numShards = c.NumTexts()
	}
	if err := opts.setDefaults(); err != nil {
		return err
	}
	fsys := opts.fsys()
	parent, pattern := stagingPattern(dir)
	if err := fsys.MkdirAll(parent, 0o755); err != nil {
		return err
	}
	if err := recoverBackup(fsys, dir); err != nil {
		return err
	}
	// Sweep before creating the shard workspace; the final merge passes
	// sweep=false since the workspace matches the orphan pattern.
	if err := sweepOrphans(fsys, dir); err != nil {
		return err
	}
	// Shard workspaces are siblings of dir so a crash leaves them as
	// sweepable orphans, and the final merge commits into dir
	// atomically.
	tmp, err := fsys.MkdirTemp(parent, pattern)
	if err != nil {
		return err
	}
	defer fsys.RemoveAll(tmp)

	chunk := (c.NumTexts() + numShards - 1) / numShards
	var (
		shardDirs []string
		offsets   []uint32
	)
	type job struct {
		dir   string
		start int
		end   int
	}
	var jobs []job
	for s := 0; s < numShards; s++ {
		start := s * chunk
		end := start + chunk
		if end > c.NumTexts() {
			end = c.NumTexts()
		}
		if start >= end {
			break
		}
		sd := filepath.Join(tmp, fmt.Sprintf("shard-%03d", s))
		shardDirs = append(shardDirs, sd)
		offsets = append(offsets, uint32(start))
		jobs = append(jobs, job{dir: sd, start: start, end: end})
	}
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			sub := corpus.New(nil)
			for id := j.start; id < j.end; id++ {
				sub.Append(c.Text(uint32(id)))
			}
			shardOpts := opts
			shardOpts.Parallelism = 1 // shards are the parallelism unit
			_, errs[i] = Build(sub, j.dir, shardOpts)
		}(i, j)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("index: build shard %d: %w", i, err)
		}
	}
	return mergeShardsFS(fsys, shardDirs, offsets, dir)
}
