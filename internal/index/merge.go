package index

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"ndss/internal/corpus"
)

// MergeShards merges index directories built over consecutive corpus
// shards into one index at outDir. offsets[i] is added to every text id
// of shard i, and shards must cover ascending, disjoint id ranges (the
// natural outcome of splitting a corpus into consecutive chunks), so
// merged lists stay sorted by text id. All shards must share K, Seed
// and T. Zone maps are regenerated for the merged lists.
//
// This realizes the paper's parallel-build strategy — per-worker
// private index state merged and flushed at the end — at directory
// granularity.
func MergeShards(shardDirs []string, offsets []uint32, outDir string) error {
	if len(shardDirs) == 0 {
		return fmt.Errorf("index: no shards to merge")
	}
	if len(offsets) != len(shardDirs) {
		return fmt.Errorf("index: %d offsets for %d shards", len(offsets), len(shardDirs))
	}
	shards := make([]*Index, len(shardDirs))
	for i, dir := range shardDirs {
		ix, err := Open(dir)
		if err != nil {
			return fmt.Errorf("index: open shard %d: %w", i, err)
		}
		defer ix.Close()
		shards[i] = ix
	}
	base := shards[0].Meta()
	merged := Meta{
		K: base.K, Seed: base.Seed, T: base.T,
		ZoneMapStep: base.ZoneMapStep, LongListCutoff: base.LongListCutoff,
	}
	for i, sh := range shards {
		m := sh.Meta()
		if m.K != base.K || m.Seed != base.Seed || m.T != base.T {
			return fmt.Errorf("index: shard %d parameters (k=%d seed=%d t=%d) differ from shard 0 (k=%d seed=%d t=%d)",
				i, m.K, m.Seed, m.T, base.K, base.Seed, base.T)
		}
		merged.NumTexts += m.NumTexts
		merged.TotalTokens += m.TotalTokens
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}

	for fn := 0; fn < base.K; fn++ {
		if err := mergeFunc(shards, offsets, outDir, fn, merged); err != nil {
			return err
		}
	}
	return writeMeta(outDir, merged)
}

// mergeFunc k-way merges one hash function's lists across shards.
func mergeFunc(shards []*Index, offsets []uint32, outDir string, fn int, meta Meta) error {
	w, err := newFileWriter(filepath.Join(outDir, funcFileName(fn)), fn, meta.ZoneMapStep, meta.LongListCutoff)
	if err != nil {
		return err
	}
	hashes := make([][]uint64, len(shards))
	cursor := make([]int, len(shards))
	for i, sh := range shards {
		hashes[i] = sh.Hashes(fn)
	}
	var recs []record
	for {
		// Find the smallest pending hash across shards.
		var cur uint64
		found := false
		for i := range shards {
			if cursor[i] >= len(hashes[i]) {
				continue
			}
			if h := hashes[i][cursor[i]]; !found || h < cur {
				cur, found = h, true
			}
		}
		if !found {
			break
		}
		// Collect postings for this hash from every shard holding it, in
		// shard order (ascending text-id ranges keep the list sorted).
		recs = recs[:0]
		for i, sh := range shards {
			if cursor[i] >= len(hashes[i]) || hashes[i][cursor[i]] != cur {
				continue
			}
			cursor[i]++
			ps, err := sh.ReadList(fn, cur)
			if err != nil {
				w.abort()
				return err
			}
			for _, p := range ps {
				p.TextID += offsets[i]
				recs = append(recs, record{Hash: cur, Posting: p})
			}
		}
		if err := w.addList(cur, recs); err != nil {
			w.abort()
			return err
		}
	}
	if _, err := w.finish(); err != nil {
		return err
	}
	return nil
}

// Append extends an existing index at dir with new texts: it builds a
// delta index over the new texts (ids continue after the existing
// corpus) and merges base + delta into a fresh directory, which then
// atomically replaces dir. The result is identical to rebuilding over
// the concatenated corpus.
func Append(dir string, newTexts *corpus.Corpus) error {
	meta, err := readMeta(dir)
	if err != nil {
		return err
	}
	parent := filepath.Dir(dir)
	deltaDir, err := os.MkdirTemp(parent, "ndss-delta-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(deltaDir)
	opts := BuildOptions{
		K: meta.K, Seed: meta.Seed, T: meta.T,
		ZoneMapStep: meta.ZoneMapStep, LongListCutoff: meta.LongListCutoff,
	}
	if _, err := Build(newTexts, deltaDir, opts); err != nil {
		return err
	}
	outDir, err := os.MkdirTemp(parent, "ndss-merged-*")
	if err != nil {
		return err
	}
	if err := MergeShards([]string{dir, deltaDir}, []uint32{0, uint32(meta.NumTexts)}, outDir); err != nil {
		os.RemoveAll(outDir)
		return err
	}
	// Swap the merged index into place.
	backup := dir + ".old"
	if err := os.Rename(dir, backup); err != nil {
		os.RemoveAll(outDir)
		return err
	}
	if err := os.Rename(outDir, dir); err != nil {
		os.Rename(backup, dir) // best-effort restore
		os.RemoveAll(outDir)
		return err
	}
	return os.RemoveAll(backup)
}

// BuildSharded splits an in-memory corpus into numShards consecutive
// chunks, builds a shard index for each concurrently, and merges them
// into dir. The result is identical to Build over the whole corpus.
func BuildSharded(c *corpus.Corpus, dir string, opts BuildOptions, numShards int) error {
	if numShards < 1 {
		numShards = 1
	}
	if numShards > c.NumTexts() && c.NumTexts() > 0 {
		numShards = c.NumTexts()
	}
	if err := opts.setDefaults(); err != nil {
		return err
	}
	tmp, err := os.MkdirTemp(dir, "shards-*")
	if err != nil {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		tmp, err = os.MkdirTemp(dir, "shards-*")
		if err != nil {
			return err
		}
	}
	defer os.RemoveAll(tmp)

	chunk := (c.NumTexts() + numShards - 1) / numShards
	var (
		shardDirs []string
		offsets   []uint32
	)
	type job struct {
		dir   string
		start int
		end   int
	}
	var jobs []job
	for s := 0; s < numShards; s++ {
		start := s * chunk
		end := start + chunk
		if end > c.NumTexts() {
			end = c.NumTexts()
		}
		if start >= end {
			break
		}
		sd := filepath.Join(tmp, fmt.Sprintf("shard-%03d", s))
		if err := os.MkdirAll(sd, 0o755); err != nil {
			return err
		}
		shardDirs = append(shardDirs, sd)
		offsets = append(offsets, uint32(start))
		jobs = append(jobs, job{dir: sd, start: start, end: end})
	}
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			sub := corpus.New(nil)
			for id := j.start; id < j.end; id++ {
				sub.Append(c.Text(uint32(id)))
			}
			shardOpts := opts
			shardOpts.Parallelism = 1 // shards are the parallelism unit
			_, errs[i] = Build(sub, j.dir, shardOpts)
		}(i, j)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("index: build shard %d: %w", i, err)
		}
	}
	return MergeShards(shardDirs, offsets, dir)
}
