package index

import (
	"fmt"
	"math"
	"path/filepath"
	"sync"

	"ndss/internal/corpus"
	"ndss/internal/fsio"
)

// MergeShards merges index directories built over consecutive corpus
// shards into one index at outDir. offsets[i] is added to every text id
// of shard i, and shards must cover ascending, disjoint id ranges (the
// natural outcome of splitting a corpus into consecutive chunks), so
// merged lists stay sorted by text id. All shards must share K, Seed
// and T. Zone maps are regenerated for the merged lists.
//
// Like the builders, the merge is staged and committed atomically: a
// failed merge leaves any previous index at outDir untouched.
//
// This realizes the paper's parallel-build strategy — per-worker
// private index state merged and flushed at the end — at directory
// granularity.
func MergeShards(shardDirs []string, offsets []uint32, outDir string) error {
	return mergeShardsFS(fsio.OS, shardDirs, offsets, outDir)
}

func mergeShardsFS(fsys fsio.FS, shardDirs []string, offsets []uint32, outDir string) error {
	if len(shardDirs) == 0 {
		return fmt.Errorf("index: no shards to merge")
	}
	if len(offsets) != len(shardDirs) {
		return fmt.Errorf("index: %d offsets for %d shards", len(offsets), len(shardDirs))
	}
	shards := make([]*Index, len(shardDirs))
	for i, dir := range shardDirs {
		ix, err := OpenFS(fsys, dir)
		if err != nil {
			return fmt.Errorf("index: open shard %d: %w", i, err)
		}
		defer ix.Close()
		shards[i] = ix
	}
	base := shards[0].Meta()
	merged := Meta{
		K: base.K, Seed: base.Seed, T: base.T,
		ZoneMapStep: base.ZoneMapStep, LongListCutoff: base.LongListCutoff,
	}
	for i, sh := range shards {
		m := sh.Meta()
		if m.K != base.K || m.Seed != base.Seed || m.T != base.T {
			return fmt.Errorf("index: shard %d parameters (k=%d seed=%d t=%d) differ from shard 0 (k=%d seed=%d t=%d)",
				i, m.K, m.Seed, m.T, base.K, base.Seed, base.T)
		}
		merged.NumTexts += m.NumTexts
		merged.TotalTokens += m.TotalTokens
	}
	staging, err := beginBuild(fsys, outDir, false)
	if err != nil {
		return err
	}
	committed := false
	defer func() {
		if !committed {
			discardStaging(fsys, staging)
		}
	}()

	sums := make([]fileSum, base.K)
	for fn := 0; fn < base.K; fn++ {
		sum, err := mergeFunc(fsys, shards, offsets, staging, fn, merged)
		if err != nil {
			return err
		}
		sums[fn] = sum
	}
	if err := finishBuild(fsys, staging, outDir, merged, sums); err != nil {
		return err
	}
	committed = true
	return nil
}

// mergeFunc k-way merges one hash function's lists across shards.
func mergeFunc(fsys fsio.FS, shards []*Index, offsets []uint32, outDir string, fn int, meta Meta) (fileSum, error) {
	w, err := newFileWriter(fsys, filepath.Join(outDir, funcFileName(fn)), fn, meta.ZoneMapStep, meta.LongListCutoff)
	if err != nil {
		return fileSum{}, err
	}
	hashes := make([][]uint64, len(shards))
	cursor := make([]int, len(shards))
	for i, sh := range shards {
		hashes[i] = sh.Hashes(fn)
	}
	var recs []record
	for {
		// Find the smallest pending hash across shards.
		var cur uint64
		found := false
		for i := range shards {
			if cursor[i] >= len(hashes[i]) {
				continue
			}
			if h := hashes[i][cursor[i]]; !found || h < cur {
				cur, found = h, true
			}
		}
		if !found {
			break
		}
		// Collect postings for this hash from every shard holding it, in
		// shard order (ascending text-id ranges keep the list sorted).
		recs = recs[:0]
		for i, sh := range shards {
			if cursor[i] >= len(hashes[i]) || hashes[i][cursor[i]] != cur {
				continue
			}
			cursor[i]++
			ps, err := sh.ReadList(fn, cur)
			if err != nil {
				w.abort()
				return fileSum{}, err
			}
			for _, p := range ps {
				p.TextID += offsets[i]
				recs = append(recs, record{Hash: cur, Posting: p})
			}
		}
		// Every posting of this hash may be tombstoned (compaction
		// filters deleted texts out through ReadList); a list with no
		// survivors is simply not written.
		if len(recs) == 0 {
			continue
		}
		if err := w.addList(cur, recs); err != nil {
			w.abort()
			return fileSum{}, err
		}
	}
	return w.finish()
}

// loadOrSynthesizeManifest returns the directory's manifest, upgrading
// a pre-manifest (bare index.meta) index on the fly: the legacy files
// are opened once to recover their sizes and trailer checksums, and
// described as a single root segment. The synthesized manifest exists
// only in memory until the caller commits it.
func loadOrSynthesizeManifest(fsys fsio.FS, dir string) (*Manifest, error) {
	man, err := readManifest(fsys, dir)
	if err == nil {
		return man, nil
	}
	if !fsio.NotExist(err) {
		return nil, err
	}
	ix, err := OpenFS(fsys, dir)
	if err != nil {
		return nil, err
	}
	defer ix.Close()
	meta := ix.Meta()
	seg := ManifestSegment{Name: "", Meta: meta}
	for i, ff := range ix.segs[0].files {
		seg.Files = append(seg.Files, ManifestFile{
			Name: funcFileName(i), Size: ff.size, DirCRC: ff.dirCRC, RegionCRC: ff.regionCRC,
		})
	}
	return &Manifest{
		FormatVersion: manifestFormatVersion,
		Meta:          meta,
		Segments:      []ManifestSegment{seg},
	}, nil
}

// Append extends an existing index at dir with new texts (ids continue
// after the existing corpus) by building one new immutable segment in a
// subdirectory and atomically committing a manifest that names it —
// the existing segments are not rewritten or even read. Search results
// are identical to rebuilding over the concatenated corpus.
//
// The new segment is staged and fsynced by the ordinary build commit
// before the manifest rename publishes it, so a crash at any point
// leaves the old segment set or the new one, never a mix; a segment
// directory the manifest never came to name is swept by the next
// mutation. Pre-manifest indexes are upgraded in place: their files
// become the root segment of the committed manifest.
func Append(dir string, newTexts *corpus.Corpus) (buildID string, err error) {
	return appendFS(fsio.OS, dir, newTexts)
}

func appendFS(fsys fsio.FS, dir string, newTexts *corpus.Corpus) (string, error) {
	if err := recoverBackup(fsys, dir); err != nil {
		return "", err
	}
	man, err := loadOrSynthesizeManifest(fsys, dir)
	if err != nil {
		return "", err
	}
	// Sweep leftovers of crashed prior mutations before our own
	// workspaces exist; the nested Build below must not re-sweep dir's
	// siblings (its own staging sweep is scoped to the segment name).
	if err := sweepOrphans(fsys, dir); err != nil {
		return "", err
	}
	if err := sweepSegments(fsys, dir, man); err != nil {
		return "", err
	}
	meta := man.Meta
	if int64(meta.NumTexts)+int64(newTexts.NumTexts()) > math.MaxUint32 {
		return "", fmt.Errorf("index: append of %d texts would exceed the %d-text id space",
			newTexts.NumTexts(), uint32(math.MaxUint32))
	}
	segName := nextSegmentName(man)
	segDir := filepath.Join(dir, segName)
	opts := BuildOptions{
		K: meta.K, Seed: meta.Seed, T: meta.T,
		ZoneMapStep: meta.ZoneMapStep, LongListCutoff: meta.LongListCutoff,
		FS: fsys,
	}
	// Build commits the segment directory durably (staged inside dir,
	// fsynced, renamed into place) before the manifest below names it.
	if _, err := Build(newTexts, segDir, opts); err != nil {
		return "", err
	}
	seg, err := readManifest(fsys, segDir)
	if err != nil {
		return "", err
	}
	man.Segments = append(man.Segments, ManifestSegment{
		Name:  segName,
		Meta:  seg.Meta,
		Files: seg.Segments[0].Files,
	})
	if err := commitManifest(fsys, dir, man); err != nil {
		return "", err
	}
	// Report the committed build id: once the manifest is durable the
	// texts are part of the index whether or not the caller manages to
	// swap a reloaded backend in, and retry decisions (a blind re-append
	// would duplicate the texts) need the id of the committed build.
	return man.BuildID, nil
}

// Compact merges the index's segment set back into a single root
// segment, dropping tombstoned postings for good. Search results are
// byte-identical before and after: text ids are preserved (the id space
// keeps counting deleted texts — ids are never reused), and per-hash
// lists end up in the same global order the multi-segment reader
// produced. The merged index is staged and swapped in with the same
// atomic commit protocol as a fresh build, so a crash leaves the old
// segment set or the new single segment. An already-compact index (one
// segment, no tombstones) is a no-op.
func Compact(dir string) error {
	return compactFS(fsio.OS, dir)
}

func compactFS(fsys fsio.FS, dir string) error {
	if err := recoverBackup(fsys, dir); err != nil {
		return err
	}
	ix, err := OpenFS(fsys, dir)
	if err != nil {
		return err
	}
	defer ix.Close()
	if len(ix.segs) == 1 && ix.segs[0].tomb == nil && ix.manifest != nil {
		return nil
	}
	// Each segment is read as a synthetic single-segment shard based at
	// id 0 (its own tombstones still applied), and the shard-merge
	// offsets restore the global ids — so compaction is exactly the
	// shard merge the parallel builder uses, minus the dead postings.
	shards := make([]*Index, len(ix.segs))
	offsets := make([]uint32, len(ix.segs))
	for i, seg := range ix.segs {
		local := *seg
		local.base = 0
		shards[i] = &Index{meta: seg.meta, family: ix.family, segs: []*segment{&local}}
		offsets[i] = seg.base
	}
	merged := ix.meta // aggregate NumTexts/TotalTokens: the id-space width is preserved
	merged.ZoneMapStep = ix.segs[0].meta.ZoneMapStep
	merged.LongListCutoff = ix.segs[0].meta.LongListCutoff
	staging, err := beginBuild(fsys, dir, false)
	if err != nil {
		return err
	}
	committed := false
	defer func() {
		if !committed {
			discardStaging(fsys, staging)
		}
	}()
	sums := make([]fileSum, merged.K)
	for fn := 0; fn < merged.K; fn++ {
		sum, err := mergeFunc(fsys, shards, offsets, staging, fn, merged)
		if err != nil {
			return err
		}
		sums[fn] = sum
	}
	if err := finishBuild(fsys, staging, dir, merged, sums); err != nil {
		return err
	}
	committed = true
	return nil
}

// BuildSharded splits an in-memory corpus into numShards consecutive
// chunks, builds a shard index for each concurrently, and merges them
// into dir with the same atomic-commit protocol as Build. The result
// is identical to Build over the whole corpus.
func BuildSharded(c *corpus.Corpus, dir string, opts BuildOptions, numShards int) error {
	if numShards < 1 {
		numShards = 1
	}
	if numShards > c.NumTexts() && c.NumTexts() > 0 {
		numShards = c.NumTexts()
	}
	if err := opts.setDefaults(); err != nil {
		return err
	}
	fsys := opts.fsys()
	parent, pattern := stagingPattern(dir)
	if err := fsys.MkdirAll(parent, 0o755); err != nil {
		return err
	}
	if err := recoverBackup(fsys, dir); err != nil {
		return err
	}
	// Sweep before creating the shard workspace; the final merge passes
	// sweep=false since the workspace matches the orphan pattern.
	if err := sweepOrphans(fsys, dir); err != nil {
		return err
	}
	// Shard workspaces are siblings of dir so a crash leaves them as
	// sweepable orphans, and the final merge commits into dir
	// atomically.
	tmp, err := fsys.MkdirTemp(parent, pattern)
	if err != nil {
		return err
	}
	defer fsys.RemoveAll(tmp)

	chunk := (c.NumTexts() + numShards - 1) / numShards
	var (
		shardDirs []string
		offsets   []uint32
	)
	type job struct {
		dir   string
		start int
		end   int
	}
	var jobs []job
	for s := 0; s < numShards; s++ {
		start := s * chunk
		end := start + chunk
		if end > c.NumTexts() {
			end = c.NumTexts()
		}
		if start >= end {
			break
		}
		sd := filepath.Join(tmp, fmt.Sprintf("shard-%03d", s))
		shardDirs = append(shardDirs, sd)
		offsets = append(offsets, uint32(start))
		jobs = append(jobs, job{dir: sd, start: start, end: end})
	}
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			sub := corpus.New(nil)
			for id := j.start; id < j.end; id++ {
				sub.Append(c.Text(uint32(id)))
			}
			shardOpts := opts
			shardOpts.Parallelism = 1 // shards are the parallelism unit
			_, errs[i] = Build(sub, j.dir, shardOpts)
		}(i, j)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("index: build shard %d: %w", i, err)
		}
	}
	return mergeShardsFS(fsys, shardDirs, offsets, dir)
}
