package index

import (
	"os"
	"testing"

	"ndss/internal/leakcheck"
)

// TestMain verifies the gospawn termination contracts dynamically: a
// parallel build or merge worker still running after the suite fails
// the binary. NDSS_LEAKCHECK=0 disables for one-off debugging.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
