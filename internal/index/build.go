package index

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"ndss/internal/corpus"
	"ndss/internal/fsio"
	"ndss/internal/hash"
	"ndss/internal/window"
)

// BuildOptions configures index construction.
type BuildOptions struct {
	// K is the number of hash functions (Definition 2's k). Required.
	K int
	// Seed derives the hash family.
	Seed int64
	// T is the length threshold: only sequences of at least T tokens are
	// indexed. Required.
	T int
	// ZoneMapStep is the number of postings per zone entry in long
	// lists. Defaults to 1024.
	ZoneMapStep int
	// LongListCutoff is the posting count above which a list receives a
	// zone map. Defaults to 4096.
	LongListCutoff int
	// Parallelism bounds the number of window-generation goroutines in
	// Build. Defaults to GOMAXPROCS.
	Parallelism int
	// MemoryBudget bounds the bytes of spill records aggregated in
	// memory at once during BuildExternal. Defaults to 256 MiB.
	MemoryBudget int64
	// BatchTokens is the streaming batch size in tokens for
	// BuildExternal. Defaults to 4M tokens.
	BatchTokens int
	// FS is the filesystem the build writes through. Defaults to the
	// real filesystem; tests inject fault-carrying implementations.
	FS fsio.FS
}

func (o *BuildOptions) setDefaults() error {
	if o.K <= 0 {
		return fmt.Errorf("index: K must be positive, got %d", o.K)
	}
	if o.T <= 0 {
		return fmt.Errorf("index: T must be positive, got %d", o.T)
	}
	if o.ZoneMapStep == 0 {
		o.ZoneMapStep = 1024
	}
	if o.ZoneMapStep < 1 {
		return fmt.Errorf("index: ZoneMapStep must be positive, got %d", o.ZoneMapStep)
	}
	if o.LongListCutoff == 0 {
		o.LongListCutoff = 4096
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.MemoryBudget <= 0 {
		o.MemoryBudget = 256 << 20
	}
	if o.BatchTokens <= 0 {
		o.BatchTokens = 4 << 20
	}
	if o.FS == nil {
		o.FS = fsio.OS
	}
	return nil
}

// fsys returns the filesystem the build writes through.
func (o *BuildOptions) fsys() fsio.FS {
	if o.FS == nil {
		return fsio.OS
	}
	return o.FS
}

// BuildStats reports what a build did. GenTime covers hashing, window
// generation and record sorting (the CPU side); IOTime covers spill and
// index file writes (the lower/upper bar split of Fig 2(i–l)).
type BuildStats struct {
	Windows        int64
	WindowsPerFunc []int64
	BytesWritten   int64
	GenTime        time.Duration
	IOTime         time.Duration
}

// Build constructs the k inverted files for an in-memory corpus
// (Algorithm 1's main path) and commits them atomically as dir. The
// build is staged into a temp directory next to dir, fsynced, and
// swapped in by rename, so a failed or killed build leaves any
// previous index at dir untouched and openable.
func Build(c *corpus.Corpus, dir string, opts BuildOptions) (*BuildStats, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	fam, err := hash.NewFamily(opts.K, opts.Seed)
	if err != nil {
		return nil, err
	}
	fsys := opts.fsys()
	staging, err := beginBuild(fsys, dir, true)
	if err != nil {
		return nil, err
	}
	committed := false
	defer func() {
		if !committed {
			discardStaging(fsys, staging)
		}
	}()

	stats := &BuildStats{WindowsPerFunc: make([]int64, opts.K)}
	sums := make([]fileSum, opts.K)
	for fn := 0; fn < opts.K; fn++ {
		recs, genDur := generateRecords(c, fam.Func(fn), opts.T, opts.Parallelism)
		sortStart := time.Now()
		sortRecords(recs)
		genDur += time.Since(sortStart)
		stats.GenTime += genDur
		stats.WindowsPerFunc[fn] = int64(len(recs))
		stats.Windows += int64(len(recs))

		ioStart := time.Now()
		sum, err := writeLists(fsys, staging, fn, recs, opts)
		if err != nil {
			return nil, err
		}
		stats.IOTime += time.Since(ioStart)
		stats.BytesWritten += sum.size
		sums[fn] = sum
	}
	meta := Meta{
		K:              opts.K,
		Seed:           opts.Seed,
		T:              opts.T,
		NumTexts:       c.NumTexts(),
		TotalTokens:    c.TotalTokens(),
		ZoneMapStep:    opts.ZoneMapStep,
		LongListCutoff: opts.LongListCutoff,
	}
	if err := finishBuild(fsys, staging, dir, meta, sums); err != nil {
		return nil, err
	}
	committed = true
	return stats, nil
}

// finishBuild writes the metadata and manifest into the staging
// directory and commits it as dir.
func finishBuild(fsys fsio.FS, staging, dir string, meta Meta, sums []fileSum) error {
	if err := writeMeta(fsys, staging, meta); err != nil {
		return err
	}
	if err := writeManifest(fsys, staging, newManifest(meta, sums)); err != nil {
		return err
	}
	return commitDir(fsys, staging, dir)
}

// generateRecords produces the (hash, posting) records of one hash
// function over the whole corpus, fanning text chunks out to workers.
func generateRecords(c *corpus.Corpus, f hash.Func, t, parallelism int) ([]record, time.Duration) {
	start := time.Now()
	n := c.NumTexts()
	if parallelism > n {
		parallelism = n
	}
	if parallelism <= 1 {
		recs := appendTextRecords(nil, c, 0, n, f, t)
		return recs, time.Since(start)
	}
	chunk := (n + parallelism - 1) / parallelism
	parts := make([][]record, parallelism)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			parts[w] = appendTextRecords(nil, c, lo, hi, f, t)
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	recs := make([]record, 0, total)
	for _, p := range parts {
		recs = append(recs, p...)
	}
	return recs, time.Since(start)
}

// appendTextRecords generates windows for texts [lo, hi) and appends
// their records to dst.
func appendTextRecords(dst []record, c *corpus.Corpus, lo, hi int, f hash.Func, t int) []record {
	var vals []uint64
	var ws []window.Window
	for id := lo; id < hi; id++ {
		tokens := c.Text(uint32(id))
		if len(tokens) < t {
			continue
		}
		vals = window.Hashes(tokens, f, vals)
		ws = window.GenerateLinear(vals, t, ws[:0])
		for _, w := range ws {
			dst = append(dst, record{
				Hash: vals[w.C],
				Posting: Posting{
					TextID: uint32(id),
					L:      uint32(w.L),
					C:      uint32(w.C),
					R:      uint32(w.R),
				},
			})
		}
	}
	return dst
}

// writeLists writes sorted records as one inverted file and returns
// its size and checksums.
func writeLists(fsys fsio.FS, dir string, fn int, recs []record, opts BuildOptions) (fileSum, error) {
	w, err := newFileWriter(fsys, indexPath(dir, fn), fn, opts.ZoneMapStep, opts.LongListCutoff)
	if err != nil {
		return fileSum{}, err
	}
	if err := addSortedRuns(w, recs); err != nil {
		w.abort()
		return fileSum{}, err
	}
	return w.finish()
}

// addSortedRuns feeds runs of equal-hash records from a sorted slice to
// the writer.
func addSortedRuns(w *fileWriter, recs []record) error {
	for i := 0; i < len(recs); {
		j := i + 1
		for j < len(recs) && recs[j].Hash == recs[i].Hash {
			j++
		}
		if err := w.addList(recs[i].Hash, recs[i:j]); err != nil {
			return err
		}
		i = j
	}
	return nil
}

func indexPath(dir string, fn int) string {
	return dir + string(os.PathSeparator) + funcFileName(fn)
}
