package index

import (
	"encoding/json"
	"fmt"
	"path/filepath"

	"ndss/internal/fsio"
)

// Meta describes an index directory. It is stored as JSON in
// index.meta so indexes are self-describing. Since the manifest era
// (see manifest.go) index.meta is redundant with the manifest's
// embedded Meta, but it is still written so older tools keep working;
// Open prefers the manifest and falls back to bare index.meta for
// indexes written before manifests existed.
type Meta struct {
	// K is the number of hash functions (and inverted files).
	K int `json:"k"`
	// Seed derives the hash family; queries must use the same family.
	Seed int64 `json:"seed"`
	// T is the length threshold: only sequences with at least T tokens
	// are indexed.
	T int `json:"t"`
	// NumTexts and TotalTokens describe the indexed corpus.
	NumTexts    int   `json:"num_texts"`
	TotalTokens int64 `json:"total_tokens"`
	// ZoneMapStep is the number of postings per zone in long lists.
	ZoneMapStep int `json:"zone_map_step"`
	// LongListCutoff is the posting count above which a list gets a
	// zone map.
	LongListCutoff int `json:"long_list_cutoff"`
}

const metaFileName = "index.meta"

// funcFileName names the inverted file of hash function i.
func funcFileName(i int) string {
	return fmt.Sprintf("index.%03d", i)
}

func (m Meta) validate() error {
	if m.K <= 0 || m.T <= 0 {
		return fmt.Errorf("index: invalid meta: k=%d t=%d", m.K, m.T)
	}
	return nil
}

func writeMeta(fsys fsio.FS, dir string, m Meta) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("index: marshal meta: %w", err)
	}
	if err := fsio.WriteFileSync(fsys, filepath.Join(dir, metaFileName), data); err != nil {
		return fmt.Errorf("index: write meta: %w", err)
	}
	return nil
}

func readMeta(fsys fsio.FS, dir string) (Meta, error) {
	var m Meta
	data, err := fsys.ReadFile(filepath.Join(dir, metaFileName))
	if err != nil {
		return m, fmt.Errorf("index: read meta: %w", err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("index: parse meta: %w", err)
	}
	if err := m.validate(); err != nil {
		return m, err
	}
	return m, nil
}

// loadMeta returns the directory's metadata, preferring the manifest
// and falling back to bare index.meta for pre-manifest indexes.
func loadMeta(fsys fsio.FS, dir string) (Meta, error) {
	if man, err := readManifest(fsys, dir); err == nil {
		return man.Meta, nil
	} else if !fsio.NotExist(err) {
		return Meta{}, err
	}
	return readMeta(fsys, dir)
}
