package index

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"ndss/internal/fsio"
)

// Per-function inverted file layout (little-endian):
//
//	magic   [8]byte  "NDSSIDX1"
//	funcIdx uint32
//	flags   uint32
//	lists:   for each list, count postings of 16 bytes (sorted by text
//	         id), immediately followed by its zone entries (8 bytes each)
//	         when the list is long enough to carry a zone map
//	directory: numLists entries of 32 bytes, sorted by hash value:
//	         hash u64 | postingsOff u64 | count u32 | zoneCount u32 |
//	         zoneOff u64
//	trailer: dirOff u64 | numLists u64 | regionCRC u32 | dirCRC u32
//
// dirCRC (IEEE CRC-32 of the directory bytes) is verified when the file
// is opened; regionCRC covers the postings/zones region and is checked
// on demand by Index.VerifyIntegrity, since validating it requires
// reading the whole file. Both checksums are also recorded in the build
// manifest so Open can reject a file from a different build.

const (
	idxMagic      = "NDSSIDX1"
	idxHeaderLen  = 16
	dirEntrySize  = 32
	zoneEntrySize = 8
	trailerLen    = 24
)

// dirEntry is one directory row describing an inverted list.
type dirEntry struct {
	Hash      uint64
	Off       uint64 // absolute offset of the postings run
	Count     uint32 // number of postings
	ZoneCount uint32 // number of zone entries (0 = no zone map)
	ZoneOff   uint64 // absolute offset of the zone entries
}

// zoneEntry marks the first text id of a fixed-size run of postings,
// enabling per-text probes into long lists without reading them fully.
type zoneEntry struct {
	FirstTextID uint32
	Ordinal     uint32 // index of the zone's first posting within the list
}

// fileSum describes a finished inverted file for the build manifest.
type fileSum struct {
	size      int64
	dirCRC    uint32
	regionCRC uint32
}

// fileWriter streams one inverted file. Lists may be added in any hash
// order; the directory is sorted before being written. Every failure
// exit — including failures inside finish — removes the partial file,
// so an interrupted build never leaves a stray index.NNN behind.
type fileWriter struct {
	fs         fsio.FS
	path       string
	f          fsio.File
	w          *bufio.Writer
	pos        uint64
	entries    []dirEntry
	zoneStep   int
	longCutoff int
	buf        []byte
	regionCRC  uint32 // running CRC of the postings/zones region
	closed     bool
}

func newFileWriter(fsys fsio.FS, path string, funcIdx, zoneStep, longCutoff int) (*fileWriter, error) {
	if zoneStep < 1 {
		return nil, fmt.Errorf("index: zone step must be positive, got %d", zoneStep)
	}
	f, err := fsys.Create(path)
	if err != nil {
		return nil, fmt.Errorf("index: create inverted file: %w", err)
	}
	w := &fileWriter{
		fs:         fsys,
		path:       path,
		f:          f,
		w:          bufio.NewWriterSize(f, 1<<20),
		zoneStep:   zoneStep,
		longCutoff: longCutoff,
	}
	var hdr [idxHeaderLen]byte
	copy(hdr[:8], idxMagic)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(funcIdx))
	if _, err := w.w.Write(hdr[:]); err != nil {
		w.discard()
		return nil, err
	}
	w.pos = idxHeaderLen
	return w, nil
}

// addList writes one inverted list. recs must all carry the same hash
// value and be sorted by text id. An error is returned if the hash was
// already written (lists must be aggregated before reaching the writer).
func (w *fileWriter) addList(h uint64, recs []record) error {
	if len(recs) == 0 {
		return errors.New("index: empty inverted list")
	}
	entry := dirEntry{Hash: h, Off: w.pos, Count: uint32(len(recs))}
	need := len(recs) * postingSize
	if cap(w.buf) < need {
		w.buf = make([]byte, need)
	}
	buf := w.buf[:need]
	for i, r := range recs {
		if r.Hash != h {
			return fmt.Errorf("index: mixed hashes in list: %x vs %x", r.Hash, h)
		}
		encodePosting(buf[i*postingSize:], r.Posting)
	}
	if _, err := w.w.Write(buf); err != nil {
		return err
	}
	w.regionCRC = crc32.Update(w.regionCRC, crc32.IEEETable, buf)
	w.pos += uint64(need)

	if len(recs) > w.longCutoff {
		nz := (len(recs) + w.zoneStep - 1) / w.zoneStep
		entry.ZoneOff = w.pos
		entry.ZoneCount = uint32(nz)
		var zb [zoneEntrySize]byte
		for z := 0; z < nz; z++ {
			ord := z * w.zoneStep
			binary.LittleEndian.PutUint32(zb[0:], recs[ord].Posting.TextID)
			binary.LittleEndian.PutUint32(zb[4:], uint32(ord))
			if _, err := w.w.Write(zb[:]); err != nil {
				return err
			}
			w.regionCRC = crc32.Update(w.regionCRC, crc32.IEEETable, zb[:])
		}
		w.pos += uint64(nz * zoneEntrySize)
	}
	w.entries = append(w.entries, entry)
	return nil
}

// finish writes the directory and trailer, fsyncs, and closes the
// file. It returns the file's size and checksums for the build
// manifest. Any failure removes the partial file.
func (w *fileWriter) finish() (fileSum, error) {
	if w.closed {
		return fileSum{}, errors.New("index: writer already finished")
	}
	w.closed = true
	sort.Slice(w.entries, func(i, j int) bool { return w.entries[i].Hash < w.entries[j].Hash })
	for i := 1; i < len(w.entries); i++ {
		if w.entries[i].Hash == w.entries[i-1].Hash {
			w.remove()
			return fileSum{}, fmt.Errorf("index: hash %x written as two lists", w.entries[i].Hash)
		}
	}
	dirOff := w.pos
	dirCRC := uint32(0)
	var eb [dirEntrySize]byte
	for _, e := range w.entries {
		binary.LittleEndian.PutUint64(eb[0:], e.Hash)
		binary.LittleEndian.PutUint64(eb[8:], e.Off)
		binary.LittleEndian.PutUint32(eb[16:], e.Count)
		binary.LittleEndian.PutUint32(eb[20:], e.ZoneCount)
		binary.LittleEndian.PutUint64(eb[24:], e.ZoneOff)
		if _, err := w.w.Write(eb[:]); err != nil {
			w.remove()
			return fileSum{}, err
		}
		dirCRC = crc32.Update(dirCRC, crc32.IEEETable, eb[:])
	}
	w.pos += uint64(len(w.entries) * dirEntrySize)
	var tb [trailerLen]byte
	binary.LittleEndian.PutUint64(tb[0:], dirOff)
	binary.LittleEndian.PutUint64(tb[8:], uint64(len(w.entries)))
	binary.LittleEndian.PutUint32(tb[16:], w.regionCRC)
	binary.LittleEndian.PutUint32(tb[20:], dirCRC)
	if _, err := w.w.Write(tb[:]); err != nil {
		w.remove()
		return fileSum{}, err
	}
	w.pos += trailerLen
	if err := w.w.Flush(); err != nil {
		w.remove()
		return fileSum{}, err
	}
	if err := w.f.Sync(); err != nil {
		w.remove()
		return fileSum{}, err
	}
	if err := w.f.Close(); err != nil {
		w.fs.Remove(w.path)
		return fileSum{}, err
	}
	return fileSum{size: int64(w.pos), dirCRC: dirCRC, regionCRC: w.regionCRC}, nil
}

// abort closes and removes the partially written file. Safe to call
// after finish (it is then a no-op).
func (w *fileWriter) abort() {
	if !w.closed {
		w.discard()
	}
}

// discard marks the writer closed, closes the file and removes it.
func (w *fileWriter) discard() {
	w.closed = true
	w.remove()
}

// remove closes and deletes the underlying file (best-effort; a failed
// removal is an orphan inside a staging directory, swept later).
func (w *fileWriter) remove() {
	w.f.Close()
	w.fs.Remove(w.path)
}
