package index

import (
	"testing"

	"ndss/internal/corpus"
)

func benchBuildCorpus(b *testing.B) *corpus.Corpus {
	b.Helper()
	return corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts: 300, MinLength: 100, MaxLength: 500,
		VocabSize: 32000, ZipfS: 1.07, Seed: 1,
	})
}

func BenchmarkBuildDisk(b *testing.B) {
	c := benchBuildCorpus(b)
	b.SetBytes(c.TotalTokens() * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		if _, err := Build(c, dir, BuildOptions{K: 4, Seed: 3, T: 50}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildMemIndex(b *testing.B) {
	c := benchBuildCorpus(b)
	b.SetBytes(c.TotalTokens() * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildMem(c, BuildOptions{K: 4, Seed: 3, T: 50}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpen(b *testing.B) {
	c := benchBuildCorpus(b)
	dir := b.TempDir()
	if _, err := Build(c, dir, BuildOptions{K: 4, Seed: 3, T: 50}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix, err := Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		ix.Close()
	}
}

func BenchmarkReadList(b *testing.B) {
	c := benchBuildCorpus(b)
	dir := b.TempDir()
	if _, err := Build(c, dir, BuildOptions{K: 1, Seed: 3, T: 50}); err != nil {
		b.Fatal(err)
	}
	ix, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer ix.Close()
	hashes := ix.Hashes(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.ReadList(0, hashes[i%len(hashes)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyIntegrity(b *testing.B) {
	c := benchBuildCorpus(b)
	dir := b.TempDir()
	stats, err := Build(c, dir, BuildOptions{K: 4, Seed: 3, T: 50})
	if err != nil {
		b.Fatal(err)
	}
	ix, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer ix.Close()
	b.SetBytes(stats.BytesWritten)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ix.VerifyIntegrity(); err != nil {
			b.Fatal(err)
		}
	}
}
