package index

import (
	"path/filepath"
	"testing"

	"ndss/internal/corpus"
)

// TestBuildShardedEqualsDirect: sharded build + merge must reproduce the
// direct build exactly.
func TestBuildShardedEqualsDirect(t *testing.T) {
	c := testCorpus(t, 55, 30, 100, 300, 81)
	opts := BuildOptions{K: 3, Seed: 13, T: 10}
	direct, _ := buildIndex(t, c, opts)
	for _, shards := range []int{1, 2, 4, 7} {
		dir := t.TempDir()
		if err := BuildSharded(c, dir, opts, shards); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		merged, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		assertIndexesEqual(t, direct, merged)
		if err := merged.VerifyIntegrity(); err != nil {
			t.Fatalf("shards=%d: merged index corrupt: %v", shards, err)
		}
		merged.Close()
	}
}

func TestBuildShardedMoreShardsThanTexts(t *testing.T) {
	c := corpus.New([][]uint32{
		{1, 2, 3, 4, 5, 6, 7, 8},
		{9, 10, 11, 12, 13, 14, 15, 16},
	})
	dir := t.TempDir()
	if err := BuildSharded(c, dir, BuildOptions{K: 2, Seed: 1, T: 5}, 10); err != nil {
		t.Fatal(err)
	}
	ix, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if ix.Meta().NumTexts != 2 {
		t.Fatalf("NumTexts = %d", ix.Meta().NumTexts)
	}
}

func TestMergeShardsValidation(t *testing.T) {
	if err := MergeShards(nil, nil, t.TempDir()); err == nil {
		t.Fatal("empty shard list should fail")
	}
	c := testCorpus(t, 10, 30, 60, 100, 83)
	a := t.TempDir()
	if _, err := Build(c, a, BuildOptions{K: 2, Seed: 1, T: 5}); err != nil {
		t.Fatal(err)
	}
	b := t.TempDir()
	if _, err := Build(c, b, BuildOptions{K: 2, Seed: 2, T: 5}); err != nil {
		t.Fatal(err)
	}
	// Mismatched seeds must be rejected.
	if err := MergeShards([]string{a, b}, []uint32{0, 10}, t.TempDir()); err == nil {
		t.Fatal("mismatched shard seeds should fail")
	}
	// Offsets length mismatch.
	if err := MergeShards([]string{a}, []uint32{0, 1}, t.TempDir()); err == nil {
		t.Fatal("offset count mismatch should fail")
	}
	// Missing shard dir.
	if err := MergeShards([]string{filepath.Join(t.TempDir(), "nope")}, []uint32{0}, t.TempDir()); err == nil {
		t.Fatal("missing shard should fail")
	}
}

func TestMergeShardsOffsets(t *testing.T) {
	// Two shards with the same single text; offsets map them to ids 0
	// and 5.
	text := []uint32{1, 2, 3, 4, 5, 6, 7, 8}
	mk := func() string {
		dir := t.TempDir()
		if _, err := Build(corpus.New([][]uint32{text}), dir, BuildOptions{K: 1, Seed: 3, T: 5}); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	out := t.TempDir()
	if err := MergeShards([]string{mk(), mk()}, []uint32{0, 5}, out); err != nil {
		t.Fatal(err)
	}
	ix, err := Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	ids := map[uint32]bool{}
	for _, h := range ix.Hashes(0) {
		ps, err := ix.ReadList(0, h)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(ps); i++ {
			if ps[i].TextID < ps[i-1].TextID {
				t.Fatal("merged list not sorted by text id")
			}
		}
		for _, p := range ps {
			ids[p.TextID] = true
		}
	}
	if !ids[0] || !ids[5] || len(ids) != 2 {
		t.Fatalf("merged text ids = %v", ids)
	}
}
