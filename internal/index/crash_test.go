package index

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"ndss/internal/corpus"
	"ndss/internal/fsio"
)

// Crash-safety tests: a FaultFS kills the build at every single
// mutating filesystem operation in turn, and after each simulated crash
// the index directory must still open — as either exactly the previous
// index or a completely committed new one, never a mix of the two.

// fingerprint summarizes an opened index for equality checks across
// crash points.
type fingerprint struct {
	buildID  string
	numTexts int
	postings int64
}

func fingerprintOf(ix *Index) fingerprint {
	return fingerprint{
		buildID:  ix.BuildID(),
		numTexts: ix.Meta().NumTexts,
		postings: ix.TotalPostings(),
	}
}

// openAndFingerprint opens dir with the plain OS filesystem — as a
// fresh process after the crash would — and verifies its integrity.
func openAndFingerprint(t *testing.T, dir string) fingerprint {
	t.Helper()
	ix, err := Open(dir)
	if err != nil {
		t.Fatalf("index did not survive crash: %v", err)
	}
	defer ix.Close()
	if err := ix.VerifyIntegrity(); err != nil {
		t.Fatalf("index corrupt after crash: %v", err)
	}
	return fingerprintOf(ix)
}

// seedIndex builds the "previous" index at dir and returns its
// fingerprint. Parallelism 1 keeps later op counts deterministic.
func seedIndex(t *testing.T, dir string, c *corpus.Corpus, opts BuildOptions) fingerprint {
	t.Helper()
	opts.Parallelism = 1
	if _, err := Build(c, dir, opts); err != nil {
		t.Fatal(err)
	}
	return openAndFingerprint(t, dir)
}

// checkCrashInvariant verifies the post-crash state of dir: it opens
// cleanly and matches either the old fingerprint (build never
// committed) or a complete new build (crash after the commit rename).
func checkCrashInvariant(t *testing.T, dir string, opAt int, old fingerprint, newTexts int) {
	t.Helper()
	got := openAndFingerprint(t, dir)
	switch {
	case got == old:
		// Old index intact.
	case got.buildID != old.buildID && got.numTexts == newTexts:
		// Crash landed after the commit point; the new build is fully
		// visible, which is just as correct.
	default:
		t.Fatalf("crash at op %d left a mixed state: old %+v, got %+v", opAt, old, got)
	}
}

func TestBuildCrashLoop(t *testing.T) {
	oldCorpus := testCorpus(t, 12, 30, 60, 100, 7)
	newCorpus := testCorpus(t, 20, 30, 60, 100, 8)
	opts := BuildOptions{K: 2, Seed: 3, T: 10, Parallelism: 1}

	// Dry run against a seeded directory to learn the op count; the
	// commit dance differs when a previous index exists, so the dry run
	// must mirror the real one.
	dry := filepath.Join(t.TempDir(), "ix")
	seedIndex(t, dry, oldCorpus, opts)
	counter := fsio.NewFaultFS(fsio.OS)
	dryOpts := opts
	dryOpts.FS = counter
	if _, err := Build(newCorpus, dry, dryOpts); err != nil {
		t.Fatal(err)
	}
	total := counter.Ops()
	if total < 10 {
		t.Fatalf("suspiciously few crash points: %d", total)
	}

	for n := 1; n <= total; n++ {
		dir := filepath.Join(t.TempDir(), "ix")
		old := seedIndex(t, dir, oldCorpus, opts)
		ffs := fsio.NewFaultFS(fsio.OS).FailAt(n)
		crashOpts := opts
		crashOpts.FS = ffs
		_, err := Build(newCorpus, dir, crashOpts)
		if err == nil {
			// The fault landed on the trailing best-effort backup
			// removal: the new index is already committed.
			got := openAndFingerprint(t, dir)
			if got.numTexts != newCorpus.NumTexts() {
				t.Fatalf("op %d: silent success with wrong index %+v", n, got)
			}
		} else {
			if !errors.Is(err, fsio.ErrInjected) {
				t.Fatalf("op %d: unexpected error: %v", n, err)
			}
			checkCrashInvariant(t, dir, n, old, newCorpus.NumTexts())
		}

		// A retry on the recovered directory must succeed and commit.
		if _, err := Build(newCorpus, dir, opts); err != nil {
			t.Fatalf("op %d: rebuild after crash: %v", n, err)
		}
		got := openAndFingerprint(t, dir)
		if got.numTexts != newCorpus.NumTexts() {
			t.Fatalf("op %d: rebuild produced %+v", n, got)
		}
	}
}

// TestBuildSingleFaultCleansUp runs the same loop in single-fault mode
// (the op fails but the process lives on), which exercises the cleanup
// code a real crash never runs: no staging directory or partial file
// may be left behind, unless the fault hit a best-effort step after the
// commit point, in which case the build legitimately succeeds.
func TestBuildSingleFaultCleansUp(t *testing.T) {
	oldCorpus := testCorpus(t, 12, 30, 60, 100, 7)
	newCorpus := testCorpus(t, 20, 30, 60, 100, 8)
	opts := BuildOptions{K: 2, Seed: 3, T: 10, Parallelism: 1}

	dry := filepath.Join(t.TempDir(), "ix")
	seedIndex(t, dry, oldCorpus, opts)
	counter := fsio.NewFaultFS(fsio.OS)
	dryOpts := opts
	dryOpts.FS = counter
	if _, err := Build(newCorpus, dry, dryOpts); err != nil {
		t.Fatal(err)
	}
	total := counter.Ops()

	for n := 1; n <= total; n++ {
		parent := t.TempDir()
		dir := filepath.Join(parent, "ix")
		old := seedIndex(t, dir, oldCorpus, opts)
		ffs := fsio.NewFaultFS(fsio.OS).SetCrash(false).FailAt(n)
		faultOpts := opts
		faultOpts.FS = ffs
		committedDespiteError := false
		_, err := Build(newCorpus, dir, faultOpts)
		if err == nil {
			// The fault hit a best-effort step (e.g. backup removal after
			// commit): the new index must be fully in place.
			got := openAndFingerprint(t, dir)
			if got.numTexts != newCorpus.NumTexts() {
				t.Fatalf("op %d: silent success with wrong index %+v", n, got)
			}
		} else {
			if !errors.Is(err, fsio.ErrInjected) {
				t.Fatalf("op %d: unexpected error: %v", n, err)
			}
			got := openAndFingerprint(t, dir)
			if got != old && !(got.buildID != old.buildID && got.numTexts == newCorpus.NumTexts()) {
				t.Fatalf("op %d: failed build left a mixed state: %+v -> %+v", n, old, got)
			}
			// A post-swap fsync failure reports an error with the new
			// index already in place and the old one parked as backup.
			committedDespiteError = got != old
		}
		// Error paths ran, so nothing may be left next to the index —
		// except the parked backup in the committed-despite-error case,
		// which the next open recovers.
		entries, err := os.ReadDir(parent)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.Name() == "ix" || (committedDespiteError && e.Name() == "ix"+backupSuffix) {
				continue
			}
			t.Fatalf("op %d: leftover artifact %q", n, e.Name())
		}
	}
}

func TestBuildExternalCrashLoop(t *testing.T) {
	oldCorpus := testCorpus(t, 12, 30, 60, 100, 7)
	newCorpus := testCorpus(t, 20, 30, 60, 100, 8)
	opts := BuildOptions{K: 2, Seed: 3, T: 10, Parallelism: 1, BatchTokens: 400}

	path := filepath.Join(t.TempDir(), "c.tok")
	if err := corpus.WriteFile(newCorpus, path); err != nil {
		t.Fatal(err)
	}
	r, err := corpus.OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	dry := filepath.Join(t.TempDir(), "ix")
	seedIndex(t, dry, oldCorpus, opts)
	counter := fsio.NewFaultFS(fsio.OS)
	dryOpts := opts
	dryOpts.FS = counter
	if _, err := BuildExternal(r, dry, dryOpts); err != nil {
		t.Fatal(err)
	}
	total := counter.Ops()

	// The external build has many more ops (spill files); stride the
	// loop to keep the test quick while still covering every phase.
	stride := total/40 + 1
	for n := 1; n <= total; n += stride {
		dir := filepath.Join(t.TempDir(), "ix")
		old := seedIndex(t, dir, oldCorpus, opts)
		ffs := fsio.NewFaultFS(fsio.OS).FailAt(n)
		crashOpts := opts
		crashOpts.FS = ffs
		if _, err := BuildExternal(r, dir, crashOpts); err == nil {
			got := openAndFingerprint(t, dir)
			if got.numTexts != newCorpus.NumTexts() {
				t.Fatalf("op %d: silent success with wrong index %+v", n, got)
			}
			continue
		}
		checkCrashInvariant(t, dir, n, old, newCorpus.NumTexts())
	}
}

func TestAppendCrashLoop(t *testing.T) {
	base := testCorpus(t, 12, 30, 60, 100, 7)
	extra := testCorpus(t, 8, 30, 60, 100, 9)
	opts := BuildOptions{K: 2, Seed: 3, T: 10, Parallelism: 1}

	dry := filepath.Join(t.TempDir(), "ix")
	seedIndex(t, dry, base, opts)
	counter := fsio.NewFaultFS(fsio.OS)
	if _, err := appendFS(counter, dry, extra); err != nil {
		t.Fatal(err)
	}
	total := counter.Ops()

	appended := base.NumTexts() + extra.NumTexts()
	for n := 1; n <= total; n++ {
		dir := filepath.Join(t.TempDir(), "ix")
		old := seedIndex(t, dir, base, opts)
		ffs := fsio.NewFaultFS(fsio.OS).FailAt(n)
		if _, err := appendFS(ffs, dir, extra); err == nil {
			got := openAndFingerprint(t, dir)
			if got.numTexts != appended {
				t.Fatalf("op %d: silent success with wrong index %+v", n, got)
			}
			continue
		}
		got := openAndFingerprint(t, dir)
		switch {
		case got == old:
		case got.buildID != old.buildID && got.numTexts == appended:
		default:
			t.Fatalf("op %d: mixed state after append crash: old %+v, got %+v", n, old, got)
		}
	}
}

// segmentedFixture builds a base index, appends a segment, and deletes
// one text — the richest segment-set state the lifecycle mutations
// start from.
func segmentedFixture(t *testing.T, dir string) (old fingerprint, numTexts int) {
	t.Helper()
	base := testCorpus(t, 12, 30, 60, 100, 7)
	extra := testCorpus(t, 8, 30, 60, 100, 9)
	opts := BuildOptions{K: 2, Seed: 3, T: 10, Parallelism: 1}
	if _, err := Build(base, dir, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := Append(dir, extra); err != nil {
		t.Fatal(err)
	}
	if err := Delete(dir, []uint32{3}); err != nil {
		t.Fatal(err)
	}
	return openAndFingerprint(t, dir), base.NumTexts() + extra.NumTexts()
}

// TestCompactCrashLoop kills the compactor at every mutating op in
// turn: the directory must afterwards hold the old segment set or the
// new single segment — never a mix — and a retry must finish the job.
func TestCompactCrashLoop(t *testing.T) {
	dry := filepath.Join(t.TempDir(), "ix")
	segmentedFixture(t, dry)
	counter := fsio.NewFaultFS(fsio.OS)
	if err := compactFS(counter, dry); err != nil {
		t.Fatal(err)
	}
	total := counter.Ops()
	if total < 10 {
		t.Fatalf("suspiciously few crash points: %d", total)
	}

	for n := 1; n <= total; n++ {
		dir := filepath.Join(t.TempDir(), "ix")
		old, numTexts := segmentedFixture(t, dir)
		ffs := fsio.NewFaultFS(fsio.OS).FailAt(n)
		if err := compactFS(ffs, dir); err == nil {
			got := openAndFingerprint(t, dir)
			if got.numTexts != numTexts {
				t.Fatalf("op %d: silent success with wrong index %+v", n, got)
			}
			continue
		}
		got := openAndFingerprint(t, dir)
		switch {
		case got == old:
			// Old segment set intact.
		case got.buildID != old.buildID && got.numTexts == numTexts:
			// Fully committed compaction.
		default:
			t.Fatalf("op %d: mixed state after compact crash: old %+v, got %+v", n, old, got)
		}

		// A retry on the recovered directory must compact to one segment.
		if err := Compact(dir); err != nil {
			t.Fatalf("op %d: compact after crash: %v", n, err)
		}
		ix, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if ix.SegmentCount() != 1 {
			t.Fatalf("op %d: retry left %d segments", n, ix.SegmentCount())
		}
		ix.Close()
	}
}

// TestDeleteCrashLoop kills the tombstone commit at every mutating op:
// the manifest must afterwards name the pre-delete state or the
// post-delete state, and a retried delete must land.
func TestDeleteCrashLoop(t *testing.T) {
	victims := []uint32{1, 15}

	dry := filepath.Join(t.TempDir(), "ix")
	segmentedFixture(t, dry)
	counter := fsio.NewFaultFS(fsio.OS)
	if err := deleteFS(counter, dry, victims); err != nil {
		t.Fatal(err)
	}
	total := counter.Ops()
	if total < 5 {
		t.Fatalf("suspiciously few crash points: %d", total)
	}

	tombstoned := func(t *testing.T, dir string) (string, int) {
		t.Helper()
		ix, err := Open(dir)
		if err != nil {
			t.Fatalf("index did not survive delete crash: %v", err)
		}
		defer ix.Close()
		n := 0
		for _, s := range ix.Segments() {
			n += s.Tombstoned
		}
		return ix.BuildID(), n
	}

	for n := 1; n <= total; n++ {
		dir := filepath.Join(t.TempDir(), "ix")
		old, _ := segmentedFixture(t, dir)
		before := 1 // segmentedFixture deletes one text
		want := before + len(victims)
		if err := deleteFS(fsio.NewFaultFS(fsio.OS).FailAt(n), dir, victims); err == nil {
			if _, got := tombstoned(t, dir); got != want {
				t.Fatalf("op %d: silent success with %d tombstones, want %d", n, got, want)
			}
			continue
		}
		id, got := tombstoned(t, dir)
		switch {
		case id == old.buildID && got == before:
			// Pre-delete state intact.
		case id != old.buildID && got == want:
			// Fully committed delete.
		default:
			t.Fatalf("op %d: mixed state after delete crash: build %q tombstones %d", n, id, got)
		}

		// Retry must land the delete regardless of where the crash hit.
		if err := Delete(dir, victims); err != nil {
			t.Fatalf("op %d: delete after crash: %v", n, err)
		}
		if _, got := tombstoned(t, dir); got != want {
			t.Fatalf("op %d: retry left %d tombstones, want %d", n, got, want)
		}
	}
}

// TestBuildShardedCrashSurvives spot-checks the sharded builder's
// commit: crashes spread over its op range must leave the old index
// openable or the new one fully committed.
func TestBuildShardedCrashSurvives(t *testing.T) {
	oldCorpus := testCorpus(t, 12, 30, 60, 100, 7)
	newCorpus := testCorpus(t, 20, 30, 60, 100, 8)
	opts := BuildOptions{K: 2, Seed: 3, T: 10, Parallelism: 1}

	dry := filepath.Join(t.TempDir(), "ix")
	seedIndex(t, dry, oldCorpus, opts)
	counter := fsio.NewFaultFS(fsio.OS)
	dryOpts := opts
	dryOpts.FS = counter
	if err := BuildSharded(newCorpus, dry, dryOpts, 3); err != nil {
		t.Fatal(err)
	}
	total := counter.Ops()

	// Shard builds run concurrently, so op numbering across shards is
	// not deterministic — but the invariant must hold at every crash
	// point regardless of which op the fault lands on.
	stride := total/30 + 1
	for n := 1; n <= total; n += stride {
		dir := filepath.Join(t.TempDir(), "ix")
		old := seedIndex(t, dir, oldCorpus, opts)
		ffs := fsio.NewFaultFS(fsio.OS).FailAt(n)
		crashOpts := opts
		crashOpts.FS = ffs
		if err := BuildSharded(newCorpus, dir, crashOpts, 3); err == nil {
			// Concurrency may shift ops; a run that finishes under the
			// fault budget simply committed.
			got := openAndFingerprint(t, dir)
			if got.numTexts != newCorpus.NumTexts() {
				t.Fatalf("op %d: success with wrong index %+v", n, got)
			}
			continue
		}
		checkCrashInvariant(t, dir, n, old, newCorpus.NumTexts())
	}
}

func TestOpenRecoversBackup(t *testing.T) {
	c := testCorpus(t, 12, 30, 60, 100, 7)
	opts := BuildOptions{K: 2, Seed: 3, T: 10, Parallelism: 1}

	t.Run("restores parked index", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "ix")
		old := seedIndex(t, dir, c, opts)
		// Simulate a crash between the two commit renames: the previous
		// index is parked at .old and dir is gone.
		if err := os.Rename(dir, dir+backupSuffix); err != nil {
			t.Fatal(err)
		}
		got := openAndFingerprint(t, dir)
		if got != old {
			t.Fatalf("restored index differs: %+v vs %+v", old, got)
		}
		if _, err := os.Stat(dir + backupSuffix); !os.IsNotExist(err) {
			t.Fatalf("backup still present after recovery: %v", err)
		}
	})

	t.Run("drops stale backup", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "ix")
		old := seedIndex(t, dir, c, opts)
		// Simulate a crash after the commit completed but before the
		// backup removal: both dir and .old exist.
		if err := os.MkdirAll(dir+backupSuffix, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir+backupSuffix, "index.meta"), []byte("stale"), 0o644); err != nil {
			t.Fatal(err)
		}
		got := openAndFingerprint(t, dir)
		if got != old {
			t.Fatalf("index changed by backup recovery: %+v vs %+v", old, got)
		}
		if _, err := os.Stat(dir + backupSuffix); !os.IsNotExist(err) {
			t.Fatalf("stale backup not dropped: %v", err)
		}
	})
}

func TestBuildSweepsOrphans(t *testing.T) {
	c := testCorpus(t, 12, 30, 60, 100, 7)
	parent := t.TempDir()
	dir := filepath.Join(parent, "ix")

	// Plant artifacts a crashed prior build could have left: a staging
	// directory next to dir and a spill file inside dir.
	orphan := filepath.Join(parent, "ix.tmp-12345")
	if err := os.MkdirAll(orphan, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(orphan, "index.000"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	spill := filepath.Join(dir, "spill-l0-p0-999")
	if err := os.WriteFile(spill, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Build(c, dir, BuildOptions{K: 2, Seed: 3, T: 10, Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan staging dir not swept: %v", err)
	}
	if _, err := os.Stat(spill); !os.IsNotExist(err) {
		t.Fatalf("orphan spill not swept: %v", err)
	}
	openAndFingerprint(t, dir)
}

// TestWriterFinishFailureRemovesFile is the regression test for the
// fileWriter error paths: a failure inside finish must not leave the
// partial inverted file behind.
func TestWriterFinishFailureRemovesFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "index.000")
	ffs := fsio.NewFaultFS(fsio.OS).SetCrash(false)
	w, err := newFileWriter(ffs, path, 0, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.addList(42, []record{{Hash: 42, Posting: Posting{TextID: 1}}}); err != nil {
		t.Fatal(err)
	}
	// Ops so far: Create. The next write op is finish's buffered Flush.
	ffs.FailAt(2)
	if _, err := w.finish(); !errors.Is(err, fsio.ErrInjected) {
		t.Fatalf("finish should fail with injected error, got %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("partial inverted file left behind: %v", err)
	}
	// abort after a failed finish must be a no-op, not a panic.
	w.abort()
}

// TestReadErrorCarriesContext injects a read fault into the postings
// region of an opened index and checks the failure surfaces as a
// *ReadError naming the file and offset — never a panic.
func TestReadErrorCarriesContext(t *testing.T) {
	c := testCorpus(t, 30, 40, 100, 200, 61)
	dir := t.TempDir()
	if _, err := Build(c, dir, BuildOptions{K: 2, Seed: 5, T: 10, Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	ffs := fsio.NewFaultFS(fsio.OS)
	ix, err := OpenFS(ffs, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	// Fault a byte early in function 0's postings region; list reads
	// covering it must fail, wrapped with context.
	ffs.FailReadAt(funcFileName(0), idxHeaderLen+4)
	var gotErr error
	for _, h := range ix.Hashes(0) {
		if _, err := ix.ReadList(0, h); err != nil {
			gotErr = err
			break
		}
	}
	if gotErr == nil {
		t.Fatal("no read covered the faulted offset")
	}
	var re *ReadError
	if !errors.As(gotErr, &re) {
		t.Fatalf("error does not carry ReadError context: %v", gotErr)
	}
	if re.Path == "" || re.Len <= 0 {
		t.Fatalf("ReadError missing context: %+v", re)
	}
	if !(re.Off <= idxHeaderLen+4 && idxHeaderLen+4 < re.Off+int64(re.Len)) {
		t.Fatalf("ReadError range [%d,%d) does not cover faulted offset", re.Off, re.Off+int64(re.Len))
	}
	if !errors.Is(gotErr, fsio.ErrInjected) {
		t.Fatalf("wrapped cause lost: %v", gotErr)
	}

	// Clearing the fault makes the same reads succeed: the failure did
	// not poison the open index.
	ffs.ClearReadFault()
	for _, h := range ix.Hashes(0) {
		if _, err := ix.ReadList(0, h); err != nil {
			t.Fatalf("read after fault cleared: %v", err)
		}
	}
}
