package index

import (
	"fmt"

	"ndss/internal/fsio"
)

// Delete tombstones the given global text ids: the segments are left
// untouched (they are immutable) and a fresh per-segment bitmap naming
// the dead local ids is written and published by an atomic manifest
// commit. Readers consult the bitmap at gather time, so a deleted text
// never becomes a candidate; its postings stay on disk until Compact
// purges them. Ids are never reused — the aggregate NumTexts keeps
// counting the full id-space width. Deleting an already-deleted id is
// a no-op; an id beyond the corpus is an error.
func Delete(dir string, ids []uint32) error {
	return deleteFS(fsio.OS, dir, ids)
}

func deleteFS(fsys fsio.FS, dir string, ids []uint32) error {
	if len(ids) == 0 {
		return nil
	}
	if err := recoverBackup(fsys, dir); err != nil {
		return err
	}
	man, err := loadOrSynthesizeManifest(fsys, dir)
	if err != nil {
		return err
	}
	if err := sweepOrphans(fsys, dir); err != nil {
		return err
	}
	if err := sweepSegments(fsys, dir, man); err != nil {
		return err
	}
	// Map global ids onto segments via the cumulative text-id bases.
	bases := make([]uint32, len(man.Segments))
	var total int64
	for i, seg := range man.Segments {
		bases[i] = uint32(total)
		total += int64(seg.Meta.NumTexts)
	}
	tombs := make(map[int]*tombSet)
	for _, id := range ids {
		if int64(id) >= total {
			return fmt.Errorf("index: delete text %d: corpus has %d texts", id, total)
		}
		si := len(bases) - 1
		for si > 0 && bases[si] > id {
			si--
		}
		t := tombs[si]
		if t == nil {
			seg := man.Segments[si]
			if seg.Tomb != nil {
				t, err = readTombstone(fsys, dir, seg.Tomb, seg.Meta.NumTexts)
				if err != nil {
					return err
				}
			} else {
				t = newTombSet(seg.Meta.NumTexts)
			}
			tombs[si] = t
		}
		t.set(int(id - bases[si]))
	}
	// Write the new bitmaps under fresh names (the old ones stay valid
	// until the manifest commit retires them), in segment order so the
	// operation is deterministic.
	for si := range man.Segments {
		t, ok := tombs[si]
		if !ok {
			continue
		}
		mt, err := writeTombstone(fsys, dir, man.Segments[si].Name, t)
		if err != nil {
			return err
		}
		man.Segments[si].Tomb = mt
	}
	return commitManifest(fsys, dir, man)
}
