// Package index implements the paper's inverted index of compact windows
// (§3.4): k inverted files, one per min-hash function, mapping a min-hash
// value to the list of compact windows (TextID, L, C, R) whose sequences
// all carry that min-hash. Lists are ordered by text id and long lists
// carry zone maps for per-text probing (Algorithm 3's prefix filtering
// path).
//
// Three builders are provided: an in-memory builder for corpora that fit
// in RAM (Algorithm 1's main path), a parallel variant, and an external
// hash-aggregation builder with recursive partitioning for corpora larger
// than memory.
package index

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Posting locates one compact window: text id plus the window bounds
// (0-based inclusive). Every sequence T[i..j] with L <= i <= C <= j <= R
// of text TextID has the list's min-hash value under the list's hash
// function.
type Posting struct {
	TextID uint32
	L      uint32
	C      uint32
	R      uint32
}

// postingSize is the on-disk size of one posting.
const postingSize = 16

func encodePosting(dst []byte, p Posting) {
	binary.LittleEndian.PutUint32(dst[0:], p.TextID)
	binary.LittleEndian.PutUint32(dst[4:], p.L)
	binary.LittleEndian.PutUint32(dst[8:], p.C)
	binary.LittleEndian.PutUint32(dst[12:], p.R)
}

func decodePosting(src []byte) Posting {
	return Posting{
		TextID: binary.LittleEndian.Uint32(src[0:]),
		L:      binary.LittleEndian.Uint32(src[4:]),
		C:      binary.LittleEndian.Uint32(src[8:]),
		R:      binary.LittleEndian.Uint32(src[12:]),
	}
}

// record pairs a posting with its min-hash value during construction.
type record struct {
	Hash    uint64
	Posting Posting
}

// recordSize is the on-disk size of one spill record (external build).
const recordSize = 24

func encodeRecord(dst []byte, r record) {
	binary.LittleEndian.PutUint64(dst[0:], r.Hash)
	encodePosting(dst[8:], r.Posting)
}

func decodeRecord(src []byte) record {
	return record{
		Hash:    binary.LittleEndian.Uint64(src[0:]),
		Posting: decodePosting(src[8:]),
	}
}

// sortRecords orders records by (hash, text id, L). Postings within a
// list must be ordered by text id for zone maps and per-text probes.
func sortRecords(recs []record) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Hash != recs[j].Hash {
			return recs[i].Hash < recs[j].Hash
		}
		if recs[i].Posting.TextID != recs[j].Posting.TextID {
			return recs[i].Posting.TextID < recs[j].Posting.TextID
		}
		return recs[i].Posting.L < recs[j].Posting.L
	})
}

func (p Posting) String() string {
	return fmt.Sprintf("{T%d (%d,%d,%d)}", p.TextID, p.L, p.C, p.R)
}
