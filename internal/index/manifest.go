package index

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"path/filepath"
	"strings"
	"time"

	"ndss/internal/fsio"
)

// The build manifest (index.manifest) is the root of truth for an index
// directory: it names the set of immutable segments the index is made
// of, and for every segment the inverted files with their sizes and
// checksums as written. Open cross-checks the directory against the
// manifest, so an index assembled from a mix of builds — the signature
// of a non-atomic rebuild interrupted partway — is rejected with a
// diagnostic instead of silently serving wrong matches.
//
// Format version 2 introduced the segment list: every build produces an
// immutable segment (the k inverted files), Append adds a new segment
// directory plus an atomically renamed manifest instead of rewriting
// the index, deletes are per-segment tombstone bitmaps, and compaction
// merges the segment set back into one. Version-1 manifests (one
// monolithic file set) still parse: they are normalized into a
// single-segment version-2 manifest whose segment lives at the
// directory root. Directories without any manifest (written before
// manifests existed) open through the index.meta compatibility path
// with no cross-check, as a one-segment read-only set.

const (
	manifestFileName      = "index.manifest"
	manifestFormatVersion = 2
	// manifestVersionFlat is the pre-segment format: one file list at
	// the top level, no segment entries.
	manifestVersionFlat = 1

	// manifestTmpPattern names in-progress manifest replacements;
	// sweepSegments removes leftovers of interrupted commits.
	manifestTmpPattern = manifestFileName + ".tmp-*"
)

// ManifestFile records one inverted file as the builder wrote it.
// DirCRC and RegionCRC duplicate the file's trailer checksums, so Open
// can match file to manifest from bytes it already reads — no extra
// I/O — while a full re-read is still available via VerifyIntegrity.
type ManifestFile struct {
	Name      string `json:"name"`
	Size      int64  `json:"size"`
	DirCRC    uint32 `json:"dir_crc32"`
	RegionCRC uint32 `json:"region_crc32"`
}

// ManifestTombstone records a segment's tombstone bitmap file: deleted
// texts are masked out of every read of that segment until compaction
// drops their postings entirely.
type ManifestTombstone struct {
	Name    string `json:"name"`
	Deleted int    `json:"deleted"`
	CRC     uint32 `json:"crc32"`
}

// ManifestSegment is one immutable segment of the index: a complete set
// of k inverted files built over a consecutive run of text ids. Name ""
// means the files live at the index directory root (the layout every
// builder commits); appended segments live in subdirectories. A
// segment's texts occupy the global id range starting at the sum of the
// NumTexts of the segments before it.
type ManifestSegment struct {
	Name  string             `json:"name"`
	Meta  Meta               `json:"meta"`
	Files []ManifestFile     `json:"files"`
	Tomb  *ManifestTombstone `json:"tombstone,omitempty"`
}

// Manifest is the on-disk index manifest. Meta aggregates the segment
// set (NumTexts and TotalTokens are sums; the id space is the
// concatenation of the segments in order). Files is only populated in
// version-1 input and is folded into Segments by parseManifest.
type Manifest struct {
	FormatVersion int               `json:"format_version"`
	BuildID       string            `json:"build_id"`
	CreatedUnix   int64             `json:"created_unix"`
	Meta          Meta              `json:"meta"`
	Files         []ManifestFile    `json:"files,omitempty"`
	Segments      []ManifestSegment `json:"segments,omitempty"`
}

// MixedOptionsError reports a segment set whose members were built with
// different hash parameters. Serving such a set would sketch queries
// with one hash family and match them against lists built with another,
// silently producing wrong results, so Open rejects it.
type MixedOptionsError struct {
	Segment string // segment whose options diverge ("" = directory root)
	Got     Meta   // the diverging segment's build options
	Want    Meta   // the manifest's aggregate build options
}

func (e *MixedOptionsError) Error() string {
	return fmt.Sprintf("index: segment %q built with k=%d seed=%d t=%d, segment set requires k=%d seed=%d t=%d: mixed build options",
		segmentLabel(e.Segment), e.Got.K, e.Got.Seed, e.Got.T, e.Want.K, e.Want.Seed, e.Want.T)
}

// segmentLabel names a segment in diagnostics ("(root)" for "").
func segmentLabel(name string) string {
	if name == "" {
		return "(root)"
	}
	return name
}

// segmentDirName names the nth appended segment's subdirectory.
func segmentDirName(n int) string { return fmt.Sprintf("seg-%06d", n) }

// nextSegmentName picks a subdirectory name unused by the manifest.
func nextSegmentName(m *Manifest) string {
	used := make(map[string]bool, len(m.Segments))
	for _, s := range m.Segments {
		used[s.Name] = true
	}
	for n := 1; ; n++ {
		if name := segmentDirName(n); !used[name] {
			return name
		}
	}
}

// validEntryName reports whether name is safe to join onto the index
// directory: a single non-empty path component.
func validEntryName(name string) bool {
	if name == "" || name == "." || name == ".." {
		return false
	}
	return !strings.ContainsAny(name, `/\`)
}

// newBuildID returns a fresh random build identifier.
func newBuildID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to a time-derived ID; uniqueness per directory is
		// all the lifecycle needs.
		return fmt.Sprintf("t%016x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// newManifest assembles the manifest for a completed build: a single
// root segment holding the k files just written.
func newManifest(meta Meta, sums []fileSum) Manifest {
	files := make([]ManifestFile, len(sums))
	for i, s := range sums {
		files[i] = ManifestFile{
			Name:      funcFileName(i),
			Size:      s.size,
			DirCRC:    s.dirCRC,
			RegionCRC: s.regionCRC,
		}
	}
	return Manifest{
		FormatVersion: manifestFormatVersion,
		BuildID:       newBuildID(),
		CreatedUnix:   time.Now().Unix(),
		Meta:          meta,
		Segments:      []ManifestSegment{{Name: "", Meta: meta, Files: files}},
	}
}

// recomputeAggregate refreshes the manifest's top-level Meta from its
// segment set: hash/build parameters from the first segment, NumTexts
// and TotalTokens summed in segment order.
func recomputeAggregate(m *Manifest) {
	if len(m.Segments) == 0 {
		return
	}
	agg := m.Segments[0].Meta
	agg.NumTexts = 0
	agg.TotalTokens = 0
	for _, s := range m.Segments {
		agg.NumTexts += s.Meta.NumTexts
		agg.TotalTokens += s.Meta.TotalTokens
	}
	m.Meta = agg
}

func writeManifest(fsys fsio.FS, dir string, m Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("index: marshal manifest: %w", err)
	}
	if err := fsio.WriteFileSync(fsys, filepath.Join(dir, manifestFileName), data); err != nil {
		return fmt.Errorf("index: write manifest: %w", err)
	}
	return nil
}

// commitManifest atomically replaces a live directory's manifest: the
// new manifest is written durably to a temp file and renamed over
// index.manifest, so at every instant the directory names exactly one
// consistent segment set — the old one or the new one, never a mix.
// The aggregate index.meta is refreshed the same way afterwards (Open
// prefers the manifest, so a crash between the two renames is benign).
// A fresh build id is stamped: every committed segment-set change is a
// distinct build.
func commitManifest(fsys fsio.FS, dir string, m *Manifest) error {
	m.FormatVersion = manifestFormatVersion
	m.BuildID = newBuildID()
	m.CreatedUnix = time.Now().Unix()
	recomputeAggregate(m)
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("index: marshal manifest: %w", err)
	}
	if err := replaceFileSync(fsys, dir, manifestFileName, data); err != nil {
		return fmt.Errorf("index: commit manifest: %w", err)
	}
	metaData, err := json.MarshalIndent(m.Meta, "", "  ")
	if err != nil {
		return fmt.Errorf("index: marshal meta: %w", err)
	}
	if err := replaceFileSync(fsys, dir, metaFileName, metaData); err != nil {
		return fmt.Errorf("index: refresh meta: %w", err)
	}
	return nil
}

// replaceFileSync durably replaces dir/name via write-to-temp, fsync,
// rename, fsync-dir. Readers see the old or the new content, never a
// torn write.
func replaceFileSync(fsys fsio.FS, dir, name string, data []byte) error {
	f, err := fsys.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, name)); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(dir)
}

func readManifest(fsys fsio.FS, dir string) (*Manifest, error) {
	data, err := fsys.ReadFile(filepath.Join(dir, manifestFileName))
	if err != nil {
		return nil, fmt.Errorf("index: read manifest: %w", err)
	}
	return parseManifest(data)
}

// parseManifest decodes and validates manifest bytes. It is pure (no
// I/O) and total: any input — torn, corrupt, or adversarial — yields a
// validated *Manifest or an error, never a panic. Version-1 manifests
// are normalized into the canonical single-root-segment version-2
// shape, so every accepted manifest satisfies the same invariants and
// round-trips stably through re-encoding.
func parseManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("index: parse manifest (truncated or corrupt): %w", err)
	}
	if m.BuildID == "" {
		return nil, fmt.Errorf("index: manifest has no build id")
	}
	switch m.FormatVersion {
	case manifestVersionFlat:
		if len(m.Segments) != 0 {
			return nil, fmt.Errorf("index: version-1 manifest carries segment entries")
		}
		m.Segments = []ManifestSegment{{Name: "", Meta: m.Meta, Files: m.Files}}
		m.Files = nil
		m.FormatVersion = manifestFormatVersion
	case manifestFormatVersion:
		if len(m.Files) != 0 {
			return nil, fmt.Errorf("index: version-2 manifest carries a top-level file list")
		}
	default:
		return nil, fmt.Errorf("index: manifest format version %d, this build understands %d",
			m.FormatVersion, manifestFormatVersion)
	}
	if err := m.Meta.validate(); err != nil {
		return nil, err
	}
	if len(m.Segments) == 0 {
		return nil, fmt.Errorf("index: manifest names no segments")
	}
	var (
		sumTexts  int64
		sumTokens int64
		names     = make(map[string]bool, len(m.Segments))
	)
	for i, seg := range m.Segments {
		if i == 0 && seg.Name == "" {
			// The root segment: files at the directory top level.
		} else if !validEntryName(seg.Name) {
			return nil, fmt.Errorf("index: manifest segment %d has invalid name %q", i, seg.Name)
		}
		if names[seg.Name] {
			return nil, fmt.Errorf("index: manifest names segment %q twice", seg.Name)
		}
		names[seg.Name] = true
		if err := seg.Meta.validate(); err != nil {
			return nil, err
		}
		if seg.Meta.NumTexts < 0 || seg.Meta.TotalTokens < 0 {
			return nil, fmt.Errorf("index: manifest segment %q has negative text counts", segmentLabel(seg.Name))
		}
		if seg.Meta.K != m.Meta.K || seg.Meta.Seed != m.Meta.Seed || seg.Meta.T != m.Meta.T {
			return nil, &MixedOptionsError{Segment: seg.Name, Got: seg.Meta, Want: m.Meta}
		}
		if len(seg.Files) != seg.Meta.K {
			return nil, fmt.Errorf("index: manifest lists %d files for segment %q with k=%d",
				len(seg.Files), segmentLabel(seg.Name), seg.Meta.K)
		}
		for _, f := range seg.Files {
			if !validEntryName(f.Name) {
				return nil, fmt.Errorf("index: manifest segment %q lists invalid file name %q",
					segmentLabel(seg.Name), f.Name)
			}
		}
		if tomb := seg.Tomb; tomb != nil {
			if !validEntryName(tomb.Name) {
				return nil, fmt.Errorf("index: manifest segment %q has invalid tombstone name %q",
					segmentLabel(seg.Name), tomb.Name)
			}
			if tomb.Deleted <= 0 || tomb.Deleted > seg.Meta.NumTexts {
				return nil, fmt.Errorf("index: manifest segment %q tombstones %d of %d texts",
					segmentLabel(seg.Name), tomb.Deleted, seg.Meta.NumTexts)
			}
		}
		sumTexts += int64(seg.Meta.NumTexts)
		sumTokens += int64(seg.Meta.TotalTokens)
	}
	if sumTexts > math.MaxUint32 {
		return nil, fmt.Errorf("index: manifest segment set spans %d texts, exceeding the id space", sumTexts)
	}
	if int64(m.Meta.NumTexts) != sumTexts || m.Meta.TotalTokens != sumTokens {
		return nil, fmt.Errorf("index: manifest aggregate (texts %d, tokens %d) does not match its segments (texts %d, tokens %d)",
			m.Meta.NumTexts, m.Meta.TotalTokens, sumTexts, sumTokens)
	}
	return &m, nil
}
