package index

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"path/filepath"
	"time"

	"ndss/internal/fsio"
)

// The build manifest (index.manifest) ties the k inverted files of a
// directory to a single build: it records the build ID, the format
// version, the metadata, and each file's size and checksums as written.
// Open cross-checks the directory against the manifest, so an index
// assembled from a mix of builds — the signature of a non-atomic
// rebuild interrupted partway — is rejected with a diagnostic instead
// of silently serving wrong matches. Directories without a manifest
// (written before manifests existed) open through the index.meta
// compatibility path with no cross-check.

const (
	manifestFileName      = "index.manifest"
	manifestFormatVersion = 1
)

// ManifestFile records one inverted file as the builder wrote it.
// DirCRC and RegionCRC duplicate the file's trailer checksums, so Open
// can match file to manifest from bytes it already reads — no extra
// I/O — while a full re-read is still available via VerifyIntegrity.
type ManifestFile struct {
	Name      string `json:"name"`
	Size      int64  `json:"size"`
	DirCRC    uint32 `json:"dir_crc32"`
	RegionCRC uint32 `json:"region_crc32"`
}

// Manifest is the on-disk build manifest.
type Manifest struct {
	FormatVersion int            `json:"format_version"`
	BuildID       string         `json:"build_id"`
	CreatedUnix   int64          `json:"created_unix"`
	Meta          Meta           `json:"meta"`
	Files         []ManifestFile `json:"files"`
}

// newBuildID returns a fresh random build identifier.
func newBuildID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to a time-derived ID; uniqueness per directory is
		// all the lifecycle needs.
		return fmt.Sprintf("t%016x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// newManifest assembles the manifest for a completed build.
func newManifest(meta Meta, sums []fileSum) Manifest {
	files := make([]ManifestFile, len(sums))
	for i, s := range sums {
		files[i] = ManifestFile{
			Name:      funcFileName(i),
			Size:      s.size,
			DirCRC:    s.dirCRC,
			RegionCRC: s.regionCRC,
		}
	}
	return Manifest{
		FormatVersion: manifestFormatVersion,
		BuildID:       newBuildID(),
		CreatedUnix:   time.Now().Unix(),
		Meta:          meta,
		Files:         files,
	}
}

func writeManifest(fsys fsio.FS, dir string, m Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("index: marshal manifest: %w", err)
	}
	if err := fsio.WriteFileSync(fsys, filepath.Join(dir, manifestFileName), data); err != nil {
		return fmt.Errorf("index: write manifest: %w", err)
	}
	return nil
}

func readManifest(fsys fsio.FS, dir string) (*Manifest, error) {
	data, err := fsys.ReadFile(filepath.Join(dir, manifestFileName))
	if err != nil {
		return nil, fmt.Errorf("index: read manifest: %w", err)
	}
	return parseManifest(data)
}

// parseManifest decodes and validates manifest bytes. It is pure (no
// I/O) and total: any input — torn, corrupt, or adversarial — yields a
// validated *Manifest or an error, never a panic.
func parseManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("index: parse manifest (truncated or corrupt): %w", err)
	}
	if m.FormatVersion != manifestFormatVersion {
		return nil, fmt.Errorf("index: manifest format version %d, this build understands %d",
			m.FormatVersion, manifestFormatVersion)
	}
	if m.BuildID == "" {
		return nil, fmt.Errorf("index: manifest has no build id")
	}
	if err := m.Meta.validate(); err != nil {
		return nil, err
	}
	if len(m.Files) != m.Meta.K {
		return nil, fmt.Errorf("index: manifest lists %d files for k=%d", len(m.Files), m.Meta.K)
	}
	return &m, nil
}
