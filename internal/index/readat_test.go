package index

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"ndss/internal/corpus"
)

// The I/O counters (index-wide and per-query sink) must record the
// bytes a read actually returned, not the bytes it asked for. A
// truncated inverted file makes ReadAt fail with a short read; the
// counters must match the short count exactly.

func TestReadAtTruncatedFileCountsActualBytes(t *testing.T) {
	c := corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts: 30, MinLength: 30, MaxLength: 80, VocabSize: 25,
		ZipfS: 1.3, Seed: 5, DupRate: 0.5, DupSnippetLen: 15, DupMutateProb: 0.05,
	})
	dir := t.TempDir()
	if _, err := Build(c, dir, BuildOptions{K: 2, Seed: 9, T: 5}); err != nil {
		t.Fatal(err)
	}
	ix, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	// Pick the last list of function 0 (highest offset) so truncating
	// mid-list leaves the directory of the still-open file readable.
	fn := 0
	entries := ix.segs[0].files[fn].entries
	var target dirEntry
	for _, e := range entries {
		if e.Count > 1 && e.Off >= target.Off {
			target = e
		}
	}
	if target.Count <= 1 {
		t.Fatal("no multi-posting list to truncate")
	}

	// Truncate the open file halfway through the target list. The index
	// holds the file handle, so reads past the new size hit EOF.
	keep := int64(target.Off) + int64(target.Count/2)*postingSize
	if err := os.Truncate(filepath.Join(dir, funcFileName(fn)), keep); err != nil {
		t.Fatal(err)
	}
	wantBytes := keep - int64(target.Off) // what a full-list read can still get

	var sink IOStats
	before := ix.IOStats()
	_, err = ix.ReadListInto(nil, fn, target.Hash, &sink)
	after := ix.IOStats()
	if err == nil {
		t.Fatal("read of truncated list succeeded")
	}
	if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want EOF-ish error, got %v", err)
	}
	if delta := after.BytesRead - before.BytesRead; delta != wantBytes {
		t.Fatalf("index-wide counter charged %d bytes, file had %d", delta, wantBytes)
	}
	if sink.BytesRead != wantBytes {
		t.Fatalf("per-query sink charged %d bytes, file had %d", sink.BytesRead, wantBytes)
	}
	if sink.BytesRead != after.BytesRead-before.BytesRead {
		t.Fatalf("sink %d != index-wide delta %d", sink.BytesRead, after.BytesRead-before.BytesRead)
	}
}

func TestHasZoneMap(t *testing.T) {
	c := corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts: 30, MinLength: 30, MaxLength: 80, VocabSize: 20,
		ZipfS: 1.3, Seed: 5, DupRate: 0.5, DupSnippetLen: 15, DupMutateProb: 0.05,
	})
	dir := t.TempDir()
	if _, err := Build(c, dir, BuildOptions{K: 2, Seed: 9, T: 5, ZoneMapStep: 4, LongListCutoff: 8}); err != nil {
		t.Fatal(err)
	}
	ix, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	long, short := 0, 0
	for fn := 0; fn < ix.K(); fn++ {
		for _, e := range ix.segs[0].files[fn].entries {
			got := ix.HasZoneMap(fn, e.Hash)
			if want := e.ZoneCount > 0; got != want {
				t.Fatalf("fn %d hash %x: HasZoneMap %v, ZoneCount %d", fn, e.Hash, got, e.ZoneCount)
			}
			if got {
				long++
			} else {
				short++
			}
			if got != (e.Count > 8) {
				t.Fatalf("fn %d hash %x: zone map presence %v disagrees with cutoff (count %d)",
					fn, e.Hash, got, e.Count)
			}
		}
		if ix.HasZoneMap(fn, 0xdeadbeefdeadbeef) {
			t.Fatal("missing hash reports a zone map")
		}
	}
	if long == 0 || short == 0 {
		t.Fatalf("degenerate fixture: %d zone-mapped, %d plain lists", long, short)
	}
}
