package index

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCleanSpills(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"spill-l0-p0-abc", "spill-l1-p3-def"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	keep := filepath.Join(dir, "index.000")
	if err := os.WriteFile(keep, []byte("y"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := CleanSpills(dir); err != nil {
		t.Fatal(err)
	}
	left, err := filepath.Glob(filepath.Join(dir, "spill-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("spills remain: %v", left)
	}
	if _, err := os.Stat(keep); err != nil {
		t.Fatal("non-spill file was removed")
	}
}

func TestPartitionOfSpreadsHashes(t *testing.T) {
	// Different hash values must not all collapse into one partition at
	// level 0, and recursion levels must use different bits.
	counts := map[int]int{}
	for h := uint64(0); h < 4096; h++ {
		counts[partitionOf(h*2654435761, 0, 16)]++
	}
	if len(counts) < 8 {
		t.Fatalf("level-0 partitioning too concentrated: %d partitions used", len(counts))
	}
	// A fixed level-0 partition's members must split at level 1.
	sub := map[int]int{}
	for h := uint64(0); h < 65536; h++ {
		v := h * 2654435761
		if partitionOf(v, 0, 16) == 3 {
			sub[partitionOf(v, 1, 16)]++
		}
	}
	if len(sub) < 8 {
		t.Fatalf("level-1 partitioning does not split level-0 buckets: %d partitions", len(sub))
	}
}
