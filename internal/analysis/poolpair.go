package analysis

import (
	"go/ast"
	"go/types"
)

// poolScope lists the packages whose sync.Pool discipline is checked:
// the query path's steady-state no-allocation property (PR 1) rests on
// every pooled object being returned on every exit path, including
// panics — which in Go means the Put must be deferred.
var poolScope = []string{"ndss/internal/search", "ndss/internal/index", "ndss/internal/server"}

// PoolPair enforces the Get/Put pairing discipline on sync.Pool:
// a function that takes an object out of a pool must install a
// deferred return of it (directly, or via a same-package release
// helper), unless the function is itself an acquire helper that hands
// the object to its caller — in which case the caller is checked.
var PoolPair = &Analyzer{
	Name:   "poolpair",
	Doc:    "every sync.Pool Get needs a dominating deferred Put on all return paths",
	Anchor: "poolpair",
	Run:    runPoolPair,
}

// poolRef identifies a pool by the variable or field it lives in.
type poolRef = types.Object

type poolFuncInfo struct {
	decl *ast.FuncDecl
	// gets maps each pool this function Gets from to the position of
	// the first Get.
	gets map[poolRef]*ast.CallExpr
	// returnsPooled holds pools whose Get result escapes via return —
	// the function is an acquire helper for them.
	returnsPooled map[poolRef]bool
	// deferredPuts holds pools returned via a defer (own Put or a
	// release helper call).
	deferredPuts map[poolRef]bool
	// inlinePuts maps pools to non-deferred Put call sites.
	inlinePuts map[poolRef]*ast.CallExpr
	// releases holds pools this function Puts to without Getting from —
	// it is a release helper for them.
	releases map[poolRef]bool
	// acquireCalls maps same-package acquire helpers this function
	// calls (resolved in a second pass) to the call site.
	calls []poolCall
}

type poolCall struct {
	fn       *types.Func
	site     *ast.CallExpr
	deferred bool
}

func runPoolPair(pass *Pass) error {
	if !underAny(pass.PkgPath(), poolScope...) {
		return nil
	}
	infos := map[*types.Func]*poolFuncInfo{}
	var order []*types.Func
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			infos[obj] = collectPoolInfo(pass, fd)
			order = append(order, obj)
		}
	}

	// Classify helpers.
	acquires := map[*types.Func]poolRef{} // acquire helper -> pool
	releases := map[*types.Func]poolRef{} // release helper -> pool
	for fn, info := range infos {
		for pool := range info.returnsPooled {
			acquires[fn] = pool
		}
		for pool := range info.releases {
			releases[fn] = pool
		}
	}

	for _, fn := range order {
		info := infos[fn]
		// Obligations: direct Gets (unless handed to the caller) plus
		// non-deferred calls to acquire helpers.
		type obligation struct {
			pool poolRef
			site *ast.CallExpr
			via  string
		}
		var need []obligation
		for pool, site := range info.gets {
			if info.returnsPooled[pool] {
				continue // acquire helper: the caller owns the Put
			}
			need = append(need, obligation{pool, site, "sync.Pool Get"})
		}
		deferredRelease := map[poolRef]bool{}
		for pool := range info.deferredPuts {
			deferredRelease[pool] = true
		}
		for _, c := range info.calls {
			pool, isAcquire := acquires[c.fn]
			if isAcquire && !c.deferred {
				need = append(need, obligation{pool, c.site, "object acquired from " + c.fn.Name()})
			}
			if rp, isRelease := releases[c.fn]; isRelease && c.deferred {
				deferredRelease[rp] = true
			}
		}
		for _, ob := range need {
			if deferredRelease[ob.pool] {
				continue
			}
			if site, ok := info.inlinePuts[ob.pool]; ok {
				pass.Reportf(site.Pos(),
					"sync.Pool Put must be deferred so early returns and panics still return the object")
				continue
			}
			pass.Reportf(ob.site.Pos(),
				"%s without a deferred Put or release on all return paths; the object leaks on error and panic paths", ob.via)
		}
	}
	return nil
}

func collectPoolInfo(pass *Pass, fd *ast.FuncDecl) *poolFuncInfo {
	info := &poolFuncInfo{
		gets:          map[poolRef]*ast.CallExpr{},
		returnsPooled: map[poolRef]bool{},
		deferredPuts:  map[poolRef]bool{},
		inlinePuts:    map[poolRef]*ast.CallExpr{},
		releases:      map[poolRef]bool{},
		decl:          fd,
	}
	// pooledVars tracks local variables holding a Get result (directly
	// or through a type assertion / reassignment of the same variable).
	pooledVars := map[types.Object]poolRef{}

	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				walk(n.Call, true)
				return false
			case *ast.FuncLit:
				// A deferred closure's body runs on all paths too.
				walk(n.Body, inDefer)
				return false
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if pool, ok := poolOfGet(pass, rhs); ok && i < len(n.Lhs) {
						if info.gets[pool] == nil {
							info.gets[pool] = getCall(rhs)
						}
						if id, ok := n.Lhs[i].(*ast.Ident); ok {
							if obj := pass.TypesInfo.Defs[id]; obj != nil {
								pooledVars[obj] = pool
							} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
								pooledVars[obj] = pool
							}
						}
					}
				}
			case *ast.CallExpr:
				if pool, ok := poolMethodCall(pass, n, "Get"); ok {
					if info.gets[pool] == nil {
						info.gets[pool] = n
					}
				}
				if pool, ok := poolMethodCall(pass, n, "Put"); ok {
					if inDefer {
						info.deferredPuts[pool] = true
					} else {
						info.inlinePuts[pool] = n
					}
				}
				if fn := staticCallee(pass.TypesInfo, n); fn != nil && fn.Pkg() == pass.Pkg {
					info.calls = append(info.calls, poolCall{fn: fn, site: n, deferred: inDefer})
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					if id, ok := ast.Unparen(res).(*ast.Ident); ok {
						if pool, ok := pooledVars[pass.TypesInfo.Uses[id]]; ok {
							info.returnsPooled[pool] = true
						}
					}
					if pool, ok := poolOfGet(pass, res); ok {
						if info.gets[pool] == nil {
							info.gets[pool] = getCall(res)
						}
						info.returnsPooled[pool] = true
					}
				}
			}
			return true
		})
	}
	walk(fd.Body, false)

	for pool := range info.deferredPuts {
		if _, ok := info.gets[pool]; !ok {
			info.releases[pool] = true
		}
	}
	for pool := range info.inlinePuts {
		if _, ok := info.gets[pool]; !ok {
			info.releases[pool] = true
		}
	}
	return info
}

// poolOfGet reports whether expr is pool.Get(...) or a type assertion
// over one, returning the pool's identity.
func poolOfGet(pass *Pass, expr ast.Expr) (poolRef, bool) {
	expr = ast.Unparen(expr)
	if ta, ok := expr.(*ast.TypeAssertExpr); ok {
		expr = ta.X
	}
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	return poolMethodCall(pass, call, "Get")
}

func getCall(expr ast.Expr) *ast.CallExpr {
	expr = ast.Unparen(expr)
	if ta, ok := expr.(*ast.TypeAssertExpr); ok {
		expr = ta.X
	}
	call, _ := ast.Unparen(expr).(*ast.CallExpr)
	return call
}

// poolMethodCall reports whether call is (sync.Pool).name on a
// resolvable pool variable or field, returning the pool's identity.
func poolMethodCall(pass *Pass, call *ast.CallExpr, name string) (poolRef, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil, false
	}
	fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !methodOnNamed(fn, "sync", "Pool") {
		return nil, false
	}
	// The pool is the innermost selected object: a package-level var
	// (readBufPool.Get) or a struct field (s.ctxPool.Get).
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[x]; obj != nil {
			return obj, true
		}
	case *ast.SelectorExpr:
		if obj := pass.TypesInfo.Uses[x.Sel]; obj != nil {
			return obj, true
		}
	case *ast.UnaryExpr:
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				return obj, true
			}
		}
	}
	return nil, false
}
