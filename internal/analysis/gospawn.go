package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoSpawn requires every `go` statement in the serving path to carry a
// visible termination contract. A goroutine with no contract outlives
// the request (or reload, or compaction) that spawned it; under
// sustained traffic that is a slow OOM, and under test it is a leaked
// prober that poisons the next test's assertions. The contract must be
// visible at the spawn site:
//
//   - the spawned function selects on a ctx.Done()/close-channel (or
//     otherwise blocks on a channel receive that the owner closes), or
//   - it is registered with a sync.WaitGroup in scope (a Done() call,
//     usually deferred, inside the body), or
//   - it takes a context.Context — cancellation then bounds its life, or
//   - the spawn carries `//lint:ignore gospawn <reason>` documenting why
//     it is allowed to be fire-and-forget.
var GoSpawn = &Analyzer{
	Name:   "gospawn",
	Doc:    "every go statement in the serving path has a visible termination contract",
	Anchor: "gospawn",
	Run:    runGoSpawn,
}

func runGoSpawn(pass *Pass) error {
	if !underAny(pass.PkgPath(), "ndss/internal/server", "ndss/internal/shard", "ndss/internal/index") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !hasTerminationContract(pass.TypesInfo, gs.Call) {
				pass.Reportf(gs.Pos(),
					"goroutine has no visible termination contract: select on ctx.Done()/a close channel, register it with a sync.WaitGroup, or pass it a context")
			}
			return true
		})
	}
	return nil
}

// hasTerminationContract reports whether the spawned call's lifetime is
// visibly bounded at the spawn site.
func hasTerminationContract(info *types.Info, call *ast.CallExpr) bool {
	// A context handed to the goroutine (as an argument to the call, or
	// for a func literal as a free variable) bounds its life through
	// cancellation.
	for _, a := range call.Args {
		if isContextExpr(info, a) {
			return true
		}
	}
	lit, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		// Named function/method spawn: without a context argument there
		// is nothing at the spawn site that bounds it.
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			// wg.Done() (usually deferred) registers the goroutine with a
			// WaitGroup the owner waits on.
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && methodOnNamed(fn, "sync", "WaitGroup") {
					found = true
					return false
				}
			}
		case *ast.SelectStmt:
			// A select with a receive case waits on an owner-controlled
			// channel (ctx.Done(), a close channel, a result channel).
			for _, cc := range n.Body.List {
				comm, ok := cc.(*ast.CommClause)
				if !ok || comm.Comm == nil {
					continue
				}
				if commIsReceive(comm.Comm) {
					found = true
					return false
				}
			}
		case *ast.UnaryExpr:
			// A bare blocking receive (`<-done`) is a termination signal.
			if n.Op == token.ARROW {
				found = true
				return false
			}
		case *ast.RangeStmt:
			// Ranging over a channel terminates when the owner closes it.
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
					return false
				}
			}
		case *ast.Ident:
			// A context in scope (free variable or parameter) bounds the
			// body through cancellation checks downstream.
			if obj, ok := info.Uses[n].(*types.Var); ok && isContextType(obj.Type()) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func commIsReceive(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		u, ok := ast.Unparen(s.X).(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW
	case *ast.AssignStmt:
		if len(s.Rhs) != 1 {
			return false
		}
		u, ok := ast.Unparen(s.Rhs[0]).(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW
	}
	return false
}

func isContextExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	return t != nil && isContextType(t)
}
