package analysis_test

import (
	"testing"

	"ndss/internal/analysis"
	"ndss/internal/analysis/atest"
)

// Each fixture directory is type-checked as a package under the import
// path the analyzer's scope expects, then diagnostics are matched
// against the fixture's `// want` comments line by line.

func TestFSIODiscipline(t *testing.T) {
	atest.Run(t, analysis.FSIODiscipline, "testdata/fsiodiscipline", "ndss/internal/index")
}

func TestCtxFlow(t *testing.T) {
	atest.Run(t, analysis.CtxFlow, "testdata/ctxflow", "ndss/internal/search")
}

func TestCtxFlowShard(t *testing.T) {
	atest.Run(t, analysis.CtxFlow, "testdata/ctxflow_shard", "ndss/internal/shard")
}

func TestCtxFlowTrace(t *testing.T) {
	atest.Run(t, analysis.CtxFlow, "testdata/ctxflow_trace", "ndss/internal/shard")
}

func TestPoolPair(t *testing.T) {
	atest.Run(t, analysis.PoolPair, "testdata/poolpair", "ndss/internal/search")
}

func TestMetricHygiene(t *testing.T) {
	atest.Run(t, analysis.MetricHygiene, "testdata/metrichygiene", "ndss/internal/server")
}

func TestMetricHygieneHeaders(t *testing.T) {
	atest.Run(t, analysis.MetricHygiene, "testdata/metrichygiene_headers", "ndss/internal/shard")
}

func TestMonoTimeHotPath(t *testing.T) {
	atest.Run(t, analysis.MonoTime, "testdata/monotime", "ndss/internal/search")
}

func TestMonoTimeModuleWide(t *testing.T) {
	atest.Run(t, analysis.MonoTime, "testdata/monotime_index", "ndss/internal/index")
}

func TestGuardedBy(t *testing.T) {
	atest.Run(t, analysis.GuardedBy, "testdata/guardedby", "ndss/internal/shard")
}

func TestGoSpawn(t *testing.T) {
	atest.Run(t, analysis.GoSpawn, "testdata/gospawn", "ndss/internal/server")
}

// gospawn is scoped to the serving path: the same bare goroutine in
// ndss/internal/obs is not flagged.
func TestGoSpawnScopeGate(t *testing.T) {
	atest.Run(t, analysis.GoSpawn, "testdata/gospawn_scope", "ndss/internal/obs")
}

func TestAtomicHygiene(t *testing.T) {
	atest.Run(t, analysis.AtomicHygiene, "testdata/atomichygiene", "ndss/internal/shard")
}

func TestErrDiscard(t *testing.T) {
	atest.Run(t, analysis.ErrDiscard, "testdata/errdiscard", "ndss/cmd/fix")
}

func TestDirectiveSuppression(t *testing.T) {
	atest.Run(t, analysis.FSIODiscipline, "testdata/directive", "ndss/internal/index")
}

// Out-of-scope packages must produce no diagnostics no matter what the
// code does.
func TestScopeGating(t *testing.T) {
	atest.Run(t, analysis.FSIODiscipline, "testdata/scopegate", "ndss/internal/window")
}

func TestByName(t *testing.T) {
	got, bad := analysis.ByName([]string{"poolpair", "monotime"})
	if bad != "" || len(got) != 2 || got[0].Name != "poolpair" || got[1].Name != "monotime" {
		t.Fatalf("ByName(poolpair,monotime) = %v, %q", got, bad)
	}
	if got, bad := analysis.ByName([]string{"nosuch"}); got != nil || bad != "nosuch" {
		t.Fatalf("ByName(nosuch) = %v, %q; want nil, nosuch", got, bad)
	}
}
