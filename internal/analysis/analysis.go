// Package analysis is ndss-lint: a family of custom static analyzers
// that mechanically enforce the codebase's cross-cutting invariants —
// crash safety (fsiodiscipline), cancellation (ctxflow), object
// pooling (poolpair), metrics hygiene (metrichygiene), monotonic
// timing (monotime), error discipline in the CLIs (errdiscard), and
// the concurrency conventions of the serving tier: mutex-guarded
// fields (guardedby), goroutine termination contracts (gospawn), and
// single-discipline atomics (atomichygiene). Each invariant is
// documented in docs/INVARIANTS.md; diagnostics link there by anchor.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) but is built only on the standard
// library: packages are loaded with `go list -export` and type-checked
// with go/types against compiler export data, so the module stays
// dependency-free. Analyzers are package-local (no facts); every
// invariant here is checkable within one package.
//
// Diagnostics can be suppressed with a justified directive on or
// immediately above the offending statement or declaration:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The reason is mandatory; a bare directive is itself a diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in lint:ignore
	// directives. Lower-case, no spaces.
	Name string
	// Doc is a one-line description shown by ndss-lint -list.
	Doc string
	// Anchor is the docs/INVARIANTS.md anchor documenting the invariant.
	Anchor string
	// Run inspects one package and reports violations through the pass.
	Run func(*Pass) error
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a violation at pos. The INVARIANTS.md anchor is
// appended so every diagnostic points at the documented invariant.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if p.Analyzer.Anchor != "" {
		msg += " [docs/INVARIANTS.md#" + p.Analyzer.Anchor + "]"
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  msg,
	})
}

// PkgPath returns the package's import path.
func (p *Pass) PkgPath() string { return p.Pkg.Path() }

// underAny reports whether pkgPath is one of the given import paths or
// nested below one of them.
func underAny(pkgPath string, prefixes ...string) bool {
	for _, pre := range prefixes {
		if pkgPath == pre || strings.HasPrefix(pkgPath, pre+"/") {
			return true
		}
	}
	return false
}

// staticCallee resolves the called function of a call expression when
// it is a static function or method call, nil otherwise.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPkgCall reports whether call statically invokes pkgPath.name (a
// package-level function).
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := staticCallee(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// methodOnNamed reports whether fn is a method whose receiver's named
// type is pkgPath.typeName (through pointers).
func methodOnNamed(fn *types.Func, pkgPath, typeName string) bool {
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// RunAnalyzers runs every analyzer over every package and returns the
// surviving diagnostics, sorted by position, after applying
// lint:ignore directives. Malformed directives (no reason) are
// reported as diagnostics of the pseudo-analyzer "directive".
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		dirs, dirDiags := collectDirectives(pkg)
		diags = append(diags, dirDiags...)
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				diags:     &pkgDiags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: analyzing %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
		diags = append(diags, filterIgnored(pkgDiags, dirs)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// directive is one parsed lint:ignore comment and the source region it
// covers: its own line plus the whole declaration or statement that
// follows it.
type directive struct {
	names    map[string]bool
	reason   string
	file     string
	line     int // the directive's own line
	from, to int // line range of the covered node (inclusive), 0 if none
}

// A Suppression is one lint:ignore directive, surfaced for the
// `ndss-lint -suppressions` debt report.
type Suppression struct {
	File      string
	Line      int
	Analyzers []string // sorted
	Reason    string   // empty for a malformed (reason-less) directive
}

// Suppressions returns every lint:ignore directive in the given
// packages, sorted by position. Malformed directives (missing reason)
// are included with an empty Reason so the report shows the full debt.
func Suppressions(pkgs []*Package) []Suppression {
	var out []Suppression
	for _, pkg := range pkgs {
		dirs, malformed := collectDirectives(pkg)
		for _, d := range dirs {
			names := make([]string, 0, len(d.names))
			for n := range d.names {
				names = append(names, n)
			}
			sort.Strings(names)
			out = append(out, Suppression{File: d.file, Line: d.line, Analyzers: names, Reason: d.reason})
		}
		for _, d := range malformed {
			out = append(out, Suppression{File: d.Pos.Filename, Line: d.Pos.Line, Analyzers: []string{"?"}})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

var directiveRe = regexp.MustCompile(`^//lint:ignore\s+(\S+)\s*(.*)$`)

// collectDirectives parses every lint:ignore comment in the package
// and resolves the node each one covers.
func collectDirectives(pkg *Package) ([]directive, []Diagnostic) {
	var dirs []directive
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if strings.TrimSpace(m[2]) == "" {
					diags = append(diags, Diagnostic{
						Analyzer: "directive",
						Pos:      pos,
						Message:  "lint:ignore directive requires a reason: //lint:ignore <analyzer> <reason>",
					})
					continue
				}
				d := directive{
					names:  map[string]bool{},
					reason: strings.TrimSpace(m[2]),
					file:   pos.Filename,
					line:   pos.Line,
				}
				for _, n := range strings.Split(m[1], ",") {
					d.names[strings.TrimSpace(n)] = true
				}
				if node := nodeAfter(f, c.End()); node != nil {
					d.from = pkg.Fset.Position(node.Pos()).Line
					d.to = pkg.Fset.Position(node.End()).Line
				}
				dirs = append(dirs, d)
			}
		}
	}
	return dirs, diags
}

// nodeAfter returns the smallest declaration, statement or spec that
// begins at or after pos — the node a preceding directive covers.
func nodeAfter(f *ast.File, pos token.Pos) ast.Node {
	var best ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch n.(type) {
		case ast.Decl, ast.Stmt, ast.Spec:
			if n.Pos() >= pos && (best == nil || n.Pos() < best.Pos()) {
				best = n
			}
		}
		return true
	})
	return best
}

func filterIgnored(diags []Diagnostic, dirs []directive) []Diagnostic {
	if len(dirs) == 0 {
		return diags
	}
	out := diags[:0]
	for _, d := range diags {
		if !ignored(d, dirs) {
			out = append(out, d)
		}
	}
	return out
}

func ignored(d Diagnostic, dirs []directive) bool {
	for _, dir := range dirs {
		if dir.file != d.Pos.Filename || !dir.names[d.Analyzer] {
			continue
		}
		if d.Pos.Line == dir.line || (dir.from > 0 && d.Pos.Line >= dir.from && d.Pos.Line <= dir.to) {
			return true
		}
	}
	return false
}
