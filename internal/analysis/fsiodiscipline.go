package analysis

import (
	"go/ast"
	"go/types"
)

// fsioScope lists the packages whose durable state must only be
// touched through the internal/fsio seam: the index lifecycle (build,
// commit, recovery, reads) is crash-safe precisely because every
// filesystem operation it performs can be fault-injected and fsynced
// by fsio. A direct os call bypasses atomic commit and the crash
// tests silently.
var fsioScope = []string{"ndss/internal/index"}

// fsioForbidden are the package-level functions the seam replaces.
// Reads are included: FaultFS proves read errors surface as wrapped
// *ReadError instead of panics, which only holds for reads that go
// through the seam.
var fsioForbidden = map[string][]string{
	"os": {
		"Create", "CreateTemp", "Open", "OpenFile", "ReadFile", "WriteFile",
		"Mkdir", "MkdirAll", "MkdirTemp", "Rename", "Remove", "RemoveAll",
		"Stat", "Lstat", "Truncate", "Link", "Symlink", "ReadDir", "Chmod",
	},
	"path/filepath": {"Glob", "Walk", "WalkDir"},
	"io/ioutil":     {"ReadFile", "WriteFile", "TempFile", "TempDir", "ReadDir"},
}

// FSIODiscipline reports direct filesystem calls in the index layer
// that bypass the internal/fsio seam (the PR 3 crash-safety boundary).
var FSIODiscipline = &Analyzer{
	Name:   "fsiodiscipline",
	Doc:    "index-layer filesystem operations must go through the internal/fsio seam",
	Anchor: "fsio-discipline",
	Run:    runFSIODiscipline,
}

func runFSIODiscipline(pass *Pass) error {
	if !underAny(pass.PkgPath(), fsioScope...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := staticCallee(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			if fn.Pkg() != nil {
				if names, ok := fsioForbidden[fn.Pkg().Path()]; ok && fn.Type().(*types.Signature).Recv() == nil {
					for _, name := range names {
						if fn.Name() == name {
							pass.Reportf(call.Pos(),
								"direct %s.%s bypasses the fsio.FS crash-safety seam; use the builder's fsio.FS",
								fn.Pkg().Name(), fn.Name())
							return true
						}
					}
				}
			}
			// Methods on *os.File (Sync, WriteString, ...) mean an *os.File
			// escaped into this package without going through fsio.File.
			if methodOnNamed(fn, "os", "File") {
				pass.Reportf(call.Pos(),
					"direct (*os.File).%s bypasses the fsio.File seam; operate on an fsio.File",
					fn.Name())
			}
			return true
		})
	}
	return nil
}
