package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ctxScope lists the library packages whose query path must stay
// cancellable end to end: the PR 2 contract is that a timed-out or
// abandoned request stops issuing I/O at the next checkpoint, which
// only holds if every function on the path takes and forwards a
// context instead of minting its own.
var ctxScope = []string{"ndss/internal/search", "ndss/internal/server", "ndss/internal/core", "ndss/internal/shard"}

// ctxExportScope is the narrower scope in which exported I/O entry
// points must accept a context: the serving path. Offline builders
// (internal/core's index-construction facade) are batch CLI work where
// cancellation is process-level. The shard coordinator is serving-path
// code through and through — every ShardClient entry point fans out
// network or index I/O — so it carries the full obligation.
var ctxExportScope = []string{"ndss/internal/search", "ndss/internal/server", "ndss/internal/shard"}

// traceRootScope is where minting a fresh trace root is always a bug.
// The scatter–gather layer runs mid-request: every span it starts must
// be a child of the caller's trace (obs.TraceFromContext + Child), or
// the coordinator's tree and the shard's remote spans land in separate
// traces and /debug/trace can never assemble one connected flight.
// Only the serving edge (internal/server) may mint roots, and only
// when the inbound request carried no traceparent.
var traceRootScope = []string{"ndss/internal/shard"}

// ioFuncPackages are packages whose package-level functions count as
// performing I/O.
var ioFuncPackages = map[string]bool{"os": true, "net": true}

// ioHTTPFuncs are the net/http package-level functions that actually
// touch the network; constructors and mux registration do not.
var ioHTTPFuncs = map[string]bool{
	"Get": true, "Post": true, "PostForm": true, "Head": true,
	"ListenAndServe": true, "ListenAndServeTLS": true,
	"Serve": true, "ServeTLS": true,
	"ReadRequest": true, "ReadResponse": true,
}

// ioMethodNames are method names that perform index or corpus I/O in
// this codebase (the IndexReader and TextSource surfaces).
var ioMethodNames = map[string]bool{
	"ReadList": true, "ReadListInto": true,
	"ReadListForText": true, "ReadListForTextInto": true,
	"ReadText": true, "ReadAt": true,
}

// CtxFlow enforces the cancellation contract in library code: no
// context.Background()/context.TODO(), context parameters first and
// actually used, context-less wrappers never called from code that
// already holds a context, and exported I/O entry points must accept
// a context.
var CtxFlow = &Analyzer{
	Name:   "ctxflow",
	Doc:    "library query paths must take and forward context.Context; no context.Background/TODO",
	Anchor: "ctxflow",
	Run:    runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	if !underAny(pass.PkgPath(), ctxScope...) {
		return nil
	}
	doesIO := ioClosure(pass)
	for _, f := range pass.Files {
		checkTraceGlobals(pass, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxFlowFunc(pass, fd, doesIO)
		}
	}
	return nil
}

// checkTraceGlobals rejects package-level trace-context state: a trace
// context names one request's position in one trace, so parking it in
// a global either leaks one request's identity into every later
// request or forces all requests into a single shared trace. The only
// sanctioned carrier is the request context.
func checkTraceGlobals(pass *Pass, f *ast.File) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
				if ok && isNamedIn(obj.Type(), "ndss/internal/obs", "TraceContext") {
					pass.Reportf(name.Pos(),
						"package-level obs.TraceContext %s; trace context is per-request state and must flow through the request context",
						name.Name)
				}
			}
		}
	}
}

func checkCtxFlowFunc(pass *Pass, fd *ast.FuncDecl, doesIO map[*types.Func]bool) {
	ctxParam := contextParam(pass, fd)
	hasReq := hasRequestParam(pass, fd)

	// Exported entry points that (transitively, within this package)
	// perform I/O must be cancellable: a context.Context parameter, or
	// an *http.Request that carries one.
	obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if fd.Name.IsExported() && obj != nil && doesIO[obj] && ctxParam == nil && !hasReq &&
		underAny(pass.PkgPath(), ctxExportScope...) {
		pass.Reportf(fd.Name.Pos(),
			"exported %s performs I/O but takes no context.Context; I/O must be cancellable",
			fd.Name.Name)
	}

	if ctxParam != nil {
		// Convention: the context is the first parameter.
		if first := firstParamObj(pass, fd); first != nil && first != ctxParam {
			pass.Reportf(ctxParam.Pos(), "context.Context must be the first parameter")
		}
		if obj != nil && doesIO[obj] && !objUsed(pass, fd, ctxParam) {
			pass.Reportf(fd.Name.Pos(),
				"%s takes a context.Context but never forwards it; its I/O is uncancellable",
				fd.Name.Name)
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPkgCall(pass.TypesInfo, call, "context", "Background") ||
			isPkgCall(pass.TypesInfo, call, "context", "TODO") {
			pass.Reportf(call.Pos(),
				"context.%s in library code severs cancellation; accept and forward a caller context",
				staticCallee(pass.TypesInfo, call).Name())
		}
		// The trace analogue of context.Background: minting a root
		// trace context mid-request detaches every downstream span
		// from the caller's trace.
		if isPkgCall(pass.TypesInfo, call, "ndss/internal/obs", "NewTraceContext") &&
			underAny(pass.PkgPath(), traceRootScope...) {
			pass.Reportf(call.Pos(),
				"obs.NewTraceContext mints a new trace root mid-request; derive a child from the caller's trace context (obs.TraceFromContext + Child)")
		}
		// Inside a function that holds a context, calling the
		// context-less wrapper of a method that has a Context variant
		// drops the deadline on the floor.
		if ctxParam != nil || hasReq {
			if fn := staticCallee(pass.TypesInfo, call); fn != nil && fn.Name() != "" {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && !takesContext(sig) {
					if hasContextVariant(fn) {
						pass.Reportf(call.Pos(),
							"call %sContext and forward the context instead of %s",
							fn.Name(), fn.Name())
					}
				}
			}
		}
		return true
	})
}

// ioClosure computes, over the package's static same-package call
// graph, which functions perform I/O directly or transitively.
func ioClosure(pass *Pass) map[*types.Func]bool {
	direct := map[*types.Func]bool{}
	callees := map[*types.Func][]*types.Func{}
	var fns []*types.Func
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fns = append(fns, obj)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := staticCallee(pass.TypesInfo, call)
				if fn == nil {
					return true
				}
				sig := fn.Type().(*types.Signature)
				switch {
				case fn.Pkg() != nil && ioFuncPackages[fn.Pkg().Path()] && sig.Recv() == nil:
					direct[obj] = true
				case fn.Pkg() != nil && fn.Pkg().Path() == "net/http" && sig.Recv() == nil && ioHTTPFuncs[fn.Name()]:
					direct[obj] = true
				case fn.Pkg() != nil && fn.Pkg().Path() == "ndss/internal/fsio":
					direct[obj] = true
				case sig.Recv() != nil && ioMethodNames[fn.Name()]:
					direct[obj] = true
				case fn.Pkg() == pass.Pkg:
					callees[obj] = append(callees[obj], fn)
				}
				return true
			})
		}
	}
	// Propagate to a fixed point (the graph is tiny).
	closure := direct
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			if closure[fn] {
				continue
			}
			for _, c := range callees[fn] {
				if closure[c] {
					closure[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return closure
}

func contextParam(pass *Pass, fd *ast.FuncDecl) *types.Var {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok && isContextType(v.Type()) {
				return v
			}
		}
	}
	return nil
}

func firstParamObj(pass *Pass, fd *ast.FuncDecl) *types.Var {
	if fd.Type.Params == nil || len(fd.Type.Params.List) == 0 {
		return nil
	}
	field := fd.Type.Params.List[0]
	if len(field.Names) == 0 {
		return nil
	}
	v, _ := pass.TypesInfo.Defs[field.Names[0]].(*types.Var)
	return v
}

func hasRequestParam(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok && isHTTPRequest(v.Type()) {
				return true
			}
		}
	}
	return false
}

func objUsed(pass *Pass, fd *ast.FuncDecl, obj *types.Var) bool {
	used := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			used = true
			return false
		}
		return !used
	})
	return used
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func isHTTPRequest(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Request" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

func takesContext(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// hasContextVariant reports whether fn's receiver type also has a
// method named fn.Name()+"Context".
func hasContextVariant(fn *types.Func) bool {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	variant := fn.Name() + "Context"
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(typ)
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == variant {
				return true
			}
		}
	}
	return false
}
