package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// errdiscardScope: the CLIs were excluded from earlier cleanup passes;
// this closes that gap mechanically.
var errdiscardScope = []string{"ndss/cmd"}

// errdiscardAllowed are callees whose error is conventionally ignored:
// terminal printing (an error writing to a dead stdout has no
// recovery) and best-effort cleanup.
var errdiscardAllowed = map[string]bool{
	"fmt": true,
}

// ErrDiscard flags statements in cmd/ that silently drop an error
// result: a CLI that ignores an error exits 0 on failure, which makes
// scripted experiment pipelines (EXPERIMENTS.md) silently wrong.
var ErrDiscard = &Analyzer{
	Name:   "errdiscard",
	Doc:    "cmd/ must not discard error results (assign and handle, or explicitly assign to _)",
	Anchor: "errdiscard",
	Run:    runErrDiscard,
}

func runErrDiscard(pass *Pass) error {
	if !underAny(pass.PkgPath(), errdiscardScope...) && !strings.HasPrefix(pass.PkgPath(), "ndss/cmd/") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			// Only bare expression statements discard results; defers of
			// cleanup calls (f.Close) are conventional.
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := staticCallee(pass.TypesInfo, call)
			if fn != nil && fn.Pkg() != nil && errdiscardAllowed[fn.Pkg().Path()] {
				return true
			}
			tv, ok := pass.TypesInfo.Types[call]
			if !ok {
				return true
			}
			if resultHasError(tv.Type) {
				name := "call"
				if fn != nil {
					name = fn.Name()
				}
				pass.Reportf(call.Pos(),
					"%s returns an error that is silently discarded; handle it or assign to _ explicitly", name)
			}
			return true
		})
	}
	return nil
}

func resultHasError(t types.Type) bool {
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
