package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicHygiene enforces that a field is accessed through exactly one
// synchronization discipline:
//
//   - a field whose address is ever passed to a sync/atomic function
//     (atomic.LoadInt64(&x.f), …) must never be read or written plainly
//     — the plain access races with every atomic one, and on 32-bit
//     targets can tear;
//   - a field of a typed atomic (atomic.Int64, atomic.Bool, …) must only
//     be used through its methods — copying or reassigning the value
//     smuggles a non-atomic load/store past the type's protection (and
//     copies its internal noCopy state);
//   - a field cannot be both `// guarded by <mu>` and accessed
//     atomically: two half-disciplines compose to none — writers under
//     the mutex do not exclude atomic readers, so invariants that span
//     the field and its siblings are not actually protected.
var AtomicHygiene = &Analyzer{
	Name:   "atomichygiene",
	Doc:    "atomic fields are never accessed plainly, and never also mutex-guarded",
	Anchor: "atomichygiene",
	Run:    runAtomicHygiene,
}

// atomicFns are the sync/atomic package-level functions whose first
// argument is the address of the shared word.
var atomicFns = map[string]bool{}

func init() {
	for _, op := range []string{"Load", "Store", "Add", "Swap", "CompareAndSwap"} {
		for _, t := range []string{"Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer"} {
			atomicFns[op+t] = true
		}
	}
}

// typedAtomicNames are the method-based atomic types in sync/atomic.
var typedAtomicNames = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true,
	"Uint32": true, "Uint64": true, "Uintptr": true,
	"Value": true, "Pointer": true,
}

func isTypedAtomic(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && typedAtomicNames[obj.Name()]
}

func runAtomicHygiene(pass *Pass) error {
	if !strings.HasPrefix(pass.PkgPath(), "ndss") {
		return nil
	}
	info := pass.TypesInfo

	// Pass 1: find every variable whose address feeds a sync/atomic
	// function, and remember the exact &x operands so pass 2 can skip
	// them.
	rawAtomic := map[*types.Var]bool{}   // vars accessed via atomic.XxxT(&v, …)
	atomicOperand := map[ast.Expr]bool{} // the &v operand expressions themselves
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := staticCallee(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" ||
				!atomicFns[fn.Name()] || fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			u, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || u.Op != token.AND {
				return true
			}
			if v := varOf(info, u.X); v != nil {
				rawAtomic[v] = true
				atomicOperand[ast.Unparen(u.X)] = true
			}
			return true
		})
	}

	// Pass 2: plain uses of raw-atomic vars, and value uses of typed
	// atomics. Parent tracking distinguishes x.f.Load() (fine) from
	// y := x.f (a torn copy).
	for _, f := range pass.Files {
		var parents []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				parents = parents[:len(parents)-1]
				return false
			}
			defer func() { parents = append(parents, n) }()
			var v *types.Var
			var pos token.Pos
			switch n := n.(type) {
			case *ast.SelectorExpr:
				v, _ = info.Uses[n.Sel].(*types.Var)
				pos = n.Sel.Pos()
			case *ast.Ident:
				// Skip the Sel half of a selector (handled above) and
				// declarations/field keys.
				if len(parents) > 0 {
					if sel, ok := parents[len(parents)-1].(*ast.SelectorExpr); ok && sel.Sel == n {
						return true
					}
					if kv, ok := parents[len(parents)-1].(*ast.KeyValueExpr); ok && kv.Key == n {
						return true
					}
				}
				v, _ = info.Uses[n].(*types.Var)
				pos = n.Pos()
			default:
				return true
			}
			if v == nil {
				return true
			}
			expr := n.(ast.Expr)
			if rawAtomic[v] && !atomicOperand[expr] && !isAtomicAddressOf(parents, expr) {
				pass.Reportf(pos,
					"%s is accessed with sync/atomic elsewhere; a plain access races with the atomic ones — use the atomic API for every access", v.Name())
				return true
			}
			if isTypedAtomic(v.Type()) && !isMethodReceiverUse(parents, expr) && !isAddressOf(parents, expr) {
				pass.Reportf(pos,
					"%s is a typed atomic (%s); copying or reassigning the value bypasses its atomicity — use its Load/Store/Add methods", v.Name(), typeShort(v.Type()))
			}
			return true
		})
	}

	// Pass 3: the same field must not be both mutex-guarded and atomic.
	guarded := collectGuardedFields(pass, false)
	for v, anno := range guarded {
		if rawAtomic[v] || isTypedAtomic(v.Type()) {
			pass.Reportf(anno.pos,
				"field %s mixes disciplines: it is `// guarded by %s` and accessed atomically; pick one — mutex writers do not exclude atomic readers", v.Name(), anno.mu)
		}
	}
	return nil
}

// varOf resolves e (an identifier or field selector) to its variable.
func varOf(info *types.Info, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		return v
	case *ast.SelectorExpr:
		v, _ := info.Uses[e.Sel].(*types.Var)
		return v
	case *ast.IndexExpr:
		return varOf(info, e.X)
	}
	return nil
}

// isMethodReceiverUse reports whether expr is the receiver of a method
// call or field selection, i.e. the x.f in x.f.Load().
func isMethodReceiverUse(parents []ast.Node, expr ast.Expr) bool {
	for i := len(parents) - 1; i >= 0; i-- {
		switch p := parents[i].(type) {
		case *ast.SelectorExpr:
			if p.X == expr {
				return true
			}
			if p.Sel == expr {
				expr = p // x.f itself may be the receiver one level up
				continue
			}
			return false
		case *ast.IndexExpr:
			// counts[i].Load(): the index expression is the receiver.
			if p.X == expr {
				expr = p
				continue
			}
			return false
		case *ast.ParenExpr:
			expr = p
		default:
			return false
		}
	}
	return false
}

// isAddressOf reports whether expr appears as &expr (possibly through
// parens/indexing) — taking the address of a typed atomic to pass it
// along is fine; the callee still uses the methods.
func isAddressOf(parents []ast.Node, expr ast.Expr) bool {
	for i := len(parents) - 1; i >= 0; i-- {
		switch p := parents[i].(type) {
		case *ast.UnaryExpr:
			return p.Op == token.AND && p.X == expr
		case *ast.ParenExpr, *ast.IndexExpr:
			expr = p.(ast.Expr)
		default:
			return false
		}
	}
	return false
}

// isAtomicAddressOf reports whether expr sits under an & operand (its
// enclosing &x was already validated as a sync/atomic argument by the
// atomicOperand map at the outer level, e.g. s.f inside &s.f where the
// selector, not the ident, was recorded).
func isAtomicAddressOf(parents []ast.Node, expr ast.Expr) bool {
	// Walk up through the selector chain to find whether an enclosing
	// expression was recorded as an atomic operand is handled by the
	// caller via atomicOperand; here we only allow the ident inside a
	// recorded selector (x in x.f) — plain base reads are fine.
	if len(parents) == 0 {
		return false
	}
	if sel, ok := parents[len(parents)-1].(*ast.SelectorExpr); ok && sel.X == expr {
		return true // base of a selector: the access is to the field, not this var
	}
	return false
}

func typeShort(t types.Type) string {
	s := t.String()
	if i := strings.LastIndex(s, "/"); i >= 0 {
		return s[i+1:]
	}
	return s
}
