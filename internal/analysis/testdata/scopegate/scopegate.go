// Fixture with an fsio violation but loaded under a non-index import
// path: scope gating must keep the analyzer silent here.
package window

import "os"

func writeOutsideScope(path string) error {
	return os.WriteFile(path, []byte("x"), 0o644)
}
