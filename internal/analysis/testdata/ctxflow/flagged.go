// Fixture for the cancellation contract in the serving path
// (ndss/internal/search): exported I/O entry points must take and
// forward a context.
package search

import (
	"context"
	"os"
)

// An exported entry point that does I/O with no way to cancel it.
func ReadAll(path string) ([]byte, error) { // want `exported ReadAll performs I/O but takes no context\.Context`
	return os.ReadFile(path)
}

// Transitive I/O through a same-package helper is still I/O.
func LoadReport(path string) ([]byte, error) { // want `exported LoadReport performs I/O but takes no context\.Context`
	return slurp(path)
}

func slurp(path string) ([]byte, error) {
	return os.ReadFile(path)
}

// Minting a context severs the caller's deadline.
func refresh(s *Store) error {
	return s.FetchContext(context.Background(), "state") // want `context\.Background in library code severs cancellation`
}

// A context that is accepted but never forwarded is decoration.
func Fetch(ctx context.Context, path string) ([]byte, error) { // want `Fetch takes a context\.Context but never forwards it`
	return os.ReadFile(path)
}

// The context goes first by convention.
func Stat(path string, ctx context.Context) (int64, error) { // want `context\.Context must be the first parameter`
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// Store has a context-less compatibility wrapper next to the real
// context-taking method.
type Store struct{}

func (s *Store) Fetch(key string) error {
	return s.FetchContext(context.TODO(), key) // want `context\.TODO in library code severs cancellation`
}

func (s *Store) FetchContext(ctx context.Context, key string) error {
	return ctx.Err()
}

// Holding a context and calling the context-less wrapper drops the
// deadline on the floor.
func Sync(ctx context.Context, s *Store) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.Fetch("state") // want `call FetchContext and forward the context instead of Fetch`
}
