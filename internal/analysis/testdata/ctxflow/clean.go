package search

import (
	"context"
	"net/http"
	"os"
)

// The sanctioned shape: context first, actually consulted before I/O.
func ReadAllContext(ctx context.Context, path string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return os.ReadFile(path)
}

// An *http.Request carries the caller's context, so handlers are
// cancellable without a separate parameter.
func ServeDump(w http.ResponseWriter, r *http.Request) {
	data, err := ReadAllContext(r.Context(), "dump")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	_, _ = w.Write(data)
}

// Unexported helpers may stay context-free; the exported entry points
// above them carry the obligation.
func readSmall(path string) ([]byte, error) {
	return os.ReadFile(path)
}

// Exported functions that do no I/O need no context.
func Normalize(key string) string {
	if key == "" {
		return "default"
	}
	return key
}
