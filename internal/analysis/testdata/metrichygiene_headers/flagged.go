// Violations of the propagation-header rule: the header names spelled
// as string literals at net/http.Header call sites. A typo here —
// "X-Request-Id", "trace-parent" — compiles fine and silently breaks
// propagation, so the names must come from the obs package constants.
package shard

import "net/http"

func forwardLiteral(hdr http.Header, id string) {
	hdr.Set("X-Request-ID", id)                    // want `propagation header "X-Request-ID" spelled as a string literal`
	hdr.Set("Traceparent", "00-0123-4567-01")      // want `propagation header "Traceparent" spelled as a string literal`
	if got := hdr.Get("x-request-id"); got == "" { // want `propagation header "x-request-id" spelled as a string literal`
		hdr.Add("traceparent", "00-0123-4567-01") // want `propagation header "traceparent" spelled as a string literal`
	}
	hdr.Del("TRACEPARENT") // want `propagation header "TRACEPARENT" spelled as a string literal`
}
