// Fixture for the sanctioned propagation-header shape: the names come
// from constants (in the real module, obs.HeaderRequestID and
// obs.HeaderTraceparent), and unrelated header literals stay legal.
package shard

import "net/http"

// Mirrors the obs package constants; the analyzer accepts any constant
// reference, it only rejects inline string literals.
const (
	headerRequestID   = "X-Request-ID"
	headerTraceparent = "Traceparent"
)

func forwardConst(hdr http.Header, id, tp string) {
	hdr.Set(headerRequestID, id)
	hdr.Set(headerTraceparent, tp)
	_ = hdr.Get(headerRequestID)
}

// Non-propagation headers may stay literal: the rule protects the two
// names that must match across processes, not all header usage.
func contentType(hdr http.Header) {
	hdr.Set("Content-Type", "application/json")
	hdr.Del("Accept-Encoding")
}
