// Fixture for the suppression directive itself, run under
// fsiodiscipline at ndss/internal/index.
package index

import "os"

// A justified directive suppresses the diagnostic on the next
// statement.
func suppressed(dir string) error {
	//lint:ignore fsiodiscipline bootstrap path runs before the fsio seam exists
	return os.MkdirAll(dir, 0o755)
}

// A directive for a different analyzer does not apply.
func wrongAnalyzer(dir string) error {
	//lint:ignore ctxflow not the analyzer reporting here
	return os.MkdirAll(dir, 0o755) // want `direct os\.MkdirAll bypasses the fsio\.FS crash-safety seam`
}

// Naming several analyzers covers each of them.
func multiName(dir string) error {
	//lint:ignore fsiodiscipline,ctxflow bootstrap path predates both seams
	return os.MkdirAll(dir, 0o755)
}
