// Fixture: the locking patterns the serving tier actually uses must
// all pass — deferred unlock, explicit unlock with local copies,
// RLock'd reads, early-return unlock branches, switch under lock,
// address-of under the full lock, and *Locked callee helpers.
package shard

import "sync"

type cbox struct {
	mu   sync.Mutex
	n    int   // guarded by mu
	ring []int // guarded by mu
	cap  int   // immutable after construction: deliberately unannotated
}

type crwbox struct {
	mu  sync.RWMutex
	val int // guarded by mu
}

func newCbox(capacity int) *cbox {
	return &cbox{cap: capacity} // composite literal keys are not accesses
}

func (b *cbox) add(delta int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n += delta
}

func (b *cbox) snapshot() []int {
	b.mu.Lock()
	out := make([]int, len(b.ring))
	copy(out, b.ring)
	b.mu.Unlock()
	return out
}

func (b *cbox) earlyReturn() int {
	b.mu.Lock()
	if b.n == 0 {
		b.mu.Unlock()
		return 0
	}
	n := b.n
	b.mu.Unlock()
	return n
}

func (b *cbox) classify(v int) string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case v < b.n:
		return "lt"
	default:
		return "ge"
	}
}

func (b *cbox) push(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ring := &b.ring
	*ring = append(*ring, v)
	b.ring[0] = v
	for i := range b.ring {
		b.ring[i]++
	}
}

// sumLocked documents (by the Locked suffix) that its caller holds
// b.mu; the call sites are checked instead.
func (b *cbox) sumLocked() int { return b.n }

func (b *cbox) total() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sumLocked()
}

func (r *crwbox) read() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.val
}

func (r *crwbox) write(v int) {
	r.mu.Lock()
	r.val = v
	r.mu.Unlock()
}
