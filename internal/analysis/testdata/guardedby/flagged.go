// Fixture: fields annotated `// guarded by <mu>` accessed without the
// named mutex held.
package shard

import "sync"

type box struct {
	mu sync.Mutex
	n  int   // guarded by mu
	s  []int // guarded by mu
}

type rwbox struct {
	mu  sync.RWMutex
	val int // guarded by mu
}

type badbox struct {
	mu sync.Mutex
	x  int // guarded by lock // want `names no sibling sync\.Mutex`
}

func (b *box) badRead() int {
	return b.n // want `field n is read without b\.mu held`
}

func (b *box) badWrite() {
	b.n = 0 // want `field n is written without b\.mu held`
}

func (b *box) badAfterUnlock() int {
	b.mu.Lock()
	n := b.n
	b.mu.Unlock()
	return n + b.n // want `field n is read without b\.mu held`
}

func (r *rwbox) badWriteUnderRLock() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.val = 1 // want `RLock is not enough to write`
}

func (b *box) badAfterConditionalUnlock(flush bool) {
	b.mu.Lock()
	if flush {
		b.s = nil
		b.mu.Unlock()
	}
	b.n++ // want `field n is written without b\.mu held`
}

// A closure may run on another goroutine or after the deferred unlock;
// the lock held at creation proves nothing at call time.
func (b *box) badClosure() func() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return func() int { return b.n } // want `field n is read without b\.mu held`
}

func (b *badbox) useX() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.x
}
