// Fixture: gospawn is scoped to the serving path (server, shard,
// index); a fire-and-forget goroutine elsewhere is not its business.
package obs

func backgroundFlush() {
	go func() {
		work()
	}()
}

func work() {}
