// Fixture: direct filesystem calls inside the index layer must be
// flagged — they bypass the fsio crash-safety seam.
package index

import (
	"os"
	"path/filepath"
)

func writeDirect(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil { // want `direct os\.MkdirAll bypasses the fsio\.FS crash-safety seam`
		return err
	}
	f, err := os.Create(filepath.Join(dir, "x")) // want `direct os\.Create bypasses the fsio\.FS crash-safety seam`
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil { // want `direct \(\*os\.File\)\.Sync bypasses the fsio\.File seam`
		return err
	}
	return f.Close() // want `direct \(\*os\.File\)\.Close bypasses the fsio\.File seam`
}

func listDirect(dir string) ([]string, error) {
	return filepath.Glob(filepath.Join(dir, "*.list")) // want `direct filepath\.Glob bypasses the fsio\.FS crash-safety seam`
}

func readDirect(path string) ([]byte, error) {
	return os.ReadFile(path) // want `direct os\.ReadFile bypasses the fsio\.FS crash-safety seam`
}
