// Fixture: direct filesystem calls inside the index layer must be
// flagged — they bypass the fsio crash-safety seam.
package index

import (
	"os"
	"path/filepath"
)

func writeDirect(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil { // want `direct os\.MkdirAll bypasses the fsio\.FS crash-safety seam`
		return err
	}
	f, err := os.Create(filepath.Join(dir, "x")) // want `direct os\.Create bypasses the fsio\.FS crash-safety seam`
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil { // want `direct \(\*os\.File\)\.Sync bypasses the fsio\.File seam`
		return err
	}
	return f.Close() // want `direct \(\*os\.File\)\.Close bypasses the fsio\.File seam`
}

func listDirect(dir string) ([]string, error) {
	return filepath.Glob(filepath.Join(dir, "*.list")) // want `direct filepath\.Glob bypasses the fsio\.FS crash-safety seam`
}

func readDirect(path string) ([]byte, error) {
	return os.ReadFile(path) // want `direct os\.ReadFile bypasses the fsio\.FS crash-safety seam`
}

// The compactor's staging-swap and segment-sweep idioms must also run
// through the seam: a direct rename skips the backup/sync protocol and
// a direct sweep can delete a segment the manifest still references.
func swapDirect(dir, staging string) error {
	if err := os.Rename(staging, dir); err != nil { // want `direct os\.Rename bypasses the fsio\.FS crash-safety seam`
		return err
	}
	return nil
}

func sweepDirect(dir string) error {
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*")) // want `direct filepath\.Glob bypasses the fsio\.FS crash-safety seam`
	if err != nil {
		return err
	}
	for _, s := range segs {
		if err := os.RemoveAll(s); err != nil { // want `direct os\.RemoveAll bypasses the fsio\.FS crash-safety seam`
			return err
		}
	}
	return os.Remove(filepath.Join(dir, "tomb-000000-x")) // want `direct os\.Remove bypasses the fsio\.FS crash-safety seam`
}
