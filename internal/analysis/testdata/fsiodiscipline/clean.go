package index

import (
	"fmt"
	"io"
	"os"
)

// fileLike stands in for fsio.File: operating on the seam's interface
// is the sanctioned path.
type fileLike interface {
	io.WriteCloser
	Sync() error
}

func writeThroughSeam(f fileLike, data []byte) error {
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// Non-call uses of the os package (constants, error sentinels) are not
// filesystem operations.
func describe(err error) string {
	if err == os.ErrNotExist {
		return "missing"
	}
	return fmt.Sprintf("sep=%c err=%v", os.PathSeparator, err)
}

// fsLike stands in for fsio.FS: the compactor's staging swap and
// segment sweep are sanctioned when they run through the seam.
type fsLike interface {
	Rename(old, new string) error
	RemoveAll(path string) error
	Glob(pattern string) ([]string, error)
	SyncDir(dir string) error
}

func compactThroughSeam(fsys fsLike, dir, staging string) error {
	if err := fsys.Rename(staging, dir); err != nil {
		return err
	}
	if err := fsys.SyncDir(dir); err != nil {
		return err
	}
	segs, err := fsys.Glob(dir + "/seg-*")
	if err != nil {
		return err
	}
	for _, s := range segs {
		if err := fsys.RemoveAll(s); err != nil {
			return err
		}
	}
	return nil
}
