package index

import (
	"fmt"
	"io"
	"os"
)

// fileLike stands in for fsio.File: operating on the seam's interface
// is the sanctioned path.
type fileLike interface {
	io.WriteCloser
	Sync() error
}

func writeThroughSeam(f fileLike, data []byte) error {
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// Non-call uses of the os package (constants, error sentinels) are not
// filesystem operations.
func describe(err error) string {
	if err == os.ErrNotExist {
		return "missing"
	}
	return fmt.Sprintf("sep=%c err=%v", os.PathSeparator, err)
}
