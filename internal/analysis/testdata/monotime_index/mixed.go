// Fixture for a non-hot module package (ndss/internal/index): plain
// time.Now/time.Since are fine, but time.Time.Sub stays banned
// module-wide.
package index

import "time"

func timedBuild() time.Duration {
	start := time.Now()
	build()
	return time.Since(start)
}

func buildDelta(t0, t1 time.Time) time.Duration {
	return t1.Sub(t0) // want `time\.Time\.Sub is wall-clock arithmetic`
}

func build() {}
