// Fixture for CLI error discipline (ndss/cmd/...): a bare statement
// that drops an error makes the tool exit 0 on failure.
package main

import (
	"fmt"
	"os"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fix:", err)
		os.Exit(1)
	}
}

func run() error {
	save("state")     // want `save returns an error that is silently discarded`
	cleanup()         // fine: no error result
	_ = save("state") // fine: explicit discard
	fmt.Println("ok") // fine: terminal printing is allowlisted
	n, err := write("x")
	if err != nil {
		return err
	}
	_ = n
	return save("final")
}

func save(name string) error {
	_ = name
	return nil
}

func write(name string) (int, error) {
	return len(name), nil
}

func cleanup() {}
