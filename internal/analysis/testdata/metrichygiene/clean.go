package server

import (
	"fmt"
	"net/http"
)

// Catalog-shaped names, snake_case keys, enum-valued labels.
func writeCatalog(w *promWriter, outcome string) {
	w.header("ndss_requests_total", "requests by outcome", "counter")
	w.sample("ndss_requests_total", fmt.Sprintf(`endpoint=%q,outcome=%q`, "search", outcome), 1)
	w.header("go_goroutines", "goroutine count", "gauge")
	w.histogramSamples("ndss_request_seconds", `endpoint="search"`, nil)
}

// The sanctioned handler shape: admit, then one deferred observation.
func (s *server) serveDeferred(w http.ResponseWriter) {
	if !s.admit() {
		http.Error(w, "busy", http.StatusServiceUnavailable)
		return
	}
	ok := true
	defer s.met.observe(ok)
	w.WriteHeader(http.StatusOK)
}

// An inline observation immediately before return is the cache-hit
// fast path.
func (s *server) serveCacheHit(hit bool) {
	if !s.admit() {
		return
	}
	if hit {
		s.met.observe(true)
		return
	}
	defer s.met.observe(false)
}
