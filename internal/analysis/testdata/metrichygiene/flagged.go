package server

import (
	"fmt"
	"net/http"
)

// Metric names must match the documented catalog shape.
func writeBadNames(w *promWriter) {
	w.header("ndss_requestTotal", "requests", "counter") // want `metric name "ndss_requestTotal" does not match the catalog shape`
	w.sample("http_requests_total", `outcome="ok"`, 1)   // want `metric name "http_requests_total" does not match the catalog shape`
}

// Label keys are snake_case.
func writeBadLabel(w *promWriter, outcome string) {
	w.sample("ndss_requests_total", fmt.Sprintf(`Outcome=%q`, outcome), 1) // want `label key "Outcome" is not snake_case`
}

// Label values must never come from request input: every distinct URL
// would mint a new series.
func writeTainted(w *promWriter, r *http.Request) {
	w.sample("ndss_requests_total", fmt.Sprintf(`path=%q`, r.URL.Path), 1) // want `label value derived from request input \(r\)`
}

// Observing latency without admitting breaks the exactly-once pairing
// with the in-flight gate.
func (s *server) serveUnadmitted(ok bool) {
	defer s.met.observe(ok) // want `latency observed outside an admission-guarded function`
}

// An inline observe not immediately followed by return double-counts
// once the deferred observation also fires.
func (s *server) serveDoubleCount(w http.ResponseWriter) {
	if !s.admit() {
		return
	}
	s.met.observe(true) // want `inline latency observation must be immediately followed by return`
	w.WriteHeader(http.StatusOK)
}

// Two deferred observations can both fire; the diagnostic lands on the
// first observe site.
func (s *server) serveTwoDeferred() {
	if !s.admit() {
		return
	}
	defer s.met.observe(true) // want `multiple deferred latency observations in one function`
	defer s.met.observe(false)
}
