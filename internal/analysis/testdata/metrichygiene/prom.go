// Fixture scaffolding mirroring internal/server's exposition plumbing:
// a promWriter with emission methods, a metrics struct with the
// exactly-once observe, and the admission gate.
package server

import "strings"

type promWriter struct {
	b strings.Builder
}

func (w *promWriter) header(name, help, typ string) {
	w.b.WriteString("# HELP " + name + " " + help + "\n# TYPE " + name + " " + typ + "\n")
}

func (w *promWriter) sample(name, labels string, v float64) {
	w.b.WriteString(name + "{" + labels + "} ...\n")
	_ = v
}

func (w *promWriter) histogramSamples(name, labels string, buckets []float64) {
	w.b.WriteString(name + "{" + labels + "}\n")
	_ = buckets
}

type metrics struct {
	count int
}

func (m *metrics) observe(ok bool) {
	m.count++
	_ = ok
}

type server struct {
	met metrics
	sem chan struct{}
}

func (s *server) admit() bool {
	select {
	case s.sem <- struct{}{}:
		return true
	default:
		return false
	}
}
