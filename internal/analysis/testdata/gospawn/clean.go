// Fixture: every accepted termination contract — WaitGroup
// registration, ctx.Done() select, bounded receive, channel range,
// context argument/free variable, and a justified suppression.
package server

import (
	"context"
	"sync"
)

func withWaitGroup(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick()
	}()
}

func withSelect(ctx context.Context, stop chan struct{}) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-stop:
				return
			}
		}
	}()
}

func withReceive(done chan struct{}) {
	go func() {
		tick()
		<-done
	}()
}

func withRange(jobs chan int) {
	go func() {
		for range jobs {
			tick()
		}
	}()
}

func withCtxFreeVar(ctx context.Context) {
	go func() {
		run(ctx)
	}()
}

func namedWithCtx(ctx context.Context) {
	go run(ctx)
}

func justified() {
	//lint:ignore gospawn one-shot best-effort warmup; exits after a bounded scan
	go tick()
}

func run(context.Context) {}
