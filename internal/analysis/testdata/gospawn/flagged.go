// Fixture: goroutines spawned in the serving path without a visible
// termination contract.
package server

import "time"

func fireAndForget() {
	go func() { // want `no visible termination contract`
		for {
			time.Sleep(time.Second)
		}
	}()
}

func namedNoContract() {
	go tick() // want `no visible termination contract`
}

func loopSpawner(n int) {
	for i := 0; i < n; i++ {
		go func() { // want `no visible termination contract`
			tick()
		}()
	}
}

func tick() {}
