package search

// The sanctioned shape: deferred Put right after the Get.
func deferredPut(n int) int {
	b, _ := bufPool.Get().([]byte)
	defer bufPool.Put(b[:0])
	if n < 0 {
		return 0
	}
	b = append(b[:0], make([]byte, n)...)
	return len(b)
}

// getBuf is an acquire helper: the Get result escapes to the caller,
// which takes over the Put obligation.
func getBuf() []byte {
	b, _ := bufPool.Get().([]byte)
	return b
}

// putBuf is the matching release helper.
func putBuf(b []byte) {
	bufPool.Put(b[:0])
}

// Helper pairs satisfy the obligation when the release is deferred.
func useHelpersDeferred() int {
	b := getBuf()
	defer putBuf(b)
	b = append(b, 1, 2, 3)
	return len(b)
}
