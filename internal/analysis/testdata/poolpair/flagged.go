// Fixture for sync.Pool pairing in the query path
// (ndss/internal/search): every Get needs a dominating deferred Put.
package search

import "sync"

var bufPool = sync.Pool{New: func() any { return make([]byte, 0, 64) }}

// A Put on the fall-through path leaks the buffer on early returns and
// panics; it must be deferred.
func inlinePut(n int) int {
	b, _ := bufPool.Get().([]byte)
	if n < 0 {
		return 0 // leaks b
	}
	b = append(b[:0], make([]byte, n)...)
	total := len(b)
	bufPool.Put(b[:0]) // want `sync\.Pool Put must be deferred`
	return total
}

// No Put at all.
func noPut() []byte {
	b, _ := bufPool.Get().([]byte) // want `sync\.Pool Get without a deferred Put or release`
	out := append([]byte(nil), b...)
	return out
}

// Calling an acquire helper creates the same obligation as a direct
// Get.
func useAcquireHelper() int {
	b := getBuf() // want `object acquired from getBuf without a deferred Put or release`
	return cap(b)
}
