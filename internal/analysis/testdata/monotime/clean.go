package search

import (
	"time"

	"ndss/internal/obs"
)

// Durations through the obs monotonic helpers are the sanctioned path
// in the hot scope.
func timeStageMono() time.Duration {
	start := obs.NowMono()
	work()
	return obs.SinceMono(start)
}

// Plain duration arithmetic never involves the wall clock.
func budgetLeft(total, spent time.Duration) time.Duration {
	return total - spent
}
