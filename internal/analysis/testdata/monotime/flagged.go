// Fixture for the pipeline hot scope (ndss/internal/search): ad-hoc
// clock reads and wall-clock subtraction are both flagged.
package search

import "time"

func timeStage() time.Duration {
	start := time.Now() // want `time\.Now in the pipeline hot path`
	work()
	return time.Since(start) // want `time\.Since in the pipeline hot path`
}

func wallClockDelta(t0, t1 time.Time) time.Duration {
	return t1.Sub(t0) // want `time\.Time\.Sub is wall-clock arithmetic`
}

func work() {}
