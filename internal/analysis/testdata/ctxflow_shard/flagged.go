// Violations of the cancellation contract at the scatter–gather layer:
// shard transports and coordinator fan-out paths that sever or ignore
// the caller's deadline.
package shard

import (
	"context"
	"net/http"
)

// legacyClient is a transport with a context-less wrapper beside the
// Context variant — the internal/search compatibility-shim shape.
type legacyClient struct {
	base string
}

// Search is an exported entry point doing network I/O with no way to
// cancel it: a shard that stops answering pins the fan-out goroutine
// forever.
func (c *legacyClient) Search(query []uint32) ([]byte, error) { // want `exported Search performs I/O but takes no context\.Context`
	resp, err := http.Post(c.base+"/search", "application/json", nil)
	if err != nil {
		return nil, err
	}
	resp.Body.Close()
	return nil, nil
}

func (c *legacyClient) SearchContext(ctx context.Context, query []uint32) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/search", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	resp.Body.Close()
	return nil, nil
}

// Probe takes the shard name before the context.
func (c *legacyClient) Probe(name string, ctx context.Context) error { // want `context\.Context must be the first parameter`
	_, err := c.SearchContext(ctx, nil)
	return err
}

// FanOutDetached severs the caller's deadline: every leg runs under a
// fresh root context, so a timed-out query keeps hammering the shards.
func FanOutDetached(shards []*legacyClient, query []uint32) error {
	for _, s := range shards {
		if _, err := s.SearchContext(context.Background(), query); err != nil { // want `context\.Background in library code severs cancellation`
			return err
		}
	}
	return nil
}

// FanOutDropped holds a context but calls the context-less wrapper,
// dropping the deadline at the transport boundary.
func FanOutDropped(ctx context.Context, shards []*legacyClient, query []uint32) error {
	for _, s := range shards {
		if _, err := s.Search(query); err != nil { // want `call SearchContext and forward the context instead of Search`
			return err
		}
	}
	return ctx.Err()
}

// QueryAll accepts a context and then ignores it while doing I/O.
func QueryAll(ctx context.Context, shards []*legacyClient) error { // want `QueryAll takes a context\.Context but never forwards it; its I/O is uncancellable`
	for _, s := range shards {
		resp, err := http.Get(s.base + "/healthz")
		if err != nil {
			return err
		}
		resp.Body.Close()
	}
	return nil
}
