// Fixture for the cancellation contract at the scatter–gather layer
// (ndss/internal/shard): every ShardClient entry point takes the
// context first and forwards it into the leg's work, so a coordinator
// deadline cancels shard I/O promptly.
package shard

import (
	"context"
	"net/http"
	"strings"
)

// remote is an HTTP transport to one shard.
type remote struct {
	base string
	hc   *http.Client
}

// SearchContext is the sanctioned transport shape: context first,
// threaded into the outbound request.
func (r *remote) SearchContext(ctx context.Context, query []uint32) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+"/search", strings.NewReader("{}"))
	if err != nil {
		return nil, err
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return nil, err
	}
	resp.Body.Close()
	return nil, nil
}

// CheckHealth consults the context even though the probe is cheap: a
// canceled coordinator must not launch new legs.
func (r *remote) CheckHealth(ctx context.Context) error {
	return ctx.Err()
}

// fanOut holds a context and calls only Context variants, forwarding
// it into every leg.
func fanOut(ctx context.Context, shards []*remote, query []uint32) error {
	for _, s := range shards {
		if _, err := s.SearchContext(ctx, query); err != nil {
			return err
		}
	}
	return nil
}

// Name does no I/O and needs no context.
func (r *remote) Name() string { return r.base }
