// Fixture: disciplined atomic usage — raw sync/atomic access is
// consistent, typed atomics are only touched through their methods
// (including arrays of them and address-of plumbing), and plain fields
// stay plain.
package shard

import (
	"sync"
	"sync/atomic"
)

type clean struct {
	raw    int64 // every access below is via sync/atomic
	typed  atomic.Int64
	flag   atomic.Bool
	counts [4]atomic.Int64
	mu     sync.Mutex
	n      int // guarded by mu
}

func (c *clean) bump() {
	atomic.AddInt64(&c.raw, 1)
	c.typed.Add(1)
	c.flag.Store(true)
	c.counts[2].Add(1)
}

func (c *clean) read() (int64, int64, bool) {
	return atomic.LoadInt64(&c.raw), c.typed.Load(), c.flag.Load()
}

func (c *clean) swap() int64 {
	return atomic.SwapInt64(&c.raw, 0)
}

// Handing the typed atomic along by pointer keeps the discipline: the
// callee still goes through the methods.
func (c *clean) share() *atomic.Int64 {
	return &c.typed
}

func observe(ctr *atomic.Int64) int64 {
	return ctr.Load()
}

// The mutex-guarded plain field is the mutex discipline, not the
// atomic one; no mixing here.
func (c *clean) guarded() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n
}
