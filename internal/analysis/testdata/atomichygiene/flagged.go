// Fixture: atomic fields accessed plainly, typed atomics copied by
// value, and fields that mix the mutex and atomic disciplines.
package shard

import (
	"sync"
	"sync/atomic"
)

type stats struct {
	hits  int64 // accessed via sync/atomic in recordHit
	typed atomic.Int64
	plain int64
}

type mixer struct {
	mu    sync.Mutex
	mixed atomic.Bool // guarded by mu // want `mixes disciplines`
	raw   int64       // guarded by mu // want `mixes disciplines`
}

func (s *stats) recordHit() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *stats) badPlainRead() int64 {
	return s.hits // want `accessed with sync/atomic elsewhere`
}

func (s *stats) badPlainWrite() {
	s.hits = 0 // want `accessed with sync/atomic elsewhere`
}

func (s *stats) badCopy() int64 {
	t := s.typed // want `typed atomic`
	return t.Load()
}

func badLocalCopy() int64 {
	var n atomic.Int64
	n.Store(1)
	m := n // want `typed atomic`
	return m.Load()
}

func (m *mixer) bumpUnderLock() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.raw++ // want `accessed with sync/atomic elsewhere`
}

func (m *mixer) sample() int64 {
	return atomic.LoadInt64(&m.raw)
}
