// Fixture for the trace-propagation contract at the scatter–gather
// layer (ndss/internal/shard): each outbound attempt derives a child
// span from the caller's trace context, so every remote span stays
// attached to the request's one trace. A request that arrived without
// a traceparent simply propagates nothing.
package shard

import (
	"context"

	"ndss/internal/obs"
)

// childLeg is the sanctioned shape: read the trace from the request
// context, derive a child for this attempt, and put the child back in
// the leg's context. No trace in, no trace out.
func childLeg(ctx context.Context) (context.Context, string) {
	tc, ok := obs.TraceFromContext(ctx)
	if !ok {
		return ctx, ""
	}
	child := tc.Child()
	return obs.ContextWithTrace(ctx, child), child.SpanIDString()
}
