// Violations of the trace-propagation contract at the scatter–gather
// layer: trace context parked in globals or minted fresh mid-request,
// both of which detach downstream spans from the caller's trace and
// leave /debug/trace with a forest instead of one connected flight.
package shard

import (
	"context"

	"ndss/internal/obs"
)

// bootTrace pins one process-wide trace context: every request's spans
// would graft onto the same tree, and the sampling bit frozen at boot
// overrides the caller's decision.
var bootTrace = obs.NewTraceContext(false) // want `package-level obs\.TraceContext bootTrace; trace context is per-request state`

// detachedLeg mints a new root for the outbound leg instead of
// deriving a child, so the shard's remote spans land in a different
// trace than the coordinator's.
func detachedLeg(ctx context.Context) context.Context {
	tc := obs.NewTraceContext(true) // want `obs\.NewTraceContext mints a new trace root mid-request; derive a child`
	return obs.ContextWithTrace(ctx, tc)
}
