package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// GuardedBy enforces the `// guarded by <mu>` field-comment convention:
// a struct field annotated with the name of a sibling sync.Mutex or
// sync.RWMutex field may only be read while that mutex is held
// (Lock or RLock) and only be written or address-taken under the full
// Lock, within the same function. Functions whose name ends in
// "Locked" are callee-side helpers documented to run with the lock
// already held and are skipped; anything else needs a justified
// //lint:ignore guardedby suppression.
//
// The analysis is deliberately function-local and syntactic about lock
// state: a Lock/RLock on `x.mu` guards subsequent accesses to fields
// of the same base expression `x` until an Unlock/RUnlock (deferred
// unlocks keep the lock held to the end of the function; a lock
// acquired or released inside a conditional branch does not leak its
// state past the branch unless the branch terminates). That is exactly
// the discipline the serving tier's hot structs follow, and the race
// detector cannot substitute for it: -race only proves the schedules
// the tests happened to explore.
var GuardedBy = &Analyzer{
	Name:   "guardedby",
	Doc:    "fields annotated `// guarded by <mu>` are only accessed with that mutex held",
	Anchor: "guardedby",
	Run:    runGuardedBy,
}

// guardAnno is one parsed `// guarded by <mu>` field annotation.
type guardAnno struct {
	mu  string    // sibling mutex field name
	pos token.Pos // the annotated field, for mixing diagnostics
}

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

// collectGuardedFields parses every `// guarded by <mu>` annotation in
// the package and resolves each to its field object. Annotations that
// name no sibling mutex field are reported. Shared with atomichygiene,
// which flags fields that mix the mutex and atomic disciplines.
func collectGuardedFields(pass *Pass, report bool) map[*types.Var]guardAnno {
	guarded := map[*types.Var]guardAnno{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			// Sibling mutex fields by name, for validating annotations.
			mutexes := map[string]bool{}
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok && isMutexType(v.Type()) {
						mutexes[name.Name] = true
					}
				}
			}
			for _, fld := range st.Fields.List {
				mu, pos, ok := guardAnnotation(fld)
				if !ok {
					continue
				}
				if !mutexes[mu] {
					if report {
						pass.Reportf(pos,
							"`// guarded by %s` names no sibling sync.Mutex or sync.RWMutex field", mu)
					}
					continue
				}
				for _, name := range fld.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guarded[v] = guardAnno{mu: mu, pos: name.Pos()}
					}
				}
			}
			return true
		})
	}
	return guarded
}

// guardAnnotation extracts the mutex name of a field's `guarded by`
// comment, from either the doc comment or the trailing line comment.
func guardAnnotation(fld *ast.Field) (mu string, pos token.Pos, ok bool) {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1], fld.Pos(), true
		}
	}
	return "", token.NoPos, false
}

func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

func runGuardedBy(pass *Pass) error {
	if !strings.HasPrefix(pass.PkgPath(), "ndss") {
		return nil
	}
	guarded := collectGuardedFields(pass, true)
	if len(guarded) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				// Convention: a *Locked function documents that its caller
				// already holds the lock; the call sites are checked.
				continue
			}
			g := &guardChecker{pass: pass, guarded: guarded}
			g.block(fd.Body.List, map[lockKey]int{})
		}
	}
	return nil
}

// lockKey identifies one held mutex: the rendered base expression it
// hangs off ("" for a bare local or package-level mutex) plus the
// mutex's own name.
type lockKey struct{ base, mu string }

// Held-lock bits: RLock grants reads, Lock grants both.
const (
	rheld = 1 << iota
	wheld
)

type guardChecker struct {
	pass    *Pass
	guarded map[*types.Var]guardAnno
}

// block walks statements in order, threading the held-lock state.
func (g *guardChecker) block(stmts []ast.Stmt, held map[lockKey]int) {
	for _, s := range stmts {
		g.stmt(s, held)
	}
}

func (g *guardChecker) stmt(s ast.Stmt, held map[lockKey]int) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if key, op, ok := g.lockCall(s.X); ok {
			applyLockOp(held, key, op)
			return
		}
		g.expr(s.X, held, false)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			g.expr(r, held, false)
		}
		for _, l := range s.Lhs {
			g.expr(l, held, true)
		}
	case *ast.IncDecStmt:
		g.expr(s.X, held, true)
	case *ast.DeferStmt:
		if _, op, ok := g.lockCall(s.Call); ok && (op == "Unlock" || op == "RUnlock") {
			return // deferred unlock: the lock stays held to the end
		}
		g.deferredCall(s.Call, held)
	case *ast.GoStmt:
		// The spawned goroutine runs on its own schedule: whatever is
		// held here proves nothing there.
		g.deferredCall(s.Call, held)
	case *ast.BlockStmt:
		g.block(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			g.stmt(s.Init, held)
		}
		g.expr(s.Cond, held, false)
		g.branch(s.Body, held)
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				g.branch(e, held)
			default: // else-if chain
				eh := cloneHeld(held)
				g.stmt(e, eh)
				g.clearUnlocked(held, e)
			}
		}
	case *ast.ForStmt:
		if s.Init != nil {
			g.stmt(s.Init, held)
		}
		bh := cloneHeld(held)
		if s.Cond != nil {
			g.expr(s.Cond, bh, false)
		}
		g.block(s.Body.List, bh)
		if s.Post != nil {
			g.stmt(s.Post, bh)
		}
		g.clearUnlocked(held, s.Body)
	case *ast.RangeStmt:
		g.expr(s.X, held, false)
		bh := cloneHeld(held)
		g.block(s.Body.List, bh)
		g.clearUnlocked(held, s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			g.stmt(s.Init, held)
		}
		if s.Tag != nil {
			g.expr(s.Tag, held, false)
		}
		g.caseClauses(s.Body, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			g.stmt(s.Init, held)
		}
		g.stmt(s.Assign, held)
		g.caseClauses(s.Body, held)
	case *ast.SelectStmt:
		g.caseClauses(s.Body, held)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			g.expr(r, held, false)
		}
	case *ast.SendStmt:
		g.expr(s.Chan, held, false)
		g.expr(s.Value, held, false)
	case *ast.LabeledStmt:
		g.stmt(s.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						g.expr(v, held, false)
					}
				}
			}
		}
	}
}

// branch checks a conditional block against a copy of the held state
// and, unless the block terminates (return/branch/panic), propagates
// any unlocks it performed — a lock conditionally released must not be
// assumed held afterwards.
func (g *guardChecker) branch(body *ast.BlockStmt, held map[lockKey]int) {
	bh := cloneHeld(held)
	g.block(body.List, bh)
	if !terminates(body) {
		g.clearUnlocked(held, body)
	}
}

func (g *guardChecker) caseClauses(body *ast.BlockStmt, held map[lockKey]int) {
	for _, cs := range body.List {
		bh := cloneHeld(held)
		switch cs := cs.(type) {
		case *ast.CaseClause:
			for _, e := range cs.List {
				g.expr(e, bh, false)
			}
			g.block(cs.Body, bh)
			if !terminatesList(cs.Body) {
				g.clearUnlockedList(held, cs.Body)
			}
		case *ast.CommClause:
			if cs.Comm != nil {
				g.stmt(cs.Comm, bh)
			}
			g.block(cs.Body, bh)
			if !terminatesList(cs.Body) {
				g.clearUnlockedList(held, cs.Body)
			}
		}
	}
}

// deferredCall checks a go/defer call: arguments are evaluated at the
// statement (current lock state applies), the function body runs later
// (no lock state applies).
func (g *guardChecker) deferredCall(call *ast.CallExpr, held map[lockKey]int) {
	for _, a := range call.Args {
		g.expr(a, held, false)
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		g.block(lit.Body.List, map[lockKey]int{})
	} else {
		g.expr(call.Fun, held, false)
	}
}

// expr checks every guarded-field access inside e. write marks the
// outermost expression as a mutation target (assignment LHS, ++/--,
// or address-of), which requires the full Lock.
func (g *guardChecker) expr(e ast.Expr, held map[lockKey]int, write bool) {
	if e == nil {
		return
	}
	if write {
		switch t := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if v, ok := g.guardedVarOf(t); ok {
				g.checkAccess(t, v, held, true)
			}
			g.expr(t.X, held, false)
			return
		case *ast.IndexExpr:
			// Writing an element mutates the guarded structure.
			g.expr(t.X, held, true)
			g.expr(t.Index, held, false)
			return
		case *ast.StarExpr:
			g.expr(t.X, held, false)
			return
		}
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure's body runs on its own schedule (deferred, pooled,
			// spawned); locks held here prove nothing there.
			g.block(n.Body.List, map[lockKey]int{})
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				g.expr(n.X, held, true)
				return false
			}
		case *ast.SelectorExpr:
			if v, ok := g.guardedVarOf(n); ok {
				g.checkAccess(n, v, held, false)
			}
		}
		return true
	})
}

func (g *guardChecker) guardedVarOf(sel *ast.SelectorExpr) (*types.Var, bool) {
	v, ok := g.pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok {
		return nil, false
	}
	_, annotated := g.guarded[v]
	return v, annotated
}

func (g *guardChecker) checkAccess(sel *ast.SelectorExpr, v *types.Var, held map[lockKey]int, write bool) {
	anno := g.guarded[v]
	key := lockKey{base: types.ExprString(sel.X), mu: anno.mu}
	bits := held[key]
	switch {
	case write && bits&wheld == 0:
		verb := "written"
		hint := ""
		if bits&rheld != 0 {
			hint = " (RLock is not enough to write)"
		}
		g.pass.Reportf(sel.Sel.Pos(),
			"field %s is %s without %s.%s held%s; it is declared `// guarded by %s`",
			v.Name(), verb, key.base, anno.mu, hint, anno.mu)
	case !write && bits == 0:
		g.pass.Reportf(sel.Sel.Pos(),
			"field %s is read without %s.%s held; it is declared `// guarded by %s`",
			v.Name(), key.base, anno.mu, anno.mu)
	}
}

// lockCall parses expr as a Lock/RLock/Unlock/RUnlock call on a
// sync.Mutex or sync.RWMutex and returns the lock's identity.
func (g *guardChecker) lockCall(expr ast.Expr) (lockKey, string, bool) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return lockKey{}, "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, "", false
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return lockKey{}, "", false
	}
	fn, _ := g.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !methodOnNamed(fn, "sync", "Mutex") && !methodOnNamed(fn, "sync", "RWMutex") {
		return lockKey{}, "", false
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		return lockKey{base: types.ExprString(x.X), mu: x.Sel.Name}, op, true
	case *ast.Ident:
		return lockKey{base: "", mu: x.Name}, op, true
	}
	return lockKey{}, "", false
}

func applyLockOp(held map[lockKey]int, key lockKey, op string) {
	switch op {
	case "Lock":
		held[key] = rheld | wheld
	case "RLock":
		held[key] |= rheld
	case "Unlock", "RUnlock":
		delete(held, key)
	}
}

// clearUnlocked removes from held every lock that node (a conditional
// branch) unlocks anywhere, so a conditionally-released lock is not
// assumed held past the branch. Deferred unlocks and closure bodies do
// not run within the branch and are skipped.
func (g *guardChecker) clearUnlocked(held map[lockKey]int, node ast.Node) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt, *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if key, op, ok := g.lockCall(n); ok && (op == "Unlock" || op == "RUnlock") {
				delete(held, key)
			}
		}
		return true
	})
}

func (g *guardChecker) clearUnlockedList(held map[lockKey]int, stmts []ast.Stmt) {
	for _, s := range stmts {
		g.clearUnlocked(held, s)
	}
}

func cloneHeld(held map[lockKey]int) map[lockKey]int {
	out := make(map[lockKey]int, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// terminates reports whether a block always transfers control out
// (return, break/continue/goto, panic, or os.Exit) as its last act, in
// which case its lock-state changes cannot flow past the enclosing
// branch.
func terminates(body *ast.BlockStmt) bool {
	return terminatesList(body.List)
}

func terminatesList(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Exit" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(last)
	}
	return false
}
