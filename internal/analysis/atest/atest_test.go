package atest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ndss/internal/analysis"
)

// writeFixture materializes a one-file fixture package in a temp dir.
func writeFixture(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fixture.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// A want expectation that never matches must fail the runner with a
// precise unmatched-expectation message naming the file, line, and
// pattern — otherwise an analyzer regression (it stops firing) turns
// its fixture silently green.
func TestUnmatchedWantIsReported(t *testing.T) {
	dir := writeFixture(t, `package index

import "os"

func touch() {
	os.Create("x") // want "this pattern never matches anything"
}
`)
	pkg, err := loadFixture(dir, "ndss/internal/index")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture does not type-check: %v", pkg.TypeErrors)
	}
	diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, []*analysis.Analyzer{analysis.FSIODiscipline})
	if err != nil {
		t.Fatal(err)
	}
	problems, err := compare(pkg, diags)
	if err != nil {
		t.Fatal(err)
	}
	var unmatched, unexpected int
	for _, p := range problems {
		switch {
		case strings.Contains(p, `no diagnostic matched want "this pattern never matches anything"`):
			unmatched++
			if !strings.Contains(p, "fixture.go:6:") {
				t.Errorf("unmatched-want problem lacks file:line: %q", p)
			}
		case strings.HasPrefix(p, "unexpected diagnostic"):
			// The os.Create diagnostic fired but matched nothing; it must
			// surface too, not be swallowed.
			unexpected++
		default:
			t.Errorf("unrecognized problem: %q", p)
		}
	}
	if unmatched != 1 {
		t.Errorf("got %d unmatched-want problems, want exactly 1 (problems: %v)", unmatched, problems)
	}
	if unexpected != 1 {
		t.Errorf("got %d unexpected-diagnostic problems, want exactly 1 (problems: %v)", unexpected, problems)
	}
}

// The happy path through compare: matching wants produce no problems.
func TestMatchedWantIsSilent(t *testing.T) {
	dir := writeFixture(t, `package index

import "os"

func touch() {
	os.Create("x") // want `+"`os\\.Create`"+`
}
`)
	pkg, err := loadFixture(dir, "ndss/internal/index")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, []*analysis.Analyzer{analysis.FSIODiscipline})
	if err != nil {
		t.Fatal(err)
	}
	problems, err := compare(pkg, diags)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("clean fixture produced problems: %v", problems)
	}
}
