// Package atest is a minimal analysistest-style fixture runner for the
// ndss-lint analyzers: it type-checks a testdata directory as a
// package with a caller-chosen import path (the analyzers are
// scope-sensitive) and compares diagnostics against `// want "regex"`
// comments on the offending lines.
package atest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"regexp"
	"sync"
	"testing"

	"ndss/internal/analysis"
)

// Run type-checks the fixture directory as a package rooted at
// importPath, runs the analyzer, and asserts that diagnostics and
// `// want` expectations agree line by line.
func Run(t *testing.T, a *analysis.Analyzer, dir, importPath string) {
	t.Helper()
	pkg, err := loadFixture(dir, importPath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture %s does not type-check: %v", dir, pkg.TypeErrors)
	}
	diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, dir, err)
	}
	checkExpectations(t, pkg, diags)
}

type expectation struct {
	re   *regexp.Regexp
	file string
	line int
	hit  bool
}

// wantRe extracts the quoted regexes of one `want` comment. Both
// double quotes and backquotes are accepted.
var wantRe = regexp.MustCompile("//\\s*want\\s+((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)")

var wantArgRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

func checkExpectations(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	problems, err := compare(pkg, diags)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

// compare matches diagnostics against the fixture's want expectations
// and returns one problem string per mismatch — an unexpected
// diagnostic, or a want regex no diagnostic matched. Separated from
// the *testing.T plumbing so the runner's own failure messages are
// testable: a fixture whose expectation silently never fires must
// produce a precise "no diagnostic matched want" problem, not a green
// test.
func compare(pkg *analysis.Package, diags []analysis.Diagnostic) ([]string, error) {
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, arg := range wantArgRe.FindAllString(m[1], -1) {
					var pat string
					if arg[0] == '`' {
						pat = arg[1 : len(arg)-1]
					} else {
						if err := json.Unmarshal([]byte(arg), &pat); err != nil {
							return nil, fmt.Errorf("%s: bad want pattern %s: %v", pos, arg, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{re: re, file: pos.Filename, line: pos.Line})
				}
			}
		}
	}
	var problems []string
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic at %s: %s (%s)", d.Pos, d.Message, d.Analyzer))
		}
	}
	for _, w := range wants {
		if !w.hit {
			problems = append(problems, fmt.Sprintf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re))
		}
	}
	return problems, nil
}

func loadFixture(dir, importPath string) (*analysis.Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	pkg := &analysis.Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		},
	}
	imports := map[string]bool{}
	for _, path := range matches {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
		for _, imp := range f.Imports {
			p, _ := importPathOf(imp)
			imports[p] = true
		}
	}
	exports, err := exportsFor(imports)
	if err != nil {
		return nil, err
	}
	imp := analysis.ExportImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Types, _ = conf.Check(importPath, fset, pkg.Files, pkg.Info)
	return pkg, nil
}

func importPathOf(imp *ast.ImportSpec) (string, error) {
	var p string
	err := json.Unmarshal([]byte(imp.Path.Value), &p)
	return p, err
}

// exportCache maps import paths to compiler export data files,
// populated lazily by `go list -export` and shared across fixtures.
var (
	exportMu    sync.Mutex
	exportCache = map[string]string{}
)

func exportsFor(imports map[string]bool) (map[string]string, error) {
	exportMu.Lock()
	defer exportMu.Unlock()
	var missing []string
	for p := range imports {
		if p == "" || p == "unsafe" {
			continue
		}
		if _, ok := exportCache[p]; !ok {
			missing = append(missing, p)
		}
	}
	if len(missing) > 0 {
		args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, missing...)
		cmd := exec.Command("go", args...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go list -export %v: %v\n%s", missing, err, stderr.Bytes())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var lp struct{ ImportPath, Export string }
			if err := dec.Decode(&lp); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			if lp.Export != "" {
				exportCache[lp.ImportPath] = lp.Export
			}
		}
	}
	out := map[string]string{}
	for p, f := range exportCache {
		out[p] = f
	}
	return out, nil
}
