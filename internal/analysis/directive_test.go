package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// parseTestPkg type-checks a single import-free source string as a
// package at the given import path.
func parseTestPkg(t *testing.T, importPath, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pkg := &Package{
		ImportPath: importPath,
		Fset:       fset,
		Files:      []*ast.File{f},
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		},
	}
	conf := types.Config{Error: func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) }}
	pkg.Types, _ = conf.Check(importPath, fset, pkg.Files, pkg.Info)
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture does not type-check: %v", pkg.TypeErrors)
	}
	return pkg
}

// A lint:ignore directive without a reason is itself a diagnostic and
// suppresses nothing, even with no analyzers selected.
func TestBareDirectiveIsDiagnostic(t *testing.T) {
	pkg := parseTestPkg(t, "ndss/internal/index", `package index

func f() int {
	//lint:ignore fsiodiscipline
	return 1
}
`)
	diags, err := RunAnalyzers([]*Package{pkg}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if diags[0].Analyzer != "directive" || !strings.Contains(diags[0].Message, "requires a reason") {
		t.Fatalf("unexpected diagnostic: %+v", diags[0])
	}
	if diags[0].Pos.Line != 4 {
		t.Fatalf("diagnostic at line %d, want 4", diags[0].Pos.Line)
	}
}

// Diagnostics come out sorted by file position so runs are
// deterministic and diffable.
func TestDiagnosticsSorted(t *testing.T) {
	pkg := parseTestPkg(t, "ndss/internal/index", `package index

func g() {
	//lint:ignore poolpair
	//lint:ignore ctxflow
	_ = 0
}
`)
	diags, err := RunAnalyzers([]*Package{pkg}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 || diags[0].Pos.Line != 4 || diags[1].Pos.Line != 5 {
		t.Fatalf("got %v, want two line-ordered directive diagnostics", diags)
	}
}
