package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// metricScope is where the Prometheus exposition lives.
var metricScope = []string{"ndss/internal/server"}

// headerScope is where the cross-process propagation headers are read
// and written: the serving edge (which echoes X-Request-ID and joins
// an inbound traceparent) and the scatter–gather layer (which forwards
// both on every shard leg). A literal spelling in either place can
// drift from the obs package constants — a one-character typo silently
// breaks propagation with no compile error — so the names must come
// from the constants.
var headerScope = []string{"ndss/internal/server", "ndss/internal/shard"}

// headerMethods are the net/http.Header methods whose first argument
// is a header name.
var headerMethods = map[string]bool{
	"Set": true, "Get": true, "Add": true, "Del": true, "Values": true,
}

// metricNameRe is the documented catalog shape: ndss_* for service
// metrics, go_* for runtime gauges, snake_case throughout.
var metricNameRe = regexp.MustCompile(`^(ndss|go)(_[a-z][a-z0-9]*)+$`)

// labelKeyRe is the snake_case label key shape.
var labelKeyRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// labelPairRe matches one k="v" pair inside a preformatted label
// string (v may contain format verbs or escaped quotes).
var labelPairRe = regexp.MustCompile(`([A-Za-z0-9_.-]+)=(?:%q|"(?:[^"\\]|\\.)*")`)

// emissionMethods are the promWriter methods whose first argument is a
// metric name and (for sample/histogramSamples) second argument is a
// preformatted label string.
var emissionMethods = map[string]bool{"header": true, "sample": true, "histogramSamples": true}

// MetricHygiene checks the hand-written Prometheus exposition: metric
// name literals must match the documented catalog regex, label keys
// must be snake_case, label values must never derive from request
// input, and the per-request latency observation must keep the PR 4
// exactly-once shape (observe only in admission-guarded functions,
// deferred once, inline only immediately before a return).
var MetricHygiene = &Analyzer{
	Name:   "metrichygiene",
	Doc:    "Prometheus names/labels must match the catalog; latency observed exactly once per admitted request",
	Anchor: "metric-hygiene",
	Run:    runMetricHygiene,
}

func runMetricHygiene(pass *Pass) error {
	inMetric := underAny(pass.PkgPath(), metricScope...)
	inHeader := underAny(pass.PkgPath(), headerScope...)
	if !inMetric && !inHeader {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if inMetric {
				checkEmissions(pass, fd)
				checkObserveDiscipline(pass, fd)
			}
			if inHeader {
				checkHeaderLiterals(pass, fd)
			}
		}
	}
	return nil
}

// checkHeaderLiterals rejects the propagation header names spelled as
// string literals in calls on net/http.Header. References to the obs
// constants (or a local constant) are fine — the point is that there
// is exactly one definition each of X-Request-ID and Traceparent, so
// the coordinator's Set and the shard's Get can never disagree.
func checkHeaderLiterals(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fn := staticCallee(pass.TypesInfo, call)
		if fn == nil || !headerMethods[fn.Name()] || !methodOnNamed(fn, "net/http", "Header") {
			return true
		}
		lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		name, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		switch strings.ToLower(name) {
		case "x-request-id", "traceparent":
			pass.Reportf(lit.Pos(),
				"propagation header %q spelled as a string literal; use the obs package constant so sender and receiver cannot drift",
				name)
		}
		return true
	})
}

func checkEmissions(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(pass.TypesInfo, call)
		if fn == nil || !emissionMethods[fn.Name()] || !methodOnNamed(fn, pass.PkgPath(), "promWriter") {
			return true
		}
		if len(call.Args) > 0 {
			if name, ok := constString(pass, call.Args[0]); ok && !metricNameRe.MatchString(name) {
				pass.Reportf(call.Args[0].Pos(),
					"metric name %q does not match the catalog shape %s", name, metricNameRe)
			}
		}
		if fn.Name() != "header" && len(call.Args) > 1 {
			checkLabelArg(pass, call.Args[1])
		}
		return true
	})
}

// checkLabelArg validates one preformatted label-string argument:
// snake_case keys in any constant portion (including a Sprintf format
// literal), and no value derived from request input.
func checkLabelArg(pass *Pass, arg ast.Expr) {
	lit := ""
	if s, ok := constString(pass, arg); ok {
		lit = s
	} else if call, ok := ast.Unparen(arg).(*ast.CallExpr); ok &&
		isPkgCall(pass.TypesInfo, call, "fmt", "Sprintf") && len(call.Args) > 0 {
		if s, ok := constString(pass, call.Args[0]); ok {
			lit = s
		}
	}
	if lit != "" {
		for _, m := range labelPairRe.FindAllStringSubmatch(lit, -1) {
			if !labelKeyRe.MatchString(m[1]) {
				pass.Reportf(arg.Pos(), "label key %q is not snake_case", m[1])
			}
		}
	}
	if id := requestDerived(pass, arg); id != nil {
		pass.Reportf(arg.Pos(),
			"label value derived from request input (%s): unbounded label cardinality; use a fixed enum", id.Name)
	}
}

// requestDerived returns an identifier inside expr whose type comes
// from the incoming HTTP request (the *http.Request itself, its
// header map, or URL values), nil if none.
func requestDerived(pass *Pass, expr ast.Expr) *ast.Ident {
	var found *ast.Ident
	ast.Inspect(expr, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found != nil {
			return found == nil
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		t := obj.Type()
		if isHTTPRequest(t) || isNamedIn(t, "net/http", "Header") || isNamedIn(t, "net/url", "Values") || isNamedIn(t, "net/url", "URL") {
			found = id
			return false
		}
		return true
	})
	return found
}

func isNamedIn(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// checkObserveDiscipline guards the exactly-once latency observation:
// every function calling (*metrics).observe must be on the admission
// path (contain a call to admit, or to the cache-hit probe paired with
// an immediate return), have at most one deferred observe, and any
// inline observe must be the statement immediately before a return.
func checkObserveDiscipline(pass *Pass, fd *ast.FuncDecl) {
	type observeSite struct {
		call     *ast.CallExpr
		deferred bool
	}
	var sites []observeSite
	hasAdmit := false

	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				walk(n.Call, true)
				return false
			case *ast.CallExpr:
				fn := staticCallee(pass.TypesInfo, n)
				if fn == nil {
					return true
				}
				if fn.Name() == "observe" && methodOnNamed(fn, pass.PkgPath(), "metrics") {
					sites = append(sites, observeSite{call: n, deferred: inDefer})
				}
				if fn.Name() == "admit" && fn.Pkg() == pass.Pkg {
					hasAdmit = true
				}
			}
			return true
		})
	}
	walk(fd.Body, false)

	if len(sites) == 0 {
		return
	}
	// The observe method itself and the metrics plumbing are exempt:
	// the discipline applies to request handlers.
	if fd.Recv != nil && fd.Name.Name == "observe" {
		return
	}
	if !hasAdmit {
		pass.Reportf(sites[0].call.Pos(),
			"latency observed outside an admission-guarded function; only admitted requests may observe")
	}
	deferredCount := 0
	for _, s := range sites {
		if s.deferred {
			deferredCount++
			continue
		}
		if !followedByReturn(fd, s.call) {
			pass.Reportf(s.call.Pos(),
				"inline latency observation must be immediately followed by return, or the deferred observation double-counts the request")
		}
	}
	if deferredCount > 1 {
		pass.Reportf(sites[0].call.Pos(),
			"multiple deferred latency observations in one function break the exactly-once invariant")
	}
}

// followedByReturn reports whether the statement containing call is
// directly followed by a return statement in its enclosing block.
func followedByReturn(fd *ast.FuncDecl, call *ast.CallExpr) bool {
	ok := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		block, isBlock := n.(*ast.BlockStmt)
		if !isBlock {
			return true
		}
		for i, stmt := range block.List {
			es, isExpr := stmt.(*ast.ExprStmt)
			if !isExpr || !containsNode(es, call) {
				continue
			}
			if i+1 < len(block.List) {
				if _, isRet := block.List[i+1].(*ast.ReturnStmt); isRet {
					ok = true
				}
			}
		}
		return true
	})
	return ok
}

func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// constString resolves expr to its compile-time constant string value.
func constString(pass *Pass, expr ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
