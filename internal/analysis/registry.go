package analysis

// All returns the full ndss-lint analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AtomicHygiene,
		CtxFlow,
		ErrDiscard,
		FSIODiscipline,
		GoSpawn,
		GuardedBy,
		MetricHygiene,
		MonoTime,
		PoolPair,
	}
}

// ByName resolves a comma-separated analyzer selection; unknown names
// return nil and the offending name.
func ByName(names []string) ([]*Analyzer, string) {
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, n
		}
		out = append(out, a)
	}
	return out, ""
}
