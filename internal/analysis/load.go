package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors holds type-checking problems; analyzers still run on
	// whatever was resolved, matching go vet's behavior of reporting
	// what it can.
	TypeErrors []error
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// LoadPackages loads the packages matching patterns (relative to dir,
// "" meaning the current directory), parses their sources, and
// type-checks them against compiler export data produced by
// `go list -export`. Dependencies — including the standard library —
// are resolved from export data, so only the matched packages are
// parsed.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-json=Dir,ImportPath,Export,GoFiles,Standard,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.Bytes())
	}

	exports := map[string]string{}
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %w", err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if !lp.DepOnly && !lp.Standard {
			p := lp
			targets = append(targets, &p)
		}
	}

	fset := token.NewFileSet()
	imp := ExportImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})
	var pkgs []*Package
	for _, lp := range targets {
		pkg, err := checkPackage(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// ExportImporter returns a types.Importer reading gc export data,
// resolving import paths to files through lookup.
func ExportImporter(fset *token.FileSet, lookup func(path string) (string, bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := lookup(path)
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// checkPackage parses the given files and type-checks them as one
// package. Test files are skipped: the invariants are production-code
// invariants, and test fixtures routinely violate them on purpose.
func checkPackage(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		},
	}
	for _, name := range goFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", path, err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check returns the package even on errors; analyzers run best-effort.
	pkg.Types, _ = conf.Check(importPath, fset, pkg.Files, pkg.Info)
	return pkg, nil
}
