package analysis

import (
	"go/ast"
	"strings"
)

// monoHotScope is the span-recorder hot path: the query pipeline
// already pays for an obs.Trace per query, so every duration there
// must come from the trace (or the obs.Mono helpers), not from ad-hoc
// time.Now()/time.Since() pairs that add clock reads and drift from
// the recorded spans.
var monoHotScope = []string{"ndss/internal/search"}

// monoExempt is the helper package itself.
var monoExempt = []string{"ndss/internal/obs"}

// MonoTime enforces monotonic-timing discipline: no raw
// time.Time.Sub anywhere in the module (wall-clock subtraction breaks
// under clock steps once a Time loses its monotonic reading — use
// time.Since or obs.Mono), and no time.Now/time.Since at all in the
// span-recorder hot path, where durations must come from the reused
// trace or the obs helpers.
var MonoTime = &Analyzer{
	Name:   "monotime",
	Doc:    "durations via obs monotonic helpers: no time.Time.Sub; no time.Now/Since in the pipeline hot path",
	Anchor: "monotime",
	Run:    runMonoTime,
}

func runMonoTime(pass *Pass) error {
	path := pass.PkgPath()
	if underAny(path, monoExempt...) || !strings.HasPrefix(path, "ndss") {
		return nil
	}
	hot := underAny(path, monoHotScope...)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := staticCallee(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			if fn.Name() == "Sub" && methodOnNamed(fn, "time", "Time") {
				pass.Reportf(call.Pos(),
					"time.Time.Sub is wall-clock arithmetic once the monotonic reading is stripped; use time.Since or obs.Mono")
			}
			if hot && (isPkgCall(pass.TypesInfo, call, "time", "Now") ||
				isPkgCall(pass.TypesInfo, call, "time", "Since")) {
				pass.Reportf(call.Pos(),
					"time.%s in the pipeline hot path; record durations through the query trace or obs.NowMono/obs.SinceMono",
					fn.Name())
			}
			return true
		})
	}
	return nil
}
