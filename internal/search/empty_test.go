package search

import (
	"testing"

	"ndss/internal/corpus"
	"ndss/internal/index"
)

// TestSearchEmptyIndex: an index over an empty corpus answers queries
// with no matches and no errors, with and without prefix filtering.
func TestSearchEmptyIndex(t *testing.T) {
	dir := t.TempDir()
	if _, err := index.Build(corpus.New(nil), dir, index.BuildOptions{K: 4, Seed: 1, T: 5}); err != nil {
		t.Fatal(err)
	}
	ix, err := index.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if ix.TotalPostings() != 0 {
		t.Fatalf("empty corpus produced %d postings", ix.TotalPostings())
	}
	s := New(ix, nil)
	for _, opts := range []Options{
		{Theta: 0.8},
		{Theta: 0.8, PrefixFilter: true},
		{Theta: 0.8, CostBasedPrefix: true},
	} {
		ms, st, err := s.Search([]uint32{1, 2, 3, 4, 5, 6}, opts)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if len(ms) != 0 || st.Candidates != 0 {
			t.Fatalf("opts %+v: matches=%v stats=%+v", opts, ms, st)
		}
	}
	// Cutoff selection over an empty index.
	if c := CutoffForTopFraction(ix, 0.1); c != 0 {
		t.Fatalf("empty-index cutoff = %d", c)
	}
}

// TestSearchIndexOfOnlyShortTexts: every text below the length
// threshold produces an index with no lists.
func TestSearchIndexOfOnlyShortTexts(t *testing.T) {
	c := corpus.New([][]uint32{{1, 2}, {3}, {4, 5, 6}})
	dir := t.TempDir()
	if _, err := index.Build(c, dir, index.BuildOptions{K: 2, Seed: 1, T: 10}); err != nil {
		t.Fatal(err)
	}
	ix, err := index.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	s := New(ix, c)
	ms, _, err := s.Search([]uint32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, Options{Theta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Fatalf("matches from unindexable corpus: %+v", ms)
	}
}
