package search

import (
	"testing"

	"ndss/internal/corpus"
	"ndss/internal/index"
)

// The planner must never defer a list without a zone map: probing one
// degrades to a full read plus filter per candidate, which is strictly
// worse than reading the list once. Build-time LongListCutoff decides
// which lists get zone maps, so a query-time cutoff below it (or the
// cost model) can otherwise produce such plans.

func zonemapTestCorpus() *corpus.Corpus {
	return corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts: 60, MinLength: 40, MaxLength: 90, VocabSize: 15,
		ZipfS: 1.5, Seed: 21, DupRate: 0.6, DupSnippetLen: 20, DupMutateProb: 0.05,
	})
}

func buildZonemapIndex(t *testing.T, c *corpus.Corpus, longCutoff int) *index.Index {
	t.Helper()
	dir := t.TempDir()
	if _, err := index.Build(c, dir, index.BuildOptions{
		K: 8, Seed: 33, T: 5, ZoneMapStep: 4, LongListCutoff: longCutoff,
	}); err != nil {
		t.Fatal(err)
	}
	ix, err := index.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	return ix
}

func numLongOf(t *testing.T, ix IndexReader, q []uint32, opts Options) int {
	t.Helper()
	s := New(ix, nil)
	plan, err := s.Explain(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, l := range plan.Long {
		if l {
			n++
		}
	}
	if n != plan.NumLong {
		t.Fatalf("plan inconsistent: counted %d, NumLong %d", n, plan.NumLong)
	}
	return plan.NumLong
}

func TestPlanNeverDefersZoneMapLessLists(t *testing.T) {
	c := zonemapTestCorpus()
	// Cutoff so high no list gets a zone map at build time.
	bare := buildZonemapIndex(t, c, 1<<30)
	// Identical index, but with zone maps on every list over 8 postings.
	zoned := buildZonemapIndex(t, c, 8)
	q := c.Text(0)[:12]

	// The demotion runs after both planner paths (fixed cutoff and
	// ChooseDeferral) in stagePlan, so asserting through the cutoff
	// path — the only one the default cost model triggers at this
	// corpus size — covers both.
	opts := Options{Theta: 0.5, PrefixFilter: true, LongListThreshold: 10}
	// The zoned twin must defer under these options, otherwise the
	// assertion below is vacuous.
	if n := numLongOf(t, zoned, q, opts); n == 0 {
		t.Fatalf("opts %+v: fixture defers nothing even with zone maps", opts)
	}
	if n := numLongOf(t, bare, q, opts); n != 0 {
		t.Fatalf("opts %+v: deferred %d zone-map-less lists", opts, n)
	}
	if n := numLongOf(t, bare, q, Options{Theta: 0.5, CostBasedPrefix: true}); n != 0 {
		t.Fatalf("cost-based plan deferred %d zone-map-less lists", n)
	}

	// Results must agree between the twins (deferral is a performance
	// decision, never a correctness one).
	sBare, sZoned := New(bare, c), New(zoned, c)
	mb, _, err := sBare.Search(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	mz, _, err := sZoned.Search(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(mb) != len(mz) {
		t.Fatalf("twin indexes disagree: %d vs %d matches", len(mb), len(mz))
	}
	for i := range mb {
		if mb[i].TextID != mz[i].TextID || mb[i].Start != mz[i].Start || mb[i].End != mz[i].End {
			t.Fatalf("match %d differs: %+v vs %+v", i, mb[i], mz[i])
		}
	}
}

// MemIndex probes are in-memory binary searches, so deferral stays
// available there regardless of build cutoffs.
func TestMemIndexPlanStillDefers(t *testing.T) {
	c := zonemapTestCorpus()
	mem, err := index.BuildMem(c, index.BuildOptions{K: 8, Seed: 33, T: 5})
	if err != nil {
		t.Fatal(err)
	}
	q := c.Text(0)[:12]
	s := New(mem, nil)
	plan, err := s.Explain(q, Options{Theta: 0.5, PrefixFilter: true, LongListThreshold: 10})
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumLong == 0 {
		t.Fatal("MemIndex plan defers nothing (zone-map demotion over-applied)")
	}
}
