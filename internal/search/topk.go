package search

import (
	"context"
	"fmt"
	"sort"

	"ndss/internal/obs"
)

// TopKOptions configures SearchTopK.
type TopKOptions struct {
	// N is the number of spans to return.
	N int
	// FloorTheta bounds the candidate sweep from below: spans whose
	// estimated similarity falls under it are never considered. Lower
	// values see more candidates but cost more. Defaults to 0.5.
	FloorTheta float64
	// Search carries through the underlying query options (prefix
	// filtering etc.); Theta is overridden by the sweep.
	Search Options
}

// SearchTopK returns the up-to-N near-duplicate spans with the highest
// estimated Jaccard similarity, ordered best-first (ties by text id and
// position). It runs one search at FloorTheta and ranks the merged
// spans by their collision counts, so its cost equals a single
// low-threshold query.
//
//lint:ignore ctxflow documented compatibility wrapper; cancellable callers use SearchTopKContext
func (s *Searcher) SearchTopK(query []uint32, opts TopKOptions) ([]Match, *Stats, error) {
	return s.SearchTopKContext(context.Background(), query, opts)
}

// SearchTopKContext is SearchTopK honoring a context; see SearchContext
// for the cancellation contract.
func (s *Searcher) SearchTopKContext(ctx context.Context, query []uint32, opts TopKOptions) ([]Match, *Stats, error) {
	if opts.N <= 0 {
		return nil, nil, fmt.Errorf("search: TopK N must be positive, got %d", opts.N)
	}
	floor := opts.FloorTheta
	if floor == 0 {
		floor = 0.5
	}
	if floor <= 0 || floor > 1 {
		return nil, nil, fmt.Errorf("search: FloorTheta must be in (0, 1], got %v", floor)
	}
	sOpts := opts.Search
	sOpts.Theta = floor
	matches, st, err := s.SearchContext(ctx, query, sOpts)
	if err != nil {
		return nil, nil, err
	}
	// The ranking sort below runs after SearchContext closed its timing,
	// so charge it explicitly: Total/CPUTime stay the query's true cost
	// and the merge stage absorbs the rank time in the decomposition.
	rankStart := obs.NowMono()
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Collisions != matches[j].Collisions {
			return matches[i].Collisions > matches[j].Collisions
		}
		if matches[i].TextID != matches[j].TextID {
			return matches[i].TextID < matches[j].TextID
		}
		return matches[i].Start < matches[j].Start
	})
	if len(matches) > opts.N {
		matches = matches[:opts.N]
	}
	rank := obs.SinceMono(rankStart)
	st.Total += rank
	st.CPUTime += rank
	st.StageTimes.Merge += rank
	st.Matches = len(matches)
	return matches, st, nil
}
