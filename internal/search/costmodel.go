package search

import "sort"

// CostModel estimates query cost to pick which of the k inverted lists
// to defer (§3.5 points at cost-model work for choosing the prefix
// cutoff; this is a simple instantiation).
//
// Reading a list fully costs ReadNsPerPosting per posting. Deferring a
// list avoids that read but (a) lowers the short-list collision
// threshold from beta to beta - deferred, admitting more candidate
// texts, and (b) costs ProbeNs per (candidate, deferred list) zone-map
// probe. The candidate count is bounded by shortPostings / threshold —
// each candidate consumes at least `threshold` of the loaded postings.
type CostModel struct {
	// ReadNsPerPosting is the cost to read and decode one posting from
	// a fully loaded list.
	ReadNsPerPosting float64
	// ProbeNs is the fixed cost of one per-text probe into a deferred
	// list (zone-map lookup plus one zone-sized read).
	ProbeNs float64
}

// DefaultCostModel returns coefficients calibrated for page-cached
// reads; exact values matter much less than their ratio.
func DefaultCostModel() CostModel {
	return CostModel{ReadNsPerPosting: 30, ProbeNs: 20000}
}

// estimate returns the modeled cost when the d longest lists are
// deferred. lengths must be sorted descending.
func (m CostModel) estimate(lengths []int, beta, d int) float64 {
	var shortPostings int
	for _, n := range lengths[d:] {
		shortPostings += n
	}
	cost := float64(shortPostings) * m.ReadNsPerPosting
	if d == 0 {
		return cost
	}
	threshold := beta - d
	if threshold < 1 {
		threshold = 1
	}
	candidates := float64(shortPostings) / float64(threshold)
	return cost + candidates*float64(d)*m.ProbeNs
}

// ChooseDeferral returns, for each of the k query lists, whether it
// should be deferred (probed per candidate) rather than read fully. At
// most beta-1 lists are deferred so the short-list filter keeps a
// positive threshold. The choice minimizes the model's estimated cost;
// deferral always takes the longest lists first (deferring a shorter
// list while reading a longer one is never better under this model).
func ChooseDeferral(lengths []int, beta int, m CostModel) []bool {
	k := len(lengths)
	out := make([]bool, k)
	if k == 0 {
		return out
	}
	if beta < 1 {
		beta = 1
	}
	// Rank lists by length, longest first.
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return lengths[order[a]] > lengths[order[b]] })
	sorted := make([]int, k)
	for r, idx := range order {
		sorted[r] = lengths[idx]
	}
	maxDefer := beta - 1
	if maxDefer > k {
		maxDefer = k
	}
	bestD, bestCost := 0, m.estimate(sorted, beta, 0)
	for d := 1; d <= maxDefer; d++ {
		if c := m.estimate(sorted, beta, d); c < bestCost {
			bestD, bestCost = d, c
		}
	}
	for r := 0; r < bestD; r++ {
		out[order[r]] = true
	}
	return out
}
