// Package search implements the paper's query processing (§3.5):
// IntervalScan (Algorithm 5), CollisionCount (Algorithm 4) and
// NearDuplicateSearch with prefix filtering and zone-map probes
// (Algorithm 3), plus result merging and optional exact-Jaccard
// verification.
package search

import "sort"

// Interval is a closed integer interval [Lo, Hi].
type Interval struct {
	Lo, Hi int32
}

// Empty reports whether the interval contains no points.
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// Overlap is one result of IntervalScan: the set of input intervals
// (identified by their indices) that all cover the segment Seg, which is
// a maximal segment on which the covering set stays constant.
type Overlap struct {
	Members []int32
	Seg     Interval
}

// IntervalScan sweeps a collection of intervals and reports, for every
// maximal segment covered by at least alpha intervals, the covering
// subset and the segment (Algorithm 5). Each position is part of at most
// one reported segment, and the covering set reported for it is exactly
// the set of intervals containing it.
func IntervalScan(intervals []Interval, alpha int) []Overlap {
	if alpha < 1 {
		alpha = 1
	}
	if len(intervals) < alpha {
		return nil
	}
	// Endpoint events: interval [lo, hi] starts at lo and exits at hi+1.
	type event struct {
		pos   int32
		start bool
		idx   int32
	}
	events := make([]event, 0, 2*len(intervals))
	for i, iv := range intervals {
		if iv.Empty() {
			continue
		}
		events = append(events, event{pos: iv.Lo, start: true, idx: int32(i)})
		events = append(events, event{pos: iv.Hi + 1, start: false, idx: int32(i)})
	}
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	var out []Overlap
	active := make([]int32, 0, len(intervals))
	remove := func(idx int32) {
		for i, v := range active {
			if v == idx {
				active[i] = active[len(active)-1]
				active = active[:len(active)-1]
				return
			}
		}
	}
	for e := 0; e < len(events); {
		pos := events[e].pos
		for e < len(events) && events[e].pos == pos {
			if events[e].start {
				active = append(active, events[e].idx)
			} else {
				remove(events[e].idx)
			}
			e++
		}
		if len(active) >= alpha && e < len(events) {
			members := make([]int32, len(active))
			copy(members, active)
			out = append(out, Overlap{
				Members: members,
				Seg:     Interval{Lo: pos, Hi: events[e].pos - 1},
			})
		}
	}
	return out
}
