package search

import (
	"strings"
	"testing"

	"ndss/internal/corpus"
)

// Option validation must reject bad configurations before any list I/O
// happens (opts.validate).

func TestOptionsValidation(t *testing.T) {
	c := smallDupCorpus(8, 20, 40, 25, 31)
	ix := buildTestIndex(t, c, 4, 1, 5, 0, 0)
	withSrc := New(ix, c)
	noSrc := New(ix, nil)
	q := c.Text(0)[:10]

	cases := []struct {
		name string
		s    *Searcher
		opts Options
		want string
	}{
		{"theta zero", withSrc, Options{Theta: 0}, "Theta"},
		{"theta negative", withSrc, Options{Theta: -0.5}, "Theta"},
		{"theta above one", withSrc, Options{Theta: 1.5}, "Theta"},
		{"negative MinLength", withSrc, Options{Theta: 0.8, MinLength: -1}, "MinLength"},
		{"MinLength below T", withSrc, Options{Theta: 0.8, MinLength: 3}, "length threshold"},
		{"negative LongListThreshold", withSrc, Options{Theta: 0.8, LongListThreshold: -10}, "LongListThreshold"},
		{"verify without source", noSrc, Options{Theta: 0.8, Verify: true}, "TextSource"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := ix.IOStats()
			_, _, err := tc.s.Search(q, tc.opts)
			if err == nil {
				t.Fatalf("opts %+v accepted", tc.opts)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			if after := ix.IOStats(); after.BytesRead != before.BytesRead || after.ReadTime != before.ReadTime {
				t.Fatalf("rejected query performed I/O: %+v -> %+v", before, after)
			}
		})
	}

	// Verify with no matches and no source must also be rejected (the
	// old implementation only failed once a match needed verification).
	if _, _, err := noSrc.Search([]uint32{9999, 9998, 9997, 9996, 9995}, Options{Theta: 1.0, Verify: true}); err == nil {
		t.Fatal("Verify without TextSource accepted for a no-match query")
	}
}

func TestOptionsValidEdge(t *testing.T) {
	c := smallDupCorpus(8, 20, 40, 25, 32)
	ix := buildTestIndex(t, c, 4, 1, 5, 0, 0)
	s := New(ix, c)
	q := c.Text(0)[:10]
	// Theta exactly 1 and MinLength exactly T are the boundary legals.
	if _, _, err := s.Search(q, Options{Theta: 1, MinLength: 5}); err != nil {
		t.Fatalf("boundary options rejected: %v", err)
	}
}

func TestExplainPlan(t *testing.T) {
	c := corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts: 30, MinLength: 40, MaxLength: 90, VocabSize: 20,
		ZipfS: 1.4, Seed: 12, DupRate: 0.5, DupSnippetLen: 20, DupMutateProb: 0.05,
	})
	ix := buildTestIndex(t, c, 8, 3, 5, 0, 0)
	s := New(ix, c)
	q := c.Text(0)[:12]

	plan, err := s.Explain(q, Options{Theta: 0.5, PrefixFilter: true, LongListThreshold: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Long) != 8 {
		t.Fatalf("plan covers %d lists, want 8", len(plan.Long))
	}
	numLong := 0
	for _, l := range plan.Long {
		if l {
			numLong++
		}
	}
	if numLong != plan.NumLong {
		t.Fatalf("NumLong %d, counted %d", plan.NumLong, numLong)
	}
	if plan.NumLong > plan.Beta-1 {
		t.Fatalf("deferred %d lists with beta %d", plan.NumLong, plan.Beta)
	}
	if plan.Alpha != max(1, plan.Beta-plan.NumLong) {
		t.Fatalf("Alpha %d inconsistent with Beta %d, NumLong %d", plan.Alpha, plan.Beta, plan.NumLong)
	}
	if plan.Cutoff != 10 {
		t.Fatalf("Cutoff %d, want 10", plan.Cutoff)
	}

	// The plan stage reads no posting lists.
	before := ix.IOStats()
	if _, err := s.Explain(q, Options{Theta: 0.5, PrefixFilter: true}); err != nil {
		t.Fatal(err)
	}
	if after := ix.IOStats(); after.BytesRead != before.BytesRead || after.ReadTime != before.ReadTime {
		t.Fatalf("Explain performed I/O: %+v -> %+v", before, after)
	}

	// Without prefix filtering nothing is deferred.
	plain, err := s.Explain(q, Options{Theta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if plain.NumLong != 0 || plain.Alpha != plain.Beta {
		t.Fatalf("plain plan defers: %+v", plain)
	}
}
