package search

// The staged query pipeline. One search runs as
//
//	sketch → plan → gather → count → merge → verify
//
// over a per-query execution context (queryCtx) that owns every piece
// of mutable query state: the min-hash sketch, the deferral plan,
// posting scratch buffers, the per-text window groups, and a private
// I/O stats sink the index reads report into. Contexts are pooled per
// Searcher, so steady-state queries allocate little beyond their
// results, and because no state is shared between in-flight queries,
// Stats.IOBytes/IOTime are exact at any concurrency.

import (
	"context"
	"fmt"
	"math"
	"sort"

	"ndss/internal/hash"
	"ndss/internal/index"
	"ndss/internal/obs"
)

// Plan is one query's deferral plan, the output of the plan stage: for
// each of the k inverted lists, whether it is read fully up front
// (short) or deferred to per-candidate zone-map probes (long, §3.5).
type Plan struct {
	// Long[fn] reports whether function fn's list is deferred.
	Long []bool
	// NumLong is the number of deferred lists (at most Beta-1, so the
	// short-list filter threshold stays positive).
	NumLong int
	// Cutoff is the list-length threshold applied, 0 when the plan came
	// from the cost model (CostBasedPrefix) or no filtering was asked.
	Cutoff int
	// Beta is the required collision count ceil(K*Theta); Alpha is the
	// short-list filter threshold Beta - NumLong (floored at 1).
	Beta, Alpha int
}

// queryCtx is the per-query execution context: scratch buffers, the
// deferral plan, and the I/O stats sink. A context is owned by exactly
// one query from acquireCtx to releaseCtx.
type queryCtx struct {
	ctx    context.Context
	opts   Options
	minLen int

	sketch []uint64
	plan   Plan

	lens  []int // scratch: per-function list lengths
	order []int // scratch: function ids, sorted by list length

	postings []index.Posting           // scratch for short-list reads
	windows  []index.Posting           // per-text merged windows
	groups   map[uint32][]taggedWindow // short-list postings by text
	free     [][]taggedWindow          // recycled group slices
	qual     []spanRect                // scratch for span merging

	io    index.IOStats // private per-query I/O sink
	st    *Stats
	trace obs.Trace // per-query span recorder (pooled with the context)
}

// spanRect pairs a qualifying rectangle with its merged span.
type spanRect struct {
	span Interval
	rect Rect
}

func (s *Searcher) acquireCtx(ctx context.Context, opts Options, minLen, beta int, st *Stats) *queryCtx {
	qc, _ := s.ctxPool.Get().(*queryCtx)
	if qc == nil {
		qc = &queryCtx{groups: make(map[uint32][]taggedWindow)}
	}
	qc.ctx = ctx
	qc.opts = opts
	qc.minLen = minLen
	qc.plan.Beta = beta
	qc.st = st
	qc.io.Reset()
	// Traced queries against a multi-segment index get per-segment I/O
	// attribution: the sink carries one slot per segment (capacity kept
	// across the pool) and the reader charges each read to the segment
	// it touched. Untraced or single-segment queries skip this — the
	// sink stays slotless and the reader's fast path is unchanged.
	if opts.Trace {
		if sc, ok := s.ix.(interface{ SegmentCount() int }); ok {
			if n := sc.SegmentCount(); n > 1 {
				if cap(qc.io.PerSegment) < n {
					qc.io.PerSegment = make([]index.SegmentIO, n)
				}
				qc.io.PerSegment = qc.io.PerSegment[:n]
				for i := range qc.io.PerSegment {
					qc.io.PerSegment[i] = index.SegmentIO{}
				}
			}
		}
	}
	qc.trace.Reset()
	return qc
}

// checkCancel is the pipeline's cancellation checkpoint: it reports the
// query context's error, if any. Stages call it between each other and
// before every list read or probe, so no I/O starts after the deadline.
func (qc *queryCtx) checkCancel() error {
	return qc.ctx.Err()
}

func (s *Searcher) releaseCtx(qc *queryCtx) {
	// Recycle the per-text group slices so the next query's gather stage
	// appends into ready-made capacity instead of allocating.
	for id, g := range qc.groups {
		qc.free = append(qc.free, g[:0])
		delete(qc.groups, id)
	}
	qc.sketch = qc.sketch[:0]
	qc.postings = qc.postings[:0]
	qc.windows = qc.windows[:0]
	qc.qual = qc.qual[:0]
	qc.st = nil
	qc.ctx = nil
	s.ctxPool.Put(qc)
}

// stageSketch computes the query's k-mins sketch into the context.
func (s *Searcher) stageSketch(qc *queryCtx, query []uint32) error {
	sk, err := s.ix.Family().SketchAppend(query, qc.sketch[:0])
	if err != nil {
		return err
	}
	qc.sketch = sk
	return nil
}

// stagePlan splits the k lists into short (read fully) and long
// (deferred to zone-map probes), honoring the fixed cutoff or the cost
// model. At most beta-1 lists go long so a candidate must still hit at
// least one short list.
func (s *Searcher) stagePlan(qc *queryCtx) {
	k := len(qc.sketch)
	if cap(qc.plan.Long) < k {
		qc.plan.Long = make([]bool, k)
	}
	qc.plan.Long = qc.plan.Long[:k]
	for i := range qc.plan.Long {
		qc.plan.Long[i] = false
	}
	qc.plan.NumLong, qc.plan.Cutoff = 0, 0
	beta := qc.plan.Beta

	switch {
	case qc.opts.CostBasedPrefix:
		qc.lens = qc.lens[:0]
		for fn := 0; fn < k; fn++ {
			qc.lens = append(qc.lens, s.ix.ListLength(fn, qc.sketch[fn]))
		}
		for fn, long := range ChooseDeferral(qc.lens, beta, DefaultCostModel()) {
			if long {
				qc.plan.Long[fn] = true
				qc.plan.NumLong++
			}
		}
	case qc.opts.PrefixFilter:
		cutoff := qc.opts.LongListThreshold
		if cutoff == 0 {
			cutoff = s.defaultCutoff()
		}
		qc.plan.Cutoff = cutoff
		qc.lens, qc.order = qc.lens[:0], qc.order[:0]
		for fn := 0; fn < k; fn++ {
			n := s.ix.ListLength(fn, qc.sketch[fn])
			qc.lens = append(qc.lens, n)
			qc.order = append(qc.order, fn)
			if n > cutoff {
				qc.plan.Long[fn] = true
				qc.plan.NumLong++
			}
		}
		// A candidate must appear in >= beta lists, so it must hit at
		// least one of the (k - beta + 1) shortest. Demote the shortest
		// deferred lists until at most beta-1 remain long.
		if qc.plan.NumLong > beta-1 {
			sort.Slice(qc.order, func(i, j int) bool { return qc.lens[qc.order[i]] < qc.lens[qc.order[j]] })
			for _, fn := range qc.order {
				if qc.plan.NumLong <= beta-1 {
					break
				}
				if qc.plan.Long[fn] {
					qc.plan.Long[fn] = false
					qc.plan.NumLong--
				}
			}
		}
	}
	// Never defer a list the reader cannot probe cheaply: without a zone
	// map, ReadListForText degrades to a full read plus filter for every
	// candidate text — strictly worse than the single up-front read a
	// short list costs. (Query-time cutoffs below the build-time
	// LongListCutoff, and the cost model, can otherwise produce such
	// plans.)
	if qc.plan.NumLong > 0 {
		for fn := range qc.plan.Long {
			if qc.plan.Long[fn] && !s.ix.HasZoneMap(fn, qc.sketch[fn]) {
				qc.plan.Long[fn] = false
				qc.plan.NumLong--
			}
		}
	}
	qc.plan.Alpha = beta - qc.plan.NumLong
	if qc.plan.Alpha < 1 {
		qc.plan.Alpha = 1
	}
}

// stageGather reads every short list and groups its postings by text,
// charging the reads to the query's private I/O sink.
func (s *Searcher) stageGather(qc *queryCtx) error {
	for fn := range qc.plan.Long {
		if qc.plan.Long[fn] {
			continue
		}
		if err := qc.checkCancel(); err != nil {
			return err
		}
		qc.st.ShortLists++
		ps, err := s.ix.ReadListInto(qc.postings[:0], fn, qc.sketch[fn], &qc.io)
		if err != nil {
			return err
		}
		qc.postings = ps
		for _, p := range ps {
			g, ok := qc.groups[p.TextID]
			if !ok && len(qc.free) > 0 {
				g = qc.free[len(qc.free)-1]
				qc.free = qc.free[:len(qc.free)-1]
			}
			qc.groups[p.TextID] = append(g, taggedWindow{fn: fn, p: p})
		}
	}
	qc.st.LongLists = qc.plan.NumLong
	return nil
}

// stageCount runs the count and merge stages over every candidate text
// and returns the final, position-ordered matches.
func (s *Searcher) stageCount(qc *queryCtx) ([]Match, error) {
	var matches []Match
	for textID, group := range qc.groups {
		ms, err := s.countText(qc, textID, group)
		if err != nil {
			return nil, err
		}
		matches = append(matches, ms...)
	}
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].TextID != matches[j].TextID {
			return matches[i].TextID < matches[j].TextID
		}
		return matches[i].Start < matches[j].Start
	})
	return matches, nil
}

// countText applies the short-list filter to one text, probes the
// deferred lists for survivors (zone maps keep each probe proportional
// to the text's postings), and counts collisions (Algorithm 4).
func (s *Searcher) countText(qc *queryCtx, textID uint32, group []taggedWindow) ([]Match, error) {
	if len(group) < qc.plan.Alpha {
		return nil, nil
	}
	qc.windows = qc.windows[:0]
	for _, tw := range group {
		qc.windows = append(qc.windows, tw.p)
	}
	rects := CollisionCount(qc.windows, qc.plan.Alpha)
	if len(rects) == 0 {
		return nil, nil
	}
	qc.st.Candidates++
	if qc.plan.NumLong > 0 {
		qc.st.Probed++
		for fn := range qc.plan.Long {
			if !qc.plan.Long[fn] {
				continue
			}
			if err := qc.checkCancel(); err != nil {
				return nil, err
			}
			// Per-probe spans are detailed-trace only: a hot query can
			// probe hundreds of (candidate, list) pairs, and the default
			// path must not pay two clock reads for each.
			probe := obs.None
			if qc.opts.Trace {
				probe = qc.trace.Start("probe")
				qc.trace.Annotate(probe, "fn", int64(fn))
				qc.trace.Annotate(probe, "text", int64(textID))
			}
			ws, err := s.ix.ReadListForTextInto(qc.windows, fn, qc.sketch[fn], textID, &qc.io)
			qc.trace.End(probe)
			if err != nil {
				return nil, err
			}
			qc.windows = ws
		}
		rects = CollisionCount(qc.windows, qc.plan.Beta)
	}
	sp := qc.trace.Start(StageNames[4]) // merge
	ms := s.mergeText(qc, textID, rects)
	qc.st.StageTimes.Merge += qc.trace.End(sp)
	return ms, nil
}

// mergeText filters rectangles to those holding a qualifying sequence
// (count >= beta and a sequence of length >= minLen) and merges their
// overlapping spans into disjoint matches (the paper's Remark).
func (s *Searcher) mergeText(qc *queryCtx, textID uint32, rects []Rect) []Match {
	qc.qual = qc.qual[:0]
	for _, r := range rects {
		if r.Count < qc.plan.Beta || !r.HasSequenceOfLength(qc.minLen) {
			continue
		}
		qc.qual = append(qc.qual, spanRect{span: r.Span(), rect: r})
	}
	if len(qc.qual) == 0 {
		return nil
	}
	qc.st.Rects += len(qc.qual)
	sort.Slice(qc.qual, func(i, j int) bool { return qc.qual[i].span.Lo < qc.qual[j].span.Lo })
	var out []Match
	cur := Match{TextID: textID, Start: qc.qual[0].span.Lo, End: qc.qual[0].span.Hi, Collisions: qc.qual[0].rect.Count}
	if qc.opts.KeepRects {
		cur.Rects = []Rect{qc.qual[0].rect}
	}
	for _, q := range qc.qual[1:] {
		if q.span.Lo <= cur.End { // overlapping: merge
			if q.span.Hi > cur.End {
				cur.End = q.span.Hi
			}
			if q.rect.Count > cur.Collisions {
				cur.Collisions = q.rect.Count
			}
			if qc.opts.KeepRects {
				cur.Rects = append(cur.Rects, q.rect)
			}
		} else {
			cur.EstJaccard = float64(cur.Collisions) / float64(qc.st.K)
			out = append(out, cur)
			cur = Match{TextID: textID, Start: q.span.Lo, End: q.span.Hi, Collisions: q.rect.Count}
			if qc.opts.KeepRects {
				cur.Rects = []Rect{q.rect}
			}
		}
	}
	cur.EstJaccard = float64(cur.Collisions) / float64(qc.st.K)
	out = append(out, cur)
	return out
}

// stageVerify fills Match.Jaccard with the exact distinct Jaccard
// similarity between the query and each merged span. validate has
// already guaranteed a TextSource is attached.
func (s *Searcher) stageVerify(qc *queryCtx, query []uint32, matches []Match) error {
	for i := range matches {
		if err := qc.checkCancel(); err != nil {
			return err
		}
		m := &matches[i]
		text, err := s.src.ReadText(m.TextID)
		if err != nil {
			return fmt.Errorf("search: verify text %d: %w", m.TextID, err)
		}
		if int(m.End) >= len(text) {
			return fmt.Errorf("search: match span [%d, %d] exceeds text %d length %d",
				m.Start, m.End, m.TextID, len(text))
		}
		matches[i].Jaccard = hash.DistinctJaccard(query, text[m.Start:m.End+1])
	}
	return nil
}

// Explain returns the deferral plan Search would execute query with,
// without reading any posting lists. The returned Plan is a private
// copy the caller may retain.
func (s *Searcher) Explain(query []uint32, opts Options) (*Plan, error) {
	minLen, err := opts.validate(s.ix.Meta(), true)
	if err != nil {
		return nil, err
	}
	if len(query) == 0 {
		return nil, fmt.Errorf("search: empty query")
	}
	k := s.ix.K()
	beta := int(math.Ceil(float64(k) * opts.Theta))
	if beta < 1 {
		beta = 1
	}
	//lint:ignore ctxflow Explain only sketches and plans; it issues no I/O to cancel
	qc := s.acquireCtx(context.Background(), opts, minLen, beta, &Stats{K: k, Beta: beta})
	defer s.releaseCtx(qc)
	if err := s.stageSketch(qc, query); err != nil {
		return nil, err
	}
	s.stagePlan(qc)
	plan := qc.plan
	plan.Long = append([]bool(nil), qc.plan.Long...)
	return &plan, nil
}
