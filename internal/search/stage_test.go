package search

import (
	"testing"
	"time"
)

// stageFixture builds a zone-mapped index with a low long-list cutoff
// so queries exercise both short-list gathers and deferred probes.
func stageFixture(t *testing.T) (*Searcher, []uint32) {
	t.Helper()
	c := smallDupCorpus(40, 40, 120, 40, 7)
	ix := buildTestIndex(t, c, 8, 21, 5, 4, 8)
	return New(ix, c), c.Text(0)[:12]
}

func TestStageTimesRecorded(t *testing.T) {
	s, q := stageFixture(t)
	_, st, err := s.Search(q, Options{Theta: 0.5, PrefixFilter: true, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	d := st.StageTimes.Durations()
	for i, name := range StageNames {
		if d[i] < 0 {
			t.Errorf("stage %s duration %v negative", name, d[i])
		}
	}
	if st.StageTimes.Sketch == 0 && st.StageTimes.Gather == 0 {
		t.Fatalf("no stage recorded any time: %+v", st.StageTimes)
	}
	// The decomposition must not exceed the measured total: stages are
	// disjoint regions of one query.
	var sum time.Duration
	for _, v := range d {
		sum += v
	}
	if sum > st.Total {
		t.Fatalf("stage sum %v exceeds total %v", sum, st.Total)
	}
	// Default path: no detailed spans copied out.
	if st.Spans != nil {
		t.Fatalf("Spans attached without Options.Trace: %d spans", len(st.Spans))
	}
}

func TestStageTimesTraceSpans(t *testing.T) {
	s, q := stageFixture(t)
	// A tiny cutoff forces deferred lists, so probe spans appear.
	_, st, err := s.Search(q, Options{
		Theta: 0.5, PrefixFilter: true, LongListThreshold: 8, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Spans == nil {
		t.Fatal("Options.Trace set but no spans attached")
	}
	seen := map[string]int{}
	for i := range st.Spans {
		seen[st.Spans[i].Name]++
		if st.Spans[i].Dur < 0 {
			t.Errorf("span %s left open", st.Spans[i].Name)
		}
	}
	for _, name := range StageNames {
		if name == "merge" || name == "verify" {
			continue // merge/verify spans appear only when there is work
		}
		if seen[name] == 0 {
			t.Errorf("no %s span in trace: %v", name, seen)
		}
	}
	if st.LongLists > 0 && st.Probed > 0 {
		if seen["probe"] == 0 {
			t.Errorf("deferred probes ran (%d texts, %d long lists) but no probe span", st.Probed, st.LongLists)
		}
		// Probe spans carry the function and text attributes.
		for i := range st.Spans {
			if st.Spans[i].Name != "probe" {
				continue
			}
			if _, ok := st.Spans[i].Attr("fn"); !ok {
				t.Errorf("probe span missing fn attribute")
			}
			break
		}
	}
	if st.Matches > 0 && seen["merge"] == 0 {
		t.Errorf("query matched but no merge span: %v", seen)
	}
}

func TestBatchStageTimes(t *testing.T) {
	s, q := stageFixture(t)
	queries := [][]uint32{q, q, {0}} // last one likely matches nothing but still runs
	results := s.SearchBatch(queries, Options{Theta: 0.5, PrefixFilter: true}, 2)
	total, n := BatchStageTimes(results)
	if n != 3 {
		t.Fatalf("aggregated %d queries, want 3 (errors: %v %v %v)",
			n, results[0].Err, results[1].Err, results[2].Err)
	}
	var want StageTimes
	for _, r := range results {
		want = want.Add(r.Stats.StageTimes)
	}
	if total != want {
		t.Fatalf("BatchStageTimes %+v != manual sum %+v", total, want)
	}
}

func TestStageTimesAdd(t *testing.T) {
	a := StageTimes{Sketch: 1, Plan: 2, Gather: 3, Count: 4, Merge: 5, Verify: 6}
	b := StageTimes{Sketch: 10, Plan: 20, Gather: 30, Count: 40, Merge: 50, Verify: 60}
	got := a.Add(b)
	want := StageTimes{Sketch: 11, Plan: 22, Gather: 33, Count: 44, Merge: 55, Verify: 66}
	if got != want {
		t.Fatalf("Add = %+v, want %+v", got, want)
	}
	if got.Durations() != [NumStages]time.Duration{11, 22, 33, 44, 55, 66} {
		t.Fatalf("Durations = %v", got.Durations())
	}
}
