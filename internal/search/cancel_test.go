package search

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"ndss/internal/index"
)

// cancellingReader wraps an IndexReader and cancels a context after a
// given number of list reads, simulating a deadline expiring mid-query.
type cancellingReader struct {
	IndexReader
	cancel     context.CancelFunc
	afterReads int32
	reads      atomic.Int32
}

func (r *cancellingReader) ReadListInto(dst []index.Posting, fn int, h uint64, sink *index.IOStats) ([]index.Posting, error) {
	if r.reads.Add(1) >= r.afterReads {
		r.cancel()
	}
	return r.IndexReader.ReadListInto(dst, fn, h, sink)
}

func TestSearchContextAlreadyCanceled(t *testing.T) {
	c := smallDupCorpus(20, 30, 80, 30, 13)
	ix := buildTestIndex(t, c, 8, 9, 5, 0, 0)
	s := New(ix, c)
	q := c.Text(0)[:12]

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := ix.IOStats()
	ms, st, err := s.SearchContext(ctx, q, Options{Theta: 0.5})
	after := ix.IOStats()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if ms != nil || st != nil {
		t.Fatalf("canceled query returned results: %v, %v", ms, st)
	}
	if after.BytesRead != before.BytesRead || after.ReadTime != before.ReadTime {
		t.Fatalf("canceled query performed I/O: %+v -> %+v", before, after)
	}
}

func TestSearchContextCanceledMidGather(t *testing.T) {
	c := smallDupCorpus(20, 30, 80, 30, 13)
	ix := buildTestIndex(t, c, 8, 9, 5, 0, 0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cr := &cancellingReader{IndexReader: ix, cancel: cancel, afterReads: 2}
	s := New(cr, c)
	q := c.Text(0)[:12]

	_, _, err := s.SearchContext(ctx, q, Options{Theta: 0.5})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The checkpoint before the third read must have stopped the gather:
	// the cancel fired during read 2, so at most 2 of the 8 lists were
	// read.
	if got := cr.reads.Load(); got > 2 {
		t.Fatalf("%d lists read after cancellation (checkpoint skipped)", got)
	}
}

func TestSearchBatchContextCanceled(t *testing.T) {
	c := smallDupCorpus(20, 30, 80, 30, 13)
	ix := buildTestIndex(t, c, 8, 9, 5, 0, 0)
	s := New(ix, c)
	queries := concurrencyQueries(t, c, 8, 30)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, parallelism := range []int{1, 4} {
		for i, res := range s.SearchBatchContext(ctx, queries, Options{Theta: 0.5}, parallelism) {
			if !errors.Is(res.Err, context.Canceled) {
				t.Fatalf("parallelism %d query %d: want context.Canceled, got %v", parallelism, i, res.Err)
			}
		}
	}
}

// TestSearchContextBackground: a background context must not change
// results or stats relative to plain Search.
func TestSearchContextBackground(t *testing.T) {
	c := smallDupCorpus(20, 30, 80, 30, 13)
	ix := buildTestIndex(t, c, 8, 9, 5, 4, 8)
	s := New(ix, c)
	q := c.Text(0)[:12]
	opts := Options{Theta: 0.5, PrefixFilter: true, LongListThreshold: 10, Verify: true}
	wantM, wantSt, err := s.Search(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	gotM, gotSt, err := s.SearchContext(context.Background(), q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotM) != len(wantM) || gotSt.IOBytes != wantSt.IOBytes || gotSt.ShortLists != wantSt.ShortLists {
		t.Fatalf("context search diverged: %+v vs %+v", gotSt, wantSt)
	}
}
