package search

import (
	"testing"

	"ndss/internal/corpus"
)

func TestSearchTopK(t *testing.T) {
	// Three texts carrying copies of a passage with 0, 2 and 5 edits:
	// top-k must rank them in that order.
	base := make([]uint32, 40)
	for i := range base {
		base[i] = uint32(100 + i)
	}
	exact := append([]uint32{}, base...)
	twoEdits := append([]uint32{}, base...)
	twoEdits[5], twoEdits[20] = 9001, 9002
	fiveEdits := append([]uint32{}, base...)
	for i, p := range []int{3, 11, 19, 27, 35} {
		fiveEdits[p] = uint32(9100 + i)
	}
	noise := make([]uint32, 40)
	for i := range noise {
		noise[i] = uint32(5000 + i)
	}
	c := corpus.New([][]uint32{exact, twoEdits, fiveEdits, noise})
	ix := buildTestIndex(t, c, 32, 61, 10, 0, 0)
	s := New(ix, c)

	ms, st, err := s.SearchTopK(base, TopKOptions{N: 2, FloorTheta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if st.Matches != len(ms) {
		t.Fatalf("stats.Matches = %d, len = %d", st.Matches, len(ms))
	}
	if len(ms) != 2 {
		t.Fatalf("got %d matches, want 2", len(ms))
	}
	if ms[0].TextID != 0 || ms[1].TextID != 1 {
		t.Fatalf("ranking wrong: %+v", ms)
	}
	if ms[0].Collisions < ms[1].Collisions {
		t.Fatalf("not sorted by collisions: %+v", ms)
	}

	// N larger than available returns everything above the floor.
	all, _, err := s.SearchTopK(base, TopKOptions{N: 100, FloorTheta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	ids := map[uint32]bool{}
	for _, m := range all {
		ids[m.TextID] = true
	}
	if !ids[0] || !ids[1] || ids[3] {
		t.Fatalf("unexpected result set: %+v", all)
	}
}

// TestSearchTopKTies: when several matches share the boundary collision
// count, ranking must fall back to (TextID, Start) so the order — and
// the truncation at N — is deterministic across runs.
func TestSearchTopKTies(t *testing.T) {
	// Five identical copies of one passage: all five matches collide on
	// every min-hash, a five-way tie at the truncation boundary.
	passage := make([]uint32, 40)
	for i := range passage {
		passage[i] = uint32(200 + i)
	}
	const copies = 5
	var texts [][]uint32
	for i := 0; i < copies; i++ {
		texts = append(texts, append([]uint32{}, passage...))
	}
	noise := make([]uint32, 40)
	for i := range noise {
		noise[i] = uint32(7000 + i)
	}
	texts = append(texts, noise)
	c := corpus.New(texts)
	ix := buildTestIndex(t, c, 16, 91, 10, 0, 0)
	s := New(ix, c)

	const n = 3
	var first []Match
	for run := 0; run < 5; run++ {
		ms, _, err := s.SearchTopK(passage, TopKOptions{N: n, FloorTheta: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) != n {
			t.Fatalf("run %d: got %d matches, want %d", run, len(ms), n)
		}
		for i, m := range ms {
			if m.TextID != uint32(i) {
				t.Fatalf("run %d: rank %d is text %d, want %d (tie not broken by TextID)",
					run, i, m.TextID, i)
			}
			if m.Collisions != ms[0].Collisions {
				t.Fatalf("run %d: collision counts differ among identical copies: %+v", run, ms)
			}
		}
		if run == 0 {
			first = ms
		} else {
			for i := range ms {
				if ms[i].TextID != first[i].TextID || ms[i].Start != first[i].Start ||
					ms[i].End != first[i].End || ms[i].Collisions != first[i].Collisions {
					t.Fatalf("run %d: truncation unstable: %+v vs %+v", run, ms[i], first[i])
				}
			}
		}
	}
}

func TestSearchTopKValidation(t *testing.T) {
	c := smallDupCorpus(5, 20, 40, 30, 3)
	ix := buildTestIndex(t, c, 4, 63, 5, 0, 0)
	s := New(ix, c)
	q := c.Text(0)[:10]
	if _, _, err := s.SearchTopK(q, TopKOptions{N: 0}); err == nil {
		t.Error("N=0 should fail")
	}
	if _, _, err := s.SearchTopK(q, TopKOptions{N: 5, FloorTheta: 1.5}); err == nil {
		t.Error("FloorTheta > 1 should fail")
	}
	if _, _, err := s.SearchTopK(q, TopKOptions{N: 5}); err != nil {
		t.Errorf("default floor should work: %v", err)
	}
}
