package search

import (
	"math/rand"
	"reflect"
	"testing"

	"ndss/internal/corpus"
)

func TestChooseDeferralBasics(t *testing.T) {
	m := DefaultCostModel()
	// No lists.
	if got := ChooseDeferral(nil, 5, m); len(got) != 0 {
		t.Fatalf("empty input: %v", got)
	}
	// Uniform tiny lists: nothing worth deferring.
	small := []int{2, 3, 2, 1, 3, 2, 2, 1}
	got := ChooseDeferral(small, 6, m)
	for i, d := range got {
		if d {
			t.Fatalf("tiny list %d deferred: %v", i, got)
		}
	}
	// One giant list among tiny ones: the giant gets deferred.
	skew := []int{2, 3, 1000000, 1, 3, 2, 2, 1}
	got = ChooseDeferral(skew, 6, m)
	if !got[2] {
		t.Fatalf("giant list not deferred: %v", got)
	}
	for i, d := range got {
		if i != 2 && d {
			t.Fatalf("small list %d deferred alongside: %v", i, got)
		}
	}
}

func TestChooseDeferralRespectsBeta(t *testing.T) {
	m := DefaultCostModel()
	lengths := []int{1e6, 1e6, 1e6, 1e6, 1e6, 1e6, 1e6, 1e6}
	for beta := 1; beta <= 8; beta++ {
		got := ChooseDeferral(lengths, beta, m)
		deferred := 0
		for _, d := range got {
			if d {
				deferred++
			}
		}
		if deferred > beta-1 {
			t.Fatalf("beta=%d: deferred %d lists", beta, deferred)
		}
	}
	// beta=1 can never defer.
	got := ChooseDeferral(lengths, 1, m)
	for _, d := range got {
		if d {
			t.Fatal("beta=1 deferred a list")
		}
	}
}

func TestChooseDeferralPrefersLongest(t *testing.T) {
	m := DefaultCostModel()
	lengths := []int{10, 500000, 20, 800000, 30, 5}
	got := ChooseDeferral(lengths, 4, m)
	// Whatever the count, deferral must take the longest lists first:
	// a deferred list may not be shorter than a non-deferred one.
	minDeferred := int(^uint(0) >> 1)
	maxKept := -1
	for i, d := range got {
		if d && lengths[i] < minDeferred {
			minDeferred = lengths[i]
		}
		if !d && lengths[i] > maxKept {
			maxKept = lengths[i]
		}
	}
	if minDeferred < maxKept {
		t.Fatalf("deferred a shorter list (%d) while keeping a longer one (%d): %v",
			minDeferred, maxKept, got)
	}
}

// TestCostBasedPrefixEquivalence: the cost-based deferral must return
// exactly the same matches as the unfiltered search.
func TestCostBasedPrefixEquivalence(t *testing.T) {
	c := smallDupCorpus(25, 20, 70, 25, 123)
	ix := buildTestIndex(t, c, 8, 45, 5, 4, 8)
	s := New(ix, c)
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 8; trial++ {
		q, _, _, ok := corpus.PlantQuery(c, 10, 0.2, 25, rng)
		if !ok {
			continue
		}
		theta := []float64{0.4, 0.6, 0.8, 1.0}[trial%4]
		base, _, err := s.Search(q, Options{Theta: theta})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := s.Search(q, Options{Theta: theta, CostBasedPrefix: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(matchesToSpans(got), matchesToSpans(base)) {
			t.Fatalf("trial %d theta %v: cost-based result differs", trial, theta)
		}
	}
}

func TestSearchBatchOrderAndParallel(t *testing.T) {
	c := smallDupCorpus(20, 20, 60, 30, 131)
	ix := buildTestIndex(t, c, 8, 47, 5, 0, 0)
	s := New(ix, c)
	rng := rand.New(rand.NewSource(15))
	var queries [][]uint32
	for len(queries) < 12 {
		if q, _, _, ok := corpus.PlantQuery(c, 10, 0.1, 30, rng); ok {
			queries = append(queries, q)
		}
	}
	seq := s.SearchBatch(queries, Options{Theta: 0.6}, 1)
	par := s.SearchBatch(queries, Options{Theta: 0.6}, 4)
	if len(seq) != len(queries) || len(par) != len(queries) {
		t.Fatal("result count mismatch")
	}
	for i := range seq {
		if seq[i].Err != nil || par[i].Err != nil {
			t.Fatalf("errors: %v %v", seq[i].Err, par[i].Err)
		}
		if !reflect.DeepEqual(matchesToSpans(seq[i].Matches), matchesToSpans(par[i].Matches)) {
			t.Fatalf("query %d: parallel result differs", i)
		}
	}
	// Errors propagate per query.
	bad := s.SearchBatch([][]uint32{nil, queries[0]}, Options{Theta: 0.6}, 2)
	if bad[0].Err == nil {
		t.Fatal("empty query should error")
	}
	if bad[1].Err != nil {
		t.Fatalf("valid query errored: %v", bad[1].Err)
	}
}

func TestSearchBatchEmpty(t *testing.T) {
	c := smallDupCorpus(5, 20, 40, 30, 7)
	ix := buildTestIndex(t, c, 4, 49, 5, 0, 0)
	s := New(ix, c)
	if got := s.SearchBatch(nil, Options{Theta: 0.5}, 4); len(got) != 0 {
		t.Fatalf("empty batch: %v", got)
	}
}
