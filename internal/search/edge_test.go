package search

import (
	"reflect"
	"testing"

	"ndss/internal/corpus"
	"ndss/internal/hash"
)

// Edge-case coverage for the query path beyond the randomized oracle
// tests in search_test.go.

func TestSearchQueryWithUnknownTokens(t *testing.T) {
	c := corpus.New([][]uint32{
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
	})
	ix := buildTestIndex(t, c, 8, 1, 5, 0, 0)
	s := New(ix, c)
	// Tokens never seen in the corpus: sketches can't collide.
	q := []uint32{1000, 1001, 1002, 1003, 1004, 1005}
	ms, st, err := s.Search(q, Options{Theta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Fatalf("unknown-token query matched: %+v", ms)
	}
	if st.Candidates != 0 {
		t.Fatalf("candidates = %d", st.Candidates)
	}
}

func TestSearchBetaOne(t *testing.T) {
	// Theta small enough that a single collision qualifies: every text
	// sharing any min-hash with the query is scanned. Exercises alpha=1
	// paths.
	c := smallDupCorpus(10, 20, 40, 20, 55)
	ix := buildTestIndex(t, c, 4, 3, 5, 0, 0)
	s := New(ix, c)
	q := c.Text(0)[:10]
	ms, st, err := s.Search(q, Options{Theta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if st.Beta != 1 {
		t.Fatalf("Beta = %d, want 1", st.Beta)
	}
	if len(ms) == 0 {
		t.Fatal("beta=1 self-query found nothing")
	}
}

func TestSearchIdenticalTexts(t *testing.T) {
	// The same text stored under three ids: a hit must be reported for
	// each id independently.
	text := []uint32{10, 20, 30, 40, 50, 60, 70, 80}
	c := corpus.New([][]uint32{text, text, text})
	ix := buildTestIndex(t, c, 8, 5, 5, 0, 0)
	s := New(ix, c)
	ms, _, err := s.Search(text, Options{Theta: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	ids := map[uint32]bool{}
	for _, m := range ms {
		ids[m.TextID] = true
	}
	if len(ids) != 3 {
		t.Fatalf("found %d of 3 identical texts: %+v", len(ids), ms)
	}
}

func TestSearchSingleTokenRepeated(t *testing.T) {
	// A text of one repeated token has distinct-set {tok}; a query of
	// that token sequence has Jaccard 1 with every window.
	c := corpus.New([][]uint32{
		{7, 7, 7, 7, 7, 7, 7, 7},
		{1, 2, 3, 4, 5, 6, 7, 8},
	})
	ix := buildTestIndex(t, c, 8, 9, 4, 0, 0)
	s := New(ix, c)
	q := []uint32{7, 7, 7, 7}
	ms, _, err := s.Search(q, Options{Theta: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range ms {
		if m.TextID == 0 {
			found = true
			if m.Start != 0 || m.End != 7 {
				t.Fatalf("span = [%d, %d], want [0, 7]", m.Start, m.End)
			}
		}
	}
	if !found {
		t.Fatalf("repeated-token text not matched: %+v", ms)
	}
}

func TestSearchQueryLongerThanTexts(t *testing.T) {
	c := corpus.New([][]uint32{
		{1, 2, 3, 4, 5, 6},
	})
	ix := buildTestIndex(t, c, 4, 2, 5, 0, 0)
	s := New(ix, c)
	q := make([]uint32, 100)
	for i := range q {
		q[i] = uint32(i)
	}
	// The query's distinct set is huge; the 6-token text windows cannot
	// reach high similarity, but the search must not error.
	ms, _, err := s.Search(q, Options{Theta: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Fatalf("matched: %+v", ms)
	}
}

// TestSearchMergedSpansDisjoint asserts the paper's reporting rule: all
// reported spans of one text are pairwise disjoint.
func TestSearchMergedSpansDisjoint(t *testing.T) {
	c := smallDupCorpus(25, 30, 80, 25, 77)
	ix := buildTestIndex(t, c, 8, 7, 5, 0, 0)
	s := New(ix, c)
	for trial := 0; trial < 10; trial++ {
		q := c.Text(uint32(trial))[:12]
		ms, _, err := s.Search(q, Options{Theta: 0.4})
		if err != nil {
			t.Fatal(err)
		}
		byText := map[uint32][]Match{}
		for _, m := range ms {
			byText[m.TextID] = append(byText[m.TextID], m)
		}
		for id, list := range byText {
			for i := 1; i < len(list); i++ {
				if list[i].Start <= list[i-1].End {
					t.Fatalf("text %d spans overlap: %+v", id, list)
				}
			}
		}
	}
}

// TestSearchRectsConsistentWithSpan: with KeepRects, every rect must lie
// inside its match span and carry at least beta collisions.
func TestSearchRectsConsistentWithSpan(t *testing.T) {
	c := smallDupCorpus(20, 30, 70, 30, 88)
	ix := buildTestIndex(t, c, 8, 11, 5, 0, 0)
	s := New(ix, c)
	q := c.Text(3)[5:20]
	ms, st, err := s.Search(q, Options{Theta: 0.5, KeepRects: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if len(m.Rects) == 0 {
			t.Fatal("no rects kept")
		}
		for _, r := range m.Rects {
			if r.ILo < m.Start || r.JHi > m.End {
				t.Fatalf("rect %+v outside span [%d, %d]", r, m.Start, m.End)
			}
			if r.Count < st.Beta {
				t.Fatalf("kept rect with %d < beta %d collisions", r.Count, st.Beta)
			}
		}
	}
}

// TestEstimateConsistency: EstJaccard of each match must equal the best
// rect's collision fraction, and a full sketch comparison of the best
// core sequence must agree.
func TestEstimateConsistency(t *testing.T) {
	const k = 16
	c := smallDupCorpus(15, 25, 60, 30, 99)
	ix := buildTestIndex(t, c, k, 13, 5, 0, 0)
	fam := hash.MustNewFamily(k, 13)
	s := New(ix, c)
	q := c.Text(2)[3:18]
	qs, _ := fam.Sketch(q)
	ms, _, err := s.Search(q, Options{Theta: 0.5, KeepRects: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		for _, r := range m.Rects {
			// Any sequence inside the rect collides exactly r.Count
			// times.
			i, j := r.ILo, r.JLo
			if need := i + 4; j < need { // t=5 -> length 5
				j = need
			}
			if j > r.JHi {
				continue
			}
			seq := c.Text(m.TextID)[i : j+1]
			ss, _ := fam.Sketch(seq)
			if got := hash.Collisions(qs, ss); got != r.Count {
				t.Fatalf("sequence [%d,%d] collides %d, rect says %d", i, j, got, r.Count)
			}
		}
	}
}

// TestZoneMapEndToEndWithManyTexts exercises the long-list probe path on
// a corpus crafted so one token dominates (one very long inverted list).
func TestZoneMapEndToEndWithManyTexts(t *testing.T) {
	texts := make([][]uint32, 120)
	for i := range texts {
		texts[i] = make([]uint32, 40)
		for j := range texts[i] {
			// token 0 is everywhere; the rest vary per text.
			if j%4 == 0 {
				texts[i][j] = 0
			} else {
				texts[i][j] = uint32(1 + (i*40+j)%50)
			}
		}
	}
	c := corpus.New(texts)
	ix := buildTestIndex(t, c, 8, 15, 5, 4, 8)
	s := New(ix, c)
	q := texts[60][10:30]
	base, _, err := s.Search(q, Options{Theta: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	filtered, st, err := s.Search(q, Options{Theta: 0.8, PrefixFilter: true, LongListThreshold: 16})
	if err != nil {
		t.Fatal(err)
	}
	if st.LongLists == 0 {
		t.Skip("no long lists under this configuration")
	}
	if !reflect.DeepEqual(matchesToSpans(base), matchesToSpans(filtered)) {
		t.Fatalf("prefix-filtered result differs:\nbase %v\nfilt %v",
			matchesToSpans(base), matchesToSpans(filtered))
	}
}
