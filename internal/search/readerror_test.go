package search

import (
	"context"
	"errors"
	"testing"

	"ndss/internal/fsio"
	"ndss/internal/index"
)

// TestSearchContextSurfacesReadError checks that a failed posting-list
// read inside the staged pipeline — including lists read late through
// the deferral path — reaches the SearchContext caller still wrapped as
// *index.ReadError, so operators can see which file, offset and length
// went bad without grepping logs.
func TestSearchContextSurfacesReadError(t *testing.T) {
	c := smallDupCorpus(30, 60, 120, 150, 42)
	dir := t.TempDir()
	if _, err := index.Build(c, dir, index.BuildOptions{K: 4, Seed: 9, T: 8}); err != nil {
		t.Fatal(err)
	}
	ffs := fsio.NewFaultFS(fsio.OS)
	ix, err := index.OpenFS(ffs, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	s := New(ix, nil)

	q := append([]uint32(nil), c.Text(0)[:30]...)
	opts := Options{Theta: 0.5}
	if _, _, err := s.SearchContext(context.Background(), q, opts); err != nil {
		t.Fatalf("query fails before any fault is armed: %v", err)
	}

	// Sweep the fault offset across the inverted files until it lands
	// inside a list this query reads; the exact layout is the index's
	// business, not this test's.
	var gotErr error
	for off := int64(16); off < 1<<20 && gotErr == nil; off += 4 {
		ffs.FailReadAt("index.", off)
		if _, _, err := s.SearchContext(context.Background(), q, opts); err != nil {
			gotErr = err
		}
		ffs.ClearReadFault()
	}
	if gotErr == nil {
		t.Fatal("no fault offset intersected the query's list reads")
	}

	var re *index.ReadError
	if !errors.As(gotErr, &re) {
		t.Fatalf("SearchContext error does not carry *index.ReadError: %v", gotErr)
	}
	if re.Path == "" || re.Len <= 0 || re.Off < 16 {
		t.Fatalf("ReadError missing context: %+v", re)
	}
	if !errors.Is(gotErr, fsio.ErrInjected) {
		t.Fatalf("underlying injected cause lost through the pipeline: %v", gotErr)
	}

	// The fault is cleared: the same query succeeds again, proving the
	// failure above did not poison pooled query state.
	if _, _, err := s.SearchContext(context.Background(), q, opts); err != nil {
		t.Fatalf("query still failing after fault cleared: %v", err)
	}
}
