package search

import (
	"testing"

	"ndss/internal/index"
)

// FuzzIntervalScan checks the sweep against a per-position oracle for
// arbitrary interval sets.
func FuzzIntervalScan(f *testing.F) {
	f.Add([]byte{1, 3, 2, 5, 4, 6}, uint8(2))
	f.Add([]byte{0, 0, 0, 0}, uint8(1))
	f.Add([]byte{}, uint8(1))
	f.Fuzz(func(t *testing.T, raw []byte, aRaw uint8) {
		if len(raw) > 24 {
			raw = raw[:24]
		}
		var ivs []Interval
		for i := 0; i+1 < len(raw); i += 2 {
			lo := int32(raw[i] % 32)
			ivs = append(ivs, Interval{Lo: lo, Hi: lo + int32(raw[i+1]%8)})
		}
		alpha := int(aRaw%4) + 1
		got := IntervalScan(ivs, alpha)
		seen := map[int32]int{}
		for _, ov := range got {
			if len(ov.Members) < alpha {
				t.Fatalf("reported subset of size %d < alpha %d", len(ov.Members), alpha)
			}
			if ov.Seg.Empty() {
				t.Fatalf("empty segment reported: %+v", ov)
			}
			for p := ov.Seg.Lo; p <= ov.Seg.Hi; p++ {
				seen[p]++
				if seen[p] > 1 {
					t.Fatalf("position %d reported twice", p)
				}
				// Member set must be exactly the intervals covering p.
				want := 0
				for _, iv := range ivs {
					if iv.Lo <= p && p <= iv.Hi {
						want++
					}
				}
				if want != len(ov.Members) {
					t.Fatalf("position %d: %d members, %d covering intervals", p, len(ov.Members), want)
				}
			}
		}
		// Completeness: every position covered by >= alpha intervals is
		// in some reported segment.
		for p := int32(0); p < 48; p++ {
			cover := 0
			for _, iv := range ivs {
				if iv.Lo <= p && p <= iv.Hi {
					cover++
				}
			}
			if cover >= alpha && seen[p] == 0 {
				t.Fatalf("position %d covered %d times but unreported", p, cover)
			}
		}
	})
}

// FuzzCollisionCount checks rectangle counts against the brute-force
// oracle for arbitrary window groups.
func FuzzCollisionCount(f *testing.F) {
	f.Add([]byte{0, 2, 4, 1, 3, 5}, uint8(2))
	f.Add([]byte{0, 0, 0}, uint8(1))
	f.Fuzz(func(t *testing.T, raw []byte, aRaw uint8) {
		if len(raw) > 18 {
			raw = raw[:18]
		}
		var ws []index.Posting
		for i := 0; i+2 < len(raw); i += 3 {
			l := uint32(raw[i] % 16)
			c := l + uint32(raw[i+1]%8)
			r := c + uint32(raw[i+2]%8)
			ws = append(ws, index.Posting{TextID: 0, L: l, C: c, R: r})
		}
		alpha := int(aRaw%3) + 1
		rects := CollisionCount(ws, alpha)
		for i := int32(0); i < 36; i++ {
			for j := i; j < 36; j++ {
				want := collisionCountOfSequence(ws, i, j)
				hits := 0
				for _, r := range rects {
					if r.Contains(i, j) {
						hits++
						if r.Count != want {
							t.Fatalf("seq [%d,%d]: rect count %d, oracle %d", i, j, r.Count, want)
						}
					}
				}
				if want >= alpha && hits != 1 {
					t.Fatalf("seq [%d,%d] with count %d in %d rects", i, j, want, hits)
				}
				if want < alpha && hits != 0 {
					t.Fatalf("seq [%d,%d] below alpha but reported", i, j)
				}
			}
		}
	})
}
