package search

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ndss/internal/corpus"
	"ndss/internal/fsio"
	"ndss/internal/index"
)

// Segment-set equivalence at the search level: a query against an index
// grown by appends and thinned by deletes must return byte-identical
// results — including top-k tie order — before and after compaction.

// splitCorpus carves c into consecutive sub-corpora of the given sizes.
func splitCorpus(c *corpus.Corpus, sizes ...int) []*corpus.Corpus {
	var out []*corpus.Corpus
	id := uint32(0)
	for _, n := range sizes {
		sub := corpus.New(nil)
		for i := 0; i < n; i++ {
			sub.Append(c.Text(id))
			id++
		}
		out = append(out, sub)
	}
	return out
}

type segQueryResult struct {
	matches []Match
	topk    []Match
}

// runSegQueries exercises the searcher across thetas and plan shapes,
// capturing full results (span order, rects, tie-ranked top-k).
func runSegQueries(t *testing.T, s *Searcher, queries [][]uint32) []segQueryResult {
	t.Helper()
	var out []segQueryResult
	for _, q := range queries {
		for _, opts := range []Options{
			{Theta: 0.5},
			{Theta: 0.75, PrefixFilter: true, LongListThreshold: 10},
			{Theta: 1.0, Verify: true, KeepRects: true},
		} {
			ms, _, err := s.Search(q, opts)
			if err != nil {
				t.Fatal(err)
			}
			tk, _, err := s.SearchTopK(q, TopKOptions{N: 3, FloorTheta: 0.5, Search: Options{PrefixFilter: true, LongListThreshold: 10}})
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, segQueryResult{matches: ms, topk: tk})
		}
	}
	return out
}

func TestSegmentedSearchEquivalence(t *testing.T) {
	const k, seed, tt = 8, 77, 5
	full := smallDupCorpus(24, 20, 60, 40, 123)
	parts := splitCorpus(full, 10, 8, 6)

	dir := filepath.Join(t.TempDir(), "ix")
	if _, err := index.Build(parts[0], dir, index.BuildOptions{K: k, Seed: seed, T: tt, ZoneMapStep: 4, LongListCutoff: 8}); err != nil {
		t.Fatal(err)
	}
	for _, p := range parts[1:] {
		if _, err := index.Append(dir, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := index.Delete(dir, []uint32{2, 13, 20}); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(9))
	var queries [][]uint32
	for i := 0; i < 4; i++ {
		q, _, _, ok := corpus.PlantQuery(full, 12, 0.15, 40, rng)
		if !ok {
			t.Fatal("PlantQuery failed")
		}
		queries = append(queries, q)
	}

	multi, err := index.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if multi.SegmentCount() != 3 {
		t.Fatalf("fixture has %d segments, want 3", multi.SegmentCount())
	}
	sMulti := New(multi, full)
	want := runSegQueries(t, sMulti, queries)

	// A traced query against the multi-segment set attributes its I/O to
	// the segments it read.
	_, st, err := sMulti.Search(queries[0], Options{Theta: 0.5, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	segSpans := 0
	for _, sp := range st.Spans {
		if sp.Name == "segment_io" {
			segSpans++
		}
	}
	if segSpans == 0 {
		t.Fatal("traced multi-segment query carries no segment_io spans")
	}
	multi.Close()

	if err := index.Compact(dir); err != nil {
		t.Fatal(err)
	}
	single, err := index.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	if single.SegmentCount() != 1 {
		t.Fatalf("compacted index has %d segments", single.SegmentCount())
	}
	got := runSegQueries(t, New(single, full), queries)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("compaction changed search results:\nbefore %+v\nafter  %+v", want, got)
	}
}

// TestSegmentedSearchReadFault injects a read fault into one segment of
// a multi-segment index: the query must fail with the read's context
// (never a panic or a partial answer), and succeed identically once the
// fault clears.
func TestSegmentedSearchReadFault(t *testing.T) {
	const k, seed, tt = 8, 77, 5
	full := smallDupCorpus(18, 20, 60, 40, 321)
	parts := splitCorpus(full, 10, 8)

	dir := filepath.Join(t.TempDir(), "ix")
	if _, err := index.Build(parts[0], dir, index.BuildOptions{K: k, Seed: seed, T: tt}); err != nil {
		t.Fatal(err)
	}
	if _, err := index.Append(dir, parts[1]); err != nil {
		t.Fatal(err)
	}
	ffs := fsio.NewFaultFS(fsio.OS).SetCrash(false)
	ix, err := index.OpenFS(ffs, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	s := New(ix, full)

	rng := rand.New(rand.NewSource(5))
	q, _, _, ok := corpus.PlantQuery(full, 12, 0.15, 40, rng)
	if !ok {
		t.Fatal("PlantQuery failed")
	}
	want, _, err := s.Search(q, Options{Theta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("degenerate fixture: planted query has no matches")
	}

	// Fault the appended segment's first inverted file at an offset one
	// of the query's list reads covers (which offset that is depends on
	// the corpus, so scan until a read trips).
	st, err := os.Stat(filepath.Join(dir, "seg-000001", "index.000"))
	if err != nil {
		t.Fatal(err)
	}
	var faultErr error
	for off := int64(16); off < st.Size() && faultErr == nil; off += 16 {
		ffs.FailReadAt(filepath.Join("seg-000001", "index.000"), off)
		_, _, faultErr = s.Search(q, Options{Theta: 0.5})
	}
	if faultErr == nil {
		t.Fatal("no query read covered any faulted offset of the appended segment")
	}
	var re *index.ReadError
	if !errors.As(faultErr, &re) {
		t.Fatalf("fault did not surface as a ReadError: %v", faultErr)
	}

	ffs.ClearReadFault()
	got, _, err := s.Search(q, Options{Theta: 0.5})
	if err != nil {
		t.Fatalf("search after fault cleared: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("results changed after fault recovery:\nbefore %+v\nafter  %+v", want, got)
	}
}
