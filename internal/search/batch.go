package search

import "sync"

// BatchResult is one query's outcome in a SearchBatch call.
type BatchResult struct {
	Matches []Match
	Stats   *Stats
	Err     error
}

// SearchBatch runs many queries concurrently over a worker pool and
// returns results in query order. The index is safe for concurrent
// readers; parallelism <= 1 degenerates to a sequential loop.
//
// Every query executes in its own pipeline context with a private I/O
// stats sink, so each result's Stats.IOBytes/IOTime/CPUTime are exact
// for that query at any parallelism; summed over the batch they equal
// the index-wide IOStats delta.
func (s *Searcher) SearchBatch(queries [][]uint32, opts Options, parallelism int) []BatchResult {
	out := make([]BatchResult, len(queries))
	if parallelism <= 1 {
		for i, q := range queries {
			out[i].Matches, out[i].Stats, out[i].Err = s.Search(q, opts)
		}
		return out
	}
	if parallelism > len(queries) {
		parallelism = len(queries)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i].Matches, out[i].Stats, out[i].Err = s.Search(queries[i], opts)
			}
		}()
	}
	for i := range queries {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}
