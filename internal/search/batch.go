package search

import (
	"context"
	"sync"
)

// BatchResult is one query's outcome in a SearchBatch call.
type BatchResult struct {
	Matches []Match
	Stats   *Stats
	Err     error
}

// BatchStageTimes sums the per-stage decomposition over a batch's
// successful queries, so batch consumers (ndss-query, ndss-bench) can
// report where the aggregate wall time went. Failed queries contribute
// nothing; n reports how many queries were summed.
func BatchStageTimes(results []BatchResult) (total StageTimes, n int) {
	for i := range results {
		if results[i].Err != nil || results[i].Stats == nil {
			continue
		}
		total = total.Add(results[i].Stats.StageTimes)
		n++
	}
	return total, n
}

// SearchBatch runs many queries concurrently over a worker pool and
// returns results in query order. The index is safe for concurrent
// readers; parallelism <= 1 degenerates to a sequential loop.
//
// Every query executes in its own pipeline context with a private I/O
// stats sink, so each result's Stats.IOBytes/IOTime/CPUTime are exact
// for that query at any parallelism; summed over the batch they equal
// the index-wide IOStats delta.
//
//lint:ignore ctxflow documented compatibility wrapper; cancellable callers use SearchBatchContext
func (s *Searcher) SearchBatch(queries [][]uint32, opts Options, parallelism int) []BatchResult {
	return s.SearchBatchContext(context.Background(), queries, opts, parallelism)
}

// SearchBatchContext is SearchBatch honoring a context: once ctx is
// done, in-flight queries stop at their next cancellation checkpoint
// and not-yet-started queries fail immediately, all with Err set to
// ctx.Err().
func (s *Searcher) SearchBatchContext(ctx context.Context, queries [][]uint32, opts Options, parallelism int) []BatchResult {
	out := make([]BatchResult, len(queries))
	if parallelism <= 1 {
		for i, q := range queries {
			out[i].Matches, out[i].Stats, out[i].Err = s.SearchContext(ctx, q, opts)
		}
		return out
	}
	if parallelism > len(queries) {
		parallelism = len(queries)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i].Matches, out[i].Stats, out[i].Err = s.SearchContext(ctx, queries[i], opts)
			}
		}()
	}
feed:
	for i := range queries {
		select {
		case next <- i:
		case <-ctx.Done():
			for j := i; j < len(queries); j++ {
				out[j].Err = ctx.Err()
			}
			break feed
		}
	}
	close(next)
	wg.Wait()
	return out
}
