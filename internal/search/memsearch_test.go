package search

import (
	"math/rand"
	"reflect"
	"testing"

	"ndss/internal/corpus"
	"ndss/internal/index"
)

// TestSearcherOverMemIndex: the query processor must behave identically
// over the in-memory and on-disk index implementations.
func TestSearcherOverMemIndex(t *testing.T) {
	c := smallDupCorpus(20, 20, 60, 30, 171)
	opts := index.BuildOptions{K: 8, Seed: 51, T: 5}
	disk := buildTestIndex(t, c, 8, 51, 5, 0, 0)
	mem, err := index.BuildMem(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	sDisk := New(disk, c)
	sMem := New(mem, c)
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 10; trial++ {
		q, _, _, ok := corpus.PlantQuery(c, 12, 0.15, 30, rng)
		if !ok {
			continue
		}
		theta := []float64{0.5, 0.75, 1.0}[trial%3]
		for _, o := range []Options{
			{Theta: theta},
			{Theta: theta, PrefixFilter: true, LongListThreshold: 6},
			{Theta: theta, CostBasedPrefix: true},
		} {
			a, _, err := sDisk.Search(q, o)
			if err != nil {
				t.Fatal(err)
			}
			b, _, err := sMem.Search(q, o)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(matchesToSpans(a), matchesToSpans(b)) {
				t.Fatalf("trial %d opts %+v: disk and mem search differ\ndisk %v\nmem  %v",
					trial, o, matchesToSpans(a), matchesToSpans(b))
			}
		}
	}
	// Mem search performs no I/O.
	q := c.Text(0)[:10]
	_, st, err := sMem.Search(q, Options{Theta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if st.IOBytes != 0 || st.IOTime != 0 {
		t.Fatalf("mem search reported I/O: %+v", st)
	}
}
