package search

import (
	"math/rand"
	"reflect"
	"testing"

	"ndss/internal/corpus"
)

// Per-query I/O accounting must stay exact under concurrency: every
// query reports into its own sink, so the per-query IOBytes/IOTime of a
// parallel batch must sum exactly to the index-wide counter delta, and
// results must match the sequential run. Run under -race in CI.

func concurrencyQueries(t *testing.T, c *corpus.Corpus, n, vocab int) [][]uint32 {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	var queries [][]uint32
	for tries := 0; len(queries) < n && tries < 100*n; tries++ {
		if q, _, _, ok := corpus.PlantQuery(c, 12, 0.15, vocab, rng); ok {
			queries = append(queries, q)
		}
	}
	if len(queries) < n {
		t.Fatalf("planted only %d of %d queries", len(queries), n)
	}
	return queries
}

func TestSearchBatchConcurrentStatsExact(t *testing.T) {
	c := smallDupCorpus(40, 40, 120, 40, 7)
	// Tiny zones and a small cutoff so the parallel run exercises both
	// full list reads and zone-map probes.
	ix := buildTestIndex(t, c, 8, 21, 5, 4, 8)
	s := New(ix, c)
	queries := concurrencyQueries(t, c, 24, 40)
	opts := Options{Theta: 0.6, PrefixFilter: true, LongListThreshold: 12}

	seq := s.SearchBatch(queries, opts, 1)

	const workers = 8
	before := ix.IOStats()
	par := s.SearchBatch(queries, opts, workers)
	after := ix.IOStats()

	var sumBytes int64
	var sumTime int64
	for i, res := range par {
		if res.Err != nil {
			t.Fatalf("query %d: %v", i, res.Err)
		}
		if !reflect.DeepEqual(res.Matches, seq[i].Matches) {
			t.Fatalf("query %d: parallel matches differ\npar %+v\nseq %+v", i, res.Matches, seq[i].Matches)
		}
		if res.Stats.ShortLists != seq[i].Stats.ShortLists ||
			res.Stats.LongLists != seq[i].Stats.LongLists ||
			res.Stats.Candidates != seq[i].Stats.Candidates ||
			res.Stats.IOBytes != seq[i].Stats.IOBytes {
			t.Fatalf("query %d: parallel stats differ\npar %+v\nseq %+v", i, res.Stats, seq[i].Stats)
		}
		sumBytes += res.Stats.IOBytes
		sumTime += int64(res.Stats.IOTime)
	}
	if delta := after.BytesRead - before.BytesRead; sumBytes != delta {
		t.Fatalf("per-query IOBytes sum %d != index-wide delta %d", sumBytes, delta)
	}
	if delta := int64(after.ReadTime - before.ReadTime); sumTime != delta {
		t.Fatalf("per-query IOTime sum %d != index-wide delta %d", sumTime, delta)
	}
	if sumBytes == 0 {
		t.Fatal("batch performed no I/O; the exactness assertion is vacuous")
	}
}

// TestSearchBatchConcurrentRepeat hammers the pooled query contexts:
// many rounds of concurrent batches must keep producing the sequential
// answer (a scratch-buffer aliasing bug would corrupt results
// nondeterministically).
func TestSearchBatchConcurrentRepeat(t *testing.T) {
	c := smallDupCorpus(25, 30, 80, 30, 11)
	ix := buildTestIndex(t, c, 8, 5, 5, 4, 8)
	s := New(ix, c)
	queries := concurrencyQueries(t, c, 16, 30)
	for _, opts := range []Options{
		{Theta: 0.5},
		{Theta: 0.5, PrefixFilter: true, LongListThreshold: 10},
		{Theta: 0.5, CostBasedPrefix: true},
		{Theta: 0.5, PrefixFilter: true, Verify: true},
	} {
		seq := s.SearchBatch(queries, opts, 1)
		for round := 0; round < 4; round++ {
			par := s.SearchBatch(queries, opts, 8)
			for i := range par {
				if par[i].Err != nil {
					t.Fatalf("opts %+v round %d query %d: %v", opts, round, i, par[i].Err)
				}
				if !reflect.DeepEqual(par[i].Matches, seq[i].Matches) {
					t.Fatalf("opts %+v round %d query %d: matches diverged", opts, round, i)
				}
			}
		}
	}
}

// TestSearchStatsSelfConsistent: the per-query sink must agree with the
// index-wide delta for a lone query, and CPUTime+IOTime must equal
// Total.
func TestSearchStatsSelfConsistent(t *testing.T) {
	c := smallDupCorpus(20, 30, 80, 30, 13)
	ix := buildTestIndex(t, c, 8, 9, 5, 0, 0)
	s := New(ix, c)
	q := c.Text(0)[:12]
	before := ix.IOStats()
	_, st, err := s.Search(q, Options{Theta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	after := ix.IOStats()
	if st.IOBytes != after.BytesRead-before.BytesRead {
		t.Fatalf("sink IOBytes %d != delta %d", st.IOBytes, after.BytesRead-before.BytesRead)
	}
	if st.IOTime != after.ReadTime-before.ReadTime {
		t.Fatalf("sink IOTime %v != delta %v", st.IOTime, after.ReadTime-before.ReadTime)
	}
	if st.CPUTime+st.IOTime != st.Total {
		t.Fatalf("CPU %v + IO %v != Total %v", st.CPUTime, st.IOTime, st.Total)
	}
}
