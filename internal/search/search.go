package search

import (
	"fmt"
	"math"
	"sort"
	"time"

	"ndss/internal/hash"
	"ndss/internal/index"
)

// TextSource resolves a text id to its token sequence. *corpus.Corpus
// and *corpus.Reader both satisfy it. It is only needed for
// verification; a Searcher with a nil source answers unverified queries.
type TextSource interface {
	ReadText(id uint32) ([]uint32, error)
}

// IndexReader is the index access surface the query processor needs.
// *index.Index (on-disk) and *index.MemIndex (in-memory) both satisfy
// it.
type IndexReader interface {
	K() int
	Meta() index.Meta
	Family() *hash.Family
	ListLength(fn int, h uint64) int
	ListLengths(fn int) []int
	ReadList(fn int, h uint64) ([]index.Posting, error)
	ReadListForText(fn int, h uint64, textID uint32) ([]index.Posting, error)
	IOStats() index.IOStats
}

// Options configures one search.
type Options struct {
	// Theta is the Jaccard similarity threshold in (0, 1]. A sequence
	// qualifies when it shares at least ceil(K*Theta) of the K min-hash
	// values with the query (Definition 2).
	Theta float64
	// MinLength overrides the minimum reported sequence length. It must
	// be at least the index's length threshold T; zero means T.
	MinLength int
	// PrefixFilter defers lists longer than LongListThreshold: they are
	// probed per candidate text through zone maps instead of being read
	// fully (§3.5).
	PrefixFilter bool
	// LongListThreshold is the posting count above which a list is
	// considered long. Zero selects the searcher's default cutoff.
	LongListThreshold int
	// CostBasedPrefix replaces the fixed cutoff with a per-query cost
	// model (ChooseDeferral) deciding which lists to defer. Implies
	// PrefixFilter.
	CostBasedPrefix bool
	// Verify computes the exact distinct Jaccard similarity between the
	// query and each reported span (requires a TextSource).
	Verify bool
	// KeepRects retains the raw collision rectangles on each match for
	// callers that need exact sequence enumeration.
	KeepRects bool
}

// Match is one reported near-duplicate region: the merged span of
// overlapping qualifying sequences in one text (the paper's Remark
// merges overlapping near-duplicates so reports are disjoint).
type Match struct {
	TextID uint32
	// Start and End delimit the merged span, 0-based inclusive.
	Start, End int32
	// Collisions is the best (maximum) min-hash collision count among
	// the merged sequences.
	Collisions int
	// EstJaccard is Collisions / K, the estimated Jaccard similarity.
	EstJaccard float64
	// Jaccard is the exact distinct Jaccard similarity between the query
	// and the span, filled only when Options.Verify is set.
	Jaccard float64
	// Rects holds the raw qualifying rectangles when Options.KeepRects
	// is set.
	Rects []Rect
}

// Stats describes one query's execution for the latency-split
// experiments (Fig 3).
type Stats struct {
	K          int
	Beta       int           // required collisions ceil(K*Theta)
	ShortLists int           // lists loaded fully
	LongLists  int           // lists deferred to zone-map probes
	Candidates int           // texts surviving the short-list filter
	Probed     int           // texts probed in long lists
	Rects      int           // qualifying rectangles
	Matches    int           // merged spans reported
	IOBytes    int64         // bytes read from the index
	IOTime     time.Duration // time spent in index reads
	CPUTime    time.Duration // Total minus IOTime
	Total      time.Duration
}

// Searcher answers near-duplicate sequence searches against an opened
// index. It is safe for sequential use; the I/O split in Stats is
// computed from index-wide counters and is only meaningful when queries
// do not run concurrently.
type Searcher struct {
	ix            IndexReader
	src           TextSource
	defaultCutoff int
}

// New creates a Searcher. src may be nil if verification is never
// requested.
func New(ix IndexReader, src TextSource) *Searcher {
	return &Searcher{
		ix:            ix,
		src:           src,
		defaultCutoff: CutoffForTopFraction(ix, 0.10),
	}
}

// CutoffForTopFraction returns a list-length threshold such that
// roughly the given fraction of inverted lists (the longest ones — the
// "prefix" of most frequent tokens) exceed it. Fig 3(d) sweeps this
// fraction from 5% to 20%.
func CutoffForTopFraction(ix IndexReader, frac float64) int {
	var lengths []int
	for fn := 0; fn < ix.K(); fn++ {
		lengths = append(lengths, ix.ListLengths(fn)...)
	}
	if len(lengths) == 0 {
		return 0
	}
	sort.Ints(lengths)
	pos := int(float64(len(lengths)) * (1 - frac))
	if pos >= len(lengths) {
		pos = len(lengths) - 1
	}
	if pos < 0 {
		pos = 0
	}
	return lengths[pos]
}

// taggedWindow is a loaded posting plus the function it came from.
type taggedWindow struct {
	fn int
	p  index.Posting
}

// Search finds all near-duplicate sequences of query per opts
// (Algorithm 3). Results are grouped per text into disjoint merged
// spans, ordered by (TextID, Start).
func (s *Searcher) Search(query []uint32, opts Options) ([]Match, *Stats, error) {
	start := time.Now()
	ioBefore := s.ix.IOStats()
	if opts.Theta <= 0 || opts.Theta > 1 {
		return nil, nil, fmt.Errorf("search: Theta must be in (0, 1], got %v", opts.Theta)
	}
	meta := s.ix.Meta()
	minLen := opts.MinLength
	if minLen == 0 {
		minLen = meta.T
	}
	if minLen < meta.T {
		return nil, nil, fmt.Errorf("search: MinLength %d below index length threshold %d", minLen, meta.T)
	}
	if len(query) == 0 {
		return nil, nil, fmt.Errorf("search: empty query")
	}
	k := s.ix.K()
	beta := int(math.Ceil(float64(k) * opts.Theta))
	if beta < 1 {
		beta = 1
	}
	st := &Stats{K: k, Beta: beta}

	sketch, err := s.ix.Family().Sketch(query)
	if err != nil {
		return nil, nil, err
	}

	// Split the k lists into short (loaded fully) and long (deferred).
	cutoff := opts.LongListThreshold
	if cutoff == 0 {
		cutoff = s.defaultCutoff
	}
	long := make([]bool, k)
	if opts.CostBasedPrefix {
		lens := make([]int, k)
		for fn := 0; fn < k; fn++ {
			lens[fn] = s.ix.ListLength(fn, sketch[fn])
		}
		long = ChooseDeferral(lens, beta, DefaultCostModel())
	} else if opts.PrefixFilter {
		type fnLen struct{ fn, n int }
		lens := make([]fnLen, k)
		for fn := 0; fn < k; fn++ {
			lens[fn] = fnLen{fn, s.ix.ListLength(fn, sketch[fn])}
		}
		for _, fl := range lens {
			if fl.n > cutoff {
				long[fl.fn] = true
			}
		}
		// A candidate must appear in >= beta lists, so it must hit at
		// least one of the (k - beta + 1) shortest. Demote the shortest
		// deferred lists until at most beta-1 remain long, keeping the
		// filter threshold beta - numLong positive.
		numLong := 0
		for _, l := range long {
			if l {
				numLong++
			}
		}
		if numLong > beta-1 {
			sort.Slice(lens, func(i, j int) bool { return lens[i].n < lens[j].n })
			for _, fl := range lens {
				if numLong <= beta-1 {
					break
				}
				if long[fl.fn] {
					long[fl.fn] = false
					numLong--
				}
			}
		}
	}

	// Load short lists and group their windows by text.
	groups := make(map[uint32][]taggedWindow)
	numLong := 0
	for fn := 0; fn < k; fn++ {
		if long[fn] {
			numLong++
			continue
		}
		st.ShortLists++
		ps, err := s.ix.ReadList(fn, sketch[fn])
		if err != nil {
			return nil, nil, err
		}
		for _, p := range ps {
			groups[p.TextID] = append(groups[p.TextID], taggedWindow{fn: fn, p: p})
		}
	}
	st.LongLists = numLong
	alpha := beta - numLong
	if alpha < 1 {
		alpha = 1
	}

	var matches []Match
	windows := make([]index.Posting, 0, 64)
	for textID, group := range groups {
		if len(group) < alpha {
			continue
		}
		windows = windows[:0]
		for _, tw := range group {
			windows = append(windows, tw.p)
		}
		rects := CollisionCount(windows, alpha)
		if len(rects) == 0 {
			continue
		}
		st.Candidates++
		if numLong > 0 {
			// Probe the long lists for this text only (zone maps keep
			// the read proportional to the text's postings).
			st.Probed++
			for fn := 0; fn < k; fn++ {
				if !long[fn] {
					continue
				}
				ps, err := s.ix.ReadListForText(fn, sketch[fn], textID)
				if err != nil {
					return nil, nil, err
				}
				windows = append(windows, ps...)
			}
			rects = CollisionCount(windows, beta)
		}
		m, ok := s.buildMatch(textID, rects, beta, minLen, opts, st)
		if !ok {
			continue
		}
		matches = append(matches, m...)
	}
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].TextID != matches[j].TextID {
			return matches[i].TextID < matches[j].TextID
		}
		return matches[i].Start < matches[j].Start
	})
	if opts.Verify {
		if err := s.verify(query, matches); err != nil {
			return nil, nil, err
		}
	}
	st.Matches = len(matches)
	ioAfter := s.ix.IOStats()
	st.IOBytes = ioAfter.BytesRead - ioBefore.BytesRead
	st.IOTime = ioAfter.ReadTime - ioBefore.ReadTime
	st.Total = time.Since(start)
	st.CPUTime = st.Total - st.IOTime
	return matches, st, nil
}

// buildMatch filters rectangles to those holding a qualifying sequence
// (count >= beta and a sequence of length >= minLen) and merges their
// spans into disjoint matches.
func (s *Searcher) buildMatch(textID uint32, rects []Rect, beta, minLen int, opts Options, st *Stats) ([]Match, bool) {
	type spanRect struct {
		span Interval
		rect Rect
	}
	var qual []spanRect
	for _, r := range rects {
		if r.Count < beta || !r.HasSequenceOfLength(minLen) {
			continue
		}
		qual = append(qual, spanRect{span: r.Span(), rect: r})
	}
	if len(qual) == 0 {
		return nil, false
	}
	st.Rects += len(qual)
	sort.Slice(qual, func(i, j int) bool { return qual[i].span.Lo < qual[j].span.Lo })
	var out []Match
	cur := Match{TextID: textID, Start: qual[0].span.Lo, End: qual[0].span.Hi, Collisions: qual[0].rect.Count}
	if opts.KeepRects {
		cur.Rects = []Rect{qual[0].rect}
	}
	for _, q := range qual[1:] {
		if q.span.Lo <= cur.End { // overlapping: merge
			if q.span.Hi > cur.End {
				cur.End = q.span.Hi
			}
			if q.rect.Count > cur.Collisions {
				cur.Collisions = q.rect.Count
			}
			if opts.KeepRects {
				cur.Rects = append(cur.Rects, q.rect)
			}
		} else {
			cur.EstJaccard = float64(cur.Collisions) / float64(st.K)
			out = append(out, cur)
			cur = Match{TextID: textID, Start: q.span.Lo, End: q.span.Hi, Collisions: q.rect.Count}
			if opts.KeepRects {
				cur.Rects = []Rect{q.rect}
			}
		}
	}
	cur.EstJaccard = float64(cur.Collisions) / float64(st.K)
	out = append(out, cur)
	return out, true
}

// verify fills Match.Jaccard with the exact distinct Jaccard similarity
// between the query and each merged span.
func (s *Searcher) verify(query []uint32, matches []Match) error {
	if len(matches) == 0 {
		return nil
	}
	if s.src == nil {
		return fmt.Errorf("search: Verify requires a TextSource")
	}
	for i := range matches {
		m := &matches[i]
		text, err := s.src.ReadText(m.TextID)
		if err != nil {
			return fmt.Errorf("search: verify text %d: %w", m.TextID, err)
		}
		if int(m.End) >= len(text) {
			return fmt.Errorf("search: match span [%d, %d] exceeds text %d length %d",
				m.Start, m.End, m.TextID, len(text))
		}
		matches[i].Jaccard = hash.DistinctJaccard(query, text[m.Start:m.End+1])
	}
	return nil
}

// EnumerateSequences expands a rectangle into the concrete (start, end)
// pairs of length >= minLen it contains, calling fn for each. It stops
// early if fn returns false. This realizes Algorithm 3's final
// enumeration for callers that need individual sequences rather than
// merged spans.
func EnumerateSequences(r Rect, minLen int, fn func(i, j int32) bool) {
	for i := r.ILo; i <= r.IHi; i++ {
		jLo := r.JLo
		if need := i + int32(minLen) - 1; jLo < need {
			jLo = need
		}
		for j := jLo; j <= r.JHi; j++ {
			if !fn(i, j) {
				return
			}
		}
	}
}
