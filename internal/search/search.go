package search

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"ndss/internal/hash"
	"ndss/internal/index"
	"ndss/internal/obs"
)

// TextSource resolves a text id to its token sequence. *corpus.Corpus
// and *corpus.Reader both satisfy it. It is only needed for
// verification; a Searcher with a nil source answers unverified queries.
type TextSource interface {
	ReadText(id uint32) ([]uint32, error)
}

// IndexReader is the index access surface the query processor needs.
// *index.Index (on-disk) and *index.MemIndex (in-memory) both satisfy
// it.
//
// The Into variants append into a caller-supplied buffer and report the
// read's bytes/latency into a caller-supplied sink (which may be nil);
// implementations must never alias internal storage in the appended
// postings, so callers can reuse the buffer across reads. The query
// pipeline uses only the Into variants — that is what makes per-query
// I/O accounting exact under concurrency.
type IndexReader interface {
	K() int
	Meta() index.Meta
	Family() *hash.Family
	ListLength(fn int, h uint64) int
	ListLengths(fn int) []int
	// HasZoneMap reports whether per-text probes into the list for hash
	// h of function fn are cheap (zone-mapped on disk, or in-memory).
	// The planner never defers a list without one: a zone-map-less
	// probe degrades to a full read plus filter per candidate, which is
	// strictly worse than reading the list once up front.
	HasZoneMap(fn int, h uint64) bool
	ReadList(fn int, h uint64) ([]index.Posting, error)
	ReadListInto(dst []index.Posting, fn int, h uint64, sink *index.IOStats) ([]index.Posting, error)
	ReadListForText(fn int, h uint64, textID uint32) ([]index.Posting, error)
	ReadListForTextInto(dst []index.Posting, fn int, h uint64, textID uint32, sink *index.IOStats) ([]index.Posting, error)
	IOStats() index.IOStats
}

// Options configures one search.
type Options struct {
	// Theta is the Jaccard similarity threshold in (0, 1]. A sequence
	// qualifies when it shares at least ceil(K*Theta) of the K min-hash
	// values with the query (Definition 2).
	Theta float64
	// MinLength overrides the minimum reported sequence length. It must
	// be at least the index's length threshold T; zero means T.
	MinLength int
	// PrefixFilter defers lists longer than LongListThreshold: they are
	// probed per candidate text through zone maps instead of being read
	// fully (§3.5).
	PrefixFilter bool
	// LongListThreshold is the posting count above which a list is
	// considered long. Zero selects the searcher's default cutoff.
	LongListThreshold int
	// CostBasedPrefix replaces the fixed cutoff with a per-query cost
	// model (ChooseDeferral) deciding which lists to defer. Implies
	// PrefixFilter.
	CostBasedPrefix bool
	// Verify computes the exact distinct Jaccard similarity between the
	// query and each reported span (requires a TextSource).
	Verify bool
	// KeepRects retains the raw collision rectangles on each match for
	// callers that need exact sequence enumeration.
	KeepRects bool
	// Trace attaches the query's full span list (stage spans plus one
	// span per deferred-list probe) to Stats.Spans. The per-stage
	// StageTimes decomposition is always recorded regardless; Trace only
	// controls whether the detailed spans are copied out, which costs
	// one allocation per query.
	Trace bool
}

// validate checks the options against the index metadata before any
// list I/O happens and resolves the effective minimum match length.
// hasSource reports whether a TextSource is attached (required by
// Verify).
func (o Options) validate(meta index.Meta, hasSource bool) (minLen int, err error) {
	if o.Theta <= 0 || o.Theta > 1 {
		return 0, fmt.Errorf("search: Theta must be in (0, 1], got %v", o.Theta)
	}
	if o.MinLength < 0 {
		return 0, fmt.Errorf("search: MinLength must not be negative, got %d", o.MinLength)
	}
	if o.LongListThreshold < 0 {
		return 0, fmt.Errorf("search: LongListThreshold must not be negative, got %d", o.LongListThreshold)
	}
	if o.Verify && !hasSource {
		return 0, fmt.Errorf("search: Verify requires a TextSource")
	}
	minLen = o.MinLength
	if minLen == 0 {
		minLen = meta.T
	}
	if minLen < meta.T {
		return 0, fmt.Errorf("search: MinLength %d below index length threshold %d", minLen, meta.T)
	}
	return minLen, nil
}

// Match is one reported near-duplicate region: the merged span of
// overlapping qualifying sequences in one text (the paper's Remark
// merges overlapping near-duplicates so reports are disjoint).
type Match struct {
	TextID uint32
	// Start and End delimit the merged span, 0-based inclusive.
	Start, End int32
	// Collisions is the best (maximum) min-hash collision count among
	// the merged sequences.
	Collisions int
	// EstJaccard is Collisions / K, the estimated Jaccard similarity.
	EstJaccard float64
	// Jaccard is the exact distinct Jaccard similarity between the query
	// and the span, filled only when Options.Verify is set.
	Jaccard float64
	// Rects holds the raw qualifying rectangles when Options.KeepRects
	// is set.
	Rects []Rect
}

// NumStages is the number of pipeline stages in StageNames/StageTimes.
const NumStages = 6

// StageNames lists the pipeline stages in execution order. Indexes
// align with StageTimes.Durations, so consumers (histograms, traces,
// CLIs) can iterate the decomposition without knowing the stage set.
var StageNames = [NumStages]string{"sketch", "plan", "gather", "count", "merge", "verify"}

// StageTimes is the per-stage wall-time decomposition of one query
// through the pipeline. Count excludes the merge time spent inside
// countText (reported separately as Merge), so the six stages sum to
// approximately Stats.Total minus orchestration overhead. The _ns JSON
// names are the stable wire format served by /search.
type StageTimes struct {
	Sketch time.Duration `json:"sketch_ns"`
	Plan   time.Duration `json:"plan_ns"`
	Gather time.Duration `json:"gather_ns"`
	Count  time.Duration `json:"count_ns"`
	Merge  time.Duration `json:"merge_ns"`
	Verify time.Duration `json:"verify_ns"`
}

// Durations returns the stage durations in StageNames order.
func (t StageTimes) Durations() [NumStages]time.Duration {
	return [NumStages]time.Duration{t.Sketch, t.Plan, t.Gather, t.Count, t.Merge, t.Verify}
}

// Add returns the element-wise sum of two decompositions, for
// aggregating stage splits over a batch.
func (t StageTimes) Add(o StageTimes) StageTimes {
	return StageTimes{
		Sketch: t.Sketch + o.Sketch,
		Plan:   t.Plan + o.Plan,
		Gather: t.Gather + o.Gather,
		Count:  t.Count + o.Count,
		Merge:  t.Merge + o.Merge,
		Verify: t.Verify + o.Verify,
	}
}

// Stats describes one query's execution for the latency-split
// experiments (Fig 3). IOBytes/IOTime come from the query's private
// I/O sink, so they are exact for this query even when many queries
// run concurrently.
type Stats struct {
	K          int
	Beta       int           // required collisions ceil(K*Theta)
	ShortLists int           // lists loaded fully
	LongLists  int           // lists deferred to zone-map probes
	Candidates int           // texts surviving the short-list filter
	Probed     int           // texts probed in long lists
	Rects      int           // qualifying rectangles
	Matches    int           // merged spans reported
	IOBytes    int64         // bytes read from the index by this query
	IOTime     time.Duration // time this query spent in index reads
	CPUTime    time.Duration // Total minus IOTime
	Total      time.Duration

	// StageTimes decomposes Total across the pipeline stages. Always
	// recorded; the per-stage timing costs a handful of monotonic clock
	// reads per query.
	StageTimes StageTimes
	// Spans is the query's full trace (stage spans plus per-probe
	// spans), copied out only when Options.Trace is set.
	Spans []obs.Span

	// ShardsTotal and ShardsAnswered describe scatter–gather fan-out
	// when the query ran through a shard coordinator: ShardsTotal shards
	// were asked, ShardsAnswered answered within their budget. Both are
	// zero for unsharded queries; ShardsAnswered < ShardsTotal marks a
	// partial result.
	ShardsTotal    int
	ShardsAnswered int
	// PerShard attributes the query's work to each shard (mirroring
	// IOStats.PerSegment for segments): one entry per shard in shard
	// order, including the shards that missed their budget. Nil for
	// unsharded queries.
	PerShard []ShardStats

	// Attempts is a hand-off field between a replica-set shard client
	// and its coordinator: the client records every replica attempt the
	// leg made (primary, retries, hedges) here, and the coordinator
	// moves them into the leg's PerShard entry during merge. Nil
	// everywhere else.
	Attempts []ShardAttempt
}

// Partial reports whether this is a sharded result missing at least one
// shard's answer.
func (s *Stats) Partial() bool {
	return s.ShardsTotal > 0 && s.ShardsAnswered < s.ShardsTotal
}

// ShardStats is one shard's share of a scatter–gather query: its
// pipeline stage split, its I/O, and whether it answered within the
// per-shard budget.
type ShardStats struct {
	// Shard names the shard (its index directory or URL).
	Shard string `json:"shard"`
	// Answered is false when the shard was skipped: it missed the
	// per-shard deadline budget, was saturated, or failed.
	Answered bool `json:"answered"`
	// Err is why the shard went unanswered, "" when it answered.
	Err string `json:"err,omitempty"`
	// Matches is how many merged spans the shard contributed.
	Matches int `json:"matches"`
	// IOBytes/IOTime are the shard's exact per-query I/O.
	IOBytes int64         `json:"io_bytes"`
	IOTime  time.Duration `json:"io_time_ns"`
	// Total is the shard's wall time as observed by the coordinator
	// (queueing plus execution plus, for remote shards, the network).
	Total time.Duration `json:"total_ns"`
	// StageTimes is the shard's own pipeline decomposition.
	StageTimes StageTimes `json:"stages"`
	// SpanID is the leg's span id in the query's distributed trace,
	// assigned by the coordinator when the request context carries a
	// trace context. "" otherwise.
	SpanID string `json:"span_id,omitempty"`
	// Start is the leg's launch offset from the fan-out start, so
	// attempt and remote-span timings can be placed on the query's
	// time axis.
	Start time.Duration `json:"start_ns,omitempty"`
	// Spans is the shard's own span list (remote: shipped back over
	// the wire; local: copied in process), present only when the
	// query's trace is sampled. The coordinator grafts these under the
	// winning attempt during flight assembly.
	Spans []obs.Span `json:"spans,omitempty"`
	// Attempts lists every replica attempt behind this shard's answer
	// when it is served by a replica set: the primary, plus any retries
	// and hedges. Nil for single-replica shards.
	Attempts []ShardAttempt `json:"attempts,omitempty"`
}

// ShardAttempt is one replica-level attempt within a shard leg: which
// replica was tried, whether it was a retry or a hedge, and how it
// ended. The slowlog and trace use these to show exactly how a slow
// sharded query spent its budget.
type ShardAttempt struct {
	// Replica is the replica's name (URL or index directory).
	Replica string `json:"replica"`
	// ReplicaIdx is the replica's index within its group.
	ReplicaIdx int `json:"replica_idx"`
	// Attempt numbers the attempts of one leg from 0 (the primary).
	Attempt int `json:"attempt"`
	// Hedge marks a speculative attempt issued because the running one
	// exceeded the replica's latency quantile, as opposed to a retry
	// after a failure.
	Hedge bool `json:"hedge,omitempty"`
	// Err is why the attempt failed ("" for the winning attempt;
	// "canceled" for a hedge loser whose request was abandoned).
	Err string `json:"err,omitempty"`
	// SpanID is the attempt's span id in the query's distributed
	// trace. The attempt's trace context crossed the wire with the
	// request, so the remote side's spans are children of exactly this
	// id. "" when the request context carried no trace.
	SpanID string `json:"span_id,omitempty"`
	// Start is the attempt's start offset from the leg start.
	Start time.Duration `json:"start_ns"`
	// Dur is the attempt's wall time.
	Dur time.Duration `json:"dur_ns"`
}

// Searcher answers near-duplicate sequence searches against an opened
// index. It is safe for concurrent use: every query runs in its own
// pooled execution context (scratch buffers, deferral plan, I/O stats
// sink), so nothing is shared between in-flight queries and the
// IOBytes/IOTime/CPUTime split in Stats is exact per query at any
// parallelism.
type Searcher struct {
	ix  IndexReader
	src TextSource

	cutoffOnce sync.Once
	cutoffVal  int

	ctxPool sync.Pool // *queryCtx
}

// New creates a Searcher. src may be nil if verification is never
// requested.
func New(ix IndexReader, src TextSource) *Searcher {
	return &Searcher{ix: ix, src: src}
}

// defaultCutoff derives the default long-list cutoff (the 10% most
// frequent lists) lazily, at most once per Searcher: queries that
// always pass an explicit LongListThreshold (or no prefix filtering at
// all) never pay for it.
func (s *Searcher) defaultCutoff() int {
	s.cutoffOnce.Do(func() { s.cutoffVal = CutoffForTopFraction(s.ix, 0.10) })
	return s.cutoffVal
}

// CutoffForTopFraction returns a list-length threshold such that
// roughly the given fraction of inverted lists (the longest ones — the
// "prefix" of most frequent tokens) exceed it. Fig 3(d) sweeps this
// fraction from 5% to 20%. The quantile is found with a selection pass
// (expected O(n)), not a full sort.
func CutoffForTopFraction(ix IndexReader, frac float64) int {
	var lengths []int
	for fn := 0; fn < ix.K(); fn++ {
		lengths = append(lengths, ix.ListLengths(fn)...)
	}
	if len(lengths) == 0 {
		return 0
	}
	pos := int(float64(len(lengths)) * (1 - frac))
	if pos >= len(lengths) {
		pos = len(lengths) - 1
	}
	if pos < 0 {
		pos = 0
	}
	return quickselect(lengths, pos)
}

// quickselect returns the value that would be at index pos were a
// sorted ascending, partitioning a in place. The three-way partition
// keeps it linear on the duplicate-heavy length distributions real
// indexes have.
func quickselect(a []int, pos int) int {
	lo, hi := 0, len(a)-1
	for lo < hi {
		pivot := a[lo+(hi-lo)/2]
		lt, gt, i := lo, hi, lo
		for i <= gt {
			switch {
			case a[i] < pivot:
				a[lt], a[i] = a[i], a[lt]
				lt++
				i++
			case a[i] > pivot:
				a[gt], a[i] = a[i], a[gt]
				gt--
			default:
				i++
			}
		}
		switch {
		case pos < lt:
			hi = lt - 1
		case pos > gt:
			lo = gt + 1
		default:
			return a[pos]
		}
	}
	return a[lo]
}

// taggedWindow is a loaded posting plus the function it came from.
type taggedWindow struct {
	fn int
	p  index.Posting
}

// Search finds all near-duplicate sequences of query per opts
// (Algorithm 3). Results are grouped per text into disjoint merged
// spans, ordered by (TextID, Start). It is SearchContext without
// cancellation.
//
//lint:ignore ctxflow documented compatibility wrapper; cancellable callers use SearchContext
func (s *Searcher) Search(query []uint32, opts Options) ([]Match, *Stats, error) {
	return s.SearchContext(context.Background(), query, opts)
}

// SearchContext is Search honoring a context. Cancellation is checked
// between pipeline stages and before every list read or probe, so a
// timed-out or abandoned query stops issuing I/O promptly and returns
// ctx.Err(). Work already done is still charged to the index-wide I/O
// counters (per-query sums over successful queries remain exact).
//
// The query runs through the staged pipeline
// sketch → plan → gather → count → merge → verify (see pipeline.go);
// SearchContext itself only orchestrates the stages and assembles
// Stats.
func (s *Searcher) SearchContext(ctx context.Context, query []uint32, opts Options) ([]Match, *Stats, error) {
	start := obs.NowMono()
	minLen, err := opts.validate(s.ix.Meta(), s.src != nil)
	if err != nil {
		return nil, nil, err
	}
	if len(query) == 0 {
		return nil, nil, fmt.Errorf("search: empty query")
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	k := s.ix.K()
	beta := int(math.Ceil(float64(k) * opts.Theta))
	if beta < 1 {
		beta = 1
	}
	st := &Stats{K: k, Beta: beta}
	qc := s.acquireCtx(ctx, opts, minLen, beta, st)
	defer s.releaseCtx(qc)

	sp := qc.trace.Start(StageNames[0]) // sketch
	err = s.stageSketch(qc, query)
	st.StageTimes.Sketch = qc.trace.End(sp)
	if err != nil {
		return nil, nil, err
	}
	sp = qc.trace.Start(StageNames[1]) // plan
	s.stagePlan(qc)
	st.StageTimes.Plan = qc.trace.End(sp)
	if err := qc.checkCancel(); err != nil {
		return nil, nil, err
	}
	sp = qc.trace.Start(StageNames[2]) // gather
	err = s.stageGather(qc)
	st.StageTimes.Gather = qc.trace.End(sp)
	qc.trace.Annotate(sp, "io_bytes", qc.io.BytesRead)
	if err != nil {
		return nil, nil, err
	}
	// The count span covers the per-text collision counting including
	// deferred-list probes; merge time accumulated inside countText is
	// carved out so Count and Merge are disjoint.
	sp = qc.trace.Start(StageNames[3]) // count
	matches, err := s.stageCount(qc)
	st.StageTimes.Count = qc.trace.End(sp) - st.StageTimes.Merge
	if err != nil {
		return nil, nil, err
	}
	sp = qc.trace.Start(StageNames[5]) // verify
	if opts.Verify {
		if err := s.stageVerify(qc, query, matches); err != nil {
			return nil, nil, err
		}
	}
	st.StageTimes.Verify = qc.trace.End(sp)
	st.Matches = len(matches)
	st.IOBytes = qc.io.BytesRead
	st.IOTime = qc.io.ReadTime
	st.Total = obs.SinceMono(start)
	st.CPUTime = st.Total - st.IOTime
	if opts.Trace {
		// Attribute the query's I/O to the segments it touched: one span
		// per segment that served bytes, so multi-segment read skew is
		// visible in the trace.
		for i := range qc.io.PerSegment {
			pio := qc.io.PerSegment[i]
			if pio.BytesRead == 0 && pio.ReadTime == 0 {
				continue
			}
			seg := qc.trace.Start("segment_io")
			qc.trace.Annotate(seg, "segment", int64(i))
			qc.trace.Annotate(seg, "io_bytes", pio.BytesRead)
			qc.trace.End(seg)
		}
		st.Spans = qc.trace.Snapshot(nil)
	}
	return matches, st, nil
}

// EnumerateSequences expands a rectangle into the concrete (start, end)
// pairs of length >= minLen it contains, calling fn for each. It stops
// early if fn returns false. This realizes Algorithm 3's final
// enumeration for callers that need individual sequences rather than
// merged spans.
func EnumerateSequences(r Rect, minLen int, fn func(i, j int32) bool) {
	for i := r.ILo; i <= r.IHi; i++ {
		jLo := r.JLo
		if need := i + int32(minLen) - 1; jLo < need {
			jLo = need
		}
		for j := jLo; j <= r.JHi; j++ {
			if !fn(i, j) {
				return
			}
		}
	}
}
