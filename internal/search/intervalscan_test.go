package search

import (
	"math/rand"
	"sort"
	"testing"

	"ndss/internal/index"
)

func TestIntervalScanBasic(t *testing.T) {
	ivs := []Interval{{1, 3}, {2, 5}, {4, 6}}
	got := IntervalScan(ivs, 2)
	// Coverage: [1]:{0} [2,3]:{0,1} [4,5]:{1,2} [6]:{2}
	if len(got) != 2 {
		t.Fatalf("got %d overlaps, want 2: %+v", len(got), got)
	}
	if got[0].Seg != (Interval{2, 3}) || got[1].Seg != (Interval{4, 5}) {
		t.Fatalf("segments: %+v", got)
	}
	if len(got[0].Members) != 2 || len(got[1].Members) != 2 {
		t.Fatalf("member counts: %+v", got)
	}
}

func TestIntervalScanAlphaOne(t *testing.T) {
	ivs := []Interval{{5, 7}}
	got := IntervalScan(ivs, 1)
	if len(got) != 1 || got[0].Seg != (Interval{5, 7}) {
		t.Fatalf("got %+v", got)
	}
	// alpha below 1 behaves like 1.
	got = IntervalScan(ivs, 0)
	if len(got) != 1 {
		t.Fatalf("alpha=0: got %+v", got)
	}
}

func TestIntervalScanNoQualifyingSubset(t *testing.T) {
	ivs := []Interval{{1, 2}, {5, 6}}
	if got := IntervalScan(ivs, 2); got != nil {
		t.Fatalf("disjoint intervals reported overlap: %+v", got)
	}
	if got := IntervalScan(nil, 1); got != nil {
		t.Fatalf("empty input: %+v", got)
	}
	if got := IntervalScan(ivs, 3); got != nil {
		t.Fatalf("alpha > n: %+v", got)
	}
}

func TestIntervalScanIdenticalIntervals(t *testing.T) {
	ivs := []Interval{{3, 8}, {3, 8}, {3, 8}}
	got := IntervalScan(ivs, 3)
	if len(got) != 1 || got[0].Seg != (Interval{3, 8}) || len(got[0].Members) != 3 {
		t.Fatalf("got %+v", got)
	}
}

func TestIntervalScanEmptyIntervalsIgnored(t *testing.T) {
	ivs := []Interval{{5, 4}, {1, 3}} // first is empty
	got := IntervalScan(ivs, 1)
	if len(got) != 1 || got[0].Seg != (Interval{1, 3}) {
		t.Fatalf("got %+v", got)
	}
}

// TestIntervalScanMatchesOracle: for every integer position, the
// reported covering set must equal the true covering set whenever it has
// >= alpha members, and positions in no reported segment must be covered
// by fewer than alpha intervals.
func TestIntervalScanMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		ivs := make([]Interval, n)
		for i := range ivs {
			lo := int32(rng.Intn(30))
			ivs[i] = Interval{lo, lo + int32(rng.Intn(10))}
		}
		alpha := 1 + rng.Intn(4)
		got := IntervalScan(ivs, alpha)

		// Map position -> reported member set.
		reported := map[int32][]int32{}
		for _, ov := range got {
			for p := ov.Seg.Lo; p <= ov.Seg.Hi; p++ {
				if _, dup := reported[p]; dup {
					t.Fatalf("trial %d: position %d in two segments", trial, p)
				}
				reported[p] = ov.Members
			}
		}
		for p := int32(0); p <= 45; p++ {
			var want []int32
			for i, iv := range ivs {
				if iv.Lo <= p && p <= iv.Hi {
					want = append(want, int32(i))
				}
			}
			members, ok := reported[p]
			if len(want) >= alpha {
				if !ok {
					t.Fatalf("trial %d: position %d covered by %d >= %d but not reported",
						trial, p, len(want), alpha)
				}
				a := append([]int32{}, members...)
				sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
				sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
				if len(a) != len(want) {
					t.Fatalf("trial %d pos %d: members %v, want %v", trial, p, a, want)
				}
				for i := range a {
					if a[i] != want[i] {
						t.Fatalf("trial %d pos %d: members %v, want %v", trial, p, a, want)
					}
				}
			} else if ok {
				t.Fatalf("trial %d: position %d covered by %d < %d but reported",
					trial, p, len(want), alpha)
			}
		}
	}
}

func TestCollisionCountSimple(t *testing.T) {
	// Two windows overlapping in both dimensions.
	ws := []index.Posting{
		{TextID: 0, L: 0, C: 5, R: 10},
		{TextID: 0, L: 3, C: 7, R: 12},
	}
	rects := CollisionCount(ws, 2)
	// Sequences covered by both: i in [3,5], j in [7,10].
	if len(rects) != 1 {
		t.Fatalf("rects: %+v", rects)
	}
	r := rects[0]
	if r.ILo != 3 || r.IHi != 5 || r.JLo != 7 || r.JHi != 10 || r.Count != 2 {
		t.Fatalf("rect: %+v", r)
	}
	if !r.Contains(4, 8) || r.Contains(2, 8) || r.Contains(4, 11) {
		t.Error("Contains misbehaves")
	}
	if !r.HasSequenceOfLength(8) || r.HasSequenceOfLength(9) {
		t.Errorf("HasSequenceOfLength wrong: span %d", r.JHi-r.ILo+1)
	}
	if r.Span() != (Interval{3, 10}) {
		t.Errorf("Span = %+v", r.Span())
	}
}

func TestCollisionCountNoOverlap(t *testing.T) {
	ws := []index.Posting{
		{TextID: 0, L: 0, C: 2, R: 4},
		{TextID: 0, L: 10, C: 12, R: 14},
	}
	if rects := CollisionCount(ws, 2); rects != nil {
		t.Fatalf("disjoint windows produced rects: %+v", rects)
	}
	if rects := CollisionCount(ws, 3); rects != nil {
		t.Fatalf("alpha > m produced rects: %+v", rects)
	}
}

// TestCollisionCountMatchesOracle verifies, for random window groups,
// that every sequence's reported collision count matches brute force and
// that every qualifying sequence appears in exactly one rectangle.
func TestCollisionCountMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 150; trial++ {
		m := 1 + rng.Intn(10)
		ws := make([]index.Posting, m)
		for i := range ws {
			l := rng.Intn(20)
			c := l + rng.Intn(10)
			r := c + rng.Intn(10)
			ws[i] = index.Posting{TextID: 0, L: uint32(l), C: uint32(c), R: uint32(r)}
		}
		alpha := 1 + rng.Intn(4)
		rects := CollisionCount(ws, alpha)
		maxPos := int32(45)
		for i := int32(0); i <= maxPos; i++ {
			for j := i; j <= maxPos; j++ {
				want := collisionCountOfSequence(ws, i, j)
				var in []Rect
				for _, r := range rects {
					if r.Contains(i, j) {
						in = append(in, r)
					}
				}
				if want >= alpha {
					if len(in) != 1 {
						t.Fatalf("trial %d: seq [%d,%d] count %d in %d rects (alpha=%d)\nws=%v\nrects=%+v",
							trial, i, j, want, len(in), alpha, ws, rects)
					}
					if in[0].Count != want {
						t.Fatalf("trial %d: seq [%d,%d] rect count %d, want %d",
							trial, i, j, in[0].Count, want)
					}
				} else if len(in) != 0 {
					t.Fatalf("trial %d: seq [%d,%d] count %d < alpha %d but in rect %+v",
						trial, i, j, want, alpha, in[0])
				}
			}
		}
	}
}

func TestEnumerateSequences(t *testing.T) {
	r := Rect{ILo: 2, IHi: 4, JLo: 5, JHi: 7, Count: 3}
	var got [][2]int32
	EnumerateSequences(r, 1, func(i, j int32) bool {
		got = append(got, [2]int32{i, j})
		return true
	})
	if len(got) != 9 {
		t.Fatalf("enumerated %d sequences, want 9", len(got))
	}
	// With a minimum length of 5: i=2 allows j in [6,7]; i=3 allows
	// j=7; i=4 allows none.
	got = got[:0]
	EnumerateSequences(r, 5, func(i, j int32) bool {
		got = append(got, [2]int32{i, j})
		if int(j-i+1) < 5 {
			t.Fatalf("sequence [%d,%d] shorter than 5", i, j)
		}
		return true
	})
	if len(got) != 3 {
		t.Fatalf("enumerated %d sequences, want 3: %v", len(got), got)
	}
	// Early stop.
	count := 0
	EnumerateSequences(r, 1, func(i, j int32) bool {
		count++
		return count < 4
	})
	if count != 4 {
		t.Fatalf("early stop at %d calls", count)
	}
}
