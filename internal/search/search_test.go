package search

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"ndss/internal/corpus"
	"ndss/internal/hash"
	"ndss/internal/index"
)

// oracleSpans computes the ground truth of Definition 2 by brute force:
// for every sequence of length >= t in every text, count min-hash
// collisions with the query; merge overlapping qualifying sequences into
// disjoint spans per text.
func oracleSpans(c *corpus.Corpus, fam *hash.Family, query []uint32, theta float64, t int) map[uint32][]Interval {
	k := fam.K()
	beta := int(math.Ceil(float64(k) * theta))
	qs, err := fam.Sketch(query)
	if err != nil {
		panic(err)
	}
	result := make(map[uint32][]Interval)
	for id := 0; id < c.NumTexts(); id++ {
		text := c.Text(uint32(id))
		var qualifying []Interval
		for i := 0; i < len(text); i++ {
			// Incremental min-hash while extending j.
			mins := make([]uint64, k)
			for fn := 0; fn < k; fn++ {
				mins[fn] = fam.Func(fn).Hash(text[i])
			}
			for j := i; j < len(text); j++ {
				if j > i {
					for fn := 0; fn < k; fn++ {
						if h := fam.Func(fn).Hash(text[j]); h < mins[fn] {
							mins[fn] = h
						}
					}
				}
				if j-i+1 < t {
					continue
				}
				coll := 0
				for fn := 0; fn < k; fn++ {
					if mins[fn] == qs[fn] {
						coll++
					}
				}
				if coll >= beta {
					qualifying = append(qualifying, Interval{int32(i), int32(j)})
				}
			}
		}
		if len(qualifying) == 0 {
			continue
		}
		sort.Slice(qualifying, func(a, b int) bool {
			if qualifying[a].Lo != qualifying[b].Lo {
				return qualifying[a].Lo < qualifying[b].Lo
			}
			return qualifying[a].Hi < qualifying[b].Hi
		})
		var merged []Interval
		cur := qualifying[0]
		for _, iv := range qualifying[1:] {
			if iv.Lo <= cur.Hi { // overlap
				if iv.Hi > cur.Hi {
					cur.Hi = iv.Hi
				}
			} else {
				merged = append(merged, cur)
				cur = iv
			}
		}
		merged = append(merged, cur)
		result[uint32(id)] = merged
	}
	return result
}

func matchesToSpans(ms []Match) map[uint32][]Interval {
	out := make(map[uint32][]Interval)
	for _, m := range ms {
		out[m.TextID] = append(out[m.TextID], Interval{m.Start, m.End})
	}
	return out
}

func buildTestIndex(t *testing.T, c *corpus.Corpus, k int, seed int64, tt int, zoneStep, longCutoff int) *index.Index {
	t.Helper()
	dir := t.TempDir()
	opts := index.BuildOptions{K: k, Seed: seed, T: tt}
	if zoneStep > 0 {
		opts.ZoneMapStep = zoneStep
	}
	if longCutoff > 0 {
		opts.LongListCutoff = longCutoff
	}
	if _, err := index.Build(c, dir, opts); err != nil {
		t.Fatal(err)
	}
	ix, err := index.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	return ix
}

// smallDupCorpus builds a corpus with heavy token reuse so queries find
// near-duplicates.
func smallDupCorpus(numTexts, minLen, maxLen, vocab int, seed int64) *corpus.Corpus {
	return corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts:      numTexts,
		MinLength:     minLen,
		MaxLength:     maxLen,
		VocabSize:     vocab,
		ZipfS:         1.3,
		Seed:          seed,
		DupRate:       0.5,
		DupSnippetLen: 20,
		DupMutateProb: 0.05,
	})
}

// TestSearchMatchesOracle is the Theorem 2 soundness/completeness check:
// the index-based search must return exactly the Definition 2 answer,
// with and without prefix filtering.
func TestSearchMatchesOracle(t *testing.T) {
	const (
		k    = 8
		seed = 77
		tt   = 5
	)
	for trial := int64(0); trial < 6; trial++ {
		c := smallDupCorpus(15, 20, 60, 40, 100+trial)
		ix := buildTestIndex(t, c, k, seed, tt, 4, 8) // tiny zones: exercise probes
		fam := hash.MustNewFamily(k, seed)
		s := New(ix, c)
		rng := rand.New(rand.NewSource(trial))
		for _, theta := range []float64{0.5, 0.75, 1.0} {
			q, _, _, ok := corpus.PlantQuery(c, 12, 0.15, 40, rng)
			if !ok {
				t.Fatal("PlantQuery failed")
			}
			want := oracleSpans(c, fam, q, theta, tt)
			for _, pf := range []bool{false, true} {
				got, st, err := s.Search(q, Options{Theta: theta, PrefixFilter: pf, LongListThreshold: 10})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(matchesToSpans(got), want) {
					t.Fatalf("trial %d theta=%v pf=%v:\ngot  %v\nwant %v\nstats %+v",
						trial, theta, pf, matchesToSpans(got), want, st)
				}
			}
		}
	}
}

// TestSearchCollisionCounts verifies the reported collision counts: the
// best sequence in each match must collide exactly Collisions times.
func TestSearchCollisionCounts(t *testing.T) {
	const k, seed, tt = 8, 13, 5
	c := smallDupCorpus(12, 20, 50, 30, 9)
	ix := buildTestIndex(t, c, k, seed, tt, 0, 0)
	fam := hash.MustNewFamily(k, seed)
	s := New(ix, c)
	rng := rand.New(rand.NewSource(4))
	q, _, _, ok := corpus.PlantQuery(c, 10, 0.1, 30, rng)
	if !ok {
		t.Fatal("PlantQuery failed")
	}
	ms, _, err := s.Search(q, Options{Theta: 0.5, KeepRects: true})
	if err != nil {
		t.Fatal(err)
	}
	qs, _ := fam.Sketch(q)
	for _, m := range ms {
		if len(m.Rects) == 0 {
			t.Fatal("KeepRects produced no rects")
		}
		best := 0
		for _, r := range m.Rects {
			// Oracle-check one valid sequence inside the rect: start at
			// ILo and extend to length >= tt (fits because the rect
			// passed HasSequenceOfLength).
			i, j := r.ILo, r.JLo
			if need := i + int32(tt) - 1; j < need {
				j = need
			}
			if j > r.JHi {
				t.Fatalf("rect %+v has no sequence of length %d", r, tt)
			}
			text := c.Text(m.TextID)
			seq := text[i : j+1]
			ss, _ := fam.Sketch(seq)
			if got := hash.Collisions(qs, ss); got != r.Count {
				t.Fatalf("rect %+v: sequence [%d,%d] collides %d times, rect says %d",
					r, i, j, got, r.Count)
			}
			if r.Count > best {
				best = r.Count
			}
		}
		if m.Collisions != best {
			t.Fatalf("match Collisions = %d, best rect = %d", m.Collisions, best)
		}
		if m.EstJaccard != float64(best)/float64(k) {
			t.Fatalf("EstJaccard = %v", m.EstJaccard)
		}
	}
}

func TestSearchVerify(t *testing.T) {
	const k, seed, tt = 8, 21, 5
	c := smallDupCorpus(12, 20, 50, 30, 5)
	ix := buildTestIndex(t, c, k, seed, tt, 0, 0)
	s := New(ix, c)
	rng := rand.New(rand.NewSource(8))
	q, _, _, ok := corpus.PlantQuery(c, 10, 0, 30, rng)
	if !ok {
		t.Fatal("PlantQuery failed")
	}
	ms, _, err := s.Search(q, Options{Theta: 0.6, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Skip("no matches to verify")
	}
	for _, m := range ms {
		want := hash.DistinctJaccard(q, c.Text(m.TextID)[m.Start:m.End+1])
		if m.Jaccard != want {
			t.Fatalf("Jaccard = %v, want %v", m.Jaccard, want)
		}
	}
	// Verification without a source fails cleanly.
	s2 := New(ix, nil)
	if _, _, err := s2.Search(q, Options{Theta: 0.6, Verify: true}); err == nil {
		t.Fatal("Verify without TextSource should fail")
	}
}

func TestSearchExactDuplicate(t *testing.T) {
	// theta = 1.0 on a planted exact copy must find the source text.
	const k, seed, tt = 16, 31, 8
	c := smallDupCorpus(10, 30, 60, 500, 77)
	ix := buildTestIndex(t, c, k, seed, tt, 0, 0)
	s := New(ix, c)
	rng := rand.New(rand.NewSource(1))
	q, srcID, srcStart, ok := corpus.PlantQuery(c, 20, 0, 500, rng)
	if !ok {
		t.Fatal("PlantQuery failed")
	}
	ms, _, err := s.Search(q, Options{Theta: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range ms {
		if m.TextID == srcID && m.Start <= srcStart && srcStart+19 <= m.End {
			found = true
		}
	}
	if !found {
		t.Fatalf("exact duplicate not found: planted at text %d pos %d, got %+v", srcID, srcStart, ms)
	}
}

func TestSearchOptionValidation(t *testing.T) {
	c := smallDupCorpus(5, 20, 40, 30, 3)
	ix := buildTestIndex(t, c, 4, 1, 5, 0, 0)
	s := New(ix, c)
	q := []uint32{1, 2, 3, 4, 5, 6}
	if _, _, err := s.Search(q, Options{Theta: 0}); err == nil {
		t.Error("Theta=0 should fail")
	}
	if _, _, err := s.Search(q, Options{Theta: 1.5}); err == nil {
		t.Error("Theta>1 should fail")
	}
	if _, _, err := s.Search(nil, Options{Theta: 0.5}); err == nil {
		t.Error("empty query should fail")
	}
	if _, _, err := s.Search(q, Options{Theta: 0.5, MinLength: 3}); err == nil {
		t.Error("MinLength below index T should fail")
	}
	if _, _, err := s.Search(q, Options{Theta: 0.5, MinLength: 7}); err != nil {
		t.Errorf("MinLength above T should work: %v", err)
	}
}

func TestSearchStats(t *testing.T) {
	const k = 8
	c := smallDupCorpus(20, 20, 60, 30, 15)
	ix := buildTestIndex(t, c, k, 3, 5, 4, 8)
	s := New(ix, c)
	rng := rand.New(rand.NewSource(2))
	q, _, _, _ := corpus.PlantQuery(c, 12, 0.1, 30, rng)
	_, st, err := s.Search(q, Options{Theta: 0.5, PrefixFilter: true, LongListThreshold: 10})
	if err != nil {
		t.Fatal(err)
	}
	if st.K != k || st.Beta != 4 {
		t.Fatalf("stats K=%d Beta=%d", st.K, st.Beta)
	}
	if st.ShortLists+st.LongLists != k {
		t.Fatalf("lists split %d + %d != %d", st.ShortLists, st.LongLists, k)
	}
	if st.IOBytes <= 0 {
		t.Fatalf("IOBytes = %d", st.IOBytes)
	}
	if st.Total <= 0 {
		t.Fatal("Total duration not measured")
	}
}

func TestSearchMinLengthAboveT(t *testing.T) {
	// Raising MinLength must only shrink the result set.
	const k, seed, tt = 8, 5, 5
	c := smallDupCorpus(15, 30, 60, 30, 25)
	ix := buildTestIndex(t, c, k, seed, tt, 0, 0)
	s := New(ix, c)
	rng := rand.New(rand.NewSource(6))
	q, _, _, _ := corpus.PlantQuery(c, 15, 0.1, 30, rng)
	base, _, err := s.Search(q, Options{Theta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	longer, _, err := s.Search(q, Options{Theta: 0.5, MinLength: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(longer) > len(base) {
		t.Fatalf("MinLength=10 found %d matches, base %d", len(longer), len(base))
	}
	// Oracle comparison at the larger length.
	fam := hash.MustNewFamily(k, seed)
	want := oracleSpans(c, fam, q, 0.5, 10)
	if !reflect.DeepEqual(matchesToSpans(longer), want) {
		t.Fatalf("MinLength=10: got %v want %v", matchesToSpans(longer), want)
	}
}

func TestCutoffForTopFraction(t *testing.T) {
	c := smallDupCorpus(20, 30, 80, 30, 35)
	ix := buildTestIndex(t, c, 2, 9, 5, 0, 0)
	c5 := CutoffForTopFraction(ix, 0.05)
	c20 := CutoffForTopFraction(ix, 0.20)
	if c20 > c5 {
		t.Fatalf("larger prefix fraction should give smaller cutoff: 5%%=%d 20%%=%d", c5, c20)
	}
	if c5 <= 0 {
		t.Fatalf("cutoff = %d", c5)
	}
}

// TestPrefixFilterEquivalence fuzzes prefix filtering across thresholds:
// results must be identical to the unfiltered search.
func TestPrefixFilterEquivalence(t *testing.T) {
	const k, seed, tt = 8, 45, 5
	c := smallDupCorpus(25, 20, 70, 25, 45) // tiny vocab: long lists abound
	ix := buildTestIndex(t, c, k, seed, tt, 4, 8)
	s := New(ix, c)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		q, _, _, ok := corpus.PlantQuery(c, 10, 0.2, 25, rng)
		if !ok {
			continue
		}
		theta := []float64{0.4, 0.6, 0.8, 1.0}[trial%4]
		base, _, err := s.Search(q, Options{Theta: theta})
		if err != nil {
			t.Fatal(err)
		}
		for _, cutoff := range []int{1, 5, 20, 100} {
			got, _, err := s.Search(q, Options{Theta: theta, PrefixFilter: true, LongListThreshold: cutoff})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(matchesToSpans(got), matchesToSpans(base)) {
				t.Fatalf("trial %d cutoff %d theta %v: filtered result differs\ngot  %v\nwant %v",
					trial, cutoff, theta, matchesToSpans(got), matchesToSpans(base))
			}
		}
	}
}
