package search

import "ndss/internal/index"

// Rect is one CollisionCount result: every sequence T[i..j] with
// i in [ILo, IHi] and j in [JLo, JHi] collides with the query on exactly
// Count min-hash functions (among the compact windows supplied). The
// construction guarantees IHi <= JLo, so every (i, j) pair in the
// rectangle is a valid sequence, and distinct rectangles from one call
// are disjoint in (i, j) space.
type Rect struct {
	ILo, IHi int32
	JLo, JHi int32
	Count    int
}

// Contains reports whether the sequence [i, j] lies in the rectangle.
func (r Rect) Contains(i, j int32) bool {
	return r.ILo <= i && i <= r.IHi && r.JLo <= j && j <= r.JHi
}

// HasSequenceOfLength reports whether the rectangle contains at least
// one sequence with >= t tokens.
func (r Rect) HasSequenceOfLength(t int) bool {
	return int(r.JHi-r.ILo+1) >= t
}

// Span returns the merged span of all valid (length >= t) sequences in
// the rectangle: since every sequence in a rectangle contains the core
// [IHi, JLo], they mutually overlap and their union is one contiguous
// span [ILo, JHi].
func (r Rect) Span() Interval { return Interval{Lo: r.ILo, Hi: r.JHi} }

// CollisionCount finds every maximal rectangle of sequences contained in
// at least alpha of the supplied compact windows (Algorithm 4). All
// windows must come from the same text. Each qualifying sequence (i, j)
// appears in exactly one returned rectangle, whose Count is the exact
// number of supplied windows containing it.
func CollisionCount(windows []index.Posting, alpha int) []Rect {
	if len(windows) < alpha || alpha < 1 {
		return nil
	}
	// Left intervals [L, C] of every window.
	lefts := make([]Interval, len(windows))
	for i, w := range windows {
		lefts[i] = Interval{Lo: int32(w.L), Hi: int32(w.C)}
	}
	var out []Rect
	rights := make([]Interval, 0, len(windows))
	for _, lo := range IntervalScan(lefts, alpha) {
		// Right intervals [C, R] of the windows whose left intervals
		// cover this segment.
		rights = rights[:0]
		for _, m := range lo.Members {
			w := windows[m]
			rights = append(rights, Interval{Lo: int32(w.C), Hi: int32(w.R)})
		}
		for _, ro := range IntervalScan(rights, alpha) {
			out = append(out, Rect{
				ILo: lo.Seg.Lo, IHi: lo.Seg.Hi,
				JLo: ro.Seg.Lo, JHi: ro.Seg.Hi,
				Count: len(ro.Members),
			})
		}
	}
	return out
}

// collisionCountOfSequence is a reference oracle: the number of windows
// containing the sequence [i, j]. Exported to tests via export_test.go.
func collisionCountOfSequence(windows []index.Posting, i, j int32) int {
	n := 0
	for _, w := range windows {
		if int32(w.L) <= i && i <= int32(w.C) && int32(w.C) <= j && j <= int32(w.R) {
			n++
		}
	}
	return n
}
