package window_test

import (
	"fmt"

	"ndss/internal/window"
)

// ExampleGenerateLinear mirrors the paper's Example 1 structure: divide
// a hash array at its minima and report only windows wide enough for
// the length threshold.
func ExampleGenerateLinear() {
	// Token hash values; the global minimum sits at index 3.
	vals := []uint64{50, 30, 80, 10, 90, 20, 70}
	for _, w := range window.GenerateLinear(vals, 3, nil) {
		fmt.Printf("window (%d, %d, %d) covers %d sequences\n", w.L, w.C, w.R, w.Count())
	}
	fmt.Printf("expected count for n=7, t=3: %.2f\n", window.ExpectedCount(7, 3))
	// Output:
	// window (4, 5, 6) covers 4 sequences
	// window (0, 3, 6) covers 16 sequences
	// window (0, 1, 2) covers 4 sequences
	// expected count for n=7, t=3: 3.00
}
