package window

import (
	"bytes"
	"encoding/binary"
	"testing"

	"ndss/internal/rmq"
)

// FuzzGenerateLinear checks, for arbitrary hash arrays and thresholds:
// (1) the stack generator and the RMQ recursion agree, (2) every window
// is maximal and annotated with the true range minimum, and (3) the
// windows partition all sequences of length >= t.
func FuzzGenerateLinear(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(3))
	f.Add([]byte{5, 5, 5, 5}, uint8(2))
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{9, 1, 8, 1, 7, 1}, uint8(4))
	f.Fuzz(func(t *testing.T, raw []byte, tRaw uint8) {
		if len(raw) > 64 {
			raw = raw[:64]
		}
		tt := int(tRaw%16) + 1
		vals := make([]uint64, len(raw))
		for i, b := range raw {
			vals[i] = uint64(b % 16) // dense ties
		}
		ws := GenerateLinear(vals, tt, nil)
		ref := Generate(vals, tt, func(x []uint64) rmq.RMQ { return rmq.NewSparse(x) }, nil)
		if len(ws) != len(ref) {
			t.Fatalf("generators disagree: %d vs %d windows", len(ws), len(ref))
		}
		refSet := map[Window]bool{}
		for _, w := range ref {
			refSet[w] = true
		}
		for _, w := range ws {
			if !refSet[w] {
				t.Fatalf("window %v missing from RMQ output", w)
			}
			for p := w.L; p <= w.R; p++ {
				if vals[p] < vals[w.C] {
					t.Fatalf("window %v not a range minimum", w)
				}
			}
			if w.L > 0 && vals[w.L-1] > vals[w.C] {
				t.Fatalf("window %v extendable left", w)
			}
			if int(w.R) < len(vals)-1 && vals[w.R+1] >= vals[w.C] {
				t.Fatalf("window %v extendable right", w)
			}
		}
		// Partition property over all sequences of length >= tt.
		n := len(vals)
		for i := 0; i < n; i++ {
			for j := i + tt - 1; j < n; j++ {
				covered := 0
				for _, w := range ws {
					if w.Contains(int32(i), int32(j)) {
						covered++
					}
				}
				if covered != 1 {
					t.Fatalf("sequence [%d, %d] covered %d times", i, j, covered)
				}
			}
		}
	})
}

// FuzzCompactWindows cross-checks Algorithm 2's divide-and-conquer
// recursion against the O(n) monotonic-stack generator on wide-range
// hash values (8 bytes per value, so ties are rare and the Cartesian
// tree is deep and skewed). The two implementations must emit the same
// window multiset for every input, independent of the RMQ backing the
// recursion.
func FuzzCompactWindows(f *testing.F) {
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, uint8(2))
	f.Add(bytes.Repeat([]byte{0xab}, 64), uint8(3)) // all-equal values
	f.Add([]byte("ascending hash values make a right spine"), uint8(4))
	f.Fuzz(func(t *testing.T, raw []byte, tRaw uint8) {
		if len(raw) > 512 {
			raw = raw[:512]
		}
		tt := int(tRaw%32) + 1
		n := len(raw) / 8
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = binary.LittleEndian.Uint64(raw[i*8:])
		}
		ref := GenerateLinear(vals, tt, nil)
		refSet := map[Window]int{}
		for _, w := range ref {
			refSet[w]++
		}
		for name, ctor := range map[string]func([]uint64) rmq.RMQ{
			"linear":  func(x []uint64) rmq.RMQ { return rmq.NewLinear(x) },
			"segtree": func(x []uint64) rmq.RMQ { return rmq.NewSegmentTree(x) },
		} {
			ws := Generate(vals, tt, ctor, nil)
			if len(ws) != len(ref) {
				t.Fatalf("%s: %d windows, stack generator emitted %d", name, len(ws), len(ref))
			}
			seen := map[Window]int{}
			for _, w := range ws {
				seen[w]++
			}
			for w, c := range refSet {
				if seen[w] != c {
					t.Fatalf("%s: window %v count %d, want %d", name, w, seen[w], c)
				}
			}
		}
		// Sanity bound: a compact window exists iff the text is long
		// enough, and there are at most n of them.
		if (n >= tt) != (len(ref) > 0) || len(ref) > n {
			t.Fatalf("%d windows for n=%d t=%d", len(ref), n, tt)
		}
	})
}
