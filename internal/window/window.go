// Package window implements compact-window generation, the core of the
// paper's indexing contribution (§3.3, Algorithm 2).
//
// A compact window (L, C, R) over a text T and hash function f
// represents every sequence T[i..j] with L <= i <= C <= j <= R; all of
// them share the same min-hash value f(T[C]), because T[C] holds the
// smallest token hash in T[L..R]. Only "valid" windows — those whose
// width R-L+1 is at least the length threshold t — are generated, and
// every sequence of length >= t lies in exactly one generated window
// (Theorem 1). In expectation a text with n distinct tokens yields
// 2(n+1)/(t+1) - 1 valid windows.
//
// Two equivalent generators are provided:
//
//   - Generate: the paper's divide-and-conquer Algorithm 2 on top of a
//     pluggable RMQ structure (O(n) total with the linear RMQ, O(n log n)
//     with a segment tree as in ALIGN).
//   - GenerateLinear: a monotonic-stack formulation that computes each
//     position's maximal window directly via previous-smaller-or-equal /
//     next-smaller bounds in O(n) worst case with no recursion.
//
// Positions are 0-based; L, C, R are all inclusive.
package window

import (
	"fmt"

	"ndss/internal/hash"
	"ndss/internal/rmq"
)

// Window is a compact window (L, C, R), 0-based inclusive positions into
// a text. Every sequence starting in [L, C] and ending in [C, R] has
// min-hash equal to the hash of the token at C.
type Window struct {
	L, C, R int32
}

// Width returns the number of tokens the window spans.
func (w Window) Width() int { return int(w.R - w.L + 1) }

// Contains reports whether the sequence [i, j] is represented by w.
func (w Window) Contains(i, j int32) bool {
	return w.L <= i && i <= w.C && w.C <= j && j <= w.R
}

// Count returns the number of sequences represented by w: sequences may
// start anywhere in [L, C] and end anywhere in [C, R].
func (w Window) Count() int64 {
	return int64(w.C-w.L+1) * int64(w.R-w.C+1)
}

// CountAtLeast returns the number of sequences of length >= t that w
// represents.
func (w Window) CountAtLeast(t int) int64 {
	n := int64(0)
	for i := w.L; i <= w.C; i++ {
		// j ranges over [max(C, i+t-1), R].
		lo := i + int32(t) - 1
		if lo < w.C {
			lo = w.C
		}
		if lo > w.R {
			continue
		}
		n += int64(w.R - lo + 1)
	}
	return n
}

func (w Window) String() string {
	return fmt.Sprintf("(%d,%d,%d)", w.L, w.C, w.R)
}

// Hashes fills dst with f applied to each token and returns it,
// allocating only when dst is too small. This is the per-function hash
// pass preceding window generation.
func Hashes(tokens []uint32, f hash.Func, dst []uint64) []uint64 {
	if cap(dst) < len(tokens) {
		dst = make([]uint64, len(tokens))
	}
	dst = dst[:len(tokens)]
	for i, tok := range tokens {
		dst[i] = f.Hash(tok)
	}
	return dst
}

// GenerateLinear appends to dst every valid compact window of the token
// hash array vals under length threshold t, in O(len(vals)) time, and
// returns the extended slice. Ties between equal hash values are broken
// toward the leftmost position, matching the RMQ-based generator.
//
// For each position c the maximal window is [L, R] where L-1 is the
// closest previous position with value <= vals[c] and R+1 is the closest
// next position with value < vals[c]; c is then the leftmost minimum of
// [L, R]. The window is emitted iff R-L+1 >= t.
func GenerateLinear(vals []uint64, t int, dst []Window) []Window {
	n := len(vals)
	if t < 1 {
		t = 1
	}
	if n < t {
		return dst
	}
	// left[c]: first position of c's window. A monotonic stack of
	// positions with strictly increasing values yields, for each c, the
	// nearest previous position whose value is <= vals[c].
	left := make([]int32, n)
	stack := make([]int32, 0, 64)
	for c := 0; c < n; c++ {
		v := vals[c]
		for len(stack) > 0 && vals[stack[len(stack)-1]] > v {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			left[c] = 0
		} else {
			left[c] = stack[len(stack)-1] + 1
		}
		stack = append(stack, int32(c))
	}
	// right bound: nearest next position with value strictly smaller.
	stack = stack[:0]
	for c := n - 1; c >= 0; c-- {
		v := vals[c]
		for len(stack) > 0 && vals[stack[len(stack)-1]] >= v {
			stack = stack[:len(stack)-1]
		}
		var r int32
		if len(stack) == 0 {
			r = int32(n - 1)
		} else {
			r = stack[len(stack)-1] - 1
		}
		if int(r)-int(left[c])+1 >= t {
			dst = append(dst, Window{L: left[c], C: int32(c), R: r})
		}
		stack = append(stack, int32(c))
	}
	return dst
}

// Generate appends to dst every valid compact window of vals under
// length threshold t using the paper's divide-and-conquer Algorithm 2 on
// the RMQ structure produced by newRMQ, and returns the extended slice.
// The recursion is realized with an explicit stack so arbitrarily long
// texts cannot overflow the goroutine stack.
func Generate(vals []uint64, t int, newRMQ func([]uint64) rmq.RMQ, dst []Window) []Window {
	n := len(vals)
	if t < 1 {
		t = 1
	}
	if n < t {
		return dst
	}
	r := newRMQ(vals)
	type span struct{ l, r int32 }
	work := make([]span, 1, 64)
	work[0] = span{0, int32(n - 1)}
	for len(work) > 0 {
		s := work[len(work)-1]
		work = work[:len(work)-1]
		if int(s.r)-int(s.l)+1 < t {
			continue
		}
		c := int32(r.Query(int(s.l), int(s.r)))
		dst = append(dst, Window{L: s.l, C: c, R: s.r})
		work = append(work, span{s.l, c - 1}, span{c + 1, s.r})
	}
	return dst
}

// GenerateTokens is a convenience wrapper: it hashes tokens with f and
// runs GenerateLinear. Intended for call sites that do not manage reuse
// buffers themselves.
func GenerateTokens(tokens []uint32, f hash.Func, t int) []Window {
	vals := Hashes(tokens, f, nil)
	return GenerateLinear(vals, t, nil)
}

// ExpectedCount returns the expected number of valid compact windows for
// a text of n distinct random tokens and length threshold t, which
// Theorem 1 shows to be 2(n+1)/(t+1) - 1 for n >= t (and 0 otherwise).
func ExpectedCount(n, t int) float64 {
	if n < t || n <= 0 {
		return 0
	}
	return 2*float64(n+1)/float64(t+1) - 1
}
