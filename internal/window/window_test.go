package window

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ndss/internal/hash"
	"ndss/internal/rmq"
)

// generators lists all window generators under test; they must produce
// identical window sets.
var generators = []struct {
	name string
	gen  func(vals []uint64, t int) []Window
}{
	{"Linear", func(v []uint64, t int) []Window { return GenerateLinear(v, t, nil) }},
	{"RMQ-Sparse", func(v []uint64, t int) []Window {
		return Generate(v, t, func(x []uint64) rmq.RMQ { return rmq.NewSparse(x) }, nil)
	}},
	{"RMQ-SegTree", func(v []uint64, t int) []Window {
		return Generate(v, t, func(x []uint64) rmq.RMQ { return rmq.NewSegmentTree(x) }, nil)
	}},
	{"RMQ-Linear", func(v []uint64, t int) []Window {
		return Generate(v, t, func(x []uint64) rmq.RMQ { return rmq.NewLinear(x) }, nil)
	}},
}

func sortWindows(ws []Window) {
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].C != ws[j].C {
			return ws[i].C < ws[j].C
		}
		if ws[i].L != ws[j].L {
			return ws[i].L < ws[j].L
		}
		return ws[i].R < ws[j].R
	})
}

func windowsEqual(a, b []Window) bool {
	if len(a) != len(b) {
		return false
	}
	sortWindows(a)
	sortWindows(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyAndShortInputs(t *testing.T) {
	for _, g := range generators {
		if ws := g.gen(nil, 5); len(ws) != 0 {
			t.Errorf("%s: empty input produced %d windows", g.name, len(ws))
		}
		if ws := g.gen([]uint64{1, 2, 3}, 5); len(ws) != 0 {
			t.Errorf("%s: too-short input produced %d windows", g.name, len(ws))
		}
	}
}

func TestSingleToken(t *testing.T) {
	for _, g := range generators {
		ws := g.gen([]uint64{7}, 1)
		if len(ws) != 1 || ws[0] != (Window{0, 0, 0}) {
			t.Errorf("%s: single token t=1 -> %v, want [(0,0,0)]", g.name, ws)
		}
	}
}

func TestThresholdOneEmitsAllPositions(t *testing.T) {
	vals := []uint64{5, 3, 8, 1, 9, 2, 7}
	for _, g := range generators {
		ws := g.gen(vals, 1)
		if len(ws) != len(vals) {
			t.Errorf("%s: t=1 emitted %d windows, want %d", g.name, len(ws), len(vals))
		}
	}
}

func TestKnownExample(t *testing.T) {
	// vals: min at index 3 (value 1), then sub-arrays [0..2] and [4..6].
	vals := []uint64{5, 3, 8, 1, 9, 2, 7}
	// t=3: root window (0,3,6); left [0,2] min at 1 -> (0,1,2) width 3;
	// right [4,6] min at 5 -> (4,5,6) width 3. Their children are too
	// narrow.
	want := []Window{{0, 3, 6}, {0, 1, 2}, {4, 5, 6}}
	for _, g := range generators {
		got := g.gen(vals, 3)
		if !windowsEqual(got, append([]Window{}, want...)) {
			t.Errorf("%s: got %v, want %v", g.name, got, want)
		}
	}
}

func TestTieBreaksLeftmost(t *testing.T) {
	// Duplicate minimum values: the leftmost occurrence must divide.
	vals := []uint64{4, 1, 3, 1, 5}
	for _, g := range generators {
		ws := g.gen(vals, 5)
		if len(ws) != 1 {
			t.Fatalf("%s: got %d windows, want 1", g.name, len(ws))
		}
		if ws[0] != (Window{0, 1, 4}) {
			t.Errorf("%s: got %v, want (0,1,4)", g.name, ws[0])
		}
	}
}

func TestAllEqualValues(t *testing.T) {
	// All tokens share the same hash: the tree is a right spine.
	vals := []uint64{6, 6, 6, 6, 6, 6}
	for _, g := range generators {
		ws := g.gen(vals, 3)
		// Windows: (0,0,5),(1,1,5),(2,2,5),(3,3,5) have width >= 3.
		want := []Window{{0, 0, 5}, {1, 1, 5}, {2, 2, 5}, {3, 3, 5}}
		if !windowsEqual(ws, append([]Window{}, want...)) {
			t.Errorf("%s: got %v, want %v", g.name, ws, want)
		}
	}
}

func TestGeneratorsAgreeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(300)
		tt := 1 + rng.Intn(20)
		vals := make([]uint64, n)
		domain := uint64(1 + rng.Intn(40)) // frequent ties
		for i := range vals {
			vals[i] = rng.Uint64() % domain
		}
		ref := generators[0].gen(vals, tt)
		for _, g := range generators[1:] {
			got := g.gen(vals, tt)
			if !windowsEqual(append([]Window{}, ref...), got) {
				t.Fatalf("trial %d t=%d: %s disagrees with %s\nvals=%v\nref=%v\ngot=%v",
					trial, tt, g.name, generators[0].name, vals, ref, got)
			}
		}
	}
}

// TestCoverage verifies Theorem 1's second claim: every sequence [i, j]
// with j-i+1 >= t is contained in exactly one generated window, and no
// window contains a sequence of length < t that another window also
// contains (windows partition ALL sequences; validity only filters by
// width).
func TestCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(120)
		tt := 1 + rng.Intn(12)
		vals := make([]uint64, n)
		domain := uint64(1 + rng.Intn(25))
		for i := range vals {
			vals[i] = rng.Uint64() % domain
		}
		ws := GenerateLinear(vals, tt, nil)
		for i := 0; i < n; i++ {
			for j := i + tt - 1; j < n; j++ {
				count := 0
				for _, w := range ws {
					if w.Contains(int32(i), int32(j)) {
						count++
					}
				}
				if count != 1 {
					t.Fatalf("trial %d: sequence [%d,%d] covered by %d windows (t=%d, vals=%v, ws=%v)",
						trial, i, j, count, tt, vals, ws)
				}
			}
		}
	}
}

// TestMinHashCorrectness verifies that for every generated window, the
// value at C is the minimum of vals[L..R] — i.e. the window's min-hash
// annotation is correct for every sequence it represents.
func TestMinHashCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(200)
		tt := 1 + rng.Intn(15)
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = rng.Uint64() % 64
		}
		for _, w := range GenerateLinear(vals, tt, nil) {
			for p := w.L; p <= w.R; p++ {
				if vals[p] < vals[w.C] {
					t.Fatalf("window %v: vals[%d]=%d < vals[C]=%d", w, p, vals[p], vals[w.C])
				}
			}
		}
	}
}

// TestMaximality verifies each window cannot be extended while keeping C
// the leftmost minimum.
func TestMaximality(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(150)
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = rng.Uint64() % 32
		}
		for _, w := range GenerateLinear(vals, 1, nil) {
			if w.L > 0 && vals[w.L-1] > vals[w.C] {
				t.Fatalf("window %v extendable left (vals[%d]=%d > %d)", w, w.L-1, vals[w.L-1], vals[w.C])
			}
			if int(w.R) < n-1 && vals[w.R+1] >= vals[w.C] {
				t.Fatalf("window %v extendable right (vals[%d]=%d >= %d)", w, w.R+1, vals[w.R+1], vals[w.C])
			}
		}
	}
}

// TestTheorem1Expectation checks the expected window count formula
// 2(n+1)/(t+1)-1 against the empirical mean over random permutations.
func TestTheorem1Expectation(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	rng := rand.New(rand.NewSource(71))
	for _, cfg := range []struct{ n, t int }{
		{100, 5}, {500, 25}, {1000, 50}, {2000, 100},
	} {
		trials := 200
		total := 0
		vals := make([]uint64, cfg.n)
		for tr := 0; tr < trials; tr++ {
			for i := range vals {
				vals[i] = rng.Uint64() // distinct w.h.p.
			}
			total += len(GenerateLinear(vals, cfg.t, nil))
		}
		mean := float64(total) / float64(trials)
		want := ExpectedCount(cfg.n, cfg.t)
		if math.Abs(mean-want)/want > 0.15 {
			t.Errorf("n=%d t=%d: empirical mean %.2f vs expected %.2f", cfg.n, cfg.t, mean, want)
		}
	}
}

func TestExpectedCount(t *testing.T) {
	if got := ExpectedCount(10, 11); got != 0 {
		t.Errorf("ExpectedCount(10,11) = %v, want 0", got)
	}
	if got := ExpectedCount(0, 1); got != 0 {
		t.Errorf("ExpectedCount(0,1) = %v, want 0", got)
	}
	// t=1 -> exactly n windows.
	if got := ExpectedCount(17, 1); got != 17 {
		t.Errorf("ExpectedCount(17,1) = %v, want 17", got)
	}
	// Paper's Example 1: n=17, t=5 -> 2*18/6-1 = 5.
	if got := ExpectedCount(17, 5); got != 5 {
		t.Errorf("ExpectedCount(17,5) = %v, want 5", got)
	}
}

func TestWindowHelpers(t *testing.T) {
	w := Window{L: 2, C: 5, R: 9}
	if w.Width() != 8 {
		t.Errorf("Width = %d, want 8", w.Width())
	}
	if !w.Contains(3, 7) || w.Contains(6, 7) || w.Contains(3, 4) || w.Contains(1, 7) || w.Contains(3, 10) {
		t.Error("Contains misbehaves")
	}
	// Count: starts in [2,5] (4 options) x ends in [5,9] (5 options).
	if w.Count() != 20 {
		t.Errorf("Count = %d, want 20", w.Count())
	}
	// CountAtLeast with t=1 equals Count.
	if w.CountAtLeast(1) != 20 {
		t.Errorf("CountAtLeast(1) = %d, want 20", w.CountAtLeast(1))
	}
	// Brute-force check CountAtLeast for several t.
	for tt := 1; tt <= 10; tt++ {
		want := int64(0)
		for i := w.L; i <= w.C; i++ {
			for j := w.C; j <= w.R; j++ {
				if int(j-i+1) >= tt {
					want++
				}
			}
		}
		if got := w.CountAtLeast(tt); got != want {
			t.Errorf("CountAtLeast(%d) = %d, want %d", tt, got, want)
		}
	}
	if w.String() != "(2,5,9)" {
		t.Errorf("String = %q", w.String())
	}
}

func TestHashesReuse(t *testing.T) {
	fam := hash.MustNewFamily(1, 5)
	tokens := []uint32{1, 2, 3, 4}
	buf := make([]uint64, 2) // too small: must grow
	out := Hashes(tokens, fam.Func(0), buf)
	if len(out) != 4 {
		t.Fatalf("len = %d, want 4", len(out))
	}
	for i, tok := range tokens {
		if out[i] != fam.Func(0).Hash(tok) {
			t.Fatalf("out[%d] mismatch", i)
		}
	}
	// Big enough buffer is reused in place.
	buf2 := make([]uint64, 8)
	out2 := Hashes(tokens, fam.Func(0), buf2)
	if &out2[0] != &buf2[0] {
		t.Error("buffer not reused")
	}
}

func TestGenerateTokens(t *testing.T) {
	fam := hash.MustNewFamily(1, 9)
	tokens := make([]uint32, 50)
	for i := range tokens {
		tokens[i] = uint32(i)
	}
	ws := GenerateTokens(tokens, fam.Func(0), 10)
	if len(ws) == 0 {
		t.Fatal("no windows generated")
	}
	// Same result as explicit pipeline.
	vals := Hashes(tokens, fam.Func(0), nil)
	want := GenerateLinear(vals, 10, nil)
	if !windowsEqual(ws, want) {
		t.Error("GenerateTokens disagrees with explicit pipeline")
	}
}

// Property: the sum over windows of CountAtLeast(t) equals the total
// number of sequences of length >= t, n-t+1 + n-t + ... + 1.
func TestWindowCountsPartitionSequences(t *testing.T) {
	f := func(raw []uint16, tRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		tt := int(tRaw%20) + 1
		vals := make([]uint64, len(raw))
		for i, v := range raw {
			vals[i] = uint64(v % 100)
		}
		n := len(vals)
		var want int64
		for L := tt; L <= n; L++ {
			want += int64(n - L + 1)
		}
		var got int64
		for _, w := range GenerateLinear(vals, tt, nil) {
			got += w.CountAtLeast(tt)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func benchGenerate(b *testing.B, n, t int, gen func([]uint64, int) []Window) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = rng.Uint64()
	}
	b.SetBytes(int64(n * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = gen(vals, t)
	}
}

func BenchmarkGenerateLinear_n10k_t50(b *testing.B) {
	benchGenerate(b, 10000, 50, func(v []uint64, t int) []Window { return GenerateLinear(v, t, nil) })
}

func BenchmarkGenerateRMQSparse_n10k_t50(b *testing.B) {
	benchGenerate(b, 10000, 50, func(v []uint64, t int) []Window {
		return Generate(v, t, func(x []uint64) rmq.RMQ { return rmq.NewSparse(x) }, nil)
	})
}

func BenchmarkGenerateRMQSegTree_n10k_t50(b *testing.B) {
	benchGenerate(b, 10000, 50, func(v []uint64, t int) []Window {
		return Generate(v, t, func(x []uint64) rmq.RMQ { return rmq.NewSegmentTree(x) }, nil)
	})
}

func BenchmarkGenerateRMQLinear_n10k_t50(b *testing.B) {
	benchGenerate(b, 10000, 50, func(v []uint64, t int) []Window {
		return Generate(v, t, func(x []uint64) rmq.RMQ { return rmq.NewLinear(x) }, nil)
	})
}
