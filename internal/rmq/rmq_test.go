package rmq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// builders enumerates all RMQ implementations under test.
var builders = []struct {
	name  string
	build func([]uint64) RMQ
}{
	{"Sparse", func(v []uint64) RMQ { return NewSparse(v) }},
	{"SegmentTree", func(v []uint64) RMQ { return NewSegmentTree(v) }},
	{"Linear", func(v []uint64) RMQ { return NewLinear(v) }},
}

func TestSingleElement(t *testing.T) {
	for _, b := range builders {
		r := b.build([]uint64{42})
		if r.Len() != 1 {
			t.Errorf("%s: Len = %d, want 1", b.name, r.Len())
		}
		if got := r.Query(0, 0); got != 0 {
			t.Errorf("%s: Query(0,0) = %d, want 0", b.name, got)
		}
	}
}

func TestAllRangesSmall(t *testing.T) {
	// Exhaustively check every range of several fixed arrays, including
	// arrays with many ties.
	arrays := [][]uint64{
		{5},
		{2, 1},
		{1, 2},
		{3, 3, 3, 3},
		{9, 1, 8, 1, 7, 1, 6},
		{1, 2, 3, 4, 5, 6, 7, 8},
		{8, 7, 6, 5, 4, 3, 2, 1},
		{5, 5, 1, 5, 5, 1, 5, 5, 1},
		{0, 18446744073709551615, 0, 18446744073709551615},
	}
	for _, vals := range arrays {
		for _, b := range builders {
			r := b.build(append([]uint64{}, vals...))
			for l := 0; l < len(vals); l++ {
				for rr := l; rr < len(vals); rr++ {
					want := argminScan(vals, l, rr)
					if got := r.Query(l, rr); got != want {
						t.Fatalf("%s: vals=%v Query(%d,%d) = %d, want %d",
							b.name, vals, l, rr, got, want)
					}
				}
			}
		}
	}
}

func TestAllRangesRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(200)
		vals := make([]uint64, n)
		// Small value domain to force many ties.
		domain := uint64(1 + rng.Intn(10))
		for i := range vals {
			vals[i] = rng.Uint64() % domain
		}
		rmqs := make([]RMQ, len(builders))
		for i, b := range builders {
			rmqs[i] = b.build(vals)
		}
		for l := 0; l < n; l++ {
			for r := l; r < n; r++ {
				want := argminScan(vals, l, r)
				for i, b := range builders {
					if got := rmqs[i].Query(l, r); got != want {
						t.Fatalf("trial %d %s: Query(%d,%d) = %d, want %d (vals=%v)",
							trial, b.name, l, r, got, want, vals)
					}
				}
			}
		}
	}
}

func TestLargeRandomSpotChecks(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 50000
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = rng.Uint64()
	}
	rmqs := make([]RMQ, len(builders))
	for i, b := range builders {
		rmqs[i] = b.build(vals)
	}
	for q := 0; q < 5000; q++ {
		l := rng.Intn(n)
		r := l + rng.Intn(n-l)
		want := argminScan(vals, l, r)
		for i, b := range builders {
			if got := rmqs[i].Query(l, r); got != want {
				t.Fatalf("%s: Query(%d,%d) = %d, want %d", b.name, l, r, got, want)
			}
		}
	}
}

func TestImplementationsAgree(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]uint64, len(raw))
		for i, v := range raw {
			vals[i] = uint64(v % 50) // force ties
		}
		sp := NewSparse(vals)
		st := NewSegmentTree(vals)
		li := NewLinear(vals)
		rng := rand.New(rand.NewSource(int64(len(vals))))
		for q := 0; q < 30; q++ {
			l := rng.Intn(len(vals))
			r := l + rng.Intn(len(vals)-l)
			a, b, c := sp.Query(l, r), st.Query(l, r), li.Query(l, r)
			if a != b || b != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestInvalidRangePanics(t *testing.T) {
	for _, b := range builders {
		r := b.build([]uint64{1, 2, 3})
		for _, bad := range [][2]int{{-1, 0}, {0, 3}, {2, 1}} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s: Query(%d,%d) should panic", b.name, bad[0], bad[1])
					}
				}()
				r.Query(bad[0], bad[1])
			}()
		}
	}
}

func TestBallotSignatureDistinguishesShapes(t *testing.T) {
	// Different comparison structures must produce different signatures.
	a := ballotSignature([]uint64{1, 2, 3})
	b := ballotSignature([]uint64{3, 2, 1})
	c := ballotSignature([]uint64{2, 1, 3})
	if a == b || a == c || b == c {
		t.Fatalf("signatures should differ: %b %b %b", a, b, c)
	}
	// Same shape, different values: same signature.
	d := ballotSignature([]uint64{10, 20, 30})
	if a != d {
		t.Fatalf("equal-shape blocks got different signatures: %b vs %b", a, d)
	}
	// Ties: equal run behaves like increasing (leftmost-min convention).
	e := ballotSignature([]uint64{7, 7, 7})
	if e != a {
		t.Fatalf("all-equal block should share shape with increasing block: %b vs %b", e, a)
	}
}

func benchRMQ(b *testing.B, build func([]uint64) RMQ) {
	rng := rand.New(rand.NewSource(3))
	n := 1 << 16
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = rng.Uint64()
	}
	r := build(vals)
	queries := make([][2]int, 1024)
	for i := range queries {
		l := rng.Intn(n)
		queries[i] = [2]int{l, l + rng.Intn(n-l)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		_ = r.Query(q[0], q[1])
	}
}

func BenchmarkQuerySparse(b *testing.B) { benchRMQ(b, func(v []uint64) RMQ { return NewSparse(v) }) }
func BenchmarkQuerySegmentTree(b *testing.B) {
	benchRMQ(b, func(v []uint64) RMQ { return NewSegmentTree(v) })
}
func BenchmarkQueryLinear(b *testing.B) { benchRMQ(b, func(v []uint64) RMQ { return NewLinear(v) }) }

func benchBuild(b *testing.B, build func([]uint64) RMQ) {
	rng := rand.New(rand.NewSource(3))
	n := 1 << 16
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = rng.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = build(vals)
	}
}

func BenchmarkBuildSparse(b *testing.B) { benchBuild(b, func(v []uint64) RMQ { return NewSparse(v) }) }
func BenchmarkBuildSegmentTree(b *testing.B) {
	benchBuild(b, func(v []uint64) RMQ { return NewSegmentTree(v) })
}
func BenchmarkBuildLinear(b *testing.B) { benchBuild(b, func(v []uint64) RMQ { return NewLinear(v) }) }
