package rmq

import "math/bits"

// Linear is a Fischer–Heun style RMQ with O(n) construction time and
// space and O(1) queries.
//
// The array is split into blocks of ~log(n)/4 elements. A sparse table
// answers queries over whole blocks, and in-block queries use per-shape
// lookup tables: two blocks whose Cartesian trees have the same shape
// share the same argmin for every in-block range, so at most O(sqrt(n))
// distinct tables are ever materialized (they are built lazily, keyed by
// the block's ballot signature).
type Linear struct {
	vals      []uint64
	blockSize int
	// blockMinIdx[i] is the global index of the leftmost minimum in
	// block i.
	blockMinIdx []int32
	// sparse[j][i] is the block index holding the leftmost minimum among
	// blocks [i, i+2^j-1].
	sparse [][]int32
	// blockTable[i] is the in-block argmin table for block i (shared
	// across blocks with the same Cartesian tree shape). Entry [p*size+q]
	// is the offset of the leftmost minimum in block positions [p, q].
	blockTable [][]int8
}

// NewLinear builds the structure over vals. The slice is retained, not
// copied; callers must not mutate it afterwards.
func NewLinear(vals []uint64) *Linear {
	n := len(vals)
	l := &Linear{vals: vals}
	if n == 0 {
		return l
	}
	bs := bits.Len(uint(n)) / 4
	if bs < 1 {
		bs = 1
	}
	if bs > 15 {
		bs = 15 // keep 2*bs+4 bits of signature comfortably in uint64 keys
	}
	l.blockSize = bs
	numBlocks := (n + bs - 1) / bs

	// Per-shape tables, keyed by ballot signature combined with the
	// block length (a truncated final block must not share a table with
	// a full block that happens to have the same signature bits).
	tables := make(map[uint64][]int8)
	l.blockMinIdx = make([]int32, numBlocks)
	l.blockTable = make([][]int8, numBlocks)
	for blk := 0; blk < numBlocks; blk++ {
		start := blk * bs
		end := start + bs
		if end > n {
			end = n
		}
		block := vals[start:end]
		sig := ballotSignature(block)
		key := sig<<4 | uint64(len(block))
		tbl, ok := tables[key]
		if !ok {
			tbl = buildInBlockTable(block, bs)
			tables[key] = tbl
		}
		l.blockTable[blk] = tbl
		l.blockMinIdx[blk] = int32(start + int(tbl[0*bs+(len(block)-1)]))
	}

	// Sparse table over block minima.
	levels := 1
	if numBlocks > 1 {
		levels = bits.Len(uint(numBlocks))
	}
	l.sparse = make([][]int32, levels)
	l.sparse[0] = make([]int32, numBlocks)
	for i := range l.sparse[0] {
		l.sparse[0][i] = int32(i)
	}
	for j := 1; j < levels; j++ {
		width := 1 << j
		row := make([]int32, numBlocks-width+1)
		prev := l.sparse[j-1]
		half := width / 2
		for i := range row {
			row[i] = l.pickBlock(prev[i], prev[i+half])
		}
		l.sparse[j] = row
	}
	return l
}

// pickBlock returns whichever of block a or b holds the smaller minimum,
// preferring the leftward block on ties. a is assumed to be <= b.
func (l *Linear) pickBlock(a, b int32) int32 {
	if l.vals[l.blockMinIdx[b]] < l.vals[l.blockMinIdx[a]] {
		return b
	}
	return a
}

// ballotSignature encodes the shape of the block's Cartesian tree as a
// bit string: for each element, 0-bits for stack pops followed by a
// 1-bit for its push. Blocks with equal signatures (and equal length)
// have identical argmin structure under the leftmost-minimum tie rule.
func ballotSignature(block []uint64) uint64 {
	var sig uint64
	var stack [16]uint64
	top := -1
	for _, v := range block {
		for top >= 0 && stack[top] > v { // strict: equal values stay (leftmost wins)
			sig <<= 1 // pop -> 0 bit
			top--
		}
		top++
		stack[top] = v
		sig = sig<<1 | 1 // push -> 1 bit
	}
	return sig
}

// buildInBlockTable computes the argmin-offset table of a block by
// dynamic programming: table[p*stride+q] is the offset of the leftmost
// minimum of block[p..q].
func buildInBlockTable(block []uint64, stride int) []int8 {
	m := len(block)
	tbl := make([]int8, stride*stride)
	for p := 0; p < m; p++ {
		best := p
		tbl[p*stride+p] = int8(p)
		for q := p + 1; q < m; q++ {
			if block[q] < block[best] {
				best = q
			}
			tbl[p*stride+q] = int8(best)
		}
	}
	return tbl
}

// Len returns the length of the underlying array.
func (l *Linear) Len() int { return len(l.vals) }

// Query returns the index of the leftmost minimum in [l, r].
func (l *Linear) Query(lo, hi int) int {
	checkRange(lo, hi, len(l.vals))
	bs := l.blockSize
	bl, br := lo/bs, hi/bs
	if bl == br {
		tbl := l.blockTable[bl]
		off := tbl[(lo-bl*bs)*bs+(hi-bl*bs)]
		return bl*bs + int(off)
	}
	// Suffix of the left block.
	tblL := l.blockTable[bl]
	lastL := min((bl+1)*bs, len(l.vals)) - 1
	best := bl*bs + int(tblL[(lo-bl*bs)*bs+(lastL-bl*bs)])
	// Whole blocks in between.
	if bl+1 <= br-1 {
		j := bits.Len(uint(br-1-(bl+1)+1)) - 1
		a := l.sparse[j][bl+1]
		b := l.sparse[j][br-1-(1<<j)+1]
		blkBest := l.pickBlock(a, b)
		if cand := int(l.blockMinIdx[blkBest]); l.vals[cand] < l.vals[best] {
			best = cand
		}
	}
	// Prefix of the right block.
	tblR := l.blockTable[br]
	if cand := br*bs + int(tblR[0*bs+(hi-br*bs)]); l.vals[cand] < l.vals[best] {
		best = cand
	}
	return best
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
