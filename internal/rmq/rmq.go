// Package rmq provides range-minimum-query structures over arrays of
// 64-bit hash values.
//
// The compact-window generation algorithm (paper Algorithm 2) repeatedly
// asks for the position of the smallest token hash in a range. Three
// structures are provided with different construction/query trade-offs:
//
//   - SegmentTree: O(n) build, O(log n) query — what ALIGN used.
//   - Sparse: O(n log n) build and space, O(1) query.
//   - Linear: O(n) build and space, O(1) query (Fischer–Heun block
//     decomposition) — the structure the paper cites to reach overall
//     O(n) window generation.
//
// All structures answer Query(l, r) with the index of the LEFTMOST
// minimum value in vals[l..r] (inclusive), which makes tie-breaking
// deterministic across implementations.
package rmq

import "fmt"

// RMQ answers range-minimum queries over a fixed array.
type RMQ interface {
	// Query returns the index of the leftmost minimum in [l, r]
	// (both inclusive). It panics if the range is invalid.
	Query(l, r int) int
	// Len returns the length of the underlying array.
	Len() int
}

func checkRange(l, r, n int) {
	if l < 0 || r >= n || l > r {
		panic(fmt.Sprintf("rmq: invalid range [%d, %d] for length %d", l, r, n))
	}
}

// argminScan returns the index of the leftmost minimum of vals[l..r] by
// linear scan. Shared by tests and small-range fallbacks.
func argminScan(vals []uint64, l, r int) int {
	best := l
	for i := l + 1; i <= r; i++ {
		if vals[i] < vals[best] {
			best = i
		}
	}
	return best
}
