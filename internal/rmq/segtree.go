package rmq

// SegmentTree is a binary segment tree RMQ: O(n) build, O(log n) query.
// This is the structure used by ALIGN; the paper replaces it with an
// O(1)-query structure to reach linear total window-generation time. It
// is kept as an ablation baseline.
type SegmentTree struct {
	vals []uint64
	n    int
	// tree[v] is the index of the leftmost minimum in node v's range.
	tree []int32
}

// NewSegmentTree builds a segment tree over vals. The slice is retained,
// not copied.
func NewSegmentTree(vals []uint64) *SegmentTree {
	n := len(vals)
	st := &SegmentTree{vals: vals, n: n}
	if n == 0 {
		return st
	}
	st.tree = make([]int32, 4*n)
	st.build(1, 0, n-1)
	return st
}

func (st *SegmentTree) build(v, l, r int) {
	if l == r {
		st.tree[v] = int32(l)
		return
	}
	mid := (l + r) / 2
	st.build(2*v, l, mid)
	st.build(2*v+1, mid+1, r)
	st.tree[v] = st.merge(st.tree[2*v], st.tree[2*v+1])
}

// merge picks the leftmost-minimum index of two candidates.
func (st *SegmentTree) merge(a, b int32) int32 {
	if st.vals[b] < st.vals[a] {
		return b
	}
	return a // vals[a] <= vals[b]; a is leftward when they tie
}

// Len returns the length of the underlying array.
func (st *SegmentTree) Len() int { return st.n }

// Query returns the index of the leftmost minimum in [l, r].
func (st *SegmentTree) Query(l, r int) int {
	checkRange(l, r, st.n)
	return int(st.query(1, 0, st.n-1, l, r))
}

func (st *SegmentTree) query(v, nl, nr, l, r int) int32 {
	if l <= nl && nr <= r {
		return st.tree[v]
	}
	mid := (nl + nr) / 2
	if r <= mid {
		return st.query(2*v, nl, mid, l, r)
	}
	if l > mid {
		return st.query(2*v+1, mid+1, nr, l, r)
	}
	return st.merge(st.query(2*v, nl, mid, l, r), st.query(2*v+1, mid+1, nr, l, r))
}
