package rmq

import "math/bits"

// Sparse is a classic sparse-table RMQ: O(n log n) preprocessing and
// space, O(1) queries.
type Sparse struct {
	vals []uint64
	// table[j][i] is the index of the leftmost minimum in
	// vals[i .. i+2^j-1].
	table [][]int32
}

// NewSparse builds a sparse table over vals. The slice is retained, not
// copied; callers must not mutate it afterwards.
func NewSparse(vals []uint64) *Sparse {
	n := len(vals)
	levels := 1
	if n > 1 {
		levels = bits.Len(uint(n)) // floor(log2(n)) + 1
	}
	table := make([][]int32, levels)
	table[0] = make([]int32, n)
	for i := range table[0] {
		table[0][i] = int32(i)
	}
	for j := 1; j < levels; j++ {
		width := 1 << j
		row := make([]int32, n-width+1)
		prev := table[j-1]
		half := width / 2
		for i := range row {
			a, b := prev[i], prev[i+half]
			if vals[b] < vals[a] {
				row[i] = b
			} else {
				row[i] = a // ties go left
			}
		}
		table[j] = row
	}
	return &Sparse{vals: vals, table: table}
}

// Len returns the length of the underlying array.
func (s *Sparse) Len() int { return len(s.vals) }

// Query returns the index of the leftmost minimum in [l, r].
func (s *Sparse) Query(l, r int) int {
	checkRange(l, r, len(s.vals))
	if l == r {
		return l
	}
	j := bits.Len(uint(r-l+1)) - 1
	a := s.table[j][l]
	b := s.table[j][r-(1<<j)+1]
	if s.vals[b] < s.vals[a] {
		return int(b)
	}
	if s.vals[a] < s.vals[b] {
		return int(a)
	}
	if a < b {
		return int(a)
	}
	return int(b)
}
