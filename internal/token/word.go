package token

import (
	"strings"
	"unicode"
)

// WordTokenizer is a simple word-level tokenizer: text is lowercased and
// split on non-letter/digit runs, and each distinct word receives the
// next free id on first sight. It is the quick alternative to BPE for
// examples and tests on natural-language text.
type WordTokenizer struct {
	vocab map[string]uint32
	words []string
}

// NewWordTokenizer returns an empty tokenizer.
func NewWordTokenizer() *WordTokenizer {
	return &WordTokenizer{vocab: make(map[string]uint32)}
}

// VocabSize returns the number of distinct words seen so far.
func (t *WordTokenizer) VocabSize() int { return len(t.words) }

// Encode tokenizes text, growing the vocabulary as new words appear.
func (t *WordTokenizer) Encode(text string) []uint32 {
	var out []uint32
	for _, w := range splitWords(text) {
		id, ok := t.vocab[w]
		if !ok {
			id = uint32(len(t.words))
			t.vocab[w] = id
			t.words = append(t.words, w)
		}
		out = append(out, id)
	}
	return out
}

// EncodeFrozen tokenizes text without growing the vocabulary; unknown
// words are skipped and reported.
func (t *WordTokenizer) EncodeFrozen(text string) (ids []uint32, unknown []string) {
	for _, w := range splitWords(text) {
		if id, ok := t.vocab[w]; ok {
			ids = append(ids, id)
		} else {
			unknown = append(unknown, w)
		}
	}
	return ids, unknown
}

// Decode reconstructs a space-joined approximation of the source text.
func (t *WordTokenizer) Decode(ids []uint32) string {
	parts := make([]string, 0, len(ids))
	for _, id := range ids {
		if int(id) < len(t.words) {
			parts = append(parts, t.words[id])
		} else {
			parts = append(parts, "�")
		}
	}
	return strings.Join(parts, " ")
}

// Word returns the word of a token id, or "" when out of range.
func (t *WordTokenizer) Word(id uint32) string {
	if int(id) < len(t.words) {
		return t.words[id]
	}
	return ""
}

func splitWords(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}
