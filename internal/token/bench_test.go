package token

import (
	"strings"
	"testing"
)

var benchText = strings.Repeat(
	"the quick brown fox jumps over the lazy dog while the cat watches from the windowsill ", 20)

func BenchmarkTrainBPE(b *testing.B) {
	texts := []string{benchText, strings.ToUpper(benchText)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainBPE(texts, 512); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBPEEncode(b *testing.B) {
	m, err := TrainBPE([]string{benchText}, 512)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(benchText)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Encode(benchText)
	}
}

func BenchmarkBPEDecode(b *testing.B) {
	m, err := TrainBPE([]string{benchText}, 512)
	if err != nil {
		b.Fatal(err)
	}
	ids := m.Encode(benchText)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Decode(ids)
	}
}

func BenchmarkWordTokenizerEncode(b *testing.B) {
	wt := NewWordTokenizer()
	b.SetBytes(int64(len(benchText)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = wt.Encode(benchText)
	}
}
