package token

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestSegmentWords(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"hello", []string{"hello"}},
		{"hello world", []string{"hello", " world"}},
		{"  leading", []string{"  leading"}},
		{"a b  c", []string{"a", " b", "  c"}},
		{"line\nbreak", []string{"line", "\nbreak"}},
		{"trail ", []string{"trail", " "}},
	}
	for _, c := range cases {
		got := segmentWords(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("segmentWords(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSegmentWordsLossless(t *testing.T) {
	f := func(s string) bool {
		return strings.Join(segmentWords(s), "") == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTrainBPEValidation(t *testing.T) {
	if _, err := TrainBPE([]string{"x"}, 100); err == nil {
		t.Fatal("vocabSize < 256 should fail")
	}
}

func TestBPERoundTrip(t *testing.T) {
	texts := []string{
		"the quick brown fox jumps over the lazy dog",
		"the quick brown fox is quick and brown",
		"pack my box with five dozen liquor jugs",
	}
	b, err := TrainBPE(texts, 300)
	if err != nil {
		t.Fatal(err)
	}
	if b.VocabSize() < 256 {
		t.Fatalf("vocab size %d", b.VocabSize())
	}
	for _, text := range texts {
		ids := b.Encode(text)
		if got := b.Decode(ids); got != text {
			t.Fatalf("round trip: %q -> %q", text, got)
		}
	}
	// Unseen text still round-trips (byte fallback).
	unseen := "zebras yawn at midnight: 42!"
	if got := b.Decode(b.Encode(unseen)); got != unseen {
		t.Fatalf("unseen round trip: %q -> %q", unseen, got)
	}
}

func TestBPECompresses(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 50; i++ {
		sb.WriteString("the common phrase appears again and again ")
	}
	text := sb.String()
	b, err := TrainBPE([]string{text}, 400)
	if err != nil {
		t.Fatal(err)
	}
	ids := b.Encode(text)
	if len(ids) >= len(text)/2 {
		t.Fatalf("BPE should compress repetitive text: %d tokens for %d bytes", len(ids), len(text))
	}
}

func TestBPEDeterministic(t *testing.T) {
	texts := []string{"abc abd abe abc abd", "xyz abc xyz"}
	a, err := TrainBPE(texts, 280)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainBPE(texts, 280)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.merges, b.merges) {
		t.Fatal("training not deterministic")
	}
}

func TestBPESaveLoad(t *testing.T) {
	texts := []string{"some training data with repeated repeated words words words"}
	b, err := TrainBPE(texts, 300)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBPE(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.VocabSize() != b.VocabSize() {
		t.Fatalf("vocab size %d vs %d", loaded.VocabSize(), b.VocabSize())
	}
	text := "repeated words and unseen stuff"
	if !reflect.DeepEqual(b.Encode(text), loaded.Encode(text)) {
		t.Fatal("loaded model encodes differently")
	}
	if _, err := LoadBPE(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage should fail to load")
	}
	if _, err := LoadBPE(strings.NewReader(`{"version":9}`)); err == nil {
		t.Fatal("unknown version should fail")
	}
}

func TestBPEDecodeUnknownID(t *testing.T) {
	b, err := TrainBPE([]string{"abc"}, 256)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Decode([]uint32{99999}); !strings.Contains(got, "�") {
		t.Fatalf("unknown id decoded to %q", got)
	}
}

func TestBPERoundTripProperty(t *testing.T) {
	b, err := TrainBPE([]string{"seed text for merges merges merges"}, 300)
	if err != nil {
		t.Fatal(err)
	}
	f := func(s string) bool {
		return b.Decode(b.Encode(s)) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWordTokenizer(t *testing.T) {
	wt := NewWordTokenizer()
	ids := wt.Encode("The quick brown fox. The lazy dog!")
	if len(ids) != 7 {
		t.Fatalf("got %d ids: %v", len(ids), ids)
	}
	if ids[0] != ids[4] { // "the" twice
		t.Fatal("same word got different ids")
	}
	if wt.VocabSize() != 6 {
		t.Fatalf("vocab size %d, want 6", wt.VocabSize())
	}
	if wt.Decode(ids) != "the quick brown fox the lazy dog" {
		t.Fatalf("decode: %q", wt.Decode(ids))
	}
	if wt.Word(ids[1]) != "quick" {
		t.Fatalf("Word = %q", wt.Word(ids[1]))
	}
	if wt.Word(9999) != "" {
		t.Fatal("out-of-range Word should be empty")
	}
	if got := wt.Decode([]uint32{9999}); got != "�" {
		t.Fatalf("unknown decode: %q", got)
	}
}

func TestWordTokenizerFrozen(t *testing.T) {
	wt := NewWordTokenizer()
	wt.Encode("alpha beta gamma")
	ids, unknown := wt.EncodeFrozen("alpha delta beta")
	if len(ids) != 2 || len(unknown) != 1 || unknown[0] != "delta" {
		t.Fatalf("ids=%v unknown=%v", ids, unknown)
	}
	if wt.VocabSize() != 3 {
		t.Fatal("frozen encode grew the vocab")
	}
}
