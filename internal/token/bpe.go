// Package token provides tokenizer substrates: a from-scratch byte-pair
// encoding (BPE) trainer/encoder/decoder (the paper trains a 64K BPE
// model for OpenWebText and uses a GPT-2 style BPE for the Pile) and a
// simple word-level tokenizer. Both produce the 32-bit token ids the
// rest of the system operates on.
package token

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
)

// BPE is a byte-level byte-pair-encoding model. The initial vocabulary
// is the 256 single bytes; training repeatedly merges the most frequent
// adjacent symbol pair until the requested vocabulary size is reached.
type BPE struct {
	// merges lists the learned merges in priority order: earlier merges
	// apply first during encoding.
	merges []mergeRule
	// vocab maps a symbol (a byte string produced by merges) to its
	// token id. Ids 0..255 are the single bytes; merge i yields id 256+i.
	vocab map[string]uint32
	// symbols is the inverse mapping.
	symbols []string
	// rank maps a symbol pair to its merge priority for fast encoding.
	rank map[symbolPair]int
}

type mergeRule struct {
	Left  string `json:"l"`
	Right string `json:"r"`
}

type symbolPair struct {
	left, right string
}

// VocabSize returns the number of tokens in the model.
func (b *BPE) VocabSize() int { return len(b.symbols) }

// TrainBPE learns a BPE model of the requested vocabulary size from the
// given texts. vocabSize must be at least 256 (the byte alphabet).
// Training is deterministic: ties on pair frequency break
// lexicographically.
func TrainBPE(texts []string, vocabSize int) (*BPE, error) {
	if vocabSize < 256 {
		return nil, fmt.Errorf("token: vocabSize must be >= 256, got %d", vocabSize)
	}
	// Pre-segment into words (whitespace attaches to the following word,
	// GPT-2 style) and count word frequencies so merge counting is
	// proportional to distinct words.
	wordFreq := make(map[string]int)
	for _, text := range texts {
		for _, w := range segmentWords(text) {
			wordFreq[w]++
		}
	}
	// Each distinct word is a mutable symbol sequence.
	type wordState struct {
		syms []string
		freq int
	}
	words := make([]wordState, 0, len(wordFreq))
	for w, f := range wordFreq {
		syms := make([]string, 0, len(w))
		for i := 0; i < len(w); i++ {
			syms = append(syms, w[i:i+1])
		}
		words = append(words, wordState{syms: syms, freq: f})
	}
	// Deterministic processing order.
	sort.Slice(words, func(i, j int) bool {
		return strings.Join(words[i].syms, "") < strings.Join(words[j].syms, "")
	})

	b := &BPE{vocab: make(map[string]uint32), rank: make(map[symbolPair]int)}
	for i := 0; i < 256; i++ {
		s := string([]byte{byte(i)})
		b.vocab[s] = uint32(i)
		b.symbols = append(b.symbols, s)
	}

	for len(b.symbols) < vocabSize {
		// Count adjacent pairs.
		counts := make(map[symbolPair]int)
		for _, ws := range words {
			for i := 0; i+1 < len(ws.syms); i++ {
				counts[symbolPair{ws.syms[i], ws.syms[i+1]}] += ws.freq
			}
		}
		if len(counts) == 0 {
			break // nothing left to merge
		}
		var best symbolPair
		bestCount := -1
		for p, c := range counts {
			if c > bestCount || (c == bestCount && lessPair(p, best)) {
				best, bestCount = p, c
			}
		}
		if bestCount < 2 {
			break // merging singletons gains nothing
		}
		merged := best.left + best.right
		b.rank[best] = len(b.merges)
		b.merges = append(b.merges, mergeRule{Left: best.left, Right: best.right})
		b.vocab[merged] = uint32(len(b.symbols))
		b.symbols = append(b.symbols, merged)
		// Apply the merge to every word.
		for wi := range words {
			ws := &words[wi]
			for i := 0; i+1 < len(ws.syms); {
				if ws.syms[i] == best.left && ws.syms[i+1] == best.right {
					ws.syms[i] = merged
					ws.syms = append(ws.syms[:i+1], ws.syms[i+2:]...)
				} else {
					i++
				}
			}
		}
	}
	return b, nil
}

func lessPair(a, b symbolPair) bool {
	if a.left != b.left {
		return a.left < b.left
	}
	return a.right < b.right
}

// segmentWords splits text into words, attaching each run of whitespace
// to the word that follows it so decoding reproduces the original text.
func segmentWords(text string) []string {
	var words []string
	start := 0
	inSpace := true
	for i := 0; i < len(text); i++ {
		isSpace := text[i] == ' ' || text[i] == '\n' || text[i] == '\t' || text[i] == '\r'
		if !inSpace && isSpace {
			words = append(words, text[start:i])
			start = i
		}
		inSpace = isSpace
	}
	if start < len(text) {
		words = append(words, text[start:])
	}
	return words
}

// Encode tokenizes text into token ids.
func (b *BPE) Encode(text string) []uint32 {
	var out []uint32
	for _, w := range segmentWords(text) {
		out = b.encodeWord(out, w)
	}
	return out
}

// encodeWord applies merges by priority to one word and appends the ids.
func (b *BPE) encodeWord(out []uint32, w string) []uint32 {
	syms := make([]string, 0, len(w))
	for i := 0; i < len(w); i++ {
		syms = append(syms, w[i:i+1])
	}
	for len(syms) > 1 {
		bestRank := int(^uint(0) >> 1)
		bestIdx := -1
		for i := 0; i+1 < len(syms); i++ {
			if r, ok := b.rank[symbolPair{syms[i], syms[i+1]}]; ok && r < bestRank {
				bestRank, bestIdx = r, i
			}
		}
		if bestIdx < 0 {
			break
		}
		syms[bestIdx] += syms[bestIdx+1]
		syms = append(syms[:bestIdx+1], syms[bestIdx+2:]...)
	}
	for _, s := range syms {
		out = append(out, b.vocab[s])
	}
	return out
}

// Decode reconstructs the text of a token id sequence. Unknown ids
// decode to the replacement character.
func (b *BPE) Decode(tokens []uint32) string {
	var sb strings.Builder
	for _, id := range tokens {
		if int(id) < len(b.symbols) {
			sb.WriteString(b.symbols[id])
		} else {
			sb.WriteRune('�')
		}
	}
	return sb.String()
}

// bpeFile is the serialization envelope.
type bpeFile struct {
	Version int         `json:"version"`
	Merges  []mergeRule `json:"merges"`
}

// Save serializes the model. Only the merge list is stored; the
// vocabulary is reconstructed on Load.
func (b *BPE) Save(w io.Writer) error {
	return json.NewEncoder(w).Encode(bpeFile{Version: 1, Merges: b.merges})
}

// LoadBPE deserializes a model written by Save.
func LoadBPE(r io.Reader) (*BPE, error) {
	var f bpeFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("token: load BPE: %w", err)
	}
	if f.Version != 1 {
		return nil, fmt.Errorf("token: unsupported BPE version %d", f.Version)
	}
	b := &BPE{vocab: make(map[string]uint32), rank: make(map[symbolPair]int)}
	for i := 0; i < 256; i++ {
		s := string([]byte{byte(i)})
		b.vocab[s] = uint32(i)
		b.symbols = append(b.symbols, s)
	}
	for _, m := range f.Merges {
		if _, ok := b.vocab[m.Left]; !ok {
			return nil, errors.New("token: merge references unknown left symbol")
		}
		if _, ok := b.vocab[m.Right]; !ok {
			return nil, errors.New("token: merge references unknown right symbol")
		}
		merged := m.Left + m.Right
		b.rank[symbolPair{m.Left, m.Right}] = len(b.merges)
		b.merges = append(b.merges, m)
		b.vocab[merged] = uint32(len(b.symbols))
		b.symbols = append(b.symbols, merged)
	}
	return b, nil
}
