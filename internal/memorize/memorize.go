// Package memorize implements the paper's §5 evaluation pipeline: sample
// texts from a language model without prompts, slide a fixed-width
// window over each generated text to form query sequences, search every
// query for near-duplicates in the training corpus, and report the
// fraction of queries that have at least one near-duplicate (the
// memorization ratio).
package memorize

import (
	"fmt"
	"math/rand"
	"time"

	"ndss/internal/lm"
	"ndss/internal/search"
)

// GenConfig controls unprompted text generation.
type GenConfig struct {
	// NumTexts is how many texts to sample.
	NumTexts int
	// TextLength is the token length of each sampled text (the paper
	// samples >= 512 tokens).
	TextLength int
	// QueryLength is x, the sliding-window width: each generated text
	// yields floor(TextLength/x) query sequences T[i*x, (i+1)*x-1].
	QueryLength int
	// Sampler is the decoding strategy (the paper uses top-50).
	Sampler lm.Sampler
	// Seed drives sampling.
	Seed int64
}

// GenerateQueries samples texts from the model and slices them into
// fixed-width query sequences. Generated texts shorter than QueryLength
// (a dead-ended model) yield no queries.
func GenerateQueries(model *lm.Model, cfg GenConfig) ([][]uint32, error) {
	if cfg.NumTexts <= 0 || cfg.TextLength <= 0 {
		return nil, fmt.Errorf("memorize: NumTexts and TextLength must be positive")
	}
	if cfg.QueryLength <= 0 || cfg.QueryLength > cfg.TextLength {
		return nil, fmt.Errorf("memorize: QueryLength %d out of range (0, %d]",
			cfg.QueryLength, cfg.TextLength)
	}
	if cfg.Sampler == nil {
		return nil, fmt.Errorf("memorize: Sampler is required")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var queries [][]uint32
	for i := 0; i < cfg.NumTexts; i++ {
		text := model.Generate(nil, cfg.TextLength, cfg.Sampler, rng)
		for j := 0; j+cfg.QueryLength <= len(text); j += cfg.QueryLength {
			queries = append(queries, text[j:j+cfg.QueryLength])
		}
	}
	return queries, nil
}

// Example records one memorized query and where its near-duplicate was
// found, backing Table 1.
type Example struct {
	Query []uint32
	Match search.Match
}

// Result summarizes one memorization evaluation.
type Result struct {
	// Queries is the number of query sequences evaluated.
	Queries int
	// Memorized is the number of queries with at least one
	// near-duplicate in the corpus.
	Memorized int
	// Ratio is Memorized / Queries.
	Ratio float64
	// TotalMatches counts all reported near-duplicate spans.
	TotalMatches int
	// Examples holds up to MaxExamples memorized queries with one match
	// each.
	Examples []Example
	// Elapsed is the wall-clock evaluation time.
	Elapsed time.Duration
}

// EvalConfig controls the search side of the evaluation.
type EvalConfig struct {
	// Options configures each near-duplicate search; Theta is required.
	Options search.Options
	// MaxExamples bounds Result.Examples (0 = none).
	MaxExamples int
}

// Evaluate runs every query through the searcher and aggregates the
// memorization ratio.
func Evaluate(s *search.Searcher, queries [][]uint32, cfg EvalConfig) (*Result, error) {
	start := time.Now()
	res := &Result{Queries: len(queries)}
	for _, q := range queries {
		matches, _, err := s.Search(q, cfg.Options)
		if err != nil {
			return nil, fmt.Errorf("memorize: query failed: %w", err)
		}
		if len(matches) == 0 {
			continue
		}
		res.Memorized++
		res.TotalMatches += len(matches)
		if len(res.Examples) < cfg.MaxExamples {
			res.Examples = append(res.Examples, Example{Query: q, Match: matches[0]})
		}
	}
	if res.Queries > 0 {
		res.Ratio = float64(res.Memorized) / float64(res.Queries)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
