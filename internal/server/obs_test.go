package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"ndss/internal/corpus"
	"ndss/internal/index"
	"ndss/internal/search"
)

// latencyCells flattens the (endpoint, outcome) histogram matrix into
// the nonzero cells plus the total number of observations.
func latencyCells(m *metrics) (cells map[string]int64, total int64) {
	cells = map[string]int64{}
	for e := endpoint(0); e < numEndpoints; e++ {
		for o := outcome(0); o < numOutcomes; o++ {
			_, c, _ := m.latency[e][o].load()
			if c > 0 {
				cells[e.String()+"/"+o.String()] = c
			}
			total += c
		}
	}
	return cells, total
}

func checkCells(t *testing.T, srv *Server, want map[string]int64) {
	t.Helper()
	cells, total := latencyCells(&srv.met)
	var wantTotal int64
	for k, v := range want {
		wantTotal += v
		if cells[k] != v {
			t.Errorf("latency cell %s = %d, want %d (all: %v)", k, cells[k], v, cells)
		}
	}
	if total != wantTotal {
		t.Errorf("total latency observations = %d, want %d (cells: %v)", total, wantTotal, cells)
	}
	if admitted := srv.met.requests.Load(); total != admitted {
		t.Errorf("latency observations %d != admitted requests %d: some admitted request was double- or un-observed", total, admitted)
	}
}

// failReader makes every posting-list read fail, driving the
// post-admission error path.
type failReader struct {
	search.IndexReader
}

func (r failReader) ReadListInto(dst []index.Posting, fn int, h uint64, sink *index.IOStats) ([]index.Posting, error) {
	return nil, errors.New("simulated read failure")
}

func wrappedFixture(t *testing.T, wrap func(search.IndexReader) search.IndexReader) (Backend, []uint32) {
	t.Helper()
	c := corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts: 30, MinLength: 40, MaxLength: 90, VocabSize: 30,
		ZipfS: 1.3, Seed: 9, DupRate: 0.5, DupSnippetLen: 20, DupMutateProb: 0.05,
	})
	dir := t.TempDir()
	if _, err := index.Build(c, dir, index.BuildOptions{K: 8, Seed: 5, T: 5}); err != nil {
		t.Fatal(err)
	}
	ix, err := index.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	w := wrap(ix)
	return searcherBackend{Searcher: search.New(w, c), ix: w}, c.Text(0)[:12]
}

// TestLatencyAccounting is the satellite regression test: every
// admitted request records exactly one latency observation tagged with
// its endpoint and outcome; requests turned away before admission
// (malformed, wrong method, saturated) record none.
func TestLatencyAccounting(t *testing.T) {
	t.Run("ok_cached_topk_explain", func(t *testing.T) {
		_, engine, q := testFixture(t)
		srv := New(engine, Config{})
		ts := httptest.NewServer(srv)
		defer ts.Close()

		post := func(path string, req searchRequest, wantStatus int) {
			t.Helper()
			resp, body := postJSON(t, ts.Client(), ts.URL+path, req)
			if resp.StatusCode != wantStatus {
				t.Fatalf("%s: status %d, want %d (%s)", path, resp.StatusCode, wantStatus, body)
			}
		}
		post("/search", searchRequest{Tokens: q, Theta: 0.5}, http.StatusOK)
		post("/search", searchRequest{Tokens: q, Theta: 0.5}, http.StatusOK) // cache hit
		post("/search/topk", searchRequest{Tokens: q, N: 3}, http.StatusOK)
		post("/explain", searchRequest{Tokens: q, Theta: 0.5}, http.StatusOK)

		// None of these are admitted, so none may observe latency.
		post("/search", searchRequest{Theta: 0.5}, http.StatusBadRequest)            // no tokens
		post("/search", searchRequest{Tokens: q, Theta: 1.5}, http.StatusBadRequest) // bad theta
		post("/search/topk", searchRequest{Tokens: q}, http.StatusBadRequest)        // missing n
		if resp, err := ts.Client().Get(ts.URL + "/search"); err != nil {
			t.Fatal(err)
		} else {
			resp.Body.Close()
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Fatalf("GET /search: %d", resp.StatusCode)
			}
		}

		checkCells(t, srv, map[string]int64{
			"search/ok": 1, "search/cached": 1, "topk/ok": 1, "explain/ok": 1,
		})
	})

	t.Run("timeout", func(t *testing.T) {
		backend, q := slowFixture(t, 40*time.Millisecond)
		srv := New(backend, Config{CacheEntries: -1})
		ts := httptest.NewServer(srv)
		defer ts.Close()

		resp, _ := postJSON(t, ts.Client(), ts.URL+"/search",
			searchRequest{Tokens: q, Theta: 0.5, TimeoutMS: 30})
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("status %d, want 504", resp.StatusCode)
		}
		checkCells(t, srv, map[string]int64{"search/timeout": 1})
	})

	t.Run("backend_error", func(t *testing.T) {
		backend, q := wrappedFixture(t, func(ix search.IndexReader) search.IndexReader {
			return failReader{IndexReader: ix}
		})
		srv := New(backend, Config{CacheEntries: -1})
		ts := httptest.NewServer(srv)
		defer ts.Close()

		resp, _ := postJSON(t, ts.Client(), ts.URL+"/search", searchRequest{Tokens: q, Theta: 0.5})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
		checkCells(t, srv, map[string]int64{"search/bad_request": 1})
	})

	t.Run("saturated_not_observed", func(t *testing.T) {
		br, backend, q := blockingFixture(t)
		srv := New(backend, Config{MaxInFlight: 1, CacheEntries: -1})
		ts := httptest.NewServer(srv)
		defer ts.Close()

		done := make(chan struct{})
		go func() {
			defer close(done)
			resp, _ := postJSON(t, ts.Client(), ts.URL+"/search", searchRequest{Tokens: q, Theta: 0.5})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("blocked search finished with %d", resp.StatusCode)
			}
		}()
		<-br.entered
		resp, _ := postJSON(t, ts.Client(), ts.URL+"/search", searchRequest{Tokens: q, Theta: 0.9})
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("saturated status %d, want 429", resp.StatusCode)
		}
		close(br.gate)
		<-done

		checkCells(t, srv, map[string]int64{"search/ok": 1})
		if got := srv.met.rejected.Load(); got != 1 {
			t.Errorf("rejected = %d, want 1", got)
		}
	})
}

// slowlogResponse mirrors the /debug/slowlog body.
type slowlogResponse struct {
	Slowest []slowlogEntry `json:"slowest"`
	Recent  []slowlogEntry `json:"recent"`
}

func getSlowlog(t *testing.T, ts *httptest.Server) slowlogResponse {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("slowlog status %d", resp.StatusCode)
	}
	var sl slowlogResponse
	if err := json.NewDecoder(resp.Body).Decode(&sl); err != nil {
		t.Fatal(err)
	}
	return sl
}

// TestSlowlogFlightRecorder is the acceptance check: after a test
// workload, /debug/slowlog returns stage-annotated traces.
func TestSlowlogFlightRecorder(t *testing.T) {
	_, engine, q := testFixture(t)
	srv := New(engine, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, theta := range []float64{0.4, 0.5, 0.6} {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/search",
			searchRequest{Tokens: q, Theta: theta, PrefixFilter: true, Verify: true})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("search theta=%v: %d (%s)", theta, resp.StatusCode, body)
		}
	}
	// A cache hit does not execute the pipeline and must not add a trace.
	resp, _ := postJSON(t, ts.Client(), ts.URL+"/search",
		searchRequest{Tokens: q, Theta: 0.5, PrefixFilter: true, Verify: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatal("repeat search failed")
	}

	sl := getSlowlog(t, ts)
	if len(sl.Slowest) != 3 || len(sl.Recent) != 3 {
		t.Fatalf("slowlog sizes: slowest=%d recent=%d, want 3 and 3", len(sl.Slowest), len(sl.Recent))
	}
	if !sort.SliceIsSorted(sl.Slowest, func(i, j int) bool {
		return sl.Slowest[i].DurationNS > sl.Slowest[j].DurationNS
	}) {
		t.Error("slowest view not sorted by descending duration")
	}
	wantStages := []string{"sketch", "plan", "gather", "count", "verify"}
	for i, e := range sl.Slowest {
		if e.RequestID == "" || e.Endpoint != "search" || e.DurationNS <= 0 || e.NumTokens != len(q) {
			t.Errorf("entry %d malformed: %+v", i, e)
		}
		if e.Stats == nil {
			t.Fatalf("entry %d has no stats", i)
		}
		if e.Stats.Stages.SketchNS <= 0 || e.Stats.Stages.GatherNS <= 0 {
			t.Errorf("entry %d stage times not populated: %+v", i, e.Stats.Stages)
		}
		names := map[string]bool{}
		for _, sp := range e.Spans {
			names[sp.Name] = true
		}
		for _, w := range wantStages {
			if !names[w] {
				t.Errorf("entry %d trace missing stage span %q (have %v)", i, w, names)
			}
		}
	}
}

func TestSlowlogDisabled(t *testing.T) {
	_, engine, _ := testFixture(t)
	srv := New(engine, Config{SlowlogEntries: -1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("disabled slowlog status %d, want 501", resp.StatusCode)
	}
}

// TestSlowlogViews pins the two-view semantics: min-replacement for the
// slowest view, ring overwrite for the recent view.
func TestSlowlogViews(t *testing.T) {
	l := newSlowlog(2)
	for _, d := range []int64{10, 5, 20, 1, 30} {
		l.record(slowlogEntry{RequestID: "r", DurationNS: d})
	}
	slowest, recent := l.snapshot()
	if len(slowest) != 2 || slowest[0].DurationNS != 30 || slowest[1].DurationNS != 20 {
		t.Errorf("slowest = %+v, want [30 20]", slowest)
	}
	if len(recent) != 2 || recent[0].DurationNS != 30 || recent[1].DurationNS != 1 {
		t.Errorf("recent = %+v, want [30 1] newest-first", recent)
	}
	if l.wouldEnterSlowest(15 * time.Nanosecond) {
		t.Error("15ns should not beat floor 20")
	}
	if !l.wouldEnterSlowest(25 * time.Nanosecond) {
		t.Error("25ns should beat floor 20")
	}
}

// TestRequestID covers generation, echo, client pass-through,
// sanitization, and attachment to error bodies.
func TestRequestID(t *testing.T) {
	_, engine, q := testFixture(t)
	srv := New(engine, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, _ := postJSON(t, ts.Client(), ts.URL+"/search", searchRequest{Tokens: q, Theta: 0.5})
	if id := resp.Header.Get("X-Request-ID"); id == "" {
		t.Error("no generated X-Request-ID on response")
	}

	do := func(clientID string, req searchRequest) (*http.Response, errorResponse) {
		t.Helper()
		data, _ := json.Marshal(req)
		hr, _ := http.NewRequest(http.MethodPost, ts.URL+"/search", bytes.NewReader(data))
		if clientID != "" {
			hr.Header.Set("X-Request-ID", clientID)
		}
		resp, err := ts.Client().Do(hr)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var er errorResponse
		json.NewDecoder(resp.Body).Decode(&er)
		return resp, er
	}

	// A sane client id is honored and attached to the error body.
	resp, er := do("client-id-42", searchRequest{Theta: 0.5})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Request-ID") != "client-id-42" || er.RequestID != "client-id-42" {
		t.Errorf("client id not propagated: header %q, body %q",
			resp.Header.Get("X-Request-ID"), er.RequestID)
	}

	// Unsanitary client ids are replaced with generated ones. The HTTP
	// client refuses to even send control characters, so exercise the
	// sanitizer directly.
	for _, bad := range []string{"bad id", "bad\x01id", strings.Repeat("x", maxRequestIDLen+1)} {
		hr, _ := http.NewRequest(http.MethodPost, ts.URL+"/search", nil)
		hr.Header = http.Header{"X-Request-Id": []string{bad}}
		if got := requestIDFor(hr); got == bad || got == "" {
			t.Errorf("client id %q accepted unsanitized (got %q)", bad, got)
		}
	}
	hr, _ := http.NewRequest(http.MethodPost, ts.URL+"/search", nil)
	hr.Header.Set("X-Request-ID", "good-id")
	if got := requestIDFor(hr); got != "good-id" {
		t.Errorf("sane client id replaced: %q", got)
	}
}

// syncBuffer makes a bytes.Buffer safe to share between the server's
// handler goroutines and the test.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestSlowQueryLogging: past the threshold, the structured log carries
// the request id and the full stage breakdown.
func TestSlowQueryLogging(t *testing.T) {
	_, engine, q := testFixture(t)
	var buf syncBuffer
	srv := New(engine, Config{
		Logger:             slog.New(slog.NewTextHandler(&buf, nil)),
		SlowQueryThreshold: time.Nanosecond, // everything is slow
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, _ := postJSON(t, ts.Client(), ts.URL+"/search", searchRequest{Tokens: q, Theta: 0.5})
	id := resp.Header.Get("X-Request-ID")

	out := buf.String()
	for _, want := range []string{"slow query", "request_id=" + id, "sketch=", "gather=", "verify=", "msg=request", "path=/search"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("log output missing %q:\n%s", want, out)
		}
	}
}

// TestStatsWireFormatGolden pins the JSON wire shape of query stats —
// including the new per-stage breakdown — through /search, and the
// /explain response shape, so the formats cannot drift silently.
func TestStatsWireFormatGolden(t *testing.T) {
	_, engine, q := testFixture(t)
	srv := New(engine, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	keysOf := func(m map[string]any) []string {
		out := make([]string, 0, len(m))
		for k := range m {
			out = append(out, k)
		}
		sort.Strings(out)
		return out
	}
	equal := func(a, b []string) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	resp, body := postJSON(t, ts.Client(), ts.URL+"/search",
		searchRequest{Tokens: q, Theta: 0.5, PrefixFilter: true, Verify: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search: %d (%s)", resp.StatusCode, body)
	}
	var sr map[string]any
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	stats, ok := sr["stats"].(map[string]any)
	if !ok {
		t.Fatalf("no stats object in %s", body)
	}
	wantStats := []string{
		"beta", "candidates", "cpu_time_ns", "io_bytes", "io_time_ns", "k",
		"long_lists", "matches", "probed", "short_lists", "stages", "total_ns",
	}
	if got := keysOf(stats); !equal(got, wantStats) {
		t.Errorf("stats keys = %v, want %v", got, wantStats)
	}
	stages, ok := stats["stages"].(map[string]any)
	if !ok {
		t.Fatalf("no stages object in stats: %s", body)
	}
	wantStages := []string{"count_ns", "gather_ns", "merge_ns", "plan_ns", "sketch_ns", "verify_ns"}
	if got := keysOf(stages); !equal(got, wantStages) {
		t.Errorf("stages keys = %v, want %v", got, wantStages)
	}
	var stageSum float64
	for _, k := range wantStages {
		v, ok := stages[k].(float64)
		if !ok {
			t.Errorf("stage %s is not a number: %v", k, stages[k])
		}
		stageSum += v
	}
	if total := stats["total_ns"].(float64); stageSum > total {
		t.Errorf("stage sum %v exceeds total_ns %v", stageSum, total)
	}
	if stageSum <= 0 {
		t.Error("stage times all zero after an executed query")
	}

	resp, body = postJSON(t, ts.Client(), ts.URL+"/explain", searchRequest{Tokens: q, Theta: 0.5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain: %d (%s)", resp.StatusCode, body)
	}
	var er map[string]any
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	wantExplain := []string{"alpha", "beta", "cutoff", "long", "num_long"}
	if got := keysOf(er); !equal(got, wantExplain) {
		t.Errorf("explain keys = %v, want %v", got, wantExplain)
	}
}
