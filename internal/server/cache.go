package server

import (
	"container/list"
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"

	"ndss/internal/search"
)

// resultCache is a mutex-guarded LRU of fully computed query results,
// keyed by (endpoint, sketch, options). Keying on the min-hash sketch
// rather than the raw tokens means distinct queries that sketch
// identically — and therefore produce identical collision sets — share
// an entry. When Verify is on the exact Jaccard values do depend on the
// raw tokens, so a token digest is folded into the key.
type resultCache struct {
	mu  sync.Mutex
	max int
	ll  *list.List               // guarded by mu; front = most recent
	m   map[string]*list.Element // guarded by mu
}

// cacheEntry is one cached result. Matches and Stats are shared between
// the cache and every response served from it and must be treated as
// immutable.
type cacheEntry struct {
	key     string
	matches []search.Match
	stats   search.Stats
}

func newResultCache(max int) *resultCache {
	if max <= 0 {
		return nil
	}
	return &resultCache{max: max, ll: list.New(), m: make(map[string]*list.Element)}
}

func (c *resultCache) get(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

func (c *resultCache) put(e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[e.key]; ok {
		el.Value = e
		c.ll.MoveToFront(el)
		return
	}
	c.m[e.key] = c.ll.PushFront(e)
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
	}
}

// flush empties the cache. Called on backend reload: cached results
// belong to the previous index and must not survive the swap.
func (c *resultCache) flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.m = make(map[string]*list.Element)
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// cacheKey builds the (endpoint, sketch, options) key. kind tags the
// endpoint ('S' search, 'K' top-k) so the two result shapes never
// collide. topN and floor are zero for plain searches.
func cacheKey(kind byte, sketch []uint64, query []uint32, o search.Options, topN int, floor float64) string {
	b := make([]byte, 0, 1+8*(len(sketch)+7))
	b = append(b, kind)
	var tmp [8]byte
	app64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		b = append(b, tmp[:]...)
	}
	// Length-prefix the variable-length sketch so its values can never
	// alias the fixed option fields that follow: without the prefix, a
	// (K)-sketch key and a (K+1)-sketch key whose extra word equals the
	// Theta bits (and whose remaining fields shift accordingly) would
	// serialize identically. Latent while one backend pins one K, but a
	// shard coordinator and reloads make K a runtime property.
	app64(uint64(len(sketch)))
	for _, h := range sketch {
		app64(h)
	}
	app64(math.Float64bits(o.Theta))
	app64(uint64(o.MinLength))
	app64(uint64(o.LongListThreshold))
	var flags uint64
	if o.PrefixFilter {
		flags |= 1
	}
	if o.CostBasedPrefix {
		flags |= 2
	}
	if o.Verify {
		flags |= 4
	}
	app64(flags)
	app64(uint64(topN))
	app64(math.Float64bits(floor))
	if o.Verify {
		// Exact Jaccard depends on the query's distinct token set, not
		// just its sketch.
		d := fnv.New64a()
		for _, tok := range query {
			binary.LittleEndian.PutUint32(tmp[:4], tok)
			d.Write(tmp[:4])
		}
		app64(d.Sum64())
	}
	return string(b)
}
