package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ndss/internal/core"
	"ndss/internal/corpus"
	"ndss/internal/index"
)

// Live-ingest tests: POST /ingest must append texts as a new segment
// and hot-swap so they are searchable on return, POST /admin/compact
// must fold the segment set back to one, and neither may fail a single
// concurrent query.

// ingestFixture builds an index and a server wired for live ingest:
// Ingester appends a segment, Compactor merges the set, Reloader
// reopens the directory.
func ingestFixture(t *testing.T, compactAfter int) (*Server, string) {
	t.Helper()
	c := corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts: 40, MinLength: 40, MaxLength: 120, VocabSize: 40,
		ZipfS: 1.3, Seed: 7, DupRate: 0.5, DupSnippetLen: 20, DupMutateProb: 0.05,
	})
	dir := t.TempDir() + "/ix"
	buildCorpusAt(t, c, dir)
	backend, err := core.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(backend, Config{
		MaxInFlight:  128,
		Reloader:     func() (Backend, error) { return core.Open(dir, nil) },
		Ingester:     func(texts [][]uint32) (string, error) { return index.Append(dir, corpus.New(texts)) },
		Compactor:    func() error { return index.Compact(dir) },
		CompactAfter: compactAfter,
	})
	return srv, dir
}

// snippet returns a deterministic query/text of tokens disjoint from
// the fixture corpus vocabulary, so it matches only once ingested.
func snippet(seed, n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = uint32(1000 + seed*100 + i)
	}
	return out
}

func searchMatches(t *testing.T, ts *httptest.Server, q []uint32, theta float64) []matchJSON {
	t.Helper()
	resp, body := postJSON(t, ts.Client(), ts.URL+"/search", searchRequest{Tokens: q, Theta: theta})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search: %d (%s)", resp.StatusCode, body)
	}
	var sr searchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	return sr.Matches
}

func metricsSnapshot(t *testing.T, ts *httptest.Server) (ix indexSnapshot, segs map[string]int64) {
	t.Helper()
	resp := getMetricsJSON(t, ts.Client(), ts.URL)
	defer resp.Body.Close()
	var met struct {
		Index    indexSnapshot    `json:"index"`
		Segments map[string]int64 `json:"segments"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&met); err != nil {
		t.Fatal(err)
	}
	return met.Index, met.Segments
}

func TestIngestMakesTextsSearchable(t *testing.T) {
	srv, _ := ingestFixture(t, 0)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	q := snippet(1, 30)
	if ms := searchMatches(t, ts, q, 0.9); len(ms) != 0 {
		t.Fatalf("snippet matched before ingest: %+v", ms)
	}
	oldID := healthzBuildID(t, ts)

	resp, body := postJSON(t, ts.Client(), ts.URL+"/ingest",
		ingestRequest{Texts: [][]uint32{snippet(1, 30), snippet(2, 40)}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d (%s)", resp.StatusCode, body)
	}
	var ir map[string]any
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir["texts"] != float64(2) || ir["build_id"] == oldID || ir["build_id"] == "" {
		t.Fatalf("ingest response %v (old build %q)", ir, oldID)
	}

	// The ingested snippet is searchable the moment /ingest returns.
	ms := searchMatches(t, ts, q, 0.9)
	if len(ms) != 1 || ms[0].TextID != 40 {
		t.Fatalf("ingested snippet matches: %+v, want text 40", ms)
	}

	ix, segs := metricsSnapshot(t, ts)
	if ix.Segments != 2 || segs["ingests"] != 1 || segs["compactions"] != 0 {
		t.Fatalf("after ingest: index %+v, segments %v", ix, segs)
	}
	if ix.NumTexts != 42 {
		t.Fatalf("NumTexts after ingest = %d, want 42", ix.NumTexts)
	}

	// Compaction folds the set back to one segment; results unchanged.
	resp, body = postJSON(t, ts.Client(), ts.URL+"/admin/compact", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compact: %d (%s)", resp.StatusCode, body)
	}
	var cr map[string]any
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr["segments"] != float64(1) {
		t.Fatalf("compact response %v", cr)
	}
	if ms := searchMatches(t, ts, q, 0.9); len(ms) != 1 || ms[0].TextID != 40 {
		t.Fatalf("snippet lost by compaction: %+v", ms)
	}
	ix, segs = metricsSnapshot(t, ts)
	if ix.Segments != 1 || segs["compactions"] != 1 {
		t.Fatalf("after compact: index %+v, segments %v", ix, segs)
	}

	// The Prometheus exposition carries the segment metrics.
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{"ndss_segments_total 1", "ndss_ingests_total 1", "ndss_compactions_total 1"} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
}

func TestIngestValidation(t *testing.T) {
	srv, _ := ingestFixture(t, 0)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /ingest: %d, want 405", resp.StatusCode)
	}
	cases := []any{
		ingestRequest{},
		ingestRequest{Texts: [][]uint32{{1, 2, 3}, {}}},
		map[string]any{"texts": [][]uint32{{1, 2, 3}}, "bogus": 1},
	}
	for i, body := range cases {
		resp, b := postJSON(t, ts.Client(), ts.URL+"/ingest", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("case %d: %d (%s), want 400", i, resp.StatusCode, b)
		}
	}
}

func TestIngestWithoutIngester(t *testing.T) {
	b := newStubBackend(t, "only", 1, false)
	srv := New(b, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, _ := postJSON(t, ts.Client(), ts.URL+"/ingest", ingestRequest{Texts: [][]uint32{{1, 2, 3}}})
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("ingest without ingester: %d, want 501", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.Client(), ts.URL+"/admin/compact", struct{}{})
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("compact without compactor: %d, want 501", resp.StatusCode)
	}
}

// TestIngestZeroFailedRequests hammers /search from many goroutines
// while texts are ingested and the segment set is compacted repeatedly:
// every request must succeed, and each ingested snippet must be
// searchable the moment its POST /ingest returns — the acceptance bar
// for live ingest.
func TestIngestZeroFailedRequests(t *testing.T) {
	srv, _ := ingestFixture(t, 0)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var (
		stop     atomic.Bool
		failures atomic.Int64
		requests atomic.Int64
		wg       sync.WaitGroup
	)
	hammerQ := snippet(99, 30)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				resp, body := postJSON(t, ts.Client(), ts.URL+"/search",
					searchRequest{Tokens: hammerQ, Theta: 0.5})
				requests.Add(1)
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					t.Errorf("request failed during ingest/compact: %d (%s)", resp.StatusCode, body)
					return
				}
			}
		}()
	}

	// Interleave ingests and compactions under the traffic.
	for i := 1; i <= 5; i++ {
		snip := snippet(i, 30)
		resp, body := postJSON(t, ts.Client(), ts.URL+"/ingest",
			ingestRequest{Texts: [][]uint32{snip}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %d: %d (%s)", i, resp.StatusCode, body)
		}
		if ms := searchMatches(t, ts, snip, 0.9); len(ms) != 1 {
			t.Fatalf("snippet %d not searchable after its ingest returned: %+v", i, ms)
		}
		if i%2 == 0 {
			resp, body = postJSON(t, ts.Client(), ts.URL+"/admin/compact", struct{}{})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("compact after ingest %d: %d (%s)", i, resp.StatusCode, body)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d of %d requests failed across ingest/compact cycles", failures.Load(), requests.Load())
	}
	if requests.Load() == 0 {
		t.Fatal("no requests observed")
	}

	// Everything ingested survives the cycles.
	for i := 1; i <= 5; i++ {
		if ms := searchMatches(t, ts, snippet(i, 30), 0.9); len(ms) != 1 {
			t.Fatalf("snippet %d lost: %+v", i, ms)
		}
	}
}

// TestAutoCompaction: with CompactAfter set, ingests that grow the
// segment set past the threshold trigger a background compaction that
// folds it back to one segment without operator action.
func TestAutoCompaction(t *testing.T) {
	srv, _ := ingestFixture(t, 2)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for i := 1; i <= 3; i++ {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/ingest",
			ingestRequest{Texts: [][]uint32{snippet(i, 30)}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %d: %d (%s)", i, resp.StatusCode, body)
		}
	}
	// The set grew past CompactAfter=2 at some point, so a background
	// compaction must land and bring it back within the threshold (how
	// many ingests land before it runs is timing-dependent).
	deadline := time.Now().Add(10 * time.Second)
	for {
		ix, segs := metricsSnapshot(t, ts)
		if ix.Segments <= 2 && segs["compactions"] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("auto-compaction never landed: index %+v, segments %v", ix, segs)
		}
		time.Sleep(20 * time.Millisecond)
	}
	srv.compactWG.Wait()
	for i := 1; i <= 3; i++ {
		if ms := searchMatches(t, ts, snippet(i, 30), 0.9); len(ms) != 1 {
			t.Fatalf("snippet %d lost by auto-compaction: %+v", i, ms)
		}
	}
}
