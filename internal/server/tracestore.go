package server

import (
	"sync"
	"time"

	"ndss/internal/obs"
)

// defaultTraceStoreEntries sizes each ring of the trace store when
// Config.TraceStoreEntries is zero.
const defaultTraceStoreEntries = 128

// traceEntry is one retained query trace: the assembled cross-process
// span tree plus the identifiers and stats needed to read it cold.
type traceEntry struct {
	RequestID  string           `json:"request_id"`
	TraceID    string           `json:"trace_id"`
	Endpoint   string           `json:"endpoint"`
	Start      time.Time        `json:"start"`
	DurationNS int64            `json:"duration_ns"`
	Sampled    bool             `json:"sampled"`
	Reasons    []string         `json:"reasons"`
	Err        string           `json:"err,omitempty"`
	Spans      []obs.FlightSpan `json:"spans"`
	Stats      *statsJSON       `json:"stats,omitempty"`
}

// traceSummary is the listing row GET /debug/trace/ returns.
type traceSummary struct {
	RequestID  string   `json:"request_id"`
	Endpoint   string   `json:"endpoint"`
	DurationNS int64    `json:"duration_ns"`
	Reasons    []string `json:"reasons"`
}

// traceRef locates an entry: which ring, which slot.
type traceRef struct {
	sampledRing bool
	idx         int
}

// traceStore is the bounded store behind /debug/trace/{request_id}.
// Two rings, each of capacity entries, FIFO within the ring:
//
//   - interesting: tail-retained traces (slow, errored, partial,
//     retried, hedged) — the ones an operator actually goes looking
//     for after the fact.
//   - sampled: head-sampled traces with no tail reason.
//
// The split is the tail-based guarantee: a flood of head-sampled
// traffic can never evict the trace of the one query that timed out.
// All methods are nil-receiver safe (a nil store means disabled).
type traceStore struct {
	mu          sync.Mutex
	capacity    int
	byID        map[string]traceRef // guarded by mu
	interesting []traceEntry        // guarded by mu
	intNext     int                 // guarded by mu
	sampled     []traceEntry        // guarded by mu
	sampNext    int                 // guarded by mu
}

// newTraceStore returns a store with capacity entries per ring; 0
// selects the default, negative disables the store entirely (nil).
func newTraceStore(capacity int) *traceStore {
	if capacity < 0 {
		return nil
	}
	if capacity == 0 {
		capacity = defaultTraceStoreEntries
	}
	return &traceStore{capacity: capacity, byID: make(map[string]traceRef)}
}

// record stores e, evicting the oldest entry of its ring once the ring
// is full, and reports whether an eviction happened.
func (t *traceStore) record(e traceEntry) (evicted bool) {
	if t == nil {
		return false
	}
	sampledOnly := len(e.Reasons) == 1 && e.Reasons[0] == "sampled"
	t.mu.Lock()
	defer t.mu.Unlock()
	ring, next := &t.interesting, &t.intNext
	if sampledOnly {
		ring, next = &t.sampled, &t.sampNext
	}
	if len(*ring) < t.capacity {
		t.byID[e.RequestID] = traceRef{sampledRing: sampledOnly, idx: len(*ring)}
		*ring = append(*ring, e)
		return false
	}
	idx := *next
	*next = (idx + 1) % t.capacity
	// Drop the evicted entry's lookup, unless a duplicate request id
	// already repointed it at a different slot.
	if ref, ok := t.byID[(*ring)[idx].RequestID]; ok && ref.sampledRing == sampledOnly && ref.idx == idx {
		delete(t.byID, (*ring)[idx].RequestID)
	}
	(*ring)[idx] = e
	t.byID[e.RequestID] = traceRef{sampledRing: sampledOnly, idx: idx}
	return true
}

// get returns the retained trace for a request id.
func (t *traceStore) get(id string) (traceEntry, bool) {
	if t == nil {
		return traceEntry{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ref, ok := t.byID[id]
	if !ok {
		return traceEntry{}, false
	}
	if ref.sampledRing {
		return t.sampled[ref.idx], true
	}
	return t.interesting[ref.idx], true
}

// len reports how many traces are currently retained across both rings.
func (t *traceStore) len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.interesting) + len(t.sampled)
}

// index lists the retained traces (tail-retained first) for the bare
// GET /debug/trace/ listing.
func (t *traceStore) index() []traceSummary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]traceSummary, 0, len(t.interesting)+len(t.sampled))
	for _, ring := range [2][]traceEntry{t.interesting, t.sampled} {
		for i := range ring {
			out = append(out, traceSummary{
				RequestID:  ring[i].RequestID,
				Endpoint:   ring[i].Endpoint,
				DurationNS: ring[i].DurationNS,
				Reasons:    ring[i].Reasons,
			})
		}
	}
	return out
}
