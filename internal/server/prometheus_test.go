package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ndss/internal/search"
)

// promMetricName matches valid exposition metric names.
var promMetricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// promSample is one parsed exposition sample line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

func (s promSample) labelsWithout(key string) string {
	keys := make([]string, 0, len(s.labels))
	for k := range s.labels {
		if k != key {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, s.labels[k])
	}
	return b.String()
}

// parsePromExposition is a strict line-format checker for the
// Prometheus text exposition format 0.0.4. It fails the test on any
// malformed line, sample without a preceding # TYPE, invalid metric
// name, or unparsable value, and verifies histogram invariants:
// cumulative non-decreasing buckets, a trailing +Inf bucket, and
// _count equal to the +Inf bucket.
func parsePromExposition(t *testing.T, body string) []promSample {
	t.Helper()
	types := map[string]string{} // base metric name -> declared type
	var samples []promSample
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 4 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				t.Fatalf("line %d: malformed comment %q", ln+1, line)
			}
			if !promMetricName.MatchString(fields[2]) {
				t.Fatalf("line %d: bad metric name %q", ln+1, fields[2])
			}
			if fields[1] == "TYPE" {
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					t.Fatalf("line %d: bad type %q", ln+1, fields[3])
				}
				types[fields[2]] = fields[3]
			}
			continue
		}
		s := parsePromSample(t, ln+1, line)
		base := s.name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if cut, ok := strings.CutSuffix(s.name, suffix); ok && types[cut] == "histogram" {
				base = cut
				break
			}
		}
		if _, ok := types[base]; !ok {
			t.Fatalf("line %d: sample %q has no preceding # TYPE", ln+1, s.name)
		}
		samples = append(samples, s)
	}

	checkPromHistograms(t, types, samples)
	return samples
}

func parsePromSample(t *testing.T, ln int, line string) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		t.Fatalf("line %d: no value separator in %q", ln, line)
	} else {
		s.name = rest[:i]
		if !promMetricName.MatchString(s.name) {
			t.Fatalf("line %d: bad metric name %q", ln, s.name)
		}
		if rest[i] == '{' {
			rest = rest[i+1:]
			for {
				eq := strings.Index(rest, "=")
				if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
					t.Fatalf("line %d: malformed labels in %q", ln, line)
				}
				key := rest[:eq]
				rest = rest[eq+2:]
				// Scan the quoted value honoring \" escapes.
				var val strings.Builder
				j := 0
				for ; j < len(rest); j++ {
					if rest[j] == '\\' && j+1 < len(rest) {
						j++
						switch rest[j] {
						case 'n':
							val.WriteByte('\n')
						default:
							val.WriteByte(rest[j])
						}
						continue
					}
					if rest[j] == '"' {
						break
					}
					val.WriteByte(rest[j])
				}
				if j == len(rest) {
					t.Fatalf("line %d: unterminated label value in %q", ln, line)
				}
				s.labels[key] = val.String()
				rest = rest[j+1:]
				if strings.HasPrefix(rest, ",") {
					rest = rest[1:]
					continue
				}
				if strings.HasPrefix(rest, "} ") {
					rest = rest[2:]
					break
				}
				t.Fatalf("line %d: malformed label list in %q", ln, line)
			}
		} else {
			rest = rest[i+1:]
		}
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		t.Fatalf("line %d: bad value in %q: %v", ln, line, err)
	}
	s.value = v
	return s
}

// checkPromHistograms verifies bucket monotonicity and _count
// consistency for every histogram series in the exposition.
func checkPromHistograms(t *testing.T, types map[string]string, samples []promSample) {
	t.Helper()
	type series struct {
		buckets []promSample
		count   float64
		hasCnt  bool
	}
	hist := map[string]*series{} // "name|labels-without-le" -> series
	get := func(name string, s promSample) *series {
		key := name + "|" + s.labelsWithout("le")
		if hist[key] == nil {
			hist[key] = &series{}
		}
		return hist[key]
	}
	for _, s := range samples {
		if cut, ok := strings.CutSuffix(s.name, "_bucket"); ok && types[cut] == "histogram" {
			get(cut, s).buckets = append(get(cut, s).buckets, s)
		} else if cut, ok := strings.CutSuffix(s.name, "_count"); ok && types[cut] == "histogram" {
			sr := get(cut, s)
			sr.count, sr.hasCnt = s.value, true
		}
	}
	for key, sr := range hist {
		if len(sr.buckets) == 0 {
			t.Errorf("histogram series %s has no buckets", key)
			continue
		}
		prevLE, prevCum := -1.0, -1.0
		for i, b := range sr.buckets {
			le := b.labels["le"]
			ub := 0.0
			if le == "+Inf" {
				if i != len(sr.buckets)-1 {
					t.Errorf("series %s: +Inf bucket not last", key)
				}
				ub = prevLE + 1
			} else {
				var err error
				ub, err = strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("series %s: bad le %q", key, le)
				}
			}
			if ub <= prevLE {
				t.Errorf("series %s: le bounds not increasing at %q", key, le)
			}
			if b.value < prevCum {
				t.Errorf("series %s: cumulative count decreases at le=%q (%v < %v)", key, le, b.value, prevCum)
			}
			prevLE, prevCum = ub, b.value
		}
		if last := sr.buckets[len(sr.buckets)-1]; last.labels["le"] != "+Inf" {
			t.Errorf("series %s: missing +Inf bucket", key)
		} else if sr.hasCnt && sr.count != last.value {
			t.Errorf("series %s: _count %v != +Inf bucket %v", key, sr.count, last.value)
		}
	}
}

func findSample(samples []promSample, name string, labels map[string]string) (promSample, bool) {
	for _, s := range samples {
		if s.name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if s.labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s, true
		}
	}
	return promSample{}, false
}

// TestMetricsPrometheusExposition runs a small workload and validates
// the whole /metrics exposition with the line-format checker, then
// spot-checks the metrics the workload must have moved — including a
// nonzero per-stage histogram for all six pipeline stages.
func TestMetricsPrometheusExposition(t *testing.T) {
	_, engine, q := testFixture(t)
	srv := New(engine, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Workload: two identical searches (one cached), a verified search,
	// a top-k, and an explain.
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/search",
			searchRequest{Tokens: q, Theta: 0.5, PrefixFilter: true})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("search %d: %d (%s)", i, resp.StatusCode, body)
		}
	}
	resp, body := postJSON(t, ts.Client(), ts.URL+"/search",
		searchRequest{Tokens: q, Theta: 0.5, PrefixFilter: true, Verify: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verified search: %d (%s)", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.Client(), ts.URL+"/search/topk",
		searchRequest{Tokens: q, N: 3, FloorTheta: 0.5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("topk: %d (%s)", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.Client(), ts.URL+"/explain",
		searchRequest{Tokens: q, Theta: 0.5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain: %d (%s)", resp.StatusCode, body)
	}

	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("exposition content type = %q", ct)
	}
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := parsePromExposition(t, string(raw))

	want := []struct {
		name   string
		labels map[string]string
		min    float64
	}{
		{"ndss_requests_total", map[string]string{"endpoint": "search", "outcome": "ok"}, 2},
		{"ndss_requests_total", map[string]string{"endpoint": "search", "outcome": "cached"}, 1},
		{"ndss_requests_total", map[string]string{"endpoint": "topk", "outcome": "ok"}, 1},
		{"ndss_requests_total", map[string]string{"endpoint": "explain", "outcome": "ok"}, 1},
		{"ndss_request_duration_seconds_count", map[string]string{"endpoint": "search", "outcome": "ok"}, 2},
		{"ndss_cache_hits_total", nil, 1},
		{"ndss_index_texts", nil, 1},
		{"go_goroutines", nil, 1},
		{"ndss_uptime_seconds", nil, 0},
	}
	for _, w := range want {
		s, ok := findSample(samples, w.name, w.labels)
		if !ok {
			t.Errorf("missing sample %s %v", w.name, w.labels)
			continue
		}
		if s.value < w.min {
			t.Errorf("%s %v = %v, want >= %v", w.name, w.labels, s.value, w.min)
		}
	}

	// Acceptance: per-stage histograms are nonzero for all six stages.
	for _, stage := range search.StageNames {
		cnt, ok := findSample(samples, "ndss_stage_duration_seconds_count", map[string]string{"stage": stage})
		if !ok || cnt.value == 0 {
			t.Errorf("stage %q histogram count = %v (ok=%v), want > 0", stage, cnt.value, ok)
		}
		sum, ok := findSample(samples, "ndss_stage_duration_seconds_sum", map[string]string{"stage": stage})
		if !ok || sum.value <= 0 {
			t.Errorf("stage %q histogram sum = %v (ok=%v), want > 0", stage, sum.value, ok)
		}
	}

	// Index info carries the build id label.
	if _, ok := findSample(samples, "ndss_index_info", map[string]string{"k": "8", "t": "5"}); !ok {
		t.Error("missing ndss_index_info{k=\"8\",t=\"5\"}")
	}
}

// TestMetricsContentNegotiation: JSON is served only to clients that
// ask for it; scrapers get the exposition format.
func TestMetricsContentNegotiation(t *testing.T) {
	_, engine, _ := testFixture(t)
	srv := New(engine, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	mresp := getMetricsJSON(t, ts.Client(), ts.URL)
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("JSON content type = %q", ct)
	}
}

// TestHistogramBucketEdges pins the observe semantics: a value exactly
// equal to a bucket's upper bound lands in that bucket (Prometheus le
// semantics), and values beyond the last bound land in +Inf.
func TestHistogramBucketEdges(t *testing.T) {
	for i, ub := range latencyBucketsMS {
		var h histogram
		h.observe(time.Duration(ub * float64(time.Millisecond)))
		buckets, count, _ := h.load()
		if count != 1 {
			t.Fatalf("bound %v: count = %d", ub, count)
		}
		if buckets[i] != 1 {
			t.Errorf("value == bound %vms landed in bucket %v, want bucket %d (le=%v)", ub, buckets, i, ub)
		}
	}

	var h histogram
	h.observe(time.Duration(latencyBucketsMS[len(latencyBucketsMS)-1]*float64(time.Millisecond)) * 2)
	buckets, _, _ := h.load()
	if buckets[len(latencyBucketsMS)] != 1 {
		t.Errorf("overflow value landed in %v, want +Inf bucket", buckets)
	}

	var h2 histogram
	h2.observe(time.Duration(latencyBucketsMS[0] * float64(time.Millisecond) / 2))
	buckets, _, _ = h2.load()
	if buckets[0] != 1 {
		t.Errorf("small value landed in %v, want bucket 0", buckets)
	}
}

// TestHistogramConcurrentConsistency hammers one histogram and the full
// metrics snapshot from concurrent observers while readers load them;
// run under -race in CI. The count must always equal the bucket sum.
func TestHistogramConcurrentConsistency(t *testing.T) {
	var m metrics
	m.start = time.Now()
	const writers, perWriter = 8, 500
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(2)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			buckets, count, _ := m.latency[epSearch][outOK].load()
			var sum int64
			for _, b := range buckets {
				sum += b
			}
			if count != sum {
				t.Errorf("count %d != bucket sum %d", count, sum)
				return
			}
		}
	}()
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			m.snapshot(0, 0, indexSnapshot{}, nil)
		}
	}()

	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			st := &search.Stats{Matches: 1, StageTimes: search.StageTimes{Sketch: time.Microsecond}}
			for i := 0; i < perWriter; i++ {
				m.observe(epSearch, outOK, time.Duration(i%7)*time.Millisecond)
				m.recordStats(st)
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	readers.Wait()

	_, count, _ := m.latency[epSearch][outOK].load()
	if want := int64(writers * perWriter); count != want {
		t.Fatalf("final count %d, want %d", count, want)
	}
	_, scount, _ := m.stages[0].load()
	if want := int64(writers * perWriter); scount != want {
		t.Fatalf("final stage count %d, want %d", scount, want)
	}
}
