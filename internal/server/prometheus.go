package server

// Prometheus text exposition (version 0.0.4) for /metrics. Written by
// hand against the format spec — the repo is dependency-free — and
// validated in tests by a line-format checker. Histograms convert the
// internal per-bucket counts to the cumulative `le` form Prometheus
// requires; durations are exposed in seconds per convention.

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"ndss/internal/search"
	"ndss/internal/shard"
)

// promContentType is the exposition content type scrapers expect.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// promWriter accumulates exposition lines with #-comment headers.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) header(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// sample writes one sample line; labels is a preformatted `k="v",...`
// string or empty.
func (p *promWriter) sample(name, labels string, value float64) {
	if labels != "" {
		p.printf("%s{%s} %s\n", name, labels, formatPromValue(value))
	} else {
		p.printf("%s %s\n", name, formatPromValue(value))
	}
}

// histogramSamples writes the cumulative bucket series plus _sum and
// _count for one histogram. extraLabels tags every line (may be empty).
func (p *promWriter) histogramSamples(name, extraLabels string, buckets [len(latencyBucketsMS) + 1]int64, count, sumNS int64) {
	cum := int64(0)
	for i, ub := range latencyBucketsMS {
		cum += buckets[i]
		p.sample(name+"_bucket", joinLabels(extraLabels, `le="`+formatPromValue(ub/1000)+`"`), float64(cum))
	}
	cum += buckets[len(latencyBucketsMS)]
	p.sample(name+"_bucket", joinLabels(extraLabels, `le="+Inf"`), float64(cum))
	p.sample(name+"_sum", extraLabels, float64(sumNS)/float64(time.Second))
	p.sample(name+"_count", extraLabels, float64(count))
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func formatPromValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// writePrometheus renders the full metric catalog (see README's
// observability section) in exposition format.
func (m *metrics) writePrometheus(w io.Writer, cacheLen, cacheCap int, ix indexSnapshot, slowlogLen, traceLen int, sm *shard.Metrics) error {
	p := &promWriter{w: w}

	p.header("ndss_uptime_seconds", "Seconds since the server started.", "gauge")
	p.sample("ndss_uptime_seconds", "", time.Since(m.start).Seconds())
	p.header("ndss_in_flight_requests", "Query requests currently executing.", "gauge")
	p.sample("ndss_in_flight_requests", "", float64(m.inFlight.Load()))

	p.header("ndss_requests_total", "Admitted query requests by endpoint and outcome.", "counter")
	for e := endpoint(0); e < numEndpoints; e++ {
		for o := outcome(0); o < numOutcomes; o++ {
			_, c, _ := m.latency[e][o].load()
			p.sample("ndss_requests_total",
				fmt.Sprintf(`endpoint=%q,outcome=%q`, e.String(), o.String()), float64(c))
		}
	}
	p.header("ndss_requests_rejected_total", "Requests rejected before admission (429 saturated).", "counter")
	p.sample("ndss_requests_rejected_total", "", float64(m.rejected.Load()))
	p.header("ndss_requests_refused_total", "Requests refused while shutting down (503).", "counter")
	p.sample("ndss_requests_refused_total", "", float64(m.refused.Load()))
	p.header("ndss_requests_too_large_total", "Requests rejected for an over-limit body (413).", "counter")
	p.sample("ndss_requests_too_large_total", "", float64(m.tooLarge.Load()))

	p.header("ndss_request_duration_seconds", "Admitted request latency by endpoint and outcome.", "histogram")
	for e := endpoint(0); e < numEndpoints; e++ {
		for o := outcome(0); o < numOutcomes; o++ {
			b, c, s := m.latency[e][o].load()
			if c == 0 {
				continue // keep the exposition compact: only cells that fired
			}
			p.histogramSamples("ndss_request_duration_seconds",
				fmt.Sprintf(`endpoint=%q,outcome=%q`, e.String(), o.String()), b, c, s)
		}
	}

	p.header("ndss_stage_duration_seconds", "Per-query pipeline stage latency (executed queries).", "histogram")
	for i, name := range search.StageNames {
		b, c, s := m.stages[i].load()
		p.histogramSamples("ndss_stage_duration_seconds", fmt.Sprintf(`stage=%q`, name), b, c, s)
	}

	p.header("ndss_cache_hits_total", "Result cache hits.", "counter")
	p.sample("ndss_cache_hits_total", "", float64(m.cacheHits.Load()))
	p.header("ndss_cache_misses_total", "Result cache misses.", "counter")
	p.sample("ndss_cache_misses_total", "", float64(m.cacheMisses.Load()))
	p.header("ndss_cache_entries", "Result cache current entries.", "gauge")
	p.sample("ndss_cache_entries", "", float64(cacheLen))
	p.header("ndss_cache_capacity", "Result cache capacity.", "gauge")
	p.sample("ndss_cache_capacity", "", float64(cacheCap))

	p.header("ndss_reloads_total", "Backend hot reloads by result.", "counter")
	p.sample("ndss_reloads_total", `result="ok"`, float64(m.reloads.Load()))
	p.sample("ndss_reloads_total", `result="error"`, float64(m.reloadFailures.Load()))

	p.header("ndss_ingests_total", "Successful ingest mutations (segment appends).", "counter")
	p.sample("ndss_ingests_total", "", float64(m.ingests.Load()))
	p.header("ndss_compactions_total", "Successful segment compactions (manual or automatic).", "counter")
	p.sample("ndss_compactions_total", "", float64(m.compactions.Load()))

	p.header("ndss_query_matches_total", "Matches returned by executed queries.", "counter")
	p.sample("ndss_query_matches_total", "", float64(m.matches.Load()))
	p.header("ndss_query_io_bytes_total", "Index bytes read by executed queries.", "counter")
	p.sample("ndss_query_io_bytes_total", "", float64(m.ioBytes.Load()))
	p.header("ndss_query_io_seconds_total", "Time executed queries spent in index reads.", "counter")
	p.sample("ndss_query_io_seconds_total", "", float64(m.ioTimeNS.Load())/float64(time.Second))
	p.header("ndss_query_cpu_seconds_total", "CPU-side time of executed queries (total minus I/O).", "counter")
	p.sample("ndss_query_cpu_seconds_total", "", float64(m.cpuTimeNS.Load())/float64(time.Second))

	p.header("ndss_index_info", "Active index build (constant 1, labeled).", "gauge")
	p.sample("ndss_index_info", fmt.Sprintf(`build_id="%s",k="%d",t="%d"`,
		escapeLabelValue(ix.BuildID), ix.K, ix.T), 1)
	p.header("ndss_index_texts", "Texts in the active index.", "gauge")
	p.sample("ndss_index_texts", "", float64(ix.NumTexts))
	p.header("ndss_segments_total", "Segments in the active index's manifest.", "gauge")
	p.sample("ndss_segments_total", "", float64(ix.Segments))
	p.header("ndss_index_bytes_read_total", "Cumulative index bytes read since open.", "counter")
	p.sample("ndss_index_bytes_read_total", "", float64(ix.BytesRead))
	p.header("ndss_index_read_seconds_total", "Cumulative index read time since open.", "counter")
	p.sample("ndss_index_read_seconds_total", "", float64(ix.ReadTimeNS)/float64(time.Second))

	p.header("ndss_slowlog_entries", "Traces held by the slow-query flight recorder.", "gauge")
	p.sample("ndss_slowlog_entries", "", float64(slowlogLen))

	// Distributed-tracing families. Always present (zero-valued when
	// tracing never fired) so dashboards and the exposition checker see
	// every family in every scrape.
	p.header("ndss_trace_sampled_requests_total", "Executed queries whose trace was head-sampled.", "counter")
	p.sample("ndss_trace_sampled_requests_total", "", float64(m.traceSampled.Load()))
	p.header("ndss_trace_retained_total", "Traces retained in the trace store by retention reason (tail-based: decided at completion).", "counter")
	for i, reason := range traceReasons {
		p.sample("ndss_trace_retained_total",
			fmt.Sprintf(`reason=%q`, reason), float64(m.traceRetained[i].Load()))
	}
	p.header("ndss_trace_store_entries", "Traces currently held by the trace store.", "gauge")
	p.sample("ndss_trace_store_entries", "", float64(traceLen))
	p.header("ndss_trace_evictions_total", "Retained traces evicted by ring capacity.", "counter")
	p.sample("ndss_trace_evictions_total", "", float64(m.traceEvicted.Load()))

	if sm != nil {
		// Scatter–gather fan-out accounting (sharded backends only).
		// Shard label values come from the serving topology (index dirs
		// or URLs fixed at startup), never from request data.
		p.header("ndss_shard_requests_total", "Fan-out query legs per shard.", "counter")
		for _, sh := range sm.Shards {
			p.sample("ndss_shard_requests_total",
				fmt.Sprintf(`shard=%q`, escapeLabelValue(sh.Shard)), float64(sh.Requests))
		}
		p.header("ndss_shard_errors_total", "Fan-out query legs that failed or missed their budget, per shard.", "counter")
		for _, sh := range sm.Shards {
			p.sample("ndss_shard_errors_total",
				fmt.Sprintf(`shard=%q`, escapeLabelValue(sh.Shard)), float64(sh.Errors))
		}
		p.header("ndss_shard_partial_results_total", "Queries answered with at least one shard missing.", "counter")
		p.sample("ndss_shard_partial_results_total", "", float64(sm.PartialResults))
		p.header("ndss_shard_request_duration_seconds", "Fan-out leg latency per shard.", "histogram")
		for _, sh := range sm.Shards {
			if sh.LatencyCount == 0 {
				continue // keep the exposition compact: only shards that served
			}
			p.histogramSamples("ndss_shard_request_duration_seconds",
				fmt.Sprintf(`shard=%q`, escapeLabelValue(sh.Shard)),
				sh.LatencyBuckets, sh.LatencyCount, sh.LatencySumNS)
		}

		// Replica-level resilience accounting (shards served by replica
		// sets only). Replica label values are the configured replica
		// URLs/directories, never request-derived.
		writeReplicaFamily := func(name, help, typ string, value func(r shard.ReplicaMetrics) float64) {
			wrote := false
			for _, sh := range sm.Shards {
				if sh.ReplicaSet == nil {
					continue
				}
				if !wrote {
					p.header(name, help, typ)
					wrote = true
				}
				for _, r := range sh.ReplicaSet.Replicas {
					p.sample(name, fmt.Sprintf(`shard=%q,replica=%q`,
						escapeLabelValue(sh.Shard), escapeLabelValue(r.Replica)), value(r))
				}
			}
		}
		writeReplicaFamily("ndss_shard_replica_requests_total",
			"Attempts launched at each replica (primaries, retries, hedges).", "counter",
			func(r shard.ReplicaMetrics) float64 { return float64(r.Requests) })
		writeReplicaFamily("ndss_shard_replica_errors_total",
			"Attempts that failed at each replica (cancellations excluded).", "counter",
			func(r shard.ReplicaMetrics) float64 { return float64(r.Errors) })
		writeReplicaFamily("ndss_shard_retries_total",
			"Retry attempts routed to each replica after a transient failure elsewhere.", "counter",
			func(r shard.ReplicaMetrics) float64 { return float64(r.Retries) })
		writeReplicaFamily("ndss_shard_hedges_total",
			"Hedged (speculative) attempts routed to each replica.", "counter",
			func(r shard.ReplicaMetrics) float64 { return float64(r.Hedges) })
		writeReplicaFamily("ndss_shard_breaker_state",
			"Replica circuit-breaker state: 0 closed, 1 half-open, 2 open.", "gauge",
			func(r shard.ReplicaMetrics) float64 { return float64(r.Breaker) })
		writeReplicaFamily("ndss_shard_replica_quarantined",
			"1 while the replica is quarantined for a diverging build id.", "gauge",
			func(r shard.ReplicaMetrics) float64 {
				if r.Quarantined {
					return 1
				}
				return 0
			})
		wroteSet := false
		for _, sh := range sm.Shards {
			if sh.ReplicaSet == nil {
				continue
			}
			if !wroteSet {
				p.header("ndss_shard_hedge_wins_total", "Legs won by the hedged attempt.", "counter")
				wroteSet = true
			}
			p.sample("ndss_shard_hedge_wins_total",
				fmt.Sprintf(`shard=%q`, escapeLabelValue(sh.Shard)), float64(sh.ReplicaSet.HedgeWins))
		}
		wroteSet = false
		for _, sh := range sm.Shards {
			if sh.ReplicaSet == nil {
				continue
			}
			if !wroteSet {
				p.header("ndss_shard_retry_budget_denied_total", "Retries/hedges suppressed by an exhausted retry budget.", "counter")
				wroteSet = true
			}
			p.sample("ndss_shard_retry_budget_denied_total",
				fmt.Sprintf(`shard=%q`, escapeLabelValue(sh.Shard)), float64(sh.ReplicaSet.BudgetDenied))
		}
	}

	rt := sampleRuntime()
	p.header("go_goroutines", "Number of goroutines.", "gauge")
	p.sample("go_goroutines", "", float64(rt.Goroutines))
	p.header("go_memstats_heap_alloc_bytes", "Heap bytes allocated and in use.", "gauge")
	p.sample("go_memstats_heap_alloc_bytes", "", float64(rt.HeapAllocBytes))
	p.header("go_memstats_heap_sys_bytes", "Heap bytes obtained from the OS.", "gauge")
	p.sample("go_memstats_heap_sys_bytes", "", float64(rt.HeapSysBytes))
	p.header("go_memstats_heap_objects", "Allocated heap objects.", "gauge")
	p.sample("go_memstats_heap_objects", "", float64(rt.HeapObjects))
	p.header("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.", "counter")
	p.sample("go_gc_pause_seconds_total", "", float64(rt.GCPauseTotalNS)/float64(time.Second))
	p.header("go_gc_cycles_total", "Completed GC cycles.", "counter")
	p.sample("go_gc_cycles_total", "", float64(rt.NumGC))

	return p.err
}
