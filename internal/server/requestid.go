package server

// Request identity and structured logging plumbing. Every request gets
// an ID — client-supplied X-Request-ID when present (sanitized), else
// generated from a per-process random prefix plus a sequence number —
// which is echoed back as X-Request-ID, attached to error responses,
// carried in the request context, and stamped on every log line and
// slowlog entry, so one slow query can be chased from the client
// through the access log into its stage trace.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync/atomic"

	"ndss/internal/obs"
)

// ridPrefix distinguishes server processes; ridSeq orders requests
// within one.
var (
	ridPrefix = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			return "00000000"
		}
		return hex.EncodeToString(b[:])
	}()
	ridSeq atomic.Uint64
)

func newRequestID() string {
	return fmt.Sprintf("%s-%06x", ridPrefix, ridSeq.Add(1))
}

// maxRequestIDLen bounds accepted client-supplied ids.
const maxRequestIDLen = 64

// requestIDFor returns the request's id: a sane client-supplied
// X-Request-ID (which is how a coordinator's id reaches a shard's
// access log), or a fresh one.
func requestIDFor(r *http.Request) string {
	if id := r.Header.Get(obs.HeaderRequestID); id != "" && len(id) <= maxRequestIDLen && printableASCII(id) {
		return id
	}
	return newRequestID()
}

func printableASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < 0x21 || s[i] > 0x7e {
			return false
		}
	}
	return true
}

// RequestIDFromContext returns the request id the server middleware
// stored, or "" outside a request. The id lives in the obs package's
// context slot so the shard layer can forward it on outbound calls
// without importing the server.
func RequestIDFromContext(ctx context.Context) string {
	return obs.RequestIDFromContext(ctx)
}

// statusWriter captures the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}
