package server

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"testing"

	"ndss/internal/search"
)

// tokenDigest mirrors cacheKey's Verify-mode token digest.
func tokenDigest(tokens []uint32) uint64 {
	d := fnv.New64a()
	var tmp [4]byte
	for _, tok := range tokens {
		binary.LittleEndian.PutUint32(tmp[:], tok)
		d.Write(tmp[:])
	}
	return d.Sum64()
}

// TestCacheKeySketchAliasing is the regression test for the
// variable-length-sketch aliasing bug: without the length prefix, a
// K-element sketch with Verify on and a (K+1)-element sketch without it
// serialized to the same bytes whenever the extra sketch word equaled
// the first key's Theta bits and the remaining option words shifted one
// slot left. The two requests would then share a cache entry across
// different sketch widths (different K after a reload or behind a shard
// coordinator) — a silent wrong-result bug.
func TestCacheKeySketchAliasing(t *testing.T) {
	tokens := []uint32{1, 2, 3}
	optsA := search.Options{Theta: 0.75, MinLength: 7, LongListThreshold: 9, Verify: true}
	keyA := cacheKey('S', []uint64{42}, tokens, optsA, 0, 0)

	// B reproduces A's pre-fix serialization exactly: the extra sketch
	// word absorbs A's Theta bits and every following field takes the
	// value of A's next word (A's Verify flag bits land in B's
	// LongListThreshold, A's token digest in B's floor).
	optsB := search.Options{
		Theta:             math.Float64frombits(uint64(optsA.MinLength)),
		MinLength:         optsA.LongListThreshold,
		LongListThreshold: 4, // A's flags word: the Verify bit
	}
	keyB := cacheKey('S', []uint64{42, math.Float64bits(optsA.Theta)}, nil, optsB, 0,
		math.Float64frombits(tokenDigest(tokens)))

	if keyA == keyB {
		t.Fatal("distinct (sketch, options) pairs alias to one cache key")
	}
	// Validity guard: the two keys must agree everywhere except the
	// length-prefix word, proving the prefix — not some accidental field
	// difference — is what separates them. Layout: kind byte, then the
	// 8-byte sketch length, then the payload.
	if len(keyA) != len(keyB) {
		t.Fatalf("construction drifted: len(keyA)=%d len(keyB)=%d; the aliasing pair must serialize to equal-length keys", len(keyA), len(keyB))
	}
	if keyA[0] != keyB[0] || keyA[9:] != keyB[9:] {
		t.Fatal("construction drifted: keys differ beyond the sketch-length word, so this no longer tests the aliasing")
	}
	if keyA[1:9] == keyB[1:9] {
		t.Fatal("sketch-length words are equal for different sketch lengths")
	}
}

// TestCacheKeySensitivity spot-checks that every keyed dimension changes
// the key.
func TestCacheKeySensitivity(t *testing.T) {
	base := func() string {
		return cacheKey('S', []uint64{1, 2}, nil, search.Options{Theta: 0.5}, 0, 0)
	}
	ref := base()
	if base() != ref {
		t.Fatal("cacheKey is not deterministic")
	}
	variants := map[string]string{
		"kind":   cacheKey('K', []uint64{1, 2}, nil, search.Options{Theta: 0.5}, 0, 0),
		"sketch": cacheKey('S', []uint64{1, 3}, nil, search.Options{Theta: 0.5}, 0, 0),
		"theta":  cacheKey('S', []uint64{1, 2}, nil, search.Options{Theta: 0.6}, 0, 0),
		"minlen": cacheKey('S', []uint64{1, 2}, nil, search.Options{Theta: 0.5, MinLength: 8}, 0, 0),
		"flags":  cacheKey('S', []uint64{1, 2}, nil, search.Options{Theta: 0.5, PrefixFilter: true}, 0, 0),
		"topn":   cacheKey('S', []uint64{1, 2}, nil, search.Options{Theta: 0.5}, 5, 0),
		"floor":  cacheKey('S', []uint64{1, 2}, nil, search.Options{Theta: 0.5}, 0, 0.5),
	}
	for dim, key := range variants {
		if key == ref {
			t.Errorf("changing %s does not change the cache key", dim)
		}
	}
	// Verify keys in the token digest: same options, different tokens.
	va := cacheKey('S', []uint64{1, 2}, []uint32{1}, search.Options{Theta: 0.5, Verify: true}, 0, 0)
	vb := cacheKey('S', []uint64{1, 2}, []uint32{2}, search.Options{Theta: 0.5, Verify: true}, 0, 0)
	if va == vb {
		t.Error("Verify keys ignore the token digest")
	}
}
