package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"ndss/internal/corpus"
	"ndss/internal/fsio"
	"ndss/internal/hash"
	"ndss/internal/index"
	"ndss/internal/search"
)

// Ingest non-idempotency regression: when the append commits durably
// but the post-append reload fails, the server must say so in a typed
// way — the committed build id plus a SwapError — so the client retries
// with a reload, never by re-sending the texts (which would duplicate
// them in the index).

// faultBackend is a Backend over an index opened through a FaultFS, so
// tests can fail the next reload at the filesystem layer.
type faultBackend struct {
	*search.Searcher
	ix *index.Index
}

func openFaultBackend(ffs *fsio.FaultFS, dir string) (Backend, error) {
	ix, err := index.OpenFS(ffs, dir)
	if err != nil {
		return nil, err
	}
	return faultBackend{Searcher: search.New(ix, nil), ix: ix}, nil
}

func (b faultBackend) Explain(ctx context.Context, q []uint32, o search.Options) (*search.Plan, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return b.Searcher.Explain(q, o)
}

func (b faultBackend) Meta() index.Meta       { return b.ix.Meta() }
func (b faultBackend) Family() *hash.Family   { return b.ix.Family() }
func (b faultBackend) IOStats() index.IOStats { return b.ix.IOStats() }
func (b faultBackend) BuildID() string        { return b.ix.BuildID() }
func (b faultBackend) Close() error           { return b.ix.Close() }

func TestIngestSwapFailureCommitsAndRecoversByReload(t *testing.T) {
	c := corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts: 40, MinLength: 40, MaxLength: 120, VocabSize: 40,
		ZipfS: 1.3, Seed: 7, DupRate: 0.5, DupSnippetLen: 20, DupMutateProb: 0.05,
	})
	dir := t.TempDir() + "/ix"
	buildCorpusAt(t, c, dir)
	ffs := fsio.NewFaultFS(fsio.OS).SetCrash(false)
	backend, err := openFaultBackend(ffs, dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(backend, Config{
		Reloader: func() (Backend, error) { return openFaultBackend(ffs, dir) },
		Ingester: func(texts [][]uint32) (string, error) { return index.Append(dir, corpus.New(texts)) },
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	oldID := healthzBuildID(t, ts)

	// Arm a read fault on the first inverted file's header: the append
	// itself runs on the plain OS filesystem and commits, but the
	// post-append reopen through ffs fails.
	ffs.FailReadAt("index.000", 0)
	snip := snippet(1, 30)
	resp, body := postJSON(t, ts.Client(), ts.URL+"/ingest", ingestRequest{Texts: [][]uint32{snip}})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("ingest with failing swap: %d (%s), want 500", resp.StatusCode, body)
	}
	var ir struct {
		Status           string `json:"status"`
		CommittedBuildID string `json:"committed_build_id"`
		Error            string `json:"error"`
		RequestID        string `json:"request_id"`
	}
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Status != "committed_swap_failed" || ir.CommittedBuildID == "" || ir.CommittedBuildID == oldID {
		t.Fatalf("swap-failure response = %+v (old build %q); want committed_swap_failed with the new build id", ir, oldID)
	}
	if ir.RequestID == "" {
		t.Error("swap-failure response carries no request id")
	}

	// The old backend keeps serving: old content answers, the new text
	// is not visible yet, and healthz still reports the old build.
	if ms := searchMatches(t, ts, c.Text(0)[:12], 0.5); len(ms) == 0 {
		t.Fatal("old index stopped serving after failed swap")
	}
	if ms := searchMatches(t, ts, snip, 0.9); len(ms) != 0 {
		t.Fatalf("unswapped text already visible: %+v", ms)
	}
	if id := healthzBuildID(t, ts); id != oldID {
		t.Fatalf("healthz build id = %q after failed swap, want old %q", id, oldID)
	}

	// Recovery is a reload, not a re-ingest: clear the fault and retry
	// the swap alone.
	ffs.ClearReadFault()
	resp, body = postJSON(t, ts.Client(), ts.URL+"/admin/reload", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovery reload: %d (%s)", resp.StatusCode, body)
	}
	if id := healthzBuildID(t, ts); id != ir.CommittedBuildID {
		t.Fatalf("after recovery reload build id = %q, want the committed %q", id, ir.CommittedBuildID)
	}
	// Exactly one copy of the text: the failed request committed once
	// and the recovery added nothing.
	if ms := searchMatches(t, ts, snip, 0.9); len(ms) != 1 {
		t.Fatalf("ingested text after recovery: %d matches, want exactly 1 (no duplicates)", len(ms))
	}
}

// TestIngestAppendFailureIsRetriable pins the other half of the typed
// contract: when the append itself fails (nothing committed), the error
// is NOT a SwapError and re-sending the same texts is safe.
func TestIngestAppendFailureIsRetriable(t *testing.T) {
	srv, _ := ingestFixture(t, 0)
	failAppend := errors.New("injected append failure")
	realIngester := srv.cfg.Ingester
	fail := true
	srv.cfg.Ingester = func(texts [][]uint32) (string, error) {
		if fail {
			return "", failAppend
		}
		return realIngester(texts)
	}

	snip := snippet(3, 30)
	_, err := srv.Ingest([][]uint32{snip})
	if !errors.Is(err, failAppend) {
		t.Fatalf("failed append: err = %v, want the append error", err)
	}
	var swapErr *SwapError
	if errors.As(err, &swapErr) {
		t.Fatal("a pre-commit append failure must not be a SwapError")
	}

	// Retrying the identical ingest is safe and yields exactly one copy.
	fail = false
	if _, err := srv.Ingest([][]uint32{snip}); err != nil {
		t.Fatalf("retried ingest: %v", err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	if ms := searchMatches(t, ts, snip, 0.9); len(ms) != 1 {
		t.Fatalf("retried text: %d matches, want exactly 1", len(ms))
	}
}
