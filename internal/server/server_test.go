package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"ndss/internal/core"
	"ndss/internal/corpus"
	"ndss/internal/hash"
	"ndss/internal/index"
	"ndss/internal/search"
)

// testFixture builds a small on-disk index and returns the corpus, the
// opened engine, and a query planted to have near-duplicates.
func testFixture(t *testing.T) (*corpus.Corpus, *core.Engine, []uint32) {
	t.Helper()
	c := corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts: 40, MinLength: 40, MaxLength: 120, VocabSize: 40,
		ZipfS: 1.3, Seed: 7, DupRate: 0.5, DupSnippetLen: 20, DupMutateProb: 0.05,
	})
	dir := t.TempDir()
	if _, err := index.Build(c, dir, index.BuildOptions{K: 8, Seed: 21, T: 5, ZoneMapStep: 4, LongListCutoff: 8}); err != nil {
		t.Fatal(err)
	}
	engine, err := core.Open(dir, c)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { engine.Close() })
	return c, engine, c.Text(0)[:12]
}

// getMetricsJSON fetches /metrics with the Accept header that selects
// the JSON rendering (the default is Prometheus text exposition).
func getMetricsJSON(t *testing.T, client *http.Client, baseURL string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, baseURL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func postJSON(t *testing.T, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestServeSearchBasic(t *testing.T) {
	_, engine, q := testFixture(t)
	srv := New(engine, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	wantMatches, _, err := engine.Search(q, search.Options{Theta: 0.5, PrefixFilter: true})
	if err != nil {
		t.Fatal(err)
	}

	resp, body := postJSON(t, ts.Client(), ts.URL+"/search",
		searchRequest{Tokens: q, Theta: 0.5, PrefixFilter: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr searchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("bad response %s: %v", body, err)
	}
	if len(sr.Matches) != len(wantMatches) {
		t.Fatalf("served %d matches, engine found %d", len(sr.Matches), len(wantMatches))
	}
	for i, m := range sr.Matches {
		w := wantMatches[i]
		if m.TextID != w.TextID || m.Start != w.Start || m.End != w.End || m.Collisions != w.Collisions {
			t.Fatalf("match %d differs: %+v vs %+v", i, m, w)
		}
	}
	if sr.Stats.K != 8 || sr.Stats.Beta != 4 {
		t.Fatalf("stats wrong: %+v", sr.Stats)
	}
	if sr.Cached {
		t.Fatal("first request served from cache")
	}

	// healthz and explain answer.
	hz, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d", hz.StatusCode)
	}
	resp, body = postJSON(t, ts.Client(), ts.URL+"/explain",
		searchRequest{Tokens: q, Theta: 0.5, PrefixFilter: true, LongListThreshold: 10})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain status %d: %s", resp.StatusCode, body)
	}
	var plan struct {
		Beta int    `json:"beta"`
		Long []bool `json:"long"`
	}
	if err := json.Unmarshal(body, &plan); err != nil || plan.Beta != 4 || len(plan.Long) != 8 {
		t.Fatalf("explain response %s (err %v)", body, err)
	}
}

func TestServeCacheHit(t *testing.T) {
	_, engine, q := testFixture(t)
	srv := New(engine, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	req := searchRequest{Tokens: q, Theta: 0.5, PrefixFilter: true}
	_, body1 := postJSON(t, ts.Client(), ts.URL+"/search", req)
	_, body2 := postJSON(t, ts.Client(), ts.URL+"/search", req)
	var r1, r2 searchResponse
	if err := json.Unmarshal(body1, &r1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body2, &r2); err != nil {
		t.Fatal(err)
	}
	if r1.Cached || !r2.Cached {
		t.Fatalf("cache flags: first %v second %v", r1.Cached, r2.Cached)
	}
	if len(r1.Matches) != len(r2.Matches) {
		t.Fatalf("cached result differs: %d vs %d matches", len(r1.Matches), len(r2.Matches))
	}
	// Different options must miss.
	_, body3 := postJSON(t, ts.Client(), ts.URL+"/search",
		searchRequest{Tokens: q, Theta: 0.75, PrefixFilter: true})
	var r3 searchResponse
	if err := json.Unmarshal(body3, &r3); err != nil {
		t.Fatal(err)
	}
	if r3.Cached {
		t.Fatal("different theta served from cache")
	}

	var met struct {
		Cache struct {
			Hits    int64   `json:"hits"`
			Misses  int64   `json:"misses"`
			HitRate float64 `json:"hit_rate"`
		} `json:"cache"`
	}
	mresp := getMetricsJSON(t, ts.Client(), ts.URL)
	if err := json.NewDecoder(mresp.Body).Decode(&met); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if met.Cache.Hits != 1 || met.Cache.Misses != 2 {
		t.Fatalf("cache counters hits=%d misses=%d", met.Cache.Hits, met.Cache.Misses)
	}
}

func TestServeConcurrentSearches(t *testing.T) {
	c, engine, _ := testFixture(t)
	srv := New(engine, Config{MaxInFlight: 32, CacheEntries: -1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// A mix of distinct queries, each checked against the engine.
	type item struct {
		q    []uint32
		want int
	}
	var items []item
	for i := 0; i < 8; i++ {
		q := c.Text(uint32(i))[:12]
		ms, _, err := engine.Search(q, search.Options{Theta: 0.5, PrefixFilter: true})
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, item{q: q, want: len(ms)})
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				it := items[(w+rep)%len(items)]
				data, _ := json.Marshal(searchRequest{Tokens: it.q, Theta: 0.5, PrefixFilter: true})
				resp, err := ts.Client().Post(ts.URL+"/search", "application/json", bytes.NewReader(data))
				if err != nil {
					errs <- err
					return
				}
				var sr searchResponse
				err = json.NewDecoder(resp.Body).Decode(&sr)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
				if len(sr.Matches) != it.want {
					errs <- fmt.Errorf("worker %d rep %d: %d matches, want %d", w, rep, len(sr.Matches), it.want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	var met struct {
		Requests struct {
			Total  int64 `json:"total"`
			Search int64 `json:"search"`
		} `json:"requests"`
		Latency struct {
			Count int64 `json:"count"`
		} `json:"latency"`
	}
	mresp := getMetricsJSON(t, ts.Client(), ts.URL)
	if err := json.NewDecoder(mresp.Body).Decode(&met); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if met.Requests.Search != 32 || met.Latency.Count != 32 {
		t.Fatalf("metrics after 32 searches: %+v", met)
	}
}

// slowReader delays every full list read, making queries take long
// enough for deadlines to expire mid-gather.
type slowReader struct {
	search.IndexReader
	delay time.Duration
}

func (r slowReader) ReadListInto(dst []index.Posting, fn int, h uint64, sink *index.IOStats) ([]index.Posting, error) {
	time.Sleep(r.delay)
	return r.IndexReader.ReadListInto(dst, fn, h, sink)
}

// searcherBackend adapts a search.Searcher over a wrapped reader to the
// Backend interface.
type searcherBackend struct {
	*search.Searcher
	ix search.IndexReader
}

func (b searcherBackend) Explain(ctx context.Context, q []uint32, o search.Options) (*search.Plan, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return b.Searcher.Explain(q, o)
}

func (b searcherBackend) Meta() index.Meta       { return b.ix.Meta() }
func (b searcherBackend) Family() *hash.Family   { return b.ix.Family() }
func (b searcherBackend) IOStats() index.IOStats { return b.ix.IOStats() }
func (b searcherBackend) BuildID() string        { return "test" }

func slowFixture(t *testing.T, delay time.Duration) (Backend, []uint32) {
	t.Helper()
	c := corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts: 30, MinLength: 40, MaxLength: 90, VocabSize: 30,
		ZipfS: 1.3, Seed: 9, DupRate: 0.5, DupSnippetLen: 20, DupMutateProb: 0.05,
	})
	dir := t.TempDir()
	if _, err := index.Build(c, dir, index.BuildOptions{K: 8, Seed: 5, T: 5}); err != nil {
		t.Fatal(err)
	}
	ix, err := index.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	slow := slowReader{IndexReader: ix, delay: delay}
	return searcherBackend{Searcher: search.New(slow, c), ix: slow}, c.Text(0)[:12]
}

// TestServeDeadlineExpiry: a request whose deadline expires mid-query
// must return 504 promptly (well before the unconstrained query would
// finish) and leak no goroutines. Run under -race in CI.
func TestServeDeadlineExpiry(t *testing.T) {
	// 8 lists x 40ms = at least 320ms unconstrained.
	backend, q := slowFixture(t, 40*time.Millisecond)
	srv := New(backend, Config{CacheEntries: -1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	before := runtime.NumGoroutine()
	start := time.Now()
	resp, body := postJSON(t, ts.Client(), ts.URL+"/search",
		searchRequest{Tokens: q, Theta: 0.5, TimeoutMS: 60})
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, body)
	}
	if elapsed > 250*time.Millisecond {
		t.Fatalf("timed-out query took %v; cancellation not prompt", elapsed)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
		t.Fatalf("error body %q (%v)", body, err)
	}

	// The request goroutine unwinds; nothing keeps running the query.
	ts.Client().CloseIdleConnections()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, now)
	}

	var met struct {
		Requests struct {
			Timeout int64 `json:"timeout"`
		} `json:"requests"`
	}
	mresp := getMetricsJSON(t, ts.Client(), ts.URL)
	if err := json.NewDecoder(mresp.Body).Decode(&met); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if met.Requests.Timeout != 1 {
		t.Fatalf("timeout counter = %d, want 1", met.Requests.Timeout)
	}
}

// blockingReader parks every read until the gate closes, so a request
// can be held in-flight deterministically.
type blockingReader struct {
	search.IndexReader
	gate    chan struct{}
	entered chan struct{}
	once    sync.Once
}

func (r *blockingReader) ReadListInto(dst []index.Posting, fn int, h uint64, sink *index.IOStats) ([]index.Posting, error) {
	r.once.Do(func() { close(r.entered) })
	<-r.gate
	return r.IndexReader.ReadListInto(dst, fn, h, sink)
}

func blockingFixture(t *testing.T) (*blockingReader, Backend, []uint32) {
	t.Helper()
	c := corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts: 30, MinLength: 40, MaxLength: 90, VocabSize: 30,
		ZipfS: 1.3, Seed: 9, DupRate: 0.5, DupSnippetLen: 20, DupMutateProb: 0.05,
	})
	dir := t.TempDir()
	if _, err := index.Build(c, dir, index.BuildOptions{K: 8, Seed: 5, T: 5}); err != nil {
		t.Fatal(err)
	}
	ix, err := index.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	br := &blockingReader{
		IndexReader: ix,
		gate:        make(chan struct{}),
		entered:     make(chan struct{}),
	}
	return br, searcherBackend{Searcher: search.New(br, c), ix: br}, c.Text(0)[:12]
}

func TestServeAdmissionSaturated(t *testing.T) {
	br, backend, q := blockingFixture(t)
	srv := New(backend, Config{MaxInFlight: 1, CacheEntries: -1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Request 1 parks inside the index read, holding the only slot.
	done := make(chan int, 1)
	go func() {
		data, _ := json.Marshal(searchRequest{Tokens: q, Theta: 0.5})
		resp, err := ts.Client().Post(ts.URL+"/search", "application/json", bytes.NewReader(data))
		if err != nil {
			done <- -1
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	<-br.entered

	// Request 2 must be rejected immediately with 429.
	resp, body := postJSON(t, ts.Client(), ts.URL+"/search", searchRequest{Tokens: q, Theta: 0.5})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status %d (%s), want 429", resp.StatusCode, body)
	}

	close(br.gate)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("held request finished with %d", code)
	}
}

func TestServeGracefulShutdown(t *testing.T) {
	br, backend, q := blockingFixture(t)
	srv := New(backend, Config{CacheEntries: -1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	done := make(chan int, 1)
	go func() {
		data, _ := json.Marshal(searchRequest{Tokens: q, Theta: 0.5})
		resp, err := ts.Client().Post(ts.URL+"/search", "application/json", bytes.NewReader(data))
		if err != nil {
			done <- -1
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	<-br.entered

	srv.BeginShutdown()

	// New queries and health checks are refused while draining.
	resp, _ := postJSON(t, ts.Client(), ts.URL+"/search", searchRequest{Tokens: q, Theta: 0.5})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown search status %d, want 503", resp.StatusCode)
	}
	hz, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown healthz %d, want 503", hz.StatusCode)
	}

	// The in-flight request still completes.
	close(br.gate)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("draining request finished with %d", code)
	}
}

func TestServeBadRequests(t *testing.T) {
	_, engine, q := testFixture(t)
	srv := New(engine, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cases := []struct {
		name string
		req  searchRequest
	}{
		{"no tokens", searchRequest{Theta: 0.5}},
		{"theta zero", searchRequest{Tokens: q}},
		{"theta above one", searchRequest{Tokens: q, Theta: 1.5}},
		{"negative min length", searchRequest{Tokens: q, Theta: 0.5, MinLength: -1}},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/search", tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", tc.name, resp.StatusCode, body)
		}
	}

	// Wrong method.
	resp, err := ts.Client().Get(ts.URL + "/search")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /search status %d, want 405", resp.StatusCode)
	}
	// Unknown fields rejected.
	r2, err := ts.Client().Post(ts.URL+"/search", "application/json",
		bytes.NewReader([]byte(`{"tokens":[1,2],"theta":0.5,"bogus":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field status %d, want 400", r2.StatusCode)
	}
	// Top-k without n.
	resp, body := postJSON(t, ts.Client(), ts.URL+"/search/topk", searchRequest{Tokens: q, Theta: 0.5})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("topk without n: status %d (%s)", resp.StatusCode, body)
	}
}

func TestServeTopK(t *testing.T) {
	_, engine, q := testFixture(t)
	srv := New(engine, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	want, _, err := engine.SearchTopKContext(context.Background(), q, search.TopKOptions{N: 3, FloorTheta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.Client(), ts.URL+"/search/topk",
		searchRequest{Tokens: q, N: 3, FloorTheta: 0.5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr searchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Matches) != len(want) {
		t.Fatalf("served %d, engine found %d", len(sr.Matches), len(want))
	}
	for i := range want {
		if sr.Matches[i].TextID != want[i].TextID || sr.Matches[i].Collisions != want[i].Collisions {
			t.Fatalf("rank %d differs: %+v vs %+v", i, sr.Matches[i], want[i])
		}
	}
}

func TestServeExplainGet(t *testing.T) {
	_, engine, q := testFixture(t)
	srv := New(engine, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	url := ts.URL + "/explain?theta=0.5&prefix_filter=1&tokens="
	for i, tok := range q {
		if i > 0 {
			url += ","
		}
		url += fmt.Sprint(tok)
	}
	resp, err := ts.Client().Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET explain status %d", resp.StatusCode)
	}
	var plan struct {
		Beta int `json:"beta"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&plan); err != nil || plan.Beta == 0 {
		t.Fatalf("bad plan response (err %v, beta %d)", err, plan.Beta)
	}
}
