package server

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ndss/internal/core"
	"ndss/internal/corpus"
	"ndss/internal/hash"
	"ndss/internal/index"
	"ndss/internal/search"
	"ndss/internal/shard"
)

// End-to-end sharded serving: a shard.Coordinator is just another
// Backend, so a server over two shards must answer /search and
// /search/topk byte-identically to a server over the merged index, and
// /metrics must expose the per-shard fan-out series.

// shardedServerFixture builds one corpus, serves it whole through one
// server and split into two doc-range shards through another.
func shardedServerFixture(t *testing.T, cfg shard.Config) (singleTS, shardedTS *httptest.Server, q []uint32) {
	t.Helper()
	c := corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts: 40, MinLength: 40, MaxLength: 120, VocabSize: 40,
		ZipfS: 1.3, Seed: 7, DupRate: 0.6, DupSnippetLen: 20, DupMutateProb: 0.05,
	})
	texts := make([][]uint32, c.NumTexts())
	for i := range texts {
		texts[i] = c.Text(uint32(i))
	}
	open := func(sub [][]uint32) *core.Engine {
		t.Helper()
		dir := t.TempDir()
		cc := corpus.New(sub)
		if _, err := index.Build(cc, dir, index.BuildOptions{K: 8, Seed: 21, T: 5}); err != nil {
			t.Fatal(err)
		}
		e, err := core.Open(dir, cc)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}

	single := open(texts)
	t.Cleanup(func() { single.Close() })
	singleTS = httptest.NewServer(New(single, Config{}))
	t.Cleanup(singleTS.Close)

	coord, err := shard.NewCoordinator([]shard.ShardClient{
		shard.NewLocal("s0", open(texts[:20])),
		shard.NewLocal("s1", open(texts[20:])),
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	shardedTS = httptest.NewServer(New(coord, Config{}))
	t.Cleanup(shardedTS.Close)
	return singleTS, shardedTS, texts[25][:12]
}

func TestShardedServerMatchesSingleServer(t *testing.T) {
	singleTS, shardedTS, q := shardedServerFixture(t, shard.Config{})
	for _, tc := range []struct {
		path string
		req  searchRequest
	}{
		{"/search", searchRequest{Tokens: q, Theta: 0.5}},
		{"/search", searchRequest{Tokens: q, Theta: 0.8, Verify: true}},
		{"/search/topk", searchRequest{Tokens: q, N: 5}},
	} {
		resp, body := postJSON(t, singleTS.Client(), singleTS.URL+tc.path, tc.req)
		if resp.StatusCode != 200 {
			t.Fatalf("%s single: %d (%s)", tc.path, resp.StatusCode, body)
		}
		var want searchResponse
		if err := json.Unmarshal(body, &want); err != nil {
			t.Fatal(err)
		}
		resp, body = postJSON(t, shardedTS.Client(), shardedTS.URL+tc.path, tc.req)
		if resp.StatusCode != 200 {
			t.Fatalf("%s sharded: %d (%s)", tc.path, resp.StatusCode, body)
		}
		var got searchResponse
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Matches, want.Matches) {
			t.Errorf("%s %+v: sharded matches diverge:\n got %+v\nwant %+v", tc.path, tc.req, got.Matches, want.Matches)
		}
		if got.Stats.ShardsTotal != 2 || got.Stats.ShardsAnswered != 2 {
			t.Errorf("%s: sharded stats report %d/%d shards", tc.path, got.Stats.ShardsAnswered, got.Stats.ShardsTotal)
		}
		if len(got.Stats.PerShard) != 2 || got.Stats.PerShard[0].Shard != "s0" {
			t.Errorf("%s: per-shard attribution missing: %+v", tc.path, got.Stats.PerShard)
		}
		if want.Stats.ShardsTotal != 0 {
			t.Errorf("%s: single-index stats unexpectedly sharded: %+v", tc.path, want.Stats)
		}
	}

	// The sharded healthz advertises the combined build id and the
	// aggregate index metadata.
	resp, err := shardedTS.Client().Get(shardedTS.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz struct {
		BuildID string     `json:"build_id"`
		Index   index.Meta `json:"index"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(hz.BuildID, "sharded-2-") {
		t.Errorf("sharded healthz build_id = %q", hz.BuildID)
	}
	if hz.Index.NumTexts != 40 {
		t.Errorf("sharded healthz index meta = %+v, want 40 texts", hz.Index)
	}
}

func TestShardedServerMetricsExposition(t *testing.T) {
	_, shardedTS, q := shardedServerFixture(t, shard.Config{})
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, shardedTS.Client(), shardedTS.URL+"/search", searchRequest{Tokens: q, Theta: 0.5})
		if resp.StatusCode != 200 {
			t.Fatalf("search %d: %d (%s)", i, resp.StatusCode, body)
		}
	}
	resp, err := shardedTS.Client().Get(shardedTS.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	// Repeats of the same query are served from cache and cause no
	// fan-out, so exactly one leg per shard.
	for _, want := range []string{
		`ndss_shard_requests_total{shard="s0"} 1`,
		`ndss_shard_requests_total{shard="s1"} 1`,
		`ndss_shard_errors_total{shard="s0"} 0`,
		"ndss_shard_partial_results_total 0",
		`ndss_shard_request_duration_seconds_count{shard="s0"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("sharded /metrics missing %q", want)
		}
	}

	// The JSON rendering carries the same counters.
	jresp := getMetricsJSON(t, shardedTS.Client(), shardedTS.URL)
	defer jresp.Body.Close()
	var met struct {
		Shards struct {
			PartialResults int64 `json:"partial_results"`
			Shards         []struct {
				Shard    string `json:"shard"`
				Requests int64  `json:"requests"`
			} `json:"shards"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(jresp.Body).Decode(&met); err != nil {
		t.Fatal(err)
	}
	if len(met.Shards.Shards) != 2 || met.Shards.Shards[0].Requests != 1 {
		t.Errorf("JSON metrics shards = %+v", met.Shards)
	}
}

// slowShardBackend answers instantly or parks until its context is
// canceled, for driving budget-miss partials through the full server.
type slowShardBackend struct {
	fam   *hash.Family
	slow  bool
	match search.Match
	err   error // when set, every search fails with it
}

func newSlowShardBackend(t *testing.T, slow bool, matchID uint32) *slowShardBackend {
	t.Helper()
	fam, err := hash.NewFamily(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	return &slowShardBackend{fam: fam, slow: slow, match: search.Match{TextID: matchID, Collisions: 8, EstJaccard: 1}}
}

func (b *slowShardBackend) SearchContext(ctx context.Context, q []uint32, o search.Options) ([]search.Match, *search.Stats, error) {
	if b.slow {
		<-ctx.Done()
		return nil, nil, ctx.Err()
	}
	if b.err != nil {
		return nil, nil, b.err
	}
	return []search.Match{b.match}, &search.Stats{Matches: 1}, nil
}

func (b *slowShardBackend) SearchTopKContext(ctx context.Context, q []uint32, o search.TopKOptions) ([]search.Match, *search.Stats, error) {
	return b.SearchContext(ctx, q, o.Search)
}

func (b *slowShardBackend) Explain(ctx context.Context, q []uint32, o search.Options) (*search.Plan, error) {
	return &search.Plan{}, nil
}

func (b *slowShardBackend) Meta() index.Meta       { return index.Meta{K: 8, Seed: 1, T: 2, NumTexts: 5} }
func (b *slowShardBackend) Family() *hash.Family   { return b.fam }
func (b *slowShardBackend) IOStats() index.IOStats { return index.IOStats{} }
func (b *slowShardBackend) BuildID() string        { return "stub" }

// TestShardedServerPartialResult is the acceptance check for deadline
// partials through the whole stack: a shard missing its budget yields a
// 200 flagged partial — not an error — and increments
// ndss_shard_partial_results_total.
func TestShardedServerPartialResult(t *testing.T) {
	coord, err := shard.NewCoordinator([]shard.ShardClient{
		shard.NewLocal("fast", newSlowShardBackend(t, false, 2)),
		shard.NewLocal("slow", newSlowShardBackend(t, true, 0)),
	}, shard.Config{ShardBudget: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(coord, Config{CacheEntries: -1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, body := postJSON(t, ts.Client(), ts.URL+"/search", searchRequest{Tokens: []uint32{1, 2, 3}, Theta: 0.5})
	if resp.StatusCode != 200 {
		t.Fatalf("partial query: %d (%s), want 200", resp.StatusCode, body)
	}
	var sr searchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Matches) != 1 || sr.Matches[0].TextID != 2 {
		t.Fatalf("partial matches = %+v, want the fast shard's text 2", sr.Matches)
	}
	if sr.Stats.ShardsTotal != 2 || sr.Stats.ShardsAnswered != 1 {
		t.Fatalf("partial stats = %d/%d, want 1/2", sr.Stats.ShardsAnswered, sr.Stats.ShardsTotal)
	}
	var slowPS *search.ShardStats
	for i := range sr.Stats.PerShard {
		if sr.Stats.PerShard[i].Shard == "slow" {
			slowPS = &sr.Stats.PerShard[i]
		}
	}
	if slowPS == nil || slowPS.Answered || slowPS.Err == "" {
		t.Fatalf("slow shard not flagged in per-shard stats: %+v", sr.Stats.PerShard)
	}

	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"ndss_shard_partial_results_total 1",
		`ndss_shard_errors_total{shard="slow"} 1`,
		`ndss_shard_errors_total{shard="fast"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics after partial missing %q", want)
		}
	}
}

// TestShardedServerReloadRace races queries against coordinator
// hot-swaps through both reload paths — POST /admin/reload and the
// SIGHUP handler's srv.Reload() — while one shard's index directory is
// rebuilt under traffic. Zero requests may fail, every response must
// come from a fully-assembled coordinator (2/2 shards), and /healthz
// must only ever report a build id the server has actually served.
func TestShardedServerReloadRace(t *testing.T) {
	c := corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts: 40, MinLength: 40, MaxLength: 120, VocabSize: 40,
		ZipfS: 1.3, Seed: 7, DupRate: 0.6, DupSnippetLen: 20, DupMutateProb: 0.05,
	})
	texts := make([][]uint32, c.NumTexts())
	for i := range texts {
		texts[i] = c.Text(uint32(i))
	}
	d0 := t.TempDir() + "/s0"
	d1 := t.TempDir() + "/s1"
	buildCorpusAt(t, corpus.New(texts[:20]), d0)
	buildCorpusAt(t, corpus.New(texts[20:]), d1)

	openCoord := func() (Backend, error) {
		e0, err := core.Open(d0, nil)
		if err != nil {
			return nil, err
		}
		e1, err := core.Open(d1, nil)
		if err != nil {
			e0.Close()
			return nil, err
		}
		return shard.NewCoordinator([]shard.ShardClient{
			shard.NewLocal("s0", e0), shard.NewLocal("s1", e1),
		}, shard.Config{})
	}
	backend, err := openCoord()
	if err != nil {
		t.Fatal(err)
	}
	srv := New(backend, Config{MaxInFlight: 128, CacheEntries: -1, Reloader: openCoord})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	q := texts[25][:12]
	var (
		stop     atomic.Bool
		requests atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		observed = map[string]bool{}
	)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				resp, body := postJSON(t, ts.Client(), ts.URL+"/search", searchRequest{Tokens: q, Theta: 0.5})
				requests.Add(1)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("search failed during reload: %d (%s)", resp.StatusCode, body)
					return
				}
				var sr searchResponse
				if err := json.Unmarshal(body, &sr); err != nil {
					t.Error(err)
					return
				}
				if sr.Stats.ShardsTotal != 2 || sr.Stats.ShardsAnswered != 2 {
					t.Errorf("mid-swap query saw a half-assembled coordinator: %d/%d shards",
						sr.Stats.ShardsAnswered, sr.Stats.ShardsTotal)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			id := healthzBuildID(t, ts)
			if !strings.HasPrefix(id, "sharded-2-") {
				t.Errorf("healthz reported build %q mid-swap", id)
				return
			}
			mu.Lock()
			observed[id] = true
			mu.Unlock()
		}
	}()

	// Build ids the server has legitimately served: the initial build
	// plus whatever each swap installed.
	valid := map[string]bool{backend.BuildID(): true}
	for i := 0; i < 4; i++ {
		if i == 2 {
			// Rebuild shard 1's directory under traffic, so later swaps
			// change the coordinator build id while the old engine still
			// serves the previous build.
			buildCorpusAt(t, corpus.New(texts[10:]), d1)
		}
		if i%2 == 0 {
			resp, body := postJSON(t, ts.Client(), ts.URL+"/admin/reload", struct{}{})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("reload %d: %d (%s)", i, resp.StatusCode, body)
			}
			var rr map[string]string
			if err := json.Unmarshal(body, &rr); err != nil {
				t.Fatal(err)
			}
			valid[rr["build_id"]] = true
		} else {
			// The SIGHUP handler calls Reload directly.
			_, newID, err := srv.Reload()
			if err != nil {
				t.Fatalf("reload %d (signal path): %v", i, err)
			}
			valid[newID] = true
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	if requests.Load() == 0 {
		t.Fatal("no requests observed")
	}
	// The rebuild changed the corpus, so the swap changed the build id.
	if len(valid) < 2 {
		t.Fatalf("reloads never changed the build id: %v", valid)
	}
	mu.Lock()
	defer mu.Unlock()
	for id := range observed {
		if !valid[id] {
			t.Errorf("healthz reported build %q, which no coordinator ever served (valid: %v)", id, valid)
		}
	}
	if id := healthzBuildID(t, ts); !valid[id] {
		t.Errorf("final healthz build %q not among served builds", id)
	}
}

// TestShardedReplicaMetricsExposition drives one query through a
// replica set whose primary fails transiently and checks the full
// observability surface: per-replica Prometheus families, replica
// attempts in the response stats and /debug/slowlog, and the slow-query
// log's retry/hedge attrs.
func TestShardedReplicaMetricsExposition(t *testing.T) {
	failing := newSlowShardBackend(t, false, 1)
	failing.err = &shard.RemoteError{Shard: "rep0", Status: 503, Msg: "draining"}
	good := newSlowShardBackend(t, false, 2)
	rs, err := shard.NewReplicaSet("rset", []shard.ShardClient{
		shard.NewLocal("rep0", failing), shard.NewLocal("rep1", good),
	}, shard.ReplicaConfig{
		MaxRetries: 2, RetryBurst: 10, HedgeDelayMin: -1,
		BreakerFailures: 100, BreakerCooldown: time.Hour, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := shard.NewCoordinator([]shard.ShardClient{rs}, shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })

	var buf syncBuffer
	srv := New(coord, Config{
		CacheEntries:       -1,
		SlowQueryThreshold: time.Nanosecond, // every query is "slow"
		Logger:             slog.New(slog.NewTextHandler(&buf, nil)),
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, body := postJSON(t, ts.Client(), ts.URL+"/search", searchRequest{Tokens: []uint32{1, 2, 3}, Theta: 0.5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search: %d (%s), the retry should have masked the failure", resp.StatusCode, body)
	}
	var sr searchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Stats.PerShard) != 1 || len(sr.Stats.PerShard[0].Attempts) != 2 {
		t.Fatalf("response attempts = %+v, want the failed primary plus the retry", sr.Stats.PerShard)
	}

	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		`ndss_shard_replica_requests_total{shard="rset",replica="rep0"} 1`,
		`ndss_shard_replica_requests_total{shard="rset",replica="rep1"} 1`,
		`ndss_shard_replica_errors_total{shard="rset",replica="rep0"} 1`,
		`ndss_shard_replica_errors_total{shard="rset",replica="rep1"} 0`,
		`ndss_shard_retries_total{shard="rset",replica="rep1"} 1`,
		`ndss_shard_hedges_total{shard="rset",replica="rep0"} 0`,
		`ndss_shard_breaker_state{shard="rset",replica="rep0"} 0`,
		`ndss_shard_replica_quarantined{shard="rset",replica="rep0"} 0`,
		`ndss_shard_hedge_wins_total{shard="rset"} 0`,
		`ndss_shard_retry_budget_denied_total{shard="rset"} 0`,
		// The trace families ride in the same scrape: with a 1ns slow
		// threshold and one masked retry, the single query is retained
		// for both reasons, head sampling stays off, and nothing has
		// been evicted from the bounded store.
		"ndss_trace_sampled_requests_total 0",
		`ndss_trace_retained_total{reason="slow"} 1`,
		`ndss_trace_retained_total{reason="retried"} 1`,
		`ndss_trace_retained_total{reason="sampled"} 0`,
		`ndss_trace_retained_total{reason="hedged"} 0`,
		"ndss_trace_store_entries 1",
		"ndss_trace_evictions_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The whole exposition, new families included, stays format-clean.
	parsePromExposition(t, text)

	// The slow-query log attributes the retry.
	logged := buf.String()
	if !strings.Contains(logged, "shard_retries=1") || !strings.Contains(logged, "shard_hedges=0") {
		t.Errorf("slow-query log lacks retry attribution: %q", logged)
	}

	// The flight recorder carries the per-attempt replica breakdown.
	slresp, err := ts.Client().Get(ts.URL + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	defer slresp.Body.Close()
	slraw, err := io.ReadAll(slresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(slraw), `"replica":"rep1"`) {
		t.Errorf("/debug/slowlog entry lacks replica attempts: %s", slraw)
	}
}
