package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// Over-limit body regression tests: the request-body caps must answer
// 413 (not a generic 400), count into the too_large metric, and — the
// original bug — hand the real ResponseWriter to http.MaxBytesReader so
// the connection is closed instead of leaving the unread body bytes to
// desync the next keep-alive request.

// shrinkBodyLimits lowers the package body caps for the duration of one
// test so the over-limit path is reachable with small payloads.
func shrinkBodyLimits(t *testing.T, n int64) {
	t.Helper()
	oldQ, oldI := maxQueryBodyBytes, maxIngestBodyBytes
	maxQueryBodyBytes, maxIngestBodyBytes = n, n
	t.Cleanup(func() { maxQueryBodyBytes, maxIngestBodyBytes = oldQ, oldI })
}

func oversizedTokens(limit int64) []uint32 {
	// Each token serializes to at least two bytes ("N,"), so this body
	// overshoots the limit comfortably.
	out := make([]uint32, limit)
	for i := range out {
		out[i] = uint32(i % 100)
	}
	return out
}

func TestQueryBodyLimitAnswers413(t *testing.T) {
	shrinkBodyLimits(t, 512)
	_, engine, q := testFixture(t)
	srv := New(engine, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, path := range []string{"/search", "/search/topk", "/explain"} {
		resp, body := postJSON(t, ts.Client(), ts.URL+path,
			searchRequest{Tokens: oversizedTokens(512), Theta: 0.5, N: 3})
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s oversized body: %d (%s), want 413", path, resp.StatusCode, body)
		}
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatalf("%s: 413 body is not the error shape: %v (%s)", path, err, body)
		}
		if er.RequestID == "" {
			t.Errorf("%s: 413 error carries no request id", path)
		}

		// The connection survives for the client: a well-formed follow-up
		// request on the same keep-alive client must succeed. (With the
		// nil-ResponseWriter bug, MaxBytesReader could not ask the server
		// to close the connection, and the unread body bytes of the
		// rejected request desynced exactly this follow-up.)
		resp, body = postJSON(t, ts.Client(), ts.URL+"/search", searchRequest{Tokens: q, Theta: 0.5})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("follow-up after 413 on %s: %d (%s), want 200", path, resp.StatusCode, body)
		}
	}

	// Metrics: one too_large per endpoint hit, as its own counter, not
	// bad_request.
	mresp := getMetricsJSON(t, ts.Client(), ts.URL)
	defer mresp.Body.Close()
	var met struct {
		Requests map[string]int64 `json:"requests"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&met); err != nil {
		t.Fatal(err)
	}
	if met.Requests["too_large"] != 3 {
		t.Errorf("too_large = %d, want 3", met.Requests["too_large"])
	}
	if met.Requests["bad_request"] != 0 {
		t.Errorf("bad_request = %d, want 0 (413s must not count as 400s)", met.Requests["bad_request"])
	}

	presp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer presp.Body.Close()
	raw, err := io.ReadAll(presp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "ndss_requests_too_large_total 3") {
		t.Error("prometheus exposition missing ndss_requests_too_large_total 3")
	}
}

func TestIngestBodyLimitAnswers413(t *testing.T) {
	shrinkBodyLimits(t, 512)
	srv, _ := ingestFixture(t, 0)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, body := postJSON(t, ts.Client(), ts.URL+"/ingest",
		ingestRequest{Texts: [][]uint32{oversizedTokens(512)}})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ingest: %d (%s), want 413", resp.StatusCode, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("413 body is not the error shape: %v (%s)", err, body)
	}

	// The same keep-alive client can still ingest a small batch.
	resp, body = postJSON(t, ts.Client(), ts.URL+"/ingest",
		ingestRequest{Texts: [][]uint32{snippet(1, 30)}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up ingest after 413: %d (%s), want 200", resp.StatusCode, body)
	}

	// A body within the limit but malformed stays a 400.
	resp, body = postJSON(t, ts.Client(), ts.URL+"/ingest", map[string]any{"bogus": 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed small body: %d (%s), want 400", resp.StatusCode, body)
	}
}
