package server

import (
	"strconv"
	"sync/atomic"
	"time"

	"ndss/internal/search"
)

// latencyBucketsMS are the upper bounds (milliseconds) of the request
// latency histogram; the implicit last bucket is +Inf.
var latencyBucketsMS = [...]float64{0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000}

type histogram struct {
	counts [len(latencyBucketsMS) + 1]atomic.Int64
	count  atomic.Int64
	sumNS  atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(latencyBucketsMS) && ms > latencyBucketsMS[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(int64(d))
}

// metrics is the server's counter surface, exposed as JSON by /metrics.
// Everything is atomic; there is no lock on the request path.
type metrics struct {
	start time.Time

	inFlight atomic.Int64

	requests  atomic.Int64 // admitted query requests (search/topk/explain)
	searches  atomic.Int64
	topk      atomic.Int64
	explains  atomic.Int64
	rejected  atomic.Int64 // 429: admission semaphore saturated
	refused   atomic.Int64 // 503: shutting down
	badInput  atomic.Int64 // 400
	timeouts  atomic.Int64 // 504: deadline exceeded mid-query
	canceled  atomic.Int64 // client went away mid-query
	internals atomic.Int64 // 500

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	reloads        atomic.Int64 // successful backend swaps
	reloadFailures atomic.Int64 // reloads that kept the old backend

	// Aggregated per-query Stats/IOStats of executed (non-cached)
	// searches. Exact because every query reports from its private sink.
	matches   atomic.Int64
	ioBytes   atomic.Int64
	ioTimeNS  atomic.Int64
	cpuTimeNS atomic.Int64

	latency histogram
}

func (m *metrics) recordStats(st *search.Stats) {
	if st == nil {
		return
	}
	m.matches.Add(int64(st.Matches))
	m.ioBytes.Add(st.IOBytes)
	m.ioTimeNS.Add(int64(st.IOTime))
	m.cpuTimeNS.Add(int64(st.CPUTime))
}

// snapshot renders the counters into the JSON shape /metrics serves.
func (m *metrics) snapshot(cacheLen, cacheCap int, ix indexSnapshot) map[string]any {
	hits, misses := m.cacheHits.Load(), m.cacheMisses.Load()
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	buckets := make(map[string]int64, len(latencyBucketsMS)+1)
	for i, ub := range latencyBucketsMS {
		buckets[formatMS(ub)] = m.latency.counts[i].Load()
	}
	buckets["+Inf"] = m.latency.counts[len(latencyBucketsMS)].Load()
	count := m.latency.count.Load()
	meanMS := 0.0
	if count > 0 {
		meanMS = float64(m.latency.sumNS.Load()) / float64(count) / float64(time.Millisecond)
	}
	return map[string]any{
		"uptime_seconds": time.Since(m.start).Seconds(),
		"in_flight":      m.inFlight.Load(),
		"requests": map[string]int64{
			"total":          m.requests.Load(),
			"search":         m.searches.Load(),
			"topk":           m.topk.Load(),
			"explain":        m.explains.Load(),
			"rejected":       m.rejected.Load(),
			"refused":        m.refused.Load(),
			"bad_request":    m.badInput.Load(),
			"timeout":        m.timeouts.Load(),
			"canceled":       m.canceled.Load(),
			"internal_error": m.internals.Load(),
		},
		"latency": map[string]any{
			"count":      count,
			"mean_ms":    meanMS,
			"buckets_ms": buckets,
		},
		"cache": map[string]any{
			"hits":     hits,
			"misses":   misses,
			"hit_rate": hitRate,
			"size":     cacheLen,
			"capacity": cacheCap,
		},
		"reloads": map[string]int64{
			"completed": m.reloads.Load(),
			"failed":    m.reloadFailures.Load(),
		},
		"query": map[string]int64{
			"matches":     m.matches.Load(),
			"io_bytes":    m.ioBytes.Load(),
			"io_time_ns":  m.ioTimeNS.Load(),
			"cpu_time_ns": m.cpuTimeNS.Load(),
		},
		"index": ix,
	}
}

// indexSnapshot is the index-level slice of /metrics.
type indexSnapshot struct {
	BuildID    string `json:"build_id"`
	K          int    `json:"k"`
	T          int    `json:"t"`
	NumTexts   int    `json:"num_texts"`
	BytesRead  int64  `json:"bytes_read"`
	ReadTimeNS int64  `json:"read_time_ns"`
}

func formatMS(ub float64) string {
	return strconv.FormatFloat(ub, 'g', -1, 64)
}
