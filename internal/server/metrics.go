package server

import (
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"ndss/internal/search"
	"ndss/internal/shard"
)

// endpoint enumerates the query endpoints whose latency is observed.
type endpoint int

const (
	epSearch endpoint = iota
	epTopK
	epExplain
	numEndpoints
)

func (e endpoint) String() string {
	switch e {
	case epSearch:
		return "search"
	case epTopK:
		return "topk"
	case epExplain:
		return "explain"
	}
	return "unknown"
}

// outcome enumerates how an admitted request ended. Every admitted
// request records exactly one latency observation tagged with its
// endpoint and outcome (the satellite invariant TestLatencyAccounting
// pins down).
type outcome int

const (
	outOK outcome = iota
	outCached
	outBadRequest // post-admission validation failure (400)
	outTimeout    // deadline exceeded mid-query (504)
	outCanceled   // client went away mid-query (499)
	outInternal   // unexpected failure (500)
	numOutcomes
)

func (o outcome) String() string {
	switch o {
	case outOK:
		return "ok"
	case outCached:
		return "cached"
	case outBadRequest:
		return "bad_request"
	case outTimeout:
		return "timeout"
	case outCanceled:
		return "canceled"
	case outInternal:
		return "internal"
	}
	return "unknown"
}

// latencyBucketsMS are the upper bounds (milliseconds) of the request
// latency histograms; the implicit last bucket is +Inf. A value exactly
// equal to an upper bound lands in that bound's bucket (Prometheus `le`
// semantics).
var latencyBucketsMS = [...]float64{0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000}

type histogram struct {
	counts [len(latencyBucketsMS) + 1]atomic.Int64
	sumNS  atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(latencyBucketsMS) && ms > latencyBucketsMS[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNS.Add(int64(d))
}

// load reads the histogram's per-bucket counts and derives the total
// from their sum, so count always equals the buckets even while other
// goroutines observe concurrently (the count is simply the state of the
// buckets at their individual load instants).
func (h *histogram) load() (buckets [len(latencyBucketsMS) + 1]int64, count, sumNS int64) {
	for i := range h.counts {
		buckets[i] = h.counts[i].Load()
		count += buckets[i]
	}
	return buckets, count, h.sumNS.Load()
}

// metrics is the server's counter surface, exposed by /metrics as
// Prometheus text exposition (default) or JSON (content negotiation).
// Everything is atomic; there is no lock on the request path.
type metrics struct {
	start time.Time

	inFlight atomic.Int64

	requests  atomic.Int64 // admitted query requests (search/topk/explain)
	searches  atomic.Int64
	topk      atomic.Int64
	explains  atomic.Int64
	rejected  atomic.Int64 // 429: admission semaphore saturated
	refused   atomic.Int64 // 503: shutting down
	badInput  atomic.Int64 // 400
	tooLarge  atomic.Int64 // 413: request body over the size cap
	timeouts  atomic.Int64 // 504: deadline exceeded mid-query
	canceled  atomic.Int64 // client went away mid-query
	internals atomic.Int64 // 500

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	reloads        atomic.Int64 // successful backend swaps
	reloadFailures atomic.Int64 // reloads that kept the old backend

	ingests     atomic.Int64 // successful ingest mutations (segment appends)
	compactions atomic.Int64 // successful compactions (manual or automatic)

	// Distributed-tracing accounting: head-sampled queries, traces
	// retained in the trace store per retention reason, and entries a
	// full ring pushed out.
	traceSampled  atomic.Int64
	traceRetained [numTraceReasons]atomic.Int64
	traceEvicted  atomic.Int64

	// Aggregated per-query Stats/IOStats of executed (non-cached)
	// searches. Exact because every query reports from its private sink.
	matches   atomic.Int64
	ioBytes   atomic.Int64
	ioTimeNS  atomic.Int64
	cpuTimeNS atomic.Int64

	// latency holds one histogram per (endpoint, outcome) cell: every
	// admitted request lands in exactly one.
	latency [numEndpoints][numOutcomes]histogram

	// stages holds one histogram per pipeline stage, observed from each
	// executed query's StageTimes (cache hits and errors excluded: only
	// queries that ran the pipeline have a decomposition).
	stages [search.NumStages]histogram
}

// observe records the single per-request latency observation.
func (m *metrics) observe(ep endpoint, out outcome, d time.Duration) {
	m.latency[ep][out].observe(d)
}

// traceReasons enumerates the trace-store retention reasons; the
// Prometheus exposition emits one ndss_trace_retained_total sample per
// reason so dashboards see every label value from the first scrape.
var traceReasons = [...]string{"sampled", "slow", "error", "partial", "retried", "hedged"}

const numTraceReasons = len(traceReasons)

// retainTrace bumps the retention counter for one reason.
func (m *metrics) retainTrace(reason string) {
	for i, r := range traceReasons {
		if r == reason {
			m.traceRetained[i].Add(1)
			return
		}
	}
}

func traceRetainedMap(m *metrics) map[string]int64 {
	out := make(map[string]int64, numTraceReasons)
	for i, r := range traceReasons {
		out[r] = m.traceRetained[i].Load()
	}
	return out
}

func (m *metrics) recordStats(st *search.Stats) {
	if st == nil {
		return
	}
	m.matches.Add(int64(st.Matches))
	m.ioBytes.Add(st.IOBytes)
	m.ioTimeNS.Add(int64(st.IOTime))
	m.cpuTimeNS.Add(int64(st.CPUTime))
	for i, d := range st.StageTimes.Durations() {
		m.stages[i].observe(d)
	}
}

// aggregateLatency folds every (endpoint, outcome) histogram into one,
// preserving the pre-observability JSON schema where "latency" was a
// single request histogram.
func (m *metrics) aggregateLatency() (buckets [len(latencyBucketsMS) + 1]int64, count, sumNS int64) {
	for e := 0; e < int(numEndpoints); e++ {
		for o := 0; o < int(numOutcomes); o++ {
			b, c, s := m.latency[e][o].load()
			for i := range buckets {
				buckets[i] += b[i]
			}
			count += c
			sumNS += s
		}
	}
	return buckets, count, sumNS
}

// runtimeSnapshot samples the Go runtime gauges exposed on /metrics.
type runtimeSnapshot struct {
	Goroutines     int    `json:"goroutines"`
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64 `json:"heap_sys_bytes"`
	HeapObjects    uint64 `json:"heap_objects"`
	GCPauseTotalNS uint64 `json:"gc_pause_total_ns"`
	NumGC          uint32 `json:"num_gc"`
}

func sampleRuntime() runtimeSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return runtimeSnapshot{
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		HeapObjects:    ms.HeapObjects,
		GCPauseTotalNS: ms.PauseTotalNs,
		NumGC:          ms.NumGC,
	}
}

// snapshot renders the counters into the JSON shape /metrics serves for
// Accept: application/json. The pre-observability keys are preserved
// verbatim; "endpoints", "stages" and "runtime" are additive.
func (m *metrics) snapshot(cacheLen, cacheCap int, ix indexSnapshot, sm *shard.Metrics) map[string]any {
	hits, misses := m.cacheHits.Load(), m.cacheMisses.Load()
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	aggBuckets, count, sumNS := m.aggregateLatency()
	buckets := make(map[string]int64, len(latencyBucketsMS)+1)
	for i, ub := range latencyBucketsMS {
		buckets[formatMS(ub)] = aggBuckets[i]
	}
	buckets["+Inf"] = aggBuckets[len(latencyBucketsMS)]
	meanMS := 0.0
	if count > 0 {
		meanMS = float64(sumNS) / float64(count) / float64(time.Millisecond)
	}

	endpoints := make(map[string]any, numEndpoints)
	for e := endpoint(0); e < numEndpoints; e++ {
		outs := make(map[string]any, numOutcomes)
		for o := outcome(0); o < numOutcomes; o++ {
			_, c, s := m.latency[e][o].load()
			if c == 0 {
				continue
			}
			outs[o.String()] = map[string]int64{"count": c, "sum_ns": s}
		}
		endpoints[e.String()] = outs
	}
	stages := make(map[string]any, search.NumStages)
	for i, name := range search.StageNames {
		_, c, s := m.stages[i].load()
		stages[name] = map[string]int64{"count": c, "sum_ns": s}
	}

	out := map[string]any{
		"uptime_seconds": time.Since(m.start).Seconds(),
		"in_flight":      m.inFlight.Load(),
		"requests": map[string]int64{
			"total":          m.requests.Load(),
			"search":         m.searches.Load(),
			"topk":           m.topk.Load(),
			"explain":        m.explains.Load(),
			"rejected":       m.rejected.Load(),
			"refused":        m.refused.Load(),
			"bad_request":    m.badInput.Load(),
			"too_large":      m.tooLarge.Load(),
			"timeout":        m.timeouts.Load(),
			"canceled":       m.canceled.Load(),
			"internal_error": m.internals.Load(),
		},
		"latency": map[string]any{
			"count":      count,
			"mean_ms":    meanMS,
			"buckets_ms": buckets,
		},
		"endpoints": endpoints,
		"stages":    stages,
		"cache": map[string]any{
			"hits":     hits,
			"misses":   misses,
			"hit_rate": hitRate,
			"size":     cacheLen,
			"capacity": cacheCap,
		},
		"reloads": map[string]int64{
			"completed": m.reloads.Load(),
			"failed":    m.reloadFailures.Load(),
		},
		"segments": map[string]int64{
			"ingests":     m.ingests.Load(),
			"compactions": m.compactions.Load(),
		},
		"query": map[string]int64{
			"matches":     m.matches.Load(),
			"io_bytes":    m.ioBytes.Load(),
			"io_time_ns":  m.ioTimeNS.Load(),
			"cpu_time_ns": m.cpuTimeNS.Load(),
		},
		"trace": map[string]any{
			"sampled":  m.traceSampled.Load(),
			"retained": traceRetainedMap(m),
			"evicted":  m.traceEvicted.Load(),
		},
		"index":   ix,
		"runtime": sampleRuntime(),
	}
	if sm != nil {
		shards := make([]map[string]any, len(sm.Shards))
		for i, sh := range sm.Shards {
			shards[i] = map[string]any{
				"shard":    sh.Shard,
				"build_id": sh.BuildID,
				"requests": sh.Requests,
				"errors":   sh.Errors,
				"latency": map[string]int64{
					"count":  sh.LatencyCount,
					"sum_ns": sh.LatencySumNS,
				},
			}
			if rs := sh.ReplicaSet; rs != nil {
				replicas := make([]map[string]any, len(rs.Replicas))
				for j, r := range rs.Replicas {
					replicas[j] = map[string]any{
						"replica":     r.Replica,
						"build_id":    r.BuildID,
						"requests":    r.Requests,
						"errors":      r.Errors,
						"retries":     r.Retries,
						"hedges":      r.Hedges,
						"breaker":     r.Breaker.String(),
						"quarantined": r.Quarantined,
					}
				}
				shards[i]["replicas"] = replicas
				shards[i]["hedge_wins"] = rs.HedgeWins
				shards[i]["retry_budget_denied"] = rs.BudgetDenied
			}
		}
		out["shards"] = map[string]any{
			"partial_results": sm.PartialResults,
			"shards":          shards,
		}
	}
	return out
}

// indexSnapshot is the index-level slice of /metrics.
type indexSnapshot struct {
	BuildID    string `json:"build_id"`
	K          int    `json:"k"`
	T          int    `json:"t"`
	NumTexts   int    `json:"num_texts"`
	Segments   int    `json:"segments"`
	BytesRead  int64  `json:"bytes_read"`
	ReadTimeNS int64  `json:"read_time_ns"`
}

func formatMS(ub float64) string {
	return strconv.FormatFloat(ub, 'g', -1, 64)
}
