// Package server exposes an opened ndss index as an HTTP JSON query
// service: the production layer the paper's deployment story implies
// (memorization audits are sustained query traffic against one index).
//
// Endpoints:
//
//	POST /search        near-duplicate search (search.Options over JSON)
//	POST /search/topk   ranked top-k retrieval
//	GET|POST /explain   the deferral plan a query would run with (no I/O)
//	GET  /healthz       liveness; 503 once shutdown has begun
//	GET  /metrics       counters: requests, latency histogram, cache
//	                    hit rate, aggregated per-query Stats/IOStats
//
// The server bounds concurrent query work with an admission semaphore
// (saturation → 429), applies a per-request deadline (the `timeout_ms`
// request field, capped by Config.MaxTimeout) whose expiry cancels the
// query at the pipeline's next checkpoint, and serves repeated queries
// from an LRU cache keyed by (sketch, options).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"ndss/internal/hash"
	"ndss/internal/index"
	"ndss/internal/search"
)

// Backend is the query surface the server needs. *core.Engine satisfies
// it; tests substitute slow or failing implementations.
type Backend interface {
	SearchContext(ctx context.Context, query []uint32, opts search.Options) ([]search.Match, *search.Stats, error)
	SearchTopKContext(ctx context.Context, query []uint32, opts search.TopKOptions) ([]search.Match, *search.Stats, error)
	Explain(query []uint32, opts search.Options) (*search.Plan, error)
	Meta() index.Meta
	Family() *hash.Family
	IOStats() index.IOStats
}

// Config tunes the service. Zero values select the defaults.
type Config struct {
	// MaxInFlight bounds concurrently executing queries (admission
	// semaphore); excess requests get 429. Default 64.
	MaxInFlight int
	// DefaultTimeout applies when a request carries no timeout_ms.
	// Default 10s.
	DefaultTimeout time.Duration
	// MaxTimeout caps any requested timeout. Default 60s.
	MaxTimeout time.Duration
	// CacheEntries sizes the result LRU. Default 256; negative disables
	// caching.
	CacheEntries int
}

func (c *Config) setDefaults() {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
}

// Server is the HTTP query service. Create with New, serve via any
// http.Server (it implements http.Handler), and call BeginShutdown
// before http.Server.Shutdown so health checks fail first and new
// queries are refused while in-flight ones drain.
type Server struct {
	backend Backend
	cfg     Config
	sem     chan struct{}
	cache   *resultCache // nil when disabled
	met     metrics
	mux     *http.ServeMux
	closing atomic.Bool
}

// New builds a Server over an opened backend.
func New(b Backend, cfg Config) *Server {
	cfg.setDefaults()
	s := &Server{
		backend: b,
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.MaxInFlight),
		cache:   newResultCache(cfg.CacheEntries),
		met:     metrics{start: time.Now()},
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/search", s.handleSearch)
	s.mux.HandleFunc("/search/topk", s.handleTopK)
	s.mux.HandleFunc("/explain", s.handleExplain)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// BeginShutdown flips the server into draining mode: /healthz reports
// 503 (load balancers stop routing here) and new query requests are
// refused, while requests already executing run to completion. Pair
// with http.Server.Shutdown, which waits for the in-flight ones.
func (s *Server) BeginShutdown() { s.closing.Store(true) }

// searchRequest is the JSON body of /search, /search/topk and /explain.
type searchRequest struct {
	Tokens []uint32 `json:"tokens"`
	Theta  float64  `json:"theta"`

	MinLength         int  `json:"min_length,omitempty"`
	PrefixFilter      bool `json:"prefix_filter,omitempty"`
	LongListThreshold int  `json:"long_list_threshold,omitempty"`
	CostBased         bool `json:"cost_based,omitempty"`
	Verify            bool `json:"verify,omitempty"`

	// TimeoutMS bounds this request's execution; 0 selects the server
	// default.
	TimeoutMS int `json:"timeout_ms,omitempty"`

	// Top-k only.
	N          int     `json:"n,omitempty"`
	FloorTheta float64 `json:"floor_theta,omitempty"`
}

func (r searchRequest) options() search.Options {
	return search.Options{
		Theta:             r.Theta,
		MinLength:         r.MinLength,
		PrefixFilter:      r.PrefixFilter,
		LongListThreshold: r.LongListThreshold,
		CostBasedPrefix:   r.CostBased,
		Verify:            r.Verify,
	}
}

type matchJSON struct {
	TextID     uint32  `json:"text_id"`
	Start      int32   `json:"start"`
	End        int32   `json:"end"`
	Collisions int     `json:"collisions"`
	EstJaccard float64 `json:"est_jaccard"`
	Jaccard    float64 `json:"jaccard,omitempty"`
}

type statsJSON struct {
	K          int   `json:"k"`
	Beta       int   `json:"beta"`
	ShortLists int   `json:"short_lists"`
	LongLists  int   `json:"long_lists"`
	Candidates int   `json:"candidates"`
	Probed     int   `json:"probed"`
	Matches    int   `json:"matches"`
	IOBytes    int64 `json:"io_bytes"`
	IOTimeNS   int64 `json:"io_time_ns"`
	CPUTimeNS  int64 `json:"cpu_time_ns"`
	TotalNS    int64 `json:"total_ns"`
}

type searchResponse struct {
	Matches []matchJSON `json:"matches"`
	Stats   statsJSON   `json:"stats"`
	Cached  bool        `json:"cached,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func toMatchJSON(ms []search.Match) []matchJSON {
	out := make([]matchJSON, len(ms))
	for i, m := range ms {
		out[i] = matchJSON{
			TextID: m.TextID, Start: m.Start, End: m.End,
			Collisions: m.Collisions, EstJaccard: m.EstJaccard, Jaccard: m.Jaccard,
		}
	}
	return out
}

func toStatsJSON(st search.Stats) statsJSON {
	return statsJSON{
		K: st.K, Beta: st.Beta, ShortLists: st.ShortLists, LongLists: st.LongLists,
		Candidates: st.Candidates, Probed: st.Probed, Matches: st.Matches,
		IOBytes: st.IOBytes, IOTimeNS: int64(st.IOTime), CPUTimeNS: int64(st.CPUTime),
		TotalNS: int64(st.Total),
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	switch status {
	case http.StatusBadRequest:
		s.met.badInput.Add(1)
	case http.StatusTooManyRequests:
		s.met.rejected.Add(1)
	case http.StatusServiceUnavailable:
		s.met.refused.Add(1)
	case http.StatusGatewayTimeout:
		s.met.timeouts.Add(1)
	case http.StatusInternalServerError:
		s.met.internals.Add(1)
	}
	writeJSON(w, status, errorResponse{Error: msg})
}

// decodeRequest parses a query request from a POST JSON body, or — for
// /explain convenience — from URL query parameters on GET.
func decodeRequest(r *http.Request) (searchRequest, error) {
	var req searchRequest
	if r.Method == http.MethodGet {
		q := r.URL.Query()
		if _, err := fmt.Sscanf(q.Get("theta"), "%g", &req.Theta); err != nil {
			return req, fmt.Errorf("theta parameter: %w", err)
		}
		for _, part := range splitTokens(q.Get("tokens")) {
			var tok uint32
			if _, err := fmt.Sscanf(part, "%d", &tok); err != nil {
				return req, fmt.Errorf("bad token %q", part)
			}
			req.Tokens = append(req.Tokens, tok)
		}
		req.PrefixFilter = q.Get("prefix_filter") == "true" || q.Get("prefix_filter") == "1"
		req.CostBased = q.Get("cost_based") == "true" || q.Get("cost_based") == "1"
		return req, nil
	}
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("decode request: %w", err)
	}
	return req, nil
}

func splitTokens(s string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' || s[i] == ' ' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	return out
}

// admit reserves an execution slot, or reports why it could not. The
// returned release func is non-nil iff admission succeeded.
func (s *Server) admit(w http.ResponseWriter) func() {
	if s.closing.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return nil
	}
	select {
	case s.sem <- struct{}{}:
	default:
		s.writeError(w, http.StatusTooManyRequests, "server saturated: too many in-flight queries")
		return nil
	}
	s.met.inFlight.Add(1)
	return func() {
		s.met.inFlight.Add(-1)
		<-s.sem
	}
}

// deadline derives the request's execution context.
func (s *Server) deadline(r *http.Request, req searchRequest) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		d = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return context.WithTimeout(r.Context(), d)
}

// finish maps a query error onto an HTTP response and the counters.
func (s *Server) finish(w http.ResponseWriter, err error) bool {
	switch {
	case err == nil:
		return true
	case errors.Is(err, context.DeadlineExceeded):
		s.writeError(w, http.StatusGatewayTimeout, "deadline exceeded")
	case errors.Is(err, context.Canceled):
		// Client went away; nobody reads the response, but account for it.
		s.met.canceled.Add(1)
		w.WriteHeader(499) // client closed request (nginx convention)
	default:
		s.writeError(w, http.StatusInternalServerError, err.Error())
	}
	return false
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	req, err := decodeRequest(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.serveQuery(w, r, req, false)
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	req, err := decodeRequest(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.N <= 0 {
		s.writeError(w, http.StatusBadRequest, "n must be positive")
		return
	}
	s.serveQuery(w, r, req, true)
}

// serveQuery is the shared execution path of /search and /search/topk:
// validate → cache probe → admission → deadline → query → respond.
func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, req searchRequest, topk bool) {
	start := time.Now()
	if s.closing.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	if len(req.Tokens) == 0 {
		s.writeError(w, http.StatusBadRequest, "empty query: tokens required")
		return
	}
	opts := req.options()
	theta := opts.Theta
	if topk {
		theta = req.FloorTheta
		if theta == 0 {
			theta = 0.5 // SearchTopK's default floor; keep the key aligned
		}
	}
	if theta <= 0 || theta > 1 {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("theta must be in (0, 1], got %v", theta))
		return
	}
	sketch, err := s.backend.Family().Sketch(req.Tokens)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	kind, n, floor := byte('S'), 0, 0.0
	if topk {
		kind, n, floor = 'K', req.N, theta
	}
	key := cacheKey(kind, sketch, req.Tokens, opts, n, floor)
	if s.cache != nil {
		if e, ok := s.cache.get(key); ok {
			s.met.requests.Add(1)
			s.bumpEndpoint(topk)
			s.met.cacheHits.Add(1)
			writeJSON(w, http.StatusOK, searchResponse{
				Matches: toMatchJSON(e.matches), Stats: toStatsJSON(e.stats), Cached: true,
			})
			s.met.latency.observe(time.Since(start))
			return
		}
	}

	release := s.admit(w)
	if release == nil {
		return
	}
	defer release()
	s.met.requests.Add(1)
	s.bumpEndpoint(topk)
	if s.cache != nil {
		s.met.cacheMisses.Add(1)
	}

	ctx, cancel := s.deadline(r, req)
	defer cancel()

	var (
		matches []search.Match
		st      *search.Stats
	)
	if topk {
		matches, st, err = s.backend.SearchTopKContext(ctx, req.Tokens, search.TopKOptions{
			N: req.N, FloorTheta: req.FloorTheta, Search: opts,
		})
	} else {
		matches, st, err = s.backend.SearchContext(ctx, req.Tokens, opts)
	}
	if err != nil {
		// Validation errors surface as 400, not 500.
		if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
			s.writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		s.finish(w, err)
		return
	}
	s.met.recordStats(st)
	if s.cache != nil {
		s.cache.put(&cacheEntry{key: key, matches: matches, stats: *st})
	}
	writeJSON(w, http.StatusOK, searchResponse{Matches: toMatchJSON(matches), Stats: toStatsJSON(*st)})
	s.met.latency.observe(time.Since(start))
}

func (s *Server) bumpEndpoint(topk bool) {
	if topk {
		s.met.topk.Add(1)
	} else {
		s.met.searches.Add(1)
	}
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		w.Header().Set("Allow", "GET, POST")
		s.writeError(w, http.StatusMethodNotAllowed, "GET or POST required")
		return
	}
	req, err := decodeRequest(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.Tokens) == 0 {
		s.writeError(w, http.StatusBadRequest, "empty query: tokens required")
		return
	}
	release := s.admit(w)
	if release == nil {
		return
	}
	defer release()
	s.met.requests.Add(1)
	s.met.explains.Add(1)
	plan, err := s.backend.Explain(req.Tokens, req.options())
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"beta":     plan.Beta,
		"alpha":    plan.Alpha,
		"num_long": plan.NumLong,
		"cutoff":   plan.Cutoff,
		"long":     plan.Long,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.closing.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "shutting_down"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	cacheLen, cacheCap := 0, 0
	if s.cache != nil {
		cacheLen, cacheCap = s.cache.len(), s.cfg.CacheEntries
	}
	meta := s.backend.Meta()
	io := s.backend.IOStats()
	writeJSON(w, http.StatusOK, s.met.snapshot(cacheLen, cacheCap, indexSnapshot{
		K: meta.K, T: meta.T, NumTexts: meta.NumTexts,
		BytesRead: io.BytesRead, ReadTimeNS: int64(io.ReadTime),
	}))
}
