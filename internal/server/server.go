// Package server exposes an opened ndss index as an HTTP JSON query
// service: the production layer the paper's deployment story implies
// (memorization audits are sustained query traffic against one index).
//
// Endpoints:
//
//	POST /search         near-duplicate search (search.Options over JSON)
//	POST /search/topk    ranked top-k retrieval
//	GET|POST /explain    the deferral plan a query would run with (no I/O)
//	GET  /healthz        liveness; 503 once shutdown has begun; reports
//	                     the active index build id
//	GET  /metrics        Prometheus text exposition (default) or the JSON
//	                     counters for Accept: application/json: requests,
//	                     per-endpoint and per-stage latency histograms,
//	                     cache hit rate, Go runtime gauges
//	GET  /debug/slowlog  the slow-query flight recorder: stage-annotated
//	                     traces of the slowest and most recent queries
//	POST /admin/reload   zero-downtime hot swap to a freshly opened
//	                     backend (requires Config.Reloader)
//	POST /ingest         append new texts as a fresh index segment and
//	                     hot-swap so they are searchable on return
//	                     (requires Config.Ingester and Config.Reloader)
//	POST /admin/compact  merge the index's segment set into one segment,
//	                     dropping tombstoned texts, then hot-swap
//	                     (requires Config.Compactor and Config.Reloader)
//
// The server bounds concurrent query work with an admission semaphore
// (saturation → 429), applies a per-request deadline (the `timeout_ms`
// request field, capped by Config.MaxTimeout) whose expiry cancels the
// query at the pipeline's next checkpoint, and serves repeated queries
// from an LRU cache keyed by (sketch, options).
//
// Every request carries a request ID (client-supplied X-Request-ID or
// generated), echoed in the response headers and error bodies and
// stamped on the structured access log Config.Logger receives. Queries
// slower than Config.SlowQueryThreshold additionally log their full
// per-stage breakdown, and every executed query's trace enters the
// flight recorder served at /debug/slowlog.
//
// The backend is held behind a reference-counted handle so Reload can
// swap in a rebuilt index with zero failed requests: new queries land
// on the new backend immediately, in-flight queries drain on the old
// one, and only then is the old backend closed and the result cache
// flushed.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ndss/internal/hash"
	"ndss/internal/index"
	"ndss/internal/obs"
	"ndss/internal/search"
	"ndss/internal/shard"
)

// Backend is the query surface the server needs. *core.Engine satisfies
// it; tests substitute slow or failing implementations. A Backend that
// also implements io.Closer is closed when a reload replaces it.
type Backend interface {
	SearchContext(ctx context.Context, query []uint32, opts search.Options) ([]search.Match, *search.Stats, error)
	SearchTopKContext(ctx context.Context, query []uint32, opts search.TopKOptions) ([]search.Match, *search.Stats, error)
	Explain(ctx context.Context, query []uint32, opts search.Options) (*search.Plan, error)
	Meta() index.Meta
	Family() *hash.Family
	IOStats() index.IOStats
	// BuildID identifies the index build behind this backend, surfaced
	// in /healthz and /metrics so operators can confirm a reload took.
	BuildID() string
}

// Config tunes the service. Zero values select the defaults.
type Config struct {
	// MaxInFlight bounds concurrently executing queries (admission
	// semaphore); excess requests get 429. Default 64.
	MaxInFlight int
	// DefaultTimeout applies when a request carries no timeout_ms.
	// Default 10s.
	DefaultTimeout time.Duration
	// MaxTimeout caps any requested timeout. Default 60s.
	MaxTimeout time.Duration
	// CacheEntries sizes the result LRU. Default 256; negative disables
	// caching.
	CacheEntries int
	// Reloader opens a fresh backend for Reload / POST /admin/reload.
	// Nil disables hot reload (the endpoint answers 501).
	Reloader func() (Backend, error)
	// Ingester appends new texts to the index as a fresh segment (the
	// POST /ingest mutation) and reports the committed build id. It runs
	// with the old backend still serving; the server hot-swaps via
	// Reloader once it returns, so Ingester requires Reloader. Nil
	// disables ingest (501).
	Ingester func(texts [][]uint32) (buildID string, err error)
	// Compactor merges the index's segment set into one segment (the
	// POST /admin/compact mutation), hot-swapped like Ingester. Nil
	// disables compaction (501).
	Compactor func() error
	// CompactAfter triggers a background compaction after an ingest
	// leaves the index with more than this many segments. Zero disables
	// automatic compaction (manual POST /admin/compact still works).
	CompactAfter int
	// Logger receives the structured access log, slow-query warnings,
	// and reload events. Nil discards everything.
	Logger *slog.Logger
	// SlowQueryThreshold logs a warning with the full per-stage
	// breakdown for executed queries at least this slow. Zero disables
	// the warning (the flight recorder still records every query).
	SlowQueryThreshold time.Duration
	// SlowlogEntries sizes each view (slowest, most recent) of the
	// slow-query flight recorder at /debug/slowlog. Default 32;
	// negative disables the recorder.
	SlowlogEntries int
	// TraceSampleRate head-samples queries into full distributed
	// tracing: a sampled query's traceparent carries the sampling bit,
	// so every shard leg ships its complete span list back for flight
	// assembly. 0 (the default) never head-samples; tail-based
	// retention below still keeps the traces that matter. Values are
	// clamped to [0, 1].
	TraceSampleRate float64
	// TraceStoreEntries sizes each ring (tail-retained, head-sampled)
	// of the bounded trace store behind /debug/trace/{request_id}.
	// Retention is decided at completion, not admission: slow,
	// errored, partial-result, retried, or hedged queries are always
	// kept. Default 128; negative disables the store (501).
	TraceStoreEntries int
	// WideEvents emits one INFO "query" log line per executed query
	// carrying the full cross-process breakdown (ids, stage split,
	// I/O, per-shard legs and attempts) — the one-line-per-request
	// "wide event" that makes log-based debugging possible without
	// sampling. Off by default.
	WideEvents bool
}

func (c *Config) setDefaults() {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.TraceSampleRate < 0 {
		c.TraceSampleRate = 0
	}
	if c.TraceSampleRate > 1 {
		c.TraceSampleRate = 1
	}
}

// Server is the HTTP query service. Create with New, serve via any
// http.Server (it implements http.Handler), and call BeginShutdown
// before http.Server.Shutdown so health checks fail first and new
// queries are refused while in-flight ones drain.
type Server struct {
	mu     sync.RWMutex   // guards handle swaps
	handle *backendHandle // guarded by mu; current backend + its in-flight refcount

	reloadMu sync.Mutex // serializes Reload calls
	mutateMu sync.Mutex // serializes index mutations (ingest/compact)

	compacting atomic.Bool    // single-flight guard for auto-compaction
	compactWG  sync.WaitGroup // tracks the background compaction goroutine

	cfg     Config
	sem     chan struct{}
	cache   *resultCache // nil when disabled
	met     metrics
	slow    *slowlog    // nil when disabled
	trace   *traceStore // nil when disabled
	log     *slog.Logger
	mux     *http.ServeMux
	closing atomic.Bool
}

// backendHandle pairs a backend with the WaitGroup counting requests
// executing against it, so a reload can drain the old backend before
// closing it.
type backendHandle struct {
	b  Backend
	wg sync.WaitGroup
}

// New builds a Server over an opened backend.
func New(b Backend, cfg Config) *Server {
	cfg.setDefaults()
	s := &Server{
		handle: &backendHandle{b: b},
		cfg:    cfg,
		sem:    make(chan struct{}, cfg.MaxInFlight),
		cache:  newResultCache(cfg.CacheEntries),
		met:    metrics{start: time.Now()},
		slow:   newSlowlog(cfg.SlowlogEntries),
		trace:  newTraceStore(cfg.TraceStoreEntries),
		log:    cfg.Logger,
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/search", s.handleSearch)
	s.mux.HandleFunc("/search/topk", s.handleTopK)
	s.mux.HandleFunc("/explain", s.handleExplain)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/slowlog", s.handleSlowlog)
	s.mux.HandleFunc("/debug/trace/", s.handleTrace)
	s.mux.HandleFunc("/admin/reload", s.handleReload)
	s.mux.HandleFunc("/ingest", s.handleIngest)
	s.mux.HandleFunc("/admin/compact", s.handleCompact)
	return s
}

// acquire pins the current backend for one request. The returned
// release must be called when the request is done with it; the RLock
// makes the load-and-increment atomic against a concurrent swap.
func (s *Server) acquire() (Backend, func()) {
	s.mu.RLock()
	h := s.handle
	h.wg.Add(1)
	s.mu.RUnlock()
	return h.b, h.wg.Done
}

// backend returns the current backend for read-only snapshot use
// (healthz/metrics); it does not pin against a swap.
func (s *Server) backend() Backend {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.handle.b
}

// ErrNoReloader is returned by Reload when the server was configured
// without a Reloader.
var ErrNoReloader = errors.New("server: no reloader configured")

// Reload hot-swaps the backend with zero downtime: it opens a fresh
// backend via Config.Reloader, atomically redirects new queries to it,
// waits for queries in flight on the old backend to drain, closes the
// old backend (when it implements io.Closer) and flushes the result
// cache, whose entries belong to the old index. If the reloader fails,
// the old backend keeps serving untouched.
//
// Reloads are serialized; concurrent calls run one at a time.
func (s *Server) Reload() (oldID, newID string, err error) {
	if s.cfg.Reloader == nil {
		return "", "", ErrNoReloader
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	nb, err := s.cfg.Reloader()
	if err != nil {
		s.met.reloadFailures.Add(1)
		s.log.Error("reload failed, keeping previous backend", "error", err)
		return "", "", fmt.Errorf("server: reload backend: %w", err)
	}
	next := &backendHandle{b: nb}
	s.mu.Lock()
	prev := s.handle
	s.handle = next
	s.mu.Unlock()
	// Drain queries still executing against the old backend, then close
	// it. The cache flush comes after the drain so results those last
	// old-index queries insert are flushed too.
	if s.cache != nil {
		// Drop old-index results for new queries right away; a second
		// flush after the drain catches entries the last old-backend
		// queries still insert.
		s.cache.flush()
	}
	prev.wg.Wait()
	if s.cache != nil {
		s.cache.flush()
	}
	if c, ok := prev.b.(io.Closer); ok {
		c.Close()
	}
	s.met.reloads.Add(1)
	s.log.Info("backend reloaded", "old_build_id", prev.b.BuildID(), "build_id", nb.BuildID())
	return prev.b.BuildID(), nb.BuildID(), nil
}

// handleReload is POST /admin/reload.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, r, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.closing.Load() {
		s.writeError(w, r, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	oldID, newID, err := s.Reload()
	switch {
	case errors.Is(err, ErrNoReloader):
		s.writeError(w, r, http.StatusNotImplemented, ErrNoReloader.Error())
	case err != nil:
		s.writeError(w, r, http.StatusInternalServerError, err.Error())
	default:
		writeJSON(w, http.StatusOK, map[string]string{
			"status": "reloaded", "old_build_id": oldID, "build_id": newID,
		})
	}
}

// ErrNoIngester is returned by Ingest when the server was configured
// without an Ingester.
var ErrNoIngester = errors.New("server: no ingester configured")

// ErrNoCompactor is returned by Compact when the server was configured
// without a Compactor.
var ErrNoCompactor = errors.New("server: no compactor configured")

// SwapError reports a mutation that durably committed a new index build
// but failed to swap a reloaded backend into service. The mutation is
// NOT safe to retry blindly: the texts (or the compaction) are already
// part of the on-disk index under CommittedBuildID, so a re-ingest of
// the same texts would duplicate them. The right recovery is to retry
// the swap alone (POST /admin/reload) and confirm the reported build id
// is serving. Unwrap exposes the reload failure.
type SwapError struct {
	// Op is the mutation that committed: "ingest" or "compact".
	Op string
	// CommittedBuildID is the build the mutation committed on disk
	// ("" for compact, whose compactor does not report one).
	CommittedBuildID string
	// Err is the reload failure that left the old backend serving.
	Err error
}

func (e *SwapError) Error() string {
	if e.CommittedBuildID != "" {
		return fmt.Sprintf("server: %s committed build %s but backend swap failed (do not re-run the %s; reload instead): %v",
			e.Op, e.CommittedBuildID, e.Op, e.Err)
	}
	return fmt.Sprintf("server: %s committed but backend swap failed (reload instead of re-running): %v", e.Op, e.Err)
}

func (e *SwapError) Unwrap() error { return e.Err }

// Ingest appends texts to the index as a fresh segment and hot-swaps to
// a backend that serves them; on return the texts are searchable. The
// old backend keeps serving throughout — an append only writes new
// files plus a manifest commit, never touching live segments — so
// queries see zero failed requests. Mutations are serialized: a
// concurrent Ingest or Compact waits its turn.
func (s *Server) Ingest(texts [][]uint32) (buildID string, err error) {
	if s.cfg.Ingester == nil {
		return "", ErrNoIngester
	}
	s.mutateMu.Lock()
	defer s.mutateMu.Unlock()
	committedID, err := s.cfg.Ingester(texts)
	if err != nil {
		// Nothing committed: the append failed before its manifest
		// rename, so retrying this exact ingest is safe.
		return "", fmt.Errorf("server: ingest: %w", err)
	}
	_, newID, err := s.Reload()
	if err != nil {
		// The append IS durable — only the swap failed. Surface the
		// committed build id and a typed error so callers don't retry
		// the append (which would duplicate the texts) when a plain
		// reload is what's needed.
		s.log.Error("ingest committed but backend swap failed; reload to serve it, do not re-ingest",
			"committed_build_id", committedID, "texts", len(texts), "error", err)
		return committedID, &SwapError{Op: "ingest", CommittedBuildID: committedID, Err: err}
	}
	s.met.ingests.Add(1)
	s.log.Info("ingested texts", "texts", len(texts), "build_id", newID)
	s.maybeAutoCompact()
	return newID, nil
}

// Compact merges the index's segment set into one segment (dropping
// tombstoned texts) and hot-swaps to the compacted backend. Like
// Ingest, the old backend serves until the swap: compaction stages the
// merged segment beside the live files and commits atomically.
func (s *Server) Compact() (buildID string, err error) {
	if s.cfg.Compactor == nil {
		return "", ErrNoCompactor
	}
	s.mutateMu.Lock()
	defer s.mutateMu.Unlock()
	return s.compactLocked()
}

func (s *Server) compactLocked() (string, error) {
	if err := s.cfg.Compactor(); err != nil {
		return "", fmt.Errorf("server: compact: %w", err)
	}
	_, newID, err := s.Reload()
	if err != nil {
		s.log.Error("compaction committed but backend swap failed; reload to serve it",
			"error", err)
		return "", &SwapError{Op: "compact", Err: err}
	}
	s.met.compactions.Add(1)
	s.log.Info("index compacted", "build_id", newID)
	return newID, nil
}

// maybeAutoCompact starts a background compaction when the active
// backend's segment count exceeds Config.CompactAfter. Single-flight:
// while one background compaction runs, further triggers are no-ops.
// Called with mutateMu held; the goroutine re-acquires it.
func (s *Server) maybeAutoCompact() {
	if s.cfg.CompactAfter <= 0 || s.cfg.Compactor == nil {
		return
	}
	if segmentCount(s.backend()) <= s.cfg.CompactAfter {
		return
	}
	if !s.compacting.CompareAndSwap(false, true) {
		return
	}
	s.compactWG.Add(1)
	go func() {
		defer s.compactWG.Done()
		defer s.compacting.Store(false)
		s.mutateMu.Lock()
		defer s.mutateMu.Unlock()
		if _, err := s.compactLocked(); err != nil {
			s.log.Error("background compaction failed", "error", err)
		}
	}()
}

// segmentCount reports how many segments back the given backend, via
// the optional interface *core.Engine (and *index.Index) implement.
// Backends without segment awareness count as one segment.
func segmentCount(b Backend) int {
	if sc, ok := b.(interface{ SegmentCount() int }); ok {
		return sc.SegmentCount()
	}
	return 1
}

// ingestRequest is the JSON body of POST /ingest.
type ingestRequest struct {
	Texts [][]uint32 `json:"texts"`
}

// handleIngest is POST /ingest.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, r, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.closing.Load() {
		s.writeError(w, r, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	var req ingestRequest
	// The real ResponseWriter must reach MaxBytesReader: on an over-limit
	// body it sets Connection: close, so the unread bytes cannot desync
	// the next keep-alive request on this connection.
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, r, decodeStatus(err), fmt.Sprintf("decode request: %v", err))
		return
	}
	if len(req.Texts) == 0 {
		s.writeError(w, r, http.StatusBadRequest, "empty ingest: texts required")
		return
	}
	for i, txt := range req.Texts {
		if len(txt) == 0 {
			s.writeError(w, r, http.StatusBadRequest, fmt.Sprintf("text %d is empty", i))
			return
		}
	}
	buildID, err := s.Ingest(req.Texts)
	var swapErr *SwapError
	switch {
	case errors.Is(err, ErrNoIngester):
		s.writeError(w, r, http.StatusNotImplemented, ErrNoIngester.Error())
	case errors.As(err, &swapErr):
		// The append is durable; only the serving swap failed. Tell the
		// client exactly that, with the committed build id, so its retry
		// is a reload — not a duplicate ingest.
		s.met.internals.Add(1)
		writeJSON(w, http.StatusInternalServerError, map[string]any{
			"error":              swapErr.Error(),
			"status":             "committed_swap_failed",
			"committed_build_id": swapErr.CommittedBuildID,
			"request_id":         RequestIDFromContext(r.Context()),
		})
	case err != nil:
		s.writeError(w, r, http.StatusInternalServerError, err.Error())
	default:
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "ingested", "texts": len(req.Texts), "build_id": buildID,
		})
	}
}

// handleCompact is POST /admin/compact.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, r, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.closing.Load() {
		s.writeError(w, r, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	buildID, err := s.Compact()
	switch {
	case errors.Is(err, ErrNoCompactor):
		s.writeError(w, r, http.StatusNotImplemented, ErrNoCompactor.Error())
	case err != nil:
		s.writeError(w, r, http.StatusInternalServerError, err.Error())
	default:
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "compacted", "build_id": buildID,
			"segments": segmentCount(s.backend()),
		})
	}
}

// ServeHTTP implements http.Handler: it assigns the request its ID,
// echoes it as X-Request-ID, joins or mints the request's trace
// context, and emits one structured access-log line per request once
// the handler returns. A coordinator-forwarded request id lands in
// this access log, so coordinator and shard logs join on it even for
// queries whose trace was never sampled.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	id := requestIDFor(r)
	w.Header().Set(obs.HeaderRequestID, id)
	ctx := obs.ContextWithRequestID(r.Context(), id)
	// Join the caller's trace when a valid traceparent came in (the
	// coordinator → shard hop); otherwise this process is the serving
	// edge and mints the root, deciding head-sampling here. Tail-based
	// retention is decided at completion, in recordQuery, regardless.
	tc, joined := obs.ParseTraceparent(r.Header.Get(obs.HeaderTraceparent))
	if !joined {
		tc = obs.NewTraceContext(s.sampleTrace())
	}
	ctx = obs.ContextWithTrace(ctx, tc)
	r = r.WithContext(ctx)
	sw := &statusWriter{ResponseWriter: w}
	s.mux.ServeHTTP(sw, r)
	status := sw.status
	if status == 0 {
		status = http.StatusOK
	}
	s.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
		slog.String("request_id", id),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", status),
		slog.Duration("duration", time.Since(start)),
	)
}

// BeginShutdown flips the server into draining mode: /healthz reports
// 503 (load balancers stop routing here) and new query requests are
// refused, while requests already executing run to completion. Pair
// with http.Server.Shutdown, which waits for the in-flight ones.
func (s *Server) BeginShutdown() { s.closing.Store(true) }

// searchRequest is the JSON body of /search, /search/topk and /explain.
type searchRequest struct {
	Tokens []uint32 `json:"tokens"`
	Theta  float64  `json:"theta"`

	MinLength         int  `json:"min_length,omitempty"`
	PrefixFilter      bool `json:"prefix_filter,omitempty"`
	LongListThreshold int  `json:"long_list_threshold,omitempty"`
	CostBased         bool `json:"cost_based,omitempty"`
	Verify            bool `json:"verify,omitempty"`

	// TimeoutMS bounds this request's execution; 0 selects the server
	// default.
	TimeoutMS int `json:"timeout_ms,omitempty"`

	// Top-k only.
	N          int     `json:"n,omitempty"`
	FloorTheta float64 `json:"floor_theta,omitempty"`
}

func (r searchRequest) options() search.Options {
	return search.Options{
		Theta:             r.Theta,
		MinLength:         r.MinLength,
		PrefixFilter:      r.PrefixFilter,
		LongListThreshold: r.LongListThreshold,
		CostBasedPrefix:   r.CostBased,
		Verify:            r.Verify,
	}
}

type matchJSON struct {
	TextID     uint32  `json:"text_id"`
	Start      int32   `json:"start"`
	End        int32   `json:"end"`
	Collisions int     `json:"collisions"`
	EstJaccard float64 `json:"est_jaccard"`
	Jaccard    float64 `json:"jaccard,omitempty"`
}

// stageTimesJSON is the stable wire shape of search.StageTimes inside
// /search's stats. Field names are pinned by TestStatsWireFormatGolden.
type stageTimesJSON struct {
	SketchNS int64 `json:"sketch_ns"`
	PlanNS   int64 `json:"plan_ns"`
	GatherNS int64 `json:"gather_ns"`
	CountNS  int64 `json:"count_ns"`
	MergeNS  int64 `json:"merge_ns"`
	VerifyNS int64 `json:"verify_ns"`
}

type statsJSON struct {
	K          int            `json:"k"`
	Beta       int            `json:"beta"`
	ShortLists int            `json:"short_lists"`
	LongLists  int            `json:"long_lists"`
	Candidates int            `json:"candidates"`
	Probed     int            `json:"probed"`
	Matches    int            `json:"matches"`
	IOBytes    int64          `json:"io_bytes"`
	IOTimeNS   int64          `json:"io_time_ns"`
	CPUTimeNS  int64          `json:"cpu_time_ns"`
	TotalNS    int64          `json:"total_ns"`
	Stages     stageTimesJSON `json:"stages"`

	// Scatter–gather attribution, present only for sharded backends.
	// shards_answered < shards_total flags a partial result.
	ShardsTotal    int                 `json:"shards_total,omitempty"`
	ShardsAnswered int                 `json:"shards_answered,omitempty"`
	PerShard       []search.ShardStats `json:"per_shard,omitempty"`

	// Spans is this process's own span list, present only when the
	// request's trace context carried the sampling bit — it is how a
	// shard ships its stage spans (io_bytes attrs included) back to
	// the coordinator for flight assembly.
	Spans []obs.Span `json:"spans,omitempty"`
}

type searchResponse struct {
	Matches []matchJSON `json:"matches"`
	Stats   statsJSON   `json:"stats"`
	Cached  bool        `json:"cached,omitempty"`
}

type errorResponse struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

func toMatchJSON(ms []search.Match) []matchJSON {
	out := make([]matchJSON, len(ms))
	for i, m := range ms {
		out[i] = matchJSON{
			TextID: m.TextID, Start: m.Start, End: m.End,
			Collisions: m.Collisions, EstJaccard: m.EstJaccard, Jaccard: m.Jaccard,
		}
	}
	return out
}

func toStageTimesJSON(t search.StageTimes) stageTimesJSON {
	return stageTimesJSON{
		SketchNS: int64(t.Sketch), PlanNS: int64(t.Plan), GatherNS: int64(t.Gather),
		CountNS: int64(t.Count), MergeNS: int64(t.Merge), VerifyNS: int64(t.Verify),
	}
}

func toStatsJSON(st search.Stats) statsJSON {
	return statsJSON{
		K: st.K, Beta: st.Beta, ShortLists: st.ShortLists, LongLists: st.LongLists,
		Candidates: st.Candidates, Probed: st.Probed, Matches: st.Matches,
		IOBytes: st.IOBytes, IOTimeNS: int64(st.IOTime), CPUTimeNS: int64(st.CPUTime),
		TotalNS: int64(st.Total), Stages: toStageTimesJSON(st.StageTimes),
		ShardsTotal: st.ShardsTotal, ShardsAnswered: st.ShardsAnswered,
		PerShard: st.PerShard,
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, msg string) {
	switch status {
	case http.StatusBadRequest:
		s.met.badInput.Add(1)
	case http.StatusRequestEntityTooLarge:
		s.met.tooLarge.Add(1)
	case http.StatusTooManyRequests:
		s.met.rejected.Add(1)
	case http.StatusServiceUnavailable:
		s.met.refused.Add(1)
	case http.StatusGatewayTimeout:
		s.met.timeouts.Add(1)
	case http.StatusInternalServerError:
		s.met.internals.Add(1)
	}
	writeJSON(w, status, errorResponse{Error: msg, RequestID: RequestIDFromContext(r.Context())})
}

// maxQueryBodyBytes and maxIngestBodyBytes cap request bodies. They are
// package variables only so the over-limit regression tests can shrink
// them to practical sizes.
var (
	maxQueryBodyBytes  int64 = 64 << 20
	maxIngestBodyBytes int64 = 256 << 20
)

// decodeStatus maps a request-decoding error to its HTTP status: an
// over-limit body is the client sending too much (413), anything else
// is a malformed request (400).
func decodeStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// decodeRequest parses a query request from a POST JSON body, or — for
// /explain convenience — from URL query parameters on GET. The
// ResponseWriter is handed to MaxBytesReader so an over-limit body
// closes the connection instead of leaving unread bytes to desync
// keep-alive.
func decodeRequest(w http.ResponseWriter, r *http.Request) (searchRequest, error) {
	var req searchRequest
	if r.Method == http.MethodGet {
		q := r.URL.Query()
		if _, err := fmt.Sscanf(q.Get("theta"), "%g", &req.Theta); err != nil {
			return req, fmt.Errorf("theta parameter: %w", err)
		}
		for _, part := range splitTokens(q.Get("tokens")) {
			var tok uint32
			if _, err := fmt.Sscanf(part, "%d", &tok); err != nil {
				return req, fmt.Errorf("bad token %q", part)
			}
			req.Tokens = append(req.Tokens, tok)
		}
		req.PrefixFilter = q.Get("prefix_filter") == "true" || q.Get("prefix_filter") == "1"
		req.CostBased = q.Get("cost_based") == "true" || q.Get("cost_based") == "1"
		return req, nil
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxQueryBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("decode request: %w", err)
	}
	return req, nil
}

func splitTokens(s string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' || s[i] == ' ' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	return out
}

// admit reserves an execution slot, or reports why it could not. The
// returned release func is non-nil iff admission succeeded.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) func() {
	if s.closing.Load() {
		s.writeError(w, r, http.StatusServiceUnavailable, "server is shutting down")
		return nil
	}
	select {
	case s.sem <- struct{}{}:
	default:
		s.writeError(w, r, http.StatusTooManyRequests, "server saturated: too many in-flight queries")
		return nil
	}
	s.met.inFlight.Add(1)
	return func() {
		s.met.inFlight.Add(-1)
		<-s.sem
	}
}

// deadline derives the request's execution context.
func (s *Server) deadline(r *http.Request, req searchRequest) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		d = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return context.WithTimeout(r.Context(), d)
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, r, http.StatusMethodNotAllowed, "POST required")
		return
	}
	req, err := decodeRequest(w, r)
	if err != nil {
		s.writeError(w, r, decodeStatus(err), err.Error())
		return
	}
	s.serveQuery(w, r, req, false)
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, r, http.StatusMethodNotAllowed, "POST required")
		return
	}
	req, err := decodeRequest(w, r)
	if err != nil {
		s.writeError(w, r, decodeStatus(err), err.Error())
		return
	}
	if req.N <= 0 {
		s.writeError(w, r, http.StatusBadRequest, "n must be positive")
		return
	}
	s.serveQuery(w, r, req, true)
}

// serveQuery is the shared execution path of /search and /search/topk:
// validate → cache probe → admission → deadline → query → respond.
//
// Latency accounting invariant: every admitted request — one that was
// served from cache or acquired an execution slot — records exactly one
// latency observation, tagged with its endpoint and outcome. Requests
// turned away before admission (malformed, saturated, shutting down)
// record none. TestLatencyAccounting pins this down.
func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, req searchRequest, topk bool) {
	start := time.Now()
	ep := epSearch
	if topk {
		ep = epTopK
	}
	if s.closing.Load() {
		s.writeError(w, r, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	if len(req.Tokens) == 0 {
		s.writeError(w, r, http.StatusBadRequest, "empty query: tokens required")
		return
	}
	opts := req.options()
	// The server always collects detailed spans: the flight recorder
	// and slow-query log need them, and the copy is one small
	// allocation per executed query.
	opts.Trace = true
	theta := opts.Theta
	if topk {
		theta = req.FloorTheta
		if theta == 0 {
			theta = 0.5 // SearchTopK's default floor; keep the key aligned
		}
	}
	if theta <= 0 || theta > 1 {
		s.writeError(w, r, http.StatusBadRequest, fmt.Sprintf("theta must be in (0, 1], got %v", theta))
		return
	}
	// Pin the backend for the whole request: the sketch and the query
	// must run against the same index even if a reload swaps mid-way.
	backend, releaseBackend := s.acquire()
	defer releaseBackend()
	sketch, err := backend.Family().Sketch(req.Tokens)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}

	kind, n, floor := byte('S'), 0, 0.0
	if topk {
		kind, n, floor = 'K', req.N, theta
	}
	key := cacheKey(kind, sketch, req.Tokens, opts, n, floor)
	if s.cache != nil {
		if e, ok := s.cache.get(key); ok {
			s.met.requests.Add(1)
			s.bumpEndpoint(topk)
			s.met.cacheHits.Add(1)
			writeJSON(w, http.StatusOK, searchResponse{
				Matches: toMatchJSON(e.matches), Stats: toStatsJSON(e.stats), Cached: true,
			})
			s.met.observe(ep, outCached, time.Since(start))
			return
		}
	}

	release := s.admit(w, r)
	if release == nil {
		return
	}
	defer release()
	s.met.requests.Add(1)
	s.bumpEndpoint(topk)
	if s.cache != nil {
		s.met.cacheMisses.Add(1)
	}

	// From here the request is admitted: exactly one observation fires
	// whichever path the query takes.
	out := outInternal
	defer func() { s.met.observe(ep, out, time.Since(start)) }()

	ctx, cancel := s.deadline(r, req)
	defer cancel()

	var (
		matches []search.Match
		st      *search.Stats
	)
	// The pprof labels join CPU profiles to the access log and the
	// trace store: samples taken while this query executes carry its
	// request id and endpoint.
	pprof.Do(ctx, pprof.Labels("request_id", RequestIDFromContext(ctx), "endpoint", ep.String()), func(ctx context.Context) {
		if topk {
			matches, st, err = backend.SearchTopKContext(ctx, req.Tokens, search.TopKOptions{
				N: req.N, FloorTheta: req.FloorTheta, Search: opts,
			})
		} else {
			matches, st, err = backend.SearchContext(ctx, req.Tokens, opts)
		}
	})
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			out = outTimeout
			s.writeError(w, r, http.StatusGatewayTimeout, "deadline exceeded")
		case errors.Is(err, context.Canceled):
			// Client went away; nobody reads the response, but account
			// for it.
			out = outCanceled
			s.met.canceled.Add(1)
			w.WriteHeader(499) // client closed request (nginx convention)
		default:
			// Validation errors surface as 400, not 500.
			out = outBadRequest
			s.writeError(w, r, http.StatusBadRequest, err.Error())
		}
		// Errored executions are always trace-retained (tail-based):
		// there are no spans to graft, but the root records what
		// failed, when, and under which trace id.
		s.recordErrorTrace(r, ep, start, err)
		return
	}
	out = outOK
	s.met.recordStats(st)
	s.recordQuery(r, ep, req, start, st)
	if s.cache != nil {
		s.cache.put(&cacheEntry{key: key, matches: matches, stats: *st})
	}
	resp := searchResponse{Matches: toMatchJSON(matches), Stats: toStatsJSON(*st)}
	// Span shipping is gated on the sampling bit: a sampled query's
	// response carries this process's full span list so the caller (a
	// coordinator, or a person with curl) can assemble the flight.
	if tc, ok := obs.TraceFromContext(r.Context()); ok && tc.Sampled {
		resp.Stats.Spans = st.Spans
	}
	writeJSON(w, http.StatusOK, resp)
}

// countExtraAttempts tallies the retries and hedges behind a sharded
// query's answer.
func countExtraAttempts(st *search.Stats) (retries, hedges int) {
	for i := range st.PerShard {
		for _, a := range st.PerShard[i].Attempts {
			if a.Attempt == 0 {
				continue
			}
			if a.Hedge {
				hedges++
			} else {
				retries++
			}
		}
	}
	return retries, hedges
}

// recordQuery feeds one executed query into the flight recorder, the
// trace store (tail-based: retention decided here, at completion), the
// wide-event log when enabled, and, past the slow threshold, the
// structured log.
func (s *Server) recordQuery(r *http.Request, ep endpoint, req searchRequest, start time.Time, st *search.Stats) {
	dur := time.Since(start)
	id := RequestIDFromContext(r.Context())
	retries, hedges := countExtraAttempts(st)
	tc, _ := obs.TraceFromContext(r.Context())
	if tc.Sampled {
		s.met.traceSampled.Add(1)
	}
	if s.trace != nil {
		// Tail-based retention: the interesting queries are always
		// kept, whatever the head-sampling rate said at admission.
		var reasons []string
		if tc.Sampled {
			reasons = append(reasons, "sampled")
		}
		if t := s.cfg.SlowQueryThreshold; t > 0 && dur >= t {
			reasons = append(reasons, "slow")
		}
		if st.Partial() {
			reasons = append(reasons, "partial")
		}
		if retries > 0 {
			reasons = append(reasons, "retried")
		}
		if hedges > 0 {
			reasons = append(reasons, "hedged")
		}
		if len(reasons) > 0 {
			stats := toStatsJSON(*st)
			s.storeTrace(traceEntry{
				RequestID:  id,
				TraceID:    tc.TraceIDString(),
				Endpoint:   ep.String(),
				Start:      start,
				DurationNS: int64(dur),
				Sampled:    tc.Sampled,
				Reasons:    reasons,
				Spans:      assembleFlight(tc, ep.String(), dur, st),
				Stats:      &stats,
			})
		}
	}
	if s.cfg.WideEvents {
		s.wideEvent(r, ep, req, id, tc, dur, st, retries, hedges)
	}
	if s.slow != nil {
		stats := toStatsJSON(*st)
		s.slow.record(slowlogEntry{
			RequestID:  id,
			Endpoint:   ep.String(),
			Start:      start,
			DurationNS: int64(dur),
			Theta:      req.Theta,
			NumTokens:  len(req.Tokens),
			Stats:      &stats,
			Spans:      st.Spans,
		})
	}
	if t := s.cfg.SlowQueryThreshold; t > 0 && dur >= t {
		d := st.StageTimes
		attrs := []slog.Attr{
			slog.String("request_id", id),
			slog.String("endpoint", ep.String()),
			slog.Duration("duration", dur),
			slog.Float64("theta", req.Theta),
			slog.Int("num_tokens", len(req.Tokens)),
			slog.Duration("sketch", d.Sketch),
			slog.Duration("plan", d.Plan),
			slog.Duration("gather", d.Gather),
			slog.Duration("count", d.Count),
			slog.Duration("merge", d.Merge),
			slog.Duration("verify", d.Verify),
			slog.Duration("io", st.IOTime),
			slog.Int64("io_bytes", st.IOBytes),
			slog.Int("matches", st.Matches),
		}
		if st.ShardsTotal > 0 {
			attrs = append(attrs,
				slog.Int("shards_total", st.ShardsTotal),
				slog.Int("shards_answered", st.ShardsAnswered),
			)
			if retries+hedges > 0 {
				attrs = append(attrs,
					slog.Int("shard_retries", retries),
					slog.Int("shard_hedges", hedges),
				)
			}
		}
		s.log.LogAttrs(r.Context(), slog.LevelWarn, "slow query", attrs...)
	}
}

func (s *Server) bumpEndpoint(topk bool) {
	if topk {
		s.met.topk.Add(1)
	} else {
		s.met.searches.Add(1)
	}
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		w.Header().Set("Allow", "GET, POST")
		s.writeError(w, r, http.StatusMethodNotAllowed, "GET or POST required")
		return
	}
	req, err := decodeRequest(w, r)
	if err != nil {
		s.writeError(w, r, decodeStatus(err), err.Error())
		return
	}
	if len(req.Tokens) == 0 {
		s.writeError(w, r, http.StatusBadRequest, "empty query: tokens required")
		return
	}
	start := time.Now()
	release := s.admit(w, r)
	if release == nil {
		return
	}
	defer release()
	s.met.requests.Add(1)
	s.met.explains.Add(1)
	out := outInternal
	defer func() { s.met.observe(epExplain, out, time.Since(start)) }()
	backend, releaseBackend := s.acquire()
	defer releaseBackend()
	plan, err := backend.Explain(r.Context(), req.Tokens, req.options())
	if err != nil {
		out = outBadRequest
		s.writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	out = outOK
	writeJSON(w, http.StatusOK, map[string]any{
		"beta":     plan.Beta,
		"alpha":    plan.Alpha,
		"num_long": plan.NumLong,
		"cutoff":   plan.Cutoff,
		"long":     plan.Long,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	b := s.backend()
	buildID := b.BuildID()
	// The index metadata is additive: shard coordinators discover a
	// remote's K/Seed/T/NumTexts here to validate the shard set and
	// assign text-id bases before the first query.
	meta := b.Meta()
	if s.closing.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "shutting_down", "build_id": buildID, "index": meta,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok", "build_id": buildID, "index": meta,
	})
}

// wantsJSON implements /metrics content negotiation: JSON only when the
// client explicitly accepts application/json (scrapers send text/plain
// or nothing and get the exposition format).
func wantsJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "application/json")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	cacheLen, cacheCap := 0, 0
	if s.cache != nil {
		cacheLen, cacheCap = s.cache.len(), s.cfg.CacheEntries
	}
	b := s.backend()
	meta := b.Meta()
	ios := b.IOStats()
	ix := indexSnapshot{
		BuildID: b.BuildID(), K: meta.K, T: meta.T, NumTexts: meta.NumTexts,
		BytesRead: ios.BytesRead, ReadTimeNS: int64(ios.ReadTime),
		Segments: segmentCount(b),
	}
	// A sharded backend (the scatter–gather coordinator) additionally
	// exposes per-shard request counters, discovered structurally so the
	// server keeps working with any Backend.
	var sm *shard.Metrics
	if p, ok := b.(interface{ ShardMetrics() shard.Metrics }); ok {
		snap := p.ShardMetrics()
		sm = &snap
	}
	if wantsJSON(r) {
		writeJSON(w, http.StatusOK, s.met.snapshot(cacheLen, cacheCap, ix, sm))
		return
	}
	w.Header().Set("Content-Type", promContentType)
	s.met.writePrometheus(w, cacheLen, cacheCap, ix, s.slow.len(), s.trace.len(), sm)
}

// handleSlowlog serves the flight recorder: the slowest and the most
// recent executed queries, each with its stage-annotated trace.
func (s *Server) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeError(w, r, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.slow == nil {
		s.writeError(w, r, http.StatusNotImplemented, "slow-query recorder disabled")
		return
	}
	slowest, recent := s.slow.snapshot()
	if slowest == nil {
		slowest = []slowlogEntry{}
	}
	if recent == nil {
		recent = []slowlogEntry{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"slowest": slowest,
		"recent":  recent,
	})
}
