package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ndss/internal/core"
	"ndss/internal/corpus"
	"ndss/internal/hash"
	"ndss/internal/index"
	"ndss/internal/search"
)

// Hot-reload tests: POST /admin/reload must swap to a freshly opened
// backend with zero failed requests, drain in-flight queries on the
// old backend before closing it, and flush the result cache.

// buildCorpusAt builds an index over c at dir (atomically, like a
// production rebuild under a live server).
func buildCorpusAt(t *testing.T, c *corpus.Corpus, dir string) {
	t.Helper()
	if _, err := index.Build(c, dir, index.BuildOptions{K: 8, Seed: 21, T: 5, ZoneMapStep: 4, LongListCutoff: 8}); err != nil {
		t.Fatal(err)
	}
}

func reloadFixture(t *testing.T) (srv *Server, dir string, c1, c2 *corpus.Corpus, query []uint32) {
	t.Helper()
	c1 = corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts: 40, MinLength: 40, MaxLength: 120, VocabSize: 40,
		ZipfS: 1.3, Seed: 7, DupRate: 0.5, DupSnippetLen: 20, DupMutateProb: 0.05,
	})
	c2 = corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts: 60, MinLength: 40, MaxLength: 120, VocabSize: 40,
		ZipfS: 1.3, Seed: 8, DupRate: 0.5, DupSnippetLen: 20, DupMutateProb: 0.05,
	})
	dir = t.TempDir() + "/ix"
	buildCorpusAt(t, c1, dir)
	backend, err := core.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv = New(backend, Config{
		MaxInFlight: 128,
		Reloader: func() (Backend, error) {
			return core.Open(dir, nil)
		},
	})
	return srv, dir, c1, c2, c1.Text(0)[:12]
}

func healthzBuildID(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		BuildID string `json:"build_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body.BuildID
}

func TestReloadSwapsBuild(t *testing.T) {
	srv, dir, _, c2, q := reloadFixture(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	oldID := healthzBuildID(t, ts)
	if oldID == "" || oldID == "legacy" {
		t.Fatalf("healthz build id = %q", oldID)
	}

	// Rebuild in place (atomic commit), then hot-swap.
	buildCorpusAt(t, c2, dir)
	resp, body := postJSON(t, ts.Client(), ts.URL+"/admin/reload", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d (%s)", resp.StatusCode, body)
	}
	var rr map[string]string
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr["old_build_id"] != oldID {
		t.Fatalf("reload reports old build %q, healthz said %q", rr["old_build_id"], oldID)
	}
	newID := healthzBuildID(t, ts)
	if newID == oldID || newID != rr["build_id"] {
		t.Fatalf("build id after reload = %q (reload said %q, old %q)", newID, rr["build_id"], oldID)
	}

	// Queries run against the new index (c2 has more texts).
	resp, body = postJSON(t, ts.Client(), ts.URL+"/search", searchRequest{Tokens: q, Theta: 0.5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search after reload: %d (%s)", resp.StatusCode, body)
	}

	// Metrics report the reload and the new build.
	mresp := getMetricsJSON(t, ts.Client(), ts.URL)
	defer mresp.Body.Close()
	var met struct {
		Reloads map[string]int64 `json:"reloads"`
		Index   indexSnapshot    `json:"index"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&met); err != nil {
		t.Fatal(err)
	}
	if met.Reloads["completed"] != 1 {
		t.Fatalf("metrics reloads = %v", met.Reloads)
	}
	if met.Index.BuildID != newID {
		t.Fatalf("metrics build id %q, want %q", met.Index.BuildID, newID)
	}
}

// TestReloadZeroFailedRequests hammers /search from many goroutines
// while the index is rebuilt and hot-swapped repeatedly: every single
// request must succeed — the acceptance bar for zero-downtime reload.
func TestReloadZeroFailedRequests(t *testing.T) {
	srv, dir, _, c2, q := reloadFixture(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var (
		stop     atomic.Bool
		failures atomic.Int64
		requests atomic.Int64
		wg       sync.WaitGroup
	)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				resp, body := postJSON(t, ts.Client(), ts.URL+"/search",
					searchRequest{Tokens: q, Theta: 0.5})
				requests.Add(1)
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					t.Errorf("request failed during reload: %d (%s)", resp.StatusCode, body)
					return
				}
			}
		}()
	}

	// Interleave rebuilds and hot swaps under the traffic.
	for i := 0; i < 5; i++ {
		c := c2
		if i%2 == 1 {
			c = corpus.MustSynthesize(corpus.SynthConfig{
				NumTexts: 40, MinLength: 40, MaxLength: 120, VocabSize: 40,
				ZipfS: 1.3, Seed: int64(20 + i), DupRate: 0.5, DupSnippetLen: 20, DupMutateProb: 0.05,
			})
		}
		buildCorpusAt(t, c, dir)
		resp, body := postJSON(t, ts.Client(), ts.URL+"/admin/reload", struct{}{})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reload %d: %d (%s)", i, resp.StatusCode, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d of %d requests failed across reloads", failures.Load(), requests.Load())
	}
	if requests.Load() == 0 {
		t.Fatal("no requests observed")
	}
}

// stubBackend is a fully controllable Backend for drain/cache tests.
type stubBackend struct {
	id      string
	fam     *hash.Family
	match   search.Match
	entered chan struct{} // closed when a search has started executing
	gate    chan struct{} // searches block until closed (nil = no block)
	closed  atomic.Bool
	once    sync.Once
}

func newStubBackend(t *testing.T, id string, matchID uint32, blocking bool) *stubBackend {
	t.Helper()
	fam, err := hash.NewFamily(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := &stubBackend{id: id, fam: fam, match: search.Match{TextID: matchID, EstJaccard: 1}}
	if blocking {
		b.entered = make(chan struct{})
		b.gate = make(chan struct{})
	}
	return b
}

func (b *stubBackend) SearchContext(ctx context.Context, q []uint32, o search.Options) ([]search.Match, *search.Stats, error) {
	if b.closed.Load() {
		panic("query executed on closed backend")
	}
	if b.gate != nil {
		b.once.Do(func() { close(b.entered) })
		<-b.gate
	}
	return []search.Match{b.match}, &search.Stats{Matches: 1}, nil
}

func (b *stubBackend) SearchTopKContext(ctx context.Context, q []uint32, o search.TopKOptions) ([]search.Match, *search.Stats, error) {
	return b.SearchContext(ctx, q, o.Search)
}

func (b *stubBackend) Explain(ctx context.Context, q []uint32, o search.Options) (*search.Plan, error) {
	return &search.Plan{}, nil
}

func (b *stubBackend) Meta() index.Meta       { return index.Meta{K: 4, T: 2, NumTexts: 1} }
func (b *stubBackend) Family() *hash.Family   { return b.fam }
func (b *stubBackend) IOStats() index.IOStats { return index.IOStats{} }
func (b *stubBackend) BuildID() string        { return b.id }
func (b *stubBackend) Close() error           { b.closed.Store(true); return nil }

// TestReloadDrainsInFlight parks a query inside the old backend, swaps,
// and checks that Reload waits for the query to finish before closing
// the old backend — while new queries already run on the new one.
func TestReloadDrainsInFlight(t *testing.T) {
	oldB := newStubBackend(t, "old", 1, true)
	newB := newStubBackend(t, "new", 2, false)
	srv := New(oldB, Config{
		CacheEntries: -1,
		Reloader:     func() (Backend, error) { return newB, nil },
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	q := []uint32{1, 2, 3, 4, 5}
	inFlight := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.Client(), ts.URL+"/search", searchRequest{Tokens: q, Theta: 0.5})
		inFlight <- resp.StatusCode
	}()
	<-oldB.entered // the query is executing inside the old backend

	reloadDone := make(chan struct{})
	go func() {
		if _, _, err := srv.Reload(); err != nil {
			t.Errorf("reload: %v", err)
		}
		close(reloadDone)
	}()

	// The swap is immediate: new queries hit the new backend even while
	// the old one still drains.
	deadline := time.After(5 * time.Second)
	for srv.backend().BuildID() != "new" {
		select {
		case <-deadline:
			t.Fatal("backend not swapped while old query drains")
		case <-time.After(time.Millisecond):
		}
	}
	resp, body := postJSON(t, ts.Client(), ts.URL+"/search", searchRequest{Tokens: q, Theta: 0.5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query on new backend during drain: %d (%s)", resp.StatusCode, body)
	}

	// Reload must still be waiting on the parked query.
	select {
	case <-reloadDone:
		t.Fatal("reload completed before in-flight query drained")
	default:
	}
	if oldB.closed.Load() {
		t.Fatal("old backend closed with a query still in flight")
	}

	close(oldB.gate) // release the parked query
	if code := <-inFlight; code != http.StatusOK {
		t.Fatalf("in-flight query failed across reload: %d", code)
	}
	select {
	case <-reloadDone:
	case <-time.After(5 * time.Second):
		t.Fatal("reload did not complete after drain")
	}
	if !oldB.closed.Load() {
		t.Fatal("old backend not closed after drain")
	}
}

// TestReloadFlushesCache ensures results cached against the old index
// are not served after the swap.
func TestReloadFlushesCache(t *testing.T) {
	oldB := newStubBackend(t, "old", 1, false)
	newB := newStubBackend(t, "new", 2, false)
	srv := New(oldB, Config{
		CacheEntries: 64,
		Reloader:     func() (Backend, error) { return newB, nil },
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	q := []uint32{1, 2, 3, 4, 5}
	// Decode into a fresh struct each time: "cached" is omitempty, so
	// reusing one target would leak a stale true across responses.
	search1 := func() searchResponse {
		var sr searchResponse
		_, body := postJSON(t, ts.Client(), ts.URL+"/search", searchRequest{Tokens: q, Theta: 0.5})
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		return sr
	}
	sr := search1()
	if len(sr.Matches) != 1 || sr.Matches[0].TextID != 1 {
		t.Fatalf("pre-reload matches: %+v", sr.Matches)
	}
	// Same query again: served from cache.
	if sr = search1(); !sr.Cached {
		t.Fatal("second identical query not cached")
	}

	if _, _, err := srv.Reload(); err != nil {
		t.Fatal(err)
	}
	if sr = search1(); sr.Cached {
		t.Fatal("stale cache entry served after reload")
	}
	if len(sr.Matches) != 1 || sr.Matches[0].TextID != 2 {
		t.Fatalf("post-reload matches came from the old index: %+v", sr.Matches)
	}
}

func TestReloadWithoutReloader(t *testing.T) {
	b := newStubBackend(t, "only", 1, false)
	srv := New(b, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, _ := postJSON(t, ts.Client(), ts.URL+"/admin/reload", struct{}{})
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("reload without reloader: %d, want 501", resp.StatusCode)
	}
}

// TestReloadFailureKeepsServing: a reloader error must leave the old
// backend serving untouched and count a failed reload.
func TestReloadFailureKeepsServing(t *testing.T) {
	b := newStubBackend(t, "stable", 1, false)
	srv := New(b, Config{
		CacheEntries: -1,
		Reloader:     func() (Backend, error) { return nil, context.DeadlineExceeded },
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, _ := postJSON(t, ts.Client(), ts.URL+"/admin/reload", struct{}{})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failed reload status %d, want 500", resp.StatusCode)
	}
	if got := healthzBuildID(t, ts); got != "stable" {
		t.Fatalf("backend changed by failed reload: %q", got)
	}
	q := []uint32{1, 2, 3, 4, 5}
	sresp, body := postJSON(t, ts.Client(), ts.URL+"/search", searchRequest{Tokens: q, Theta: 0.5})
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("search after failed reload: %d (%s)", sresp.StatusCode, body)
	}
	if b.closed.Load() {
		t.Fatal("old backend closed by failed reload")
	}
}
