package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"ndss/internal/core"
	"ndss/internal/corpus"
	"ndss/internal/index"
	"ndss/internal/obs"
	"ndss/internal/search"
	"ndss/internal/shard"
	"ndss/internal/shard/netfault"
)

// flightIndex maps a flight's span ids to spans and verifies the basic
// tree shape on the way: ids unique, exactly one root, every parent
// present.
func flightIndex(t *testing.T, spans []obs.FlightSpan) (byID map[string]obs.FlightSpan, root obs.FlightSpan) {
	t.Helper()
	if len(spans) == 0 {
		t.Fatal("empty flight")
	}
	byID = make(map[string]obs.FlightSpan, len(spans))
	roots := 0
	for _, sp := range spans {
		if sp.SpanID == "" {
			t.Fatalf("span %q has no id", sp.Name)
		}
		if _, dup := byID[sp.SpanID]; dup {
			t.Fatalf("duplicate span id %s", sp.SpanID)
		}
		byID[sp.SpanID] = sp
		if sp.ParentID == "" {
			roots++
			root = sp
		}
	}
	if roots != 1 {
		t.Fatalf("flight has %d roots, want exactly 1: %+v", roots, spans)
	}
	for _, sp := range spans {
		if sp.ParentID == "" {
			continue
		}
		if _, ok := byID[sp.ParentID]; !ok {
			t.Fatalf("span %s (%s) references missing parent %s", sp.SpanID, sp.Name, sp.ParentID)
		}
	}
	return byID, root
}

// childrenOf returns the direct children of id in insertion order.
func childrenOf(spans []obs.FlightSpan, id string) []obs.FlightSpan {
	var out []obs.FlightSpan
	for _, sp := range spans {
		if sp.ParentID == id {
			out = append(out, sp)
		}
	}
	return out
}

func flightAttr(sp obs.FlightSpan, key string) (int64, bool) {
	for _, a := range sp.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return 0, false
}

// TestTraceTreeAssembly drives assembleFlight with a synthetic sharded
// stats tree — one leg with a failed primary and a winning retry, one
// single-attempt leg — and checks the grafting rules: wire span ids
// survive, remote spans nest under the winning attempt shifted onto
// the query's time axis, attrs ride along, and stage timings stay
// monotonic, disjoint, and within their carrier.
func TestTraceTreeAssembly(t *testing.T) {
	var tr obs.Trace
	tr.Reset()
	tr.Record(search.StageNames[0], 0, time.Millisecond) // sketch
	id := tr.Record(search.StageNames[2], time.Millisecond, 2*time.Millisecond)
	tr.Annotate(id, "io_bytes", 4096)
	remote0 := tr.Snapshot(nil)

	tr.Reset()
	tr.Record(search.StageNames[0], 0, 2*time.Millisecond)
	remote1 := tr.Snapshot(nil)

	tr.Reset()
	tr.Record("shard", time.Millisecond, 10*time.Millisecond) // coordinator leg span: ignored by assembly
	tr.Record("shard_merge", 11*time.Millisecond, time.Millisecond)
	coordSpans := tr.Snapshot(nil)

	st := &search.Stats{
		ShardsTotal:    2,
		ShardsAnswered: 2,
		Spans:          coordSpans,
		PerShard: []search.ShardStats{
			{
				Shard: "s0", Answered: true, IOBytes: 4096,
				Total: 10 * time.Millisecond, SpanID: "leg0leg0leg0leg0", Start: time.Millisecond,
				Spans: remote0,
				Attempts: []search.ShardAttempt{
					{Replica: "r0", ReplicaIdx: 0, Attempt: 0, Err: "connection reset",
						SpanID: "a0a0a0a0a0a0a0a0", Start: 0, Dur: 2 * time.Millisecond},
					{Replica: "r1", ReplicaIdx: 1, Attempt: 1,
						SpanID: "a1a1a1a1a1a1a1a1", Start: 2500 * time.Microsecond, Dur: 7 * time.Millisecond},
				},
			},
			{
				Shard: "s1", Answered: true,
				Total: 5 * time.Millisecond, SpanID: "leg1leg1leg1leg1", Start: 2 * time.Millisecond,
				Spans: remote1,
			},
		},
	}

	tc := obs.NewTraceContext(true)
	flight := assembleFlight(tc, "search", 12*time.Millisecond, st)
	byID, root := flightIndex(t, flight)

	if root.Name != "search" || root.SpanID != tc.SpanIDString() || root.DurNS != int64(12*time.Millisecond) {
		t.Fatalf("root = %+v, want search span %s over 12ms", root, tc.SpanIDString())
	}

	// The legs keep their wire ids and hang off the root at their
	// fan-out offsets.
	leg0, ok := byID["leg0leg0leg0leg0"]
	if !ok || leg0.ParentID != root.SpanID || leg0.Name != "shard" || leg0.StartNS != int64(time.Millisecond) {
		t.Fatalf("leg0 = %+v (ok=%v), want a shard child of the root at 1ms", leg0, ok)
	}
	if v, ok := flightAttr(leg0, "shard"); !ok || v != 0 {
		t.Errorf("leg0 shard attr = %d (ok=%v), want 0", v, ok)
	}
	if v, ok := flightAttr(leg0, "io_bytes"); !ok || v != 4096 {
		t.Errorf("leg0 io_bytes attr = %d (ok=%v), want 4096", v, ok)
	}

	// The failed primary and the winning retry are siblings under the
	// leg, each with its wire id; only the failure is flagged.
	failed, ok := byID["a0a0a0a0a0a0a0a0"]
	if !ok || failed.ParentID != leg0.SpanID || failed.Name != "shard_attempt" {
		t.Fatalf("failed attempt = %+v (ok=%v), want shard_attempt under leg0", failed, ok)
	}
	if v, ok := flightAttr(failed, "failed"); !ok || v != 1 {
		t.Errorf("failed attempt lacks failed=1: %+v", failed)
	}
	winner, ok := byID["a1a1a1a1a1a1a1a1"]
	if !ok || winner.ParentID != leg0.SpanID || winner.Name != "shard_retry" {
		t.Fatalf("winning retry = %+v (ok=%v), want shard_retry under leg0", winner, ok)
	}
	if _, ok := flightAttr(winner, "failed"); ok {
		t.Errorf("winning retry flagged failed: %+v", winner)
	}
	// Attempt starts are leg-relative on the wire, absolute in the tree.
	if winner.StartNS != int64(3500*time.Microsecond) || winner.DurNS != int64(7*time.Millisecond) {
		t.Errorf("winner timing = start %d dur %d, want 3.5ms/7ms", winner.StartNS, winner.DurNS)
	}

	// The remote stage spans graft under the winning attempt, shifted
	// by its absolute start, attrs intact.
	stages := childrenOf(flight, winner.SpanID)
	if len(stages) != 2 || stages[0].Name != "sketch" || stages[1].Name != "gather" {
		t.Fatalf("winner's remote spans = %+v, want [sketch gather]", stages)
	}
	if stages[0].StartNS != winner.StartNS {
		t.Errorf("remote sketch start = %d, want the attempt's %d", stages[0].StartNS, winner.StartNS)
	}
	if v, ok := flightAttr(stages[1], "io_bytes"); !ok || v != 4096 {
		t.Errorf("remote gather io_bytes = %d (ok=%v), want 4096", v, ok)
	}
	// Monotonic and disjoint on the shared axis, summing within the
	// attempt that carried them.
	var sum int64
	for i, sp := range stages {
		sum += sp.DurNS
		if sp.StartNS < winner.StartNS || sp.StartNS+sp.DurNS > winner.StartNS+winner.DurNS {
			t.Errorf("stage %s [%d,%d] escapes its attempt [%d,%d]",
				sp.Name, sp.StartNS, sp.StartNS+sp.DurNS, winner.StartNS, winner.StartNS+winner.DurNS)
		}
		if i > 0 && sp.StartNS < stages[i-1].StartNS+stages[i-1].DurNS {
			t.Errorf("stage %s overlaps its predecessor", sp.Name)
		}
	}
	if sum > leg0.DurNS {
		t.Errorf("stage durations sum to %d, above the leg's %d", sum, leg0.DurNS)
	}

	// A leg without replica attempts carries its remote spans directly.
	leg1 := byID["leg1leg1leg1leg1"]
	kids := childrenOf(flight, leg1.SpanID)
	if len(kids) != 1 || kids[0].Name != "sketch" || kids[0].StartNS != leg1.StartNS {
		t.Fatalf("leg1 children = %+v, want one sketch at the leg start", kids)
	}

	// The coordinator's merge tail hangs off the root; its leg-bookkeeping
	// spans do not reappear.
	var merges, legSpans int
	for _, sp := range childrenOf(flight, root.SpanID) {
		switch sp.Name {
		case "shard_merge":
			merges++
		case "shard":
			legSpans++
		}
	}
	if merges != 1 || legSpans != 2 {
		t.Fatalf("root children have %d shard_merge and %d shard legs, want 1 and 2", merges, legSpans)
	}
}

// TestChaosTraceRetryHedgeTree is the distributed-tracing acceptance
// run: a real HTTP coordinator over 2 ranges × 2 replica servers, a
// scripted connection reset forcing a retry on range 0 and scripted
// delays forcing a hedge on range 1, with head sampling on. The
// /debug/trace/{request_id} endpoint must return one connected tree
// containing the failed attempt, the winning attempt, and the remote
// per-stage spans of every answering shard, with stage durations
// summing within their leg's latency.
func TestChaosTraceRetryHedgeTree(t *testing.T) {
	c := corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts: 40, MinLength: 40, MaxLength: 120, VocabSize: 40,
		ZipfS: 1.3, Seed: 7, DupRate: 0.6, DupSnippetLen: 20, DupMutateProb: 0.05,
	})
	texts := make([][]uint32, c.NumTexts())
	for i := range texts {
		texts[i] = c.Text(uint32(i))
	}

	ft := netfault.New(nil)
	fc := &http.Client{Transport: ft}
	var hosts [2][2]string
	clients := make([]shard.ShardClient, 0, 2)
	for r := 0; r < 2; r++ {
		dir := t.TempDir()
		cc := corpus.New(texts[r*20 : (r+1)*20])
		if _, err := index.Build(cc, dir, index.BuildOptions{K: 8, Seed: 21, T: 5}); err != nil {
			t.Fatal(err)
		}
		e, err := core.Open(dir, cc)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		reps := make([]shard.ShardClient, 2)
		for j := 0; j < 2; j++ {
			remote := httptest.NewServer(New(e, Config{CacheEntries: -1}))
			t.Cleanup(remote.Close)
			u, err := url.Parse(remote.URL)
			if err != nil {
				t.Fatal(err)
			}
			hosts[r][j] = u.Host
			hs, err := shard.NewHTTPShard(context.Background(), remote.URL, shard.HTTPOptions{Client: fc})
			if err != nil {
				t.Fatal(err)
			}
			reps[j] = hs
		}
		rs, err := shard.NewReplicaSet(fmt.Sprintf("range%d", r), reps, shard.ReplicaConfig{
			MaxRetries:      2,
			RetryBudget:     1.0,
			RetryBurst:      1000,
			BackoffBase:     100 * time.Microsecond,
			BackoffMax:      time.Millisecond,
			HedgeDelayMin:   5 * time.Millisecond,
			BreakerFailures: 3,
			BreakerCooldown: 50 * time.Millisecond,
			Seed:            42,
		})
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, rs)
	}
	coord, err := shard.NewCoordinator(clients, shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	ts := httptest.NewServer(New(coord, Config{TraceSampleRate: 1, CacheEntries: -1}))
	defer ts.Close()

	// One scripted reset on each replica of range 0: whichever replica
	// the primary picks dies, and within MaxRetries a retry lands on a
	// consumed script and wins. One scripted delay on each replica of
	// range 1, well past HedgeDelayMin: the primary stalls, a hedge
	// launches, both eventually answer and the faster wins. Scripts are
	// indexed by a per-host request counter that the construction-time
	// health checks already advanced, so pad each script up to the
	// host's current count.
	scriptNext := func(host string, f netfault.Fault) {
		ft.Script(host, append(make([]netfault.Fault, ft.Calls(host)), f)...)
	}
	scriptNext(hosts[0][0], netfault.Fault{Kind: netfault.Reset})
	scriptNext(hosts[0][1], netfault.Fault{Kind: netfault.Reset})
	scriptNext(hosts[1][0], netfault.Fault{Kind: netfault.Delay, Delay: 30 * time.Millisecond})
	scriptNext(hosts[1][1], netfault.Fault{Kind: netfault.Delay, Delay: 30 * time.Millisecond})

	resp, body := postJSON(t, ts.Client(), ts.URL+"/search", searchRequest{Tokens: texts[25][:12], Theta: 0.5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search through faults: %d (%s), want the retry and hedge to mask them", resp.StatusCode, body)
	}
	reqID := resp.Header.Get(obs.HeaderRequestID)
	if reqID == "" {
		t.Fatal("response carries no request id")
	}

	tresp, err := ts.Client().Get(ts.URL + "/debug/trace/" + reqID)
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace/%s: %d, want a retained trace", reqID, tresp.StatusCode)
	}
	var e traceEntry
	if err := json.NewDecoder(tresp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.RequestID != reqID || !e.Sampled || e.TraceID == "" {
		t.Fatalf("trace entry = id %q sampled %v trace %q", e.RequestID, e.Sampled, e.TraceID)
	}
	reasons := map[string]bool{}
	for _, r := range e.Reasons {
		reasons[r] = true
	}
	if !reasons["sampled"] || !reasons["retried"] || !reasons["hedged"] {
		t.Errorf("retention reasons = %v, want sampled+retried+hedged", e.Reasons)
	}

	byID, root := flightIndex(t, e.Spans)
	if root.Name != "search" {
		t.Errorf("root span = %q, want the endpoint name", root.Name)
	}

	legs := childrenOf(e.Spans, root.SpanID)
	var shardLegs []obs.FlightSpan
	for _, sp := range legs {
		if sp.Name == "shard" {
			shardLegs = append(shardLegs, sp)
		}
	}
	if len(shardLegs) != 2 {
		t.Fatalf("flight has %d shard legs, want 2: %+v", len(shardLegs), legs)
	}

	var sawFailed, sawHedge bool
	for _, leg := range shardLegs {
		attempts := childrenOf(e.Spans, leg.SpanID)
		if len(attempts) < 2 {
			t.Fatalf("leg %s has %d attempts, want the fault plus the masking attempt: %+v",
				leg.SpanID, len(attempts), attempts)
		}
		var winner obs.FlightSpan
		for _, a := range attempts {
			switch a.Name {
			case "shard_attempt", "shard_retry", "shard_hedge":
			default:
				t.Fatalf("leg child %q is not an attempt", a.Name)
			}
			if a.Name == "shard_hedge" {
				sawHedge = true
			}
			if _, failed := flightAttr(a, "failed"); failed {
				sawFailed = true
			} else if len(childrenOf(e.Spans, a.SpanID)) > 0 {
				winner = a
			}
		}
		if winner.SpanID == "" {
			t.Fatalf("leg %s has no winning attempt carrying remote spans: %+v", leg.SpanID, attempts)
		}
		// The answering shard's own pipeline decomposition crossed the
		// wire and nests under exactly the attempt that carried it.
		stageDur := map[string]int64{}
		var sum int64
		for _, sp := range childrenOf(e.Spans, winner.SpanID) {
			for _, name := range search.StageNames {
				if sp.Name == name {
					stageDur[name] += sp.DurNS
					sum += sp.DurNS
				}
			}
		}
		for _, name := range search.StageNames {
			if _, ok := stageDur[name]; !ok {
				t.Errorf("leg %s winner lacks remote %s span", leg.SpanID, name)
			}
		}
		if sum > leg.DurNS {
			t.Errorf("leg %s remote stage durations sum to %dns, above the leg's %dns", leg.SpanID, sum, leg.DurNS)
		}
		if winner.StartNS < leg.StartNS || winner.StartNS+winner.DurNS > leg.StartNS+leg.DurNS {
			t.Errorf("winning attempt [%d,%d] escapes its leg [%d,%d]",
				winner.StartNS, winner.StartNS+winner.DurNS, leg.StartNS, leg.StartNS+leg.DurNS)
		}
	}
	if !sawFailed {
		t.Error("no failed attempt span in the flight; the scripted reset should appear")
	}
	if !sawHedge {
		t.Error("no hedge span in the flight; the scripted delay should force one")
	}
	_ = byID
}
