package server

import (
	"fmt"
	"log/slog"
	rand "math/rand/v2"
	"net/http"
	"strings"
	"time"

	"ndss/internal/obs"
	"ndss/internal/search"
)

// sampleTrace decides head-sampling for a root trace minted at this
// serving edge. Shard-side processes never call this for forwarded
// queries — they inherit the bit from the incoming traceparent.
func (s *Server) sampleTrace() bool {
	rate := s.cfg.TraceSampleRate
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	return rand.Float64() < rate
}

// assembleFlight grafts one executed query's spans — this process's
// own, plus whatever each shard leg shipped back — into a single tree:
//
//	endpoint (root, the query's wall time)
//	├── shard (one leg per range, at its fan-out offset)
//	│   ├── shard_attempt / shard_retry / shard_hedge (one per replica attempt)
//	│   │   └── sketch/plan/gather/count/merge/verify… (the winner's remote spans)
//	└── shard_merge (the coordinator's merge tail)
//
// For unsharded backends the engine's spans hang directly off the
// root. Remote spans keep their own durations and attrs (io_bytes
// included) and are shifted by their carrier's start onto the query's
// time axis, so stage durations nest within — and sum within — the
// leg latency that carried them.
func assembleFlight(tc obs.TraceContext, ep string, dur time.Duration, st *search.Stats) []obs.FlightSpan {
	var f obs.Flight
	root := f.Add("", tc.SpanIDString(), ep, 0, dur)
	if st == nil {
		return f.Spans()
	}
	if st.ShardsTotal == 0 {
		f.Graft(root, st.Spans, 0)
		return f.Spans()
	}
	for i := range st.PerShard {
		ps := &st.PerShard[i]
		legAttrs := []obs.Attr{{Key: "shard", Val: int64(i)}}
		if ps.IOBytes > 0 {
			legAttrs = append(legAttrs, obs.Attr{Key: "io_bytes", Val: ps.IOBytes})
		}
		leg := f.Add(root, ps.SpanID, "shard", ps.Start, ps.Total, legAttrs...)
		// The leg's remote spans belong under the attempt that carried
		// them: the winner when a replica set logged attempts, the leg
		// itself otherwise (single-replica shards).
		carrier, carrierStart := leg, ps.Start
		for _, a := range ps.Attempts {
			name := "shard_attempt"
			if a.Hedge {
				name = "shard_hedge"
			} else if a.Attempt > 0 {
				name = "shard_retry"
			}
			attrs := []obs.Attr{
				{Key: "attempt", Val: int64(a.Attempt)},
				{Key: "replica", Val: int64(a.ReplicaIdx)},
			}
			if a.Err != "" {
				attrs = append(attrs, obs.Attr{Key: "failed", Val: 1})
			}
			id := f.Add(leg, a.SpanID, name, ps.Start+a.Start, a.Dur, attrs...)
			if a.Err == "" {
				carrier, carrierStart = id, ps.Start+a.Start
			}
		}
		f.Graft(carrier, ps.Spans, carrierStart)
	}
	// The coordinator's own merge tail (its per-leg spans are already
	// represented above, with their wire span ids).
	for i := range st.Spans {
		if st.Spans[i].Name == "shard_merge" {
			f.Add(root, "", "shard_merge", st.Spans[i].Start, st.Spans[i].Dur)
		}
	}
	return f.Spans()
}

// storeTrace records a retained trace and its per-reason counters.
func (s *Server) storeTrace(e traceEntry) {
	if s.trace == nil {
		return
	}
	for _, reason := range e.Reasons {
		s.met.retainTrace(reason)
	}
	if s.trace.record(e) {
		s.met.traceEvicted.Add(1)
	}
}

// recordErrorTrace retains a root-only trace for an executed query
// that failed (timeout, cancellation, rejected input): tail-based
// retention must cover exactly the queries with no stats to show.
func (s *Server) recordErrorTrace(r *http.Request, ep endpoint, start time.Time, err error) {
	if s.trace == nil {
		return
	}
	dur := time.Since(start)
	tc, _ := obs.TraceFromContext(r.Context())
	reasons := []string{"error"}
	if tc.Sampled {
		reasons = append(reasons, "sampled")
	}
	var f obs.Flight
	f.Add("", tc.SpanIDString(), ep.String(), 0, dur, obs.Attr{Key: "failed", Val: 1})
	s.storeTrace(traceEntry{
		RequestID:  RequestIDFromContext(r.Context()),
		TraceID:    tc.TraceIDString(),
		Endpoint:   ep.String(),
		Start:      start,
		DurationNS: int64(dur),
		Sampled:    tc.Sampled,
		Reasons:    reasons,
		Err:        err.Error(),
		Spans:      f.Spans(),
	})
}

// wideEvent emits the one-line-per-query structured event: everything
// needed to debug the query from the log alone, ids included, without
// waiting for a trace to be sampled.
func (s *Server) wideEvent(r *http.Request, ep endpoint, req searchRequest, id string, tc obs.TraceContext, dur time.Duration, st *search.Stats, retries, hedges int) {
	d := st.StageTimes
	attrs := []slog.Attr{
		slog.String("request_id", id),
		slog.String("trace_id", tc.TraceIDString()),
		slog.String("endpoint", ep.String()),
		slog.Bool("sampled", tc.Sampled),
		slog.Duration("duration", dur),
		slog.Float64("theta", req.Theta),
		slog.Int("num_tokens", len(req.Tokens)),
		slog.Int("matches", st.Matches),
		slog.Int64("io_bytes", st.IOBytes),
		slog.Duration("io", st.IOTime),
		slog.Duration("sketch", d.Sketch),
		slog.Duration("plan", d.Plan),
		slog.Duration("gather", d.Gather),
		slog.Duration("count", d.Count),
		slog.Duration("merge", d.Merge),
		slog.Duration("verify", d.Verify),
	}
	if st.ShardsTotal > 0 {
		attrs = append(attrs,
			slog.Int("shards_total", st.ShardsTotal),
			slog.Int("shards_answered", st.ShardsAnswered),
			slog.Bool("partial", st.Partial()),
			slog.Int("shard_retries", retries),
			slog.Int("shard_hedges", hedges),
		)
		for i := range st.PerShard {
			ps := &st.PerShard[i]
			ga := []any{
				slog.String("name", ps.Shard),
				slog.Bool("answered", ps.Answered),
				slog.Duration("total", ps.Total),
				slog.Int("attempts", len(ps.Attempts)),
			}
			if ps.Err != "" {
				ga = append(ga, slog.String("err", ps.Err))
			}
			attrs = append(attrs, slog.Group(fmt.Sprintf("shard_%d", i), ga...))
		}
	}
	s.log.LogAttrs(r.Context(), slog.LevelInfo, "query", attrs...)
}

// handleTrace serves the trace store: GET /debug/trace/{request_id}
// returns the assembled cross-process trace tree of a retained query;
// GET /debug/trace/ lists what is retained.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeError(w, r, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.trace == nil {
		s.writeError(w, r, http.StatusNotImplemented, "trace store disabled")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/debug/trace/")
	if id == "" {
		list := s.trace.index()
		if list == nil {
			list = []traceSummary{}
		}
		writeJSON(w, http.StatusOK, map[string]any{"traces": list})
		return
	}
	e, ok := s.trace.get(id)
	if !ok {
		s.writeError(w, r, http.StatusNotFound, "no retained trace for request id "+id)
		return
	}
	writeJSON(w, http.StatusOK, e)
}
