package server

// The slow-query flight recorder: a bounded, mutex-guarded store of
// query traces served at GET /debug/slowlog. Two views are kept — the
// N slowest queries since start (min-replacement, so a burst of fast
// traffic never evicts a genuinely slow outlier) and the N most recent
// executed queries (a ring buffer, for "what is the server doing right
// now"). Both are value slices recorded in O(1)/O(N) with N small
// (default 32), so the critical section is a few hundred nanoseconds;
// queries below the current slowest floor skip the scan entirely via an
// atomic gate.

import (
	"sync"
	"sync/atomic"
	"time"

	"ndss/internal/obs"
)

// defaultSlowlogEntries sizes each slowlog view when Config leaves it 0.
const defaultSlowlogEntries = 32

// slowlogEntry is one recorded query trace.
type slowlogEntry struct {
	RequestID  string     `json:"request_id"`
	Endpoint   string     `json:"endpoint"`
	Start      time.Time  `json:"start"`
	DurationNS int64      `json:"duration_ns"`
	Theta      float64    `json:"theta"`
	NumTokens  int        `json:"num_tokens"`
	Stats      *statsJSON `json:"stats,omitempty"`
	Spans      []obs.Span `json:"spans,omitempty"`
}

type slowlog struct {
	mu sync.Mutex

	// slowest holds up to cap entries; minIdx tracks the cheapest one so
	// replacement is O(1) amortized (O(N) re-scan on replacement).
	// guarded by mu
	slowest []slowlogEntry

	// recent is a ring of the last cap executed queries. guarded by mu
	recent []slowlogEntry
	next   int // guarded by mu

	capacity int

	// floorNS is the duration of the cheapest retained slowest entry
	// once the view is full; faster queries skip the lock for the
	// slowest view (they still take it briefly for the recent ring).
	floorNS atomic.Int64
}

func newSlowlog(capacity int) *slowlog {
	if capacity == 0 {
		capacity = defaultSlowlogEntries
	}
	if capacity < 0 {
		return nil // disabled
	}
	return &slowlog{capacity: capacity}
}

// record stores one executed query's trace.
func (l *slowlog) record(e slowlogEntry) {
	if l == nil {
		return
	}
	l.mu.Lock()
	// Recent ring.
	if len(l.recent) < l.capacity {
		l.recent = append(l.recent, e)
	} else {
		l.recent[l.next] = e
	}
	l.next = (l.next + 1) % l.capacity

	// Slowest view.
	switch {
	case len(l.slowest) < l.capacity:
		l.slowest = append(l.slowest, e)
		if len(l.slowest) == l.capacity {
			l.floorNS.Store(l.minDurLocked())
		}
	case e.DurationNS > l.floorNS.Load():
		mi := 0
		for i := 1; i < len(l.slowest); i++ {
			if l.slowest[i].DurationNS < l.slowest[mi].DurationNS {
				mi = i
			}
		}
		l.slowest[mi] = e
		l.floorNS.Store(l.minDurLocked())
	}
	l.mu.Unlock()
}

// shouldRecordSlow reports whether a query of duration d would enter
// the slowest view, so callers can skip building an expensive entry
// (span snapshot etc.) for fast queries once the view is full. Entries
// still enter the recent ring regardless.
func (l *slowlog) wouldEnterSlowest(d time.Duration) bool {
	if l == nil {
		return false
	}
	return int64(d) > l.floorNS.Load()
}

// minDurLocked scans for the cheapest retained entry; the caller holds
// l.mu (the Locked suffix is the guardedby callee-side convention).
func (l *slowlog) minDurLocked() int64 {
	min := l.slowest[0].DurationNS
	for _, e := range l.slowest[1:] {
		if e.DurationNS < min {
			min = e.DurationNS
		}
	}
	return min
}

func (l *slowlog) len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.slowest)
}

// snapshot returns the slowest entries (descending by duration) and the
// recent entries (newest first).
func (l *slowlog) snapshot() (slowest, recent []slowlogEntry) {
	if l == nil {
		return nil, nil
	}
	l.mu.Lock()
	slowest = append([]slowlogEntry(nil), l.slowest...)
	n := len(l.recent)
	recent = make([]slowlogEntry, 0, n)
	for i := 1; i <= n; i++ {
		recent = append(recent, l.recent[(l.next-i+n+n)%n])
	}
	l.mu.Unlock()
	// Sort outside the lock; N is small.
	for i := 1; i < len(slowest); i++ {
		for j := i; j > 0 && slowest[j].DurationNS > slowest[j-1].DurationNS; j-- {
			slowest[j], slowest[j-1] = slowest[j-1], slowest[j]
		}
	}
	return slowest, recent
}
