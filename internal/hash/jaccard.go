package hash

// DistinctJaccard computes the Jaccard similarity of the distinct token
// sets of two sequences: |A ∩ B| / |A ∪ B| where A and B are the sets of
// tokens occurring in a and b. This is the paper's default similarity.
//
// Both sequences empty yields 1 (they are identical); exactly one empty
// yields 0.
func DistinctJaccard(a, b []uint32) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	seen := make(map[uint32]uint8, len(a)+len(b))
	for _, tok := range a {
		seen[tok] |= 1
	}
	for _, tok := range b {
		seen[tok] |= 2
	}
	inter := 0
	for _, m := range seen {
		if m == 3 {
			inter++
		}
	}
	union := len(seen)
	return float64(inter) / float64(union)
}

// MultisetJaccard computes the Jaccard similarity treating each
// occurrence of a token as a unique element: the intersection counts
// min(count_a, count_b) per token and the union counts
// max(count_a, count_b). For example, (A,A,A,B,B) vs (A,B,B,B,C) is 3/7.
func MultisetJaccard(a, b []uint32) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	ca := make(map[uint32]int, len(a))
	for _, tok := range a {
		ca[tok]++
	}
	cb := make(map[uint32]int, len(b))
	for _, tok := range b {
		cb[tok]++
	}
	inter, union := 0, 0
	for tok, na := range ca {
		nb := cb[tok]
		if na < nb {
			inter += na
			union += nb
		} else {
			inter += nb
			union += na
		}
	}
	for tok, nb := range cb {
		if _, ok := ca[tok]; !ok {
			union += nb
		}
	}
	return float64(inter) / float64(union)
}

// DistinctCount returns the number of distinct tokens in seq.
func DistinctCount(seq []uint32) int {
	seen := make(map[uint32]struct{}, len(seq))
	for _, tok := range seq {
		seen[tok] = struct{}{}
	}
	return len(seen)
}
