package hash

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewFamilyValidation(t *testing.T) {
	if _, err := NewFamily(0, 1); err == nil {
		t.Fatal("NewFamily(0) should fail")
	}
	if _, err := NewFamily(-3, 1); err == nil {
		t.Fatal("NewFamily(-3) should fail")
	}
	fam, err := NewFamily(16, 42)
	if err != nil {
		t.Fatalf("NewFamily(16): %v", err)
	}
	if fam.K() != 16 {
		t.Fatalf("K() = %d, want 16", fam.K())
	}
	if fam.Seed() != 42 {
		t.Fatalf("Seed() = %d, want 42", fam.Seed())
	}
}

func TestFamilyDeterministic(t *testing.T) {
	a := MustNewFamily(8, 7)
	b := MustNewFamily(8, 7)
	for i := 0; i < 8; i++ {
		for tok := uint32(0); tok < 100; tok++ {
			if a.Func(i).Hash(tok) != b.Func(i).Hash(tok) {
				t.Fatalf("same seed produced different hashes at func %d token %d", i, tok)
			}
		}
	}
	c := MustNewFamily(8, 8)
	diff := false
	for i := 0; i < 8 && !diff; i++ {
		if a.Func(i).Hash(12345) != c.Func(i).Hash(12345) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical families")
	}
}

func TestFamilyFunctionsIndependent(t *testing.T) {
	fam := MustNewFamily(4, 99)
	// Different functions should disagree on at least some inputs.
	for i := 1; i < fam.K(); i++ {
		same := true
		for tok := uint32(0); tok < 32; tok++ {
			if fam.Func(0).Hash(tok) != fam.Func(i).Hash(tok) {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("functions 0 and %d agree on all test tokens", i)
		}
	}
}

func TestHashRange(t *testing.T) {
	fam := MustNewFamily(4, 3)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		tok := rng.Uint32()
		for j := 0; j < fam.K(); j++ {
			h := fam.Func(j).Hash(tok)
			if h >= MersennePrime61 {
				t.Fatalf("hash %d out of range for token %d", h, tok)
			}
		}
	}
}

func TestMulAddMod61MatchesBigIntSemantics(t *testing.T) {
	// Verify modular arithmetic against a slow reference on random inputs.
	ref := func(a, x, b uint64) uint64 {
		// Compute (a*x + b) mod p via repeated 64-bit safe steps using
		// math/big-free double-and-add on 61-bit chunks.
		const p = MersennePrime61
		a %= p
		x %= p
		b %= p
		var r uint64
		for bit := 62; bit >= 0; bit-- {
			r = addMod(r, r, p)
			if x&(1<<uint(bit)) != 0 {
				r = addMod(r, a, p)
			}
		}
		return addMod(r, b, p)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		a := rng.Uint64() % MersennePrime61
		x := rng.Uint64() % MersennePrime61
		b := rng.Uint64() % MersennePrime61
		got := mulAddMod61(a, x, b)
		want := ref(a, x, b)
		if got != want {
			t.Fatalf("mulAddMod61(%d,%d,%d) = %d, want %d", a, x, b, got, want)
		}
	}
}

func addMod(a, b, p uint64) uint64 {
	// a,b < p < 2^61 so a+b cannot overflow uint64.
	s := a + b
	if s >= p {
		s -= p
	}
	return s
}

func TestMinHashIgnoresDuplicates(t *testing.T) {
	fam := MustNewFamily(8, 11)
	seq := []uint32{5, 9, 5, 5, 9, 2}
	dedup := []uint32{5, 9, 2}
	for i := 0; i < fam.K(); i++ {
		a, err := fam.MinHash(i, seq)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fam.MinHash(i, dedup)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("min-hash differs between sequence and its distinct set at func %d", i)
		}
	}
}

func TestMinHashEmpty(t *testing.T) {
	fam := MustNewFamily(2, 1)
	if _, err := fam.MinHash(0, nil); err != ErrEmptySequence {
		t.Fatalf("MinHash(empty) err = %v, want ErrEmptySequence", err)
	}
	if _, err := fam.Sketch(nil); err != ErrEmptySequence {
		t.Fatalf("Sketch(empty) err = %v, want ErrEmptySequence", err)
	}
}

func TestMinHashIsMinimum(t *testing.T) {
	fam := MustNewFamily(4, 21)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		seq := make([]uint32, n)
		for i := range seq {
			seq[i] = rng.Uint32() % 1000
		}
		for j := 0; j < fam.K(); j++ {
			got, err := fam.MinHash(j, seq)
			if err != nil {
				t.Fatal(err)
			}
			want := fam.Func(j).Hash(seq[0])
			for _, tok := range seq[1:] {
				if h := fam.Func(j).Hash(tok); h < want {
					want = h
				}
			}
			if got != want {
				t.Fatalf("MinHash = %d, want %d", got, want)
			}
		}
	}
}

func TestSketchAndCollisions(t *testing.T) {
	fam := MustNewFamily(16, 33)
	a := []uint32{1, 2, 3, 4, 5}
	sa, err := fam.Sketch(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(sa) != 16 {
		t.Fatalf("sketch length %d, want 16", len(sa))
	}
	sb, _ := fam.Sketch(a)
	if Collisions(sa, sb) != 16 {
		t.Fatal("identical sequences should collide on every function")
	}
	if EstimateJaccard(sa, sb) != 1 {
		t.Fatal("identical sequences should estimate Jaccard 1")
	}
	disjoint := []uint32{100, 200, 300}
	sc, _ := fam.Sketch(disjoint)
	if got := EstimateJaccard(sa, sc); got > 0.25 {
		t.Fatalf("disjoint sequences estimated Jaccard %v, want near 0", got)
	}
}

func TestCollisionsMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Collisions with mismatched lengths should panic")
		}
	}()
	Collisions([]uint64{1}, []uint64{1, 2})
}

// TestEstimatorUnbiased checks that the min-hash collision fraction
// concentrates around the true distinct Jaccard similarity.
func TestEstimatorUnbiased(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	fam := MustNewFamily(512, 77)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		// Build two overlapping sets with known Jaccard.
		common := 20 + rng.Intn(30)
		onlyA := rng.Intn(20)
		onlyB := rng.Intn(20)
		var a, b []uint32
		next := uint32(trial * 100000)
		for i := 0; i < common; i++ {
			a = append(a, next)
			b = append(b, next)
			next++
		}
		for i := 0; i < onlyA; i++ {
			a = append(a, next)
			next++
		}
		for i := 0; i < onlyB; i++ {
			b = append(b, next)
			next++
		}
		truth := float64(common) / float64(common+onlyA+onlyB)
		sa, _ := fam.Sketch(a)
		sb, _ := fam.Sketch(b)
		est := EstimateJaccard(sa, sb)
		// k=512 gives std dev <= 1/(2*sqrt(512)) ~ 0.022; allow 5 sigma.
		if math.Abs(est-truth) > 0.12 {
			t.Fatalf("trial %d: estimate %v too far from truth %v", trial, est, truth)
		}
	}
}

func TestDistinctJaccard(t *testing.T) {
	cases := []struct {
		a, b []uint32
		want float64
	}{
		{nil, nil, 1},
		{[]uint32{1}, nil, 0},
		{nil, []uint32{1}, 0},
		{[]uint32{1, 2, 3}, []uint32{1, 2, 3}, 1},
		{[]uint32{1, 2, 3}, []uint32{4, 5, 6}, 0},
		{[]uint32{1, 2}, []uint32{2, 3}, 1.0 / 3},
		// Paper's example: (A,A,A,B,B) vs (A,B,B,B,C) -> distinct 2/3.
		{[]uint32{1, 1, 1, 2, 2}, []uint32{1, 2, 2, 2, 3}, 2.0 / 3},
	}
	for i, c := range cases {
		if got := DistinctJaccard(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: DistinctJaccard = %v, want %v", i, got, c.want)
		}
	}
}

func TestMultisetJaccard(t *testing.T) {
	cases := []struct {
		a, b []uint32
		want float64
	}{
		{nil, nil, 1},
		{[]uint32{1}, nil, 0},
		{[]uint32{1, 2, 3}, []uint32{1, 2, 3}, 1},
		// Paper's example: (A,A,A,B,B) vs (A,B,B,B,C) -> 3/7.
		{[]uint32{1, 1, 1, 2, 2}, []uint32{1, 2, 2, 2, 3}, 3.0 / 7},
		{[]uint32{1, 1}, []uint32{1}, 0.5},
	}
	for i, c := range cases {
		if got := MultisetJaccard(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: MultisetJaccard = %v, want %v", i, got, c.want)
		}
	}
}

func TestJaccardProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	// Symmetry and range for both metrics.
	sym := func(a, b []uint32) bool {
		d1, d2 := DistinctJaccard(a, b), DistinctJaccard(b, a)
		m1, m2 := MultisetJaccard(a, b), MultisetJaccard(b, a)
		return d1 == d2 && m1 == m2 &&
			d1 >= 0 && d1 <= 1 && m1 >= 0 && m1 <= 1
	}
	if err := quick.Check(sym, cfg); err != nil {
		t.Error(err)
	}
	// Self-similarity is 1.
	self := func(a []uint32) bool {
		if len(a) == 0 {
			return true
		}
		return DistinctJaccard(a, a) == 1 && MultisetJaccard(a, a) == 1
	}
	if err := quick.Check(self, cfg); err != nil {
		t.Error(err)
	}
	// Multiset <= distinct does NOT hold in general, but both are bounded
	// by the containment check: intersection non-empty iff similarity > 0.
	pos := func(a, b []uint32) bool {
		inter := false
		set := map[uint32]bool{}
		for _, x := range a {
			set[x] = true
		}
		for _, y := range b {
			if set[y] {
				inter = true
				break
			}
		}
		d := DistinctJaccard(a, b)
		m := MultisetJaccard(a, b)
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		return (d > 0) == inter && (m > 0) == inter
	}
	if err := quick.Check(pos, cfg); err != nil {
		t.Error(err)
	}
}

func TestDistinctCount(t *testing.T) {
	if got := DistinctCount(nil); got != 0 {
		t.Fatalf("DistinctCount(nil) = %d", got)
	}
	if got := DistinctCount([]uint32{1, 1, 2, 3, 3, 3}); got != 3 {
		t.Fatalf("DistinctCount = %d, want 3", got)
	}
}

// TestMinHashCollisionMatchesSetEquality: under one hash function, two
// sequences with the same distinct token set always share the min-hash.
func TestMinHashCollisionSetInvariance(t *testing.T) {
	fam := MustNewFamily(4, 123)
	f := func(perm []uint32) bool {
		if len(perm) == 0 {
			return true
		}
		// Shuffled copy with duplicates appended has the same distinct set.
		dup := append(append([]uint32{}, perm...), perm[0], perm[len(perm)/2])
		for i := 0; i < fam.K(); i++ {
			a, _ := fam.MinHash(i, perm)
			b, _ := fam.MinHash(i, dup)
			if a != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMinHash64Tokens(b *testing.B) {
	fam := MustNewFamily(1, 1)
	seq := make([]uint32, 64)
	for i := range seq {
		seq[i] = uint32(i * 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = fam.MinHash(0, seq)
	}
}

func BenchmarkSketchK32(b *testing.B) {
	fam := MustNewFamily(32, 1)
	seq := make([]uint32, 64)
	for i := range seq {
		seq[i] = uint32(i * 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = fam.Sketch(seq)
	}
}
