// Package hash provides seeded universal hash families and min-hash
// sketching for token sequences.
//
// The near-duplicate search algorithm estimates the Jaccard similarity of
// two sequences by the fraction of k independent min-hash functions on
// which they collide. Each function in a Family maps a 32-bit token id to
// a 64-bit hash value; the min-hash of a sequence under a function is the
// minimum hash over its (distinct) tokens.
//
// The family uses degree-1 polynomial hashing over the Mersenne prime
// 2^61-1, which is 2-universal: for a != b, Pr[h(a)=h(b)] <= 1/p. All
// randomness is derived from a caller-provided seed so indexes and
// queries are reproducible.
package hash

import (
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
)

// MersennePrime61 is the modulus of the hash family, 2^61 - 1.
const MersennePrime61 = (1 << 61) - 1

// Func is a single universal hash function h(x) = (a*x + b) mod p with
// 0 < a < p and 0 <= b < p. The zero value is not a valid hash function;
// obtain instances from NewFamily.
type Func struct {
	a uint64
	b uint64
}

// Hash maps a token id to a value in [0, 2^61-1).
func (f Func) Hash(token uint32) uint64 {
	return mulAddMod61(f.a, uint64(token), f.b)
}

// mulAddMod61 computes (a*x + b) mod (2^61-1) without overflow using
// 128-bit intermediate arithmetic.
func mulAddMod61(a, x, b uint64) uint64 {
	hi, lo := bits.Mul64(a, x)
	// Reduce the 128-bit product modulo 2^61-1. With p = 2^61-1,
	// 2^61 ≡ 1 (mod p), so n = hi*2^64 + lo ≡ hi*8 + lo (mod p) after
	// splitting lo into its low 61 bits and high 3 bits.
	r := (lo & MersennePrime61) + (lo >> 61) + (hi << 3 & MersennePrime61) + (hi >> 58)
	r = (r & MersennePrime61) + (r >> 61)
	r += b
	r = (r & MersennePrime61) + (r >> 61)
	if r >= MersennePrime61 {
		r -= MersennePrime61
	}
	return r
}

// Family is a set of k independent universal hash functions.
type Family struct {
	funcs []Func
	seed  int64
}

// NewFamily creates k independent hash functions derived
// deterministically from seed.
func NewFamily(k int, seed int64) (*Family, error) {
	if k <= 0 {
		return nil, fmt.Errorf("hash: family size must be positive, got %d", k)
	}
	rng := rand.New(rand.NewSource(seed))
	funcs := make([]Func, k)
	for i := range funcs {
		// a must be non-zero for universality.
		a := uint64(rng.Int63n(MersennePrime61-1)) + 1
		b := uint64(rng.Int63n(MersennePrime61))
		funcs[i] = Func{a: a, b: b}
	}
	return &Family{funcs: funcs, seed: seed}, nil
}

// MustNewFamily is NewFamily but panics on error. Intended for
// package-level variables and tests with constant arguments.
func MustNewFamily(k int, seed int64) *Family {
	f, err := NewFamily(k, seed)
	if err != nil {
		panic(err)
	}
	return f
}

// K returns the number of hash functions in the family.
func (fam *Family) K() int { return len(fam.funcs) }

// Seed returns the seed the family was derived from.
func (fam *Family) Seed() int64 { return fam.seed }

// Func returns the i-th hash function, 0 <= i < K().
func (fam *Family) Func(i int) Func { return fam.funcs[i] }

// ErrEmptySequence is returned when a min-hash of an empty sequence is
// requested.
var ErrEmptySequence = errors.New("hash: empty sequence has no min-hash")

// MinHash returns the minimum hash value over the tokens of seq under the
// i-th function. Duplicate tokens do not affect the result, so this is
// the min-hash of the distinct token set.
func (fam *Family) MinHash(i int, seq []uint32) (uint64, error) {
	if len(seq) == 0 {
		return 0, ErrEmptySequence
	}
	f := fam.funcs[i]
	min := f.Hash(seq[0])
	for _, tok := range seq[1:] {
		if h := f.Hash(tok); h < min {
			min = h
		}
	}
	return min, nil
}

// Sketch returns the k-mins sketch of seq: the min-hash under every
// function of the family, in function order.
func (fam *Family) Sketch(seq []uint32) ([]uint64, error) {
	return fam.SketchAppend(seq, nil)
}

// SketchAppend appends the k-mins sketch of seq to dst and returns the
// extended slice, letting callers reuse one scratch buffer across many
// sketches. dst may be nil.
func (fam *Family) SketchAppend(seq []uint32, dst []uint64) ([]uint64, error) {
	if len(seq) == 0 {
		return dst, ErrEmptySequence
	}
	for i := range fam.funcs {
		h, err := fam.MinHash(i, seq)
		if err != nil {
			return dst, err
		}
		dst = append(dst, h)
	}
	return dst, nil
}

// Collisions counts positions where the two sketches agree. Sketches must
// come from the same family; mismatched lengths are a programming error.
func Collisions(a, b []uint64) int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("hash: sketch length mismatch %d vs %d", len(a), len(b)))
	}
	n := 0
	for i := range a {
		if a[i] == b[i] {
			n++
		}
	}
	return n
}

// EstimateJaccard estimates the Jaccard similarity of the sequences whose
// sketches are a and b as the collision fraction. The estimator is
// unbiased with variance O(1/k).
func EstimateJaccard(a, b []uint64) float64 {
	if len(a) == 0 {
		return 0
	}
	return float64(Collisions(a, b)) / float64(len(a))
}
