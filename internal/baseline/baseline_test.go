package baseline

import (
	"math/rand"
	"reflect"
	"testing"

	"ndss/internal/corpus"
	"ndss/internal/hash"
)

func dupCorpus(seed int64) *corpus.Corpus {
	return corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts:      15,
		MinLength:     20,
		MaxLength:     60,
		VocabSize:     40,
		ZipfS:         1.3,
		Seed:          seed,
		DupRate:       0.5,
		DupSnippetLen: 20,
		DupMutateProb: 0.05,
	})
}

func TestMinHashScanFindsExactCopy(t *testing.T) {
	c := corpus.New([][]uint32{
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		{100, 101, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 200},
	})
	fam := hash.MustNewFamily(16, 3)
	q := []uint32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	spans := MinHashScan(c, fam, q, 1.0, 5)
	foundText0, foundText1 := false, false
	for _, s := range spans {
		if s.TextID == 0 {
			foundText0 = true
		}
		if s.TextID == 1 && s.Start <= 2 && s.End >= 11 {
			foundText1 = true
		}
	}
	if !foundText0 || !foundText1 {
		t.Fatalf("exact copies not found: %+v", spans)
	}
}

func TestTrueJaccardScan(t *testing.T) {
	c := corpus.New([][]uint32{
		{1, 2, 3, 4, 5, 99, 98, 97, 96, 95},
	})
	q := []uint32{1, 2, 3, 4, 5}
	// The prefix [0,4] equals the query: Jaccard 1.
	spans := TrueJaccardScan(c, q, 1.0, 5)
	if len(spans) != 1 || spans[0].Start != 0 || spans[0].End < 4 {
		t.Fatalf("spans = %+v", spans)
	}
	// Lower threshold: longer sequences qualify too.
	loose := TrueJaccardScan(c, q, 0.5, 5)
	if len(loose) != 1 || loose[0].End <= spans[0].End {
		t.Fatalf("loose spans = %+v", loose)
	}
	// Impossible threshold over disjoint tokens.
	if got := TrueJaccardScan(c, []uint32{500, 501, 502, 503, 504}, 0.5, 5); got != nil {
		t.Fatalf("disjoint query matched: %+v", got)
	}
}

func TestTrueJaccardScanIncrementalMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := dupCorpus(7)
	for trial := 0; trial < 5; trial++ {
		q, _, _, ok := corpus.PlantQuery(c, 12, 0.2, 40, rng)
		if !ok {
			t.Fatal("PlantQuery failed")
		}
		theta := 0.6
		tt := 5
		spans := TrueJaccardScan(c, q, theta, tt)
		// Re-verify each merged span contains at least one qualifying
		// sequence by direct recomputation.
		for _, s := range spans {
			text := c.Text(s.TextID)
			found := false
			for i := s.Start; i <= s.End && !found; i++ {
				for j := i + int32(tt) - 1; j <= s.End && !found; j++ {
					if hash.DistinctJaccard(q, text[i:j+1]) >= theta {
						found = true
					}
				}
			}
			if !found {
				t.Fatalf("span %+v holds no qualifying sequence", s)
			}
		}
	}
}

func TestExactIndexLookup(t *testing.T) {
	c := corpus.New([][]uint32{
		{5, 6, 7, 8, 9},
		{1, 5, 6, 7, 2},
		{5, 6, 7, 5, 6, 7},
	})
	e := NewExactIndex(c)
	locs := e.Lookup([]uint32{5, 6, 7}, 0)
	want := []Location{{0, 0}, {1, 1}, {2, 0}, {2, 3}}
	if !reflect.DeepEqual(locs, want) {
		t.Fatalf("locs = %+v, want %+v", locs, want)
	}
	if !e.Contains([]uint32{7, 8, 9}) {
		t.Fatal("suffix not found")
	}
	if e.Contains([]uint32{9, 1}) {
		t.Fatal("cross-text match reported")
	}
	if e.Contains([]uint32{42}) {
		t.Fatal("absent token found")
	}
	if got := e.Lookup(nil, 0); got != nil {
		t.Fatal("empty query should find nothing")
	}
	if got := e.Lookup([]uint32{5, 6, 7}, 2); len(got) != 2 {
		t.Fatalf("maxHits ignored: %d", len(got))
	}
}

func TestExactIndexMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	c := dupCorpus(21)
	e := NewExactIndex(c)
	for trial := 0; trial < 20; trial++ {
		// Half the queries are planted (guaranteed present).
		var q []uint32
		if trial%2 == 0 {
			var ok bool
			q, _, _, ok = corpus.PlantQuery(c, 8, 0, 40, rng)
			if !ok {
				t.Fatal("plant failed")
			}
		} else {
			q = make([]uint32, 8)
			for i := range q {
				q[i] = uint32(rng.Intn(40))
			}
		}
		var want []Location
		for id := 0; id < c.NumTexts(); id++ {
			text := c.Text(uint32(id))
		posLoop:
			for i := 0; i+len(q) <= len(text); i++ {
				for j := range q {
					if text[i+j] != q[j] {
						continue posLoop
					}
				}
				want = append(want, Location{TextID: uint32(id), Pos: int32(i)})
			}
		}
		got := e.Lookup(q, 0)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: got %+v, want %+v", trial, got, want)
		}
	}
}

func TestSeedExtendFindsExactCopies(t *testing.T) {
	c := dupCorpus(33)
	se := NewSeedExtend(c, 6)
	rng := rand.New(rand.NewSource(2))
	q, srcID, srcStart, ok := corpus.PlantQuery(c, 15, 0, 40, rng)
	if !ok {
		t.Fatal("plant failed")
	}
	spans := se.Search(q, 0.9, 5)
	found := false
	for _, s := range spans {
		if s.TextID == srcID && s.Start <= srcStart && srcStart <= s.End {
			found = true
		}
	}
	if !found {
		t.Fatalf("seed-and-extend missed an exact copy at text %d pos %d: %+v", srcID, srcStart, spans)
	}
}

func TestSeedExtendNoGuarantee(t *testing.T) {
	// A near-duplicate with every w-gram broken is invisible to
	// seed-and-extend but has high Jaccard: demonstrate the recall gap
	// that motivates the paper's guaranteed algorithm.
	text := make([]uint32, 24)
	for i := range text {
		text[i] = uint32(i + 10)
	}
	c := corpus.New([][]uint32{text})
	// Query: same token SET but reordered so no 4 consecutive tokens of
	// the text appear in order.
	q := make([]uint32, len(text))
	for i, p := range rand.New(rand.NewSource(9)).Perm(len(text)) {
		q[i] = text[p]
	}
	se := NewSeedExtend(c, 4)
	if got := se.Search(q, 0.9, 5); len(got) != 0 {
		// A lucky seed may survive the permutation; only fail when the
		// permutation truly broke all seeds.
		t.Logf("permutation left a seed intact: %+v", got)
	}
	// True Jaccard search finds it: identical token sets.
	spans := TrueJaccardScan(c, q, 0.9, 5)
	if len(spans) == 0 {
		t.Fatal("true Jaccard scan should find the permuted duplicate")
	}
}

func TestSeedExtendShortQuery(t *testing.T) {
	c := dupCorpus(41)
	se := NewSeedExtend(c, 8)
	if got := se.Search([]uint32{1, 2, 3}, 0.5, 2); got != nil {
		t.Fatalf("query shorter than seed width matched: %+v", got)
	}
}

func TestFingerprintOrderSensitive(t *testing.T) {
	a := fingerprint([]uint32{1, 2, 3})
	b := fingerprint([]uint32{3, 2, 1})
	if a == b {
		t.Fatal("fingerprint should be order-sensitive")
	}
	if a != fingerprint([]uint32{1, 2, 3}) {
		t.Fatal("fingerprint not deterministic")
	}
}
