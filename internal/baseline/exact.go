package baseline

import (
	"encoding/binary"
	"index/suffixarray"
	"sort"

	"ndss/internal/corpus"
)

// ExactIndex finds verbatim occurrences of a token sequence in a corpus
// using a suffix array, the approach prior work uses to measure exact
// memorization (e.g. training-data dedup via suffix arrays). Tokens are
// encoded as fixed-width 4-byte words; raw byte matches are filtered to
// word-aligned, non-text-spanning hits.
type ExactIndex struct {
	sa *suffixarray.Index
	// starts[i] is the byte offset where text i begins in the
	// concatenated buffer; a final sentinel holds the total length.
	starts []int64
}

// Location is one verbatim occurrence.
type Location struct {
	TextID uint32
	Pos    int32 // token offset within the text
}

// NewExactIndex builds the suffix array over the whole corpus.
// Construction is O(N log N) over N total tokens.
func NewExactIndex(c *corpus.Corpus) *ExactIndex {
	total := c.TotalTokens()
	buf := make([]byte, 0, total*4)
	starts := make([]int64, 0, c.NumTexts()+1)
	for id := 0; id < c.NumTexts(); id++ {
		starts = append(starts, int64(len(buf)))
		for _, tok := range c.Text(uint32(id)) {
			var w [4]byte
			binary.BigEndian.PutUint32(w[:], tok)
			buf = append(buf, w[:]...)
		}
	}
	starts = append(starts, int64(len(buf)))
	return &ExactIndex{sa: suffixarray.New(buf), starts: starts}
}

// Lookup returns every verbatim occurrence of query, or up to maxHits of
// them when maxHits > 0. Results are ordered by (TextID, Pos).
func (e *ExactIndex) Lookup(query []uint32, maxHits int) []Location {
	if len(query) == 0 {
		return nil
	}
	pat := make([]byte, 4*len(query))
	for i, tok := range query {
		binary.BigEndian.PutUint32(pat[4*i:], tok)
	}
	// Over-fetch: unaligned byte matches are discarded below.
	offsets := e.sa.Lookup(pat, -1)
	var out []Location
	for _, off := range offsets {
		if off%4 != 0 {
			continue
		}
		textIdx := sort.Search(len(e.starts)-1, func(i int) bool { return e.starts[i+1] > int64(off) })
		// The match must not span into the next text.
		if int64(off)+int64(len(pat)) > e.starts[textIdx+1] {
			continue
		}
		out = append(out, Location{
			TextID: uint32(textIdx),
			Pos:    int32((int64(off) - e.starts[textIdx]) / 4),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TextID != out[j].TextID {
			return out[i].TextID < out[j].TextID
		}
		return out[i].Pos < out[j].Pos
	})
	if maxHits > 0 && len(out) > maxHits {
		out = out[:maxHits]
	}
	return out
}

// Contains reports whether query occurs verbatim anywhere in the corpus.
func (e *ExactIndex) Contains(query []uint32) bool {
	return len(e.Lookup(query, 1)) > 0
}
