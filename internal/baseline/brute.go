// Package baseline provides the comparison systems the paper's
// evaluation is framed against: an exact brute-force scan of Definition
// 2 (ground truth for the index-based algorithm), a true-Jaccard scan
// (Definition 1 ground truth, for recall measurements), a suffix-array
// exact-substring index (the "exact memorization" tooling of prior
// work), and a seed-and-extend heuristic (the related-work approach
// without guarantees).
package baseline

import (
	"math"
	"sort"

	"ndss/internal/corpus"
	"ndss/internal/hash"
	"ndss/internal/search"
)

// Span is a reported near-duplicate region in a text.
type Span struct {
	TextID     uint32
	Start, End int32
}

// MinHashScan answers Definition 2 by brute force: it enumerates every
// sequence of length >= t in every text, counts min-hash collisions with
// the query incrementally, and merges overlapping qualifying sequences.
// O(k * n^2) per text — usable only at test scale, but exact by
// construction.
func MinHashScan(c *corpus.Corpus, fam *hash.Family, query []uint32, theta float64, t int) []Span {
	k := fam.K()
	beta := int(math.Ceil(float64(k) * theta))
	if beta < 1 {
		beta = 1
	}
	qs, err := fam.Sketch(query)
	if err != nil {
		return nil
	}
	var out []Span
	mins := make([]uint64, k)
	for id := 0; id < c.NumTexts(); id++ {
		text := c.Text(uint32(id))
		var qualifying []search.Interval
		for i := 0; i < len(text); i++ {
			for fn := 0; fn < k; fn++ {
				mins[fn] = fam.Func(fn).Hash(text[i])
			}
			for j := i; j < len(text); j++ {
				if j > i {
					for fn := 0; fn < k; fn++ {
						if h := fam.Func(fn).Hash(text[j]); h < mins[fn] {
							mins[fn] = h
						}
					}
				}
				if j-i+1 < t {
					continue
				}
				coll := 0
				for fn := 0; fn < k; fn++ {
					if mins[fn] == qs[fn] {
						coll++
					}
				}
				if coll >= beta {
					qualifying = append(qualifying, search.Interval{Lo: int32(i), Hi: int32(j)})
				}
			}
		}
		out = appendMergedSpans(out, uint32(id), qualifying)
	}
	return out
}

// TrueJaccardScan answers Definition 1 by brute force: sequences whose
// exact distinct Jaccard similarity with the query is >= theta, merged
// per text. It maintains the intersection/union sizes incrementally
// while extending the sequence end. O(n^2) per text.
func TrueJaccardScan(c *corpus.Corpus, query []uint32, theta float64, t int) []Span {
	qset := make(map[uint32]bool, len(query))
	for _, tok := range query {
		qset[tok] = true
	}
	qDistinct := len(qset)
	var out []Span
	for id := 0; id < c.NumTexts(); id++ {
		text := c.Text(uint32(id))
		var qualifying []search.Interval
		counts := make(map[uint32]int)
		for i := 0; i < len(text); i++ {
			clear(counts)
			inter, extra := 0, 0 // |S ∩ Q|, |S \ Q| over distinct tokens
			for j := i; j < len(text); j++ {
				tok := text[j]
				if counts[tok] == 0 {
					if qset[tok] {
						inter++
					} else {
						extra++
					}
				}
				counts[tok]++
				if j-i+1 < t {
					continue
				}
				union := qDistinct + extra
				if float64(inter) >= theta*float64(union) {
					qualifying = append(qualifying, search.Interval{Lo: int32(i), Hi: int32(j)})
				}
			}
		}
		out = appendMergedSpans(out, uint32(id), qualifying)
	}
	return out
}

// appendMergedSpans merges overlapping qualifying intervals of one text
// and appends them to out.
func appendMergedSpans(out []Span, textID uint32, qualifying []search.Interval) []Span {
	if len(qualifying) == 0 {
		return out
	}
	sort.Slice(qualifying, func(a, b int) bool {
		if qualifying[a].Lo != qualifying[b].Lo {
			return qualifying[a].Lo < qualifying[b].Lo
		}
		return qualifying[a].Hi < qualifying[b].Hi
	})
	cur := qualifying[0]
	for _, iv := range qualifying[1:] {
		if iv.Lo <= cur.Hi {
			if iv.Hi > cur.Hi {
				cur.Hi = iv.Hi
			}
		} else {
			out = append(out, Span{TextID: textID, Start: cur.Lo, End: cur.Hi})
			cur = iv
		}
	}
	return append(out, Span{TextID: textID, Start: cur.Lo, End: cur.Hi})
}
