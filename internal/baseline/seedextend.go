package baseline

import (
	"ndss/internal/corpus"
	"ndss/internal/hash"
)

// SeedExtend is the classic seed-and-extend heuristic from the
// similarity-search literature (BLAST-style): find exact w-gram seed
// matches between the query and the corpus, extend each seed greedily in
// both directions, and keep extensions whose Jaccard similarity against
// the query clears the threshold. Unlike the compact-window algorithm it
// offers NO completeness guarantee — a near-duplicate with no exact
// w-gram in common with the query is invisible to it. It exists as the
// related-work comparator for the recall experiments.
type SeedExtend struct {
	c *corpus.Corpus
	w int
	// seeds maps a w-gram fingerprint to its occurrences.
	seeds map[uint64][]Location
}

// NewSeedExtend indexes every w-gram of the corpus. w is the seed width
// in tokens (common values: 4–16).
func NewSeedExtend(c *corpus.Corpus, w int) *SeedExtend {
	if w < 1 {
		w = 1
	}
	se := &SeedExtend{c: c, w: w, seeds: make(map[uint64][]Location)}
	for id := 0; id < c.NumTexts(); id++ {
		text := c.Text(uint32(id))
		for i := 0; i+w <= len(text); i++ {
			fp := fingerprint(text[i : i+w])
			se.seeds[fp] = append(se.seeds[fp], Location{TextID: uint32(id), Pos: int32(i)})
		}
	}
	return se
}

// fingerprint hashes a w-gram order-sensitively (FNV-1a over the token
// words).
func fingerprint(gram []uint32) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, tok := range gram {
		for s := 0; s < 32; s += 8 {
			h ^= uint64(tok>>s) & 0xff
			h *= prime64
		}
	}
	return h
}

// Search looks for near-duplicates of query with Jaccard >= theta and
// length >= t. Each seed hit is extended to the query's length and
// verified with the exact distinct Jaccard similarity; overlapping
// survivors are merged. Recall is limited by seed availability.
func (se *SeedExtend) Search(query []uint32, theta float64, t int) []Span {
	if len(query) < se.w {
		return nil
	}
	type cand struct{ lo, hi int32 }
	regions := map[uint32]map[cand]bool{}
	for qi := 0; qi+se.w <= len(query); qi++ {
		fp := fingerprint(query[qi : qi+se.w])
		for _, loc := range se.seeds[fp] {
			// Extend the seed to cover what the full query would cover
			// if aligned at this seed.
			text := se.c.Text(loc.TextID)
			lo := loc.Pos - int32(qi)
			hi := lo + int32(len(query)) - 1
			if lo < 0 {
				lo = 0
			}
			if hi >= int32(len(text)) {
				hi = int32(len(text)) - 1
			}
			if int(hi-lo+1) < t {
				continue
			}
			m := regions[loc.TextID]
			if m == nil {
				m = map[cand]bool{}
				regions[loc.TextID] = m
			}
			m[cand{lo, hi}] = true
		}
	}
	var out []Span
	for textID, cands := range regions {
		text := se.c.Text(textID)
		var spans []Span
		for cd := range cands {
			if hash.DistinctJaccard(query, text[cd.lo:cd.hi+1]) >= theta {
				spans = append(spans, Span{TextID: textID, Start: cd.lo, End: cd.hi})
			}
		}
		out = append(out, mergeSpans(spans)...)
	}
	return out
}

// mergeSpans merges overlapping spans of one text.
func mergeSpans(spans []Span) []Span {
	if len(spans) == 0 {
		return nil
	}
	ivs := make([]struct{ lo, hi int32 }, len(spans))
	for i, s := range spans {
		ivs[i] = struct{ lo, hi int32 }{s.Start, s.End}
	}
	// Insertion sort: candidate sets are small.
	for i := 1; i < len(ivs); i++ {
		for j := i; j > 0 && ivs[j].lo < ivs[j-1].lo; j-- {
			ivs[j], ivs[j-1] = ivs[j-1], ivs[j]
		}
	}
	var out []Span
	cur := ivs[0]
	for _, iv := range ivs[1:] {
		if iv.lo <= cur.hi {
			if iv.hi > cur.hi {
				cur.hi = iv.hi
			}
		} else {
			out = append(out, Span{TextID: spans[0].TextID, Start: cur.lo, End: cur.hi})
			cur = iv
		}
	}
	return append(out, Span{TextID: spans[0].TextID, Start: cur.lo, End: cur.hi})
}
