package fsio

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.bin")
	f, err := OS.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := OS.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello" {
		t.Fatalf("read back %q", data)
	}
	if err := OS.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	st, err := OS.Stat(path)
	if err != nil || st.Size() != 5 {
		t.Fatalf("stat: %v size %d", err, st.Size())
	}
	matches, err := OS.Glob(filepath.Join(dir, "*.bin"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("glob: %v %v", matches, err)
	}
}

func TestWriteFileSyncRemovesPartialOnError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "meta.json")
	ffs := NewFaultFS(OS).SetCrash(false)
	ffs.FailAt(2) // Create is op 1, Write is op 2.
	if err := WriteFileSync(ffs, path, []byte("payload")); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("partial file left behind: %v", err)
	}
}

// TestFaultFSCountsOps establishes that a disarmed FaultFS counts
// mutating ops and never fails.
func TestFaultFSCountsOps(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS)
	f, err := ffs.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("x")) // op 2
	f.Sync()             // op 3
	f.Close()
	if err := ffs.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")); err != nil { // op 4
		t.Fatal(err)
	}
	if err := ffs.Remove(filepath.Join(dir, "b")); err != nil { // op 5
		t.Fatal(err)
	}
	if got := ffs.Ops(); got != 5 {
		t.Fatalf("ops = %d, want 5", got)
	}
	if ffs.Tripped() {
		t.Fatal("disarmed FaultFS tripped")
	}
}

// TestFaultFSCrashSemantics checks that after the trip every further
// mutating op fails while reads keep working.
func TestFaultFSCrashSemantics(t *testing.T) {
	dir := t.TempDir()
	pre := filepath.Join(dir, "pre")
	if err := os.WriteFile(pre, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	ffs := NewFaultFS(OS).FailAt(1)
	if _, err := ffs.Create(filepath.Join(dir, "new")); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed op should fail, got %v", err)
	}
	if !ffs.Tripped() {
		t.Fatal("fault did not trip")
	}
	// Post-crash: mutations fail, reads still work.
	if err := ffs.Remove(pre); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-crash mutation should fail, got %v", err)
	}
	if _, err := ffs.ReadFile(pre); err != nil {
		t.Fatalf("post-crash read should work: %v", err)
	}
	if _, err := ffs.Stat(pre); err != nil {
		t.Fatalf("post-crash stat should work: %v", err)
	}
}

// TestFaultFSSingleFault checks that with crash mode off only the Nth
// op fails and the workload can recover.
func TestFaultFSSingleFault(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS).SetCrash(false).FailAt(1)
	if _, err := ffs.Create(filepath.Join(dir, "a")); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed op should fail, got %v", err)
	}
	f, err := ffs.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatalf("op after single fault should succeed: %v", err)
	}
	f.Close()
}

func TestFaultFSShortWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn")
	ffs := NewFaultFS(OS).SetShortWrite(true)
	f, err := ffs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	ffs.FailAt(1)
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	if n != 5 {
		t.Fatalf("short write persisted %d bytes, want 5", n)
	}
	f.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "01234" {
		t.Fatalf("torn file content %q", data)
	}
}

func TestFaultFSSetErr(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS).SetErr(syscall.ENOSPC).FailAt(1)
	_, err := ffs.Create(filepath.Join(dir, "x"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected wrapper, got %v", err)
	}
}

func TestFaultFSReadFault(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data")
	if err := os.WriteFile(path, []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	ffs := NewFaultFS(OS).FailReadAt("data", 4)
	f, err := ffs.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var buf [4]byte
	// Range [0,4) does not cover offset 4.
	if _, err := f.ReadAt(buf[:], 0); err != nil {
		t.Fatalf("read below fault offset should succeed: %v", err)
	}
	// Range [2,6) covers offset 4.
	if _, err := f.ReadAt(buf[:], 2); !errors.Is(err, ErrInjected) {
		t.Fatalf("read across fault offset should fail, got %v", err)
	}
	ffs.ClearReadFault()
	if _, err := f.ReadAt(buf[:], 2); err != nil {
		t.Fatalf("read after ClearReadFault should succeed: %v", err)
	}
}
