package fsio

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
)

// ErrInjected is the default error returned by an injected fault. Tests
// match it with errors.Is to tell injected failures from real ones.
var ErrInjected = errors.New("fsio: injected fault")

// FaultFS wraps another FS with deterministic fault injection. Every
// mutating operation (create, write, sync, rename, remove, mkdir) is
// numbered in execution order; the fault trips on the Nth one.
//
// Two failure models are supported:
//
//   - Crash (default): once tripped, every later mutating operation
//     fails too — nothing more reaches "disk", exactly as if the
//     process had been killed at that operation. Reads keep working so
//     error paths can unwind.
//   - Single fault (SetCrash(false)): only the Nth operation fails;
//     later ones succeed. This exercises error-path cleanup code,
//     which a real crash would never run.
//
// Independent of the op counter, FailReadAt arms a read fault: ReadAt
// calls on a matching file whose byte range covers the offset fail.
// The zero configuration injects nothing and only counts operations.
type FaultFS struct {
	inner FS

	mu         sync.Mutex
	ops        int   // guarded by mu
	failAt     int   // guarded by mu
	crash      bool  // guarded by mu
	shortWrite bool  // guarded by mu
	err        error // guarded by mu
	tripped    bool  // guarded by mu

	readPath  string // guarded by mu
	readOff   int64  // guarded by mu
	readArmed bool   // guarded by mu
}

// NewFaultFS wraps inner (usually OS) with fault injection disabled:
// operations are only counted until FailAt or FailReadAt arms a fault.
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{inner: inner, crash: true, err: ErrInjected}
}

// FailAt arms the op fault: the nth (1-based) mutating operation from
// now fails. n <= 0 disarms. The op counter is reset.
func (f *FaultFS) FailAt(n int) *FaultFS {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops = 0
	f.failAt = n
	f.tripped = false
	return f
}

// SetCrash selects between crash semantics (true, the default: all
// mutating ops after the trip fail too) and single-fault semantics.
func (f *FaultFS) SetCrash(crash bool) *FaultFS {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crash = crash
	return f
}

// SetShortWrite makes the tripping operation, when it is a file write,
// persist the first half of its buffer before failing — a torn write.
func (f *FaultFS) SetShortWrite(short bool) *FaultFS {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.shortWrite = short
	return f
}

// SetErr replaces the injected error (e.g. syscall.ENOSPC).
func (f *FaultFS) SetErr(err error) *FaultFS {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.err = fmt.Errorf("%w: %w", ErrInjected, err)
	return f
}

// FailReadAt arms the read fault: ReadAt on any file whose name
// contains pathSubstr fails when the requested range covers off.
func (f *FaultFS) FailReadAt(pathSubstr string, off int64) *FaultFS {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.readPath = pathSubstr
	f.readOff = off
	f.readArmed = true
	return f
}

// ClearReadFault disarms the read fault.
func (f *FaultFS) ClearReadFault() *FaultFS {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.readArmed = false
	return f
}

// Ops returns the number of mutating operations attempted since the
// last FailAt. Run a workload with the fault disarmed to learn how
// many crash points it has.
func (f *FaultFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Tripped reports whether the op fault has fired.
func (f *FaultFS) Tripped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tripped
}

// step numbers one mutating operation. err non-nil means the operation
// must fail; first marks the operation that tripped the fault, and
// short is the shortWrite setting captured under the same lock — Write
// needs both and must not re-read the configuration outside the
// critical section.
func (f *FaultFS) step() (first, short bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	if f.tripped && f.crash {
		return false, f.shortWrite, f.err
	}
	if f.failAt > 0 && f.ops == f.failAt && !f.tripped {
		f.tripped = true
		return true, f.shortWrite, f.err
	}
	return false, f.shortWrite, nil
}

func (f *FaultFS) readFault(name string, off int64, n int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.readArmed || !strings.Contains(name, f.readPath) {
		return nil
	}
	if off <= f.readOff && f.readOff < off+int64(n) {
		return f.err
	}
	return nil
}

func (f *FaultFS) wrap(file File, err error) (File, error) {
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *FaultFS) Create(name string) (File, error) {
	if _, _, err := f.step(); err != nil {
		return nil, err
	}
	return f.wrap(f.inner.Create(name))
}

func (f *FaultFS) Open(name string) (File, error) {
	return f.wrap(f.inner.Open(name))
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if _, _, err := f.step(); err != nil {
		return nil, err
	}
	return f.wrap(f.inner.CreateTemp(dir, pattern))
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if _, _, err := f.step(); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) MkdirTemp(dir, pattern string) (string, error) {
	if _, _, err := f.step(); err != nil {
		return "", err
	}
	return f.inner.MkdirTemp(dir, pattern)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if _, _, err := f.step(); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if _, _, err := f.step(); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) RemoveAll(path string) error {
	if _, _, err := f.step(); err != nil {
		return err
	}
	return f.inner.RemoveAll(path)
}

func (f *FaultFS) Stat(name string) (os.FileInfo, error) { return f.inner.Stat(name) }
func (f *FaultFS) ReadFile(name string) ([]byte, error)  { return f.inner.ReadFile(name) }
func (f *FaultFS) Glob(pattern string) ([]string, error) { return f.inner.Glob(pattern) }

func (f *FaultFS) SyncDir(path string) error {
	if _, _, err := f.step(); err != nil {
		return err
	}
	return f.inner.SyncDir(path)
}

// faultFile routes writes and syncs through the fault machinery.
type faultFile struct {
	File
	fs *FaultFS
}

func (ff *faultFile) Write(p []byte) (int, error) {
	first, short, err := ff.fs.step()
	if err != nil {
		if first && short && len(p) > 1 {
			n, _ := ff.File.Write(p[:len(p)/2])
			return n, err
		}
		return 0, err
	}
	return ff.File.Write(p)
}

func (ff *faultFile) Sync() error {
	if _, _, err := ff.fs.step(); err != nil {
		return err
	}
	return ff.File.Sync()
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if err := ff.fs.readFault(ff.Name(), off, len(p)); err != nil {
		return 0, err
	}
	return ff.File.ReadAt(p, off)
}
