// Package fsio is the filesystem seam of the index lifecycle: a small
// interface over the os calls the index builders and readers perform,
// with a production implementation backed by the os package and a
// deterministic fault-injecting implementation for crash-safety tests.
//
// Builders take an FS so a test can kill a build at every single write
// operation and prove the previous index always survives; readers take
// an FS so injected read errors can be shown to surface as wrapped
// errors instead of panics.
package fsio

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// File is the subset of *os.File the index layer uses.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.Seeker
	io.Closer
	Name() string
	Stat() (os.FileInfo, error)
	Sync() error
}

// FS abstracts the filesystem operations of index construction,
// commit and reading. Implementations must be safe for concurrent use.
type FS interface {
	Create(name string) (File, error)
	Open(name string) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	MkdirAll(path string, perm os.FileMode) error
	MkdirTemp(dir, pattern string) (string, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	RemoveAll(path string) error
	Stat(name string) (os.FileInfo, error)
	ReadFile(name string) ([]byte, error)
	Glob(pattern string) ([]string, error)
	// SyncDir fsyncs a directory so renames and file creations inside
	// it are durable.
	SyncDir(path string) error
}

// OS is the production filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Create(name string) (File, error) { return os.Create(name) }
func (osFS) Open(name string) (File, error)   { return os.Open(name) }
func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) MkdirTemp(dir, pattern string) (string, error) {
	return os.MkdirTemp(dir, pattern)
}
func (osFS) Rename(oldpath, newpath string) error  { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error              { return os.Remove(name) }
func (osFS) RemoveAll(path string) error           { return os.RemoveAll(path) }
func (osFS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }
func (osFS) ReadFile(name string) ([]byte, error)  { return os.ReadFile(name) }
func (osFS) Glob(pattern string) ([]string, error) { return filepath.Glob(pattern) }

func (osFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// WriteFileSync writes data to path durably: create, write, fsync,
// close. An error on any step removes the partial file.
func WriteFileSync(fsys FS, path string, data []byte) error {
	f, err := fsys.Create(path)
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fsys.Remove(path)
	}
	return err
}

// NotExist reports whether err means the file or directory is absent,
// unwrapping wrapped errors.
func NotExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }
