package dedup

import (
	"math/rand"
	"testing"

	"ndss/internal/corpus"
	"ndss/internal/index"
	"ndss/internal/search"
)

// fixture builds a corpus with a known planted duplicate passage shared
// by texts 2 and 7.
func fixture(t *testing.T) (*corpus.Corpus, *search.Searcher) {
	t.Helper()
	c := corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts: 12, MinLength: 60, MaxLength: 120, VocabSize: 5000,
		ZipfS: 1.5, Seed: 91,
	})
	// Plant a shared 32-token passage.
	src := c.Text(2)
	dst := c.Text(7)
	copy(dst[10:42], src[5:37])
	dir := t.TempDir()
	if _, err := index.Build(c, dir, index.BuildOptions{K: 16, Seed: 3, T: 10}); err != nil {
		t.Fatal(err)
	}
	ix, err := index.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	return c, search.New(ix, c)
}

func TestScanCorpusFindsPlantedPair(t *testing.T) {
	c, s := fixture(t)
	pairs, st, err := ScanCorpus(s, c, Options{Theta: 0.8, Window: 16})
	if err != nil {
		t.Fatal(err)
	}
	if st.Texts != 12 || st.Windows == 0 {
		t.Fatalf("stats = %+v", st)
	}
	found := false
	for _, p := range pairs {
		if p.TextA == 2 && p.TextB == 7 {
			found = true
			if p.BestEstJaccard < 0.8 {
				t.Fatalf("pair similarity %v", p.BestEstJaccard)
			}
		}
	}
	if !found {
		t.Fatalf("planted duplicate (2, 7) not found: %+v", pairs)
	}
}

func TestScanCorpusSelfHitsExcluded(t *testing.T) {
	c, s := fixture(t)
	pairs, _, err := ScanCorpus(s, c, Options{Theta: 0.9, Window: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if p.TextA == p.TextB && p.StartA <= p.EndB && p.StartB <= p.EndA {
			t.Fatalf("self-overlapping pair survived: %+v", p)
		}
	}
}

func TestScanCorpusCanonicalAndMerged(t *testing.T) {
	c, s := fixture(t)
	pairs, st, err := ScanCorpus(s, c, Options{Theta: 0.8, Window: 16, Stride: 8})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[Pair]bool{}
	for _, p := range pairs {
		if p.TextB < p.TextA {
			t.Fatalf("pair not canonical: %+v", p)
		}
		if seen[p] {
			t.Fatalf("duplicate pair: %+v", p)
		}
		seen[p] = true
	}
	// Overlapping windows generate many raw hits that must merge down.
	if st.RawHits > 0 && st.Pairs > st.RawHits {
		t.Fatalf("merge grew pairs: %+v", st)
	}
}

func TestScanCorpusParallelMatchesSequential(t *testing.T) {
	c, s := fixture(t)
	seq, _, err := ScanCorpus(s, c, Options{Theta: 0.8, Window: 16})
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := ScanCorpus(s, c, Options{Theta: 0.8, Window: 16, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("parallel scan differs: %d vs %d pairs", len(seq), len(par))
	}
	want := map[Pair]bool{}
	for _, p := range seq {
		want[p] = true
	}
	for _, p := range par {
		if !want[p] {
			t.Fatalf("parallel-only pair: %+v", p)
		}
	}
}

func TestScanCorpusValidation(t *testing.T) {
	c, s := fixture(t)
	if _, _, err := ScanCorpus(s, c, Options{Theta: 0.8}); err == nil {
		t.Fatal("missing Window should fail")
	}
	if _, _, err := ScanCorpus(s, c, Options{Theta: 0, Window: 16}); err == nil {
		t.Fatal("Theta=0 should fail")
	}
	if _, _, err := ScanCorpus(s, c, Options{Theta: 1.5, Window: 16}); err == nil {
		t.Fatal("Theta>1 should fail")
	}
}

func TestScanCleanCorpusFindsNothing(t *testing.T) {
	// Uniform random tokens over a huge vocabulary: no near-duplicates
	// exist.
	rng := rand.New(rand.NewSource(97))
	texts := make([][]uint32, 8)
	for i := range texts {
		texts[i] = make([]uint32, 80)
		for j := range texts[i] {
			texts[i][j] = rng.Uint32() % 1000000
		}
	}
	c := corpus.New(texts)
	dir := t.TempDir()
	if _, err := index.Build(c, dir, index.BuildOptions{K: 16, Seed: 3, T: 10}); err != nil {
		t.Fatal(err)
	}
	ix, err := index.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	s := search.New(ix, c)
	pairs, _, err := ScanCorpus(s, c, Options{Theta: 0.9, Window: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 0 {
		t.Fatalf("clean corpus produced pairs: %+v", pairs)
	}
}
