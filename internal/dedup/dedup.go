// Package dedup finds near-duplicate content *within* a corpus — the
// training-data deduplication application that motivates the paper
// (near-duplicates are pervasive in web corpora and drive LLM
// memorization, yet exact-match dedup tooling cannot see them).
//
// ScanCorpus runs a windowed self-join: every text is cut into
// fixed-width windows, each window is searched against the index, self
// matches are discarded, and symmetric hits are canonicalized and
// merged into per-text-pair duplicate regions.
package dedup

import (
	"fmt"
	"sort"
	"time"

	"ndss/internal/corpus"
	"ndss/internal/search"
)

// Options configures a corpus self-join.
type Options struct {
	// Theta is the Jaccard similarity threshold.
	Theta float64
	// Window is the query window width in tokens.
	Window int
	// Stride is the window step; it defaults to Window (non-overlapping
	// windows, the paper's §5 slicing).
	Stride int
	// Search configures the underlying near-duplicate searches; Theta
	// here overrides Search.Theta.
	Search search.Options
	// Parallelism is the query worker count (1 = sequential).
	Parallelism int
}

// Pair is one deduplicated near-duplicate relation between regions of
// two texts (or two disjoint regions of one text). TextA/StartA is the
// lexicographically smaller side.
type Pair struct {
	TextA        uint32
	StartA, EndA int32
	TextB        uint32
	StartB, EndB int32
	// BestEstJaccard is the highest estimated similarity among the
	// window hits merged into this pair.
	BestEstJaccard float64
}

// Stats summarizes a scan.
type Stats struct {
	Texts     int
	Windows   int
	RawHits   int // window-level matches before merging
	Pairs     int // merged output pairs
	TextPairs int // distinct (textA, textB) combinations
	Elapsed   time.Duration
	// IOBytes/IOTime/CPUTime aggregate the per-window-query splits.
	// Each query reports into its own I/O sink, so these are exact even
	// under Parallelism > 1 (IOTime/CPUTime then sum the work of all
	// workers and may exceed Elapsed).
	IOBytes int64
	IOTime  time.Duration
	CPUTime time.Duration
}

// ScanCorpus self-joins the corpus behind the searcher. The index must
// have been built over c.
func ScanCorpus(s *search.Searcher, c *corpus.Corpus, opts Options) ([]Pair, *Stats, error) {
	start := time.Now()
	if opts.Window <= 0 {
		return nil, nil, fmt.Errorf("dedup: Window must be positive, got %d", opts.Window)
	}
	if opts.Theta <= 0 || opts.Theta > 1 {
		return nil, nil, fmt.Errorf("dedup: Theta must be in (0, 1], got %v", opts.Theta)
	}
	stride := opts.Stride
	if stride <= 0 {
		stride = opts.Window
	}
	sOpts := opts.Search
	sOpts.Theta = opts.Theta

	// Build the window list.
	type qwin struct {
		text  uint32
		start int32
	}
	var wins []qwin
	var queries [][]uint32
	for id := 0; id < c.NumTexts(); id++ {
		text := c.Text(uint32(id))
		for off := 0; off+opts.Window <= len(text); off += stride {
			wins = append(wins, qwin{text: uint32(id), start: int32(off)})
			queries = append(queries, text[off:off+opts.Window])
		}
	}
	st := &Stats{Texts: c.NumTexts(), Windows: len(wins)}

	results := s.SearchBatch(queries, sOpts, opts.Parallelism)
	var raw []Pair
	for i, res := range results {
		if res.Err != nil {
			return nil, nil, fmt.Errorf("dedup: window %d: %w", i, res.Err)
		}
		st.IOBytes += res.Stats.IOBytes
		st.IOTime += res.Stats.IOTime
		st.CPUTime += res.Stats.CPUTime
		w := wins[i]
		qEnd := w.start + int32(opts.Window) - 1
		for _, m := range res.Matches {
			// Drop self hits: the window overlapping its own span.
			if m.TextID == w.text && m.Start <= qEnd && w.start <= m.End {
				continue
			}
			st.RawHits++
			raw = append(raw, canonicalize(Pair{
				TextA: w.text, StartA: w.start, EndA: qEnd,
				TextB: m.TextID, StartB: m.Start, EndB: m.End,
				BestEstJaccard: m.EstJaccard,
			}))
		}
	}
	pairs := mergePairs(raw)
	st.Pairs = len(pairs)
	seen := map[[2]uint32]bool{}
	for _, p := range pairs {
		seen[[2]uint32{p.TextA, p.TextB}] = true
	}
	st.TextPairs = len(seen)
	st.Elapsed = time.Since(start)
	return pairs, st, nil
}

// canonicalize orders the two sides so A <= B, making symmetric hits
// comparable.
func canonicalize(p Pair) Pair {
	if p.TextB < p.TextA || (p.TextB == p.TextA && p.StartB < p.StartA) {
		p.TextA, p.TextB = p.TextB, p.TextA
		p.StartA, p.StartB = p.StartB, p.StartA
		p.EndA, p.EndB = p.EndB, p.EndA
	}
	return p
}

// mergePairs coalesces pairs between the same two texts whose regions
// overlap on both sides (e.g. the two directions of a symmetric hit, or
// adjacent windows of one long duplicate passage).
func mergePairs(raw []Pair) []Pair {
	if len(raw) == 0 {
		return nil
	}
	sort.Slice(raw, func(i, j int) bool {
		a, b := raw[i], raw[j]
		if a.TextA != b.TextA {
			return a.TextA < b.TextA
		}
		if a.TextB != b.TextB {
			return a.TextB < b.TextB
		}
		if a.StartA != b.StartA {
			return a.StartA < b.StartA
		}
		return a.StartB < b.StartB
	})
	var out []Pair
	for _, p := range raw {
		merged := false
		// Scan backwards over pairs of the same text pair; regions are
		// sorted by StartA so overlap candidates are near the tail.
		for i := len(out) - 1; i >= 0; i-- {
			q := &out[i]
			if q.TextA != p.TextA || q.TextB != p.TextB {
				break
			}
			if p.StartA > q.EndA+1 {
				break // no later pair can overlap side A either
			}
			if overlaps(p.StartA, p.EndA, q.StartA, q.EndA+1) && overlaps(p.StartB, p.EndB, q.StartB, q.EndB+1) {
				q.EndA = max32(q.EndA, p.EndA)
				q.EndB = max32(q.EndB, p.EndB)
				q.StartB = min32(q.StartB, p.StartB)
				if p.BestEstJaccard > q.BestEstJaccard {
					q.BestEstJaccard = p.BestEstJaccard
				}
				merged = true
				break
			}
		}
		if !merged {
			out = append(out, p)
		}
	}
	return out
}

// overlaps reports whether [aLo, aHi] intersects [bLo, bHi] (the caller
// passes bHi+1 to also merge adjacent regions).
func overlaps(aLo, aHi, bLo, bHi int32) bool {
	return aLo <= bHi && bLo <= aHi
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
