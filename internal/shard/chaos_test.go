package shard_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"ndss/internal/search"
	"ndss/internal/server"
	"ndss/internal/shard"
	"ndss/internal/shard/netfault"
)

// The chaos acceptance suite: a coordinator over 3 doc ranges × 2
// replicas, with scripted network faults killing one replica per range
// mid-run, must keep answering byte-identically to one merged index —
// top-k tie order included — with zero client-visible errors, every
// attempt accounted in the metrics. Only when a range is fully dead
// does the query degrade, and then into a flagged partial (fast
// failures) or the caller's own deadline (black hole), never a hang.

type chaosFixture struct {
	texts  [][]uint32
	single interface {
		SearchContext(context.Context, []uint32, search.Options) ([]search.Match, *search.Stats, error)
		SearchTopKContext(context.Context, []uint32, search.TopKOptions) ([]search.Match, *search.Stats, error)
	}
	coord *shard.Coordinator
	ft    *netfault.Transport
	// hosts[range][replica] is the host:port key netfault faults key on.
	hosts [3][2]string
	sets  [3]*shard.ReplicaSet
}

// chaosReplicaCfg is tuned for the chaos runs: a generous retry budget
// (the point is masking faults, not load shedding), fast backoff, a
// breaker that trips quickly and re-probes quickly, and a fixed seed so
// routing decisions replay.
func chaosReplicaCfg() shard.ReplicaConfig {
	return shard.ReplicaConfig{
		MaxRetries:      2,
		RetryBudget:     1.0,
		RetryBurst:      1000,
		BackoffBase:     100 * time.Microsecond,
		BackoffMax:      time.Millisecond,
		HedgeDelayMin:   5 * time.Millisecond,
		BreakerFailures: 3,
		BreakerCooldown: 50 * time.Millisecond,
		Seed:            42,
	}
}

// newChaosFixture builds the 48-text corpus split into 3 ranges of 16,
// each range served by two replica servers sharing one engine (so the
// replicas agree on build id by construction), all spoken to through
// one fault-injecting transport.
func newChaosFixture(t *testing.T) *chaosFixture {
	t.Helper()
	texts := fixtureTexts(t)
	single := buildEngine(t, texts)
	t.Cleanup(func() { single.Close() })

	f := &chaosFixture{texts: texts, single: single, ft: netfault.New(nil)}
	fc := &http.Client{Transport: f.ft}

	const per = 16
	clients := make([]shard.ShardClient, 0, 3)
	for r := 0; r < 3; r++ {
		e := buildEngine(t, texts[r*per:(r+1)*per])
		t.Cleanup(func() { e.Close() })
		reps := make([]shard.ShardClient, 2)
		for j := 0; j < 2; j++ {
			ts := httptest.NewServer(server.New(e, server.Config{}))
			t.Cleanup(ts.Close)
			u, err := url.Parse(ts.URL)
			if err != nil {
				t.Fatal(err)
			}
			f.hosts[r][j] = u.Host
			hs, err := shard.NewHTTPShard(context.Background(), ts.URL, shard.HTTPOptions{Client: fc})
			if err != nil {
				t.Fatal(err)
			}
			reps[j] = hs
		}
		rs, err := shard.NewReplicaSet("", reps, chaosReplicaCfg())
		if err != nil {
			t.Fatal(err)
		}
		f.sets[r] = rs
		clients = append(clients, rs)
	}
	coord, err := shard.NewCoordinator(clients, shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	f.coord = coord
	return f
}

func (f *chaosFixture) queries() [][]uint32 {
	return [][]uint32{
		f.texts[0][:12],
		f.texts[20][:12],
		f.texts[40][:12],
		f.texts[5][:30],
	}
}

// runAll compares every query/option combination against the merged
// single index, failing on any divergence, error, or partial flag, and
// returns how many attempts each range's replica set logged.
func (f *chaosFixture) runAll(t *testing.T, phase string) (attempts [3]int64) {
	t.Helper()
	ctx := context.Background()
	for qi, q := range f.queries() {
		for oi, opts := range []search.Options{
			{Theta: 0.5},
			{Theta: 0.8, Verify: true},
		} {
			want, _, err := f.single.SearchContext(ctx, q, opts)
			if err != nil {
				t.Fatalf("%s query %d opts %d: single: %v", phase, qi, oi, err)
			}
			got, st, err := f.coord.SearchContext(ctx, q, opts)
			if err != nil {
				t.Fatalf("%s query %d opts %d: client-visible error: %v", phase, qi, oi, err)
			}
			if st.Partial() {
				t.Fatalf("%s query %d opts %d: flagged partial with a live replica per range: %+v", phase, qi, oi, st.PerShard)
			}
			if !sameMatches(got, want) {
				t.Errorf("%s query %d opts %d: diverged from the merged index:\n got %+v\nwant %+v", phase, qi, oi, got, want)
			}
			for r := range attempts {
				attempts[r] += int64(len(st.PerShard[r].Attempts))
			}
		}
		// Top-k through the same faults: tie order must survive replica
		// failover byte-for-byte.
		for _, n := range []int{1, 3, 100} {
			opts := search.TopKOptions{N: n, FloorTheta: 0.5}
			want, _, err := f.single.SearchTopKContext(ctx, q, opts)
			if err != nil {
				t.Fatalf("%s query %d n=%d: single: %v", phase, qi, n, err)
			}
			got, st, err := f.coord.SearchTopKContext(ctx, q, opts)
			if err != nil {
				t.Fatalf("%s query %d n=%d: client-visible error: %v", phase, qi, n, err)
			}
			if !sameMatches(got, want) {
				t.Errorf("%s query %d n=%d: top-k diverged:\n got %+v\nwant %+v", phase, qi, n, got, want)
			}
			for r := range attempts {
				attempts[r] += int64(len(st.PerShard[r].Attempts))
			}
		}
	}
	return attempts
}

func TestChaosReplicaKillIsInvisible(t *testing.T) {
	f := newChaosFixture(t)

	// Phase 1: healthy baseline.
	healthy := f.runAll(t, "healthy")

	// Phase 2: kill replica 0 of every range mid-run — connection resets,
	// as if the process died. Every query must still match the merged
	// index with zero client-visible errors and no partial flags.
	for r := 0; r < 3; r++ {
		f.ft.SetAll(f.hosts[r][0], netfault.Fault{Kind: netfault.Reset})
	}
	killed := f.runAll(t, "killed")

	// Every attempt is accounted for: the per-replica request counters
	// must equal the attempts the queries reported, so no attempt went
	// unmetered and no metric counted a phantom.
	for r := 0; r < 3; r++ {
		m := f.sets[r].ReplicaMetrics()
		var requests int64
		for _, rep := range m.Replicas {
			requests += rep.Requests
		}
		if want := healthy[r] + killed[r]; requests != want {
			t.Errorf("range %d: replica requests total %d, queries recorded %d attempts", r, requests, want)
		}
		// The kill was actually exercised: the dead replica accumulated
		// errors and the set retried around it.
		var retries, errs int64
		for _, rep := range m.Replicas {
			retries += rep.Retries
			errs += rep.Errors
		}
		if errs == 0 || retries == 0 {
			t.Errorf("range %d: errors=%d retries=%d; the kill phase should have forced failovers", r, errs, retries)
		}
	}

	// Phase 3: scripted flakiness instead of a hard kill — a 503 burst
	// and a torn response on the surviving replicas must also be masked.
	f.ft.Clear(f.hosts[0][0])
	f.ft.Script(f.hosts[0][0],
		netfault.Fault{Kind: netfault.Status, Status: 503},
		netfault.Fault{Kind: netfault.Torn, KeepBytes: 64},
	)
	f.runAll(t, "flaky")
}

func TestChaosDeadRangeDegradesToPartial(t *testing.T) {
	f := newChaosFixture(t)

	// Both replicas of range 1 die with fast failures: queries keep
	// answering from the other ranges as flagged partials, never errors.
	f.ft.SetAll(f.hosts[1][0], netfault.Fault{Kind: netfault.Reset})
	f.ft.SetAll(f.hosts[1][1], netfault.Fault{Kind: netfault.Reset})

	got, st, err := f.coord.SearchContext(context.Background(), f.queries()[0], search.Options{Theta: 0.5})
	if err != nil {
		t.Fatalf("dead range must degrade to a partial, got error: %v", err)
	}
	if !st.Partial() || st.ShardsAnswered != 2 {
		t.Fatalf("stats %d/%d partial=%v, want flagged 2/3 partial", st.ShardsAnswered, st.ShardsTotal, st.Partial())
	}
	if st.PerShard[1].Answered || st.PerShard[1].Err == "" {
		t.Fatalf("dead range attribution = %+v, want an unanswered shard with its error", st.PerShard[1])
	}
	// Every failed attempt on the dead range is still in the attribution.
	if len(st.PerShard[1].Attempts) < 2 {
		t.Fatalf("dead range logged %d attempts, want the primary plus retries: %+v",
			len(st.PerShard[1].Attempts), st.PerShard[1].Attempts)
	}
	// The live ranges' matches are intact (query 0 probes range 0).
	if len(got) == 0 {
		t.Fatal("partial result lost the live ranges' matches")
	}
}

func TestChaosBlackHoleRespectsParentDeadline(t *testing.T) {
	f := newChaosFixture(t)

	// Both replicas of range 2 black-hole: no errors, no bytes, nothing.
	// The only bound is the caller's deadline, and the query must return
	// by it — an unanswerable shard must never hang the client.
	f.ft.SetAll(f.hosts[2][0], netfault.Fault{Kind: netfault.BlackHole})
	f.ft.SetAll(f.hosts[2][1], netfault.Fault{Kind: netfault.BlackHole})

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := f.coord.SearchContext(ctx, f.queries()[0], search.Options{Theta: 0.5})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("black-holed range under a caller deadline: err = %v, want DeadlineExceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("query returned after %v, well past the 300ms parent deadline", elapsed)
	}

	// With a per-shard budget the same black hole degrades to a partial
	// inside the budget instead of consuming the caller's deadline.
	budgeted, err := shard.NewCoordinator([]shard.ShardClient{f.sets[0], f.sets[1], f.sets[2]},
		shard.Config{ShardBudget: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Not Closed: the replica sets belong to f.coord's cleanup.
	got, st, err := budgeted.SearchContext(context.Background(), f.queries()[0], search.Options{Theta: 0.5})
	if err != nil {
		t.Fatalf("budgeted query over a black-holed range: %v", err)
	}
	if !st.Partial() || st.PerShard[2].Answered {
		t.Fatalf("stats %+v, want the black-holed range flagged", st.PerShard)
	}
	if len(got) == 0 {
		t.Fatal("budgeted partial lost the live ranges' matches")
	}
}
