package shard

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ndss/internal/hash"
	"ndss/internal/index"
	"ndss/internal/obs"
	"ndss/internal/search"
)

// Config tunes a Coordinator.
type Config struct {
	// ShardBudget bounds each shard's share of a query: every fan-out
	// leg runs under min(remaining request deadline, ShardBudget). A
	// shard that misses the budget is skipped and flagged in
	// Stats.PerShard rather than failing the query (partial-result
	// semantics). Zero means legs inherit the request deadline only.
	ShardBudget time.Duration
}

// shardSlot is one shard plus its coordinator-side accounting: the
// global text-id base its local ids map to, and its request counters.
type shardSlot struct {
	client ShardClient
	base   uint32

	requests atomic.Int64
	errors   atomic.Int64
	lat      latencyHist
}

// Coordinator fans queries out to a fixed set of shards and merges the
// answers into the exact result a single merged index would return. It
// implements the same backend surface internal/server serves, so a
// sharded deployment is just another Backend.
//
// The shard set and the text-id bases are fixed at construction: shard
// i's local text ids map to [base_i, base_i+NumTexts_i), with bases
// assigned cumulatively in shard order (the index.MergeShards offset
// scheme). Growing a shard after construction (live ingest on a remote
// shard) would shift later shards' global ids, so sharded serving is
// read-only: run ingest against individual shards and restart the
// coordinator, or reload it with the new topology.
type Coordinator struct {
	slots  []*shardSlot
	meta   index.Meta
	fam    *hash.Family
	budget time.Duration

	partials atomic.Int64
}

// NewCoordinator validates the shard set (all shards must share K,
// Seed, and T), assigns cumulative text-id bases in shard order, and
// returns a coordinator ready to serve. It takes ownership of the
// clients: Close closes them.
func NewCoordinator(clients []ShardClient, cfg Config) (*Coordinator, error) {
	if len(clients) == 0 {
		return nil, errors.New("shard: coordinator needs at least one shard")
	}
	want := clients[0].Meta()
	fam, err := hash.NewFamily(want.K, want.Seed)
	if err != nil {
		return nil, fmt.Errorf("shard: %s: %w", clients[0].Name(), err)
	}
	agg := want
	slots := make([]*shardSlot, len(clients))
	base := uint32(0)
	for i, cl := range clients {
		m := cl.Meta()
		if m.K != want.K || m.Seed != want.Seed || m.T != want.T {
			return nil, &MixedShardsError{Shard: cl.Name(), Want: want, Got: m}
		}
		slots[i] = &shardSlot{client: cl, base: base}
		base += uint32(m.NumTexts)
		if i > 0 {
			agg.NumTexts += m.NumTexts
			agg.TotalTokens += m.TotalTokens
		}
	}
	return &Coordinator{slots: slots, meta: agg, fam: fam, budget: cfg.ShardBudget}, nil
}

// Shards reports the shard names in fan-out (base) order.
func (c *Coordinator) Shards() []string {
	names := make([]string, len(c.slots))
	for i, sl := range c.slots {
		names[i] = sl.client.Name()
	}
	return names
}

// Meta returns the aggregate index metadata: the shared hash-family
// options plus summed corpus sizes, exactly what a merged single index
// over the same shards would report.
func (c *Coordinator) Meta() index.Meta { return c.meta }

// Family returns the hash family shared by every shard.
func (c *Coordinator) Family() *hash.Family { return c.fam }

// BuildID derives a combined build id from the shards' current build
// ids (order-sensitive), so reloading any shard changes the
// coordinator's id just like reloading a single backend would.
func (c *Coordinator) BuildID() string {
	if len(c.slots) == 1 {
		return c.slots[0].client.BuildID()
	}
	h := fnv.New64a()
	for _, sl := range c.slots {
		h.Write([]byte(sl.client.BuildID()))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("sharded-%d-%016x", len(c.slots), h.Sum64())
}

// IOStats sums the shards' cumulative I/O counters, attributing each
// shard's share in PerSegment-style per-shard entries.
func (c *Coordinator) IOStats() index.IOStats {
	var out index.IOStats
	for _, sl := range c.slots {
		st := sl.client.IOStats()
		out.BytesRead += st.BytesRead
		out.ReadTime += st.ReadTime
	}
	return out
}

// CheckHealth checks every shard concurrently and returns the joined
// errors of the unhealthy ones (nil when all are serving).
func (c *Coordinator) CheckHealth(ctx context.Context) error {
	errs := make([]error, len(c.slots))
	var wg sync.WaitGroup
	for i, sl := range c.slots {
		wg.Add(1)
		go func(i int, sl *shardSlot) {
			defer wg.Done()
			probeCtx := childTraceContext(ctx)
			if err := sl.client.CheckHealth(probeCtx); err != nil {
				errs[i] = fmt.Errorf("shard %s: %w", sl.client.Name(), err)
			}
		}(i, sl)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// StartProbers launches the background health loop of every shard that
// has one (replica sets): recovered replicas rejoin, diverging builds
// are quarantined, all without query traffic. The loops stop when ctx
// is canceled or the coordinator is closed.
func (c *Coordinator) StartProbers(ctx context.Context, interval time.Duration) {
	for _, sl := range c.slots {
		if p, ok := sl.client.(interface {
			StartProber(ctx context.Context, interval time.Duration)
		}); ok {
			p.StartProber(ctx, interval)
		}
	}
}

// Close closes every shard and returns their joined errors.
func (c *Coordinator) Close() error {
	errs := make([]error, len(c.slots))
	for i, sl := range c.slots {
		errs[i] = sl.client.Close()
	}
	return errors.Join(errs...)
}

// legResult is one shard's answer as observed by the coordinator.
type legResult struct {
	matches []search.Match
	stats   *search.Stats
	err     error
	start   time.Duration // leg start, offset from the fan-out base
	dur     time.Duration // leg wall time (queueing + execution + network)
	spanID  string        // the leg's span id when the query is traced
}

// childTraceContext derives a fresh child span for one unit of
// downstream work (a leg or a probe) when ctx carries a trace, and
// returns the context to run it under plus the child's span id.
func childTraceContextID(ctx context.Context) (context.Context, string) {
	tc, ok := obs.TraceFromContext(ctx)
	if !ok {
		return ctx, ""
	}
	child := tc.Child()
	return obs.ContextWithTrace(ctx, child), child.SpanIDString()
}

func childTraceContext(ctx context.Context) context.Context {
	ctx, _ = childTraceContextID(ctx)
	return ctx
}

// fanOut runs one query leg per shard concurrently, each under
// min(parent deadline, ShardBudget), and joins. Per-shard request,
// error, and latency counters are updated here, so every fan-out leg is
// observed exactly once. The returned base is the fan-out start, for
// charging the merge tail to Stats.Total.
func (c *Coordinator) fanOut(ctx context.Context, run func(ctx context.Context, cl ShardClient) ([]search.Match, *search.Stats, error)) ([]legResult, obs.Mono) {
	base := obs.NowMono()
	results := make([]legResult, len(c.slots))
	var wg sync.WaitGroup
	for i, sl := range c.slots {
		wg.Add(1)
		go func(i int, sl *shardSlot) {
			defer wg.Done()
			legCtx, spanID := childTraceContextID(ctx)
			if c.budget > 0 {
				var cancel context.CancelFunc
				legCtx, cancel = context.WithTimeout(legCtx, c.budget)
				defer cancel()
			}
			t0 := obs.NowMono()
			var (
				m   []search.Match
				st  *search.Stats
				err error
			)
			// The shard label joins CPU profiles to the trace: a profile
			// taken during the query attributes samples to the leg that
			// burned them.
			pprof.Do(legCtx, pprof.Labels("shard", sl.client.Name()), func(legCtx context.Context) {
				m, st, err = run(legCtx, sl.client)
			})
			dur := obs.SinceMono(t0)
			sl.requests.Add(1)
			sl.lat.observe(dur)
			if err != nil {
				sl.errors.Add(1)
			}
			results[i] = legResult{matches: m, stats: st, err: err, start: t0.Sub(base), dur: dur, spanID: spanID}
		}(i, sl)
	}
	wg.Wait()
	return results, base
}

// SearchContext fans the query out to every shard and returns the
// merged matches in global (TextID, Start) order — byte-identical to
// the same query against one merged index. Shards that miss their
// budget are skipped and flagged in Stats (ShardsAnswered < ShardsTotal
// and the PerShard entry); the query only fails when the caller's own
// context expires or no shard answers at all.
func (c *Coordinator) SearchContext(ctx context.Context, query []uint32, opts search.Options) ([]search.Match, *search.Stats, error) {
	if opts.KeepRects {
		return nil, nil, errors.New("shard: KeepRects is not supported through a coordinator")
	}
	results, base := c.fanOut(ctx, func(ctx context.Context, cl ShardClient) ([]search.Match, *search.Stats, error) {
		return cl.SearchContext(ctx, query, opts)
	})
	return c.merge(ctx, base, results, opts.Trace, 0)
}

// SearchTopKContext fans out and re-ranks the union of the shards'
// top-k answers. Each shard's local top-N is a superset of its members
// of the global top-N, so re-sorting the union under the same
// (collisions desc, text id asc, start asc) order and truncating to N
// reproduces the single-index answer exactly, ties included.
func (c *Coordinator) SearchTopKContext(ctx context.Context, query []uint32, opts search.TopKOptions) ([]search.Match, *search.Stats, error) {
	if opts.Search.KeepRects {
		return nil, nil, errors.New("shard: KeepRects is not supported through a coordinator")
	}
	if opts.N <= 0 {
		return nil, nil, fmt.Errorf("search: TopK N must be positive, got %d", opts.N)
	}
	results, base := c.fanOut(ctx, func(ctx context.Context, cl ShardClient) ([]search.Match, *search.Stats, error) {
		return cl.SearchTopKContext(ctx, query, opts)
	})
	return c.merge(ctx, base, results, opts.Search.Trace, opts.N)
}

// Explain returns the first shard's query plan: planning depends only
// on list-length statistics, so any shard's plan is representative.
func (c *Coordinator) Explain(ctx context.Context, query []uint32, opts search.Options) (*search.Plan, error) {
	return c.slots[0].client.ExplainContext(ctx, query, opts)
}

// merge assembles the fan-out legs into one globally-ordered result.
// topN > 0 selects top-k ranking (sort by collisions, truncate);
// topN == 0 keeps the concatenation order, which is already globally
// sorted because shard text-id ranges are disjoint and ascending.
func (c *Coordinator) merge(ctx context.Context, base obs.Mono, results []legResult, trace bool, topN int) ([]search.Match, *search.Stats, error) {
	answered := 0
	var firstErr error
	for i := range results {
		if results[i].err == nil {
			answered++
		} else if firstErr == nil {
			firstErr = fmt.Errorf("shard %s: %w", c.slots[i].client.Name(), results[i].err)
		}
	}
	// The caller's own deadline expiring is an error, exactly as on an
	// unsharded backend — partial-result semantics only cover shards
	// missing their per-shard budget while the request is still live.
	if answered < len(results) && ctx.Err() != nil {
		return nil, nil, ctx.Err()
	}
	if answered == 0 {
		return nil, nil, firstErr
	}

	total := 0
	for i := range results {
		if results[i].err == nil {
			total += len(results[i].matches)
		}
	}
	out := make([]search.Match, 0, total)
	st := &search.Stats{
		ShardsTotal:    len(results),
		ShardsAnswered: answered,
		PerShard:       make([]search.ShardStats, len(results)),
	}
	// The full span lists ride along only when the query's trace is
	// sampled (or the query runs outside any trace, i.e. direct library
	// use): stage aggregates always flow, span shipping is opt-in.
	keepSpans := true
	if tc, ok := obs.TraceFromContext(ctx); ok {
		keepSpans = tc.Sampled
	}
	first := true
	for i := range results {
		r := &results[i]
		sl := c.slots[i]
		ps := search.ShardStats{Shard: sl.client.Name(), Total: r.dur, SpanID: r.spanID, Start: r.start}
		if r.stats != nil {
			// Replica-set legs hand their attempt log up through the
			// stats; it belongs on the leg's PerShard entry (and is
			// recorded even when every attempt failed).
			ps.Attempts = r.stats.Attempts
			r.stats.Attempts = nil
			// Same hand-off for the leg's own span list: the winning
			// attempt's spans belong under this leg of the query tree.
			if keepSpans {
				ps.Spans = r.stats.Spans
				r.stats.Spans = nil
			}
		}
		if r.err != nil {
			ps.Err = shardErrString(r.err)
			st.PerShard[i] = ps
			continue
		}
		ps.Answered = true
		ps.Matches = len(r.matches)
		for j := range r.matches {
			r.matches[j].TextID += sl.base
		}
		out = append(out, r.matches...)
		if r.stats != nil {
			if first {
				st.K, st.Beta = r.stats.K, r.stats.Beta
				first = false
			}
			st.ShortLists += r.stats.ShortLists
			st.LongLists += r.stats.LongLists
			st.Candidates += r.stats.Candidates
			st.Probed += r.stats.Probed
			st.Rects += r.stats.Rects
			st.IOBytes += r.stats.IOBytes
			st.IOTime += r.stats.IOTime
			st.CPUTime += r.stats.CPUTime
			st.StageTimes = st.StageTimes.Add(r.stats.StageTimes)
			ps.IOBytes = r.stats.IOBytes
			ps.IOTime = r.stats.IOTime
			ps.StageTimes = r.stats.StageTimes
		}
		st.PerShard[i] = ps
	}

	mergeStart := obs.NowMono()
	if topN > 0 {
		sort.Slice(out, func(i, j int) bool {
			if out[i].Collisions != out[j].Collisions {
				return out[i].Collisions > out[j].Collisions
			}
			if out[i].TextID != out[j].TextID {
				return out[i].TextID < out[j].TextID
			}
			return out[i].Start < out[j].Start
		})
		if len(out) > topN {
			out = out[:topN]
		}
	}
	st.Matches = len(out)
	mergeDur := obs.SinceMono(mergeStart)
	st.StageTimes.Merge += mergeDur
	st.CPUTime += mergeDur

	if st.Partial() {
		c.partials.Add(1)
	}
	if trace {
		var tr obs.Trace
		tr.Reset()
		for i := range results {
			r := &results[i]
			id := tr.Record("shard", r.start, r.dur)
			tr.Annotate(id, "shard", int64(i))
			if r.stats != nil {
				tr.Annotate(id, "io_bytes", r.stats.IOBytes)
			}
			// Extra replica attempts (retries and hedges) get their own
			// spans, offset into the leg, so a traced slow query shows
			// exactly where the leg's budget went.
			for _, a := range st.PerShard[i].Attempts {
				if a.Attempt == 0 {
					continue
				}
				name := "shard_retry"
				if a.Hedge {
					name = "shard_hedge"
				}
				id := tr.Record(name, r.start+a.Start, a.Dur)
				tr.Annotate(id, "attempt", int64(a.Attempt))
				tr.Annotate(id, "replica", int64(a.ReplicaIdx))
			}
		}
		tr.Record("shard_merge", mergeStart.Sub(base), mergeDur)
		st.Spans = tr.Snapshot(nil)
	}
	st.Total = obs.SinceMono(base)
	return out, st, nil
}

// PartialResults reports how many queries returned with at least one
// shard unanswered since the coordinator started.
func (c *Coordinator) PartialResults() int64 { return c.partials.Load() }
