// Package shard distributes near-duplicate search across N shard
// backends: the scatter–gather layer that takes the repo from "a
// library with a search endpoint" to the paper's 10¹²-token serving
// story. A Coordinator fans each query out to every shard, merges the
// per-shard results through the same ordering the single-index path
// produces (byte-identical, including top-k tie order), and enforces a
// global result under partial-result deadlines: a shard that misses its
// per-shard budget is skipped and flagged in Stats rather than failing
// the query.
//
// Two transports implement ShardClient:
//
//   - Local: an in-process shard wrapping an opened engine (one index
//     directory per shard). Fan-out is a goroutine per shard.
//   - HTTPShard: a remote ndss-serve instance speaking the existing
//     /search + /search/topk HTTP contract, with health checks and
//     per-shard admission. Remote shards hot-reload themselves through
//     their own refcounted backend handles; the coordinator just keeps
//     querying.
//
// Shards partition the corpus by document range: shard i's local text
// ids [0, NumTexts_i) map to the global range [base_i, base_i +
// NumTexts_i), with bases assigned cumulatively in shard order — the
// same offset scheme index.MergeShards uses, so a sharded corpus and
// its single merged index agree on every text id.
package shard

import (
	"context"
	"errors"
	"fmt"
	"io"

	"ndss/internal/hash"
	"ndss/internal/index"
	"ndss/internal/search"
)

// Backend is the local query surface a shard wraps; *core.Engine
// satisfies it (it is the same shape internal/server serves).
type Backend interface {
	SearchContext(ctx context.Context, query []uint32, opts search.Options) ([]search.Match, *search.Stats, error)
	SearchTopKContext(ctx context.Context, query []uint32, opts search.TopKOptions) ([]search.Match, *search.Stats, error)
	Explain(ctx context.Context, query []uint32, opts search.Options) (*search.Plan, error)
	Meta() index.Meta
	Family() *hash.Family
	IOStats() index.IOStats
	BuildID() string
}

// ShardClient is one shard as the coordinator sees it. Every query
// entry point takes the context first and forwards it into the shard's
// own pipeline (or the network request), so a coordinator deadline
// cancels shard work promptly.
//
// Implementations must be safe for concurrent use: the coordinator
// issues one call per in-flight query to every shard.
type ShardClient interface {
	// Name identifies the shard in metrics labels, trace spans, and
	// Stats.PerShard (its index directory or URL).
	Name() string
	// Meta describes the shard's index. All shards under one
	// coordinator must agree on K, Seed, and T.
	Meta() index.Meta
	// BuildID identifies the shard's active index build.
	BuildID() string
	// IOStats reports the shard's cumulative read counters (for remote
	// shards, the bytes and read time its proxied queries reported).
	IOStats() index.IOStats
	SearchContext(ctx context.Context, query []uint32, opts search.Options) ([]search.Match, *search.Stats, error)
	SearchTopKContext(ctx context.Context, query []uint32, opts search.TopKOptions) ([]search.Match, *search.Stats, error)
	ExplainContext(ctx context.Context, query []uint32, opts search.Options) (*search.Plan, error)
	// CheckHealth verifies the shard is reachable and serving, and for
	// remote shards refreshes the cached build id.
	CheckHealth(ctx context.Context) error
	Close() error
}

// MixedShardsError is returned by NewCoordinator when the shard set
// disagrees on the index options that must be uniform for results to be
// meaningful: the hash family (K, Seed) and the length threshold T.
type MixedShardsError struct {
	Shard string // the first disagreeing shard
	Want  index.Meta
	Got   index.Meta
}

func (e *MixedShardsError) Error() string {
	return fmt.Sprintf("shard: %s has k=%d seed=%d t=%d, coordinator requires k=%d seed=%d t=%d",
		e.Shard, e.Got.K, e.Got.Seed, e.Got.T, e.Want.K, e.Want.Seed, e.Want.T)
}

// Local is an in-process shard: a Backend (usually *core.Engine over
// one shard's index directory) behind the ShardClient surface.
type Local struct {
	name string
	b    Backend
}

// NewLocal wraps an opened backend as a shard named name (its index
// directory, by convention).
func NewLocal(name string, b Backend) *Local {
	return &Local{name: name, b: b}
}

func (l *Local) Name() string           { return l.name }
func (l *Local) Meta() index.Meta       { return l.b.Meta() }
func (l *Local) BuildID() string        { return l.b.BuildID() }
func (l *Local) IOStats() index.IOStats { return l.b.IOStats() }

func (l *Local) SearchContext(ctx context.Context, query []uint32, opts search.Options) ([]search.Match, *search.Stats, error) {
	return l.b.SearchContext(ctx, query, opts)
}

func (l *Local) SearchTopKContext(ctx context.Context, query []uint32, opts search.TopKOptions) ([]search.Match, *search.Stats, error) {
	return l.b.SearchTopKContext(ctx, query, opts)
}

func (l *Local) ExplainContext(ctx context.Context, query []uint32, opts search.Options) (*search.Plan, error) {
	return l.b.Explain(ctx, query, opts)
}

// CheckHealth reports nil: an in-process shard is healthy as long as
// its backend is open.
func (l *Local) CheckHealth(ctx context.Context) error {
	return ctx.Err()
}

// Close closes the wrapped backend when it is closable.
func (l *Local) Close() error {
	if c, ok := l.b.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// errUnanswered wraps a shard-local failure so Stats.PerShard can carry
// the reason a shard was skipped.
func shardErrString(err error) string {
	if err == nil {
		return ""
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return "deadline exceeded"
	}
	return err.Error()
}
