package shard

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// quantileWindowSize is how many recent latency samples back the
// streaming quantile estimate. Small enough that the on-demand copy +
// sort is microseconds, large enough that P95 is meaningful.
const quantileWindowSize = 128

// quantileWindow is a sliding window of recent request latencies with
// an on-demand quantile. Only successful attempts are observed — a
// failing replica's error latency must not drag the hedge trigger
// around — so the P95 tracks the replica's answering behaviour.
type quantileWindow struct {
	mu   sync.Mutex
	buf  [quantileWindowSize]int64 // guarded by mu; ns
	n    int                       // guarded by mu; filled entries
	next int                       // guarded by mu; ring cursor
}

func (q *quantileWindow) observe(d time.Duration) {
	q.mu.Lock()
	q.buf[q.next] = int64(d)
	q.next = (q.next + 1) % quantileWindowSize
	if q.n < quantileWindowSize {
		q.n++
	}
	q.mu.Unlock()
}

// quantile returns the p-quantile (0 < p <= 1) of the window, or 0
// when no samples have been observed yet.
func (q *quantileWindow) quantile(p float64) time.Duration {
	q.mu.Lock()
	n := q.n
	var scratch [quantileWindowSize]int64
	copy(scratch[:n], q.buf[:n])
	q.mu.Unlock()
	if n == 0 {
		return 0
	}
	s := scratch[:n]
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(p * float64(n))
	if i >= n {
		i = n - 1
	}
	return time.Duration(s[i])
}

// tokenBucket is the retry budget: retries and hedges spend whole
// tokens, while every primary attempt earns a fractional token
// (ReplicaConfig.RetryBudget). Sustained extra attempts are therefore
// capped at that fraction of the recent primary request rate — during
// a full outage retries cannot amplify load by more than RetryBudget —
// while the burst capacity lets a brief blip retry immediately.
type tokenBucket struct {
	mu     sync.Mutex
	tokens float64 // guarded by mu
	max    float64 // immutable after newTokenBucket
}

func newTokenBucket(burst float64) *tokenBucket {
	// Start full: the first failures after startup may retry.
	return &tokenBucket{tokens: burst, max: burst}
}

func (b *tokenBucket) earn(x float64) {
	b.mu.Lock()
	b.tokens += x
	if b.tokens > b.max {
		b.tokens = b.max
	}
	b.mu.Unlock()
}

// take consumes one token, reporting false (and consuming nothing)
// when the budget is exhausted.
func (b *tokenBucket) take() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// lockedRand is a mutex-guarded rand.Rand: routing and jitter draw
// from one deterministic stream (seeded per ReplicaSet) so chaos tests
// replay exactly.
type lockedRand struct {
	mu  sync.Mutex
	rnd *rand.Rand // guarded by mu
}

func newLockedRand(seed int64) *lockedRand {
	return &lockedRand{rnd: rand.New(rand.NewSource(seed))}
}

func (r *lockedRand) intn(n int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rnd.Intn(n)
}

func (r *lockedRand) int63n(n int64) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rnd.Int63n(n)
}

// nextBackoff computes the decorrelated-jitter backoff ("sleep =
// min(cap, rand(base, prev*3))", Exponential Backoff And Jitter,
// AWS Architecture Blog): successive retries spread out over an
// exponentially growing but randomized interval, so a fleet of
// coordinators retrying into a recovering shard does not thundering-herd
// it on synchronized boundaries.
func nextBackoff(rng *lockedRand, base, prev, max time.Duration) time.Duration {
	if base <= 0 {
		return 0
	}
	hi := prev * 3
	if hi <= base {
		hi = base + 1
	}
	d := base + time.Duration(rng.int63n(int64(hi-base)))
	if d > max {
		d = max
	}
	return d
}

// sleepCtx sleeps for d, returning early with false when ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
