package shard

import (
	"os"
	"testing"

	"ndss/internal/leakcheck"
)

// TestMain verifies the gospawn termination contracts dynamically: a
// fan-out leg, hedge attempt, or health prober still running after the
// suite fails the binary. NDSS_LEAKCHECK=0 disables for one-off
// debugging.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
