package netfault

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"
)

// upstream spins up a trivial backend answering "hello world" and
// returns a fault-wrapped client plus the server's host key.
func upstream(t *testing.T) (*Transport, *http.Client, string, string) {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "hello world")
	}))
	t.Cleanup(ts.Close)
	ft := New(ts.Client().Transport)
	cl := &http.Client{Transport: ft}
	u, err := url.Parse(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return ft, cl, ts.URL, u.Host
}

func get(t *testing.T, cl *http.Client, url string) (*http.Response, string, error) {
	t.Helper()
	resp, err := cl.Get(url)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp, string(body), err
}

func TestScriptAppliesInArrivalOrder(t *testing.T) {
	ft, cl, url, host := upstream(t)
	ft.Script(host,
		Fault{Kind: Status, Status: 503},
		Fault{Kind: None},
		Fault{Kind: Reset},
	)

	resp, body, err := get(t, cl, url)
	if err != nil || resp.StatusCode != 503 {
		t.Fatalf("request 1: status=%v err=%v, want the scripted 503", resp, err)
	}
	if body != `{"error":"netfault: injected 503"}` {
		t.Fatalf("synthesized body = %q", body)
	}

	if _, body, err := get(t, cl, url); err != nil || body != "hello world" {
		t.Fatalf("request 2 (None) = %q, %v; want passthrough", body, err)
	}

	if _, _, err := get(t, cl, url); !errors.Is(err, ErrReset) {
		t.Fatalf("request 3: err = %v, want the injected reset inside *url.Error", err)
	}

	// Past the end of the script: passthrough.
	if _, body, err := get(t, cl, url); err != nil || body != "hello world" {
		t.Fatalf("request 4 (script exhausted) = %q, %v; want passthrough", body, err)
	}
	if n := ft.Calls(host); n != 4 {
		t.Fatalf("Calls = %d, want 4 (injected failures count)", n)
	}
}

func TestSetAllOverridesScriptUntilCleared(t *testing.T) {
	ft, cl, url, host := upstream(t)
	ft.Script(host, Fault{Kind: None}, Fault{Kind: None})
	ft.SetAll(host, Fault{Kind: Reset}) // kill switch beats the script

	for i := 0; i < 3; i++ {
		if _, _, err := get(t, cl, url); !errors.Is(err, ErrReset) {
			t.Fatalf("request %d under SetAll: err = %v, want reset", i, err)
		}
	}
	ft.Clear(host)
	if _, body, err := get(t, cl, url); err != nil || body != "hello world" {
		t.Fatalf("after Clear = %q, %v; want the script/passthrough to resume", body, err)
	}
}

func TestTornBodyCutsMidStream(t *testing.T) {
	ft, cl, url, host := upstream(t)
	ft.Script(host, Fault{Kind: Torn, KeepBytes: 5})

	resp, err := cl.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("reading a torn body: err = %v, want ErrUnexpectedEOF", err)
	}
	if string(body) != "hello" {
		t.Fatalf("delivered %q before the cut, want the first 5 bytes", body)
	}
}

func TestBlackHoleParksUntilContextDone(t *testing.T) {
	ft, cl, url, host := upstream(t)
	ft.SetAll(host, Fault{Kind: BlackHole})

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = cl.Do(req)
	if err == nil || ctx.Err() == nil {
		t.Fatalf("black hole answered: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("request failed after %v, want it held until the deadline", elapsed)
	}
}

func TestDelayHoldsThenForwards(t *testing.T) {
	ft, cl, url, host := upstream(t)
	ft.Script(host, Fault{Kind: Delay, Delay: 30 * time.Millisecond})

	start := time.Now()
	_, body, err := get(t, cl, url)
	if err != nil || body != "hello world" {
		t.Fatalf("delayed request = %q, %v", body, err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("request answered in %v, want the 30ms hold first", elapsed)
	}
}

func TestScriptsAreIndependentPerTarget(t *testing.T) {
	ft, cl, url, host := upstream(t)
	ft.Script("other-host:1234", Fault{Kind: Reset})

	if _, body, err := get(t, cl, url); err != nil || body != "hello world" {
		t.Fatalf("another target's script leaked: %q, %v", body, err)
	}
	if ft.Calls(host) != 1 || ft.Calls("other-host:1234") != 0 {
		t.Fatalf("calls = %d/%d, want 1/0", ft.Calls(host), ft.Calls("other-host:1234"))
	}
}
