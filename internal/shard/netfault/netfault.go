// Package netfault is a deterministic network-fault harness for the
// sharded serving stack: an http.RoundTripper that injects scripted
// failures per (target, request number), mirroring the fsio FaultFS
// design for disk faults. Chaos tests script exactly which attempt of
// which replica sees a delay, a connection reset, a 5xx/429 burst, a
// black hole, or a torn response body — and then assert the
// coordinator still produces byte-identical results, reproducibly,
// with no real network flakiness involved.
package netfault

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// None forwards the request untouched.
	None Kind = iota
	// Delay holds the request for Fault.Delay, then forwards it.
	Delay
	// Reset fails the request immediately with a connection-reset
	// error, as if the remote closed the socket.
	Reset
	// BlackHole never answers: the request parks until its context is
	// done. This is the "switch ate my packets" failure a dial timeout
	// does not model.
	BlackHole
	// Status short-circuits with a synthesized HTTP error response
	// (Fault.Status, e.g. 429/500/503) without touching the remote.
	Status
	// Torn forwards the request but cuts the response body after
	// Fault.KeepBytes, so the client sees a mid-stream failure rather
	// than a clean error.
	Torn
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Delay:
		return "delay"
	case Reset:
		return "reset"
	case BlackHole:
		return "blackhole"
	case Status:
		return "status"
	case Torn:
		return "torn"
	}
	return "unknown"
}

// Fault is one scripted failure.
type Fault struct {
	Kind Kind
	// Delay is how long a Delay fault holds the request.
	Delay time.Duration
	// Status is the synthesized response code of a Status fault.
	Status int
	// KeepBytes is how much response body a Torn fault delivers before
	// cutting the stream.
	KeepBytes int64
}

// ErrReset is the injected connection-reset failure. It reaches the
// caller wrapped in a *url.Error, exactly like a real transport error.
var ErrReset = errors.New("netfault: connection reset by peer")

// Transport is the fault-injecting http.RoundTripper. Faults are
// scripted per target host and applied by request arrival order (the
// n-th request to a target gets the n-th scripted fault; past the end
// of the script requests pass through). An override set with SetAll
// takes precedence — that is the "replica killed mid-run" switch.
//
// All methods are safe for concurrent use, and the fault chosen for a
// given (target, request number) is a pure function of the script, so
// a test run is reproducible end to end.
type Transport struct {
	next http.RoundTripper

	mu       sync.Mutex
	seq      map[string]int
	script   map[string][]Fault
	override map[string]*Fault
}

// New wraps next (nil selects http.DefaultTransport) in a fault
// injector with an empty script: everything passes through until
// Script or SetAll say otherwise.
func New(next http.RoundTripper) *Transport {
	if next == nil {
		next = http.DefaultTransport
	}
	return &Transport{
		next:     next,
		seq:      make(map[string]int),
		script:   make(map[string][]Fault),
		override: make(map[string]*Fault),
	}
}

// Script appends faults to target's script, consumed one per request
// in arrival order. target is the host[:port] of the replica URL.
func (t *Transport) Script(target string, faults ...Fault) {
	t.mu.Lock()
	t.script[target] = append(t.script[target], faults...)
	t.mu.Unlock()
}

// SetAll makes every subsequent request to target see f, regardless of
// the script — kill a replica with Reset or BlackHole, revive it with
// Clear.
func (t *Transport) SetAll(target string, f Fault) {
	t.mu.Lock()
	t.override[target] = &f
	t.mu.Unlock()
}

// Clear removes target's override, letting its script (or passthrough)
// resume.
func (t *Transport) Clear(target string) {
	t.mu.Lock()
	delete(t.override, target)
	t.mu.Unlock()
}

// Calls reports how many requests have been routed toward target,
// including ones that were failed by injection.
func (t *Transport) Calls(target string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq[target]
}

func (t *Transport) faultFor(target string) Fault {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.seq[target]
	t.seq[target] = n + 1
	if f := t.override[target]; f != nil {
		return *f
	}
	if s := t.script[target]; n < len(s) {
		return s[n]
	}
	return Fault{}
}

// RoundTrip applies the next scripted fault for the request's target
// host, forwarding to the wrapped transport when the fault allows it.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	f := t.faultFor(req.URL.Host)
	switch f.Kind {
	case Delay:
		timer := time.NewTimer(f.Delay)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-req.Context().Done():
			closeBody(req)
			return nil, req.Context().Err()
		}
		return t.next.RoundTrip(req)
	case Reset:
		closeBody(req)
		return nil, ErrReset
	case BlackHole:
		<-req.Context().Done()
		closeBody(req)
		return nil, req.Context().Err()
	case Status:
		closeBody(req)
		body := fmt.Sprintf("{\"error\":\"netfault: injected %d\"}", f.Status)
		resp := &http.Response{
			StatusCode:    f.Status,
			Status:        fmt.Sprintf("%d %s", f.Status, http.StatusText(f.Status)),
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": {"application/json"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}
		return resp, nil
	case Torn:
		resp, err := t.next.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		resp.Body = &tornBody{rc: resp.Body, remain: f.KeepBytes}
		return resp, nil
	}
	return t.next.RoundTrip(req)
}

func closeBody(req *http.Request) {
	if req.Body != nil {
		req.Body.Close()
	}
}

// tornBody delivers at most remain bytes of the wrapped body, then
// fails mid-stream the way a dropped connection does.
type tornBody struct {
	rc     io.ReadCloser
	remain int64
}

func (b *tornBody) Read(p []byte) (int, error) {
	if b.remain <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.rc.Read(p)
	b.remain -= int64(n)
	if err == nil && b.remain <= 0 {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *tornBody) Close() error { return b.rc.Close() }
