package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ndss/internal/index"
	"ndss/internal/obs"
	"ndss/internal/search"
)

// DefaultMaxInFlight is the per-shard admission cap when HTTPOptions
// leaves MaxInFlight zero. Legs beyond the cap queue until a slot frees
// or the leg's budget expires, so a saturated shard degrades into
// flagged partial results instead of connection pile-ups.
const DefaultMaxInFlight = 64

// maxResponseBytes bounds how much of a shard response the client will
// read (matches the server's own request-body cap).
const maxResponseBytes = 256 << 20

// maxErrorBodyBytes bounds how much of a non-200 response body the
// client will read for the error message: a misbehaving remote must
// not balloon coordinator memory just because it is failing.
const maxErrorBodyBytes = 1 << 20

// DefaultProbeTimeout bounds NewHTTPShard's initial /healthz probe
// when the caller's context has no deadline of its own, so startup
// against a black-holed shard URL fails fast instead of hanging.
const DefaultProbeTimeout = 10 * time.Second

// HTTPOptions configures an HTTPShard.
type HTTPOptions struct {
	// Client issues the requests. Nil selects a client with a cloned
	// default transport sized for fan-out (keep-alive per shard).
	Client *http.Client
	// MaxInFlight caps concurrent requests to this shard; zero selects
	// DefaultMaxInFlight, negative disables admission.
	MaxInFlight int
}

// HTTPShard is a remote shard: an ndss-serve instance spoken to over
// the existing /search, /search/topk, /explain and /healthz contract.
// The remote owns its index lifecycle — it hot-reloads behind its own
// refcounted handle — and this client just re-checks /healthz for the
// current build id.
type HTTPShard struct {
	base string
	hc   *http.Client
	sem  chan struct{}

	mu      sync.RWMutex
	meta    index.Meta // guarded by mu
	buildID string     // guarded by mu

	ioBytes  atomic.Int64
	ioTimeNS atomic.Int64
}

// RemoteError is a non-200 answer from a remote shard.
type RemoteError struct {
	Shard  string
	Status int
	Msg    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("shard %s: http %d: %s", e.Shard, e.Status, e.Msg)
}

// Transient reports whether the failure is load- or lifecycle-related
// (saturation, drain, deadline) rather than a permanent request error.
func (e *RemoteError) Transient() bool {
	switch e.Status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// NewHTTPShard connects to the ndss-serve instance at baseURL, performs
// an initial health check, and learns the shard's index metadata from
// /healthz. The remote must be a current ndss-serve: coordinators need
// K/Seed/T/NumTexts up front to validate the shard set and assign
// text-id bases, so a /healthz without index metadata is an error.
func NewHTTPShard(ctx context.Context, baseURL string, opts HTTPOptions) (*HTTPShard, error) {
	hc := opts.Client
	if hc == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = DefaultMaxInFlight
		hc = &http.Client{Transport: tr}
	}
	inflight := opts.MaxInFlight
	if inflight == 0 {
		inflight = DefaultMaxInFlight
	}
	h := &HTTPShard{base: strings.TrimRight(baseURL, "/"), hc: hc}
	if inflight > 0 {
		h.sem = make(chan struct{}, inflight)
	}
	// The initial probe is always bounded: a caller handing us a
	// deadline-free context (ndss-serve startup does) must not hang
	// forever on a black-holed shard URL.
	probeCtx := ctx
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		probeCtx, cancel = context.WithTimeout(ctx, DefaultProbeTimeout)
		defer cancel()
	}
	if err := h.CheckHealth(probeCtx); err != nil {
		return nil, err
	}
	h.mu.RLock()
	meta := h.meta
	h.mu.RUnlock()
	if meta.K == 0 {
		return nil, fmt.Errorf("shard %s: /healthz reports no index metadata (remote ndss-serve too old for sharded serving)", h.base)
	}
	return h, nil
}

// NewHTTPShardDeferred creates an HTTPShard without the initial health
// probe: no metadata, no build id, no network touched. It exists for
// replica groups, where a replica that is down at boot should come up
// quarantined and join once a health probe reaches it — a plain
// coordinator shard cannot defer, because text-id bases need NumTexts
// up front.
func NewHTTPShardDeferred(baseURL string, opts HTTPOptions) *HTTPShard {
	hc := opts.Client
	if hc == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = DefaultMaxInFlight
		hc = &http.Client{Transport: tr}
	}
	inflight := opts.MaxInFlight
	if inflight == 0 {
		inflight = DefaultMaxInFlight
	}
	h := &HTTPShard{base: strings.TrimRight(baseURL, "/"), hc: hc}
	if inflight > 0 {
		h.sem = make(chan struct{}, inflight)
	}
	return h
}

// Name returns the shard's base URL.
func (h *HTTPShard) Name() string { return h.base }

// Meta returns the index metadata learned from the shard's /healthz.
func (h *HTTPShard) Meta() index.Meta {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.meta
}

// BuildID returns the remote's build id as of the last successful
// health check or query.
func (h *HTTPShard) BuildID() string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.buildID
}

// IOStats reports the cumulative index I/O this client's queries caused
// on the remote, as accounted by the remote's per-query stats.
func (h *HTTPShard) IOStats() index.IOStats {
	return index.IOStats{
		BytesRead: h.ioBytes.Load(),
		ReadTime:  time.Duration(h.ioTimeNS.Load()),
	}
}

// Close releases idle connections. The remote server is not touched.
func (h *HTTPShard) Close() error {
	h.hc.CloseIdleConnections()
	return nil
}

// healthzWire is the /healthz response shape this client consumes. The
// index object is additive server metadata (same JSON shape as
// index.Meta).
type healthzWire struct {
	Status  string      `json:"status"`
	BuildID string      `json:"build_id"`
	Index   *index.Meta `json:"index"`
}

// CheckHealth performs GET /healthz, refreshing the cached build id and
// index metadata on success. A shard that is shutting down (503) or
// unreachable reports an error.
func (h *HTTPShard) CheckHealth(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, h.base+"/healthz", nil)
	if err != nil {
		return fmt.Errorf("shard %s: %w", h.base, err)
	}
	setPropagationHeaders(ctx, req.Header)
	resp, err := h.hc.Do(req)
	if err != nil {
		return fmt.Errorf("shard %s: health: %w", h.base, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return fmt.Errorf("shard %s: health: %w", h.base, err)
	}
	var hz healthzWire
	if err := json.Unmarshal(body, &hz); err != nil {
		return fmt.Errorf("shard %s: health: bad body: %w", h.base, err)
	}
	if resp.StatusCode != http.StatusOK {
		return &RemoteError{Shard: h.base, Status: resp.StatusCode, Msg: hz.Status}
	}
	h.mu.Lock()
	h.buildID = hz.BuildID
	if hz.Index != nil {
		h.meta = *hz.Index
	}
	h.mu.Unlock()
	return nil
}

// wireRequest mirrors the server's searchRequest JSON body.
type wireRequest struct {
	Tokens            []uint32 `json:"tokens"`
	Theta             float64  `json:"theta"`
	MinLength         int      `json:"min_length,omitempty"`
	PrefixFilter      bool     `json:"prefix_filter,omitempty"`
	LongListThreshold int      `json:"long_list_threshold,omitempty"`
	CostBased         bool     `json:"cost_based,omitempty"`
	Verify            bool     `json:"verify,omitempty"`
	TimeoutMS         int      `json:"timeout_ms,omitempty"`
	N                 int      `json:"n,omitempty"`
	FloorTheta        float64  `json:"floor_theta,omitempty"`
}

type wireMatch struct {
	TextID     uint32  `json:"text_id"`
	Start      int32   `json:"start"`
	End        int32   `json:"end"`
	Collisions int     `json:"collisions"`
	EstJaccard float64 `json:"est_jaccard"`
	Jaccard    float64 `json:"jaccard"`
}

type wireStages struct {
	SketchNS int64 `json:"sketch_ns"`
	PlanNS   int64 `json:"plan_ns"`
	GatherNS int64 `json:"gather_ns"`
	CountNS  int64 `json:"count_ns"`
	MergeNS  int64 `json:"merge_ns"`
	VerifyNS int64 `json:"verify_ns"`
}

type wireStats struct {
	K          int        `json:"k"`
	Beta       int        `json:"beta"`
	ShortLists int        `json:"short_lists"`
	LongLists  int        `json:"long_lists"`
	Candidates int        `json:"candidates"`
	Probed     int        `json:"probed"`
	Matches    int        `json:"matches"`
	IOBytes    int64      `json:"io_bytes"`
	IOTimeNS   int64      `json:"io_time_ns"`
	CPUTimeNS  int64      `json:"cpu_time_ns"`
	TotalNS    int64      `json:"total_ns"`
	Stages     wireStages `json:"stages"`
	// Spans is the remote's own span list, shipped back only when the
	// request's traceparent had the sampling bit set.
	Spans []obs.Span `json:"spans,omitempty"`
}

type wireResponse struct {
	Matches []wireMatch `json:"matches"`
	Stats   wireStats   `json:"stats"`
}

type wireError struct {
	Error string `json:"error"`
}

func toWireRequest(query []uint32, opts search.Options) wireRequest {
	return wireRequest{
		Tokens:            query,
		Theta:             opts.Theta,
		MinLength:         opts.MinLength,
		PrefixFilter:      opts.PrefixFilter,
		LongListThreshold: opts.LongListThreshold,
		CostBased:         opts.CostBasedPrefix,
		Verify:            opts.Verify,
	}
}

// SearchContext runs the query on the remote shard. The context
// deadline is forwarded as the request's timeout_ms so the remote
// enforces the same budget server-side.
func (h *HTTPShard) SearchContext(ctx context.Context, query []uint32, opts search.Options) ([]search.Match, *search.Stats, error) {
	return h.query(ctx, "/search", toWireRequest(query, opts))
}

// SearchTopKContext runs the top-k query on the remote shard.
func (h *HTTPShard) SearchTopKContext(ctx context.Context, query []uint32, opts search.TopKOptions) ([]search.Match, *search.Stats, error) {
	req := toWireRequest(query, opts.Search)
	req.N = opts.N
	req.FloorTheta = opts.FloorTheta
	return h.query(ctx, "/search/topk", req)
}

// ExplainContext fetches the deferral plan the remote would run the
// query with.
func (h *HTTPShard) ExplainContext(ctx context.Context, query []uint32, opts search.Options) (*search.Plan, error) {
	release, err := h.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	var plan struct {
		Beta    int    `json:"beta"`
		Alpha   int    `json:"alpha"`
		NumLong int    `json:"num_long"`
		Cutoff  int    `json:"cutoff"`
		Long    []bool `json:"long"`
	}
	if err := h.post(ctx, "/explain", toWireRequest(query, opts), &plan); err != nil {
		return nil, err
	}
	return &search.Plan{
		Long: plan.Long, NumLong: plan.NumLong, Cutoff: plan.Cutoff,
		Beta: plan.Beta, Alpha: plan.Alpha,
	}, nil
}

// acquire takes a per-shard admission slot, waiting until one frees or
// the context expires. The returned release must be called once.
func (h *HTTPShard) acquire(ctx context.Context) (func(), error) {
	if h.sem == nil {
		return func() {}, nil
	}
	select {
	case h.sem <- struct{}{}:
		return func() { <-h.sem }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (h *HTTPShard) query(ctx context.Context, path string, req wireRequest) ([]search.Match, *search.Stats, error) {
	release, err := h.acquire(ctx)
	if err != nil {
		return nil, nil, err
	}
	defer release()
	if dl, ok := ctx.Deadline(); ok {
		rem := time.Until(dl)
		if rem <= 0 {
			return nil, nil, context.DeadlineExceeded
		}
		req.TimeoutMS = int(rem / time.Millisecond)
		if req.TimeoutMS == 0 {
			req.TimeoutMS = 1
		}
	}
	var resp wireResponse
	if err := h.post(ctx, path, req, &resp); err != nil {
		return nil, nil, err
	}
	matches := make([]search.Match, len(resp.Matches))
	for i, m := range resp.Matches {
		matches[i] = search.Match{
			TextID: m.TextID, Start: m.Start, End: m.End,
			Collisions: m.Collisions, EstJaccard: m.EstJaccard, Jaccard: m.Jaccard,
		}
	}
	ws := resp.Stats
	st := &search.Stats{
		K: ws.K, Beta: ws.Beta, ShortLists: ws.ShortLists, LongLists: ws.LongLists,
		Candidates: ws.Candidates, Probed: ws.Probed, Matches: ws.Matches,
		IOBytes: ws.IOBytes, IOTime: time.Duration(ws.IOTimeNS),
		CPUTime: time.Duration(ws.CPUTimeNS), Total: time.Duration(ws.TotalNS),
		StageTimes: search.StageTimes{
			Sketch: time.Duration(ws.Stages.SketchNS), Plan: time.Duration(ws.Stages.PlanNS),
			Gather: time.Duration(ws.Stages.GatherNS), Count: time.Duration(ws.Stages.CountNS),
			Merge: time.Duration(ws.Stages.MergeNS), Verify: time.Duration(ws.Stages.VerifyNS),
		},
	}
	st.Spans = ws.Spans
	h.ioBytes.Add(st.IOBytes)
	h.ioTimeNS.Add(int64(st.IOTime))
	return matches, st, nil
}

// setPropagationHeaders forwards the request id and trace context on
// an outbound shard call, when the context carries them. The trace
// context in ctx is the per-attempt child, so everything the remote
// records hangs off exactly this attempt's span id.
func setPropagationHeaders(ctx context.Context, hdr http.Header) {
	if id := obs.RequestIDFromContext(ctx); id != "" {
		hdr.Set(obs.HeaderRequestID, id)
	}
	if tc, ok := obs.TraceFromContext(ctx); ok {
		hdr.Set(obs.HeaderTraceparent, tc.Traceparent())
	}
}

// post issues one JSON POST and decodes the 200 response into out. A
// non-200 answer becomes a *RemoteError carrying the remote's error
// string.
func (h *HTTPShard) post(ctx context.Context, path string, body any, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("shard %s: %w", h.base, err)
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, h.base+path, bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("shard %s: %w", h.base, err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	setPropagationHeaders(ctx, httpReq.Header)
	resp, err := h.hc.Do(httpReq)
	if err != nil {
		// Surface the caller's own cancellation/deadline unwrapped so
		// the coordinator can classify it.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return ctxErr
		}
		return fmt.Errorf("shard %s: %w", h.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Error bodies get a much tighter read cap than results: a
		// failing remote spewing garbage must not occupy result-sized
		// buffers on the coordinator.
		data, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrorBodyBytes))
		var we wireError
		_ = json.Unmarshal(data, &we) // best effort; fall back to raw body
		msg := we.Error
		if msg == "" {
			msg = strings.TrimSpace(string(data))
		}
		return &RemoteError{Shard: h.base, Status: resp.StatusCode, Msg: msg}
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return ctxErr
		}
		return fmt.Errorf("shard %s: read response: %w", h.base, err)
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("shard %s: bad response: %w", h.base, err)
	}
	return nil
}
