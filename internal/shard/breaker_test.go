package shard

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBreakerTripsAfterThreshold(t *testing.T) {
	b := &breaker{threshold: 3, cooldown: time.Hour}
	for i := 0; i < 2; i++ {
		b.onFailure()
		if ok, _ := b.allow(); !ok {
			t.Fatalf("breaker opened after %d failures, threshold is 3", i+1)
		}
	}
	b.onFailure()
	if b.current() != BreakerOpen {
		t.Fatalf("state after 3 failures = %v, want open", b.current())
	}
	if ok, _ := b.allow(); ok {
		t.Fatal("open breaker within cooldown must refuse")
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b := &breaker{threshold: 3, cooldown: time.Hour}
	b.onFailure()
	b.onFailure()
	b.onSuccess()
	b.onFailure()
	b.onFailure()
	if b.current() != BreakerClosed {
		t.Fatal("non-consecutive failures must not trip the breaker")
	}
}

func TestBreakerHalfOpenSingleTrial(t *testing.T) {
	b := &breaker{threshold: 1, cooldown: time.Millisecond}
	b.onFailure()
	if b.current() != BreakerOpen {
		t.Fatal("threshold 1 breaker should open on first failure")
	}
	time.Sleep(2 * time.Millisecond)
	ok, trial := b.allow()
	if !ok || !trial {
		t.Fatalf("allow after cooldown = (%v, %v), want a claimed half-open trial", ok, trial)
	}
	if b.current() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half_open", b.current())
	}
	// The trial slot is held: a second caller is refused.
	if ok, _ := b.allow(); ok {
		t.Fatal("second caller must not get a concurrent half-open trial")
	}
	// A failed trial re-opens with a fresh cooldown.
	b.onFailure()
	if b.current() != BreakerOpen {
		t.Fatal("failed trial should re-open the breaker")
	}
	time.Sleep(2 * time.Millisecond)
	if ok, _ := b.allow(); !ok {
		t.Fatal("cooldown elapsed again; a new trial is due")
	}
	b.onSuccess()
	if b.current() != BreakerClosed {
		t.Fatal("successful trial should close the breaker")
	}
}

func TestBreakerReleaseTrial(t *testing.T) {
	b := &breaker{threshold: 1, cooldown: time.Millisecond}
	b.onFailure()
	time.Sleep(2 * time.Millisecond)
	if ok, trial := b.allow(); !ok || !trial {
		t.Fatal("expected to claim the trial")
	}
	// The trial attempt was canceled (hedge loser): releasing the slot
	// lets the next attempt try, instead of wedging until a probe.
	b.releaseTrial()
	if ok, trial := b.allow(); !ok || !trial {
		t.Fatal("released trial slot must be claimable again")
	}
}

func TestBreakerResetClosesFromAnyState(t *testing.T) {
	b := &breaker{threshold: 1, cooldown: time.Hour}
	b.onFailure()
	if b.current() != BreakerOpen {
		t.Fatal("setup: breaker should be open")
	}
	b.reset()
	if b.current() != BreakerClosed {
		t.Fatal("reset (health probe success) must close the breaker outright")
	}
	if ok, trial := b.allow(); !ok || trial {
		t.Fatal("closed breaker allows without a trial claim")
	}
}

func TestBreakerStateStrings(t *testing.T) {
	cases := map[BreakerState]string{
		BreakerClosed: "closed", BreakerHalfOpen: "half_open", BreakerOpen: "open",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	// The numeric values are the ndss_shard_breaker_state gauge encoding.
	if BreakerClosed != 0 || BreakerHalfOpen != 1 || BreakerOpen != 2 {
		t.Error("breaker gauge encoding changed; update the /metrics docs")
	}
}

func TestTokenBucketBudget(t *testing.T) {
	b := newTokenBucket(2)
	if !b.take() || !b.take() {
		t.Fatal("bucket starts full: the first two takes succeed")
	}
	if b.take() {
		t.Fatal("empty bucket must refuse")
	}
	// Four primary attempts at 25% budget earn one retry token (0.25 is
	// exact in binary, so no float drift in the assertion).
	for i := 0; i < 4; i++ {
		b.earn(0.25)
	}
	if !b.take() {
		t.Fatal("earned a full token; take should succeed")
	}
	if b.take() {
		t.Fatal("only one token was earned")
	}
	// Earnings cap at the burst size.
	for i := 0; i < 100; i++ {
		b.earn(1)
	}
	if !b.take() || !b.take() {
		t.Fatal("bucket should be at capacity 2")
	}
	if b.take() {
		t.Fatal("earnings past the burst capacity must not accumulate")
	}
}

func TestQuantileWindow(t *testing.T) {
	var q quantileWindow
	if q.quantile(0.95) != 0 {
		t.Fatal("empty window reports 0 (hedge floor applies instead)")
	}
	for i := 1; i <= 100; i++ {
		q.observe(time.Duration(i) * time.Millisecond)
	}
	p95 := q.quantile(0.95)
	if p95 < 90*time.Millisecond || p95 > 100*time.Millisecond {
		t.Fatalf("P95 of 1..100ms = %v, want ~95ms", p95)
	}
	// The window slides: flooding with fast samples forgets the slow ones.
	for i := 0; i < quantileWindowSize; i++ {
		q.observe(time.Millisecond)
	}
	if got := q.quantile(0.95); got != time.Millisecond {
		t.Fatalf("P95 after window turnover = %v, want 1ms", got)
	}
}

func TestNextBackoffDecorrelatedJitter(t *testing.T) {
	rng := newLockedRand(1)
	base, max := time.Millisecond, 50*time.Millisecond
	prev := time.Duration(0)
	for i := 0; i < 100; i++ {
		d := nextBackoff(rng, base, prev, max)
		if d < base || d > max {
			t.Fatalf("backoff %v outside [%v, %v]", d, base, max)
		}
		prev = d
	}
	if nextBackoff(rng, 0, prev, max) != 0 {
		t.Fatal("zero base disables backoff")
	}
}

func TestSleepCtx(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	if !sleepCtx(ctx, 0) {
		t.Fatal("zero sleep on a live context reports true")
	}
	cancel()
	if sleepCtx(ctx, time.Hour) {
		t.Fatal("sleep on a dead context returns false immediately")
	}
}

// TestBreakerReleaseTrialProberRace pins the interaction between the
// half-open trial slot and the background prober's reset (CheckHealth
// success). Two properties, both of which -race alone cannot assert:
//
//  1. Trial accounting: while a claimed trial is unsettled (and no
//     prober intervenes), no other allow() may claim a second trial;
//     releaseTrial must hand the slot to exactly one next claimant.
//  2. A prober reset during half-open zeroes the failure streak, so the
//     stale trial's later onFailure is one Closed-state failure — the
//     gauge-encoded state must not skip closed→open without fresh
//     threshold (or half-open trial) accounting.
func TestBreakerReleaseTrialProberRace(t *testing.T) {
	// Deterministic interleaving first: trial claimed, prober resets,
	// stale claimant fails.
	b := &breaker{threshold: 3, cooldown: time.Millisecond}
	for i := 0; i < 3; i++ {
		b.onFailure()
	}
	if b.current() != BreakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", b.current())
	}
	time.Sleep(2 * time.Millisecond)
	ok, trial := b.allow()
	if !ok || !trial {
		t.Fatalf("allow after cooldown = (%v, %v), want trial grant", ok, trial)
	}
	b.reset() // prober: successful CheckHealth while the trial is in flight
	if b.current() != BreakerClosed {
		t.Fatalf("state after prober reset = %v, want closed", b.current())
	}
	b.onFailure() // the stale trial settles as a failure
	if got := b.current(); got == BreakerOpen {
		t.Fatalf("one stale-trial failure after reset re-opened the breaker (state %v): closed→open without threshold accounting", got)
	}

	// Slot exclusivity under contention: with no settlement and no
	// prober, concurrent allow() calls on a half-open breaker must grant
	// exactly one trial; after releaseTrial, exactly one more.
	b = &breaker{threshold: 1, cooldown: time.Millisecond}
	b.onFailure()
	time.Sleep(2 * time.Millisecond)
	var trials atomic.Int64
	hammer := func() {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					if _, trial := b.allow(); trial {
						trials.Add(1)
					}
				}
			}()
		}
		wg.Wait()
	}
	hammer()
	if got := trials.Load(); got != 1 {
		t.Fatalf("unsettled half-open breaker granted %d trials, want exactly 1", got)
	}
	b.releaseTrial()
	hammer()
	if got := trials.Load(); got != 2 {
		t.Fatalf("after releaseTrial total trials = %d, want exactly 2 (one per settlement)", got)
	}

	// Full stress under the race detector: claimants settling through
	// every path vs. a hot prober loop, with a sampler asserting the
	// gauge-encoded state stays within the enum the whole time.
	b = &breaker{threshold: 2, cooldown: time.Microsecond}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // prober
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				b.reset()
			}
		}
	}()
	wg.Add(1)
	go func() { // metrics sampler
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if s := b.current(); s != BreakerClosed && s != BreakerHalfOpen && s != BreakerOpen {
					t.Errorf("gauge-encoded state %d outside the enum", s)
					return
				}
			}
		}
	}()
	var workers sync.WaitGroup
	for g := 0; g < 4; g++ {
		workers.Add(1)
		go func(seed int) {
			defer workers.Done()
			for i := 0; i < 2000; i++ {
				ok, trial := b.allow()
				if !ok {
					continue
				}
				switch (i + seed) % 3 {
				case 0:
					b.onSuccess()
				case 1:
					b.onFailure()
				case 2:
					if trial {
						b.releaseTrial()
					} else {
						b.onSuccess()
					}
				}
			}
		}(g)
	}
	workers.Wait()
	close(stop)
	wg.Wait()

	// Quiesce: every slot settled, so a reset breaker serves again.
	b.reset()
	if ok, _ := b.allow(); !ok {
		t.Fatal("breaker wedged after stress: allow refused on a freshly reset closed breaker")
	}
}
