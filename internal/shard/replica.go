package shard

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ndss/internal/index"
	"ndss/internal/obs"
	"ndss/internal/search"
)

// ReplicaConfig tunes a ReplicaSet's resilience behaviour. The zero
// value selects the documented defaults; negative values disable the
// corresponding mechanism where noted.
type ReplicaConfig struct {
	// MaxRetries caps the extra attempts (beyond the primary) a single
	// leg may make after transient failures. Default 2; negative
	// disables retries.
	MaxRetries int
	// RetryBudget is the fraction of a retry token each primary attempt
	// earns: sustained retries+hedges cannot exceed this fraction of
	// the recent primary request rate. Default 0.1.
	RetryBudget float64
	// RetryBurst is the token bucket's capacity — how many retries a
	// brief blip may issue back-to-back. Default 10.
	RetryBurst float64
	// BackoffBase/BackoffMax bound the decorrelated-jitter backoff
	// between retries. Defaults 1ms / 50ms.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// HedgeDelayMin floors the hedge trigger: a leg hedges once its
	// first attempt has run for max(replica streaming P95,
	// HedgeDelayMin). Default 5ms; negative disables hedging.
	HedgeDelayMin time.Duration
	// BreakerFailures consecutive failures open a replica's circuit
	// breaker. Default 5.
	BreakerFailures int
	// BreakerCooldown is how long an open breaker rejects traffic
	// before letting one half-open trial through. Default 1s.
	BreakerCooldown time.Duration
	// ProbeInterval paces StartProber's background health checks.
	// Default 2s.
	ProbeInterval time.Duration
	// Seed fixes the routing/jitter RNG for reproducible tests; 0
	// derives a seed from the set's name.
	Seed int64
}

func (c ReplicaConfig) withDefaults() ReplicaConfig {
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	} else if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 0.1
	}
	if c.RetryBurst == 0 {
		c.RetryBurst = 10
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = time.Millisecond
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = 50 * time.Millisecond
	}
	if c.HedgeDelayMin == 0 {
		c.HedgeDelayMin = 5 * time.Millisecond
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Second
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	return c
}

// replica is one interchangeable copy of a shard's index plus its
// routing state: in-flight count (power-of-two-choices), circuit
// breaker, streaming latency window, and attempt counters.
type replica struct {
	client ShardClient
	idx    int

	inflight    atomic.Int64
	br          breaker
	lat         quantileWindow
	quarantined atomic.Bool

	requests atomic.Int64
	errors   atomic.Int64
	retries  atomic.Int64
	hedges   atomic.Int64
}

// ReplicaSet serves one doc-range shard from N interchangeable
// replicas behind the ShardClient surface, so the coordinator's
// fan-out/merge logic is unchanged — resilience is this layer's job:
//
//   - Routing: each attempt goes to a healthy (non-quarantined,
//     breaker-permitting) replica, chosen by power-of-two-choices on
//     in-flight count (ties to the lower index, so tests are
//     deterministic under a fixed seed).
//   - Retry: a transiently-failing attempt retries on a different
//     replica under decorrelated-jitter backoff, a per-leg retry cap,
//     and a token-bucket budget earned by primary traffic.
//   - Hedging: when the first attempt outruns the replica's streaming
//     P95, one speculative attempt goes to another replica; the first
//     answer wins and the loser is canceled.
//   - Breaker + quarantine: consecutive failures open a per-replica
//     breaker (half-open single-trial recovery); a replica whose build
//     id diverges from the group majority is quarantined outright, so
//     mixed builds are never merged.
//
// All replicas must serve the same index build: identical K, Seed, T,
// and NumTexts. Results from any replica are interchangeable, which is
// what makes retrying and hedging sound.
type ReplicaSet struct {
	name     string
	cfg      ReplicaConfig
	replicas []*replica
	meta     index.Meta
	rng      *lockedRand
	budget   *tokenBucket

	hedgeWins    atomic.Int64
	budgetDenied atomic.Int64

	mu         sync.Mutex
	groupBuild string             // guarded by mu
	probeStop  context.CancelFunc // guarded by mu
	probeWG    sync.WaitGroup
}

// NewReplicaSet groups clients as interchangeable replicas of one
// shard. At least one replica must report index metadata (a deferred
// replica that was unreachable at construction reports none and starts
// quarantined until a health probe learns its build); replicas with
// known metadata must agree exactly, NumTexts included — a replica
// serving a different corpus slice would corrupt global text ids. The
// set takes ownership of the clients: Close closes them.
func NewReplicaSet(name string, clients []ShardClient, cfg ReplicaConfig) (*ReplicaSet, error) {
	if len(clients) == 0 {
		return nil, errors.New("shard: replica set needs at least one replica")
	}
	cfg = cfg.withDefaults()
	var meta index.Meta
	for _, cl := range clients {
		if m := cl.Meta(); m.K != 0 {
			meta = m
			break
		}
	}
	if meta.K == 0 {
		return nil, fmt.Errorf("shard: replica set %s: no replica reports index metadata", name)
	}
	if name == "" {
		name = clients[0].Name()
	}
	reps := make([]*replica, len(clients))
	for i, cl := range clients {
		m := cl.Meta()
		if m.K != 0 {
			if m.K != meta.K || m.Seed != meta.Seed || m.T != meta.T {
				return nil, &MixedShardsError{Shard: cl.Name(), Want: meta, Got: m}
			}
			if m.NumTexts != meta.NumTexts {
				return nil, fmt.Errorf("shard: replica %s serves %d texts, its group serves %d (replicas must be copies of one shard)",
					cl.Name(), m.NumTexts, meta.NumTexts)
			}
		}
		reps[i] = &replica{client: cl, idx: i}
		reps[i].br.threshold = cfg.BreakerFailures
		reps[i].br.cooldown = cfg.BreakerCooldown
	}
	seed := cfg.Seed
	if seed == 0 {
		h := fnv.New64a()
		h.Write([]byte(name))
		seed = int64(h.Sum64())
	}
	rs := &ReplicaSet{
		name:     name,
		cfg:      cfg,
		replicas: reps,
		meta:     meta,
		rng:      newLockedRand(seed),
		budget:   newTokenBucket(cfg.RetryBurst),
	}
	rs.requarantine(nil)
	return rs, nil
}

func (r *ReplicaSet) multi() bool { return len(r.replicas) > 1 }

// Name identifies the replica group (its configuration string).
func (r *ReplicaSet) Name() string { return r.name }

// Meta returns the group's index metadata, fixed at construction.
func (r *ReplicaSet) Meta() index.Meta { return r.meta }

// BuildID returns the group's agreed build id: the majority build
// among replicas, refreshed by health probes. Empty until any replica
// has reported a build.
func (r *ReplicaSet) BuildID() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.groupBuild
}

// IOStats sums the replicas' cumulative I/O counters.
func (r *ReplicaSet) IOStats() index.IOStats {
	var out index.IOStats
	for _, rep := range r.replicas {
		st := rep.client.IOStats()
		out.BytesRead += st.BytesRead
		out.ReadTime += st.ReadTime
	}
	return out
}

// requarantine recomputes which replicas are safe to query: the
// majority build id among the voting replicas (ties to the
// lowest-index replica's build) defines the group build, and any
// replica with no build, a diverging build, or diverging index
// metadata is quarantined — routed around entirely, because merging
// answers from mixed builds silently corrupts results. fresh marks
// which replicas just answered a health probe and may vote; nil lets
// every replica vote. When nobody can vote the previous group build
// stands.
func (r *ReplicaSet) requarantine(fresh []bool) {
	counts := make(map[string]int)
	order := make(map[string]int)
	for _, rep := range r.replicas {
		if fresh != nil && !fresh[rep.idx] {
			continue
		}
		b := rep.client.BuildID()
		if b == "" {
			continue
		}
		if _, ok := order[b]; !ok {
			order[b] = rep.idx
		}
		counts[b]++
	}
	r.mu.Lock()
	majority := r.groupBuild
	if len(counts) > 0 {
		majority = ""
		for b, n := range counts {
			if majority == "" || n > counts[majority] ||
				(n == counts[majority] && order[b] < order[majority]) {
				majority = b
			}
		}
	}
	r.groupBuild = majority
	r.mu.Unlock()
	for _, rep := range r.replicas {
		b := rep.client.BuildID()
		m := rep.client.Meta()
		bad := b == "" || b != majority
		if m.K != 0 && (m.K != r.meta.K || m.Seed != r.meta.Seed || m.T != r.meta.T || m.NumTexts != r.meta.NumTexts) {
			bad = true
		}
		rep.quarantined.Store(bad)
	}
}

// pick chooses the replica for the next attempt, skipping quarantined
// and already-tried replicas. Preference order: power-of-two-choices
// on in-flight count among breaker-closed candidates (ties to the
// lower index); then a half-open trial slot if any breaker grants one;
// then fail-open to the least-loaded remaining candidate — when every
// replica's breaker is open, refusing to try at all would turn a
// recovered-but-unprobed group into a hard outage. trial reports that
// the pick claimed a half-open slot the attempt must settle.
func (r *ReplicaSet) pick(tried map[int]bool) (rep *replica, trial, ok bool) {
	var closed, rest []*replica
	collect := func(skipTried bool) {
		closed, rest = closed[:0], rest[:0]
		for _, c := range r.replicas {
			if c.quarantined.Load() || (skipTried && tried[c.idx]) {
				continue
			}
			if c.br.current() == BreakerClosed {
				closed = append(closed, c)
			} else {
				rest = append(rest, c)
			}
		}
	}
	collect(true)
	if len(closed) == 0 && len(rest) == 0 && len(tried) > 0 {
		// Every untried replica is quarantined; a repeat attempt on a
		// tried replica beats giving up.
		collect(false)
	}
	if n := len(closed); n > 0 {
		best := closed[0]
		if n > 1 {
			i := r.rng.intn(n)
			j := r.rng.intn(n - 1)
			if j >= i {
				j++
			}
			a, b := closed[i], closed[j]
			best = a
			la, lb := a.inflight.Load(), b.inflight.Load()
			if lb < la || (lb == la && b.idx < a.idx) {
				best = b
			}
		}
		return best, false, true
	}
	for _, c := range rest {
		if allowed, claimed := c.br.allow(); allowed {
			return c, claimed, true
		}
	}
	var best *replica
	for _, c := range rest {
		if best == nil || c.inflight.Load() < best.inflight.Load() {
			best = c
		}
	}
	if best != nil {
		return best, false, true
	}
	return nil, false, false
}

// retryableErr classifies failures worth retrying on another replica:
// remote saturation/drain (429/503/504), connection-level failures,
// torn responses, and index read errors. The caller's own context
// expiring is never retryable, and a request-level error (bad query)
// would fail identically everywhere.
func retryableErr(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return re.Transient()
	}
	var ue *url.Error
	if errors.As(err, &ue) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	var ire *index.ReadError
	if errors.As(err, &ire) {
		return true
	}
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

// attemptOutcome is one replica attempt's result, reported by its
// goroutine.
type attemptOutcome struct {
	pi      int
	matches []search.Match
	stats   *search.Stats
	err     error
	dur     time.Duration
}

// attemptState is the leg-side bookkeeping for one launched attempt.
type attemptState struct {
	rep     *replica
	attempt int
	hedge   bool
	trial   bool
	start   time.Duration // offset from leg start
	spanID  string        // the attempt's span id when the query is traced
	cancel  context.CancelFunc
	done    bool
}

// do is the resilient control loop behind every query entry point: it
// launches a primary attempt on the picked replica, hedges once if the
// attempt outruns the replica's P95, retries transient failures on a
// different replica under the budget, and returns the first success
// with every attempt (winner, losers, cancellations) recorded in
// Stats.Attempts for the coordinator to attribute.
func (r *ReplicaSet) do(ctx context.Context, run func(ctx context.Context, cl ShardClient) ([]search.Match, *search.Stats, error)) ([]search.Match, *search.Stats, error) {
	legStart := obs.NowMono()
	r.budget.earn(r.cfg.RetryBudget)

	maxAttempts := 2 + r.cfg.MaxRetries // primary + retries + one hedge
	resCh := make(chan attemptOutcome, maxAttempts)
	var pendings []*attemptState
	defer func() {
		// Losers keep running until their cancel lands; the buffered
		// channel lets their goroutines exit without a reader.
		for _, p := range pendings {
			p.cancel()
		}
	}()
	tried := make(map[int]bool, len(r.replicas))

	launch := func(rep *replica, trial, hedge bool) {
		pi := len(pendings)
		// Every attempt — primary, retry, hedge — runs under its own
		// child span id, so the remote side's spans (and the wire
		// headers) identify exactly which attempt carried them.
		actx, spanID := childTraceContextID(ctx)
		actx, cancel := context.WithCancel(actx)
		p := &attemptState{
			rep: rep, attempt: pi, hedge: hedge, trial: trial,
			start: obs.SinceMono(legStart), spanID: spanID, cancel: cancel,
		}
		pendings = append(pendings, p)
		tried[rep.idx] = true
		rep.inflight.Add(1)
		rep.requests.Add(1)
		if hedge {
			rep.hedges.Add(1)
		} else if pi > 0 {
			rep.retries.Add(1)
		}
		go func() {
			t0 := obs.NowMono()
			m, st, err := run(actx, rep.client)
			dur := obs.SinceMono(t0)
			rep.inflight.Add(-1)
			// Breaker and latency accounting happens here, in the
			// attempt's own goroutine: a hedge loser that limps home
			// after the leg returned must still settle its trial slot.
			switch {
			case err == nil:
				rep.br.onSuccess()
				rep.lat.observe(dur)
			case errors.Is(err, context.Canceled):
				// A canceled attempt says nothing about the replica.
				if trial {
					rep.br.releaseTrial()
				}
			case retryableErr(err) || errors.Is(err, context.DeadlineExceeded):
				rep.errors.Add(1)
				rep.br.onFailure()
			default:
				// The replica answered; the request itself was bad.
				// Count the error without tripping the breaker — the
				// replica is demonstrably serving.
				rep.errors.Add(1)
				rep.br.onSuccess()
			}
			resCh <- attemptOutcome{pi: pi, matches: m, stats: st, err: err, dur: dur}
		}()
	}

	record := func(attempts []search.ShardAttempt, p *attemptState, errStr string, dur time.Duration) []search.ShardAttempt {
		return append(attempts, search.ShardAttempt{
			Replica: p.rep.client.Name(), ReplicaIdx: p.rep.idx,
			Attempt: p.attempt, Hedge: p.hedge, Err: errStr,
			SpanID: p.spanID, Start: p.start, Dur: dur,
		})
	}
	// finish synthesizes entries for attempts still in flight (they are
	// being abandoned) and fixes the attempt order.
	finish := func(attempts []search.ShardAttempt, reason string) []search.ShardAttempt {
		now := obs.SinceMono(legStart)
		for _, p := range pendings {
			if !p.done {
				attempts = record(attempts, p, reason, now-p.start)
			}
		}
		sort.Slice(attempts, func(i, j int) bool { return attempts[i].Attempt < attempts[j].Attempt })
		return attempts
	}
	fail := func(attempts []search.ShardAttempt, reason string, err error) ([]search.Match, *search.Stats, error) {
		if !r.multi() {
			return nil, nil, err
		}
		return nil, &search.Stats{Attempts: finish(attempts, reason)}, err
	}

	rep, trial, ok := r.pick(tried)
	if !ok {
		return nil, nil, fmt.Errorf("shard %s: no replica available (all quarantined)", r.name)
	}
	var hedgeC <-chan time.Time
	if r.cfg.HedgeDelayMin >= 0 && r.multi() {
		d := rep.lat.quantile(0.95)
		if d < r.cfg.HedgeDelayMin {
			d = r.cfg.HedgeDelayMin
		}
		ht := time.NewTimer(d)
		defer ht.Stop()
		hedgeC = ht.C
	}
	launch(rep, trial, false)

	var attempts []search.ShardAttempt
	outstanding := 1
	retriesUsed := 0
	var lastErr error
	var backoff time.Duration
	for {
		select {
		case res := <-resCh:
			p := pendings[res.pi]
			p.done = true
			p.cancel()
			outstanding--
			if res.err == nil {
				if p.hedge {
					r.hedgeWins.Add(1)
				}
				st := res.stats
				if r.multi() {
					if st == nil {
						st = &search.Stats{}
					}
					attempts = record(attempts, p, "", res.dur)
					st.Attempts = finish(attempts, "canceled")
				}
				return res.matches, st, nil
			}
			lastErr = res.err
			attempts = record(attempts, p, shardErrString(res.err), res.dur)
			if outstanding > 0 {
				continue // a hedge is still running; it may yet win
			}
			if ctx.Err() != nil {
				return fail(attempts, "", ctx.Err())
			}
			if !r.multi() || !retryableErr(res.err) || retriesUsed >= r.cfg.MaxRetries {
				return fail(attempts, "", lastErr)
			}
			if !r.budget.take() {
				r.budgetDenied.Add(1)
				return fail(attempts, "", lastErr)
			}
			backoff = nextBackoff(r.rng, r.cfg.BackoffBase, backoff, r.cfg.BackoffMax)
			if !sleepCtx(ctx, backoff) {
				return fail(attempts, "", ctx.Err())
			}
			nrep, ntrial, ok := r.pick(tried)
			if !ok {
				return fail(attempts, "", lastErr)
			}
			retriesUsed++
			outstanding++
			launch(nrep, ntrial, false)
		case <-hedgeC:
			hedgeC = nil // one hedge per leg
			if outstanding == 0 {
				continue
			}
			hrep, htrial, ok := r.pick(tried)
			if !ok {
				continue
			}
			if !r.budget.take() {
				r.budgetDenied.Add(1)
				continue
			}
			outstanding++
			launch(hrep, htrial, true)
		case <-ctx.Done():
			return fail(attempts, shardErrString(ctx.Err()), ctx.Err())
		}
	}
}

func (r *ReplicaSet) SearchContext(ctx context.Context, query []uint32, opts search.Options) ([]search.Match, *search.Stats, error) {
	return r.do(ctx, func(ctx context.Context, cl ShardClient) ([]search.Match, *search.Stats, error) {
		return cl.SearchContext(ctx, query, opts)
	})
}

func (r *ReplicaSet) SearchTopKContext(ctx context.Context, query []uint32, opts search.TopKOptions) ([]search.Match, *search.Stats, error) {
	return r.do(ctx, func(ctx context.Context, cl ShardClient) ([]search.Match, *search.Stats, error) {
		return cl.SearchTopKContext(ctx, query, opts)
	})
}

// ExplainContext routes a plan request to one healthy replica.
// Planning is cheap and advisory, so it gets routing but no retries.
func (r *ReplicaSet) ExplainContext(ctx context.Context, query []uint32, opts search.Options) (*search.Plan, error) {
	rep, trial, ok := r.pick(nil)
	if !ok {
		return nil, fmt.Errorf("shard %s: no replica available (all quarantined)", r.name)
	}
	plan, err := rep.client.ExplainContext(ctx, query, opts)
	if trial {
		if err == nil {
			rep.br.onSuccess()
		} else if !errors.Is(err, context.Canceled) {
			rep.br.onFailure()
		} else {
			rep.br.releaseTrial()
		}
	}
	return plan, err
}

// CheckHealth probes every replica concurrently, resets the breaker of
// each replica that answers (the probe proved it serving — no trial
// traffic needed), and recomputes build-id quarantine from the
// replicas that answered. The group is healthy while any replica is.
func (r *ReplicaSet) CheckHealth(ctx context.Context) error {
	errs := make([]error, len(r.replicas))
	fresh := make([]bool, len(r.replicas))
	var wg sync.WaitGroup
	for i, rep := range r.replicas {
		wg.Add(1)
		go func(i int, rep *replica) {
			defer wg.Done()
			probeCtx := childTraceContext(ctx)
			if err := rep.client.CheckHealth(probeCtx); err != nil {
				errs[i] = fmt.Errorf("replica %s: %w", rep.client.Name(), err)
				return
			}
			fresh[i] = true
			rep.br.reset()
		}(i, rep)
	}
	wg.Wait()
	r.requarantine(fresh)
	for _, e := range errs {
		if e == nil {
			return nil
		}
	}
	return errors.Join(errs...)
}

// StartProber launches the background health loop: every interval
// (ProbeInterval when interval <= 0) it re-runs CheckHealth so a
// recovered or rebuilt replica rejoins — or is quarantined — without
// needing query traffic to find out. The loop stops when ctx is
// canceled or the set is closed. Starting twice is a no-op.
func (r *ReplicaSet) StartProber(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = r.cfg.ProbeInterval
	}
	r.mu.Lock()
	if r.probeStop != nil {
		r.mu.Unlock()
		return
	}
	pctx, cancel := context.WithCancel(ctx)
	r.probeStop = cancel
	r.mu.Unlock()
	r.probeWG.Add(1)
	go func() {
		defer r.probeWG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-pctx.Done():
				return
			case <-t.C:
				hctx, hcancel := context.WithTimeout(pctx, interval)
				_ = r.CheckHealth(hctx) // per-replica state is the point; the joined error has no reader
				hcancel()
			}
		}
	}()
}

// Close stops the prober and closes every replica.
func (r *ReplicaSet) Close() error {
	r.mu.Lock()
	stop := r.probeStop
	r.mu.Unlock()
	if stop != nil {
		stop()
		r.probeWG.Wait()
	}
	errs := make([]error, len(r.replicas))
	for i, rep := range r.replicas {
		errs[i] = rep.client.Close()
	}
	return errors.Join(errs...)
}

// ReplicaMetrics snapshots the set's per-replica routing state for the
// /metrics exposition.
func (r *ReplicaSet) ReplicaMetrics() ReplicaSetMetrics {
	out := ReplicaSetMetrics{
		HedgeWins:    r.hedgeWins.Load(),
		BudgetDenied: r.budgetDenied.Load(),
		Replicas:     make([]ReplicaMetrics, len(r.replicas)),
	}
	for i, rep := range r.replicas {
		out.Replicas[i] = ReplicaMetrics{
			Replica:     rep.client.Name(),
			BuildID:     rep.client.BuildID(),
			Requests:    rep.requests.Load(),
			Errors:      rep.errors.Load(),
			Retries:     rep.retries.Load(),
			Hedges:      rep.hedges.Load(),
			Breaker:     rep.br.current(),
			Quarantined: rep.quarantined.Load(),
		}
	}
	return out
}
